(* Quickstart: build a small labeled graph, mine its l-long delta-skinny
   patterns, and inspect the result.

   Run with: dune exec examples/quickstart.exe *)

open Spm_graph
open Spm_core

let () =
  (* A toy road network: a main avenue (labels = point-of-interest kinds)
     with side streets. Vertex labels: 0 = plaza, 1 = cafe, 2 = museum,
     3 = park. *)
  let labels = [| 0; 1; 2; 1; 0; 3; 3; 1 |] in
  let edges =
    [
      (0, 1); (1, 2); (2, 3); (3, 4);  (* the avenue: 0-1-2-3-4 *)
      (2, 5);                          (* a park off the museum *)
      (3, 6);                          (* a park off the second cafe *)
      (1, 7);                          (* a cafe cluster *)
    ]
  in
  let g = Graph.Builder.of_edges ~labels edges in
  Printf.printf "Data graph: %d vertices, %d edges\n" (Graph.n g) (Graph.m g);

  (* Mine every 4-long 1-skinny pattern appearing at least once. *)
  let result = Skinny_mine.mine g ~l:4 ~delta:1 ~sigma:1 in
  Printf.printf "Found %d patterns with a 4-edge backbone:\n"
    (List.length result.Skinny_mine.patterns);
  List.iteri
    (fun i m ->
      let p = m.Skinny_mine.pattern in
      Printf.printf "  #%d: %d vertices, %d edges, support %d, twigs at \
                     levels [%s]\n"
        (i + 1) (Graph.n p) (Graph.m p) m.Skinny_mine.support
        (String.concat ";"
           (Array.to_list (Array.map string_of_int m.Skinny_mine.levels))))
    result.Skinny_mine.patterns;

  (* Every mined pattern satisfies the constraint by construction: *)
  assert (
    List.for_all
      (fun m -> Skinny_mine.is_target m.Skinny_mine.pattern ~l:4 ~delta:1)
      result.Skinny_mine.patterns);

  (* The canonical diameter of the first pattern, as vertex ids: *)
  (match result.Skinny_mine.patterns with
  | m :: _ ->
    let cd = Canonical_diameter.compute m.Skinny_mine.pattern in
    Printf.printf "Canonical diameter of pattern #1: [%s]\n"
      (String.concat "," (Array.to_list (Array.map string_of_int cd)))
  | [] -> ());

  (* Serve repeated requests from a precomputed index (the direct-mining
     architecture of Figure 2): *)
  let idx = Diameter_index.build g ~sigma:1 ~l_max:5 in
  List.iter
    (fun l ->
      let r = Diameter_index.request idx ~l ~delta:1 in
      Printf.printf "l = %d -> %d patterns\n" l
        (List.length r.Skinny_mine.patterns))
    [ 2; 3; 4; 5 ]
