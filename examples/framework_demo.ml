(* The direct-mining framework beyond skinny patterns (paper §5).

   1. Run the executable reducibility / continuity checkers on three
      constraints over a small pattern universe — reproducing the paper's
      two counterexamples (MaxDegree is not reducible; equal-degree is not
      continuous) and our C4 finding for the skinny constraint itself.
   2. Instantiate the framework functor with a fresh constraint the paper
      never considered: "triangle-anchored patterns" (patterns containing a
      triangle, up to a size budget). Minimal constraint-satisfying patterns
      are the frequent triangles; the constraint is monotone under edge
      extension, so constraint-preserving growth is plain frequent growth.

   Run with: dune exec examples/framework_demo.exe *)

open Spm_graph
open Spm_pattern
open Spm_core

(* --- Part 1: property checkers --- *)

let () =
  let st = Gen.rng 11 in
  let g = Gen.erdos_renyi st ~n:9 ~avg_degree:2.5 ~num_labels:2 in
  let universe = Framework.connected_patterns_upto g ~max_edges:4 in
  let c4 = Gen.cycle_graph [| 0; 0; 0; 0 |] in
  let universe = c4 :: universe in
  Printf.printf "pattern universe: %d patterns (<= 4 edges)\n"
    (List.length universe);
  let show name pred =
    Printf.printf "  %-28s reducible=%-5b continuous=%b\n" name
      (Framework.is_reducible ~pred ~universe)
      (Framework.is_continuous ~pred ~universe)
  in
  show "2-long 1-skinny" (fun p -> Skinny_mine.is_target p ~l:2 ~delta:1);
  show "MaxDegree <= 3" (fun p ->
      List.for_all
        (fun v -> Graph.degree p v <= 3)
        (List.init (Graph.n p) (fun v -> v)));
  show "all degrees equal" (fun p ->
      Graph.m p >= 1
      &&
      let d0 = Graph.degree p 0 in
      List.for_all
        (fun v -> Graph.degree p v = d0)
        (List.init (Graph.n p) (fun v -> v)));
  print_newline ()

(* --- Part 2: a custom CONSTRAINT instance --- *)

module Triangle_anchored = struct
  type request = { max_edges : int }

  type seed = Spm_baselines.Grow_util.state

  let name = "triangle-anchored"

  (* Minimal constraint-satisfying patterns: frequent triangles. *)
  let minimal_patterns g ~sigma { max_edges = _ } =
    let tri = Hashtbl.create 16 in
    Graph.iter_edges
      (fun u v ->
        Array.iter
          (fun w ->
            if w > v && Graph.has_edge g v w then begin
              (* triangle u < v < w *)
              let labels = [| Graph.label g u; Graph.label g v; Graph.label g w |] in
              let pattern =
                Graph.Builder.of_edges ~labels [ (0, 1); (1, 2); (0, 2) ]
              in
              let key = Canon.key pattern in
              let maps =
                match Hashtbl.find_opt tri key with
                | Some (_, ms) -> ms
                | None -> []
              in
              Hashtbl.replace tri key (pattern, [| u; v; w |] :: maps)
            end)
          (Graph.adj g u))
      g;
    Hashtbl.fold
      (fun _ (pattern, maps) acc ->
        let st = { Spm_baselines.Grow_util.pattern; maps } in
        if Spm_baselines.Grow_util.support g st >= sigma then st :: acc
        else acc)
      tri []

  (* Containing-a-triangle is monotone under edge extension, so preserving
     it is free; growth is plain frequent growth with memoization. *)
  let grow g ~sigma { max_edges } seed =
    let seen = Canon.Set.create () in
    let out = ref [] in
    let rec walk (st : Spm_baselines.Grow_util.state) =
      let support = Spm_baselines.Grow_util.support g st in
      if support >= sigma && Canon.Set.add seen st.Spm_baselines.Grow_util.pattern
      then begin
        out := (st.Spm_baselines.Grow_util.pattern, support) :: !out;
        if Pattern.size st.Spm_baselines.Grow_util.pattern < max_edges then
          List.iter walk (Spm_baselines.Grow_util.extensions g st)
      end
    in
    walk seed;
    !out
end

module Triangle_miner = Framework.Make (Triangle_anchored)

let () =
  (* A graph with a frequent labeled triangle motif plus noise. *)
  let st = Gen.rng 23 in
  let bg = Gen.erdos_renyi st ~n:60 ~avg_degree:1.5 ~num_labels:5 in
  let b = Graph.Builder.of_graph bg in
  let motif =
    Graph.Builder.of_edges ~labels:[| 1; 2; 3; 4 |] [ (0, 1); (1, 2); (0, 2); (2, 3) ]
  in
  ignore (Gen.inject st b ~pattern:motif ~copies:3 ());
  let g = Graph.Builder.freeze b in
  let results = Triangle_miner.mine g ~sigma:3 { Triangle_anchored.max_edges = 5 } in
  Printf.printf "triangle-anchored frequent patterns (sigma = 3, <= 5 edges): %d\n"
    (List.length results);
  List.iter
    (fun (p, sup) ->
      Printf.printf "  |V|=%d |E|=%d support=%d%s\n" (Graph.n p) (Graph.m p) sup
        (if Canon.iso p motif then "   <- the injected motif" else ""))
    (List.sort (fun (p, _) (q, _) -> Int.compare (Graph.m q) (Graph.m p)) results)
