(* Mobile data mining (the paper's first motivating application, §1):
   trajectories from a location-based service form a large single graph —
   venues as vertices labeled by category, consecutive check-ins as edges.
   Skinny patterns capture popular routes (the backbone) together with the
   venue categories visited along the way (the twigs).

   Run with: dune exec examples/trajectory_mining.exe *)

open Spm_graph
open Spm_core

(* Venue categories. *)
let categories = [| "home"; "transit"; "office"; "food"; "gym"; "shop"; "bar" |]

let transit = 1

(* Synthesize a city: a transit backbone grid plus venues, then simulate
   commuters whose trajectories repeatedly trace home -> transit* -> office
   with stops — the frequent route we expect to recover. *)
let build_city seed =
  let st = Gen.rng seed in
  let b = Graph.Builder.create () in
  (* Transit lines: three paths of 8 stations. *)
  let lines =
    Array.init 3 (fun _ ->
        Array.init 8 (fun _ -> Graph.Builder.add_vertex b transit))
  in
  Array.iter
    (fun line ->
      Array.iteri
        (fun i v -> if i > 0 then Graph.Builder.add_edge b line.(i - 1) v)
        line)
    lines;
  (* Interchanges. *)
  Graph.Builder.add_edge b lines.(0).(4) lines.(1).(2);
  Graph.Builder.add_edge b lines.(1).(6) lines.(2).(1);
  (* Venues hang off stations. *)
  let venue label station =
    let v = Graph.Builder.add_vertex b label in
    Graph.Builder.add_edge b station v;
    v
  in
  Array.iter
    (fun line ->
      Array.iter
        (fun s ->
          if Random.State.int st 3 = 0 then
            ignore (venue (2 + Random.State.int st 5) s))
        line)
    lines;
  (* The popular commute: home - 4 stations of line 0 - office, with a food
     stop at the middle station: inject it twice more via fresh venues so it
     is frequent. *)
  let commute () =
    let home = venue 0 lines.(0).(0) in
    let office = venue 2 lines.(0).(4) in
    let lunch = venue 3 lines.(0).(2) in
    ignore (home, office, lunch)
  in
  commute ();
  commute ();
  commute ();
  Graph.Builder.freeze b

let () =
  let g = build_city 42 in
  Printf.printf "City graph: %d venues/stations, %d links\n" (Graph.n g)
    (Graph.m g);
  (* Routes spanning 6 hops with at most 1 hop of detour, seen >= 2 times. *)
  let result =
    Skinny_mine.mine
      ~config:{ Skinny_mine.Config.default with closed_growth = true }
      g ~l:6 ~delta:1 ~sigma:2
  in
  Printf.printf "%d frequent 6-hop route patterns\n"
    (List.length result.Skinny_mine.patterns);
  let describe p =
    let cd = Canonical_diameter.compute p in
    let backbone =
      Array.to_list cd
      |> List.map (fun v -> categories.(Graph.label p v))
      |> String.concat " > "
    in
    let twigs =
      let levels = Canonical_diameter.levels p ~diameter:cd in
      List.init (Graph.n p) (fun v -> v)
      |> List.filter (fun v -> levels.(v) > 0)
      |> List.map (fun v -> categories.(Graph.label p v))
    in
    Printf.sprintf "route: %s%s" backbone
      (match twigs with
      | [] -> ""
      | ts -> Printf.sprintf "  (stops: %s)" (String.concat ", " ts))
  in
  (* Show the richest patterns (most stops). *)
  List.sort
    (fun a b ->
      Int.compare (Graph.m b.Skinny_mine.pattern) (Graph.m a.Skinny_mine.pattern))
    result.Skinny_mine.patterns
  |> List.filteri (fun i _ -> i < 5)
  |> List.iter (fun m ->
         Printf.printf "  [support %d] %s\n" m.Skinny_mine.support
           (describe m.Skinny_mine.pattern))
