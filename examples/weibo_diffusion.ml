(* Information-diffusion analysis (the paper's second motivating application,
   §1 and §6.3): mine long skinny diffusion chains from microblog
   conversations — the backbone is the retweet chain, the twigs are root
   re-engagements and audience fans.

   Run with: dune exec examples/weibo_diffusion.exe *)

open Spm_graph
open Spm_core
open Spm_workload

let () =
  let convs = Weibo_like.generate ~num_conversations:25 ~size:80 ~chain:9 ~seed:7 () in
  let db = List.map (fun c -> c.Weibo_like.graph) convs in
  Printf.printf "%d conversations, %d users total\n" (List.length db)
    (List.fold_left (fun acc g -> acc + Graph.n g) 0 db);

  (* Diffusion chains spanning 8 hops, with twigs up to 2 hops off the
     chain, appearing in at least 4 conversations. (With only four vertex
     labels the pattern space is dense; closed growth plus a firm support
     threshold keeps the complete answer small.) *)
  let result =
    Skinny_mine.mine_transactions
      ~config:{ Skinny_mine.Config.default with closed_growth = true }
      db ~l:8 ~delta:2 ~sigma:4
  in
  Printf.printf "%d frequent diffusion patterns with an 8-hop backbone\n"
    (List.length result.Skinny_mine.patterns);

  let describe p =
    let cd = Canonical_diameter.compute p in
    let chain =
      Array.to_list cd
      |> List.map (fun v -> Weibo_like.label_name (Graph.label p v))
      |> String.concat " -> "
    in
    let roots =
      List.init (Graph.n p) (fun v -> v)
      |> List.filter (fun v -> Graph.label p v = Weibo_like.root_label)
      |> List.length
    in
    Printf.sprintf "%s  [%d root occurrence(s)]" chain roots
  in
  List.sort
    (fun a b ->
      Int.compare (Graph.m b.Skinny_mine.pattern) (Graph.m a.Skinny_mine.pattern))
    result.Skinny_mine.patterns
  |> List.filteri (fun i _ -> i < 3)
  |> List.iter (fun m ->
         Printf.printf "  [in %d conversations] %s\n" m.Skinny_mine.support
           (describe m.Skinny_mine.pattern));

  (* The Figure-24 motif: a root that re-engages along the chain. Check the
     largest mined pattern embeds into it or vice versa. *)
  let motif = Weibo_like.diffusion_motif ~chain:9 in
  let found =
    List.exists
      (fun m -> Spm_pattern.Canon.iso m.Skinny_mine.pattern motif
                || Spm_pattern.Subiso.exists ~pattern:m.Skinny_mine.pattern ~target:motif)
      result.Skinny_mine.patterns
  in
  Printf.printf "root re-engagement structure recovered: %b\n" found
