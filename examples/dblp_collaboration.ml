(* Temporal collaboration analysis over DBLP-like career timelines (§6.3,
   Figures 21-22): each author's publication history is a timeline graph,
   and skinny patterns across many authors reveal shared career shapes —
   e.g. "collaborates with increasingly productive co-authors".

   Run with: dune exec examples/dblp_collaboration.exe *)

open Spm_graph
open Spm_core
open Spm_workload

let () =
  let authors = Dblp_like.generate ~num_authors:90 ~min_years:12 ~max_years:25 ~seed:3 () in
  let db = List.map (fun a -> a.Dblp_like.graph) authors in
  Printf.printf "%d author timelines (12-25 years each)\n" (List.length db);

  (* Patterns spanning 12 consecutive years (the backbone), with the
     collaboration classes of each year as twigs, shared by >= 3 authors. *)
  let result =
    Skinny_mine.mine_transactions
      ~config:{ Skinny_mine.Config.default with closed_growth = true }
      db ~l:12 ~delta:1 ~sigma:3
  in
  Printf.printf "%d temporal collaboration patterns across 12-year spans\n"
    (List.length result.Skinny_mine.patterns);

  (* Render a pattern as a year-by-year collaboration profile. *)
  let describe p =
    let cd = Canonical_diameter.compute p in
    let per_year =
      Array.to_list cd
      |> List.map (fun year ->
             let collabs =
               Array.to_list (Graph.adj p year)
               |> List.filter (fun v ->
                      Graph.label p v <> Dblp_like.year_label)
               |> List.map (fun v -> Dblp_like.label_name (Graph.label p v))
             in
             match collabs with
             | [] -> "."
             | cs -> String.concat "+" cs)
    in
    String.concat " " per_year
  in
  let interesting =
    List.sort
      (fun a b ->
        Int.compare (Graph.m b.Skinny_mine.pattern)
          (Graph.m a.Skinny_mine.pattern))
      result.Skinny_mine.patterns
    |> List.filteri (fun i _ -> i < 4)
  in
  Printf.printf "richest shared career shapes (year-by-year, '.' = no \
                 frequent collaboration that year):\n";
  List.iter
    (fun m ->
      Printf.printf "  [%d authors] %s\n" m.Skinny_mine.support
        (describe m.Skinny_mine.pattern))
    interesting
