(* skinnymine — command-line front end.

   Subcommands:
     generate   synthesize a data graph (ER background + injected patterns)
     stats      print basic statistics of a graph file
     paths      Stage I only: mine frequent simple paths of a given length
     mine       full (l, delta)-SPM mining
     baseline   run one of the reimplemented baselines
*)

open Cmdliner
open Spm_graph
open Spm_core

(* --- common args --- *)

let graph_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc:"Graph file (v/e format).")

let sigma =
  Arg.(value & opt int 2 & info [ "s"; "sigma" ] ~doc:"Support threshold.")

let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.")

let jobs =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ]
        ~env:(Cmd.Env.info "SKINNY_JOBS")
        ~doc:
          "Worker domains. Defaults to the number of available cores \
           (overridable via $(b,SKINNY_JOBS)). Output is identical for \
           every value.")

(* --- generate --- *)

let generate_cmd =
  let n = Arg.(value & opt int 500 & info [ "n" ] ~doc:"Background vertices.") in
  let deg = Arg.(value & opt float 3.0 & info [ "deg" ] ~doc:"Average degree.") in
  let labels = Arg.(value & opt int 20 & info [ "labels" ] ~doc:"Label universe size.") in
  let inject_l = Arg.(value & opt int 0 & info [ "inject-l" ] ~doc:"Backbone length of injected skinny patterns (0 = none).") in
  let inject_delta = Arg.(value & opt int 2 & info [ "inject-delta" ] ~doc:"Skinniness of injected patterns.") in
  let inject_copies = Arg.(value & opt int 2 & info [ "copies" ] ~doc:"Copies per injected pattern.") in
  let inject_count = Arg.(value & opt int 3 & info [ "count" ] ~doc:"Number of distinct injected patterns.") in
  let out = Arg.(required & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.") in
  let run n deg labels inject_l inject_delta inject_copies inject_count seed out =
    let st = Gen.rng seed in
    let bg = Gen.erdos_renyi st ~n ~avg_degree:deg ~num_labels:labels in
    let b = Graph.Builder.of_graph bg in
    if inject_l > 0 then
      for _ = 1 to inject_count do
        let p =
          Gen.random_skinny_pattern st ~backbone:inject_l ~delta:inject_delta
            ~twigs:(2 * inject_delta) ~num_labels:labels
        in
        ignore (Gen.inject st b ~pattern:p ~copies:inject_copies ())
      done;
    let g = Graph.Builder.freeze b in
    Io.write_file out g;
    Printf.printf "wrote %s: %d vertices, %d edges\n" out (Graph.n g) (Graph.m g)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize a data graph.")
    Term.(
      const run $ n $ deg $ labels $ inject_l $ inject_delta $ inject_copies
      $ inject_count $ seed $ out)

(* --- stats --- *)

let stats_cmd =
  let run file =
    let g = Io.read_file file in
    Printf.printf "vertices: %d\nedges:    %d\nlabels:   %d\n" (Graph.n g)
      (Graph.m g) (Graph.num_labels g);
    let _, k = Bfs.components g in
    Printf.printf "components: %d\n" k;
    let degs = Array.init (Graph.n g) (fun v -> Graph.degree g v) in
    let maxd = Array.fold_left max 0 degs in
    let avg =
      2.0 *. float_of_int (Graph.m g) /. float_of_int (max 1 (Graph.n g))
    in
    Printf.printf "avg degree: %.2f, max degree: %d\n" avg maxd
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print graph statistics.") Term.(const run $ graph_file)

(* --- paths (Stage I) --- *)

let paths_cmd =
  let l = Arg.(value & opt int 4 & info [ "l"; "length" ] ~doc:"Path length (edges).") in
  let run file l sigma jobs =
    let g = Io.read_file file in
    let r =
      Spm_engine.Pool.with_pool ~jobs (fun pool ->
          Diam_mine.mine ~pool g ~l ~sigma)
    in
    Printf.printf "%d frequent simple paths of length %d (sigma = %d):\n"
      (List.length r.Diam_mine.entries) l sigma;
    List.iter
      (fun e ->
        Printf.printf "  [%d embeddings] labels %s\n"
          (Diam_mine.entry_support e)
          (String.concat "-"
             (Array.to_list (Array.map string_of_int e.Diam_mine.labels))))
      r.Diam_mine.entries
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Mine frequent simple paths (Stage I, DiamMine).")
    Term.(const run $ graph_file $ l $ sigma $ jobs)

(* --- mine --- *)

let mine_cmd =
  let l = Arg.(value & opt int 4 & info [ "l"; "length" ] ~doc:"Diameter length constraint.") in
  let delta = Arg.(value & opt int 2 & info [ "d"; "delta" ] ~doc:"Skinniness bound.") in
  let closed = Arg.(value & flag & info [ "closed" ] ~doc:"Closed-pattern growth (collapse support-preserving extensions).") in
  let dot = Arg.(value & opt (some string) None & info [ "dot" ] ~doc:"Write the largest pattern as Graphviz to this file.") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print mining statistics as one JSON object.") in
  let run file l delta sigma closed dot json jobs =
    let g = Io.read_file file in
    let config =
      { Skinny_mine.Config.default with closed_growth = closed; jobs }
    in
    let r = Skinny_mine.mine ~config g ~l ~delta ~sigma in
    (* --json emits the statistics object alone so stdout parses as JSON. *)
    if json then print_endline (Skinny_mine.Stats.to_json r.Skinny_mine.stats)
    else begin
      Printf.printf "%d %s%d-long %d-skinny patterns (sigma = %d, jobs = %d)\n"
        (List.length r.Skinny_mine.patterns)
        (if closed then "closed " else "")
        l delta sigma jobs;
      Format.printf "%a@." Skinny_mine.Stats.pp r.Skinny_mine.stats;
      List.iteri
        (fun i m ->
          if i < 20 then
            Printf.printf "  #%d: |V|=%d |E|=%d support=%d\n" (i + 1)
              (Graph.n m.Skinny_mine.pattern)
              (Graph.m m.Skinny_mine.pattern)
              m.Skinny_mine.support)
        r.Skinny_mine.patterns;
      if List.length r.Skinny_mine.patterns > 20 then
        Printf.printf "  ... (%d more)\n"
          (List.length r.Skinny_mine.patterns - 20)
    end;
    match dot with
    | None -> ()
    | Some path -> (
      match
        List.sort
          (fun a b ->
            Int.compare (Graph.m b.Skinny_mine.pattern) (Graph.m a.Skinny_mine.pattern))
          r.Skinny_mine.patterns
      with
      | [] -> ()
      | m :: _ ->
        let oc = open_out path in
        output_string oc (Io.to_dot m.Skinny_mine.pattern);
        close_out oc;
        Printf.printf "largest pattern written to %s\n" path)
  in
  Cmd.v
    (Cmd.info "mine" ~doc:"Mine all l-long delta-skinny frequent patterns.")
    Term.(const run $ graph_file $ l $ delta $ sigma $ closed $ dot $ json $ jobs)

(* --- baseline --- *)

let baseline_cmd =
  let which =
    Arg.(
      required
      & opt (some (enum [ ("spidermine", `Spider); ("subdue", `Subdue); ("seus", `Seus); ("moss", `Moss) ])) None
      & info [ "a"; "algorithm" ] ~doc:"One of spidermine, subdue, seus, moss.")
  in
  let run file which sigma seed jobs =
    let g = Io.read_file file in
    if jobs > 1 then
      Printf.eprintf
        "note: the reimplemented baselines are single-threaded; --jobs %d is \
         ignored here\n%!"
        jobs;
    match which with
    | `Spider ->
      let r =
        Spm_baselines.Spider_mine.mine ~rng:(Gen.rng seed) ~graph:g ~sigma ~k:10 ()
      in
      Printf.printf "SpiderMine: %d spiders, top patterns:\n" r.Spm_baselines.Spider_mine.spiders_mined;
      List.iter
        (fun (p, s) -> Printf.printf "  |V|=%d |E|=%d support=%d\n" (Graph.n p) (Graph.m p) s)
        r.Spm_baselines.Spider_mine.patterns
    | `Subdue ->
      let r = Spm_baselines.Subdue.mine ~graph:g () in
      List.iter
        (fun s ->
          Printf.printf "  |V|=%d instances=%d compression=%.1f\n"
            (Graph.n s.Spm_baselines.Subdue.pattern)
            s.Spm_baselines.Subdue.instances s.Spm_baselines.Subdue.compression)
        r.Spm_baselines.Subdue.best
    | `Seus ->
      let r = Spm_baselines.Seus.mine ~graph:g ~sigma () in
      Printf.printf "SEuS: %d candidates, %d verified, %d frequent\n"
        r.Spm_baselines.Seus.candidates r.Spm_baselines.Seus.verified
        (List.length r.Spm_baselines.Seus.patterns)
    | `Moss ->
      let r = Spm_gspan.Moss.mine ~deadline:30.0 ~graph:g ~sigma () in
      Printf.printf "MoSS: %d patterns%s\n"
        (List.length r.Spm_gspan.Engine.results)
        (if r.Spm_gspan.Engine.complete then "" else " (timed out)")
  in
  Cmd.v
    (Cmd.info "baseline" ~doc:"Run a baseline miner.")
    Term.(const run $ graph_file $ which $ sigma $ seed $ jobs)

let () =
  let doc = "SkinnyMine: direct mining of l-long delta-skinny graph patterns" in
  let info = Cmd.info "skinnymine" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ generate_cmd; stats_cmd; paths_cmd; mine_cmd; baseline_cmd ]))
