(* skinnymine — command-line front end.

   Subcommands:
     generate   synthesize a data graph (ER background + injected patterns)
     stats      print basic statistics of a graph file
     paths      Stage I only: mine frequent simple paths of a given length
     mine       full (l, delta)-SPM mining (optionally persisting a store)
     baseline   run one of the reimplemented baselines
     serve      run the SkinnyServe TCP query service
     query      talk to a running server
     verify     full-strength offline check of a store file
     shard      partition a store into N shard stores + manifest
     route      run the scatter-gather router over a shard layout

   Exit codes: 0 success, 1 runtime failure (IO, protocol, server error),
   2 usage error, 3 corrupt store (verify). *)

open Cmdliner
open Spm_graph
open Spm_core

let version = "1.1.0"

(* Scripting (bench drivers, CI) relies on these being distinct. *)
let exit_runtime_error = 1
let exit_usage_error = 2
let exit_corrupt_store = 3

(* --- common args --- *)

let graph_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc:"Graph file (v/e format).")

let sigma =
  Arg.(value & opt int 2 & info [ "s"; "sigma" ] ~doc:"Support threshold.")

let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.")

let jobs =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ]
        ~env:(Cmd.Env.info "SKINNY_JOBS")
        ~doc:
          "Worker domains. Defaults to the number of available cores \
           (overridable via $(b,SKINNY_JOBS)). Output is identical for \
           every value.")

(* --constraint / --center: the family selector shared by mine and query
   mine. For the neighborhood family l is forced to 0 (the radius rides in
   --delta), matching Skinny_mine's contract. *)
let family_arg =
  Arg.(
    value
    & opt
        (enum [ ("skinny", `Skinny); ("neighborhood", `Neighborhood) ])
        `Skinny
    & info [ "constraint" ] ~docv:"FAMILY"
        ~doc:
          "Constraint family to mine: $(b,skinny) (the default \
           (l,delta)-skinny family) or $(b,neighborhood) (every frequent \
           pattern lying within radius $(b,--delta) of some center vertex; \
           $(b,--length) is ignored).")

let center_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "center" ] ~docv:"LABEL"
        ~doc:
          "With $(b,--constraint neighborhood): only vertices carrying this \
           label may anchor the neighborhood (default: any label).")

let resolve_family family center ~l =
  match family with
  | `Skinny -> (Constraints.Skinny, l)
  | `Neighborhood -> (Constraints.Neighborhood { center }, 0)

(* --- generate --- *)

let generate_cmd =
  let n = Arg.(value & opt int 500 & info [ "n" ] ~doc:"Background vertices.") in
  let deg = Arg.(value & opt float 3.0 & info [ "deg" ] ~doc:"Average degree.") in
  let labels = Arg.(value & opt int 20 & info [ "labels" ] ~doc:"Label universe size.") in
  let inject_l = Arg.(value & opt int 0 & info [ "inject-l" ] ~doc:"Backbone length of injected skinny patterns (0 = none).") in
  let inject_delta = Arg.(value & opt int 2 & info [ "inject-delta" ] ~doc:"Skinniness of injected patterns.") in
  let inject_copies = Arg.(value & opt int 2 & info [ "copies" ] ~doc:"Copies per injected pattern.") in
  let inject_count = Arg.(value & opt int 3 & info [ "count" ] ~doc:"Number of distinct injected patterns.") in
  let out = Arg.(required & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.") in
  let model =
    let models = [ ("er", `Er); ("rmat", `Rmat); ("ba", `Ba) ] in
    Arg.(
      value
      & opt (enum models) `Er
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Background model: $(b,er) (Erdős–Rényi, uniform degrees), \
             $(b,rmat) (R-MAT, heavy-tailed degrees; $(b,--n) is rounded up \
             to a power of two), or $(b,ba) (Barabási–Albert preferential \
             attachment). $(b,--deg) sets the average degree for all \
             three.")
  in
  let run n deg labels model inject_l inject_delta inject_copies inject_count
      seed out =
    let st = Gen.rng seed in
    let bg =
      match model with
      | `Er -> Gen.erdos_renyi st ~n ~avg_degree:deg ~num_labels:labels
      | `Rmat ->
        let scale =
          let rec go s = if 1 lsl s >= n || s >= 30 then s else go (s + 1) in
          go 1
        in
        let edge_factor = max 1 (int_of_float (deg /. 2.0)) in
        Gen.rmat st ~scale ~edge_factor ~num_labels:labels
      | `Ba ->
        let m_per = max 1 (int_of_float (deg /. 2.0)) in
        Gen.barabasi_albert st ~n ~m_per ~num_labels:labels
    in
    let b = Graph.Builder.of_graph bg in
    if inject_l > 0 then
      for _ = 1 to inject_count do
        let p =
          Gen.random_skinny_pattern st ~backbone:inject_l ~delta:inject_delta
            ~twigs:(2 * inject_delta) ~num_labels:labels
        in
        ignore (Gen.inject st b ~pattern:p ~copies:inject_copies ())
      done;
    let g = Graph.Builder.freeze b in
    Io.write_file out g;
    Printf.printf "wrote %s: %d vertices, %d edges\n" out (Graph.n g) (Graph.m g)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize a data graph.")
    Term.(
      const run $ n $ deg $ labels $ model $ inject_l $ inject_delta
      $ inject_copies $ inject_count $ seed $ out)

(* --- corpus --- *)

let corpus_cmd =
  let out =
    Arg.(
      value
      & opt string "examples/corpus"
      & info [ "o"; "output" ] ~doc:"Directory to write the corpus into.")
  in
  let run out =
    Spm_oracle.Corpus.write_dir out;
    let items = Spm_oracle.Corpus.builtin () in
    Printf.printf "wrote %d corpus graphs to %s\n" (List.length items) out
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Write the built-in differential-testing corpus (seeded graphs + \
          mining parameters) to a directory. The files under \
          examples/corpus/ are this command's committed output; the test \
          suite pins them byte-for-byte.")
    Term.(const run $ out)

(* --- stats --- *)

let stats_cmd =
  let run file =
    let g = Io.read_file file in
    Printf.printf "vertices: %d\nedges:    %d\nlabels:   %d\n" (Graph.n g)
      (Graph.m g) (Graph.num_labels g);
    let _, k = Bfs.components g in
    Printf.printf "components: %d\n" k;
    let degs = Array.init (Graph.n g) (fun v -> Graph.degree g v) in
    let maxd = Array.fold_left max 0 degs in
    let avg =
      2.0 *. float_of_int (Graph.m g) /. float_of_int (max 1 (Graph.n g))
    in
    Printf.printf "avg degree: %.2f, max degree: %d\n" avg maxd
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print graph statistics.") Term.(const run $ graph_file)

(* --- paths (Stage I) --- *)

let paths_cmd =
  let l = Arg.(value & opt int 4 & info [ "l"; "length" ] ~doc:"Path length (edges).") in
  let run file l sigma jobs =
    let g = Io.read_file file in
    let r =
      Spm_engine.Pool.with_pool ~jobs (fun pool ->
          Diam_mine.mine ~pool g ~l ~sigma)
    in
    Printf.printf "%d frequent simple paths of length %d (sigma = %d):\n"
      (List.length r.Diam_mine.entries) l sigma;
    List.iter
      (fun e ->
        Printf.printf "  [%d embeddings] labels %s\n"
          (Diam_mine.entry_support e)
          (String.concat "-"
             (Array.to_list (Array.map string_of_int e.Diam_mine.labels))))
      r.Diam_mine.entries
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Mine frequent simple paths (Stage I, DiamMine).")
    Term.(const run $ graph_file $ l $ sigma $ jobs)

(* --- mine --- *)

let mine_cmd =
  let l = Arg.(value & opt int 4 & info [ "l"; "length" ] ~doc:"Diameter length constraint.") in
  let delta = Arg.(value & opt int 2 & info [ "d"; "delta" ] ~doc:"Skinniness bound.") in
  let closed = Arg.(value & flag & info [ "closed" ] ~doc:"Closed-pattern growth (collapse support-preserving extensions).") in
  let dot = Arg.(value & opt (some string) None & info [ "dot" ] ~doc:"Write the largest pattern as Graphviz to this file.") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print mining statistics as one JSON object.") in
  let store_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:
            "Persist the mined result as a binary pattern store (G2 layout: \
             the graph payload is mmap-compatible); $(b,skinnymine serve \
             --store) FILE later answers queries against it without \
             re-mining, and $(b,serve --mmap) opens it without copying.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Wall-clock budget for the mine. On expiry the patterns found so \
             far are reported (and flushed to $(b,--store), marked \
             incomplete) and the run exits with status timeout.")
  in
  let run file l delta sigma closed dot json store_out timeout jobs family
      center =
    let g = Io.read_file file in
    let family, l = resolve_family family center ~l in
    let config =
      { Skinny_mine.Config.default with closed_growth = closed; jobs; family }
    in
    let run_ctx = Spm_engine.Run.create ?timeout () in
    let r = Skinny_mine.mine ~config ~run:run_ctx g ~l ~delta ~sigma in
    let status = r.Skinny_mine.stats.Skinny_mine.status in
    (match store_out with
    | None -> ()
    | Some path ->
      Spm_store.Store.save path
        (Spm_store.Store.of_result ~family ~graph:g ~l ~delta ~sigma
           ~closed_growth:closed r);
      if not json then
        Printf.printf "pattern store written to %s (%d patterns%s)\n" path
          (List.length r.Skinny_mine.patterns)
          (if status = Spm_engine.Run.Ok then "" else ", incomplete"));
    (* --json emits the statistics object alone so stdout parses as JSON. *)
    if json then print_endline (Skinny_mine.Stats.to_json r.Skinny_mine.stats)
    else begin
      if status <> Spm_engine.Run.Ok then
        Printf.printf "mine stopped early (%s) — partial results below\n"
          (Spm_engine.Run.status_to_string status);
      (match family with
      | Constraints.Skinny ->
        Printf.printf
          "%d %s%d-long %d-skinny patterns (sigma = %d, jobs = %d)\n"
          (List.length r.Skinny_mine.patterns)
          (if closed then "closed " else "")
          l delta sigma jobs
      | Constraints.Neighborhood { center } ->
        Printf.printf
          "%d %sradius-%d neighborhood patterns (centers: %s, sigma = %d, \
           jobs = %d)\n"
          (List.length r.Skinny_mine.patterns)
          (if closed then "closed " else "")
          delta
          (match center with
          | None -> "any label"
          | Some c -> Printf.sprintf "label %d" c)
          sigma jobs);
      Format.printf "%a@." Skinny_mine.Stats.pp r.Skinny_mine.stats;
      List.iteri
        (fun i m ->
          if i < 20 then
            Printf.printf "  #%d: |V|=%d |E|=%d support=%d\n" (i + 1)
              (Graph.n m.Skinny_mine.pattern)
              (Graph.m m.Skinny_mine.pattern)
              m.Skinny_mine.support)
        r.Skinny_mine.patterns;
      if List.length r.Skinny_mine.patterns > 20 then
        Printf.printf "  ... (%d more)\n"
          (List.length r.Skinny_mine.patterns - 20)
    end;
    match dot with
    | None -> ()
    | Some path -> (
      match
        List.sort
          (fun a b ->
            Int.compare (Graph.m b.Skinny_mine.pattern) (Graph.m a.Skinny_mine.pattern))
          r.Skinny_mine.patterns
      with
      | [] -> ()
      | m :: _ ->
        let oc = open_out path in
        output_string oc (Io.to_dot m.Skinny_mine.pattern);
        close_out oc;
        Printf.printf "largest pattern written to %s\n" path)
  in
  Cmd.v
    (Cmd.info "mine"
       ~doc:
         "Mine all l-long delta-skinny frequent patterns (or, with \
          $(b,--constraint neighborhood), all radius-delta neighborhood \
          patterns).")
    Term.(
      const run $ graph_file $ l $ delta $ sigma $ closed $ dot $ json
      $ store_out $ timeout $ jobs $ family_arg $ center_arg)

(* --- baseline --- *)

let baseline_cmd =
  let which =
    Arg.(
      required
      & opt (some (enum [ ("spidermine", `Spider); ("subdue", `Subdue); ("seus", `Seus); ("moss", `Moss) ])) None
      & info [ "a"; "algorithm" ] ~doc:"One of spidermine, subdue, seus, moss.")
  in
  let run file which sigma seed jobs =
    let g = Io.read_file file in
    if jobs > 1 then
      Printf.eprintf
        "note: the reimplemented baselines are single-threaded; --jobs %d is \
         ignored here\n%!"
        jobs;
    match which with
    | `Spider ->
      let r =
        Spm_baselines.Spider_mine.mine ~rng:(Gen.rng seed) ~graph:g ~sigma ~k:10 ()
      in
      Printf.printf "SpiderMine: %d spiders, top patterns:\n" r.Spm_baselines.Spider_mine.spiders_mined;
      List.iter
        (fun (p, s) -> Printf.printf "  |V|=%d |E|=%d support=%d\n" (Graph.n p) (Graph.m p) s)
        r.Spm_baselines.Spider_mine.patterns
    | `Subdue ->
      let r = Spm_baselines.Subdue.mine ~graph:g () in
      List.iter
        (fun s ->
          Printf.printf "  |V|=%d instances=%d compression=%.1f\n"
            (Graph.n s.Spm_baselines.Subdue.pattern)
            s.Spm_baselines.Subdue.instances s.Spm_baselines.Subdue.compression)
        r.Spm_baselines.Subdue.best
    | `Seus ->
      let r = Spm_baselines.Seus.mine ~graph:g ~sigma () in
      Printf.printf "SEuS: %d candidates, %d verified, %d frequent\n"
        r.Spm_baselines.Seus.candidates r.Spm_baselines.Seus.verified
        (List.length r.Spm_baselines.Seus.patterns)
    | `Moss ->
      let r = Spm_gspan.Moss.mine ~deadline:30.0 ~graph:g ~sigma () in
      Printf.printf "MoSS: %d patterns%s\n"
        (List.length r.Spm_gspan.Engine.results)
        (if r.Spm_gspan.Engine.complete then "" else " (timed out)")
  in
  Cmd.v
    (Cmd.info "baseline" ~doc:"Run a baseline miner.")
    Term.(const run $ graph_file $ which $ sigma $ seed $ jobs)

(* --- serve --- *)

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~doc:"Address to bind/connect to.")

let port_arg =
  Arg.(
    value
    & opt int Spm_server.Protocol.default_port
    & info [ "p"; "port" ] ~doc:"TCP port (serve: 0 picks an ephemeral port).")

let serve_cmd =
  let store =
    Arg.(
      value
      & opt (some file) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:"Pattern store to preload (written by $(b,mine --store)).")
  in
  let graph =
    Arg.(
      value
      & opt (some file) None
      & info [ "graph" ] ~docv:"FILE"
          ~doc:
            "Data graph (v/e format) to serve mine queries against when no \
             store is preloaded.")
  in
  let mmap =
    Arg.(
      value & flag
      & info [ "mmap" ]
          ~doc:
            "Open $(b,--store) by memory-mapping its graph payload instead \
             of decoding a copy: near-instant restarts, RSS bounded by the \
             pages actually touched. Requires a G2 store (the $(b,mine \
             --store) default); version-1 files fall back to a full load.")
  in
  let cache =
    Arg.(
      value & opt int 128
      & info [ "cache" ] ~doc:"LRU response-cache capacity (entries).")
  in
  let mine_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "mine-timeout" ] ~docv:"SECS"
          ~doc:
            "Wall-clock budget granted to each mine request. Overrunning \
             mines stop cooperatively and answer with status timeout plus \
             the patterns found so far; the server stays up.")
  in
  let run host port store mmap graph cache mine_timeout jobs =
    let t =
      Spm_server.Server.create ~jobs ~cache_capacity:cache ?mine_timeout
        ~mmap_stores:mmap ()
    in
    (match store with
    | Some path ->
      let s =
        if mmap then Spm_store.Store.load_mapped path
        else Spm_store.Store.load path
      in
      (* Committed updates journal back to the same file, so a restart of
         this command resumes at the latest version. Saves go through a
         temp file + rename, which leaves a mapped graph's pages intact. *)
      Spm_server.Server.set_store t ~path s;
      Printf.printf
        "%s store %s: %d patterns (l = %d, delta = %d, sigma = %d%s), \
         version %d\n\
         %!"
        (if mmap then "mapped" else "loaded")
        path
        (List.length s.Spm_store.Store.patterns)
        s.Spm_store.Store.l s.Spm_store.Store.delta s.Spm_store.Store.sigma
        (if s.Spm_store.Store.closed_growth then ", closed" else "")
        (Spm_store.Store.latest_version s)
    | None -> (
      match graph with
      | Some path ->
        let g = Io.read_file path in
        Spm_server.Server.set_graph t g;
        Printf.printf "loaded graph %s: %d vertices, %d edges\n%!" path
          (Graph.n g) (Graph.m g)
      | None ->
        Printf.printf
          "no store or graph preloaded; clients must send a load query\n%!"));
    let fd, actual_port = Spm_server.Server.listen ~host ~port () in
    Printf.printf "skinnyserve: listening on %s:%d (jobs = %d)\n%!" host
      actual_port jobs;
    Spm_server.Server.serve t fd;
    let s = Spm_server.Server.stats t in
    Printf.printf
      "skinnyserve: shut down after %d requests (%d cache hits, %d errors)\n"
      s.Spm_server.Protocol.requests s.Spm_server.Protocol.cache_hits
      s.Spm_server.Protocol.errors
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the SkinnyServe query service: a TCP server answering mine, \
          lookup and containment queries over a mined pattern store.")
    Term.(
      const run $ host_arg $ port_arg $ store $ mmap $ graph $ cache
      $ mine_timeout $ jobs)

(* --- query --- *)

let query_cmd =
  let action =
    let actions =
      [ ("ping", `Ping); ("mine", `Mine); ("lookup", `Lookup);
        ("contains", `Contains); ("load", `Load); ("stats", `Stats);
        ("progress", `Progress); ("cancel", `Cancel); ("shutdown", `Shutdown);
        ("update", `Update); ("subscribe", `Subscribe) ]
    in
    Arg.(
      required
      & pos 0 (some (enum actions)) None
      & info [] ~docv:"ACTION"
          ~doc:
            "One of $(b,ping), $(b,mine), $(b,lookup), $(b,contains), \
             $(b,load), $(b,stats), $(b,progress), $(b,cancel), \
             $(b,shutdown), $(b,update), $(b,subscribe).")
  in
  let file =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Graph file for $(b,contains); server-side store path for \
             $(b,load); edit script (av/ae/re format) for $(b,update).")
  in
  let updates =
    Arg.(
      value
      & opt (some int) None
      & info [ "updates" ] ~docv:"N"
          ~doc:
            "$(b,subscribe): exit after N pushed diffs (default: until the \
             server shuts down).")
  in
  let l = Arg.(value & opt int 4 & info [ "l"; "length" ] ~doc:"Diameter length (mine, lookup filter).") in
  let delta = Arg.(value & opt int 2 & info [ "d"; "delta" ] ~doc:"Skinniness bound (mine).") in
  let closed = Arg.(value & flag & info [ "closed" ] ~doc:"Closed-pattern growth (mine).") in
  let min_support =
    Arg.(value & opt (some int) None & info [ "min-support" ] ~doc:"Lookup filter: support >= N.")
  in
  let max_support =
    Arg.(value & opt (some int) None & info [ "max-support" ] ~doc:"Lookup filter: support <= N.")
  in
  let length_filter =
    Arg.(value & opt (some int) None & info [ "with-length" ] ~doc:"Lookup filter: diameter length = N.")
  in
  let labels =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "labels" ] ~docv:"L1,L2,.."
          ~doc:"Lookup filter: exact vertex-label multiset.")
  in
  let print_patterns ms =
    Printf.printf "%d patterns\n" (List.length ms);
    List.iteri
      (fun i (m : Skinny_mine.mined) ->
        if i < 20 then
          Printf.printf "  #%d: |V|=%d |E|=%d support=%d diam-l=%d\n" (i + 1)
            (Graph.n m.Skinny_mine.pattern)
            (Graph.m m.Skinny_mine.pattern)
            m.Skinny_mine.support
            (Path_pattern.length m.Skinny_mine.diameter_labels))
      ms;
    if List.length ms > 20 then
      Printf.printf "  ... (%d more)\n" (List.length ms - 20)
  in
  let print_meta c =
    (match Spm_server.Client.last_unreachable c with
    | [] -> ()
    | shards ->
      Printf.printf "[partial: unreachable %s]\n" (String.concat ", " shards));
    (match Spm_server.Client.last_status c with
    | Some status when status <> Spm_engine.Run.Ok ->
      Printf.printf "[truncated: %s — partial results]\n"
        (Spm_engine.Run.status_to_string status)
    | Some _ | None -> ());
    match Spm_server.Client.last_meta c with
    | Some (hit, seconds) ->
      Printf.printf "[%s, %.3f ms server time]\n"
        (if hit then "cache hit" else "computed")
        (1000.0 *. seconds)
    | None -> ()
  in
  let need_file action = function
    | Some f -> f
    | None -> failwith (Printf.sprintf "query %s requires a FILE argument" action)
  in
  let print_diff (u : Spm_server.Protocol.update_reply) =
    Printf.printf
      "version %d: +%d -%d patterns (%d of %d clusters repaired)\n%!"
      u.Spm_server.Protocol.new_version
      (List.length u.Spm_server.Protocol.added)
      (List.length u.Spm_server.Protocol.removed)
      u.Spm_server.Protocol.repaired u.Spm_server.Protocol.clusters
  in
  let run host port action file l delta sigma closed min_support max_support
      length_filter labels updates family center =
    Spm_server.Client.with_connection ~host ~port (fun c ->
        (match action with
        | `Ping ->
          Spm_server.Client.ping c;
          print_endline "pong"
        | `Load ->
          let n = Spm_server.Client.load_store c (need_file "load" file) in
          Printf.printf "server loaded %d patterns\n" n
        | `Mine ->
          let family, l = resolve_family family center ~l in
          let ms =
            Spm_server.Client.mine c
              (Spm_server.Protocol.mine_params ~closed_growth:closed ~family
                 ~l ~delta ~sigma ())
          in
          print_patterns ms
        | `Lookup ->
          let ms =
            Spm_server.Client.lookup c
              (Spm_server.Protocol.lookup_params ?min_support ?max_support
                 ?length:length_filter ?labels ())
          in
          print_patterns ms
        | `Update ->
          let edits = Io.read_edits (need_file "update" file) in
          print_diff (Spm_server.Client.update c edits)
        | `Subscribe ->
          let v = Spm_server.Client.subscribe c in
          Printf.printf "subscribed at version %d\n%!" v;
          let rec watch seen =
            if updates <> Some seen then
              match Spm_server.Client.next_diff c with
              | None -> print_endline "server closed the diff stream"
              | Some u ->
                print_diff u;
                watch (seen + 1)
          in
          watch 0
        | `Contains ->
          let g = Io.read_file (need_file "contains" file) in
          let ms = Spm_server.Client.contains c g in
          print_patterns ms
        | `Stats ->
          let s = Spm_server.Client.stats c in
          Printf.printf
            "requests:       %d\n\
             cache hits:     %d\n\
             errors:         %d\n\
             store patterns: %d\n\
             uptime:         %.1f s\n\
             service time:   %.3f s\n"
            s.Spm_server.Protocol.requests s.Spm_server.Protocol.cache_hits
            s.Spm_server.Protocol.errors
            s.Spm_server.Protocol.store_patterns
            s.Spm_server.Protocol.uptime_seconds
            s.Spm_server.Protocol.service_seconds
        | `Progress ->
          let p = Spm_server.Client.progress c in
          if not p.Spm_server.Protocol.running then
            print_endline "no mine in flight"
          else
            Printf.printf
              "mining for %.1f s: level %d, %d candidates, %d emitted\n"
              p.Spm_server.Protocol.elapsed_seconds
              p.Spm_server.Protocol.level p.Spm_server.Protocol.candidates
              p.Spm_server.Protocol.emitted
        | `Cancel ->
          if Spm_server.Client.cancel c then
            print_endline "cancellation requested"
          else print_endline "no mine in flight"
        | `Shutdown ->
          Spm_server.Client.shutdown c;
          print_endline "server shutting down");
        print_meta c)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Send one query to a running SkinnyServe server.")
    Term.(
      const run $ host_arg $ port_arg $ action $ file $ l $ delta $ sigma
      $ closed $ min_support $ max_support $ length_filter $ labels $ updates
      $ family_arg $ center_arg)

(* --- verify --- *)

let verify_cmd =
  let store =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"STORE" ~doc:"Pattern-store file to check.")
  in
  let run path =
    match Spm_store.Store.verify_file path with
    | () -> Printf.printf "%s: ok\n" path
    | exception Spm_store.Codec.Corrupt msg ->
      (* Distinct exit code: scripts tell "file is damaged" from other
         runtime failures (which exit 1). *)
      Printf.eprintf "%s: corrupt: %s\n" path msg;
      exit exit_corrupt_store
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Full-strength offline check of a store file: every section CRC \
          and the complete graph payload checksum (streamed, constant \
          memory). Exits 3 if the file is corrupt."
       ~exits:
         (Cmd.Exit.info exit_corrupt_store ~doc:"when the store is corrupt."
         :: Cmd.Exit.defaults))
    Term.(const run $ store)

(* --- shard --- *)

let shard_cmd =
  let store =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"STORE" ~doc:"Pattern-store file to partition.")
  in
  let shards =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"N" ~doc:"Number of shards.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"BASE"
          ~doc:
            "Base path for the shard stores and manifest (default: STORE \
             minus its extension).")
  in
  let run path shards out =
    let s = Spm_store.Store.load path in
    let base =
      match out with Some b -> b | None -> Filename.remove_extension path
    in
    let m = Spm_cluster.Partition.write ~base ~shards s in
    Printf.printf "manifest %s (graph version %d):\n"
      (Spm_cluster.Partition.manifest_file ~base)
      m.Spm_cluster.Partition.version;
    List.iteri
      (fun i (e : Spm_cluster.Partition.entry) ->
        Printf.printf "  %s  %s  %d patterns\n"
          (Spm_cluster.Partition.shard_name i)
          e.Spm_cluster.Partition.file
          (List.length e.Spm_cluster.Partition.patterns))
      m.Spm_cluster.Partition.entries
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Partition a mined pattern store into N shard stores by diameter \
          cluster, plus a manifest the router plans from. Deterministic: \
          the same store always splits into the same bytes. Serve each \
          shard store with $(b,skinnymine serve --store), then front them \
          with $(b,skinnymine route).")
    Term.(const run $ store $ shards $ out)

(* --- route --- *)

let route_cmd =
  let manifest =
    Arg.(
      required
      & opt (some file) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:"Manifest written by $(b,skinnymine shard).")
  in
  let workers =
    Arg.(
      value & opt_all string []
      & info [ "worker" ] ~docv:"[HOST:]PORT"
          ~doc:
            "Shard worker endpoint, once per shard in manifest order \
             (host defaults to 127.0.0.1).")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Per-request budget: scatter legs carve their timeouts from \
             it, and shards that miss it are reported as unreachable in a \
             partial response instead of stalling the answer.")
  in
  let parse_endpoint spec =
    match String.rindex_opt spec ':' with
    | Some i ->
      ( String.sub spec 0 i,
        int_of_string (String.sub spec (i + 1) (String.length spec - i - 1)) )
    | None -> ("127.0.0.1", int_of_string spec)
  in
  let run host port manifest workers deadline =
    let m = Spm_cluster.Partition.load_manifest manifest in
    let endpoints =
      try Array.of_list (List.map parse_endpoint workers)
      with Failure _ -> failwith "bad --worker endpoint (want [HOST:]PORT)"
    in
    let r = Spm_cluster.Router.create ?deadline ~manifest:m ~endpoints () in
    let fd, actual_port = Spm_server.Server.listen ~host ~port () in
    Printf.printf "skinnyroute: %d shards, listening on %s:%d\n%!"
      m.Spm_cluster.Partition.shards host actual_port;
    Spm_cluster.Router.serve r fd;
    let s = Spm_cluster.Router.stats r in
    let contacted, pruned = Spm_cluster.Router.pruning r in
    Printf.printf
      "skinnyroute: shut down after %d requests (%d errors, %d shard calls, \
       %d pruned)\n"
      s.Spm_server.Protocol.requests s.Spm_server.Protocol.errors contacted
      pruned
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Run the scatter-gather router: one SkinnyServe endpoint fronting \
          the shard workers of a partitioned layout, with signature-summary \
          pushdown, ordered merge (responses byte-identical to a \
          single-process server) and partial-answer degradation when a \
          worker is down.")
    Term.(
      const run $ host_arg $ port_arg $ manifest $ workers $ deadline)

let () =
  let doc = "SkinnyMine: direct mining of l-long delta-skinny graph patterns" in
  let info =
    Cmd.info "skinnymine" ~version ~doc
      ~exits:
        (Cmd.Exit.info exit_runtime_error ~doc:"on runtime failure."
        :: Cmd.Exit.info exit_usage_error ~doc:"on command-line parsing errors."
        :: Cmd.Exit.defaults)
  in
  let group =
    Cmd.group info
      [ generate_cmd; corpus_cmd; stats_cmd; paths_cmd; mine_cmd;
        baseline_cmd; serve_cmd; query_cmd; verify_cmd; shard_cmd; route_cmd ]
  in
  (* [~catch:false] so runtime failures reach us: they exit 1, while
     cmdliner's own parse errors map to 2 — scripts can tell "you called it
     wrong" from "it broke". *)
  let code =
    try Cmd.eval ~catch:false group with
    | Failure msg | Sys_error msg ->
      Printf.eprintf "skinnymine: error: %s\n" msg;
      exit_runtime_error
    | Spm_store.Codec.Corrupt msg ->
      Printf.eprintf "skinnymine: corrupt data: %s\n" msg;
      exit_runtime_error
    | Spm_server.Client.Server_error msg ->
      Printf.eprintf "skinnymine: server error: %s\n" msg;
      exit_runtime_error
    | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "skinnymine: %s%s: %s\n" fn
        (if arg = "" then "" else " " ^ arg)
        (Unix.error_message e);
      exit_runtime_error
    | Invalid_argument msg ->
      Printf.eprintf "skinnymine: invalid argument: %s\n" msg;
      exit_runtime_error
  in
  exit (if code = Cmd.Exit.cli_error then exit_usage_error else code)
