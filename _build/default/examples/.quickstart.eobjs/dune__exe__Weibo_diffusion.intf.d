examples/weibo_diffusion.mli:
