examples/trajectory_mining.mli:
