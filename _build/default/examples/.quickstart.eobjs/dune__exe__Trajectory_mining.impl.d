examples/trajectory_mining.ml: Array Canonical_diameter Gen Graph Int List Printf Random Skinny_mine Spm_core Spm_graph String
