examples/weibo_diffusion.ml: Array Canonical_diameter Graph Int List Printf Skinny_mine Spm_core Spm_graph Spm_pattern Spm_workload String Weibo_like
