examples/framework_demo.ml: Array Canon Framework Gen Graph Hashtbl Int List Pattern Printf Skinny_mine Spm_baselines Spm_core Spm_graph Spm_pattern
