examples/dblp_collaboration.mli:
