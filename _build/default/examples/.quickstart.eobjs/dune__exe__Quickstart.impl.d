examples/quickstart.ml: Array Canonical_diameter Diameter_index Graph List Printf Skinny_mine Spm_core Spm_graph String
