examples/dblp_collaboration.ml: Array Canonical_diameter Dblp_like Graph Int List Printf Skinny_mine Spm_core Spm_graph Spm_workload String
