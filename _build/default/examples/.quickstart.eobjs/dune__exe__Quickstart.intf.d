examples/quickstart.mli:
