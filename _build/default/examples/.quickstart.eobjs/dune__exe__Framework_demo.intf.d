examples/framework_demo.mli:
