(** A synthetic stand-in for the paper's Sina Weibo experiment (§6.3).

    The real dataset (1.8M users, 230M tweets) is unavailable. We generate
    retweet/comment conversation graphs with the paper's schema: vertices are
    users labeled Root / Follower / Followee / Other; each retweet or comment
    adds an edge from the acting user to the target user; a user may appear
    several times in one conversation. Conversations grow by preferential
    attachment, and a fraction of them carry the published Figure-24 motif —
    a long diffusion chain in which the root repeatedly re-engages, each
    re-engagement fanning the tweet out further — so that long skinny
    diffusion patterns are frequent across the corpus. *)

val root_label : Spm_graph.Label.t
val follower_label : Spm_graph.Label.t
val followee_label : Spm_graph.Label.t
val other_label : Spm_graph.Label.t

val label_name : Spm_graph.Label.t -> string

type conversation = {
  graph : Spm_graph.Graph.t;
  has_motif : bool;
  root : int;  (** vertex id of the first root occurrence *)
}

val diffusion_motif : chain:int -> Spm_graph.Graph.t
(** The Figure-24 pattern: a length-[chain] retweet backbone alternating
    follower/other relays with root re-engagements hanging off it (a
    [chain]-long 3-skinny pattern for chain >= 4). *)

val generate :
  ?num_conversations:int ->
  ?size:int ->
  ?motif_fraction:float ->
  ?chain:int ->
  seed:int ->
  unit ->
  conversation list
(** Defaults: 40 conversations of ~120 users, 30% carrying the chain-13
    motif. *)
