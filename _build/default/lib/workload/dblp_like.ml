open Spm_graph

let year_label = 0

let cls_index = function
  | 'B' -> 0
  | 'J' -> 1
  | 'S' -> 2
  | 'P' -> 3
  | c -> invalid_arg (Printf.sprintf "Dblp_like: class %c" c)

let collab_label ~cls ~level =
  if level < 1 || level > 3 then invalid_arg "Dblp_like: level in 1..3";
  1 + (cls_index cls * 3) + (level - 1)

let label_name l =
  if l = year_label then "YEAR"
  else begin
    let l = l - 1 in
    let cls = [| 'B'; 'J'; 'S'; 'P' |].(l / 3) in
    Printf.sprintf "%c%d" cls ((l mod 3) + 1)
  end

type author = { graph : Graph.t; career_years : int; archetype : int }

(* Career stage of year [y] in a career of [n] years: 0..3 ~ B..P. *)
let stage y n = min 3 (4 * y / max 1 n)

(* Per-archetype collaboration profile: class and level of attached nodes as
   a function of career progress. *)
let collab_profile st archetype y n =
  let classes = [| 'B'; 'J'; 'S'; 'P' |] in
  match archetype with
  | 1 ->
    (* Rising: co-author class tracks the author's own stage; level grows. *)
    let s = stage y n in
    let level = 1 + (2 * y / max 1 n) in
    [ (classes.(s), level) ]
  | 2 ->
    (* Early-prolific: S/P collaborators from the start, level ~2. *)
    let cls = if Random.State.bool st then 'S' else 'P' in
    [ (cls, 2) ]
  | _ ->
    (* Noise: 0-2 random attachments. *)
    List.init (Random.State.int st 3) (fun _ ->
        (classes.(Random.State.int st 4), 1 + Random.State.int st 3))

let build_author st archetype years =
  let b = Graph.Builder.create () in
  let timeline =
    Array.init years (fun _ -> Graph.Builder.add_vertex b year_label)
  in
  for y = 0 to years - 2 do
    Graph.Builder.add_edge b timeline.(y) timeline.(y + 1)
  done;
  for y = 0 to years - 1 do
    List.iter
      (fun (cls, level) ->
        let v = Graph.Builder.add_vertex b (collab_label ~cls ~level) in
        Graph.Builder.add_edge b timeline.(y) v)
      (collab_profile st archetype y years)
  done;
  { graph = Graph.Builder.freeze b; career_years = years; archetype }

let generate ?(num_authors = 120) ?(min_years = 10) ?(max_years = 30) ~seed ()
    =
  let st = Gen.rng (seed + 0xdb1b) in
  List.init num_authors (fun i ->
      let years = min_years + Random.State.int st (max_years - min_years + 1) in
      let archetype = i mod 3 in
      build_author st archetype years)

let timeline_of a =
  (* Year nodes were allocated first and only they carry year_label in a
     consecutive prefix. *)
  let acc = ref [] in
  Graph.iter_vertices
    (fun v -> if Graph.label a.graph v = year_label then acc := v :: !acc)
    a.graph;
  List.rev !acc
