lib/workload/dblp_like.mli: Spm_graph
