lib/workload/settings.ml: Array Gen Graph List Printf Spm_core Spm_graph
