lib/workload/dblp_like.ml: Array Gen Graph List Printf Random Spm_graph
