lib/workload/settings.mli: Spm_graph
