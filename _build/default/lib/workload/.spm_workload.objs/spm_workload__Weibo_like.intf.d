lib/workload/weibo_like.mli: Spm_graph
