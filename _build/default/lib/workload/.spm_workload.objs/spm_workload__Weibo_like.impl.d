lib/workload/weibo_like.ml: Array Gen Graph List Printf Random Spm_graph Vec
