open Spm_graph

let root_label = 0
let follower_label = 1
let followee_label = 2
let other_label = 3

let label_name = function
  | 0 -> "ROOT"
  | 1 -> "FOLLOWER"
  | 2 -> "FOLLOWEE"
  | 3 -> "OTHER"
  | l -> Printf.sprintf "L%d" l

type conversation = { graph : Graph.t; has_motif : bool; root : int }

(* Figure 24: a diffusion backbone alternating follower/other relays, with
   the root user re-engaging every few hops (its re-engagement nodes are the
   twigs, plus small audience fans). *)
let diffusion_motif ~chain =
  let b = Graph.Builder.create () in
  let root = Graph.Builder.add_vertex b root_label in
  let prev = ref root in
  let backbone = ref [ root ] in
  for i = 1 to chain do
    let lbl = if i mod 2 = 1 then follower_label else other_label in
    let v = Graph.Builder.add_vertex b lbl in
    Graph.Builder.add_edge b !prev v;
    prev := v;
    backbone := v :: !backbone
  done;
  (* Root re-engagements: a ROOT twig every 4 hops, each with one audience
     follower hanging off it (level 2). *)
  let backbone = Array.of_list (List.rev !backbone) in
  Array.iteri
    (fun i v ->
      if i > 0 && i mod 4 = 0 && i < chain then begin
        let re = Graph.Builder.add_vertex b root_label in
        Graph.Builder.add_edge b v re;
        let fan = Graph.Builder.add_vertex b follower_label in
        Graph.Builder.add_edge b re fan
      end)
    backbone;
  Graph.Builder.freeze b

let generate ?(num_conversations = 40) ?(size = 120) ?(motif_fraction = 0.3)
    ?(chain = 13) ~seed () =
  let st = Gen.rng (seed + 0x3e1b0) in
  List.init num_conversations (fun ci ->
      let b = Graph.Builder.create () in
      let root = Graph.Builder.add_vertex b root_label in
      (* Endpoint multiset: each edge pushes both endpoints, so sampling from
         it is degree-proportional (preferential attachment). *)
      let endpoints = Vec.create () in
      Vec.push endpoints root;
      let add_user () =
        let r = Random.State.float st 1.0 in
        let lbl =
          if r < 0.45 then follower_label
          else if r < 0.6 then followee_label
          else if r < 0.9 then other_label
          else root_label (* the root re-appearing in its own thread *)
        in
        let target = Vec.get endpoints (Random.State.int st (Vec.length endpoints)) in
        let v = Graph.Builder.add_vertex b lbl in
        Graph.Builder.add_edge b target v;
        Vec.push endpoints target;
        Vec.push endpoints v
      in
      for _ = 1 to size - 1 do
        add_user ()
      done;
      let has_motif = float_of_int (ci mod 10) < motif_fraction *. 10.0 in
      if has_motif then begin
        let motif = diffusion_motif ~chain in
        ignore (Gen.inject st b ~pattern:motif ~copies:1 ())
      end;
      { graph = Graph.Builder.freeze b; has_motif; root })
