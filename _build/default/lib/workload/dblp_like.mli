(** A faithful synthetic stand-in for the paper's DBLP experiment (§6.3).

    The paper turns each author's publication history into a heterogeneous
    timeline graph: a path of year nodes, each year connected to at most four
    collaboration nodes labeled "Xk" with X ∈ {P, S, J, B} (prolific /
    senior / junior / beginner co-author class) and k ∈ {1, 2, 3} (how many
    such co-authors that year). The real crawl is unavailable, so we generate
    career trajectories from a small set of archetypes — the two published
    pattern examples (Figures 21–22) are seeded as archetypes: "collaborates
    with increasingly productive authors over the career" and "collaborates
    with productive authors from the start" — plus noise authors, so the
    archetypes emerge as frequent skinny patterns over the timeline
    backbone. *)

val year_label : Spm_graph.Label.t
(** Label of timeline (year) nodes: 0. *)

val collab_label : cls:char -> level:int -> Spm_graph.Label.t
(** Label of a collaboration node, [cls] in P/S/J/B, [level] in 1..3. *)

val label_name : Spm_graph.Label.t -> string

type author = {
  graph : Spm_graph.Graph.t;
  career_years : int;
  archetype : int;  (** 0 = noise, 1 = rising, 2 = early-prolific *)
}

val generate :
  ?num_authors:int ->
  ?min_years:int ->
  ?max_years:int ->
  seed:int ->
  unit ->
  author list
(** Default 120 authors with 10–30 year careers; roughly a third per
    archetype. *)

val timeline_of : author -> int list
(** Vertex ids of the year nodes, in career order. *)
