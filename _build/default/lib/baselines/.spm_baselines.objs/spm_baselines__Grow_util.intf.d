lib/baselines/grow_util.mli: Spm_graph Spm_pattern
