lib/baselines/origami.ml: Array Canon Gen Graph Hashtbl Int List Option Pattern Spm_graph Spm_pattern Subiso Support Sys
