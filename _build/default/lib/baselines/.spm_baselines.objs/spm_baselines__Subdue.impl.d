lib/baselines/subdue.ml: Float Grow_util Hashtbl List Pattern Spm_pattern Sys
