lib/baselines/spider_mine.mli: Spm_graph Spm_pattern
