lib/baselines/subdue.mli: Spm_graph Spm_pattern
