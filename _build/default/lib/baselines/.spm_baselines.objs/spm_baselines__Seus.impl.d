lib/baselines/seus.ml: Canon Graph Hashtbl Int List Option Pattern Spm_graph Spm_pattern Support Sys
