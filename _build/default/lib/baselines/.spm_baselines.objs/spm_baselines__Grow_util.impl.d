lib/baselines/grow_util.ml: Array Canon Embedding Graph Hashtbl Label List Option Pattern Spm_graph Spm_pattern
