lib/baselines/spider_mine.ml: Array Bfs Canon Gen Graph Grow_util Hashtbl Int List Pattern Random Spm_graph Spm_pattern Subiso Support Sys
