lib/baselines/origami.mli: Spm_graph Spm_pattern
