lib/baselines/seus.mli: Hashtbl Spm_graph Spm_pattern
