(** Shared embedding-list pattern growth used by the baseline miners.

    A state is a pattern plus the complete list of its mappings into the data
    graph; one-edge extensions are derived from the mappings exactly as in
    the core miner, but without any diameter machinery. *)

type state = { pattern : Spm_pattern.Pattern.t; maps : int array list }

val vertex_seeds : Spm_graph.Graph.t -> (Spm_graph.Label.t * state) list
(** One single-vertex state per label present in the graph, with all its
    image vertices. *)

val edge_seeds : Spm_graph.Graph.t -> state list
(** One two-vertex state per frequent label pair (all orientations). *)

val extensions : Spm_graph.Graph.t -> state -> state list
(** All one-edge extensions (new-vertex and closing), one state per distinct
    descriptor, each with the filtered mapping list. *)

val support : Spm_graph.Graph.t -> state -> int
(** Distinct embedding subgraphs (distinct images for single-vertex
    patterns). *)

val key : state -> string
(** Canonical key of the state's pattern. *)
