(** Support measures.

    - {!single_graph}: |E[P]| — the number of distinct embedding subgraphs in
      one data graph, the measure of Definition 8.
    - {!transaction}: number of database graphs containing P — the classical
      graph-transaction support the paper derives as the easy variant.
    - {!mni}: minimum-image-based support (Bringmann & Nijssen), the standard
      anti-monotone single-graph measure, provided for comparison because
      embedding-count support is not anti-monotone in general. *)

val single_graph :
  ?limit:int -> Pattern.t -> Spm_graph.Graph.t -> int
(** Distinct embedding subgraphs; stops counting at [limit] if given (the
    count may then undershoot the true value but is ≥ [limit] iff the true
    value is). *)

val is_frequent_single : Pattern.t -> Spm_graph.Graph.t -> sigma:int -> bool
(** [single_graph ~limit:sigma p g >= sigma], with early exit. *)

val transaction : Pattern.t -> Spm_graph.Graph.t list -> int

val is_frequent_transaction :
  Pattern.t -> Spm_graph.Graph.t list -> sigma:int -> bool

val mni : Pattern.t -> Spm_graph.Graph.t -> int
(** Minimum over pattern vertices of the number of distinct data vertices in
    that position across all mappings. *)
