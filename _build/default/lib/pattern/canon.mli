(** Canonical keys for patterns — isomorphism-invariant identity.

    Built on {!Dfs_code.min_code} for connected patterns with edges; isolated
    vertices and disconnected patterns are handled by per-component keying.
    Two patterns are isomorphic iff their keys are equal. *)

val key : Pattern.t -> string

val iso : Pattern.t -> Pattern.t -> bool
(** Isomorphism test with cheap pre-checks (sizes, label multisets) before
    comparing keys. *)

module Set : sig
  (** A set of patterns up to isomorphism. *)

  type t

  val create : unit -> t

  val add : t -> Pattern.t -> bool
  (** [true] if the pattern was not already present (up to isomorphism). *)

  val mem : t -> Pattern.t -> bool

  val cardinal : t -> int

  val to_list : t -> Pattern.t list
  (** Insertion order. *)
end
