(** Embeddings as subgraphs.

    The paper defines E[P] as the set of *subgraphs* of G isomorphic to P
    (§2), so two mappings whose images are the same edge set count once.
    This module normalizes mappings to canonical subgraph keys and
    deduplicates. *)

type key
(** Canonical identity of an embedding's image subgraph. *)

val key_of_mapping : data_n:int -> pattern:Pattern.t -> int array -> key
(** Key of the image of a mapping: the sorted image edge set, each edge packed
    as [u * data_n + v] with [u < v]. Requires [data_n * data_n] within native
    int range (always true for graphs that fit in memory). *)

val compare_key : key -> key -> int

val equal_key : key -> key -> bool

val hash_key : key -> int

module Key_set : sig
  type t

  val create : unit -> t

  val add : t -> key -> bool
  (** [true] if the key was new. *)

  val mem : t -> key -> bool

  val cardinal : t -> int
end

val dedup_mappings :
  data_n:int -> pattern:Pattern.t -> int array list -> int array list
(** Keep one mapping per distinct image subgraph, preserving first-seen
    order. *)

val count_distinct :
  data_n:int -> pattern:Pattern.t -> int array list -> int
