open Spm_graph

(* Search order: start at a vertex whose label is rarest in the target, then
   BFS so every later vertex has a mapped neighbor. *)
let search_order pattern target =
  let np = Graph.n pattern in
  if np = 0 then invalid_arg "Subiso: empty pattern";
  let freq = Hashtbl.create 16 in
  Graph.iter_vertices
    (fun v ->
      let l = Graph.label target v in
      Hashtbl.replace freq l (1 + Option.value ~default:0 (Hashtbl.find_opt freq l)))
    target;
  let rarity v =
    Option.value ~default:0 (Hashtbl.find_opt freq (Graph.label pattern v))
  in
  let root = ref 0 in
  Graph.iter_vertices
    (fun v -> if rarity v < rarity !root then root := v)
    pattern;
  let order = Array.make np (-1) in
  let placed = Array.make np false in
  let queue = Queue.create () in
  Queue.add !root queue;
  placed.(!root) <- true;
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!k) <- v;
    incr k;
    Array.iter
      (fun w ->
        if not placed.(w) then begin
          placed.(w) <- true;
          Queue.add w queue
        end)
      (Graph.adj pattern v)
  done;
  if !k <> np then invalid_arg "Subiso: pattern must be connected";
  order

let run ?anchor ~pattern ~target ~stop f =
  let np = Graph.n pattern in
  let order = search_order pattern target in
  let order =
    (* If anchored, make the anchored pattern vertex the root. *)
    match anchor with
    | None -> order
    | Some (pv, _) ->
      let rest = Array.to_list order |> List.filter (fun v -> v <> pv) in
      (* Re-BFS from pv to keep connectivity of the prefix. *)
      let placed = Array.make np false in
      placed.(pv) <- true;
      let out = ref [ pv ] in
      let pending = ref rest in
      let progress = ref true in
      while !pending <> [] && !progress do
        progress := false;
        let next, still =
          List.partition
            (fun v ->
              Array.exists (fun w -> placed.(w)) (Graph.adj pattern v))
            !pending
        in
        if next <> [] then begin
          progress := true;
          List.iter (fun v -> placed.(v) <- true) next;
          out := List.rev_append next !out
        end;
        pending := still
      done;
      Array.of_list (List.rev !out)
  in
  let map = Array.make np (-1) in
  let used = Hashtbl.create 64 in
  let stopped = ref false in
  let rec place depth =
    if !stopped then ()
    else if depth = np then begin
      f map;
      if stop () then stopped := true
    end
    else begin
      let pv = order.(depth) in
      let lbl = Graph.label pattern pv in
      let mapped_nbrs =
        Array.to_list (Graph.adj pattern pv)
        |> List.filter (fun w -> map.(w) >= 0)
      in
      let try_candidate tv =
        if
          (not (Hashtbl.mem used tv))
          && Graph.label target tv = lbl
          && Graph.degree target tv >= Graph.degree pattern pv
          && List.for_all (fun w -> Graph.has_edge target map.(w) tv) mapped_nbrs
        then begin
          map.(pv) <- tv;
          Hashtbl.add used tv ();
          place (depth + 1);
          Hashtbl.remove used tv;
          map.(pv) <- -1
        end
      in
      match (anchor, mapped_nbrs) with
      | Some (apv, atv), _ when apv = pv -> try_candidate atv
      | _, w :: _ ->
        (* Candidates restricted to neighbors of one mapped image. *)
        Array.iter try_candidate (Graph.adj target map.(w))
      | _, [] ->
        Graph.iter_vertices try_candidate target
    end
  in
  place 0

let iter_mappings ~pattern ~target f =
  run ~pattern ~target ~stop:(fun () -> false) f

let mappings ~pattern ~target =
  let acc = ref [] in
  iter_mappings ~pattern ~target (fun m -> acc := Array.copy m :: !acc);
  List.rev !acc

let exists ~pattern ~target =
  let found = ref false in
  run ~pattern ~target ~stop:(fun () -> true) (fun _ -> found := true);
  !found

let count_mappings ?limit ~pattern ~target () =
  let count = ref 0 in
  let stop () = match limit with Some l -> !count >= l | None -> false in
  run ~pattern ~target ~stop (fun _ -> incr count);
  !count

let iter_mappings_anchored ~pattern ~target ~anchor f =
  run ~anchor ~pattern ~target ~stop:(fun () -> false) f
