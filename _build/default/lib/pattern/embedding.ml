open Spm_graph

type key = int array

let key_of_mapping ~data_n ~pattern m =
  let edges = Graph.edges pattern in
  let packed =
    List.map
      (fun (pu, pv) ->
        let u = m.(pu) and v = m.(pv) in
        let u, v = if u < v then (u, v) else (v, u) in
        (u * data_n) + v)
      edges
  in
  let a = Array.of_list packed in
  Array.sort Int.compare a;
  a

let compare_key (a : key) (b : key) = compare a b
let equal_key (a : key) (b : key) = a = b
let hash_key (k : key) = Hashtbl.hash k

module Key_set = struct
  type t = (key, unit) Hashtbl.t

  let create () = Hashtbl.create 64

  let mem t k = Hashtbl.mem t k

  let add t k =
    if mem t k then false
    else begin
      Hashtbl.add t k ();
      true
    end

  let cardinal = Hashtbl.length
end

let dedup_mappings ~data_n ~pattern ms =
  let seen = Key_set.create () in
  List.filter (fun m -> Key_set.add seen (key_of_mapping ~data_n ~pattern m)) ms

let count_distinct ~data_n ~pattern ms =
  let seen = Key_set.create () in
  List.iter (fun m -> ignore (Key_set.add seen (key_of_mapping ~data_n ~pattern m))) ms;
  Key_set.cardinal seen
