lib/pattern/dfs_code.mli: Format Pattern
