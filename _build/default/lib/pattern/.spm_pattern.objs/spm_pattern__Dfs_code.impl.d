lib/pattern/dfs_code.ml: Array Bfs Buffer Format Graph Hashtbl Int List Option Printf Spm_graph Stdlib
