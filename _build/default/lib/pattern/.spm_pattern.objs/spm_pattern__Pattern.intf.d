lib/pattern/pattern.mli: Format Spm_graph
