lib/pattern/pattern.ml: Array Bfs Graph List Spm_graph
