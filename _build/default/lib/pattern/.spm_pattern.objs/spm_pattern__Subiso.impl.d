lib/pattern/subiso.ml: Array Graph Hashtbl List Option Queue Spm_graph
