lib/pattern/canon.ml: Array Bfs Dfs_code Graph Hashtbl Int List Pattern Spm_graph String
