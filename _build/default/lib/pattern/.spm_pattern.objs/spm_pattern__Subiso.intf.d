lib/pattern/subiso.mli: Pattern Spm_graph
