lib/pattern/embedding.ml: Array Graph Hashtbl Int List Spm_graph
