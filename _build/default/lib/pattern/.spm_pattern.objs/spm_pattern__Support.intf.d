lib/pattern/support.mli: Pattern Spm_graph
