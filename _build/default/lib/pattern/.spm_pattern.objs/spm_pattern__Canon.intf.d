lib/pattern/canon.mli: Pattern
