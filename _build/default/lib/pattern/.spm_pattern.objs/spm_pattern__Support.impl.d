lib/pattern/support.ml: Array Embedding Graph Hashtbl List Spm_graph Subiso
