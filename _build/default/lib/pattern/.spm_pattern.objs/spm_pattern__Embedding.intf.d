lib/pattern/embedding.mli: Pattern
