open Spm_graph

let single_graph ?limit p g =
  let data_n = Graph.n g in
  let seen = Embedding.Key_set.create () in
  (try
     Subiso.iter_mappings ~pattern:p ~target:g (fun m ->
         ignore
           (Embedding.Key_set.add seen (Embedding.key_of_mapping ~data_n ~pattern:p m));
         match limit with
         | Some l when Embedding.Key_set.cardinal seen >= l -> raise Exit
         | Some _ | None -> ())
   with Exit -> ());
  Embedding.Key_set.cardinal seen

let is_frequent_single p g ~sigma = single_graph ~limit:sigma p g >= sigma

let transaction p gs =
  List.fold_left
    (fun acc g -> if Subiso.exists ~pattern:p ~target:g then acc + 1 else acc)
    0 gs

let is_frequent_transaction p gs ~sigma =
  let rec loop remaining count gs =
    count >= sigma
    ||
    match gs with
    | [] -> false
    | g :: rest ->
      if count + remaining < sigma then false
      else if Subiso.exists ~pattern:p ~target:g then
        loop (remaining - 1) (count + 1) rest
      else loop (remaining - 1) count rest
  in
  loop (List.length gs) 0 gs

let mni p g =
  let np = Graph.n p in
  let images = Array.init np (fun _ -> Hashtbl.create 16) in
  Subiso.iter_mappings ~pattern:p ~target:g (fun m ->
      Array.iteri (fun pv tv -> Hashtbl.replace images.(pv) tv ()) m);
  Array.fold_left (fun acc h -> min acc (Hashtbl.length h)) max_int images
  |> fun x -> if x = max_int then 0 else x
