open Spm_graph

let component_key g =
  if Graph.m g = 0 then begin
    (* Single vertex (or empty). *)
    let ls = Array.to_list (Graph.labels g) |> List.sort Int.compare in
    "v:" ^ String.concat "," (List.map string_of_int ls)
  end
  else "c:" ^ Dfs_code.to_string (Dfs_code.min_code g)

let key p =
  if Graph.n p = 0 then "empty"
  else begin
    let comp, k = Bfs.components p in
    if k = 1 then component_key p
    else begin
      let keys =
        List.init k (fun c ->
            let vs =
              Array.to_list (Array.init (Graph.n p) (fun v -> v))
              |> List.filter (fun v -> comp.(v) = c)
              |> Array.of_list
            in
            component_key (Graph.induced p vs))
      in
      String.concat "|" (List.sort String.compare keys)
    end
  end

let label_multiset p =
  let ls = Array.copy (Graph.labels p) in
  Array.sort Int.compare ls;
  ls

let iso p q =
  Graph.n p = Graph.n q
  && Graph.m p = Graph.m q
  && label_multiset p = label_multiset q
  && String.equal (key p) (key q)

module Set = struct
  type t = { tbl : (string, unit) Hashtbl.t; mutable items : Pattern.t list }

  let create () = { tbl = Hashtbl.create 64; items = [] }

  let mem t p = Hashtbl.mem t.tbl (key p)

  let add t p =
    let k = key p in
    if Hashtbl.mem t.tbl k then false
    else begin
      Hashtbl.add t.tbl k ();
      t.items <- p :: t.items;
      true
    end

  let cardinal t = Hashtbl.length t.tbl

  let to_list t = List.rev t.items
end
