(** gSpan-style DFS codes and minimal-code canonicalization.

    A DFS code is the edge sequence of a depth-first traversal, each edge a
    5-tuple (i, j, l_i, l_e, l_j) over DFS discovery ids: forward edges have
    [i < j] (j freshly discovered), backward edges [j < i] (to an ancestor on
    the rightmost path). The *minimal* DFS code under the gSpan linear order
    is a canonical form: two connected labeled graphs are isomorphic iff their
    minimal codes are equal (Yan & Han, ICDM'02). SkinnyMine reuses this both
    to deduplicate grown patterns and, in the ablation baselines, to drive a
    complete gSpan/MoSS miner. *)

type edge = { i : int; j : int; li : int; le : int; lj : int }

type t = edge array

val is_forward : edge -> bool

val compare_edge : edge -> edge -> int
(** The gSpan total order on code edges (used position-wise). *)

val compare : t -> t -> int
(** Lexicographic by {!compare_edge}; a proper prefix is smaller. *)

val equal : t -> t -> bool

val min_code : Pattern.t -> t
(** Minimal DFS code of a connected pattern with at least one edge.
    @raise Invalid_argument if the pattern is empty, edgeless, or
    disconnected. *)

val graph_of_code : t -> Pattern.t
(** Rebuild the pattern a code describes (vertex k gets DFS id k).
    @raise Invalid_argument on malformed codes. *)

val is_min : t -> bool
(** Whether the code equals the minimal code of its graph. *)

val rightmost_path : t -> int list
(** DFS ids of the rightmost path, rightmost vertex first, ending at 0.
    For the empty code, [[0]]. *)

val backward_slots : t -> (int * int) list
(** [(i, j)] pairs for admissible backward extensions (rightmost id, ancestor
    id), excluding edges already in the code and the parent edge. *)

val forward_slots : t -> int list
(** Rightmost-path ids from which a forward edge may grow, deepest first. *)

val to_string : t -> string
(** Compact serialization; injective on codes, suitable as a hash key. *)

val pp : Format.formatter -> t -> unit
