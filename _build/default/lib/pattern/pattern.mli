(** Graph patterns.

    A pattern is just a small labeled graph ({!Spm_graph.Graph.t}); this
    module adds the operations miners need: single-edge construction,
    one-edge extension (the pattern-growth step of Lemma 4), and size
    accessors following the paper's convention that the size |P| of a pattern
    is its number of edges. *)

type t = Spm_graph.Graph.t

val singleton_edge : Spm_graph.Label.t -> Spm_graph.Label.t -> t
(** Two vertices 0, 1 with the given labels and one edge. *)

val of_path_labels : Spm_graph.Label.t array -> t
(** Path pattern; vertex i carries the i-th label. *)

val extend_new_vertex : t -> host:int -> label:Spm_graph.Label.t -> t
(** Add a fresh vertex (id [n]) with [label] and the edge [(host, n)] —
    a "forward" extension. *)

val extend_close_edge : t -> int -> int -> t
(** Add the edge between two existing vertices — a "backward" extension.
    @raise Invalid_argument if the edge already exists or is a self-loop. *)

val size : t -> int
(** Number of edges, written |P| in the paper. *)

val order : t -> int
(** Number of vertices. *)

val is_connected : t -> bool

val pp : Format.formatter -> t -> unit
