(** Breadth-first search utilities: distances, eccentricities, diameters,
    connectivity.

    The paper's diameter D(G) is the maximum over shortest distances between
    all vertex pairs (§2); vertex levels (Definition 5) are distances to the
    canonical diameter, computed here as multi-source BFS distances. *)

val distances : Graph.t -> int -> int array
(** [distances g s] maps each vertex to its shortest distance from [s];
    unreachable vertices get [-1]. O(n + m). *)

val distances_from_set : Graph.t -> int list -> int array
(** Multi-source BFS: distance to the nearest of the sources. *)

val distance : Graph.t -> int -> int -> int
(** Pairwise shortest distance, [-1] if disconnected. Early-exits once the
    target is dequeued. *)

val eccentricity : Graph.t -> int -> int
(** Max finite distance from the vertex. *)

val diameter : Graph.t -> int
(** Maximum over shortest distances between all pairs in the same component
    (the paper assumes connected graphs; on a disconnected graph this is the
    max within components). O(n·(n+m)) — meant for patterns, not huge data
    graphs. *)

val diameter_endpoints : Graph.t -> int * int * int
(** [(u, v, d)] realizing the diameter, smallest such pair in lexicographic
    (u, v) order with [u <= v]. *)

val dist_matrix : Graph.t -> int array array
(** All-pairs shortest distances by n BFS runs; [-1] when disconnected.
    For small graphs (patterns). *)

val is_connected : Graph.t -> bool

val components : Graph.t -> int array * int
(** [(comp, k)]: component id per vertex and component count. *)

val component_of : Graph.t -> int -> int array
(** Vertices of the component containing the given vertex, sorted. *)
