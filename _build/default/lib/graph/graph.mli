(** Immutable vertex-labeled, undirected, simple graphs.

    This is the data-graph substrate for all miners: the single input graph
    of the (l,δ)-SPM problem (Definition 8) and the members of a
    graph-transaction database. Vertices are dense integers [0..n-1];
    adjacency lists are sorted arrays so membership tests are O(log deg). *)

type t

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of (undirected) edges. *)

val label : t -> int -> Label.t

val labels : t -> Label.t array
(** The label array itself — do not mutate. *)

val adj : t -> int -> int array
(** Sorted neighbor array of a vertex — do not mutate. *)

val degree : t -> int -> int

val has_edge : t -> int -> int -> bool

val edges : t -> (int * int) list
(** All edges as [(u, v)] with [u < v], in increasing order. *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** Iterate each undirected edge once, with [u < v]. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val iter_vertices : (int -> unit) -> t -> unit

val max_label : t -> Label.t
(** Largest label present; [-1] for the empty graph. *)

val num_labels : t -> int
(** [max_label g + 1] — the size of a dense label universe. *)

val of_edges : labels:Label.t array -> (int * int) list -> t
(** Build from a label array (index = vertex id) and an edge list. Duplicate
    edges are merged; self-loops are rejected.
    @raise Invalid_argument on self-loops or out-of-range endpoints. *)

val induced : t -> int array -> t
(** [induced g vs] is the subgraph induced by the distinct vertices [vs];
    vertex [i] of the result corresponds to [vs.(i)]. *)

val equal_structure : t -> t -> bool
(** Identity on (labels, edge set) with the same vertex numbering — NOT
    isomorphism (see {!Spm_pattern.Canon} for that). *)

val pp : Format.formatter -> t -> unit

module Builder : sig
  (** Mutable construction; [freeze] to obtain the immutable graph. *)

  type graph := t

  type t

  val create : unit -> t

  val add_vertex : t -> Label.t -> int
  (** Returns the fresh vertex id. *)

  val add_edge : t -> int -> int -> unit
  (** Idempotent; rejects self-loops and unknown endpoints.
      @raise Invalid_argument on self-loop or out-of-range endpoint. *)

  val has_edge : t -> int -> int -> bool
  (** O(deg) membership test on the partially built graph. *)

  val n : t -> int

  val label : t -> int -> Label.t

  val freeze : t -> graph
  (** O(n + m log m). The builder remains usable afterwards. *)

  val of_graph : graph -> t
  (** Builder pre-seeded with an existing graph (used for pattern
      injection). *)
end
