(** Text serialization of graphs and graph-transaction databases.

    Format (one item per line, [#] comments allowed):
    {v
    t <graph-index>          # starts a new graph (databases only)
    v <vertex-id> <label>    # vertex ids must be dense 0..n-1 per graph
    e <u> <v>                # undirected edge
    v} *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Failure on malformed input. *)

val db_to_string : Graph.t list -> string

val db_of_string : string -> Graph.t list

val write_file : string -> Graph.t -> unit

val read_file : string -> Graph.t

val write_db : string -> Graph.t list -> unit

val read_db : string -> Graph.t list

val to_dot : ?names:Label.Table.t -> ?highlight:int list -> Graph.t -> string
(** Graphviz rendering; [highlight] vertices are drawn filled. *)
