(** Vertex labels.

    Labels are small integers for speed; a {!Table} interns human-readable
    names so example applications and IO can speak strings. The lexicographic
    order among labels required by the paper's path orders (Definitions 2–3)
    is the integer order; tables intern names in a caller-controlled order so
    callers decide the lexicographic rank of each name. *)

type t = int

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

module Table : sig
  (** Bidirectional label-name interning. *)

  type label := t

  type t

  val create : unit -> t

  val intern : t -> string -> label
  (** [intern tbl name] returns the label for [name], allocating the next
      integer id on first sight. Label order therefore follows interning
      order. *)

  val name : t -> label -> string
  (** Human-readable name; falls back to ["L<i>"] for labels interned
      elsewhere. *)

  val find : t -> string -> label option

  val size : t -> int

  val of_names : string list -> t
  (** Table interning the given names in list order. *)
end
