type t = int

let compare = Int.compare
let equal = Int.equal
let pp ppf l = Format.fprintf ppf "%d" l

module Table = struct
  type t = { by_name : (string, int) Hashtbl.t; names : string Vec.t }

  let create () = { by_name = Hashtbl.create 16; names = Vec.create () }

  let intern t name =
    match Hashtbl.find_opt t.by_name name with
    | Some l -> l
    | None ->
      let l = Vec.length t.names in
      Hashtbl.add t.by_name name l;
      Vec.push t.names name;
      l

  let name t l =
    if l >= 0 && l < Vec.length t.names then Vec.get t.names l
    else Printf.sprintf "L%d" l

  let find t name = Hashtbl.find_opt t.by_name name

  let size t = Vec.length t.names

  let of_names names =
    let t = create () in
    List.iter (fun n -> ignore (intern t n)) names;
    t
end
