lib/graph/label.ml: Format Hashtbl Int List Printf Vec
