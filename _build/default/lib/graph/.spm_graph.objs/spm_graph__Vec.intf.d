lib/graph/vec.mli:
