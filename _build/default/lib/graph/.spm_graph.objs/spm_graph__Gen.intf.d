lib/graph/gen.mli: Graph Label Random
