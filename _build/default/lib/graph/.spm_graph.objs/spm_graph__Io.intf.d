lib/graph/io.mli: Graph Label
