lib/graph/paths.ml: Array Bfs Graph Hashtbl Int List
