lib/graph/gen.ml: Array Bfs Graph Hashtbl List Option Random
