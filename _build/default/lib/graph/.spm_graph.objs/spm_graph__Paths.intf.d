lib/graph/paths.mli: Graph Label
