lib/graph/graph.mli: Format Label
