lib/graph/graph.ml: Array Format Hashtbl Int Label List Vec
