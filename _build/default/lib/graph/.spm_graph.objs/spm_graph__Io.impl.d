lib/graph/io.ml: Array Buffer Fun Graph In_channel Label List Printf String
