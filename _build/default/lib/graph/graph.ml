type t = { labels : Label.t array; adj : int array array; m : int }

let n g = Array.length g.labels
let m g = g.m
let label g v = g.labels.(v)
let labels g = g.labels
let adj g v = g.adj.(v)
let degree g v = Array.length g.adj.(v)

let mem_sorted a x =
  let rec loop lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let y = a.(mid) in
      if y = x then true else if y < x then loop (mid + 1) hi else loop lo mid
  in
  loop 0 (Array.length a)

let has_edge g u v = mem_sorted g.adj.(u) v

let iter_edges f g =
  Array.iteri
    (fun u nbrs -> Array.iter (fun v -> if u < v then f u v) nbrs)
    g.adj

let fold_edges f g acc =
  let acc = ref acc in
  iter_edges (fun u v -> acc := f u v !acc) g;
  !acc

let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])

let iter_vertices f g =
  for v = 0 to n g - 1 do
    f v
  done

let max_label g = Array.fold_left max (-1) g.labels
let num_labels g = max_label g + 1

let sort_dedup a =
  Array.sort Int.compare a;
  let len = Array.length a in
  if len <= 1 then a
  else begin
    let w = ref 1 in
    for r = 1 to len - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    if !w = len then a else Array.sub a 0 !w
  end

let of_edges ~labels es =
  let nv = Array.length labels in
  let check v =
    if v < 0 || v >= nv then invalid_arg "Graph.of_edges: vertex out of range"
  in
  List.iter
    (fun (u, v) ->
      check u;
      check v;
      if u = v then invalid_arg "Graph.of_edges: self-loop")
    es;
  let deg = Array.make nv 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    es;
  let adj = Array.init nv (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make nv 0 in
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    es;
  let adj = Array.map sort_dedup adj in
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
  { labels = Array.copy labels; adj; m }

let induced g vs =
  let nv = Array.length vs in
  let index = Hashtbl.create nv in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem index v then invalid_arg "Graph.induced: duplicate vertex";
      Hashtbl.add index v i)
    vs;
  let labels = Array.map (fun v -> g.labels.(v)) vs in
  let es = ref [] in
  Array.iteri
    (fun i v ->
      Array.iter
        (fun w ->
          match Hashtbl.find_opt index w with
          | Some j when i < j -> es := (i, j) :: !es
          | Some _ | None -> ())
        g.adj.(v))
    vs;
  of_edges ~labels !es

let equal_structure g1 g2 =
  g1.labels = g2.labels && g1.adj = g2.adj

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d vertices, %d edges@," (n g) (m g);
  iter_vertices
    (fun v -> Format.fprintf ppf "v %d %a@," v Label.pp (label g v))
    g;
  iter_edges (fun u v -> Format.fprintf ppf "e %d %d@," u v) g;
  Format.fprintf ppf "@]"

module Builder = struct
  type t = { mutable bl : Label.t Vec.t; nbrs : int Vec.t Vec.t }

  let create () = { bl = Vec.create (); nbrs = Vec.create () }

  let add_vertex b l =
    let v = Vec.length b.bl in
    Vec.push b.bl l;
    Vec.push b.nbrs (Vec.create ~capacity:4 ());
    v

  let n b = Vec.length b.bl

  let label b v = Vec.get b.bl v

  let check b v =
    if v < 0 || v >= n b then invalid_arg "Graph.Builder: unknown vertex"

  let has_edge b u v =
    check b u;
    check b v;
    Vec.exists (fun w -> w = v) (Vec.get b.nbrs u)

  let add_edge b u v =
    check b u;
    check b v;
    if u = v then invalid_arg "Graph.Builder.add_edge: self-loop";
    if not (has_edge b u v) then begin
      Vec.push (Vec.get b.nbrs u) v;
      Vec.push (Vec.get b.nbrs v) u
    end

  let freeze b =
    let nv = n b in
    let labels = Vec.to_array b.bl in
    let adj =
      Array.init nv (fun v -> sort_dedup (Vec.to_array (Vec.get b.nbrs v)))
    in
    let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
    { labels; adj; m }

  let of_graph g =
    let b = create () in
    Array.iter (fun l -> ignore (add_vertex b l)) g.labels;
    iter_edges (fun u v -> add_edge b u v) g;
    b
end
