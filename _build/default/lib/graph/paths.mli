(** Simple-path utilities.

    A path is a vertex-id array [ [|v0; ...; vk|] ] of length k (= number of
    edges, per the paper's convention). All paths here are simple. The
    exhaustive enumerators are exponential and exist as reference baselines
    for tests and for the enumerate-and-check ablation; the mining algorithms
    never call them on large graphs. *)

val is_simple_path : Graph.t -> int array -> bool
(** Vertices distinct and consecutive pairs adjacent; a single vertex is a
    (trivial) simple path. *)

val canonical_orientation : int array -> int array
(** Of a path and its reversal, the one with the numerically smaller vertex-id
    sequence — the identity of the path as a *subgraph*. *)

val iter_simple_paths : Graph.t -> length:int -> (int array -> unit) -> unit
(** Enumerate every simple path with exactly [length] edges, each undirected
    path exactly once (in canonical orientation). The callback's array is
    reused — copy if retained. Exponential; test/reference use. *)

val simple_paths_of_length : Graph.t -> length:int -> int array list
(** Materialized {!iter_simple_paths}, fresh arrays. *)

val shortest_paths_between : Graph.t -> int -> int -> int array list
(** All shortest paths from [s] to [t] as vertex sequences starting at [s].
    Empty if disconnected. Shortest paths are always simple. *)

val labels_of_path : Graph.t -> int array -> Label.t array
(** Label sequence of a path in the graph. *)
