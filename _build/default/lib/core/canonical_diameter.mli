(** Canonical diameters (Definitions 3–7).

    Every connected graph has a unique canonical diameter: among all simple
    paths of diameter length that realize the diameter (their endpoints are at
    that shortest distance), the minimum under the total path order — label
    sequence first (Definition 2), physical vertex-id sequence as tiebreak
    (Definition 3). This module is the *reference* implementation used for
    correctness checks and tests; the miner maintains canonicity
    incrementally through {!Constraints} without recomputation. *)

type pattern := Spm_pattern.Pattern.t

val realizing_paths : pattern -> int array list
(** All directed simple paths of length D(G) whose endpoints are at distance
    exactly D(G) — both orientations of each. For a single-vertex graph, the
    trivial paths [[|v|]]. The pattern must be connected. *)

val compare_paths : pattern -> int array -> int array -> int
(** The total path order of Definition 3: length, then labels, then vertex
    ids. *)

val compute : pattern -> int array
(** The canonical diameter as a directed vertex sequence. *)

val diameter : pattern -> int

val is_canonical_diameter : pattern -> int array -> bool
(** Whether the given path is exactly the canonical diameter. *)

val identity_preserved : pattern -> l:int -> bool
(** Fast equivalent of [compute p = [|0; 1; ...; l|]], the check the miner
    performs after every extension. Instead of enumerating every realizing
    path it searches the shortest-path DAGs only along prefixes whose labels
    tie with the identity path, pruning any branch that is already
    lexicographically larger; identity wins every id tiebreak because
    diameter vertices carry the smallest ids, so only strictly smaller label
    sequences can dethrone it. *)

val levels : pattern -> diameter:int array -> int array
(** Vertex levels (Definition 5): per-vertex distance to the diameter path. *)

val is_skinny : pattern -> delta:int -> bool
(** δ-skinny (Definition 6): every vertex within [delta] of the canonical
    diameter. *)

val is_l_long_delta_skinny : pattern -> l:int -> delta:int -> bool
(** Definition 7. *)
