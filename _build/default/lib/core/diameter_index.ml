type t = {
  graph : Spm_graph.Graph.t;
  sigma : int;
  powers : Diam_mine.Powers.t;
  cache : (int, Diam_mine.entry list) Hashtbl.t;
  build_seconds : float;
}

let build ?prune_intermediate ?path_support g ~sigma ~l_max =
  let t0 = Sys.time () in
  (* Materialize powers up to l_max; a non-power l <= l_max is served by
     merging from the largest power below it. *)
  let powers =
    Diam_mine.Powers.build ?prune_intermediate ?support:path_support g ~sigma
      ~up_to:l_max
  in
  {
    graph = g;
    sigma;
    powers;
    cache = Hashtbl.create 16;
    build_seconds = Sys.time () -. t0;
  }

let graph t = t.graph
let sigma t = t.sigma
let build_seconds t = t.build_seconds

let entries t ~l =
  match Hashtbl.find_opt t.cache l with
  | Some e -> e
  | None ->
    let e = Diam_mine.Powers.paths_of_length t.powers ~l ~sigma:t.sigma in
    Hashtbl.add t.cache l e;
    e

let request ?mode ?closed_growth ?support ?closed_only ?max_patterns t ~l
    ~delta =
  Skinny_mine.mine_with_entries ?mode ?closed_growth ?support ?closed_only
    ?max_patterns t.graph
    ~entries:(entries t ~l) ~delta ~sigma:t.sigma

let request_range ?mode t ~l_min ~l_max ~delta =
  let t0 = Sys.time () in
  let results =
    List.init (l_max - l_min + 1) (fun i -> request ?mode t ~l:(l_min + i) ~delta)
  in
  let patterns = List.concat_map (fun r -> r.Skinny_mine.patterns) results in
  let grow_stats =
    List.concat_map (fun r -> r.Skinny_mine.stats.Skinny_mine.grow_stats) results
  in
  {
    Skinny_mine.patterns;
    stats =
      {
        Skinny_mine.diam_stats =
          { Diam_mine.per_power = []; merge_seconds = 0.0; total_seconds = 0.0 };
        num_diameters =
          List.fold_left
            (fun acc r -> acc + r.Skinny_mine.stats.Skinny_mine.num_diameters)
            0 results;
        grow_seconds = Sys.time () -. t0;
        grow_stats;
        total_seconds = Sys.time () -. t0;
      };
  }
