open Spm_graph
open Spm_pattern

type mined = Level_grow.mined = {
  pattern : Pattern.t;
  support : int;
  levels : int array;
  diameter_labels : Path_pattern.t;
}

type stats = {
  diam_stats : Diam_mine.stats;
  num_diameters : int;
  grow_seconds : float;
  grow_stats : Level_grow.stats list;
  total_seconds : float;
}

type result = { patterns : mined list; stats : stats }

let empty_diam_stats =
  { Diam_mine.per_power = []; merge_seconds = 0.0; total_seconds = 0.0 }

(* Closedness (Algorithm 3 line 12): drop P if some reported super-pattern
   has the same support. Comparisons stay within one diameter cluster. *)
let closed_filter patterns =
  let arr = Array.of_list patterns in
  let keep p =
    not
      (Array.exists
         (fun q ->
           q != p
           && q.support = p.support
           && Pattern.size q.pattern > Pattern.size p.pattern
           && q.diameter_labels = p.diameter_labels
           && Subiso.exists ~pattern:p.pattern ~target:q.pattern)
         arr)
  in
  List.filter keep patterns

let grow_all ?mode ?closed_growth ?support ?(closed_only = false)
    ?max_patterns data ~entries ~delta ~sigma =
  let t0 = Sys.time () in
  let patterns = ref [] and stats = ref [] in
  let count = ref 0 in
  (try
     List.iter
       (fun entry ->
         let budget =
           match max_patterns with
           | Some cap ->
             let left = cap - !count in
             if left <= 0 then raise Exit else Some left
           | None -> None
         in
         let mined, st =
           Level_grow.grow ?mode ?closed_growth ?support ?max_patterns:budget
             ~data ~sigma ~delta ~entry ()
         in
         count := !count + List.length mined;
         patterns := List.rev_append mined !patterns;
         stats := st :: !stats)
       entries
   with Exit -> ());
  let patterns = List.rev !patterns in
  let patterns = if closed_only then closed_filter patterns else patterns in
  (patterns, List.rev !stats, Sys.time () -. t0)

let mine ?mode ?closed_growth ?(prune_intermediate = true) ?closed_only
    ?max_patterns g ~l ~delta ~sigma =
  let t0 = Sys.time () in
  let diam = Diam_mine.mine ~prune_intermediate g ~l ~sigma in
  let patterns, grow_stats, grow_seconds =
    grow_all ?mode ?closed_growth ?closed_only ?max_patterns g
      ~entries:diam.Diam_mine.entries ~delta ~sigma
  in
  {
    patterns;
    stats =
      {
        diam_stats = diam.Diam_mine.stats;
        num_diameters = List.length diam.Diam_mine.entries;
        grow_seconds;
        grow_stats;
        total_seconds = Sys.time () -. t0;
      };
  }

let mine_with_entries ?mode ?closed_growth ?support ?closed_only
    ?max_patterns g ~entries ~delta ~sigma =
  let t0 = Sys.time () in
  let patterns, grow_stats, grow_seconds =
    grow_all ?mode ?closed_growth ?support ?closed_only ?max_patterns g
      ~entries ~delta ~sigma
  in
  {
    patterns;
    stats =
      {
        diam_stats = empty_diam_stats;
        num_diameters = List.length entries;
        grow_seconds;
        grow_stats;
        total_seconds = Sys.time () -. t0;
      };
  }

let disjoint_union gs =
  let b = Graph.Builder.create () in
  let tx_of = ref [] in
  List.iteri
    (fun tx g ->
      let offset = Graph.Builder.n b in
      Graph.iter_vertices
        (fun v ->
          ignore (Graph.Builder.add_vertex b (Graph.label g v));
          tx_of := tx :: !tx_of)
        g;
      Graph.iter_edges
        (fun u v -> Graph.Builder.add_edge b (offset + u) (offset + v))
        g)
    gs;
  let tx = Array.of_list (List.rev !tx_of) in
  (Graph.Builder.freeze b, tx)

let mine_transactions ?mode ?closed_growth gs ~l ~delta ~sigma =
  let t0 = Sys.time () in
  let union, tx = disjoint_union gs in
  (* Transaction support: distinct transactions among embedding images. *)
  let tx_support_paths embs =
    let seen = Hashtbl.create 8 in
    List.iter (fun (e : int array) -> Hashtbl.replace seen tx.(e.(0)) ()) embs;
    Hashtbl.length seen
  in
  let tx_support_maps _pattern maps =
    let seen = Hashtbl.create 8 in
    List.iter (fun (m : int array) -> Hashtbl.replace seen tx.(m.(0)) ()) maps;
    Hashtbl.length seen
  in
  let diam = Diam_mine.mine ~support:tx_support_paths union ~l ~sigma in
  let patterns, grow_stats, grow_seconds =
    grow_all ?mode ?closed_growth ~support:tx_support_maps union
      ~entries:diam.Diam_mine.entries ~delta ~sigma
  in
  {
    patterns;
    stats =
      {
        diam_stats = diam.Diam_mine.stats;
        num_diameters = List.length diam.Diam_mine.entries;
        grow_seconds;
        grow_stats;
        total_seconds = Sys.time () -. t0;
      };
  }

let is_target p ~l ~delta = Canonical_diameter.is_l_long_delta_skinny p ~l ~delta
