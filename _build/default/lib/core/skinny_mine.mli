(** SkinnyMine (Algorithm 1): the complete (l,δ)-SPM miner.

    Stage I mines all frequent simple paths of length l (the canonical
    diameters = minimal constraint-satisfying patterns); Stage II grows each
    into its disjoint cluster of l-long δ-skinny patterns while preserving
    the canonical diameter. The union over clusters is the complete result
    (Theorem 4), with unique generation per pattern. *)

type mined = Level_grow.mined = {
  pattern : Spm_pattern.Pattern.t;
  support : int;
  levels : int array;
  diameter_labels : Path_pattern.t;
}

type stats = {
  diam_stats : Diam_mine.stats;
  num_diameters : int;
  grow_seconds : float;
  grow_stats : Level_grow.stats list;  (** one per diameter cluster *)
  total_seconds : float;
}

type result = { patterns : mined list; stats : stats }

val mine :
  ?mode:Constraints.mode ->
  ?closed_growth:bool ->
  ?prune_intermediate:bool ->
  ?closed_only:bool ->
  ?max_patterns:int ->
  Spm_graph.Graph.t ->
  l:int ->
  delta:int ->
  sigma:int ->
  result
(** All l-long δ-skinny patterns P of the graph with |E[P]| >= sigma.
    [closed_only] post-filters to patterns with no reported super-pattern of
    equal support (Algorithm 3 line 12). *)

val mine_with_entries :
  ?mode:Constraints.mode ->
  ?closed_growth:bool ->
  ?support:(Spm_pattern.Pattern.t -> int array list -> int) ->
  ?closed_only:bool ->
  ?max_patterns:int ->
  Spm_graph.Graph.t ->
  entries:Diam_mine.entry list ->
  delta:int ->
  sigma:int ->
  result
(** Stage II only, from precomputed Stage-I entries (the direct-mining server
    path: entries come from {!Diameter_index}). [diam_stats] is zeroed. *)

val mine_transactions :
  ?mode:Constraints.mode ->
  ?closed_growth:bool ->
  Spm_graph.Graph.t list ->
  l:int ->
  delta:int ->
  sigma:int ->
  result
(** Graph-transaction adaptation (§6.2.1 "Graph-Transaction Setting"): the
    database is combined into one disjoint-union graph; a pattern qualifies
    if it appears in at least [sigma] distinct transactions. *)

val is_target : Spm_pattern.Pattern.t -> l:int -> delta:int -> bool
(** The (l,δ) constraint predicate itself (Definition 7), usable with
    {!Framework} checkers and enumerate-and-check baselines. *)
