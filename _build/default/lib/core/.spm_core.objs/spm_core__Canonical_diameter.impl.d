lib/core/canonical_diameter.ml: Array Bfs Graph Hashtbl Int Label List Paths Spm_graph
