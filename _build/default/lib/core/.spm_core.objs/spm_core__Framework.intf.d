lib/core/framework.mli: Spm_graph Spm_pattern
