lib/core/constraints.ml: Array Bfs Canonical_diameter Distance_index Graph Spm_graph
