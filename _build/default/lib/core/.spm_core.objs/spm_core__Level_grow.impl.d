lib/core/level_grow.ml: Array Canon Constraints Diam_mine Distance_index Embedding Graph Hashtbl Label List Path_pattern Pattern Queue Spm_graph Spm_pattern Sys
