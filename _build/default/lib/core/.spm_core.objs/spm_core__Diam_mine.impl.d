lib/core/diam_mine.ml: Array Graph Hashtbl Label List Option Path_pattern Printf Spm_graph Sys
