lib/core/disjoint_support.ml: Array Hashtbl Int List
