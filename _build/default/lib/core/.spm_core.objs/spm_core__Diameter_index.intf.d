lib/core/diameter_index.mli: Constraints Diam_mine Skinny_mine Spm_graph Spm_pattern
