lib/core/canonical_diameter.mli: Spm_pattern
