lib/core/distance_index.ml: Array Bfs Format Graph Queue Spm_graph String
