lib/core/path_pattern.ml: Array Format Graph Hashtbl Int Label List Paths Spm_graph String
