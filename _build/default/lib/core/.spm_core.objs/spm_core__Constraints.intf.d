lib/core/constraints.mli: Distance_index Spm_pattern
