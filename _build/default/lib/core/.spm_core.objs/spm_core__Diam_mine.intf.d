lib/core/diam_mine.mli: Path_pattern Spm_graph
