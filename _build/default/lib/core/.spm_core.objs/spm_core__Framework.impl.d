lib/core/framework.ml: Array Bfs Canon Diam_mine Graph Hashtbl Int Level_grow List Pattern Spm_graph Spm_pattern
