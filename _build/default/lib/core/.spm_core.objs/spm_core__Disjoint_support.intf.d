lib/core/disjoint_support.mli: Spm_pattern
