lib/core/path_pattern.mli: Format Spm_graph Spm_pattern
