lib/core/diameter_index.ml: Diam_mine Hashtbl List Skinny_mine Spm_graph Sys
