lib/core/level_grow.mli: Constraints Diam_mine Path_pattern Spm_graph Spm_pattern
