lib/core/distance_index.mli: Format Spm_pattern
