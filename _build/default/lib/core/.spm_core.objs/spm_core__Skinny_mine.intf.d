lib/core/skinny_mine.mli: Constraints Diam_mine Level_grow Path_pattern Spm_graph Spm_pattern
