lib/core/skinny_mine.ml: Array Canonical_diameter Diam_mine Graph Hashtbl Level_grow List Path_pattern Pattern Spm_graph Spm_pattern Subiso Sys
