(** Greedy vertex-disjoint embedding support.

    The paper's |E[P]| counts distinct embedding subgraphs, which inflates on
    overlapping embeddings: two length-l paths sharing l-1 edges are two
    embeddings, so in a branchy background the number of "frequent" long
    paths *grows* with l — the opposite of the paper's Figure 16 curve. A
    maximum-independent-set style support (count only pairwise
    vertex-disjoint embeddings, as in GREW and the MIS measure MoSS
    discusses) removes the inflation; we use the standard greedy
    approximation. It is used by the constraint-sweep experiments to
    reproduce the paper's reported curve shapes, and is available as a
    drop-in [~support] for the miners. *)

val paths : int array list -> int
(** Greedy count of pairwise vertex-disjoint path embeddings (input: one
    directed embedding per subgraph, as {!Diam_mine} supplies). *)

val maps : Spm_pattern.Pattern.t -> int array list -> int
(** Greedy count of pairwise vertex-disjoint pattern embeddings, deduping
    mappings to subgraphs first. *)
