let greedy embs =
  let used = Hashtbl.create 64 in
  List.fold_left
    (fun acc (e : int array) ->
      if Array.exists (fun v -> Hashtbl.mem used v) e then acc
      else begin
        Array.iter (fun v -> Hashtbl.replace used v ()) e;
        acc + 1
      end)
    0 embs

let paths embs = greedy embs

let maps pattern ms =
  (* Dedup mappings to one per subgraph, then greedily pick disjoint ones.
     Keying by sorted vertex set is enough here: two mappings with the same
     vertex set are never disjoint anyway. *)
  ignore pattern;
  let seen = Hashtbl.create 64 in
  let distinct =
    List.filter
      (fun (m : int array) ->
        let key = Array.copy m in
        Array.sort Int.compare key;
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      ms
  in
  greedy distinct
