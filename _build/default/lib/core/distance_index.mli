(** The two per-vertex distance indices D_H and D_T of §3.4.

    For a pattern whose canonical diameter is the fixed path over vertices
    [0..l] (head 0, tail l), [dh v] and [dt v] are the shortest distances
    from [v] to the head and tail. The miner updates them incrementally on
    each edge extension instead of recomputing shortest paths:

    - a new leaf vertex [u] hanging off [host] gets
      [dh u = dh host + 1], [dt u = dt host + 1] (no other vertex changes —
      a leaf shortens nothing);
    - a closing edge [(u, v)] triggers a decrease-only relaxation from the
      two endpoints, touching only vertices whose distance actually drops.

    {!recompute} is the naive BFS reference used by tests and by the
    recompute-based ablation. *)

type t

val init : Spm_pattern.Pattern.t -> head:int -> tail:int -> t
(** BFS-initialized index. *)

val dh : t -> int -> int

val dt : t -> int -> int

val copy : t -> t

val extend_new_vertex : t -> host:int -> t
(** Index for the pattern extended with a fresh leaf attached to [host]
    (the new vertex takes the next id). Persistent: the input is unchanged. *)

val extend_close_edge : Spm_pattern.Pattern.t -> t -> int -> int -> t
(** Index for [pattern'] = pattern + edge (u, v), where the given pattern is
    already the extended one (used for adjacency during relaxation).
    Persistent. *)

val recompute : Spm_pattern.Pattern.t -> head:int -> tail:int -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
