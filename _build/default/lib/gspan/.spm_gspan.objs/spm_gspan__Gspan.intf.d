lib/gspan/gspan.mli: Engine Spm_graph Spm_pattern
