lib/gspan/moss.mli: Engine Spm_graph
