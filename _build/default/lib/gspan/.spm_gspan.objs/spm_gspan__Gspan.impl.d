lib/gspan/gspan.ml: Engine List
