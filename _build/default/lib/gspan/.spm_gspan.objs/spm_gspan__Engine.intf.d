lib/gspan/engine.mli: Spm_graph Spm_pattern
