lib/gspan/moss.ml: Engine
