lib/gspan/engine.ml: Array Dfs_code Embedding Graph Hashtbl List Pattern Spm_graph Spm_pattern Sys
