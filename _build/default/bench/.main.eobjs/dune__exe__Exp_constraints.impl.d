bench/exp_constraints.ml: Diameter_index Disjoint_support Gen Graph List Printf Skinny_mine Spm_core Spm_graph Util
