bench/util.ml: Hashtbl List Option Printf Spm_core Spm_graph String Sys
