bench/exp_scalability.ml: Diameter_index Gen Graph List Printf Skinny_mine Spider_mine Spm_baselines Spm_core Spm_graph Spm_gspan Subdue Util
