bench/main.mli:
