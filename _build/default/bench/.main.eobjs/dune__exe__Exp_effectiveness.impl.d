bench/exp_effectiveness.ml: Bfs Canon Gen Graph List Pattern Printf Settings Seus Skinny_mine Spider_mine Spm_baselines Spm_core Spm_graph Spm_gspan Spm_pattern Spm_workload Subdue Util
