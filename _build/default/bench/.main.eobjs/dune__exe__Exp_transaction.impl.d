bench/exp_transaction.ml: Bfs Gen Graph List Origami Printf Settings Skinny_mine Spider_mine Spm_baselines Spm_core Spm_graph Spm_pattern Spm_workload Util
