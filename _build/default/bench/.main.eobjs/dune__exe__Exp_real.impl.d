bench/exp_real.ml: Dblp_like Graph Int List Printf Skinny_mine Spm_core Spm_graph Spm_pattern Spm_workload String Util Weibo_like
