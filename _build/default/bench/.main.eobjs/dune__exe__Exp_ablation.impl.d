bench/exp_ablation.ml: Constraints Diam_mine Gen Graph List Printf Skinny_mine Spm_core Spm_graph Spm_gspan Util
