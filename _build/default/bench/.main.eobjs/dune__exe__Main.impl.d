bench/main.ml: Array Exp_ablation Exp_constraints Exp_effectiveness Exp_real Exp_scalability Exp_transaction List Micro Printf Spm_workload Sys Util
