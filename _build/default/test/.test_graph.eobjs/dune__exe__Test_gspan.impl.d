test/test_gspan.ml: Alcotest Array Bfs Canon Engine Gen Graph Gspan Hashtbl Int List Moss Pattern Printf QCheck QCheck_alcotest Spm_graph Spm_gspan Spm_pattern String Subiso Support
