test/test_pattern.ml: Alcotest Array Canon Dfs_code Embedding Gen Graph List Pattern QCheck QCheck_alcotest Spm_graph Spm_pattern String Subiso Support
