test/test_skinny.mli:
