test/test_gspan.mli:
