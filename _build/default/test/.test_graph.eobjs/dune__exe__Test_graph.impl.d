test/test_graph.ml: Alcotest Array Bfs Gen Graph Hashtbl Io Label List Option Paths Printf QCheck QCheck_alcotest Spm_graph Vec
