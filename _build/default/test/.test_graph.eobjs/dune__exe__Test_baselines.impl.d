test/test_baselines.ml: Alcotest Array Bfs Canon Gen Graph Grow_util Hashtbl List Origami Pattern Printf Seus Spider_mine Spm_baselines Spm_graph Spm_pattern Subdue Subiso Support
