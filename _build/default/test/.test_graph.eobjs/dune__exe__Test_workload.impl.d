test/test_workload.ml: Alcotest Array Bfs Dblp_like Graph List Settings Spm_core Spm_graph Spm_pattern Spm_workload Weibo_like
