(** SUBDUE (Holder, Cook, Djoko — KDD 1994): beam search for the
    substructures that best compress the graph under an MDL score.

    Starting from single-vertex substructures, the best [beam] candidates are
    repeatedly extended by one edge; each is scored by the description-length
    saving of replacing its instances with a supervertex. The published bias
    the SkinnyMine paper relies on (Figures 4–8): compression favors small
    substructures with high frequency, so SUBDUE's output shifts toward
    small patterns as small-pattern support rises. *)

type scored = {
  pattern : Spm_pattern.Pattern.t;
  instances : int;  (** distinct embedding subgraphs *)
  compression : float;
      (** DL(G) - (DL(P) + DL(G|P)), in edge-count units; higher is better *)
}

type result = { best : scored list; expanded : int; elapsed : float }

val mine :
  ?run:Spm_engine.Run.t ->
  ?beam:int ->
  ?max_edges:int ->
  ?limit_best:int ->
  ?iterations:int ->
  graph:Spm_graph.Graph.t ->
  unit ->
  result
(** Defaults: [beam = 4], [limit_best = 10], [iterations = 30]. There is no
    support threshold — SUBDUE ranks by compression alone, as published.
    [run] is polled per round and per expansion; an interrupted run reports
    the best list from the completed rounds. *)
