open Spm_graph
open Spm_pattern
module Run = Spm_engine.Run
module Clock = Spm_engine.Clock

type result = {
  patterns : (Pattern.t * int) list;
  spiders_mined : int;
  merges_done : int;
  elapsed : float;
}

(* Frequent r-spiders: grow patterns keeping every vertex within distance r
   of vertex 0 (the head), pruning by embedding-count support. *)
let mine_spiders ~run g ~sigma ~r ~max_edges =
  let out = ref [] in
  let seen = Hashtbl.create 256 in
  (* A pattern is an r-spider if some vertex (the head) reaches every other
     vertex within r hops. *)
  let radius_ok (st : Grow_util.state) =
    let p = st.Grow_util.pattern in
    let rec try_head h =
      h < Graph.n p
      && (Array.for_all (fun d -> d >= 0 && d <= r) (Bfs.distances p h)
         || try_head (h + 1))
    in
    try_head 0
  in
  let rec walk st =
    Grow_util.extensions g st
    |> List.iter (fun st' ->
           Run.check run;
           Run.tick run;
           let key = Grow_util.key st' in
           if
             (not (Hashtbl.mem seen key))
             && Pattern.size st'.Grow_util.pattern <= max_edges
             && radius_ok st'
           then begin
             Hashtbl.replace seen key ();
             if Grow_util.support g st' >= sigma then begin
               out := st' :: !out;
               walk st'
             end
           end)
  in
  (* An interrupted run keeps the spiders found so far — the caller decides
     whether a partial spider set is still worth merging. *)
  (try
     List.iter
       (fun st ->
         if Grow_util.support g st >= sigma then begin
           let key = Grow_util.key st in
           if not (Hashtbl.mem seen key) then begin
             Hashtbl.replace seen key ();
             out := st :: !out;
             walk st
           end
         end)
       (Grow_util.edge_seeds g)
   with Run.Cancelled _ -> ());
  !out

(* Merge two spiders along overlapping data embeddings: take the union of
   the two image subgraphs and lift it back to a pattern. *)
let merge_states g (a : Grow_util.state) (b : Grow_util.state) =
  let pairs = ref [] in
  let count = ref 0 in
  (try
     List.iter
       (fun ma ->
         let set = Hashtbl.create 16 in
         Array.iter (fun v -> Hashtbl.replace set v ()) ma;
         List.iter
           (fun mb ->
             if Array.exists (fun v -> Hashtbl.mem set v) mb then begin
               pairs := (ma, mb) :: !pairs;
               incr count;
               if !count > 200 then raise Exit
             end)
           b.Grow_util.maps)
       a.Grow_util.maps
   with Exit -> ());
  match !pairs with
  | [] -> None
  | (ma, mb) :: _ ->
    (* Union of the two embeddings' vertex sets; induced pattern edges are
       the union of the two patterns' image edges. *)
    let vs =
      Array.to_list ma @ Array.to_list mb |> List.sort_uniq Int.compare
    in
    let index = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.add index v i) vs;
    let labels = Array.of_list (List.map (fun v -> Graph.label g v) vs) in
    let es = ref [] in
    let add_edges (st : Grow_util.state) m =
      Graph.iter_edges
        (fun pu pv ->
          let x = Hashtbl.find index m.(pu) and y = Hashtbl.find index m.(pv) in
          es := (min x y, max x y) :: !es)
        st.Grow_util.pattern
    in
    add_edges a ma;
    add_edges b mb;
    let pattern = Graph.Builder.of_edges ~labels (List.sort_uniq compare !es) in
    if Bfs.is_connected pattern then Some pattern else None

let mine ?run ?rng ?(r = 1) ?(d_max = 4) ?(seeds = 200) ?(rounds = 3)
    ?(max_spider_edges = 8) ~graph ~sigma ~k () =
  let run = match run with Some r -> r | None -> Run.create () in
  let t0 = Clock.now () in
  let st = match rng with Some r -> r | None -> Gen.rng 0xdeed in
  let spiders = mine_spiders ~run graph ~sigma ~r ~max_edges:max_spider_edges in
  let spiders_arr = Array.of_list spiders in
  let merges = ref 0 in
  let best : (string, Pattern.t * int) Hashtbl.t = Hashtbl.create 64 in
  let consider pattern =
    Run.tick run;
    let key = Canon.key pattern in
    if not (Hashtbl.mem best key) then begin
      let support = Support.single_graph ~limit:(max sigma 2) pattern graph in
      if support >= sigma && Bfs.diameter pattern <= d_max then
        Hashtbl.replace best key (pattern, support)
    end
  in
  (if Array.length spiders_arr > 0 then
     try
       (* Random seed draws. *)
       let picked =
         Array.init (min seeds (4 * Array.length spiders_arr)) (fun _ ->
             Gen.pick st spiders_arr)
       in
       Array.iter (fun s -> consider s.Grow_util.pattern) picked;
       (* Merge rounds: current pool of states, pairwise overlap merges. *)
       let pool = ref (Array.to_list picked) in
       for _ = 1 to rounds do
         let additions = ref [] in
         let arr = Array.of_list !pool in
         let n = Array.length arr in
         let tries = min 400 (n * 4) in
         for _ = 1 to tries do
           Run.check run;
           let a = arr.(Random.State.int st n) in
           let b = arr.(Random.State.int st n) in
           if a != b then
             match merge_states graph a b with
             | None -> ()
             | Some pattern ->
               if Bfs.diameter pattern <= d_max then begin
                 incr merges;
                 consider pattern;
                 let maps =
                   Plan.all_mappings
                     (Plan.compile
                        ~freq:(fun l -> Graph.label_freq graph l)
                        pattern)
                     ~target:graph
                 in
                 if maps <> [] then
                   additions := { Grow_util.pattern; maps } :: !additions
               end
         done;
         pool := !additions @ !pool
       done
     with Run.Cancelled _ -> ());
  let patterns =
    Hashtbl.fold (fun _ pv acc -> pv :: acc) best []
    |> List.sort (fun (p1, _) (p2, _) ->
           Int.compare (Pattern.size p2) (Pattern.size p1))
    |> List.filteri (fun i _ -> i < k)
  in
  {
    patterns;
    spiders_mined = List.length spiders;
    merges_done = !merges;
    elapsed = Clock.now () -. t0;
  }
