(** ORIGAMI (Hasan, Chaoji, Salem, Besson, Zaki — ICDM 2007): α-orthogonal
    β-representative maximal pattern sampling in the graph-transaction
    setting.

    Random walks over the pattern lattice: start from a random frequent
    edge, repeatedly apply a random frequent one-edge extension until the
    pattern is maximal (no frequent extension), collect the endpoint;
    finally keep a greedy α-orthogonal subset (pairwise similarity <= α over
    label-pair feature vectors). The published consequence the paper's
    Figures 9–10 show: the output is a sparse sample of the output space —
    mostly small/medium patterns, missing most of the injected large ones. *)

type result = {
  patterns : (Spm_pattern.Pattern.t * int) list;
      (** orthogonal sample with transaction supports *)
  walks : int;
  maximal_found : int;
  elapsed : float;
}

val similarity : Spm_pattern.Pattern.t -> Spm_pattern.Pattern.t -> float
(** Jaccard similarity of (label, label) edge multisets. *)

val mine :
  ?run:Spm_engine.Run.t ->
  ?rng:Spm_graph.Gen.rng ->
  ?walks:int ->
  ?alpha:float ->
  ?max_edges:int ->
  db:Spm_graph.Graph.t list ->
  sigma:int ->
  unit ->
  result
(** Defaults: [walks = 50], [alpha = 0.5]. [run] is polled per walk step;
    an interrupted run α-filters the walks collected so far. *)
