(** SpiderMine (Zhu, Qu, Lo, Yan, Han, Yu — PVLDB 2011), reimplemented from
    its publication as the paper's main baseline for large-pattern mining in
    a single graph.

    The algorithm (1) mines all frequent r-spiders — patterns whose every
    vertex lies within distance r of a designated head; (2) draws M random
    seed spiders; (3) repeatedly merges seeds whose embeddings overlap in the
    data graph, growing large patterns while keeping the diameter within
    [d_max]; and (4) reports the top-K largest frequent patterns found.

    Its published bias, which Figures 4–10 and Table 3 of the SkinnyMine
    paper exploit, is structural: random seeds land in dense regions and the
    d_max bound caps the diameter, so large-but-fat patterns are found while
    long skinny ones are missed. *)

type result = {
  patterns : (Spm_pattern.Pattern.t * int) list;
      (** top-K largest with supports, largest first *)
  spiders_mined : int;
  merges_done : int;
  elapsed : float;
}

val mine :
  ?run:Spm_engine.Run.t ->
  ?rng:Spm_graph.Gen.rng ->
  ?r:int ->
  ?d_max:int ->
  ?seeds:int ->
  ?rounds:int ->
  ?max_spider_edges:int ->
  graph:Spm_graph.Graph.t ->
  sigma:int ->
  k:int ->
  unit ->
  result
(** Defaults follow the paper's experiments: [r = 1], [d_max = 4],
    [seeds = 200] candidate draws, [rounds = 3] merge rounds.
    [run] is polled per spider extension and per merge try; an interrupted
    run reports the top-K among patterns found so far. *)
