(** SEuS (Ghazizadeh & Chawathe — DS 2002): frequent structures via a
    collapsed summary graph.

    The data graph is summarized by collapsing all vertices with the same
    label into one summary node; summary edge weights count the data edges
    between label classes. Candidate patterns are enumerated over the summary
    (weights give a cheap support upper bound) and only promising candidates
    are verified against the data graph. The published weakness the paper
    leans on: with many distinct low-frequency structures the summary's
    estimates collapse, and SEuS reports mostly very small patterns. *)

type result = {
  patterns : (Spm_pattern.Pattern.t * int) list;  (** verified support *)
  candidates : int;  (** summary-level candidates enumerated *)
  verified : int;  (** candidates that survived estimation and were checked *)
  elapsed : float;
}

val summary :
  Spm_graph.Graph.t -> (Spm_graph.Label.t * Spm_graph.Label.t, int) Hashtbl.t
(** Edge counts between label classes ([la <= lb]). *)

val mine :
  ?run:Spm_engine.Run.t ->
  ?max_edges:int ->
  graph:Spm_graph.Graph.t ->
  sigma:int ->
  unit ->
  result
(** Defaults: [max_edges = 3] (the summary blows up quickly beyond that,
    matching the published behaviour of |V| <= 3 outputs). [run] is polled
    per summary candidate; an interrupted run returns the patterns verified
    so far. *)
