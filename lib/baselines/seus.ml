open Spm_graph
open Spm_pattern
module Run = Spm_engine.Run
module Clock = Spm_engine.Clock

type result = {
  patterns : (Pattern.t * int) list;
  candidates : int;
  verified : int;
  elapsed : float;
}

let summary g =
  let tbl = Hashtbl.create 64 in
  Graph.iter_edges
    (fun u v ->
      let a = Graph.label g u and b = Graph.label g v in
      let key = (min a b, max a b) in
      Hashtbl.replace tbl key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    g;
  tbl

(* Enumerate connected label-patterns over the summary: patterns whose every
   edge is a summary edge; the estimate is the min summary weight over the
   pattern's edges (an upper bound on data support). *)
let mine ?run ?(max_edges = 3) ~graph ~sigma () =
  let run = match run with Some r -> r | None -> Run.create () in
  let t0 = Clock.now () in
  let s = summary graph in
  let summary_edges =
    Hashtbl.fold (fun k w acc -> (k, w) :: acc) s [] |> List.sort compare
  in
  let candidates = ref 0 in
  let verified = ref 0 in
  let out = ref [] in
  let seen = Canon.Set.create () in
  (* Grow label patterns: state = pattern over labels; extensions attach a
     summary edge at any vertex, or close between two vertices. *)
  let estimate p =
    Graph.fold_edges
      (fun u v acc ->
        let a = Graph.label p u and b = Graph.label p v in
        min acc
          (Option.value ~default:0 (Hashtbl.find_opt s (min a b, max a b))))
      p max_int
  in
  let verify p =
    incr verified;
    let sup = Support.single_graph p graph in
    if sup >= sigma && Canon.Set.add seen p then out := (p, sup) :: !out
  in
  let visited = Canon.Set.create () in
  let rec extend p =
    if Canon.Set.add visited p then extend_fresh p
  and extend_fresh p =
    Run.check run;
    Run.tick run;
    incr candidates;
    if estimate p >= sigma then begin
      verify p;
      if Pattern.size p < max_edges then begin
        (* Attach each summary edge at each compatible vertex. *)
        List.iter
          (fun ((a, b), _) ->
            for v = 0 to Graph.n p - 1 do
              let lv = Graph.label p v in
              if lv = a then extend (Pattern.extend_new_vertex p ~host:v ~label:b);
              if lv = b && a <> b then
                extend (Pattern.extend_new_vertex p ~host:v ~label:a)
            done)
          summary_edges;
        (* Close compatible vertex pairs. *)
        for v = 0 to Graph.n p - 1 do
          for u = 0 to v - 1 do
            if not (Graph.has_edge p u v) then begin
              let a = Graph.label p u and b = Graph.label p v in
              if Hashtbl.mem s (min a b, max a b) then
                extend (Pattern.extend_close_edge p u v)
            end
          done
        done
      end
    end
  in
  (try
     List.iter
       (fun ((a, b), _) -> extend (Pattern.singleton_edge a b))
       summary_edges
   with Run.Cancelled _ -> ());
  {
    patterns =
      List.sort
        (fun (p1, _) (p2, _) -> Int.compare (Pattern.size p1) (Pattern.size p2))
        !out;
    candidates = !candidates;
    verified = !verified;
    elapsed = Clock.now () -. t0;
  }
