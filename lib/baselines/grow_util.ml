open Spm_graph
open Spm_pattern

type state = { pattern : Pattern.t; maps : int array list }

type desc = NL of int * Label.t | CE of int * int

let vertex_seeds g =
  let by_label = Hashtbl.create 16 in
  Graph.iter_vertices
    (fun v ->
      let l = Graph.label g v in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_label l) in
      Hashtbl.replace by_label l ([| v |] :: cur))
    g;
  Hashtbl.fold
    (fun l maps acc ->
      (l, { pattern = Graph.Builder.of_edges ~labels:[| l |] []; maps }) :: acc)
    by_label []
  |> List.sort compare

let edge_seeds g =
  let by_pair = Hashtbl.create 16 in
  Graph.iter_edges
    (fun u v ->
      let lu = Graph.label g u and lv = Graph.label g v in
      let push a b x y =
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_pair (a, b)) in
        Hashtbl.replace by_pair (a, b) ([| x; y |] :: cur)
      in
      if lu <= lv then push lu lv u v;
      if lv <= lu then push lv lu v u)
    g;
  Hashtbl.fold
    (fun (a, b) maps acc ->
      { pattern = Pattern.singleton_edge a b; maps } :: acc)
    by_pair []

let extensions g st =
  let by_desc : (desc, int array list ref) Hashtbl.t = Hashtbl.create 32 in
  let add desc m =
    match Hashtbl.find_opt by_desc desc with
    | Some l -> l := m :: !l
    | None -> Hashtbl.add by_desc desc (ref [ m ])
  in
  let np = Graph.n st.pattern in
  (* Stamp-based mark array: one stamp per embedding marks its image set, so
     the membership test is an array probe with no per-embedding table. *)
  let mark = Array.make (max 1 (Graph.n g)) 0 in
  let stamp = ref 0 in
  List.iter
    (fun m ->
      incr stamp;
      let s = !stamp in
      Array.iter (fun tv -> mark.(tv) <- s) m;
      for pv = 0 to np - 1 do
        Graph.iter_adj g m.(pv) (fun w ->
            if mark.(w) <> s then
              add (NL (pv, Graph.label g w)) (Array.append m [| w |]))
      done;
      for pv = 0 to np - 1 do
        for pu = 0 to pv - 1 do
          if
            (not (Graph.has_edge st.pattern pu pv))
            && Graph.has_edge g m.(pu) m.(pv)
          then add (CE (pu, pv)) m
        done
      done)
    st.maps;
  Hashtbl.fold
    (fun desc maps acc ->
      let pattern =
        match desc with
        | NL (host, label) -> Pattern.extend_new_vertex st.pattern ~host ~label
        | CE (u, v) -> Pattern.extend_close_edge st.pattern u v
      in
      { pattern; maps = !maps } :: acc)
    by_desc []

let support _g st =
  if Pattern.size st.pattern = 0 then
    List.length (List.sort_uniq compare (List.map (fun m -> m.(0)) st.maps))
  else
    match st.maps with
    | [] -> 0
    | _ ->
      (* The state's maps are the complete mapping set, so the distinct
         image-subgraph count is |maps| / |Aut| — no dedup hashing. *)
      List.length st.maps / Plan.automorphism_count st.pattern

let key st = Canon.key st.pattern
