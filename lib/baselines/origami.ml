open Spm_graph
open Spm_pattern
module Run = Spm_engine.Run
module Clock = Spm_engine.Clock

type result = {
  patterns : (Pattern.t * int) list;
  walks : int;
  maximal_found : int;
  elapsed : float;
}

let edge_features p =
  let feats = Hashtbl.create 16 in
  Graph.iter_edges
    (fun u v ->
      let a = Graph.label p u and b = Graph.label p v in
      let key = (min a b, max a b) in
      Hashtbl.replace feats key
        (1 + Option.value ~default:0 (Hashtbl.find_opt feats key)))
    p;
  feats

let similarity p q =
  let fp = edge_features p and fq = edge_features q in
  let inter = ref 0 and union = ref 0 in
  let keys = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) fp;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) fq;
  Hashtbl.iter
    (fun k () ->
      let a = Option.value ~default:0 (Hashtbl.find_opt fp k) in
      let b = Option.value ~default:0 (Hashtbl.find_opt fq k) in
      inter := !inter + min a b;
      union := !union + max a b)
    keys;
  if !union = 0 then 1.0 else float_of_int !inter /. float_of_int !union

(* One-edge extensions of a pattern that stay frequent in the database. *)
let frequent_extensions db ~sigma p =
  let candidates = Canon.Set.create () in
  let out = ref [] in
  let plan = Plan.compile p in
  List.iter
    (fun g ->
      let mark = Array.make (max 1 (Graph.n g)) 0 in
      let stamp = ref 0 in
      List.iter
        (fun m ->
          incr stamp;
          let s = !stamp in
          Array.iter (fun tv -> mark.(tv) <- s) m;
          for pv = 0 to Graph.n p - 1 do
            Graph.iter_adj g m.(pv) (fun w ->
                if mark.(w) <> s then begin
                  let p' =
                    Pattern.extend_new_vertex p ~host:pv ~label:(Graph.label g w)
                  in
                  if Canon.Set.add candidates p' then out := p' :: !out
                end)
          done;
          for pv = 0 to Graph.n p - 1 do
            for pu = 0 to pv - 1 do
              if
                (not (Graph.has_edge p pu pv))
                && Graph.has_edge g m.(pu) m.(pv)
              then begin
                let p' = Pattern.extend_close_edge p pu pv in
                if Canon.Set.add candidates p' then out := p' :: !out
              end
            done
          done)
        (Plan.all_mappings plan ~target:g))
    db;
  List.filter (fun p' -> Support.is_frequent_transaction p' db ~sigma) !out

let mine ?run ?rng ?(walks = 50) ?(alpha = 0.5) ?(max_edges = 30) ~db ~sigma
    () =
  let run = match run with Some r -> r | None -> Run.create () in
  let t0 = Clock.now () in
  let st = match rng with Some r -> r | None -> Gen.rng 0x0219a41 in
  (* Frequent seed edges. *)
  let seed_tbl = Hashtbl.create 32 in
  List.iter
    (fun g ->
      Graph.iter_edges
        (fun u v ->
          let a = Graph.label g u and b = Graph.label g v in
          Hashtbl.replace seed_tbl (min a b, max a b) ())
        g)
    db;
  let seeds =
    Hashtbl.fold (fun (a, b) () acc -> Pattern.singleton_edge a b :: acc) seed_tbl []
    |> List.filter (fun p -> Support.is_frequent_transaction p db ~sigma)
    |> Array.of_list
  in
  let maximal = Canon.Set.create () in
  let collected = ref [] in
  (* Each walk polls the run per step; an interrupted run keeps the walks
     already collected (a truncated sample is still a sample). *)
  (if Array.length seeds > 0 then
     try
       for _ = 1 to walks do
         Run.check run;
         let p = ref (Gen.pick st seeds) in
         let continue = ref true in
         while
           !continue && Pattern.size !p < max_edges
           && not (Run.interrupted run)
         do
           Run.tick run;
           match frequent_extensions db ~sigma !p with
           | [] -> continue := false
           | exts ->
             let arr = Array.of_list exts in
             p := Gen.pick st arr
         done;
         if Canon.Set.add maximal !p then
           collected := (!p, Support.transaction !p db) :: !collected
       done
     with Run.Cancelled _ -> ());
  (* Greedy alpha-orthogonal filter, largest first. *)
  let sorted =
    List.sort
      (fun (p1, _) (p2, _) -> Int.compare (Pattern.size p2) (Pattern.size p1))
      !collected
  in
  let orthogonal =
    List.fold_left
      (fun acc (p, sup) ->
        if List.for_all (fun (q, _) -> similarity p q <= alpha) acc then
          (p, sup) :: acc
        else acc)
      [] sorted
    |> List.rev
  in
  {
    patterns = orthogonal;
    walks;
    maximal_found = Canon.Set.cardinal maximal;
    elapsed = Clock.now () -. t0;
  }
