open Spm_pattern
module Run = Spm_engine.Run
module Clock = Spm_engine.Clock

type scored = { pattern : Pattern.t; instances : int; compression : float }

type result = { best : scored list; expanded : int; elapsed : float }

(* MDL proxy: a pattern occurrence costs (order + size) description units;
   replacing all instances by supervertices keeps one copy of the pattern
   plus a half-unit pointer per instance, so the saving is
   (instances - 1) * (order + size) - instances/2 - (order + size).
   Monotone in instances at every size, and size-frequency balanced the way
   published SUBDUE behaves (small very-frequent substructures win). *)
let compression_of ~size ~order ~instances =
  if instances <= 1 then 0.0
  else
    let dl = float_of_int (order + size) in
    (float_of_int (instances - 1) *. dl)
    -. (0.5 *. float_of_int instances)
    -. dl

let score g (st : Grow_util.state) =
  let instances = Grow_util.support g st in
  {
    pattern = st.Grow_util.pattern;
    instances;
    compression =
      compression_of ~size:(Pattern.size st.Grow_util.pattern)
        ~order:(Pattern.order st.Grow_util.pattern)
        ~instances;
  }

let mine ?run ?(beam = 4) ?(max_edges = 10) ?(limit_best = 10)
    ?(iterations = 30) ~graph () =
  let run = match run with Some r -> r | None -> Run.create () in
  let t0 = Clock.now () in
  let expanded = ref 0 in
  let seen = Hashtbl.create 256 in
  let best : scored list ref = ref [] in
  let push_best s =
    best :=
      s :: !best
      |> List.sort (fun a b -> Float.compare b.compression a.compression)
      |> List.filteri (fun i _ -> i < limit_best)
  in
  let frontier =
    ref
      (Grow_util.vertex_seeds graph
      |> List.map (fun (_, st) -> st)
      |> List.map (fun st -> (st, score graph st)))
  in
  List.iter (fun (_, s) -> push_best s) !frontier;
  let round = ref 0 in
  (* The beam loop polls between rounds and per expansion; the best-list is
     monotone, so an interrupted run simply reports what the completed
     rounds scored. *)
  while !round < iterations && !frontier <> [] && not (Run.interrupted run) do
    incr round;
    (* Keep the [beam] best frontier states by compression. *)
    let top =
      List.sort (fun (_, a) (_, b) -> Float.compare b.compression a.compression)
        !frontier
      |> List.filteri (fun i _ -> i < beam)
    in
    let children =
      List.concat_map
        (fun (st, _) ->
          incr expanded;
          Run.tick run;
          if Run.interrupted run then []
          else
            Grow_util.extensions graph st
          |> List.filter_map (fun st' ->
                 let key = Grow_util.key st' in
                 if
                   Hashtbl.mem seen key
                   || Pattern.size st'.Grow_util.pattern > max_edges
                 then None
                 else begin
                   Hashtbl.replace seen key ();
                   let s = score graph st' in
                   if s.instances >= 1 then begin
                     push_best s;
                     Some (st', s)
                   end
                   else None
                 end))
        top
    in
    frontier := children
  done;
  { best = !best; expanded = !expanded; elapsed = Clock.now () -. t0 }
