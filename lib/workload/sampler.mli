(** Seeded key samplers for synthetic serving workloads.

    The cluster load generator draws query keys from these: [uniform]
    spreads load evenly, [zipf] concentrates it on a few hot keys the way
    real query logs do — rank [k] (1-based) is drawn with probability
    proportional to [1 / k^s], so [s = 0] degenerates to uniform and
    larger [s] skews harder (web-style workloads sit near [s = 1]).

    Sampling is inverse-CDF over a precomputed table (O(n) setup, O(log n)
    per draw) from a private [Random.State], so a given [(seed, n, s)]
    yields the same key sequence on every run — benchmark workloads are
    reproducible by construction. *)

type t

val uniform : seed:int -> n:int -> t
(** Each key in [0 .. n-1] equally likely.
    @raise Invalid_argument if [n < 1]. *)

val zipf : ?s:float -> seed:int -> n:int -> unit -> t
(** Key [k] (0-based) drawn with probability proportional to
    [1 / (k+1)^s]; [s] defaults to [1.0]. Keys are hotness-ranked: key 0
    is the hottest.
    @raise Invalid_argument if [n < 1] or [s < 0]. *)

val next : t -> int
(** The next key, in [0 .. n-1]. Advances the sampler's private state. *)

val n : t -> int
(** The key-space size. *)
