type dist =
  | Uniform
  | Cdf of float array  (* cdf.(k) = P(key <= k); last entry is 1.0 *)

type t = { n : int; state : Random.State.t; dist : dist }

let uniform ~seed ~n =
  if n < 1 then invalid_arg "Sampler.uniform: n must be >= 1";
  { n; state = Random.State.make [| seed |]; dist = Uniform }

let zipf ?(s = 1.0) ~seed ~n () =
  if n < 1 then invalid_arg "Sampler.zipf: n must be >= 1";
  if s < 0. then invalid_arg "Sampler.zipf: s must be >= 0";
  let weights = Array.init n (fun k -> 1. /. Float.pow (float_of_int (k + 1)) s) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun k w ->
      acc := !acc +. (w /. total);
      cdf.(k) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { n; state = Random.State.make [| seed |]; dist = Cdf cdf }

let next t =
  match t.dist with
  | Uniform -> Random.State.int t.state t.n
  | Cdf cdf ->
    let u = Random.State.float t.state 1.0 in
    (* smallest k with cdf.(k) >= u *)
    let lo = ref 0 and hi = ref (t.n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo

let n t = t.n
