(** The paper's synthetic data settings (§6.2, Tables 1–3 and the
    graph-transaction setup of Figures 9–10).

    Every constructor takes a seed and an optional [scale] in (0, 1] that
    shrinks vertex counts proportionally (pattern shapes are preserved) so
    the full harness can run quickly; [scale = 1.0] reproduces the paper's
    sizes exactly. *)

type injected = {
  pattern : Spm_graph.Graph.t;
  copies : int;
  placements : int array array;  (** per copy, data id of each pattern vertex *)
}

type dataset = {
  graph : Spm_graph.Graph.t;
  long_patterns : injected list;
  short_patterns : injected list;
  name : string;
}

val gid : ?scale:float -> seed:int -> int -> dataset
(** Table 1 settings, [gid] in 1..5:
    {v
    GID |V|   f   deg |VL| Ld Ls n  |VS| Sd Ss
    1   500   80  2   40   18 2  5  4    2  2
    2   500   80  4   40   18 2  5  4    2  2
    3   1000  240 2   40   18 2  5  4    2  20
    4   1000  240 4   40   18 2  5  4    2  20
    5   600   150 4   40   18 2  20 4    2  2
    v}
    (m = 5 injected long patterns in all settings). *)

val gid_description : int -> string
(** Table 2's "difference in setting" text. *)

val scale_free :
  ?rmat_scale:int ->
  ?edge_factor:int ->
  ?num_labels:int ->
  seed:int ->
  unit ->
  dataset
(** Scale-free counterpart of the Table-1 settings: an R-MAT background
    with [2^rmat_scale] vertices (default 12) and [edge_factor] (default 8)
    edge draws per vertex — heavy-tailed degrees, unlike the ER settings —
    plus the usual five long and five short skinny injections (support 2).
    Sized in powers of two because the out-of-core experiments scale it. *)

type probe = { dataset : dataset; pids : (int * int * int) list }
(** [(pid, target_order, diameter)] for the ten Table 3 patterns. *)

val skinniness_probe : ?scale:float -> seed:int -> unit -> probe
(** Table 3: a 2000-vertex (scaled) background with ten injected patterns of
    decreasing skinniness — PIDs 1–5: 60 vertices with diameters
    50,45,40,35,30; PIDs 6–10: 8-diameter patterns with 20..60 vertices;
    support 2 each. *)

type transaction_db = {
  transactions : Spm_graph.Graph.t list;
  injected_long : Spm_graph.Graph.t list;
  injected_small : Spm_graph.Graph.t list;
}

val transaction_setting :
  ?scale:float -> ?extra_small:int -> seed:int -> unit -> transaction_db
(** Figures 9–10: ten ER graphs (800 vertices, deg 5, f = 80), five skinny
    patterns (40 vertices, diameter 20) each placed in five transactions;
    [extra_small] additional 5-vertex patterns with support 5 (120 in
    Figure 10). *)

val skinny_accept : l:int -> delta:int -> Spm_graph.Graph.t -> bool
(** The exact acceptance predicate handed to
    {!Spm_graph.Gen.random_skinny_pattern}. *)
