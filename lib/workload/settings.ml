open Spm_graph

type injected = {
  pattern : Graph.t;
  copies : int;
  placements : int array array;
}

type dataset = {
  graph : Graph.t;
  long_patterns : injected list;
  short_patterns : injected list;
  name : string;
}

let skinny_accept ~l ~delta g =
  Spm_core.Canonical_diameter.is_l_long_delta_skinny g ~l ~delta

(* A skinny pattern with [order] vertices whose diameter is exactly
   [diameter]; twigs are rejection-sampled under the exact predicate. *)
let make_skinny st ~order ~diameter ~delta ~num_labels =
  let twigs = max 0 (order - diameter - 1) in
  Gen.random_skinny_pattern
    ~accept:(skinny_accept ~l:diameter ~delta)
    st ~backbone:diameter ~delta ~twigs ~num_labels

let scaled scale x = max 2 (int_of_float (float_of_int x *. scale))

type spec = {
  v : int;
  f : int;
  deg : float;
  vl : int;
  ld : int;
  ls : int;
  n_short : int;
  vs : int;
  sd : int;
  ss : int;
}

let table1 = function
  | 1 -> { v = 500; f = 80; deg = 2.0; vl = 40; ld = 18; ls = 2; n_short = 5; vs = 4; sd = 2; ss = 2 }
  | 2 -> { v = 500; f = 80; deg = 4.0; vl = 40; ld = 18; ls = 2; n_short = 5; vs = 4; sd = 2; ss = 2 }
  | 3 -> { v = 1000; f = 240; deg = 2.0; vl = 40; ld = 18; ls = 2; n_short = 5; vs = 4; sd = 2; ss = 20 }
  | 4 -> { v = 1000; f = 240; deg = 4.0; vl = 40; ld = 18; ls = 2; n_short = 5; vs = 4; sd = 2; ss = 20 }
  | 5 -> { v = 600; f = 150; deg = 4.0; vl = 40; ld = 18; ls = 2; n_short = 20; vs = 4; sd = 2; ss = 2 }
  | g -> invalid_arg (Printf.sprintf "Settings.gid: unknown GID %d" g)

let gid_description = function
  | 1 -> "baseline setting"
  | 2 -> "GID 2 doubles the average degree"
  | 3 -> "GID 3 increases the support of short patterns"
  | 4 -> "GID 4 doubles the average degree of GID 3"
  | 5 -> "GID 5 increases the number of short patterns"
  | g -> invalid_arg (Printf.sprintf "Settings.gid_description: %d" g)

let inject_patterns st b patterns ~copies =
  List.map
    (fun pattern ->
      let placements = Gen.inject st b ~pattern ~copies () in
      { pattern; copies; placements })
    patterns

let gid ?(scale = 1.0) ~seed g =
  let s = table1 g in
  let st = Gen.rng (seed + (g * 7919)) in
  let v = scaled scale s.v in
  let vl = scaled scale s.vl in
  let ld = max 4 (scaled scale s.ld) in
  let background = Gen.erdos_renyi st ~n:v ~avg_degree:s.deg ~num_labels:s.f in
  let b = Graph.Builder.of_graph background in
  let m_long = 5 in
  let longs =
    List.init m_long (fun _ ->
        make_skinny st ~order:vl ~diameter:ld ~delta:2 ~num_labels:s.f)
  in
  let shorts =
    List.init s.n_short (fun _ ->
        make_skinny st ~order:s.vs ~diameter:s.sd ~delta:1 ~num_labels:s.f)
  in
  let long_patterns = inject_patterns st b longs ~copies:s.ls in
  let short_patterns = inject_patterns st b shorts ~copies:s.ss in
  {
    graph = Graph.Builder.freeze b;
    long_patterns;
    short_patterns;
    name = Printf.sprintf "GID %d (%s)" g (gid_description g);
  }

(* Scale-free variant of the Table-1 settings: an R-MAT background (so the
   degree distribution is heavy-tailed, unlike the ER settings above) with
   the usual skinny injections. [scale] here is the R-MAT scale exponent —
   2^scale background vertices — because out-of-core experiments size these
   in powers of two. *)
let scale_free ?(rmat_scale = 12) ?(edge_factor = 8) ?(num_labels = 80) ~seed
    () =
  let st = Gen.rng (seed + 0x5caf) in
  let background = Gen.rmat st ~scale:rmat_scale ~edge_factor ~num_labels in
  let b = Graph.Builder.of_graph background in
  let longs =
    List.init 5 (fun _ ->
        make_skinny st ~order:40 ~diameter:18 ~delta:2 ~num_labels)
  in
  let shorts =
    List.init 5 (fun _ ->
        make_skinny st ~order:4 ~diameter:2 ~delta:1 ~num_labels)
  in
  let long_patterns = inject_patterns st b longs ~copies:2 in
  let short_patterns = inject_patterns st b shorts ~copies:2 in
  {
    graph = Graph.Builder.freeze b;
    long_patterns;
    short_patterns;
    name = Printf.sprintf "scale-free (R-MAT 2^%d x %d)" rmat_scale edge_factor;
  }

type probe = { dataset : dataset; pids : (int * int * int) list }

let skinniness_probe ?(scale = 1.0) ~seed () =
  let st = Gen.rng (seed + 31337) in
  let v = scaled scale 2000 in
  let background = Gen.erdos_renyi st ~n:v ~avg_degree:3.0 ~num_labels:100 in
  let b = Graph.Builder.of_graph background in
  (* Table 3: PIDs 1-5 are 60-vertex patterns of decreasing diameter; PIDs
     6-10 are 8-diameter patterns of increasing order. *)
  let specs =
    [
      (1, 60, 50); (2, 60, 45); (3, 60, 40); (4, 60, 35); (5, 60, 30);
      (6, 20, 8); (7, 30, 8); (8, 40, 8); (9, 50, 8); (10, 60, 8);
    ]
    |> List.map (fun (pid, order, diam) ->
           (pid, scaled scale order, max 4 (scaled scale diam)))
  in
  let injected =
    List.map
      (fun (_, order, diam) ->
        (* Fatter patterns get a looser skinniness budget. *)
        let delta = if diam >= order / 2 then 2 else 4 in
        make_skinny st ~order ~diameter:diam ~delta ~num_labels:100)
      specs
  in
  let long_patterns = inject_patterns st b injected ~copies:2 in
  {
    dataset =
      {
        graph = Graph.Builder.freeze b;
        long_patterns;
        short_patterns = [];
        name = "Table 3 skinniness probe";
      };
    pids = specs;
  }

type transaction_db = {
  transactions : Graph.t list;
  injected_long : Graph.t list;
  injected_small : Graph.t list;
}

let transaction_setting ?(scale = 1.0) ?(extra_small = 0) ~seed () =
  let st = Gen.rng (seed + 777) in
  let num_tx = 10 in
  let v = scaled scale 800 in
  let f = 80 in
  let longs =
    List.init 5 (fun _ ->
        make_skinny st
          ~order:(scaled scale 40)
          ~diameter:(max 4 (scaled scale 20))
          ~delta:2 ~num_labels:f)
  in
  let smalls =
    List.init extra_small (fun _ ->
        make_skinny st ~order:5 ~diameter:2 ~delta:1 ~num_labels:f)
  in
  let builders =
    Array.init num_tx (fun _ ->
        Graph.Builder.of_graph
          (Gen.erdos_renyi st ~n:v ~avg_degree:5.0 ~num_labels:f))
  in
  (* Each pattern goes into 5 distinct random transactions. *)
  let place pattern =
    let order = Array.init num_tx (fun i -> i) in
    Gen.shuffle st order;
    for i = 0 to min 4 (num_tx - 1) do
      ignore (Gen.inject st builders.(order.(i)) ~pattern ~copies:1 ())
    done
  in
  List.iter place longs;
  List.iter place smalls;
  {
    transactions = Array.to_list (Array.map Graph.Builder.freeze builders);
    injected_long = longs;
    injected_small = smalls;
  }
