exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32_seed = 0xFFFFFFFFl

let crc32_update c ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let table = Lazy.force crc_table in
  let c = ref c in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  !c

let crc32_value c = Int32.logxor c 0xFFFFFFFFl

let crc32 ?pos ?len s = crc32_value (crc32_update crc32_seed ?pos ?len s)

module W = struct
  (* One writer type over two sinks, so the store's encoders produce either
     an in-memory string (wire protocol, tests) or stream straight to a file
     (large saves) from the same code path. [written] counts bytes emitted
     since creation — channel sinks have no [Buffer.length] to consult. *)
  type sink = Buf of Buffer.t | Chan of out_channel

  type t = { sink : sink; mutable written : int }

  let create ?(size = 256) () =
    { sink = Buf (Buffer.create size); written = 0 }

  let to_channel oc = { sink = Chan oc; written = 0 }

  let add_char w c =
    (match w.sink with
    | Buf b -> Buffer.add_char b c
    | Chan oc -> output_char oc c);
    w.written <- w.written + 1

  let byte w b = add_char w (Char.chr (b land 0xFF))

  let uint w n =
    if n < 0 then invalid_arg "Codec.W.uint: negative";
    let rec go n =
      if n < 0x80 then byte w n
      else begin
        byte w (0x80 lor (n land 0x7F));
        go (n lsr 7)
      end
    in
    go n

  (* Two's-complement LEB128: the raw 63-bit pattern, 7 bits per byte via
     logical shifts. Non-negative small values (the common case: vertex ids,
     labels, supports) stay 1-2 bytes; negatives take the full 9 bytes, and
     the whole [int] range round-trips. *)
  let int w n =
    let rec go n =
      if n land lnot 0x7F = 0 then byte w n
      else begin
        byte w (0x80 lor (n land 0x7F));
        go (n lsr 7)
      end
    in
    go n
  let bool w b = byte w (if b then 1 else 0)

  let float w f =
    let bits = Int64.bits_of_float f in
    for i = 0 to 7 do
      byte w (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF)
    done

  let raw w s =
    (match w.sink with
    | Buf b -> Buffer.add_string b s
    | Chan oc -> output_string oc s);
    w.written <- w.written + String.length s

  let string w s =
    uint w (String.length s);
    raw w s

  let int_array w a =
    uint w (Array.length a);
    Array.iter (int w) a

  let list w f xs =
    uint w (List.length xs);
    List.iter (f w) xs

  let option w f = function
    | None -> bool w false
    | Some x ->
      bool w true;
      f w x

  let length w = w.written

  let contents w =
    match w.sink with
    | Buf b -> Buffer.contents b
    | Chan _ -> invalid_arg "Codec.W.contents: channel-backed writer"

  let add_crc w (c : int32) =
    for i = 0 to 3 do
      byte w (Int32.to_int (Int32.shift_right_logical c (8 * i)) land 0xFF)
    done

  (* Each section's payload is staged in its own buffer (the frame needs the
     length and CRC up front), then flushed to the parent sink. Peak memory
     while saving is therefore one section, not the whole encoded file. *)
  let section w ~tag f =
    let payload = create () in
    f payload;
    let payload = contents payload in
    add_char w tag;
    uint w (String.length payload);
    add_crc w (crc32 payload);
    raw w payload
end

module R = struct
  type t = { src : string; stop : int; mutable pos : int }

  let of_string ?(pos = 0) ?len src =
    let stop =
      match len with Some l -> pos + l | None -> String.length src
    in
    if pos < 0 || stop > String.length src then
      invalid_arg "Codec.R.of_string: bad bounds";
    { src; stop; pos }

  let pos r = r.pos
  let left r = r.stop - r.pos

  let byte r =
    if r.pos >= r.stop then corrupt "truncated at byte %d" r.pos;
    let b = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    b

  let uint r =
    let rec go shift acc =
      if shift > Sys.int_size - 1 then corrupt "varint overflow at byte %d" r.pos;
      let b = byte r in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  (* Same accumulation as [uint], but the top group may land in the sign
     bit, reconstructing negatives. *)
  let int r =
    let rec go shift acc =
      if shift >= Sys.int_size then corrupt "varint overflow at byte %d" r.pos;
      let b = byte r in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let bool r =
    match byte r with
    | 0 -> false
    | 1 -> true
    | b -> corrupt "bad boolean %d at byte %d" b (r.pos - 1)

  let float r =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte r)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let raw r n =
    if n < 0 || left r < n then corrupt "truncated string (%d bytes) at byte %d" n r.pos;
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s

  let string r = raw r (uint r)

  let int_array r =
    let n = uint r in
    if n > left r then corrupt "array length %d exceeds input at byte %d" n r.pos;
    Array.init n (fun _ -> int r)

  let list r f =
    let n = uint r in
    if n > left r then corrupt "list length %d exceeds input at byte %d" n r.pos;
    List.init n (fun _ -> f r)

  let option r f = if bool r then Some (f r) else None

  let expect_magic r magic =
    let here = r.pos in
    let got = raw r (String.length magic) in
    if not (String.equal got magic) then
      corrupt "bad magic at byte %d: expected %S, got %S" here magic got

  let read_crc r =
    let c = ref 0l in
    for i = 0 to 3 do
      c := Int32.logor !c (Int32.shift_left (Int32.of_int (byte r)) (8 * i))
    done;
    !c

  let section r =
    if left r = 0 then None
    else begin
      let tag = Char.chr (byte r) in
      let len = uint r in
      let expected = read_crc r in
      if left r < len then
        corrupt "truncated section %C: %d bytes declared, %d left" tag len (left r);
      let start = r.pos in
      let actual = crc32 ~pos:start ~len r.src in
      if actual <> expected then
        corrupt "checksum mismatch in section %C (expected %08lx, got %08lx)" tag
          expected actual;
      r.pos <- start + len;
      Some (tag, of_string ~pos:start ~len r.src)
    end
end
