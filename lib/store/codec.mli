(** Low-level binary codec primitives for the pattern store and the wire
    protocol: LEB128 varints (two's-complement groups for signed values),
    length-prefixed strings and arrays, IEEE-754 floats, and CRC-32 section
    framing.

    The encoding is deterministic: the same value always produces the same
    bytes, which is what makes store files byte-stable across
    encode/decode/encode round trips (and cacheable by content). *)

exception Corrupt of string
(** Raised by every reader on malformed input: truncation, varint overflow,
    checksum mismatch, bad magic. The message says what and where. *)

val crc32 : ?pos:int -> ?len:int -> string -> int32
(** Standard CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a substring. *)

(** {2 Streaming CRC}

    For checksumming data that is produced or read in chunks (the store's
    G2 payload, file verification):
    [crc32_value (crc32_update (crc32_update crc32_seed a) b)] equals
    [crc32 (a ^ b)]. *)

val crc32_seed : int32

val crc32_update : int32 -> ?pos:int -> ?len:int -> string -> int32

val crc32_value : int32 -> int32

(** Append-only encoder over a growing buffer or an output channel. *)
module W : sig
  type t

  val create : ?size:int -> unit -> t

  val to_channel : out_channel -> t
  (** Writer that streams to a channel instead of accumulating in memory
      ({!contents} is unavailable; {!length} counts bytes written). *)

  val byte : t -> int -> unit
  (** Low 8 bits of the argument. *)

  val uint : t -> int -> unit
  (** Unsigned LEB128. @raise Invalid_argument on negative input. *)

  val int : t -> int -> unit
  (** LEB128 of the two's-complement bit pattern; full [int] range,
      compact for small non-negative values. *)

  val bool : t -> bool -> unit

  val float : t -> float -> unit
  (** 8 bytes, IEEE-754 little-endian. *)

  val string : t -> string -> unit
  (** [uint] length prefix + raw bytes. *)

  val raw : t -> string -> unit
  (** Bytes verbatim, no length prefix (magic headers, pre-encoded
      payloads). *)

  val int_array : t -> int array -> unit
  (** [uint] length prefix + each element as {!int}. *)

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** [uint] length prefix + each element via the given writer. *)

  val option : t -> (t -> 'a -> unit) -> 'a option -> unit

  val length : t -> int
  (** Bytes emitted so far (both sinks). *)

  val contents : t -> string
  (** @raise Invalid_argument on a channel-backed writer. *)

  val section : t -> tag:char -> (t -> unit) -> unit
  (** [section w ~tag f] runs [f] on a fresh writer and appends one framed
      section: tag byte, payload length ({!uint}), CRC-32 of the payload
      (4 bytes little-endian), payload. *)
end

(** Cursor-based decoder; every read moves the cursor and raises {!Corrupt}
    on truncated or malformed input. *)
module R : sig
  type t

  val of_string : ?pos:int -> ?len:int -> string -> t

  val byte : t -> int

  val uint : t -> int

  val int : t -> int

  val bool : t -> bool

  val float : t -> float

  val string : t -> string

  val int_array : t -> int array

  val list : t -> (t -> 'a) -> 'a list

  val option : t -> (t -> 'a) -> 'a option

  val pos : t -> int

  val left : t -> int
  (** Bytes remaining. *)

  val expect_magic : t -> string -> unit
  (** Consume and compare a fixed byte string. @raise Corrupt on mismatch. *)

  val section : t -> (char * t) option
  (** Next framed section as [(tag, payload reader)], verifying the CRC;
      [None] at end of input. The cursor advances past the section. *)
end
