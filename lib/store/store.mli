(** The persistent pattern store: a versioned, checksummed binary format for
    graphs, mined pattern sets, and Stage-I index snapshots, so mining work
    survives the process that produced it.

    File layout: an 8-byte magic ["SPMSTORE"], a format-version varint, a
    kind varint (pattern store / index snapshot), then tagged sections each
    carrying its own CRC-32 ({!Codec.W.section}). Readers reject bad magic,
    unknown versions, and checksum mismatches with {!Codec.Corrupt}.

    Encoding is deterministic ({!Codec}): [encode (decode (encode s))] is
    byte-identical to [encode s], so stores can be compared and cached by
    content. *)

val format_version : int

(** {1 Value codecs}

    Composable writers/readers, shared with the wire protocol
    ({!Spm_server.Protocol}). *)

val write_graph : Codec.W.t -> Spm_graph.Graph.t -> unit

val read_graph : Codec.R.t -> Spm_graph.Graph.t
(** @raise Codec.Corrupt on malformed input. *)

val write_mined : Codec.W.t -> Spm_core.Skinny_mine.mined -> unit

val read_mined : Codec.R.t -> Spm_core.Skinny_mine.mined

val write_entry : Codec.W.t -> Spm_core.Diam_mine.entry -> unit

val read_entry : Codec.R.t -> Spm_core.Diam_mine.entry

val write_edit : Codec.W.t -> Spm_graph.Delta.edit -> unit

val read_edit : Codec.R.t -> Spm_graph.Delta.edit
(** @raise Codec.Corrupt on an unknown edit tag. *)

(** {1 Pattern stores} *)

(** A mined result set together with everything needed to serve queries
    against it: the data graph and the mining parameters. *)
type pattern_store = {
  graph : Spm_graph.Graph.t;
  l : int;
  delta : int;
  sigma : int;
  closed_growth : bool;
  complete : bool;
      (** [false] when the producing mine was cut short (deadline or
          cancellation): [patterns] is then a prefix of the full answer set.
          Files written before this flag existed decode as [complete = true]
          — those mines always ran to completion. *)
  patterns : Spm_core.Skinny_mine.mined list;
  base_version : int;
      (** {!Spm_graph.Delta} version [graph] and [patterns] were captured
          at (0 for stores that never served updates). *)
  journal : Spm_graph.Delta.edit list list;
      (** Mutation journal: one edit batch per committed graph version
          after [base_version], oldest first. A restarted server replays
          these through the incremental miner to reach version
          [base_version + length journal]. Pre-journal files decode with an
          empty journal and re-encode byte-identically. *)
}

val latest_version : pattern_store -> int
(** [base_version + List.length journal] — the version replay reaches. *)

val of_result :
  graph:Spm_graph.Graph.t ->
  l:int ->
  delta:int ->
  sigma:int ->
  closed_growth:bool ->
  Spm_core.Skinny_mine.result ->
  pattern_store
(** [complete] is derived from the result's run status. *)

val encode : pattern_store -> string

val decode : string -> pattern_store
(** @raise Codec.Corrupt on bad magic, unsupported version, wrong kind,
    missing section, or checksum mismatch. *)

val save : string -> pattern_store -> unit

val load : string -> pattern_store
(** @raise Codec.Corrupt as {!decode}; [Sys_error] on IO failure. *)

(** {1 Diameter-index snapshots}

    Persist Stage I: every frequent-path entry list the index has
    materialized, so a restored index serves those lengths without
    re-mining. *)

val encode_index : Spm_core.Diameter_index.t -> string

val decode_index :
  ?prune_intermediate:bool -> ?jobs:int -> string -> Spm_core.Diameter_index.t

val save_index : string -> Spm_core.Diameter_index.t -> unit

val load_index :
  ?prune_intermediate:bool -> ?jobs:int -> string -> Spm_core.Diameter_index.t
