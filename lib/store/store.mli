(** The persistent pattern store: a versioned, checksummed binary format for
    graphs, mined pattern sets, and Stage-I index snapshots, so mining work
    survives the process that produced it.

    File layout: an 8-byte magic ["SPMSTORE"], a format-version varint, a
    kind varint (pattern store / index snapshot), then tagged sections each
    carrying its own CRC-32 ({!Codec.W.section}). Readers reject bad magic,
    unknown versions, and checksum mismatches with {!Codec.Corrupt}.

    Two graph layouts coexist. {e Legacy} (version 1) carries the data graph
    as a varint-encoded edge list inside a framed 'G' section. {e G2}
    (version 2) instead appends a raw, 8-byte-aligned block of fixed-width
    64-bit little-endian words whose layout is bit-compatible with the
    in-memory CSR arrays, plus a 24-byte trailer locating it — so
    {!map_graph} / {!load_mapped} can [Unix.map_file] the payload and serve
    it with zero per-element copying. Version-1 files remain fully readable
    and re-encode byte-identically.

    Encoding is deterministic ({!Codec}): [encode (decode (encode s))] is
    byte-identical to [encode s], so stores can be compared and cached by
    content. *)

val format_version : int
(** Highest store version this build writes and reads (readers accept
    [1..format_version]). *)

(** On-disk layout for the data graph of a pattern store. The format
    travels with the store value, so re-saving (journal persistence, server
    restarts) preserves whichever layout the file already had. *)
type graph_format = Legacy | G2

(** {1 Value codecs}

    Composable writers/readers, shared with the wire protocol
    ({!Spm_server.Protocol}). *)

val write_graph : Codec.W.t -> Spm_graph.Graph.t -> unit

val read_graph : Codec.R.t -> Spm_graph.Graph.t
(** @raise Codec.Corrupt on malformed input. *)

val write_mined : Codec.W.t -> Spm_core.Skinny_mine.mined -> unit

val read_mined : Codec.R.t -> Spm_core.Skinny_mine.mined

val write_entry : Codec.W.t -> Spm_core.Diam_mine.entry -> unit

val read_entry : Codec.R.t -> Spm_core.Diam_mine.entry

val write_edit : Codec.W.t -> Spm_graph.Delta.edit -> unit

val read_edit : Codec.R.t -> Spm_graph.Delta.edit
(** @raise Codec.Corrupt on an unknown edit tag. *)

(** {1 Pattern stores} *)

(** A mined result set together with everything needed to serve queries
    against it: the data graph and the mining parameters. *)
type pattern_store = {
  graph : Spm_graph.Graph.t;
  l : int;
  delta : int;
  sigma : int;
  closed_growth : bool;
  family : Spm_core.Constraints.family;
      (** Which constraint family produced [patterns]. Serialized as a
          conditional 'C' section: skinny stores — the only kind older
          builds ever wrote — carry no 'C' section, decode as [Skinny], and
          re-encode byte-identically. For [Neighborhood], [l] is 0 and
          [delta] carries the radius r. *)
  complete : bool;
      (** [false] when the producing mine was cut short (deadline or
          cancellation): [patterns] is then a prefix of the full answer set.
          Files written before this flag existed decode as [complete = true]
          — those mines always ran to completion. *)
  patterns : Spm_core.Skinny_mine.mined list;
  base_version : int;
      (** {!Spm_graph.Delta} version [graph] and [patterns] were captured
          at (0 for stores that never served updates). *)
  journal : Spm_graph.Delta.edit list list;
      (** Mutation journal: one edit batch per committed graph version
          after [base_version], oldest first. A restarted server replays
          these through the incremental miner to reach version
          [base_version + length journal]. Pre-journal files decode with an
          empty journal and re-encode byte-identically. *)
  shard : (int * int) option;
      (** [(index, count)] when this store is one shard of a partitioned
          layout ({!Spm_cluster.Partition}): [patterns] is then the subset
          of the source store's patterns whose diameter-cluster key maps to
          [index] under [Spm_core.Path_pattern.shard_of ~shards:count],
          while [graph] stays the full data graph (updates and containment
          need it). [None] for ordinary stores; pre-shard files decode as
          [None] and re-encode byte-identically. *)
  graph_format : graph_format;
      (** Layout {!encode} / {!save} will use; set from the file version on
          decode. *)
}

val latest_version : pattern_store -> int
(** [base_version + List.length journal] — the version replay reaches. *)

val of_result :
  ?graph_format:graph_format ->
  ?family:Spm_core.Constraints.family ->
  graph:Spm_graph.Graph.t ->
  l:int ->
  delta:int ->
  sigma:int ->
  closed_growth:bool ->
  Spm_core.Skinny_mine.result ->
  pattern_store
(** [complete] is derived from the result's run status. New stores default
    to [G2]; pass [~graph_format:Legacy] to write version-1 files.
    [family] defaults to [Skinny]; pass the mining config's family so the
    store round-trips it (neighborhood stores write the 'C' section). *)

val of_graph : ?graph_format:graph_format -> Spm_graph.Graph.t -> pattern_store
(** A pattern-less store wrapping just a data graph (no mining parameters,
    empty pattern set) — the storage vehicle for out-of-core graphs that
    will be mined after loading. *)

val encode : pattern_store -> string

val decode : string -> pattern_store
(** @raise Codec.Corrupt on bad magic, unsupported version, wrong kind,
    missing section, or checksum mismatch. For G2 stores the full graph
    payload CRC is verified eagerly (this path copies every byte anyway). *)

val save : string -> pattern_store -> unit
(** Streams to [path ^ ".tmp"] then renames into place: peak memory is one
    framed section (or one 4 KiB payload chunk), a crash never corrupts the
    previous file, and rewriting a store that another process has mapped
    leaves that mapping intact (the old inode survives the rename). *)

val load : string -> pattern_store
(** Decodes a full in-memory copy (array-backed graph).
    @raise Codec.Corrupt as {!decode}; [Sys_error] on IO failure. *)

(** {1 Mapped loads}

    Zero-copy opens of G2 stores. Validation policy: the trailer, padding,
    G2 header (self-checksummed) and up to 16 {e sampled} payload pages —
    always including the first and last — are verified eagerly; the full
    payload CRC is deferred to {!verify_file}. A mapped graph's arrays live
    on file-backed pages, so the OS pages them in on first touch and may
    evict them under pressure; peak RSS is bounded by the pages actually
    touched. *)

val load_mapped : string -> pattern_store
(** Like {!load}, but the data graph's CSR arrays are [Bigarray] slices
    mapped directly from the file ([`Bigarray] backing). Sections (params,
    patterns, journal) are still decoded into memory — they are small.
    Version-1 files fall back to {!load} transparently.
    @raise Codec.Corrupt on any framing, header, or sampled-page mismatch;
    [Unix.Unix_error] on IO failure. *)

val map_graph : string -> Spm_graph.Graph.t
(** Just the mapped data graph of a G2 store file (decoded copy for
    version-1 files). Same validation as {!load_mapped}. *)

val verify_file : string -> unit
(** Full-strength offline check: section CRCs, G2 header, and the complete
    payload CRC (streamed, constant memory).
    @raise Codec.Corrupt on any mismatch. *)

val g2_checked_byte_ranges : string -> (int * int) list
(** [(pos, len)] ranges of an encoded G2 store that a mapped open is
    guaranteed to validate (sections, padding, G2 header, sampled pages,
    trailer) — corruption anywhere in these must be detected without
    reading the whole payload. Exposed for the byte-flip fuzzer. *)

(** {1 Diameter-index snapshots}

    Persist Stage I: every frequent-path entry list the index has
    materialized, so a restored index serves those lengths without
    re-mining. *)

val encode_index : Spm_core.Diameter_index.t -> string

val decode_index :
  ?prune_intermediate:bool -> ?jobs:int -> string -> Spm_core.Diameter_index.t

val save_index : string -> Spm_core.Diameter_index.t -> unit

val load_index :
  ?prune_intermediate:bool -> ?jobs:int -> string -> Spm_core.Diameter_index.t
