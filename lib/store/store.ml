module Graph = Spm_graph.Graph
module Storage = Spm_graph.Storage
module Skinny_mine = Spm_core.Skinny_mine
module Constraints = Spm_core.Constraints
module Diam_mine = Spm_core.Diam_mine
module Diameter_index = Spm_core.Diameter_index

let magic = "SPMSTORE"
let format_version = 2
let kind_patterns = 1
let kind_index = 2

type graph_format = Legacy | G2

let version_of_format = function Legacy -> 1 | G2 -> 2

let corrupt fmt = Printf.ksprintf (fun s -> raise (Codec.Corrupt s)) fmt

(* --- value codecs --- *)

let write_graph w g =
  let n = Graph.n g in
  Codec.W.uint w n;
  for v = 0 to n - 1 do
    Codec.W.uint w (Graph.label g v)
  done;
  Codec.W.uint w (Graph.m g);
  (* Emitted per vertex in (u ascending, v ascending with u < v) order —
     the same lexicographic sequence [Graph.edges] produces, so the byte
     stream stays canonical per graph (the basis of the byte-stability
     guarantee) without materializing the global edge list. *)
  for u = 0 to n - 1 do
    Array.iter
      (fun v ->
        if u < v then begin
          Codec.W.uint w u;
          Codec.W.uint w v
        end)
      (Graph.adj g u)
  done

let read_graph r =
  let n = Codec.R.uint r in
  if n > Codec.R.left r then
    raise (Codec.Corrupt (Printf.sprintf "graph vertex count %d exceeds input" n));
  let labels = Array.init n (fun _ -> Codec.R.uint r) in
  let m = Codec.R.uint r in
  let edges = List.init m (fun _ ->
      let u = Codec.R.uint r in
      let v = Codec.R.uint r in
      (u, v))
  in
  match Graph.Builder.of_edges ~labels edges with
  | g -> g
  | exception Invalid_argument msg ->
    raise (Codec.Corrupt ("invalid graph in store: " ^ msg))

let write_mined w (m : Skinny_mine.mined) =
  write_graph w m.pattern;
  Codec.W.uint w m.support;
  Codec.W.int_array w m.levels;
  Codec.W.int_array w m.diameter_labels

let read_mined r : Skinny_mine.mined =
  let pattern = read_graph r in
  let support = Codec.R.uint r in
  let levels = Codec.R.int_array r in
  let diameter_labels = Codec.R.int_array r in
  { pattern; support; levels; diameter_labels }

let write_entry w (e : Diam_mine.entry) =
  Codec.W.int_array w e.labels;
  Codec.W.list w Codec.W.int_array e.embeddings

let read_entry r : Diam_mine.entry =
  let labels = Codec.R.int_array r in
  let embeddings = Codec.R.list r Codec.R.int_array in
  { labels; embeddings }

let write_edit w (e : Spm_graph.Delta.edit) =
  match e with
  | Spm_graph.Delta.Add_vertex l ->
    Codec.W.byte w 0;
    Codec.W.uint w l
  | Spm_graph.Delta.Add_edge (u, v) ->
    Codec.W.byte w 1;
    Codec.W.uint w u;
    Codec.W.uint w v
  | Spm_graph.Delta.Remove_edge (u, v) ->
    Codec.W.byte w 2;
    Codec.W.uint w u;
    Codec.W.uint w v

let read_edit r : Spm_graph.Delta.edit =
  match Codec.R.byte r with
  | 0 -> Spm_graph.Delta.Add_vertex (Codec.R.uint r)
  | 1 ->
    let u = Codec.R.uint r in
    let v = Codec.R.uint r in
    Spm_graph.Delta.Add_edge (u, v)
  | 2 ->
    let u = Codec.R.uint r in
    let v = Codec.R.uint r in
    Spm_graph.Delta.Remove_edge (u, v)
  | t -> raise (Codec.Corrupt (Printf.sprintf "unknown edit tag %d" t))

(* --- G2: the fixed-width, mmap-compatible graph block ---

   Version-2 pattern stores carry the data graph in a raw tail block whose
   byte layout is bit-compatible with the in-memory CSR arrays: unsigned
   64-bit little-endian words, the eight index slices concatenated in
   canonical order ({!Storage.csr_fields}), 8-byte aligned in the file.
   A loader can therefore [Unix.map_file] the payload and serve queries with
   zero per-element copying.

   File layout of a version-2 store:

   {v
     magic "SPMSTORE" · varint version=2 · varint kind
     framed sections 'P' 'M' ['J']          (varint/CRC framing, as v1)
     zero padding to 8-byte alignment       (< 8 bytes)
     G2 block:
       "SPMCSRG2"                           8 bytes
       endian probe 0x0123456789ABCDEF      u64
       n, m, num_labels, lab_total          u64 each
       payload_bytes                        u64
       full_crc                             u64 (CRC-32 of payload)
       nsamples                             u64 (<= 16)
       nsamples x (page_index, page_crc)    u64 pairs
       header_crc                           u64 (CRC-32 of all bytes above)
       payload: labels[n] xadj[n+1] nbr[2m] lab_off[n+1]
                lab_keys[lab_total] lab_starts[lab_total]
                vl_off[num_labels+1] vl[n]  u64 LE words
     trailer: u64 sections_end · u64 g2_offset · "SPMG2TRL"
   v}

   Validation policy: decoding from a string verifies the full payload CRC
   eagerly (nothing is saved by laziness there). Mapping verifies the
   trailer, padding, G2 header (its own CRC) and the sampled page CRCs
   eagerly — O(1) pages regardless of graph size — and trusts the rest of
   the payload to {!verify_file}, which streams the full CRC on demand.
   The samples always include the first and last page, so truncation and
   header-adjacent damage cannot hide. *)

let g2_magic = "SPMCSRG2"
let g2_trailer_magic = "SPMG2TRL"
let g2_endian_probe = 0x0123456789ABCDEFL
let g2_page_size = 4096
let g2_max_samples = 16
let g2_trailer_bytes = 24

let write_u64 w n =
  for i = 0 to 7 do
    Codec.W.byte w ((n lsr (8 * i)) land 0xFF)
  done

(* Read a u64 LE word as a non-negative OCaml int; words with the top bit
   set do not fit in 63-bit ints and are rejected (they can only come from
   corruption — every writer emits ints). *)
let u64_at ~what s pos =
  if pos < 0 || pos + 8 > String.length s then
    corrupt "truncated %s at byte %d" what pos;
  let v = String.get_int64_le s pos in
  if Int64.compare v 0L < 0 then corrupt "%s word out of range" what;
  Int64.to_int v

let crc_int (c : int32) = Int32.to_int c land 0xFFFFFFFF

let csr_slices (c : Storage.csr) = List.map snd (Storage.csr_fields c)

let g2_payload_words c =
  List.fold_left (fun acc s -> acc + Storage.length s) 0 (csr_slices c)

(* Stream the payload as [g2_page_size]-byte chunks (the last may be short);
   chunk boundaries coincide with checksum pages. Two passes over this
   iterator — checksums, then emission — keep peak writer memory at one
   chunk regardless of graph size. *)
let g2_iter_chunks c f =
  let buf = Bytes.create g2_page_size in
  let fill = ref 0 in
  let flush () =
    if !fill > 0 then begin
      f (Bytes.sub_string buf 0 !fill);
      fill := 0
    end
  in
  let word n =
    Bytes.set_int64_le buf !fill (Int64.of_int n);
    fill := !fill + 8;
    if !fill = g2_page_size then flush ()
  in
  List.iter (Storage.iter word) (csr_slices c);
  flush ()

let g2_sample_pages num_pages =
  if num_pages <= g2_max_samples then List.init num_pages Fun.id
  else
    (* First and last page plus evenly spaced interior picks; strictly
       increasing because num_pages - 1 >= g2_max_samples - 1. *)
    List.init g2_max_samples (fun i ->
        i * (num_pages - 1) / (g2_max_samples - 1))

let write_g2 w g =
  let c = Graph.to_csr g in
  let payload_bytes = 8 * g2_payload_words c in
  let pages = ref [] in
  let full = ref Codec.crc32_seed in
  g2_iter_chunks c (fun chunk ->
      full := Codec.crc32_update !full chunk;
      pages := Codec.crc32 chunk :: !pages);
  let page_crcs = Array.of_list (List.rev !pages) in
  let samples = g2_sample_pages (Array.length page_crcs) in
  let h = Codec.W.create ~size:512 () in
  Codec.W.raw h g2_magic;
  write_u64 h (Int64.to_int g2_endian_probe);
  write_u64 h (Graph.n g);
  write_u64 h (Graph.m g);
  write_u64 h (Graph.num_labels g);
  write_u64 h (Storage.length c.Storage.lab_keys);
  write_u64 h payload_bytes;
  write_u64 h (crc_int (Codec.crc32_value !full));
  write_u64 h (List.length samples);
  List.iter
    (fun p ->
      write_u64 h p;
      write_u64 h (crc_int page_crcs.(p)))
    samples;
  let head = Codec.W.contents h in
  Codec.W.raw w head;
  write_u64 w (crc_int (Codec.crc32 head));
  g2_iter_chunks c (fun chunk -> Codec.W.raw w chunk)

type g2_header = {
  g2_n : int;
  g2_m : int;
  g2_nl : int;
  g2_lab_total : int;
  g2_payload_bytes : int;
  g2_full_crc : int;
  g2_samples : (int * int) list; (* (page index, CRC-32 as unsigned int) *)
  g2_header_bytes : int;
}

let g2_field_lens h =
  [
    h.g2_n;
    h.g2_n + 1;
    2 * h.g2_m;
    h.g2_n + 1;
    h.g2_lab_total;
    h.g2_lab_total;
    h.g2_nl + 1;
    h.g2_n;
  ]

let csr_of_slices = function
  | [ labels; xadj; nbr; lab_off; lab_keys; lab_starts; vl_off; vl ] ->
    { Storage.labels; xadj; nbr; lab_off; lab_keys; lab_starts; vl_off; vl }
  | _ -> assert false

(* Parse and CRC-validate a G2 header through an abstract [fetch pos len]
   (substring of a decoded string, or pread of a mapped file); positions are
   relative to the start of the G2 block. *)
let parse_g2_header fetch =
  let h1 = fetch 0 72 in
  if not (String.equal (String.sub h1 0 8) g2_magic) then
    corrupt "bad G2 magic";
  if String.get_int64_le h1 8 <> g2_endian_probe then
    corrupt "G2 endian probe mismatch (file is not little-endian)";
  let word = u64_at ~what:"G2 header" h1 in
  let g2_n = word 16 in
  let g2_m = word 24 in
  let g2_nl = word 32 in
  let g2_lab_total = word 40 in
  let g2_payload_bytes = word 48 in
  let g2_full_crc = word 56 in
  let ns = word 64 in
  if g2_full_crc > 0xFFFFFFFF then corrupt "G2 payload CRC word out of range";
  if ns > g2_max_samples then corrupt "G2 sample count %d out of range" ns;
  let h2 = fetch 72 ((16 * ns) + 8) in
  let g2_samples =
    List.init ns (fun i ->
        let page = u64_at ~what:"G2 sample page" h2 (16 * i) in
        let crc = u64_at ~what:"G2 sample CRC" h2 ((16 * i) + 8) in
        if crc > 0xFFFFFFFF then corrupt "G2 sample CRC word out of range";
        (page, crc))
  in
  let stored = u64_at ~what:"G2 header CRC" h2 (16 * ns) in
  let computed =
    Codec.crc32_value
      (Codec.crc32_update
         (Codec.crc32_update Codec.crc32_seed h1)
         ~pos:0 ~len:(16 * ns) h2)
  in
  if crc_int computed <> stored then corrupt "G2 header checksum mismatch";
  let h =
    {
      g2_n;
      g2_m;
      g2_nl;
      g2_lab_total;
      g2_payload_bytes;
      g2_full_crc;
      g2_samples;
      g2_header_bytes = 72 + (16 * ns) + 8;
    }
  in
  let words = List.fold_left ( + ) 0 (g2_field_lens h) in
  if g2_payload_bytes <> 8 * words then
    corrupt "G2 payload size disagrees with graph dimensions";
  List.iter
    (fun (page, _) ->
      if page * g2_page_size >= g2_payload_bytes && g2_payload_bytes > 0 then
        corrupt "G2 sample page %d out of range" page;
      if g2_payload_bytes = 0 then corrupt "G2 sample page in empty payload")
    g2_samples;
  h

let write_trailer w ~sections_end ~g2_offset =
  write_u64 w sections_end;
  write_u64 w g2_offset;
  Codec.W.raw w g2_trailer_magic

(* [trailer] is the last 24 bytes of the file; offsets are validated against
   [file_len] (alignment, ordering, bounded padding). The caller still checks
   the padding bytes themselves are zero. *)
let parse_trailer ~file_len trailer =
  if not (String.equal (String.sub trailer 16 8) g2_trailer_magic) then
    corrupt "bad G2 trailer magic";
  let sections_end = u64_at ~what:"G2 trailer" trailer 0 in
  let g2_offset = u64_at ~what:"G2 trailer" trailer 8 in
  if sections_end > g2_offset || g2_offset > file_len - g2_trailer_bytes then
    corrupt "G2 trailer offsets out of bounds";
  if g2_offset land 7 <> 0 then corrupt "G2 block misaligned";
  if g2_offset - sections_end >= 8 then corrupt "oversized G2 padding";
  (sections_end, g2_offset)

(* Decode a G2 block out of an in-memory string, copying the payload into
   fresh [int array]s. The full payload CRC is verified eagerly — this path
   touches every byte anyway. *)
let read_g2_of_string s ~g2_offset ~g2_end =
  let fetch pos len =
    if g2_offset + pos + len > g2_end then corrupt "truncated G2 header"
    else String.sub s (g2_offset + pos) len
  in
  let h = parse_g2_header fetch in
  let payload_off = g2_offset + h.g2_header_bytes in
  if payload_off + h.g2_payload_bytes <> g2_end then
    corrupt "G2 payload bounds mismatch";
  if crc_int (Codec.crc32 ~pos:payload_off ~len:h.g2_payload_bytes s)
     <> h.g2_full_crc
  then corrupt "G2 payload checksum mismatch";
  let off = ref payload_off in
  let read_words k =
    let a = Array.init k (fun i -> u64_at ~what:"G2 payload" s (!off + (8 * i))) in
    off := !off + (8 * k);
    Storage.of_array a
  in
  let csr = csr_of_slices (List.map read_words (g2_field_lens h)) in
  match Graph.of_csr csr with
  | g -> g
  | exception Invalid_argument msg -> corrupt "invalid G2 graph: %s" msg

(* --- file framing --- *)

let header w ~version ~kind =
  Codec.W.raw w magic;
  Codec.W.uint w version;
  Codec.W.uint w kind

let open_reader s ~kind =
  let r = Codec.R.of_string s in
  Codec.R.expect_magic r magic;
  let v = Codec.R.uint r in
  if v < 1 || v > format_version then
    raise (Codec.Corrupt (Printf.sprintf "unsupported store version %d (this build reads 1..%d)" v format_version));
  let k = Codec.R.uint r in
  if k <> kind then
    raise (Codec.Corrupt (Printf.sprintf "wrong store kind %d (expected %d)" k kind));
  (r, v)

let sections r =
  let rec go acc =
    match Codec.R.section r with
    | None -> List.rev acc
    | Some (tag, payload) -> go ((tag, payload) :: acc)
  in
  go []

let find_section tag secs =
  match List.assoc_opt tag secs with
  | Some payload -> payload
  | None ->
    raise (Codec.Corrupt (Printf.sprintf "missing section %C" tag))

(* --- pattern stores --- *)

type pattern_store = {
  graph : Graph.t;
  l : int;
  delta : int;
  sigma : int;
  closed_growth : bool;
  family : Constraints.family;
  complete : bool;
  patterns : Skinny_mine.mined list;
  base_version : int;
  journal : Spm_graph.Delta.edit list list;
  shard : (int * int) option;
  graph_format : graph_format;
}

let of_result ?(graph_format = G2) ?(family = Constraints.Skinny) ~graph ~l
    ~delta ~sigma ~closed_growth (r : Skinny_mine.result) =
  {
    graph;
    l;
    delta;
    sigma;
    closed_growth;
    family;
    complete = r.stats.Skinny_mine.status = Spm_engine.Run.Ok;
    patterns = r.patterns;
    base_version = 0;
    journal = [];
    shard = None;
    graph_format;
  }

let of_graph ?(graph_format = G2) graph =
  {
    graph;
    l = 0;
    delta = 0;
    sigma = 0;
    closed_growth = false;
    family = Constraints.Skinny;
    complete = true;
    patterns = [];
    base_version = 0;
    journal = [];
    shard = None;
    graph_format;
  }

let latest_version s = s.base_version + List.length s.journal

let emit_store w s =
  header w ~version:(version_of_format s.graph_format) ~kind:kind_patterns;
  (* v1 carries the graph as a framed section; v2 moves it to the mmap-able
     G2 tail block and writes no 'G' section at all. *)
  (match s.graph_format with
  | Legacy -> Codec.W.section w ~tag:'G' (fun w -> write_graph w s.graph)
  | G2 -> ());
  Codec.W.section w ~tag:'P' (fun w ->
      Codec.W.uint w s.l;
      Codec.W.uint w s.delta;
      Codec.W.uint w s.sigma;
      Codec.W.bool w s.closed_growth;
      (* Trailing completeness flag: readers of files written before it
         existed treat its absence as [true] (those mines always ran to
         completion), which keeps the format version stable. *)
      Codec.W.bool w s.complete);
  Codec.W.section w ~tag:'M' (fun w -> Codec.W.list w write_mined s.patterns);
  (* Mutation journal. Written only when non-trivial so every pre-journal
     store re-encodes to its original bytes (same back-compat contract as
     the trailing completeness flag). *)
  if s.base_version <> 0 || s.journal <> [] then
    Codec.W.section w ~tag:'J' (fun w ->
        Codec.W.uint w s.base_version;
        Codec.W.list w (fun w batch -> Codec.W.list w write_edit batch)
          s.journal);
  (* Shard identity of a partitioned store (index, total). Same conditional
     emission contract as 'J': unsharded stores keep their original bytes. *)
  (match s.shard with
  | None -> ()
  | Some (index, count) ->
    Codec.W.section w ~tag:'H' (fun w ->
        Codec.W.uint w index;
        Codec.W.uint w count));
  (* Constraint family. Conditional like 'J'/'H': skinny stores — the only
     kind older builds ever wrote — carry no 'C' section and keep their
     original bytes. *)
  (match s.family with
  | Constraints.Skinny -> ()
  | Constraints.Neighborhood { center } ->
    Codec.W.section w ~tag:'C' (fun w ->
        Codec.W.byte w 1;
        match center with
        | None -> Codec.W.bool w false
        | Some c ->
          Codec.W.bool w true;
          Codec.W.uint w c));
  match s.graph_format with
  | Legacy -> ()
  | G2 ->
    let sections_end = Codec.W.length w in
    let pad = (8 - (sections_end land 7)) land 7 in
    for _ = 1 to pad do
      Codec.W.byte w 0
    done;
    let g2_offset = sections_end + pad in
    write_g2 w s.graph;
    write_trailer w ~sections_end ~g2_offset

let encode s =
  let w = Codec.W.create ~size:4096 () in
  emit_store w s;
  Codec.W.contents w

(* Section grammar of a pattern store: the canonical emission order with no
   strangers and no duplicates. A section's tag byte sits outside its CRC,
   so without this check a single tag-byte flip could silently drop a
   conditional section — e.g. demote a neighborhood store ('C') to a skinny
   one — instead of raising [Corrupt]. *)
let check_pattern_sections ~graph_format secs =
  let canonical =
    (match graph_format with Legacy -> [ 'G' ] | G2 -> [])
    @ [ 'P'; 'M'; 'J'; 'H'; 'C' ]
  in
  let tags = List.map fst secs in
  let rec subsequence canon tags =
    match (canon, tags) with
    | _, [] -> true
    | [], _ :: _ -> false
    | c :: canon', t :: tags' ->
      if Char.equal c t then subsequence canon' tags'
      else subsequence canon' tags
  in
  if not (subsequence canonical tags) then
    corrupt "unexpected or out-of-order store section"

let store_of_sections ~graph ~graph_format secs =
  check_pattern_sections ~graph_format secs;
  let p = find_section 'P' secs in
  let l = Codec.R.uint p in
  let delta = Codec.R.uint p in
  let sigma = Codec.R.uint p in
  let closed_growth = Codec.R.bool p in
  let complete = if Codec.R.left p > 0 then Codec.R.bool p else true in
  let patterns = Codec.R.list (find_section 'M' secs) read_mined in
  let base_version, journal =
    match List.assoc_opt 'J' secs with
    | None -> (0, [])
    | Some j ->
      let base_version = Codec.R.uint j in
      let journal = Codec.R.list j (fun r -> Codec.R.list r read_edit) in
      (base_version, journal)
  in
  let shard =
    match List.assoc_opt 'H' secs with
    | None -> None
    | Some h ->
      let index = Codec.R.uint h in
      let count = Codec.R.uint h in
      if count <= 0 || index < 0 || index >= count then
        raise
          (Codec.Corrupt
             (Printf.sprintf "invalid shard identity %d of %d" index count));
      Some (index, count)
  in
  let family =
    match List.assoc_opt 'C' secs with
    | None -> Constraints.Skinny
    | Some c -> (
      match Codec.R.byte c with
      | 1 ->
        let center =
          if Codec.R.bool c then Some (Codec.R.uint c) else None
        in
        Constraints.Neighborhood { center }
      | t ->
        raise
          (Codec.Corrupt (Printf.sprintf "unknown constraint family tag %d" t))
      )
  in
  {
    graph;
    l;
    delta;
    sigma;
    closed_growth;
    family;
    complete;
    patterns;
    base_version;
    journal;
    shard;
    graph_format;
  }

let decode s =
  let r, v = open_reader s ~kind:kind_patterns in
  if v = 1 then
    let secs = sections r in
    let graph = read_graph (find_section 'G' secs) in
    store_of_sections ~graph ~graph_format:Legacy secs
  else begin
    let file_len = String.length s in
    if file_len < g2_trailer_bytes then corrupt "missing G2 trailer";
    let sections_end, g2_offset =
      parse_trailer ~file_len
        (String.sub s (file_len - g2_trailer_bytes) g2_trailer_bytes)
    in
    for i = sections_end to g2_offset - 1 do
      if s.[i] <> '\000' then corrupt "nonzero G2 padding byte at %d" i
    done;
    let hpos = Codec.R.pos r in
    if sections_end < hpos then corrupt "G2 sections end inside file header";
    let secs =
      sections (Codec.R.of_string ~pos:hpos ~len:(sections_end - hpos) s)
    in
    let graph =
      read_g2_of_string s ~g2_offset ~g2_end:(file_len - g2_trailer_bytes)
    in
    store_of_sections ~graph ~graph_format:G2 secs
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      In_channel.input_all ic)

(* Stream an emitter to [path] via a temp file + atomic rename: peak memory
   is one section / one payload chunk, a crash never clobbers the previous
   file, and — load-bearing for the mmap path — rewriting a store that some
   process has mapped replaces the directory entry while the mapped inode
   lives on untouched. *)
let save_via path emit =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match emit (Codec.W.to_channel oc) with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

let save path s = save_via path (fun w -> emit_store w s)
let load path = decode (read_file path)

(* --- mapped loads --- *)

let pread fd ~pos ~len ~what =
  if len < 0 then corrupt "truncated store (%s)" what;
  let buf = Bytes.create len in
  let got =
    try
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      let rec go off =
        if off = len then len
        else
          match Unix.read fd buf off (len - off) with
          | 0 -> off
          | k -> go (off + k)
      in
      go 0
    with Unix.Unix_error (e, _, _) ->
      corrupt "read error (%s): %s" what (Unix.error_message e)
  in
  if got < len then corrupt "truncated store (%s)" what;
  Bytes.unsafe_to_string buf

type g2_file = {
  gf_prefix : string; (* bytes [0, sections_end): header + framed sections *)
  gf_header : g2_header;
  gf_payload_off : int;
}

(* Validate the v2 framing of an open store file without touching the bulk
   payload: trailer, padding, G2 header (own CRC), dimension arithmetic and
   the sampled page CRCs. Returns [None] for a version-1 file (caller falls
   back to a full decode). *)
let read_g2_meta fd ~file_len =
  let head = pread fd ~pos:0 ~len:(min file_len 32) ~what:"file header" in
  let r = Codec.R.of_string head in
  Codec.R.expect_magic r magic;
  let v = Codec.R.uint r in
  if v < 1 || v > format_version then
    corrupt "unsupported store version %d (this build reads 1..%d)" v
      format_version;
  if v = 1 then None
  else begin
    let k = Codec.R.uint r in
    if k <> kind_patterns then
      corrupt "wrong store kind %d (expected %d)" k kind_patterns;
    if file_len < g2_trailer_bytes then corrupt "missing G2 trailer";
    let sections_end, g2_offset =
      parse_trailer ~file_len
        (pread fd ~pos:(file_len - g2_trailer_bytes) ~len:g2_trailer_bytes
           ~what:"G2 trailer")
    in
    if sections_end < Codec.R.pos r then
      corrupt "G2 sections end inside file header";
    let padding =
      pread fd ~pos:sections_end ~len:(g2_offset - sections_end)
        ~what:"G2 padding"
    in
    String.iter
      (fun c -> if c <> '\000' then corrupt "nonzero G2 padding byte")
      padding;
    let g2_end = file_len - g2_trailer_bytes in
    let fetch pos len =
      if g2_offset + pos + len > g2_end then corrupt "truncated G2 header"
      else pread fd ~pos:(g2_offset + pos) ~len ~what:"G2 header"
    in
    let h = parse_g2_header fetch in
    let payload_off = g2_offset + h.g2_header_bytes in
    if payload_off + h.g2_payload_bytes <> g2_end then
      corrupt "G2 payload bounds mismatch";
    List.iter
      (fun (page, crc) ->
        let start = page * g2_page_size in
        let len = min g2_page_size (h.g2_payload_bytes - start) in
        let chunk =
          pread fd ~pos:(payload_off + start) ~len ~what:"G2 sampled page"
        in
        if crc_int (Codec.crc32 chunk) <> crc then
          corrupt "G2 sampled page %d checksum mismatch" page)
      h.g2_samples;
    let gf_prefix = pread fd ~pos:0 ~len:sections_end ~what:"store sections" in
    Some { gf_prefix; gf_header = h; gf_payload_off = payload_off }
  end

let map_payload fd gf =
  let h = gf.gf_header in
  let words = h.g2_payload_bytes / 8 in
  let arr =
    try
      Bigarray.array1_of_genarray
        (Unix.map_file fd ~pos:(Int64.of_int gf.gf_payload_off) Bigarray.int
           Bigarray.c_layout false [| words |])
    with
    | Unix.Unix_error (e, _, _) -> corrupt "mmap failed: %s" (Unix.error_message e)
    | Sys_error msg -> corrupt "mmap failed: %s" msg
  in
  (* Host-endianness cross-check: the header probe proves the file is
     little-endian; comparing one word read through the mapping against its
     explicit LE decoding proves the mapping agrees. *)
  if words > 0 then begin
    let first =
      u64_at ~what:"G2 payload"
        (pread fd ~pos:gf.gf_payload_off ~len:8 ~what:"G2 payload")
        0
    in
    if Bigarray.Array1.get arr 0 <> first then
      corrupt "endianness mismatch: mapped stores require a little-endian host"
  end;
  let off = ref 0 in
  let slice k =
    let s = Bigarray.Array1.sub arr !off k in
    off := !off + k;
    Storage.of_bigarray s
  in
  let csr = csr_of_slices (List.map slice (g2_field_lens h)) in
  match Graph.of_csr csr with
  | g -> g
  | exception Invalid_argument msg -> corrupt "invalid G2 graph: %s" msg

let with_store_fd path f =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let file_len = Int64.to_int (Unix.LargeFile.fstat fd).Unix.LargeFile.st_size in
      f fd ~file_len)

let load_mapped path =
  with_store_fd path (fun fd ~file_len ->
      match read_g2_meta fd ~file_len with
      | None -> load path
      | Some gf ->
        let r, _ = open_reader gf.gf_prefix ~kind:kind_patterns in
        let secs = sections r in
        let graph = map_payload fd gf in
        store_of_sections ~graph ~graph_format:G2 secs)

let map_graph path =
  with_store_fd path (fun fd ~file_len ->
      match read_g2_meta fd ~file_len with
      | None -> (load path).graph
      | Some gf -> map_payload fd gf)

let verify_file path =
  with_store_fd path (fun fd ~file_len ->
      match read_g2_meta fd ~file_len with
      | None -> ignore (load path)
      | Some gf ->
        (* Sections must decode structurally, not just CRC-check: the tag
           byte of a section sits outside its CRC, so a tag flip turns a
           required section into an ignorable stranger. *)
        let r, _ = open_reader gf.gf_prefix ~kind:kind_patterns in
        let secs = sections r in
        ignore (store_of_sections ~graph:(map_payload fd gf) ~graph_format:G2 secs);
        (* ...and the full payload CRC, streamed in pages. *)
        let h = gf.gf_header in
        let crc = ref Codec.crc32_seed in
        let off = ref 0 in
        while !off < h.g2_payload_bytes do
          let len = min g2_page_size (h.g2_payload_bytes - !off) in
          let chunk =
            pread fd ~pos:(gf.gf_payload_off + !off) ~len ~what:"G2 payload"
          in
          crc := Codec.crc32_update !crc chunk;
          off := !off + len
        done;
        if crc_int (Codec.crc32_value !crc) <> h.g2_full_crc then
          corrupt "G2 payload checksum mismatch")

(* Byte ranges of an encoded v2 store whose corruption a mapped open is
   guaranteed to detect: everything except the unsampled payload pages.
   Drives the byte-flip fuzzer. *)
let g2_checked_byte_ranges s =
  let file_len = String.length s in
  if file_len < g2_trailer_bytes then corrupt "missing G2 trailer";
  let sections_end, g2_offset =
    parse_trailer ~file_len
      (String.sub s (file_len - g2_trailer_bytes) g2_trailer_bytes)
  in
  let g2_end = file_len - g2_trailer_bytes in
  let fetch pos len =
    if g2_offset + pos + len > g2_end then corrupt "truncated G2 header"
    else String.sub s (g2_offset + pos) len
  in
  let h = parse_g2_header fetch in
  let payload_off = g2_offset + h.g2_header_bytes in
  (0, sections_end) :: (sections_end, g2_offset - sections_end)
  :: (g2_offset, h.g2_header_bytes)
  :: (g2_end, g2_trailer_bytes)
  :: List.map
       (fun (page, _) ->
         let start = page * g2_page_size in
         (payload_off + start, min g2_page_size (h.g2_payload_bytes - start)))
       h.g2_samples

(* --- diameter-index snapshots --- *)

let emit_index w idx =
  let snap = Diameter_index.snapshot idx in
  header w ~version:1 ~kind:kind_index;
  Codec.W.section w ~tag:'G' (fun w -> write_graph w (Diameter_index.graph idx));
  Codec.W.section w ~tag:'I' (fun w ->
      Codec.W.uint w snap.snap_sigma;
      Codec.W.uint w snap.snap_l_max;
      Codec.W.list w
        (fun w (l, entries) ->
          Codec.W.uint w l;
          Codec.W.list w write_entry entries)
        snap.lengths)

let encode_index idx =
  let w = Codec.W.create ~size:4096 () in
  emit_index w idx;
  Codec.W.contents w

let decode_index ?prune_intermediate ?jobs s =
  let r, v = open_reader s ~kind:kind_index in
  if v <> 1 then
    raise (Codec.Corrupt (Printf.sprintf "unsupported index snapshot version %d" v));
  let secs = sections r in
  let graph = read_graph (find_section 'G' secs) in
  let i = find_section 'I' secs in
  let snap_sigma = Codec.R.uint i in
  let snap_l_max = Codec.R.uint i in
  let lengths =
    Codec.R.list i (fun r ->
        let l = Codec.R.uint r in
        let entries = Codec.R.list r read_entry in
        (l, entries))
  in
  Diameter_index.of_snapshot ?prune_intermediate ?jobs graph
    { snap_sigma; snap_l_max; lengths }

let save_index path idx = save_via path (fun w -> emit_index w idx)
let load_index ?prune_intermediate ?jobs path =
  decode_index ?prune_intermediate ?jobs (read_file path)
