module Graph = Spm_graph.Graph
module Skinny_mine = Spm_core.Skinny_mine
module Diam_mine = Spm_core.Diam_mine
module Diameter_index = Spm_core.Diameter_index

let magic = "SPMSTORE"
let format_version = 1
let kind_patterns = 1
let kind_index = 2

(* --- value codecs --- *)

let write_graph w g =
  Codec.W.uint w (Graph.n g);
  Array.iter (Codec.W.uint w) (Graph.labels g);
  let edges = Graph.edges g in
  Codec.W.uint w (List.length edges);
  (* Graph.edges is sorted with u < v, so the byte stream is canonical per
     graph — the basis of the byte-stability guarantee. *)
  List.iter
    (fun (u, v) ->
      Codec.W.uint w u;
      Codec.W.uint w v)
    edges

let read_graph r =
  let n = Codec.R.uint r in
  if n > Codec.R.left r then
    raise (Codec.Corrupt (Printf.sprintf "graph vertex count %d exceeds input" n));
  let labels = Array.init n (fun _ -> Codec.R.uint r) in
  let m = Codec.R.uint r in
  let edges = List.init m (fun _ ->
      let u = Codec.R.uint r in
      let v = Codec.R.uint r in
      (u, v))
  in
  match Graph.Builder.of_edges ~labels edges with
  | g -> g
  | exception Invalid_argument msg ->
    raise (Codec.Corrupt ("invalid graph in store: " ^ msg))

let write_mined w (m : Skinny_mine.mined) =
  write_graph w m.pattern;
  Codec.W.uint w m.support;
  Codec.W.int_array w m.levels;
  Codec.W.int_array w m.diameter_labels

let read_mined r : Skinny_mine.mined =
  let pattern = read_graph r in
  let support = Codec.R.uint r in
  let levels = Codec.R.int_array r in
  let diameter_labels = Codec.R.int_array r in
  { pattern; support; levels; diameter_labels }

let write_entry w (e : Diam_mine.entry) =
  Codec.W.int_array w e.labels;
  Codec.W.list w Codec.W.int_array e.embeddings

let read_entry r : Diam_mine.entry =
  let labels = Codec.R.int_array r in
  let embeddings = Codec.R.list r Codec.R.int_array in
  { labels; embeddings }

let write_edit w (e : Spm_graph.Delta.edit) =
  match e with
  | Spm_graph.Delta.Add_vertex l ->
    Codec.W.byte w 0;
    Codec.W.uint w l
  | Spm_graph.Delta.Add_edge (u, v) ->
    Codec.W.byte w 1;
    Codec.W.uint w u;
    Codec.W.uint w v
  | Spm_graph.Delta.Remove_edge (u, v) ->
    Codec.W.byte w 2;
    Codec.W.uint w u;
    Codec.W.uint w v

let read_edit r : Spm_graph.Delta.edit =
  match Codec.R.byte r with
  | 0 -> Spm_graph.Delta.Add_vertex (Codec.R.uint r)
  | 1 ->
    let u = Codec.R.uint r in
    let v = Codec.R.uint r in
    Spm_graph.Delta.Add_edge (u, v)
  | 2 ->
    let u = Codec.R.uint r in
    let v = Codec.R.uint r in
    Spm_graph.Delta.Remove_edge (u, v)
  | t -> raise (Codec.Corrupt (Printf.sprintf "unknown edit tag %d" t))

(* --- file framing --- *)

let header w ~kind =
  Codec.W.raw w magic;
  Codec.W.uint w format_version;
  Codec.W.uint w kind

let open_reader s ~kind =
  let r = Codec.R.of_string s in
  Codec.R.expect_magic r magic;
  let v = Codec.R.uint r in
  if v <> format_version then
    raise (Codec.Corrupt (Printf.sprintf "unsupported store version %d (this build reads %d)" v format_version));
  let k = Codec.R.uint r in
  if k <> kind then
    raise (Codec.Corrupt (Printf.sprintf "wrong store kind %d (expected %d)" k kind));
  r

let sections r =
  let rec go acc =
    match Codec.R.section r with
    | None -> List.rev acc
    | Some (tag, payload) -> go ((tag, payload) :: acc)
  in
  go []

let find_section tag secs =
  match List.assoc_opt tag secs with
  | Some payload -> payload
  | None ->
    raise (Codec.Corrupt (Printf.sprintf "missing section %C" tag))

(* --- pattern stores --- *)

type pattern_store = {
  graph : Graph.t;
  l : int;
  delta : int;
  sigma : int;
  closed_growth : bool;
  complete : bool;
  patterns : Skinny_mine.mined list;
  base_version : int;
  journal : Spm_graph.Delta.edit list list;
}

let of_result ~graph ~l ~delta ~sigma ~closed_growth (r : Skinny_mine.result) =
  {
    graph;
    l;
    delta;
    sigma;
    closed_growth;
    complete = r.stats.Skinny_mine.status = Spm_engine.Run.Ok;
    patterns = r.patterns;
    base_version = 0;
    journal = [];
  }

let latest_version s = s.base_version + List.length s.journal

let encode s =
  let w = Codec.W.create ~size:4096 () in
  header w ~kind:kind_patterns;
  Codec.W.section w ~tag:'G' (fun w -> write_graph w s.graph);
  Codec.W.section w ~tag:'P' (fun w ->
      Codec.W.uint w s.l;
      Codec.W.uint w s.delta;
      Codec.W.uint w s.sigma;
      Codec.W.bool w s.closed_growth;
      (* Trailing completeness flag: readers of files written before it
         existed treat its absence as [true] (those mines always ran to
         completion), which keeps the format version stable. *)
      Codec.W.bool w s.complete);
  Codec.W.section w ~tag:'M' (fun w -> Codec.W.list w write_mined s.patterns);
  (* Mutation journal. Written only when non-trivial so every pre-journal
     store re-encodes to its original bytes (same back-compat contract as
     the trailing completeness flag). *)
  if s.base_version <> 0 || s.journal <> [] then
    Codec.W.section w ~tag:'J' (fun w ->
        Codec.W.uint w s.base_version;
        Codec.W.list w (fun w batch -> Codec.W.list w write_edit batch)
          s.journal);
  Codec.W.contents w

let decode s =
  let r = open_reader s ~kind:kind_patterns in
  let secs = sections r in
  let graph = read_graph (find_section 'G' secs) in
  let p = find_section 'P' secs in
  let l = Codec.R.uint p in
  let delta = Codec.R.uint p in
  let sigma = Codec.R.uint p in
  let closed_growth = Codec.R.bool p in
  let complete = if Codec.R.left p > 0 then Codec.R.bool p else true in
  let patterns = Codec.R.list (find_section 'M' secs) read_mined in
  let base_version, journal =
    match List.assoc_opt 'J' secs with
    | None -> (0, [])
    | Some j ->
      let base_version = Codec.R.uint j in
      let journal = Codec.R.list j (fun r -> Codec.R.list r read_edit) in
      (base_version, journal)
  in
  {
    graph;
    l;
    delta;
    sigma;
    closed_growth;
    complete;
    patterns;
    base_version;
    journal;
  }

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc data)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      In_channel.input_all ic)

let save path s = write_file path (encode s)
let load path = decode (read_file path)

(* --- diameter-index snapshots --- *)

let encode_index idx =
  let snap = Diameter_index.snapshot idx in
  let w = Codec.W.create ~size:4096 () in
  header w ~kind:kind_index;
  Codec.W.section w ~tag:'G' (fun w -> write_graph w (Diameter_index.graph idx));
  Codec.W.section w ~tag:'I' (fun w ->
      Codec.W.uint w snap.snap_sigma;
      Codec.W.uint w snap.snap_l_max;
      Codec.W.list w
        (fun w (l, entries) ->
          Codec.W.uint w l;
          Codec.W.list w write_entry entries)
        snap.lengths);
  Codec.W.contents w

let decode_index ?prune_intermediate ?jobs s =
  let r = open_reader s ~kind:kind_index in
  let secs = sections r in
  let graph = read_graph (find_section 'G' secs) in
  let i = find_section 'I' secs in
  let snap_sigma = Codec.R.uint i in
  let snap_l_max = Codec.R.uint i in
  let lengths =
    Codec.R.list i (fun r ->
        let l = Codec.R.uint r in
        let entries = Codec.R.list r read_entry in
        (l, entries))
  in
  Diameter_index.of_snapshot ?prune_intermediate ?jobs graph
    { snap_sigma; snap_l_max; lengths }

let save_index path idx = write_file path (encode_index idx)
let load_index ?prune_intermediate ?jobs path =
  decode_index ?prune_intermediate ?jobs (read_file path)
