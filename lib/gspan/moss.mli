(** MoSS-style complete mining in a single graph (Fiedler & Borgelt, MLG'07).

    The paper uses MoSS as the "mine the complete pattern set in one graph"
    baseline that cannot finish on denser settings (Figures 11 and 20). Here
    it is the gSpan growth engine instantiated on a one-graph database with
    the paper's |E[P]| embedding-count support (or MNI on request). *)

val mine :
  ?run:Spm_engine.Run.t ->
  ?measure:Engine.support_measure ->
  ?max_edges:int ->
  ?max_vertices:int ->
  ?max_patterns:int ->
  ?deadline:float ->
  ?min_report_edges:int ->
  graph:Spm_graph.Graph.t ->
  sigma:int ->
  unit ->
  Engine.outcome
(** Default measure is [Embedding_count], matching Definition 8. *)

val enumerate :
  ?max_vertices:int ->
  ?max_edges:int ->
  graph:Spm_graph.Graph.t ->
  unit ->
  Engine.outcome
(** The complete bounded pattern universe of one graph: every connected
    pattern with at least one embedding, with its |E[P]| embedding-count
    support. Runs the engine at [sigma = 1], where embedding-count pruning
    never fires, so (unlike higher thresholds — see {!Engine}) the
    enumeration is exhaustively complete up to the caps. This is the
    gSpan-side pipeline of the differential oracle
    ([Spm_oracle.Differential]). *)
