(** gSpan (Yan & Han, ICDM 2002): complete frequent-subgraph mining in the
    graph-transaction setting, with DFS-code canonical pruning. *)

val mine :
  ?run:Spm_engine.Run.t ->
  ?max_edges:int ->
  ?max_patterns:int ->
  ?deadline:float ->
  ?min_report_edges:int ->
  db:Spm_graph.Graph.t list ->
  sigma:int ->
  unit ->
  Engine.outcome
(** All connected patterns contained in at least [sigma] database graphs.
    Caps, if given, may truncate the result ([outcome.complete] = false). *)

val frequent_patterns :
  db:Spm_graph.Graph.t list -> sigma:int -> Spm_pattern.Pattern.t list
(** Convenience: just the patterns of an uncapped run. *)
