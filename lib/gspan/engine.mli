(** Shared gSpan-style pattern-growth engine.

    Grows patterns by rightmost extension of DFS codes with minimal-code
    pruning (each pattern is generated from exactly one parent), maintaining
    embedding lists incrementally. Both the transaction-setting miner
    ({!Gspan}) and the single-graph complete miner ({!Moss}) instantiate this
    engine with different support measures.

    Note on support semantics: the paper's single-graph measure |E[P]| (count
    of distinct embedding subgraphs) is not anti-monotone, so pruning on it —
    which is what the paper's algorithms do — is a growth-based semantics:
    a pattern is reported iff it is reachable from a frequent single edge
    through frequent intermediate patterns. MNI support is anti-monotone and
    lossless. *)

type support_measure =
  | Transactions  (** number of database graphs containing the pattern *)
  | Embedding_count
      (** total number of distinct embedding subgraphs across the database
          (|E[P]| of Definition 8 when the database is a single graph) *)
  | Mni  (** minimum image-based support, summed across database graphs *)

type config = {
  sigma : int;  (** support threshold (>= 1) *)
  measure : support_measure;
  max_edges : int option;  (** stop growing past this pattern size *)
  max_vertices : int option;
  max_patterns : int option;  (** stop after reporting this many *)
  deadline : float option;
      (** wall-clock budget in seconds, measured by {!Spm_engine.Clock}
          (earlier versions used process CPU time, which overshoots under
          parallel callers) *)
  min_report_edges : int;  (** report only patterns with at least this size *)
}

val default : sigma:int -> measure:support_measure -> config

type result = { pattern : Spm_pattern.Pattern.t; support : int }

type outcome = {
  results : result list;
  complete : bool;
      (** false if a cap or the deadline cut the search short *)
  elapsed : float;
  visited : int;  (** number of search-tree nodes expanded *)
}

val mine : ?run:Spm_engine.Run.t -> config -> Spm_graph.Graph.t list -> outcome
(** [run] composes external control with the config's own limits: the engine
    mines under a {!Spm_engine.Run.fork} of it carrying [config.deadline] /
    [config.max_patterns], so cancelling [run] (or its deadline passing)
    stops the search at the next extension exactly like a config limit —
    results gathered so far are returned with [complete = false];
    {!Spm_engine.Run.Cancelled} never escapes. *)
