open Spm_graph
open Spm_pattern
module Run = Spm_engine.Run
module Clock = Spm_engine.Clock

type support_measure = Transactions | Embedding_count | Mni

type config = {
  sigma : int;
  measure : support_measure;
  max_edges : int option;
  max_vertices : int option;
  max_patterns : int option;
  deadline : float option;
  min_report_edges : int;
}

let default ~sigma ~measure =
  {
    sigma;
    measure;
    max_edges = None;
    max_vertices = None;
    max_patterns = None;
    deadline = None;
    min_report_edges = 1;
  }

type result = { pattern : Pattern.t; support : int }

type outcome = {
  results : result list;
  complete : bool;
  elapsed : float;
  visited : int;
}

(* A projected embedding: which database graph, and the mapping
   dfs-id -> data vertex. *)
type projected = { gid : int; map : int array }

exception Stop

(* Extension descriptor: where the new code edge attaches and the new
   endpoint label. Forward carries (origin dfs id, new label); backward
   carries (rightmost id, ancestor id). *)
type ext = B of int * int | F of int * int

let support_of ~measure ~pattern (projs : projected list) =
  match measure with
  | Transactions ->
    let seen = Hashtbl.create 8 in
    List.iter (fun p -> Hashtbl.replace seen p.gid ()) projs;
    Hashtbl.length seen
  | Embedding_count -> (
    (* The projections are the complete mapping set of the code's pattern
       (dfs id -> data vertex, across all graphs), so the distinct
       image-subgraph total is |projs| / |Aut(pattern)|. *)
    match projs with
    | [] -> 0
    | _ -> List.length projs / Plan.automorphism_count pattern)
  | Mni ->
    (* Per graph, min over pattern vertices of distinct images; summed over
       graphs that contain the pattern at all. *)
    let np = Graph.n pattern in
    let per_graph = Hashtbl.create 8 in
    List.iter
      (fun p ->
        let images =
          match Hashtbl.find_opt per_graph p.gid with
          | Some a -> a
          | None ->
            let a = Array.init np (fun _ -> Hashtbl.create 8) in
            Hashtbl.add per_graph p.gid a;
            a
        in
        Array.iteri (fun pv tv -> Hashtbl.replace images.(pv) tv ()) p.map)
      projs;
    Hashtbl.fold
      (fun _ images acc ->
        acc
        + Array.fold_left (fun m h -> min m (Hashtbl.length h)) max_int images)
      per_graph 0

let mine ?run config db_list =
  (* The config's deadline/max_patterns become a private fork so an external
     run (say the server's per-request context) composes with them: the fork
     observes the external token and deadline, while the budget stays local
     to this engine invocation. *)
  let run =
    match run with
    | Some r -> Run.fork ?timeout:config.deadline ?budget:config.max_patterns r
    | None -> Run.create ?timeout:config.deadline ?budget:config.max_patterns ()
  in
  let db = Array.of_list db_list in
  let t0 = Clock.now () in
  let results = ref [] in
  let visited = ref 0 in
  let complete = ref true in
  let check_budget () =
    if Run.should_stop run then begin
      complete := false;
      raise Stop
    end
  in
  let report pattern support =
    if Pattern.size pattern >= config.min_report_edges then begin
      results := { pattern; support } :: !results;
      Run.emit run
    end
  in
  let in_map map w = Array.exists (fun x -> x = w) map in
  (* Collect candidate extensions of a code given its projected embeddings. *)
  let extensions code (projs : projected list) =
    let by_ext : (ext, projected list ref) Hashtbl.t = Hashtbl.create 32 in
    let push ext p =
      match Hashtbl.find_opt by_ext ext with
      | Some l -> l := p :: !l
      | None -> Hashtbl.add by_ext ext (ref [ p ])
    in
    let bslots = Dfs_code.backward_slots code in
    let fslots = Dfs_code.forward_slots code in
    List.iter
      (fun p ->
        let g = db.(p.gid) in
        List.iter
          (fun (r, jd) ->
            if Graph.has_edge g p.map.(r) p.map.(jd) then
              push (B (r, jd)) p)
          bslots;
        List.iter
          (fun idd ->
            Graph.iter_adj g p.map.(idd) (fun w ->
                if not (in_map p.map w) then
                  push
                    (F (idd, Graph.label g w))
                    { gid = p.gid; map = Array.append p.map [| w |] }))
          fslots)
      projs;
    by_ext
  in
  let edge_of_ext code ext =
    let nv =
      Array.fold_left (fun acc e -> max acc (max e.Dfs_code.i e.Dfs_code.j)) 0 code + 1
    in
    let label_of id =
      let found = ref (-1) in
      Array.iter
        (fun e ->
          if e.Dfs_code.i = id then found := e.Dfs_code.li
          else if e.Dfs_code.j = id then found := e.Dfs_code.lj)
        code;
      !found
    in
    match ext with
    | B (i, j) -> { Dfs_code.i; j; li = label_of i; le = 0; lj = label_of j }
    | F (i, lj) -> { Dfs_code.i; j = nv; li = label_of i; le = 0; lj }
  in
  let rec grow code pattern projs =
    check_budget ();
    incr visited;
    Run.tick run;
    Run.set_level run (Pattern.size pattern);
    let stop_size =
      (match config.max_edges with
      | Some me -> Pattern.size pattern >= me
      | None -> false)
      ||
      match config.max_vertices with
      | Some mv -> Pattern.order pattern >= mv
      | None -> false
    in
    if not stop_size then begin
      let by_ext = extensions code projs in
      (* Deterministic order: sort candidate edges by the code-edge order. *)
      let cands =
        Hashtbl.fold (fun ext projs acc -> (edge_of_ext code ext, !projs) :: acc) by_ext []
        |> List.sort (fun (e1, _) (e2, _) -> Dfs_code.compare_edge e1 e2)
      in
      List.iter
        (fun (edge, projs') ->
          let code' = Array.append code [| edge |] in
          if Dfs_code.is_min code' then begin
            let pattern' = Dfs_code.graph_of_code code' in
            let support =
              support_of ~measure:config.measure ~pattern:pattern' projs'
            in
            if support >= config.sigma then begin
              report pattern' support;
              grow code' pattern' projs'
            end
          end)
        cands
    end
  in
  (try
     (* Seeds: frequent single-edge patterns. *)
     let seed_projs : (int * int, projected list ref) Hashtbl.t =
       Hashtbl.create 32
     in
     let add_seed a b gid u v =
       let key = (a, b) in
       let p = { gid; map = [| u; v |] } in
       match Hashtbl.find_opt seed_projs key with
       | Some l -> l := p :: !l
       | None -> Hashtbl.add seed_projs key (ref [ p ])
     in
     Array.iteri
       (fun gid g ->
         Graph.iter_edges
           (fun u v ->
             let lu = Graph.label g u and lv = Graph.label g v in
             if lu <= lv then add_seed lu lv gid u v;
             if lv <= lu then add_seed lv lu gid v u)
           g)
       db;
     let seeds =
       Hashtbl.fold (fun (a, b) projs acc -> ((a, b), !projs) :: acc) seed_projs []
       |> List.sort compare
     in
     List.iter
       (fun ((a, b), projs) ->
         check_budget ();
         let code = [| { Dfs_code.i = 0; j = 1; li = a; le = 0; lj = b } |] in
         let pattern = Dfs_code.graph_of_code code in
         let support = support_of ~measure:config.measure ~pattern projs in
         if support >= config.sigma then begin
           report pattern support;
           grow code pattern projs
         end)
       seeds
   with Stop -> ());
  {
    results = List.rev !results;
    complete = !complete;
    elapsed = Clock.now () -. t0;
    visited = !visited;
  }
