let mine ?run ?(measure = Engine.Embedding_count) ?max_edges ?max_vertices
    ?max_patterns ?deadline ?(min_report_edges = 1) ~graph ~sigma () =
  let config =
    {
      (Engine.default ~sigma ~measure) with
      max_edges;
      max_vertices;
      max_patterns;
      deadline;
      min_report_edges;
    }
  in
  Engine.mine ?run config [ graph ]

let enumerate ?max_vertices ?max_edges ~graph () =
  (* sigma = 1: every pattern with an embedding is frequent, so the
     embedding-count pruning caveat (not anti-monotone) never bites and the
     DFS-code growth visits every connected pattern within the caps. *)
  mine ?max_vertices ?max_edges ~graph ~sigma:1 ()
