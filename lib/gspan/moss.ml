let mine ?run ?(measure = Engine.Embedding_count) ?max_edges ?max_vertices
    ?max_patterns ?deadline ?(min_report_edges = 1) ~graph ~sigma () =
  let config =
    {
      (Engine.default ~sigma ~measure) with
      max_edges;
      max_vertices;
      max_patterns;
      deadline;
      min_report_edges;
    }
  in
  Engine.mine ?run config [ graph ]
