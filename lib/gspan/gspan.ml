let mine ?run ?max_edges ?max_patterns ?deadline ?(min_report_edges = 1) ~db
    ~sigma () =
  let config =
    {
      (Engine.default ~sigma ~measure:Engine.Transactions) with
      max_edges;
      max_patterns;
      deadline;
      min_report_edges;
    }
  in
  Engine.mine ?run config db

let frequent_patterns ~db ~sigma =
  (mine ~db ~sigma ()).Engine.results
  |> List.map (fun r -> r.Engine.pattern)
