(** The scatter-gather router: one SkinnyServe endpoint fronting a shard
    layout, answering the {e same} wire protocol as a single-process
    {!Spm_server.Server} with byte-identical payloads.

    {b Planning.} The router keeps a per-shard table of pattern summaries
    — seeded from the committed {!Partition.manifest}, updated in place
    from every [Update] diff — and prunes the scatter with the same
    signature reasoning as {!Spm_server.Sig_index}: a [Lookup] only
    contacts shards holding a summary that satisfies every filter, a
    [Contains] only shards holding a summary whose label multiset the
    submitted graph dominates. A query no summary can satisfy is answered
    locally with the empty pattern set — zero shard round trips. [Mine]
    and [Update] always contact every shard.

    {b Merging.} Shard answers arrive cluster-contiguous in sorted
    canonical-label order (each diameter cluster is wholly owned by one
    shard), so an ordered k-way merge by diameter labels reproduces the
    single-process pattern order exactly — responses are byte-identical to
    the unsharded server's, at any shard count.

    {b Failure.} Connections are pooled and persistent; each scatter leg
    carves its deadline from the request's remaining budget
    ([?deadline]), and transport failures on idempotent requests
    ({!Spm_server.Protocol.cacheable}) are retried once on a fresh
    connection after a short backoff. Shards still unreachable are
    reported in the v4 [Partial] envelope ([unreachable]) around the merge
    of the answers that {e did} arrive — never a malformed or silently
    truncated response; pre-v4 clients get an [Error] naming the shards
    instead. An [Update] is only acknowledged when {e every} shard
    committed and reports the same new version; anything less is an
    [Error] (no partial acks — a lost update leg must surface). *)

type t

val create :
  ?deadline:float ->
  manifest:Partition.manifest ->
  endpoints:(string * int) array ->
  unit ->
  t
(** A router over [endpoints.(i)] = (host, port) of shard [i], in manifest
    order. [deadline] is the per-request wall-clock budget in seconds that
    scatter legs carve their timeouts from (default: none — wait forever).
    Connections are dialed lazily on first use.
    @raise Invalid_argument if the endpoint count disagrees with the
    manifest. *)

val version : t -> int
(** The layout's graph version: the manifest's, +1 per [Update] every
    shard acknowledged. *)

val shard_patterns : t -> int array
(** Per-shard pattern counts from the live summary tables — the placement
    balance observable, in shard order. *)

val pruning : t -> int * int
(** [(contacted, pruned)] cumulative scatter legs: how many shard calls
    plannable requests ([Lookup]/[Contains]) issued vs. avoided. The
    pushdown-effectiveness observable reported by the cluster benchmark. *)

val handle : ?client_version:int -> t -> Spm_server.Protocol.request -> Spm_server.Protocol.response
(** Plan, scatter, merge one request — the full dispatch path minus the
    socket, so tests can compare router answers against
    {!Spm_server.Server.handle} in-process. Never raises: transport
    failures become [Partial]/[Error] responses as described above.
    [client_version] defaults to {!Spm_server.Protocol.version}; the
    [Partial] envelope is only used at v4. *)

val stats : t -> Spm_server.Protocol.server_stats
(** Router-local counters ([store_patterns] is the summary-table total
    across shards; [cache_hits] is always 0 — the router does not cache). *)

val stopping : t -> bool
(** True once a [Shutdown] request has been handled. *)

val serve : t -> Unix.file_descr -> unit
(** Accept loop over a {!Spm_server.Server.listen} socket: one thread per
    connection, handshake at v2..v4, one response frame per request.
    [Subscribe] connections move to a push registry that receives the
    merged [Update_reply] per acknowledged update. Returns after
    [Shutdown] (router-local — workers are not shut down), once every
    connection thread has finished. *)

val close : t -> unit
(** Drop every pooled worker connection. [serve] does this on exit; only
    in-process users need to call it. *)
