module Store = Spm_store.Store
module Codec = Spm_store.Codec
module Server = Spm_server.Server
module Protocol = Spm_server.Protocol

type t = {
  server : Server.t;
  name : string;
  listen_fd : Unix.file_descr;
  port : int;
  lock : Mutex.t;
  mutable conns : Unix.file_descr list;  (* live connections, under [lock] *)
  mutable threads : Thread.t list;  (* under [lock] *)
  mutable stopped : bool;
  mutable accept_thread : Thread.t option;
}

let port t = t.port
let name t = t.name
let server t = t.server

(* Half-close instead of [Unix.close]: the peer sees EOF immediately, but
   the descriptor number stays allocated until the owning handler thread
   unwinds — closing here could race a concurrent dial reusing the fd. *)
let shutdown_fd fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let track t fd =
  Mutex.lock t.lock;
  let admitted = not t.stopped in
  if admitted then t.conns <- fd :: t.conns;
  Mutex.unlock t.lock;
  admitted

let untrack t fd =
  Mutex.lock t.lock;
  t.conns <- List.filter (fun c -> c != fd) t.conns;
  Mutex.unlock t.lock

(* Tear down the listener and (optionally) the live connections. Runs at
   most once; [stop]/[kill]/served-[Shutdown] all funnel through here. *)
let teardown t ~abrupt =
  Mutex.lock t.lock;
  let first = not t.stopped in
  t.stopped <- true;
  let conns = t.conns in
  Mutex.unlock t.lock;
  if first then begin
    shutdown_fd t.listen_fd;
    if abrupt then List.iter shutdown_fd conns
  end

let handle_conn t conn =
  (try Unix.setsockopt conn TCP_NODELAY true with Unix.Unix_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      untrack t conn;
      try Unix.close conn with Unix.Unix_error _ -> ())
    (fun () ->
      match Protocol.accept_handshake conn with
      | None -> ()
      | Some client_version ->
        let rec loop () =
          match Protocol.read_frame conn with
          | None -> ()
          | Some frame -> (
            match Protocol.decode_request frame with
            | exception Codec.Corrupt msg ->
              Protocol.write_frame conn
                (Protocol.encode_response (Protocol.response (Error msg)))
            | req ->
              let resp = Server.handle ~client_version t.server req in
              Protocol.write_frame conn (Protocol.encode_response resp);
              if req = Protocol.Shutdown then teardown t ~abrupt:false
              else loop ())
        in
        (try loop () with
        | Codec.Corrupt _ -> ()
        | Unix.Unix_error ((EPIPE | ECONNRESET | EBADF | ENOTCONN), _, _) -> ()))

let accept_loop t =
  let rec loop () =
    if not t.stopped then
      match Unix.accept t.listen_fd with
      | conn, _ ->
        if track t conn then begin
          let th = Thread.create (fun () -> handle_conn t conn) () in
          Mutex.lock t.lock;
          t.threads <- th :: t.threads;
          Mutex.unlock t.lock
        end
        else (try Unix.close conn with Unix.Unix_error _ -> ());
        loop ()
      | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
      (* listener shut down (teardown) or otherwise dead: stop accepting *)
  in
  loop ();
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let start ?jobs ?cache_capacity ?mine_timeout ?(host = "127.0.0.1")
    ?(port = 0) ?path store =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let server = Server.create ?jobs ?cache_capacity ?mine_timeout () in
  Server.set_store server ?path store;
  let name =
    Partition.shard_name
      (match store.Store.shard with Some (i, _) -> i | None -> 0)
  in
  let listen_fd, port = Server.listen ~host ~port () in
  let t =
    {
      server;
      name;
      listen_fd;
      port;
      lock = Mutex.create ();
      conns = [];
      threads = [];
      stopped = false;
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop t =
  teardown t ~abrupt:false;
  (* Nudge connections idle at [read_frame]: peers reading EOF close. *)
  Mutex.lock t.lock;
  let conns = t.conns and threads = t.threads in
  t.threads <- [];
  Mutex.unlock t.lock;
  List.iter shutdown_fd conns;
  Option.iter Thread.join t.accept_thread;
  t.accept_thread <- None;
  List.iter Thread.join threads

let kill t = teardown t ~abrupt:true
