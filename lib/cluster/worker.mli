(** A shard worker: one {!Spm_server.Server} serving one shard store over
    its own listening socket and accept loop.

    The server side needs no cluster-specific logic — installing a shard
    store already scopes it to the owned diameter clusters
    ({!Spm_server.Server.set_store}); what this module adds is lifecycle.
    Unlike {!Spm_server.Server.serve}, the worker's accept loop {e tracks}
    its live connections, so a worker can be torn down abruptly
    ({!kill} — the failure the router's [Partial] path is tested against)
    or gracefully ({!stop}), and restarted on the same port
    ([SO_REUSEADDR]) to exercise recovery. *)

type t

val start :
  ?jobs:int ->
  ?cache_capacity:int ->
  ?mine_timeout:float ->
  ?host:string ->
  ?port:int ->
  ?path:string ->
  Spm_store.Store.pattern_store ->
  t
(** Create a server, install the store (shard stores auto-scope), bind
    [host]:[port] (default [127.0.0.1]:ephemeral) and serve on a background
    thread. [path] is where committed updates persist their journal.
    The remaining options are {!Spm_server.Server.create}'s.
    @raise Unix.Unix_error if the port cannot be bound. *)

val port : t -> int
(** The bound port (useful with [~port:0]). *)

val name : t -> string
(** {!Partition.shard_name} of the store's shard index ("shard0" for an
    unsharded store — a single worker is shard 0 of 1). *)

val server : t -> Spm_server.Server.t
(** The underlying server, for in-process inspection (stats, version). *)

val stop : t -> unit
(** Graceful teardown: stop accepting, end every connection after its
    in-flight request, join the serving threads. Idempotent. *)

val kill : t -> unit
(** Abrupt teardown: shut down the listener and every live connection
    {e now} — peers blocked on a reply see EOF immediately, exactly like a
    crashed process. Does not wait for in-flight requests (a mine keeps
    running until it notices its dead socket). Idempotent. *)
