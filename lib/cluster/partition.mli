(** Partitioning a mined pattern store into shard stores.

    The unit of placement is the {e diameter cluster}: every mined pattern
    carries the canonical label sequence of the diameter it grew from
    ([diameter_labels]), clusters are independent (Theorem 4), and the
    global pattern list is cluster-contiguous in sorted canonical-label
    order — so assigning each cluster key to a shard splits the pattern set
    without ever cutting a cluster, and an ordered merge of the shards'
    answers reproduces the single-process answer byte for byte.

    Placement is [Spm_core.Path_pattern.shard_of ~shards], a byte-stable
    FNV-1a of the canonical labels: the same store partitions to the same
    bytes on every build, so shard files can be compared and cached by
    content.

    Every shard store keeps the {e full} data graph (updates repair against
    it, containment queries match inside it) and the owned subset of the
    patterns, and carries its shard identity in the store file
    ({!Spm_store.Store.pattern_store.shard}) — loading one into
    {!Spm_server.Server.set_store} yields a fully configured shard worker.

    The committed {e manifest} records the layout (shard count, mining
    parameters, version) plus a per-shard signature summary — one
    (label-multiset, diameter length, support) triple per pattern — from
    which the router builds its pushdown planner without opening any shard
    store. *)

(** One pattern's planning footprint: everything the router needs to decide
    whether a query can touch it. *)
type pattern_summary = {
  counts : (int * int) array;
      (** sorted (label, count) vertex multiset ({!Spm_server.Sig_index}) *)
  diam_len : int;  (** diameter length (the l of the cluster) *)
  support : int;
}

type entry = {
  file : string;  (** shard store file name (relative to the manifest) *)
  patterns : pattern_summary list;  (** in shard store order *)
}

type manifest = {
  shards : int;
  l : int;
  delta : int;
  sigma : int;
  closed_growth : bool;
  version : int;  (** graph version the shard stores were cut at *)
  entries : entry list;  (** length [shards], shard order *)
}

val shard_name : int -> string
(** ["shard<i>"] — the name unreachable shards are reported under in
    [Partial] responses. *)

val summary_of_mined : Spm_core.Skinny_mine.mined -> pattern_summary
(** The planning footprint of one mined pattern — what {!manifest_of}
    records and what the router computes from [Update] diffs to keep its
    pushdown tables current. *)

val split : shards:int -> Spm_store.Store.pattern_store -> Spm_store.Store.pattern_store array
(** The shard stores: full graph, owned pattern subset (source order), and
    shard identity [(i, shards)]. Deterministic and byte-stable.
    @raise Invalid_argument if [shards < 1], if the store is incomplete (a
    truncated mine is not a servable corpus), or if it carries an
    unreplayed journal (partition a quiesced store). *)

val manifest_of :
  shards:int -> files:string list -> Spm_store.Store.pattern_store -> manifest
(** The manifest describing {!split} of the same store, with [files] naming
    the shard stores in shard order. *)

val shard_file : base:string -> shard:int -> shards:int -> string
(** ["<base>.shard<i>of<n>.spm"]. *)

val manifest_file : base:string -> string
(** ["<base>.manifest"]. *)

val write : base:string -> shards:int -> Spm_store.Store.pattern_store -> manifest
(** {!split} + save every shard store and the manifest under [base]
    (atomically, via temp-and-rename), returning the manifest. *)

val encode_manifest : manifest -> string

val decode_manifest : string -> manifest
(** @raise Spm_store.Codec.Corrupt on bad magic, unknown version, checksum
    mismatch, or a shard-count/entry-count disagreement. *)

val save_manifest : string -> manifest -> unit

val load_manifest : string -> manifest
