module Skinny_mine = Spm_core.Skinny_mine
module Path_pattern = Spm_core.Path_pattern
module Graph = Spm_graph.Graph
module Codec = Spm_store.Codec
module Protocol = Spm_server.Protocol
module Sig_index = Spm_server.Sig_index
module Run = Spm_engine.Run
module Clock = Spm_engine.Clock

type shard = {
  index : int;
  sname : string;
  host : string;
  sport : int;
  pool_lock : Mutex.t;
  mutable pool : Unix.file_descr list;  (* idle connections, under [pool_lock] *)
  mutable summaries : Partition.pattern_summary list;
      (* live pushdown table: manifest summaries + applied [Update] diffs;
         under the router's [lock] *)
}

type t = {
  manifest : Partition.manifest;
  shards : shard array;
  deadline : float option;  (* per-request budget, seconds *)
  lock : Mutex.t;  (* summaries, version, counters *)
  update_lock : Mutex.t;
      (* Serializes [Update] fan-outs: interleaved updates could commit in
         different orders at different shards and break version agreement. *)
  mutable rversion : int;
  mutable requests : int;
  mutable errors : int;
  mutable contacted : int;
  mutable pruned : int;
  mutable service_seconds : float;
  started : float;
  mutable stop : bool;
  mutable listen_addr : Unix.sockaddr option;
  sub_lock : Mutex.t;
  mutable subscribers : Unix.file_descr list;
}

let create ?deadline ~manifest ~endpoints () =
  if Array.length endpoints <> manifest.Partition.shards then
    invalid_arg
      (Printf.sprintf "Router.create: %d endpoints for %d shards"
         (Array.length endpoints) manifest.Partition.shards);
  let shards =
    Array.of_list
      (List.mapi
         (fun i (e : Partition.entry) ->
           let host, sport = endpoints.(i) in
           {
             index = i;
             sname = Partition.shard_name i;
             host;
             sport;
             pool_lock = Mutex.create ();
             pool = [];
             summaries = e.Partition.patterns;
           })
         manifest.Partition.entries)
  in
  {
    manifest;
    shards;
    deadline;
    lock = Mutex.create ();
    update_lock = Mutex.create ();
    rversion = manifest.Partition.version;
    requests = 0;
    errors = 0;
    contacted = 0;
    pruned = 0;
    service_seconds = 0.0;
    started = Clock.now ();
    stop = false;
    listen_addr = None;
    sub_lock = Mutex.create ();
    subscribers = [];
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let version t = locked t (fun () -> t.rversion)

let shard_patterns t =
  locked t (fun () ->
      Array.map (fun s -> List.length s.summaries) t.shards)

let pruning t = locked t (fun () -> (t.contacted, t.pruned))

let stopping t = t.stop

let stats t =
  locked t (fun () ->
      {
        Protocol.requests = t.requests;
        cache_hits = 0;
        errors = t.errors;
        store_patterns =
          Array.fold_left
            (fun acc s -> acc + List.length s.summaries)
            0 t.shards;
        uptime_seconds = Clock.now () -. t.started;
        service_seconds = t.service_seconds;
      })

(* --- shard RPC over pooled connections --- *)

let set_read_timeout fd ~deadline =
  (* 0. disarms the timeout; clamp to a floor so a nearly-expired budget
     doesn't accidentally disarm it. *)
  let secs =
    match deadline with
    | None -> 0.
    | Some d -> Float.max 0.001 (d -. Clock.now ())
  in
  try Unix.setsockopt_float fd SO_RCVTIMEO secs
  with Unix.Unix_error _ -> ()

let dial shard =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  match
    Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string shard.host, shard.sport));
    (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
    Protocol.client_handshake fd
  with
  | () -> fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let checkout shard =
  Mutex.lock shard.pool_lock;
  let fd =
    match shard.pool with
    | fd :: rest ->
      shard.pool <- rest;
      Some fd
    | [] -> None
  in
  Mutex.unlock shard.pool_lock;
  match fd with Some fd -> fd | None -> dial shard

let checkin shard fd =
  Mutex.lock shard.pool_lock;
  shard.pool <- fd :: shard.pool;
  Mutex.unlock shard.pool_lock

let discard fd = try Unix.close fd with Unix.Unix_error _ -> ()

let drain_pool shard =
  Mutex.lock shard.pool_lock;
  let fds = shard.pool in
  shard.pool <- [];
  Mutex.unlock shard.pool_lock;
  List.iter discard fds

let close t = Array.iter drain_pool t.shards

exception Expired

(* One request/response exchange with [shard]. A failed or timed-out
   connection is closed, never pooled again: a late reply on a reused
   socket would answer the wrong request. *)
let rpc shard req ~deadline =
  (match deadline with
  | Some d when Clock.now () >= d -> raise Expired
  | _ -> ());
  let fd = checkout shard in
  match
    set_read_timeout fd ~deadline;
    Protocol.write_frame fd (Protocol.encode_request req);
    match Protocol.read_frame fd with
    | Some frame -> Protocol.decode_response frame
    | None -> raise (Codec.Corrupt "connection closed before reply")
  with
  | resp ->
    checkin shard fd;
    resp
  | exception e ->
    discard fd;
    raise e

let backoff_seconds = 0.05

(* Scatter leg: RPC once, and for idempotent requests retry once on a fresh
   connection after a short backoff — a worker restart between two pooled
   requests looks like one EOF, and the retry lands on a fresh dial. *)
let call_shard shard req ~deadline =
  let retriable = Protocol.cacheable req in
  match rpc shard req ~deadline with
  | resp -> Ok resp
  | exception Expired -> Error "deadline"
  | exception (Codec.Corrupt _ | Unix.Unix_error _) when retriable -> (
    let budget_left =
      match deadline with
      | None -> true
      | Some d -> Clock.now () +. backoff_seconds < d
    in
    if not budget_left then Error "unreachable"
    else begin
      Thread.delay backoff_seconds;
      match rpc shard req ~deadline with
      | resp -> Ok resp
      | exception Expired -> Error "deadline"
      | exception (Codec.Corrupt _ | Unix.Unix_error _) -> Error "unreachable"
    end)
  | exception (Codec.Corrupt _ | Unix.Unix_error _) -> Error "unreachable"

(* Scatter [req] to the shards in [targets] concurrently; [results.(i)] is
   [None] for shards the planner pruned. *)
let scatter t req ~targets ~deadline =
  let results = Array.make (Array.length t.shards) None in
  let threads =
    List.map
      (fun i ->
        Thread.create
          (fun () -> results.(i) <- Some (call_shard t.shards.(i) req ~deadline))
          ())
      targets
  in
  List.iter Thread.join threads;
  results

(* --- planning --- *)

(* [counts] is the query's label multiset, normalized ONCE per plan — the
   scan visits every summary of every shard under the router lock, so
   per-summary work must be a handful of compares, not an allocation. *)
let summary_matches_lookup (p : Protocol.lookup_params) ~counts
    (s : Partition.pattern_summary) =
  (match p.Protocol.min_support with
  | Some v -> s.Partition.support >= v
  | None -> true)
  && (match p.Protocol.max_support with
     | Some v -> s.Partition.support <= v
     | None -> true)
  && (match p.Protocol.length with
     | Some l -> s.Partition.diam_len = l
     | None -> true)
  && (match counts with
     | Some c -> c = s.Partition.counts
     | None -> true)

let all_targets t = List.init (Array.length t.shards) Fun.id

(* Shards holding at least one summary the request could touch. Pruned
   shards contribute the empty list by construction — exactly what they
   would answer. *)
let plan t req =
  match (req : Protocol.request) with
  | Lookup p ->
    let counts =
      Option.map Sig_index.normalize_multiset p.Protocol.labels
    in
    Some
      (locked t (fun () ->
           List.filter
             (fun i ->
               List.exists
                 (summary_matches_lookup p ~counts)
                 t.shards.(i).summaries)
             (all_targets t)))
  | Contains g ->
    Some
      (locked t (fun () ->
           List.filter
             (fun i ->
               List.exists
                 (fun (s : Partition.pattern_summary) ->
                   Sig_index.dominated s.Partition.counts g)
                 t.shards.(i).summaries)
             (all_targets t)))
  | _ -> None

(* --- merging --- *)

(* Ordered k-way merge of per-shard pattern lists. Shard lists are
   cluster-contiguous in ascending canonical-label order and every cluster
   is wholly owned by one shard, so heads never tie across shards and the
   merge reproduces the single-process order exactly. *)
let merge_patterns lists =
  let heads = Array.of_list lists in
  let k = Array.length heads in
  let out = ref [] in
  let rec step () =
    let best = ref (-1) in
    for i = k - 1 downto 0 do
      match heads.(i) with
      | [] -> ()
      | (m : Skinny_mine.mined) :: _ ->
        if
          !best < 0
          ||
          let (b : Skinny_mine.mined) = List.hd heads.(!best) in
          Path_pattern.compare_labels m.Skinny_mine.diameter_labels
            b.Skinny_mine.diameter_labels
          < 0
        then best := i
    done;
    if !best >= 0 then begin
      (match heads.(!best) with
      | m :: rest ->
        heads.(!best) <- rest;
        out := m :: !out
      | [] -> assert false);
      step ()
    end
  in
  step ();
  List.rev !out

let worst_status a b =
  match (a, b) with
  | Run.Timeout, _ | _, Run.Timeout -> Run.Timeout
  | Run.Cancelled, _ | _, Run.Cancelled -> Run.Cancelled
  | Run.Ok, Run.Ok -> Run.Ok

(* --- live summary maintenance --- *)

let remove_one_summary s summaries =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: rest ->
      if x = s then List.rev_append acc rest else go (x :: acc) rest
  in
  go [] summaries

let apply_diff t i (u : Protocol.update_reply) =
  locked t (fun () ->
      let shard = t.shards.(i) in
      let after_removed =
        List.fold_left
          (fun acc m -> remove_one_summary (Partition.summary_of_mined m) acc)
          shard.summaries u.Protocol.removed
      in
      shard.summaries <-
        after_removed @ List.map Partition.summary_of_mined u.Protocol.added)

(* --- the push registry (router-side Subscribe) --- *)

let push_to_subscribers t (u : Protocol.update_reply) ~seconds =
  let frame =
    Protocol.encode_response
      (Protocol.response ~seconds (Protocol.Update_reply u))
  in
  Mutex.lock t.sub_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.sub_lock)
    (fun () ->
      t.subscribers <-
        List.filter
          (fun fd ->
            match Protocol.write_frame fd frame with
            | () -> true
            | exception (Unix.Unix_error _ | Codec.Corrupt _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              false)
          t.subscribers)

(* --- dispatch --- *)

let count_error t = locked t (fun () -> t.errors <- t.errors + 1)

let wake_listener t =
  match t.listen_addr with
  | None -> ()
  | Some addr -> (
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ -> ( try Unix.close fd with _ -> ()))

let unreachable_names t results targets =
  List.filter_map
    (fun i ->
      match results.(i) with
      | Some (Error _) -> Some t.shards.(i).sname
      | Some (Ok _) | None -> None)
    targets

(* Merge the scatter of a pattern-answering request ([Mine] / [Lookup] /
   [Contains]). Precedence: a shard [Error] payload propagates verbatim
   (it is what the single process would have said), then transport
   failures surface as [Partial] (v4) or an [Error] naming the shards,
   then the merged patterns under the worst shard status. *)
let merge_query t ~client_version results targets =
  let shard_error =
    List.find_map
      (fun i ->
        match results.(i) with
        | Some (Ok { Protocol.payload = Protocol.Error msg; _ }) -> Some msg
        | _ -> None)
      targets
  in
  match shard_error with
  | Some msg ->
    count_error t;
    (Run.Ok, [], Protocol.Error msg)
  | None ->
    let unreachable = unreachable_names t results targets in
    let status, lists =
      List.fold_left
        (fun (status, lists) i ->
          match results.(i) with
          | Some (Ok ({ Protocol.payload = Protocol.Patterns l; _ } as r)) ->
            (worst_status status r.Protocol.status, l :: lists)
          | Some (Ok r) ->
            (* Unexpected payload shape (a worker bug): treat the shard as
               unreachable rather than corrupt the merge. *)
            (worst_status status r.Protocol.status, lists)
          | Some (Error _) | None -> (status, lists))
        (Run.Ok, []) targets
    in
    let merged = merge_patterns (List.rev lists) in
    if unreachable = [] then (status, [], Protocol.Patterns merged)
    else if client_version >= 4 then begin
      count_error t;
      (status, unreachable, Protocol.Patterns merged)
    end
    else begin
      count_error t;
      ( status,
        [],
        Protocol.Error
          ("partial answer; unreachable shards: "
          ^ String.concat ", " unreachable) )
    end

let merge_progress results targets =
  let z =
    {
      Protocol.running = false;
      candidates = 0;
      emitted = 0;
      level = 0;
      elapsed_seconds = 0.0;
    }
  in
  List.fold_left
    (fun acc i ->
      match results.(i) with
      | Some
          (Ok { Protocol.payload = Protocol.Progress_reply p; _ }) ->
        {
          Protocol.running = acc.Protocol.running || p.Protocol.running;
          candidates = acc.Protocol.candidates + p.Protocol.candidates;
          emitted = acc.Protocol.emitted + p.Protocol.emitted;
          level = max acc.Protocol.level p.Protocol.level;
          elapsed_seconds =
            Float.max acc.Protocol.elapsed_seconds p.Protocol.elapsed_seconds;
        }
      | _ -> acc)
    z targets

(* Update fan-out: all shards, no retry (not idempotent), and an ack only
   on unanimous version agreement — a partially-applied update must
   surface as an error, never as a stale-but-Ok answer. *)
let run_update t ~client_version results targets edits =
  ignore edits;
  let failures = unreachable_names t results targets in
  let shard_failure =
    List.find_map
      (fun i ->
        match results.(i) with
        | Some (Ok { Protocol.payload = Protocol.Error msg; _ }) ->
          Some (Printf.sprintf "%s: %s" t.shards.(i).sname msg)
        | _ -> None)
      targets
  in
  let replies =
    List.filter_map
      (fun i ->
        match results.(i) with
        | Some (Ok { Protocol.payload = Protocol.Update_reply u; _ }) ->
          Some (i, u)
        | _ -> None)
      targets
  in
  (* Committed legs move the pushdown tables regardless of overall
     outcome: planning must stay sound against what each shard now holds. *)
  List.iter (fun (i, u) -> apply_diff t i u) replies;
  match (failures, shard_failure) with
  | _ :: _, _ ->
    count_error t;
    let msg =
      "update not acknowledged; unreachable shards: "
      ^ String.concat ", " failures
    in
    if client_version >= 4 then (Run.Ok, failures, Protocol.Error msg)
    else (Run.Ok, [], Protocol.Error msg)
  | [], Some msg ->
    count_error t;
    (Run.Ok, [], Protocol.Error ("update failed at " ^ msg))
  | [], None -> (
    let versions =
      List.sort_uniq compare
        (List.map (fun (_, u) -> u.Protocol.new_version) replies)
    in
    match versions with
    | [ v ] ->
      let merged =
        {
          Protocol.new_version = v;
          added =
            merge_patterns (List.map (fun (_, u) -> u.Protocol.added) replies);
          removed =
            merge_patterns
              (List.map (fun (_, u) -> u.Protocol.removed) replies);
          repaired =
            List.fold_left (fun a (_, u) -> a + u.Protocol.repaired) 0 replies;
          clusters =
            List.fold_left (fun a (_, u) -> a + u.Protocol.clusters) 0 replies;
        }
      in
      locked t (fun () -> t.rversion <- v);
      (Run.Ok, [], Protocol.Update_reply merged)
    | _ ->
      count_error t;
      ( Run.Ok,
        [],
        Protocol.Error
          (Printf.sprintf
             "update version disagreement across shards (saw: %s)"
             (String.concat ", " (List.map string_of_int versions))) ))

let handle ?(client_version = Protocol.version) t req : Protocol.response =
  let t0 = Clock.now () in
  let deadline = Option.map (fun d -> t0 +. d) t.deadline in
  locked t (fun () -> t.requests <- t.requests + 1);
  let finish (status, unreachable, payload) =
    let seconds = Clock.now () -. t0 in
    locked t (fun () -> t.service_seconds <- t.service_seconds +. seconds);
    let unreachable = if client_version >= 4 then unreachable else [] in
    Protocol.response ~seconds ~status ~unreachable payload
  in
  if Protocol.request_version req > client_version then begin
    count_error t;
    finish
      ( Run.Ok,
        [],
        Protocol.Error
          (Printf.sprintf
             "request requires protocol v%d (connection negotiated v%d)"
             (Protocol.request_version req)
             client_version) )
  end
  else
    match req with
    | Protocol.Ping -> finish (Run.Ok, [], Protocol.Pong)
    | Protocol.Load_store _ ->
      count_error t;
      finish
        ( Run.Ok,
          [],
          Protocol.Error
            "router serves a fixed shard layout; re-partition and restart \
             the cluster to change stores" )
    | Protocol.Stats -> finish (Run.Ok, [], Protocol.Stats_reply (stats t))
    | Protocol.Shutdown ->
      t.stop <- true;
      wake_listener t;
      finish (Run.Ok, [], Protocol.Bye)
    | Protocol.Subscribe ->
      finish (Run.Ok, [], Protocol.Subscribed (version t))
    | Protocol.Progress ->
      let targets = all_targets t in
      let results = scatter t req ~targets ~deadline in
      finish (Run.Ok, [], Protocol.Progress_reply (merge_progress results targets))
    | Protocol.Cancel ->
      let targets = all_targets t in
      let results = scatter t req ~targets ~deadline in
      let any =
        List.exists
          (fun i ->
            match results.(i) with
            | Some (Ok { Protocol.payload = Protocol.Cancel_ack true; _ }) ->
              true
            | _ -> false)
          targets
      in
      finish (Run.Ok, [], Protocol.Cancel_ack any)
    | Protocol.Update { Protocol.edits } ->
      Mutex.lock t.update_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.update_lock)
        (fun () ->
          let targets = all_targets t in
          let results = scatter t req ~targets ~deadline in
          let ((_, _, payload) as outcome) =
            run_update t ~client_version results targets edits
          in
          (match payload with
          | Protocol.Update_reply u ->
            push_to_subscribers t u ~seconds:(Clock.now () -. t0)
          | _ -> ());
          finish outcome)
    | Protocol.Mine _ | Protocol.Lookup _ | Protocol.Contains _ ->
      let targets =
        match plan t req with None -> all_targets t | Some ts -> ts
      in
      locked t (fun () ->
          t.contacted <- t.contacted + List.length targets;
          t.pruned <-
            t.pruned + (Array.length t.shards - List.length targets));
      if targets = [] then
        (* Nothing any shard holds can answer this: the empty pattern set,
           with zero round trips. *)
        finish (Run.Ok, [], Protocol.Patterns [])
      else
        let results = scatter t req ~targets ~deadline in
        finish (merge_query t ~client_version results targets)

(* --- the socket surface --- *)

let handle_connection t conn =
  (try Unix.setsockopt conn TCP_NODELAY true with Unix.Unix_error _ -> ());
  let handed_off = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !handed_off then
        try Unix.close conn with Unix.Unix_error _ -> ())
    (fun () ->
      match Protocol.accept_handshake conn with
      | None -> ()
      | Some client_version ->
        let rec loop () =
          match Protocol.read_frame conn with
          | None -> ()
          | Some frame -> (
            match Protocol.decode_request frame with
            | exception Codec.Corrupt msg ->
              Protocol.write_frame conn
                (Protocol.encode_response (Protocol.response (Error msg)))
            | req -> (
              let resp = handle ~client_version t req in
              Protocol.write_frame conn (Protocol.encode_response resp);
              match (req, resp.Protocol.payload) with
              | Protocol.Subscribe, Protocol.Subscribed _ ->
                Mutex.lock t.sub_lock;
                t.subscribers <- conn :: t.subscribers;
                Mutex.unlock t.sub_lock;
                handed_off := true
              | _ -> if req <> Protocol.Shutdown then loop ()))
        in
        (try loop () with
        | Codec.Corrupt _ -> ()
        | Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ()))

let serve t fd =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  t.listen_addr <- Some (Unix.getsockname fd);
  let threads = ref [] in
  let rec accept_loop () =
    if not t.stop then
      match Unix.accept fd with
      | conn, _ ->
        if t.stop then (try Unix.close conn with Unix.Unix_error _ -> ())
        else
          threads :=
            Thread.create (fun () -> handle_connection t conn) () :: !threads;
        accept_loop ()
      | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) ->
        accept_loop ()
      | exception Unix.Unix_error _ when t.stop -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      t.listen_addr <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      List.iter Thread.join !threads;
      Mutex.lock t.sub_lock;
      List.iter
        (fun s -> try Unix.close s with Unix.Unix_error _ -> ())
        t.subscribers;
      t.subscribers <- [];
      Mutex.unlock t.sub_lock;
      close t)
    accept_loop
