module Codec = Spm_store.Codec
module Store = Spm_store.Store
module Path_pattern = Spm_core.Path_pattern
module Skinny_mine = Spm_core.Skinny_mine
module Sig_index = Spm_server.Sig_index

type pattern_summary = {
  counts : (int * int) array;
  diam_len : int;
  support : int;
}

type entry = { file : string; patterns : pattern_summary list }

type manifest = {
  shards : int;
  l : int;
  delta : int;
  sigma : int;
  closed_growth : bool;
  version : int;
  entries : entry list;
}

let shard_name i = Printf.sprintf "shard%d" i

let check_source ~shards (s : Store.pattern_store) =
  if shards < 1 then invalid_arg "Partition: shards must be >= 1";
  if not s.Store.complete then
    invalid_arg "Partition: refusing to shard an incomplete (truncated) store";
  if s.Store.journal <> [] then
    invalid_arg
      "Partition: store carries an unreplayed journal; load and re-save it \
       first (partition a quiesced store)"

let split ~shards (s : Store.pattern_store) =
  check_source ~shards s;
  Array.init shards (fun i ->
      {
        s with
        Store.patterns =
          List.filter
            (fun (m : Skinny_mine.mined) ->
              Path_pattern.shard_of ~shards m.diameter_labels = i)
            s.Store.patterns;
        shard = Some (i, shards);
      })

let summary_of_mined (m : Skinny_mine.mined) =
  {
    counts = Sig_index.label_counts m.pattern;
    diam_len = Path_pattern.length m.diameter_labels;
    support = m.support;
  }

let manifest_of ~shards ~files (s : Store.pattern_store) =
  check_source ~shards s;
  if List.length files <> shards then
    invalid_arg "Partition.manifest_of: one file name per shard";
  let pieces = split ~shards s in
  {
    shards;
    l = s.Store.l;
    delta = s.Store.delta;
    sigma = s.Store.sigma;
    closed_growth = s.Store.closed_growth;
    version = Store.latest_version s;
    entries =
      List.mapi
        (fun i file ->
          { file; patterns = List.map summary_of_mined pieces.(i).Store.patterns })
        files;
  }

let shard_file ~base ~shard ~shards =
  Printf.sprintf "%s.shard%dof%d.spm" base shard shards

let manifest_file ~base = base ^ ".manifest"

(* --- manifest codec: magic, format varint, CRC-framed sections --- *)

let magic = "SPMCLSTR"
let format_version = 1

let write_summary w { counts; diam_len; support } =
  Codec.W.list w
    (fun w (l, c) ->
      Codec.W.uint w l;
      Codec.W.uint w c)
    (Array.to_list counts);
  Codec.W.uint w diam_len;
  Codec.W.uint w support

let read_summary r =
  let counts =
    Array.of_list
      (Codec.R.list r (fun r ->
           let l = Codec.R.uint r in
           let c = Codec.R.uint r in
           (l, c)))
  in
  let diam_len = Codec.R.uint r in
  let support = Codec.R.uint r in
  { counts; diam_len; support }

let encode_manifest m =
  let w = Codec.W.create () in
  Codec.W.raw w magic;
  Codec.W.uint w format_version;
  Codec.W.section w ~tag:'C' (fun w ->
      Codec.W.uint w m.shards;
      Codec.W.uint w m.l;
      Codec.W.uint w m.delta;
      Codec.W.uint w m.sigma;
      Codec.W.bool w m.closed_growth;
      Codec.W.uint w m.version);
  Codec.W.section w ~tag:'S' (fun w ->
      Codec.W.list w
        (fun w e ->
          Codec.W.string w e.file;
          Codec.W.list w write_summary e.patterns)
        m.entries);
  Codec.W.contents w

let decode_manifest s =
  let r = Codec.R.of_string s in
  Codec.R.expect_magic r magic;
  let v = Codec.R.uint r in
  if v <> format_version then
    raise (Codec.Corrupt (Printf.sprintf "unsupported manifest version %d" v));
  let rec sections acc =
    match Codec.R.section r with
    | None -> List.rev acc
    | Some (tag, payload) -> sections ((tag, payload) :: acc)
  in
  let secs = sections [] in
  let find tag =
    match List.assoc_opt tag secs with
    | Some p -> p
    | None ->
      raise (Codec.Corrupt (Printf.sprintf "missing manifest section %C" tag))
  in
  let c = find 'C' in
  let shards = Codec.R.uint c in
  let l = Codec.R.uint c in
  let delta = Codec.R.uint c in
  let sigma = Codec.R.uint c in
  let closed_growth = Codec.R.bool c in
  let version = Codec.R.uint c in
  let entries =
    Codec.R.list (find 'S') (fun r ->
        let file = Codec.R.string r in
        let patterns = Codec.R.list r read_summary in
        { file; patterns })
  in
  if List.length entries <> shards then
    raise
      (Codec.Corrupt
         (Printf.sprintf "manifest lists %d entries for %d shards"
            (List.length entries) shards));
  { shards; l; delta; sigma; closed_growth; version; entries }

let atomic_write path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match output_string oc contents with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

let save_manifest path m = atomic_write path (encode_manifest m)

let load_manifest path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> decode_manifest (really_input_string ic (in_channel_length ic)))

let write ~base ~shards s =
  let pieces = split ~shards s in
  let files =
    List.init shards (fun i ->
        Filename.basename (shard_file ~base ~shard:i ~shards))
  in
  Array.iteri
    (fun i piece -> Store.save (shard_file ~base ~shard:i ~shards) piece)
    pieces;
  let m = manifest_of ~shards ~files s in
  save_manifest (manifest_file ~base) m;
  m
