(** Support measures, all plan-driven ({!Plan}).

    - {!single_graph}: |E[P]| — the number of distinct embedding subgraphs in
      one data graph, the measure of Definition 8 — counted directly by the
      symmetry-broken executor, one visit per subgraph.
    - {!transaction}: number of database graphs containing P — the classical
      graph-transaction support the paper derives as the easy variant; one
      plan compiled for the whole database.
    - {!mni}: minimum-image-based support (Bringmann & Nijssen), the standard
      anti-monotone single-graph measure, provided for comparison because
      embedding-count support is not anti-monotone in general.

    Every function accepts [?run] and polls it inside the executor at
    vertex-extension granularity ({!Spm_engine.Run.check} semantics). *)

val single_graph :
  ?run:Spm_engine.Run.t -> ?limit:int -> Pattern.t -> Spm_graph.Graph.t -> int
(** Distinct embedding subgraphs; stops counting at [limit] if given (the
    count may then undershoot the true value but is ≥ [limit] iff the true
    value is). *)

val is_frequent_single :
  ?run:Spm_engine.Run.t -> Pattern.t -> Spm_graph.Graph.t -> sigma:int -> bool
(** [single_graph ~limit:sigma p g >= sigma], with early exit. *)

val transaction :
  ?run:Spm_engine.Run.t -> Pattern.t -> Spm_graph.Graph.t list -> int

val is_frequent_transaction :
  ?run:Spm_engine.Run.t ->
  Pattern.t ->
  Spm_graph.Graph.t list ->
  sigma:int ->
  bool

val mni : ?run:Spm_engine.Run.t -> Pattern.t -> Spm_graph.Graph.t -> int
(** Minimum over pattern vertices of the number of distinct data vertices in
    that position across all mappings, computed from the exact-once
    enumeration expanded through the automorphism group into a preallocated
    image-set matrix. *)
