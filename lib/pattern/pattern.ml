open Spm_graph

type t = Graph.t

let singleton_edge la lb = Graph.Builder.of_edges ~labels:[| la; lb |] [ (0, 1) ]

let of_path_labels labels =
  let n = Array.length labels in
  Graph.Builder.of_edges ~labels (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let extend_new_vertex p ~host ~label =
  let n = Graph.n p in
  if host < 0 || host >= n then invalid_arg "Pattern.extend_new_vertex: host";
  let labels = Array.append (Graph.labels p) [| label |] in
  Graph.Builder.of_edges ~labels ((host, n) :: Graph.edges p)

let extend_close_edge p u v =
  if u = v then invalid_arg "Pattern.extend_close_edge: self-loop";
  if Graph.has_edge p u v then
    invalid_arg "Pattern.extend_close_edge: edge exists";
  Graph.Builder.of_edges ~labels:(Graph.labels p) ((min u v, max u v) :: Graph.edges p)

let size = Graph.m
let order = Graph.n
let is_connected = Bfs.is_connected
let pp = Graph.pp
