(** Pattern-aware matching plans (Peregrine-style).

    A plan compiles a connected pattern once into everything the matcher
    needs per candidate vertex: a static matching order
    (rarest-(label,degree)-first with connectivity maintained), the
    already-placed pattern neighbors to check adjacency against, and
    symmetry-breaking ordering constraints derived from the pattern's
    automorphism group so that each embedding {e subgraph} is enumerated
    exactly once — no distinct-edge-set dedup hashing after the fact.

    The constraint derivation is the standard stabilizer chain: while the
    remaining automorphism group is nontrivial, pick the smallest vertex
    [v] in a nontrivial orbit, emit [m(v) < m(w)] for every other [w] in
    [v]'s orbit, and recurse on the stabilizer of [v]. Exactly one mapping
    per automorphism-equivalence class satisfies all constraints, and for
    a connected pattern two mappings have the same image subgraph iff they
    differ by an automorphism — so constrained enumeration visits each
    image once and the full mapping set is recovered by composing each
    representative with every automorphism ({!iter_all}).

    The executor has three modes, mirroring the call sites:
    - {!enumerate} / {!count} — all embeddings (one per image subgraph);
    - {!count_up_to} — early-exit threshold counting for
      [Support.is_frequent_*] where only sigma matters;
    - {!exists_from} — anchored existence, rooted at the anchored vertex
      (symmetry constraints are disabled there: a constrained
      representative need not place the anchor on the anchored target).

    Plans are immutable after {!compile} and safe to share across pool
    domains; caches ({!Cache}) are plain hash tables meant to live inside
    one mining run or server request, never shared between domains. *)

type t

val compile : ?freq:(Spm_graph.Label.t -> int) -> Pattern.t -> t
(** Compile a plan. [freq] ranks labels by rarity in the intended target
    (e.g. [Graph.label_freq target]); it biases the matching order only —
    results are identical for any [freq].
    @raise Invalid_argument if the pattern is empty or disconnected. *)

val pattern : t -> Pattern.t
(** The pattern the plan was compiled from (same vertex numbering). *)

val order : t -> int array
(** The matching order: position in the search -> pattern vertex. *)

val constraints : t -> (int * int) list
(** The symmetry-breaking constraints as [(u, w)] pairs meaning
    [m(u) < m(w)], in derivation order. Empty iff the automorphism group
    is trivial. *)

val aut_count : t -> int
(** |Aut(P)| — the number of label-preserving automorphisms (≥ 1). *)

val automorphisms : t -> int array array
(** The full automorphism group, identity included. Do not mutate. *)

val automorphism_count : Pattern.t -> int
(** |Aut(P)| without compiling a full plan (no connectivity requirement) —
    the divisor that turns a complete mapping-list length into a distinct
    embedding-subgraph count. *)

val enumerate :
  ?run:Spm_engine.Run.t ->
  ?nodes:int ref ->
  t ->
  target:Spm_graph.Graph.t ->
  (int array -> unit) ->
  unit
(** Call [f] on exactly one mapping per embedding subgraph (the unique
    symmetry-broken representative). The array is reused between calls —
    copy if retained. [run] is polled at vertex-extension granularity;
    [nodes] counts accepted vertex placements (search-tree nodes). *)

val iter_all :
  ?run:Spm_engine.Run.t ->
  t ->
  target:Spm_graph.Graph.t ->
  (int array -> unit) ->
  unit
(** Every injective label/edge-preserving mapping: each enumerated
    representative composed with each automorphism. The array is reused
    between calls — copy if retained. *)

val all_mappings :
  ?run:Spm_engine.Run.t -> t -> target:Spm_graph.Graph.t -> int array list
(** {!iter_all}, collected (fresh arrays). *)

val count :
  ?run:Spm_engine.Run.t ->
  ?nodes:int ref ->
  t ->
  target:Spm_graph.Graph.t ->
  int
(** Number of distinct embedding subgraphs — |E[P]| of Definition 8. *)

val count_up_to :
  ?run:Spm_engine.Run.t ->
  ?nodes:int ref ->
  t ->
  target:Spm_graph.Graph.t ->
  int ->
  int
(** [count], stopping as soon as [k] embeddings are found (the result is
    [min k count]; for [k <= 0] the search is skipped entirely). *)

val count_mappings :
  ?run:Spm_engine.Run.t -> ?limit:int -> t -> target:Spm_graph.Graph.t -> int
(** Number of mappings ([count * aut_count]), stopping at [limit] if
    given (then the result is [min limit mappings]). *)

val exists : ?run:Spm_engine.Run.t -> t -> target:Spm_graph.Graph.t -> bool
(** Early-exits at the first embedding. *)

val exists_from :
  ?run:Spm_engine.Run.t ->
  t ->
  target:Spm_graph.Graph.t ->
  anchor:int * int ->
  bool
(** Anchored existence: is there a mapping with pattern vertex
    [fst anchor] on target vertex [snd anchor]? Runs an anchored schedule
    (BFS order rooted at the anchor, no symmetry constraints). *)

val iter_anchored :
  ?run:Spm_engine.Run.t ->
  t ->
  target:Spm_graph.Graph.t ->
  anchor:int * int ->
  (int array -> unit) ->
  unit
(** All mappings with the anchor pinned (same schedule as
    {!exists_from}). The array is reused between calls. *)

(** Per-run plan cache keyed by canonical code. Isomorphic patterns with
    different vertex numberings share a key but need distinct plans (a
    plan's order and constraints name concrete vertex ids), so each key
    holds the plans of the structurally-distinct representations seen —
    in practice one. Not domain-safe: create one per run/task. *)
module Cache : sig
  type plan = t

  type t

  val create : unit -> t

  val find : t -> ?freq:(Spm_graph.Label.t -> int) -> Pattern.t -> plan
  (** The cached plan for this exact pattern representation, compiling on
      miss. [freq] is used only on miss. *)

  val aut_count : t -> ?freq:(Spm_graph.Label.t -> int) -> Pattern.t -> int
end
