open Spm_graph
module Run = Spm_engine.Run

(* A schedule is the executable form of a matching order: per search
   position, the pattern vertex to place, its label and degree, the
   already-placed neighbor supplying candidates (via the target's
   label-range adjacency runs), the remaining placed neighbors to check
   adjacency against, and the symmetry constraints that become checkable at
   this position. The main schedule carries the symmetry constraints;
   anchored schedules are rebuilt per call with none. *)
type schedule = {
  ord : int array; (* position -> pattern vertex *)
  labels : int array;
  degs : int array;
  src : int array; (* candidate-supplying placed neighbor, or -1 *)
  checks : int array array; (* other placed neighbors: has_edge checks *)
  gt : int array array; (* placed u with m(u) < m(current) required *)
  lt : int array array; (* placed w with m(current) < m(w) required *)
}

type t = {
  pat : Pattern.t;
  auts : int array array;
  conds : (int * int) list;
  sched : schedule;
}

(* All label-preserving automorphisms by backtracking over vertex maps,
   pruned by label, degree, and adjacency to already-mapped neighbors. An
   injective edge-preserving self-map with equal edge counts is a bijective
   edge bijection, i.e. an automorphism. Pattern sizes are paper-scale
   (tens of vertices, near-trivial groups), so brute enumeration is cheap —
   and never larger than the complete mapping lists the miners already
   materialize, since each image subgraph accounts for |Aut| mappings. *)
let automorphism_list p =
  let n = Graph.n p in
  let map = Array.make (max 1 n) (-1) in
  let used = Array.make (max 1 n) false in
  let out = ref [] in
  let rec go v =
    if v = n then out := Array.sub map 0 n :: !out
    else
      for w = 0 to n - 1 do
        if
          (not used.(w))
          && Graph.label p v = Graph.label p w
          && Graph.degree p v = Graph.degree p w
          &&
          let ok = ref true in
          Graph.iter_adj p v (fun u ->
              if map.(u) >= 0 && not (Graph.has_edge p map.(u) w) then
                ok := false);
          !ok
        then begin
          map.(v) <- w;
          used.(w) <- true;
          go (v + 1);
          used.(w) <- false;
          map.(v) <- -1
        end
      done
  in
  go 0;
  List.rev !out

let automorphism_count p = List.length (automorphism_list p)

(* Stabilizer-chain derivation: while the remaining subgroup moves
   anything, take the smallest moved vertex v, constrain m(v) < m(w) for
   every other w in v's orbit, and keep only the automorphisms fixing v.
   Among the |Aut| mappings sharing an image, each chain level selects the
   coset placing the smallest image on v, so exactly one representative
   survives all constraints. *)
let derive_conditions n auts =
  let rec first_moved current v =
    if v >= n then None
    else if List.exists (fun a -> a.(v) <> v) current then Some v
    else first_moved current (v + 1)
  in
  let rec loop current acc =
    match first_moved current 0 with
    | None -> List.rev acc
    | Some v ->
      let orbit = List.sort_uniq compare (List.map (fun a -> a.(v)) current) in
      let acc =
        List.fold_left
          (fun acc w -> if w = v then acc else (v, w) :: acc)
          acc orbit
      in
      loop (List.filter (fun a -> a.(v) = v) current) acc
  in
  loop auts []

(* Rarest-(label,degree)-first greedy order with connectivity maintained:
   start at the vertex whose label is rarest in the target (highest degree
   breaking ties), then repeatedly place the rarest-label unplaced vertex
   adjacent to the placed set. Affects search cost only, never results. *)
let matching_order ?freq p =
  let n = Graph.n p in
  if n = 0 then invalid_arg "Plan: empty pattern";
  let rarity =
    match freq with Some f -> fun v -> f (Graph.label p v) | None -> fun _ -> 0
  in
  let score v = (rarity v, -Graph.degree p v, Graph.label p v, v) in
  let order = Array.make n (-1) in
  let placed = Array.make n false in
  let pick eligible =
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if eligible v && (!best < 0 || score v < score !best) then best := v
    done;
    !best
  in
  order.(0) <- pick (fun v -> not placed.(v));
  placed.(order.(0)) <- true;
  for k = 1 to n - 1 do
    let frontier v =
      (not placed.(v)) && Graph.fold_adj p v (fun w acc -> acc || placed.(w)) false
    in
    let v = pick frontier in
    if v < 0 then invalid_arg "Plan: pattern must be connected";
    order.(k) <- v;
    placed.(v) <- true
  done;
  order

let schedule_of p ord conds =
  let n = Array.length ord in
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) ord;
  let src = Array.make n (-1) in
  let checks = Array.make n [||] in
  for d = 0 to n - 1 do
    let earlier =
      Graph.fold_adj p ord.(d)
        (fun w acc -> if pos.(w) < d then w :: acc else acc)
        []
      |> List.sort (fun a b -> compare pos.(a) pos.(b))
    in
    match earlier with
    | [] -> ()
    | s :: rest ->
      src.(d) <- s;
      checks.(d) <- Array.of_list rest
  done;
  (* A condition m(u) < m(w) becomes checkable once both are placed, i.e.
     at the later of the two positions. *)
  let gt = Array.make n [] and lt = Array.make n [] in
  List.iter
    (fun (u, w) ->
      if pos.(u) < pos.(w) then gt.(pos.(w)) <- u :: gt.(pos.(w))
      else lt.(pos.(u)) <- w :: lt.(pos.(u)))
    conds;
  {
    ord;
    labels = Array.map (Graph.label p) ord;
    degs = Array.map (Graph.degree p) ord;
    src;
    checks;
    gt = Array.map Array.of_list gt;
    lt = Array.map Array.of_list lt;
  }

let compile ?freq p =
  let ord = matching_order ?freq p in
  let auts = automorphism_list p in
  let conds = derive_conditions (Graph.n p) auts in
  { pat = p; auts = Array.of_list auts; conds; sched = schedule_of p ord conds }

let pattern t = t.pat
let order t = Array.copy t.sched.ord
let constraints t = t.conds
let aut_count t = Array.length t.auts
let automorphisms t = t.auts

(* The executor. Candidates arrive label-filtered from the CSR (a mapped
   neighbor's label run, or the graph-level label index at the root), so
   each one only needs degree, injectivity (a scan of the <= |P| placed
   images), symmetry-order, and residual-adjacency checks. [run] is polled
   per candidate — vertex-extension granularity — and [nodes] counts
   accepted placements, i.e. search-tree nodes. *)
let exec ?run ?nodes ?anchor sched ~target ~stop f =
  let n = Array.length sched.ord in
  let map = Array.make n (-1) in
  let imgs = Array.make n (-1) in
  let stopped = ref false in
  let poll = match run with None -> ignore | Some r -> fun () -> Run.check r in
  let bump = match nodes with None -> ignore | Some c -> fun () -> incr c in
  let rec place depth =
    if depth = n then begin
      f map;
      if stop () then stopped := true
    end
    else begin
      let pv = sched.ord.(depth) in
      let try_candidate tv =
        if not !stopped then begin
          poll ();
          let ok =
            Graph.degree target tv >= sched.degs.(depth)
            && (let fresh = ref true in
                for i = 0 to depth - 1 do
                  if imgs.(i) = tv then fresh := false
                done;
                !fresh)
            && Array.for_all (fun u -> map.(u) < tv) sched.gt.(depth)
            && Array.for_all (fun w -> tv < map.(w)) sched.lt.(depth)
            && Array.for_all
                 (fun w -> Graph.has_edge target map.(w) tv)
                 sched.checks.(depth)
          in
          if ok then begin
            bump ();
            map.(pv) <- tv;
            imgs.(depth) <- tv;
            place (depth + 1);
            imgs.(depth) <- -1;
            map.(pv) <- -1
          end
        end
      in
      match anchor with
      | Some (apv, atv) when apv = pv ->
        if
          Graph.label target atv = sched.labels.(depth)
          && (sched.src.(depth) < 0
             || Graph.has_edge target map.(sched.src.(depth)) atv)
        then try_candidate atv
      | _ ->
        if sched.src.(depth) >= 0 then
          Graph.adj_with_label target map.(sched.src.(depth))
            sched.labels.(depth) try_candidate
        else Graph.iter_vertices_with_label target sched.labels.(depth)
            try_candidate
    end
  in
  place 0

let enumerate ?run ?nodes t ~target f =
  exec ?run ?nodes t.sched ~target ~stop:(fun () -> false) f

(* The full mapping set is the enumerated representatives composed with
   every automorphism: m' = m . a maps v to m(a(v)), and the |Aut| compositions
   of one representative are pairwise distinct and exhaust its image's
   mapping class. *)
let iter_all ?run t ~target f =
  let n = Graph.n t.pat in
  let buf = Array.make n (-1) in
  exec ?run t.sched ~target
    ~stop:(fun () -> false)
    (fun m ->
      Array.iter
        (fun a ->
          for v = 0 to n - 1 do
            buf.(v) <- m.(a.(v))
          done;
          f buf)
        t.auts)

let all_mappings ?run t ~target =
  let acc = ref [] in
  iter_all ?run t ~target (fun m -> acc := Array.copy m :: !acc);
  List.rev !acc

let count ?run ?nodes t ~target =
  let c = ref 0 in
  exec ?run ?nodes t.sched ~target
    ~stop:(fun () -> false)
    (fun _ -> incr c);
  !c

let count_up_to ?run ?nodes t ~target k =
  if k <= 0 then 0
  else begin
    let c = ref 0 in
    exec ?run ?nodes t.sched ~target ~stop:(fun () -> !c >= k) (fun _ -> incr c);
    !c
  end

let count_mappings ?run ?limit t ~target =
  let na = Array.length t.auts in
  match limit with
  | None -> na * count ?run t ~target
  | Some l ->
    if l <= 0 then 0
    else begin
      let c = ref 0 in
      exec ?run t.sched ~target
        ~stop:(fun () -> !c >= l)
        (fun _ -> c := min l (!c + na));
      !c
    end

let exists ?run t ~target =
  let found = ref false in
  exec ?run t.sched ~target ~stop:(fun () -> true) (fun _ -> found := true);
  !found

(* Anchored runs use a queue-BFS order rooted at the anchored pattern
   vertex (so the anchor pins depth 0 and every prefix stays connected)
   and no symmetry constraints: the constrained representative of an
   image need not be the mapping that places the anchor vertex on the
   anchored target, so constraints would wrongly reject anchored hits. *)
let bfs_order p root =
  let n = Graph.n p in
  let order = Array.make n (-1) in
  let placed = Array.make n false in
  let queue = Queue.create () in
  Queue.add root queue;
  placed.(root) <- true;
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!k) <- v;
    incr k;
    Graph.iter_adj p v (fun w ->
        if not placed.(w) then begin
          placed.(w) <- true;
          Queue.add w queue
        end)
  done;
  if !k <> n then invalid_arg "Plan: pattern must be connected";
  order

let anchored_sched t root = schedule_of t.pat (bfs_order t.pat root) []

let iter_anchored ?run t ~target ~anchor f =
  exec ?run ~anchor
    (anchored_sched t (fst anchor))
    ~target
    ~stop:(fun () -> false)
    f

let exists_from ?run t ~target ~anchor =
  let found = ref false in
  exec ?run ~anchor
    (anchored_sched t (fst anchor))
    ~target
    ~stop:(fun () -> true)
    (fun _ -> found := true);
  !found

module Cache = struct
  type plan = t

  (* Keyed by canonical code; each key holds the plans of the structurally
     distinct representations seen under that code (plans name concrete
     vertex ids, so isomorphic renumberings cannot share one). In practice
     a miner grows one representative per class and the bucket is a
     singleton. *)
  type t = (string, plan list ref) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let find (cache : t) ?freq p =
    let key = Canon.key p in
    match Hashtbl.find_opt cache key with
    | None ->
      let pl = compile ?freq p in
      Hashtbl.add cache key (ref [ pl ]);
      pl
    | Some cell -> (
      match List.find_opt (fun pl -> Graph.equal_structure pl.pat p) !cell with
      | Some pl -> pl
      | None ->
        let pl = compile ?freq p in
        cell := pl :: !cell;
        pl)

  let aut_count cache ?freq p = Array.length (find cache ?freq p).auts
end
