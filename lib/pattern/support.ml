open Spm_graph

let plan_for p g = Plan.compile ~freq:(fun l -> Graph.label_freq g l) p

let single_graph ?run ?limit p g =
  let plan = plan_for p g in
  match limit with
  | Some l -> Plan.count_up_to ?run plan ~target:g l
  | None -> Plan.count ?run plan ~target:g

let is_frequent_single ?run p g ~sigma =
  single_graph ?run ~limit:sigma p g >= sigma

let transaction ?run p gs =
  let plan = Plan.compile p in
  List.fold_left
    (fun acc g -> if Plan.exists ?run plan ~target:g then acc + 1 else acc)
    0 gs

let is_frequent_transaction ?run p gs ~sigma =
  let plan = Plan.compile p in
  let rec loop remaining count gs =
    count >= sigma
    ||
    match gs with
    | [] -> false
    | g :: rest ->
      if count + remaining < sigma then false
      else if Plan.exists ?run plan ~target:g then
        loop (remaining - 1) (count + 1) rest
      else loop (remaining - 1) count rest
  in
  loop (List.length gs) 0 gs

(* MNI from the exact-once enumeration: every mapping of an image subgraph
   is one representative composed with one automorphism, so the image sets
   per pattern vertex are recovered by pushing each representative through
   the whole group. The per-position sets are one preallocated byte matrix
   (np x n), not per-call hash tables. *)
let mni ?run p g =
  let np = Graph.n p in
  if np = 0 then 0
  else begin
    let plan = plan_for p g in
    let auts = Plan.automorphisms plan in
    let n = Graph.n g in
    let seen = Bytes.make (np * n) '\000' in
    let counts = Array.make np 0 in
    Plan.enumerate ?run plan ~target:g (fun m ->
        Array.iter
          (fun a ->
            for pv = 0 to np - 1 do
              let idx = (pv * n) + m.(a.(pv)) in
              if Bytes.get seen idx = '\000' then begin
                Bytes.set seen idx '\001';
                counts.(pv) <- counts.(pv) + 1
              end
            done)
          auts);
    Array.fold_left min max_int counts
  end
