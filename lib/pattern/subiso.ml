open Spm_graph

(* Connected search order: a queue BFS from [root], so every vertex after
   the first has an already-placed neighbor when its turn comes.
   @raise Invalid_argument if the pattern is not connected. *)
let bfs_order pattern root =
  let np = Graph.n pattern in
  let order = Array.make np (-1) in
  let placed = Array.make np false in
  let queue = Queue.create () in
  Queue.add root queue;
  placed.(root) <- true;
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!k) <- v;
    incr k;
    Graph.iter_adj pattern v (fun w ->
        if not placed.(w) then begin
          placed.(w) <- true;
          Queue.add w queue
        end)
  done;
  if !k <> np then invalid_arg "Subiso: pattern must be connected";
  order

(* Root at a vertex whose label is rarest in the target; the target's label
   frequencies are cached in the graph's label index, so no per-call
   recount. *)
let search_order pattern target =
  if Graph.n pattern = 0 then invalid_arg "Subiso: empty pattern";
  let rarity v = Graph.label_freq target (Graph.label pattern v) in
  let root = ref 0 in
  Graph.iter_vertices
    (fun v -> if rarity v < rarity !root then root := v)
    pattern;
  bfs_order pattern !root

let run ?anchor ~pattern ~target ~stop f =
  let np = Graph.n pattern in
  let order =
    match anchor with
    | None -> search_order pattern target
    | Some (pv, _) ->
      (* Anchored: the anchored pattern vertex is the root, so the anchor
         pins depth 0 and connectivity of every prefix is preserved. *)
      if np = 0 then invalid_arg "Subiso: empty pattern";
      bfs_order pattern pv
  in
  let map = Array.make np (-1) in
  let used = Hashtbl.create 64 in
  let stopped = ref false in
  let rec place depth =
    if !stopped then ()
    else if depth = np then begin
      f map;
      if stop () then stopped := true
    end
    else begin
      let pv = order.(depth) in
      let lbl = Graph.label pattern pv in
      let mapped_nbrs =
        Graph.fold_adj pattern pv
          (fun w acc -> if map.(w) >= 0 then w :: acc else acc)
          []
      in
      (* Candidates arrive pre-filtered by label (via the label-range runs
         of the CSR), so only injectivity, degree, and adjacency to the
         mapped pattern neighbors remain to check. *)
      let try_candidate tv =
        if
          (not (Hashtbl.mem used tv))
          && Graph.degree target tv >= Graph.degree pattern pv
          && List.for_all (fun w -> Graph.has_edge target map.(w) tv) mapped_nbrs
        then begin
          map.(pv) <- tv;
          Hashtbl.add used tv ();
          place (depth + 1);
          Hashtbl.remove used tv;
          map.(pv) <- -1
        end
      in
      match (anchor, mapped_nbrs) with
      | Some (apv, atv), _ when apv = pv ->
        if Graph.label target atv = lbl then try_candidate atv
      | _, w :: _ ->
        (* Candidates restricted to the label-matching neighbors of one
           mapped image. *)
        Graph.adj_with_label target map.(w) lbl try_candidate
      | _, [] -> Graph.iter_vertices_with_label target lbl try_candidate
    end
  in
  place 0

let iter_mappings ~pattern ~target f =
  run ~pattern ~target ~stop:(fun () -> false) f

let mappings ~pattern ~target =
  let acc = ref [] in
  iter_mappings ~pattern ~target (fun m -> acc := Array.copy m :: !acc);
  List.rev !acc

let exists ~pattern ~target =
  let found = ref false in
  run ~pattern ~target ~stop:(fun () -> true) (fun _ -> found := true);
  !found

let count_mappings ?limit ~pattern ~target () =
  let count = ref 0 in
  let stop () = match limit with Some l -> !count >= l | None -> false in
  run ~pattern ~target ~stop (fun _ -> incr count);
  !count

let iter_mappings_anchored ~pattern ~target ~anchor f =
  run ~anchor ~pattern ~target ~stop:(fun () -> false) f
