open Spm_graph

(* Compatibility veneer over {!Plan}: compile a plan against the target's
   label frequencies and run it. One-shot callers (tests, examples,
   cross-checks) get the legacy entry points; the miners and the server
   compile/cache plans themselves. *)

let plan_for pattern target =
  Plan.compile ~freq:(fun l -> Graph.label_freq target l) pattern

let iter_mappings ~pattern ~target f =
  Plan.iter_all (plan_for pattern target) ~target f

let mappings ~pattern ~target = Plan.all_mappings (plan_for pattern target) ~target

let exists ~pattern ~target = Plan.exists (plan_for pattern target) ~target

let count_mappings ?limit ~pattern ~target () =
  Plan.count_mappings ?limit (plan_for pattern target) ~target

let iter_mappings_anchored ~pattern ~target ~anchor f =
  Plan.iter_anchored (plan_for pattern target) ~target ~anchor f
