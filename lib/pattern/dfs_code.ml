open Spm_graph

type edge = { i : int; j : int; li : int; le : int; lj : int }

type t = edge array

let is_forward e = e.i < e.j

let compare_labels a b =
  let c = Int.compare a.li b.li in
  if c <> 0 then c
  else
    let c = Int.compare a.le b.le in
    if c <> 0 then c else Int.compare a.lj b.lj

(* The gSpan linear order on code edges occurring at the same position. *)
let compare_edge a b =
  match (is_forward a, is_forward b) with
  | true, true ->
    if a.j <> b.j then Int.compare a.j b.j
    else if a.i <> b.i then Int.compare b.i a.i (* deeper origin is smaller *)
    else compare_labels a b
  | false, false ->
    if a.i <> b.i then Int.compare a.i b.i
    else if a.j <> b.j then Int.compare a.j b.j
    else compare_labels a b
  | false, true -> if a.i < b.j then -1 else 1
  | true, false -> if a.j <= b.i then -1 else 1

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec loop k =
    if k >= la && k >= lb then 0
    else if k >= la then -1
    else if k >= lb then 1
    else
      let c = compare_edge a.(k) b.(k) in
      if c <> 0 then c else loop (k + 1)
  in
  loop 0

let equal a b = compare a b = 0

(* --- Minimal code construction ----------------------------------------- *)

(* Level-synchronized greedy search: keep the pool of all partial DFS
   traversals realizing the (unique) minimal code prefix; at each step every
   state proposes its own minimal admissible next edge, the pool keeps only
   the states matching the global minimum, extended. Because a state's own
   minimal choice is always "all backward edges first, then forward from the
   deepest rightmost-path vertex", surviving states are genuine DFS-traversal
   prefixes and thus always completable — greedy is exact. *)

type state = {
  map : int array; (* dfs id -> graph vertex *)
  ids : int array; (* graph vertex -> dfs id, -1 if unmapped *)
  nmapped : int;
  rpath : int list; (* dfs ids, rightmost first, down to 0 *)
  used : bool array; (* per edge index *)
  nused : int;
}

let min_code g =
  let n = Graph.n g in
  let m = Graph.m g in
  if n = 0 || m = 0 then invalid_arg "Dfs_code.min_code: need at least one edge";
  if not (Bfs.is_connected g) then
    invalid_arg "Dfs_code.min_code: pattern must be connected";
  (* Edge indexing for the used-set. *)
  let edge_index = Hashtbl.create (2 * m) in
  let next = ref 0 in
  Graph.iter_edges
    (fun u v ->
      Hashtbl.add edge_index (u, v) !next;
      Hashtbl.add edge_index (v, u) !next;
      incr next)
    g;
  let eid u v = Hashtbl.find edge_index (u, v) in
  let lbl v = Graph.label g v in
  (* Initial states: all ordered adjacent pairs realizing the minimal
     (l_u, l_v). *)
  let best_pair = ref None in
  Graph.iter_edges
    (fun u v ->
      let consider a b =
        let cand = (lbl a, lbl b) in
        match !best_pair with
        | None -> best_pair := Some cand
        | Some p -> if cand < p then best_pair := Some cand
      in
      consider u v;
      consider v u)
    g;
  let la0, lb0 = Option.get !best_pair in
  let init_state u v =
    let map = Array.make n (-1) and ids = Array.make n (-1) in
    map.(0) <- u;
    map.(1) <- v;
    ids.(u) <- 0;
    ids.(v) <- 1;
    let used = Array.make m false in
    used.(eid u v) <- true;
    { map; ids; nmapped = 2; rpath = [ 1; 0 ]; used; nused = 1 }
  in
  let states = ref [] in
  Graph.iter_edges
    (fun u v ->
      if lbl u = la0 && lbl v = lb0 then states := init_state u v :: !states;
      if lbl v = la0 && lbl u = lb0 then states := init_state v u :: !states)
    g;
  let code = ref [ { i = 0; j = 1; li = la0; le = 0; lj = lb0 } ] in
  (* One extension step. Returns (min edge, extended states). *)
  let min_candidates st =
    let r = st.nmapped - 1 in
    let vr = st.map.(r) in
    (* Backward: smallest ancestor id with an unused graph edge to vr.
       st.rpath is rightmost-first; ancestors ascend toward the end, so scan
       from the tail for the smallest id. The parent edge is already used. *)
    let backs =
      List.filter_map
        (fun jd ->
          if jd = r then None
          else
            let vj = st.map.(jd) in
            if Graph.has_edge g vr vj && not st.used.(eid vr vj) then
              Some ({ i = r; j = jd; li = lbl vr; le = 0; lj = lbl vj }, `Back vj)
            else None)
        st.rpath
    in
    match backs with
    | _ :: _ ->
      (* Minimal backward = smallest jd; collect the unique minimum. *)
      let min_e, _ =
        List.fold_left
          (fun (me, mx) (e, x) -> if compare_edge e me < 0 then (e, x) else (me, mx))
          (List.hd backs |> fun (e, x) -> (e, x))
          (List.tl backs)
      in
      let tied = List.filter (fun (e, _) -> compare_edge e min_e = 0) backs in
      Some (min_e, tied)
    | [] ->
      (* Forward from the deepest rightmost-path vertex with an unvisited
         neighbor; among its unvisited neighbors, minimal label wins. *)
      let rec deepest = function
        | [] -> None
        | idd :: rest ->
          let vi = st.map.(idd) in
          let nbrs =
            Graph.fold_adj g vi
              (fun w acc -> if st.ids.(w) < 0 then w :: acc else acc)
              []
          in
          if nbrs = [] then deepest rest
          else begin
            let minl =
              List.fold_left (fun acc w -> min acc (lbl w)) max_int nbrs
            in
            let targets = List.filter (fun w -> lbl w = minl) nbrs in
            let e =
              { i = idd; j = st.nmapped; li = lbl vi; le = 0; lj = minl }
            in
            Some (e, List.map (fun w -> (e, `Fwd (idd, w))) targets)
          end
      in
      deepest st.rpath
  in
  let extend st action =
    match action with
    | `Back vj ->
      let used = Array.copy st.used in
      let r = st.nmapped - 1 in
      used.(eid st.map.(r) vj) <- true;
      { st with used; nused = st.nused + 1 }
    | `Fwd (idd, w) ->
      let map = Array.copy st.map and ids = Array.copy st.ids in
      let used = Array.copy st.used in
      let j = st.nmapped in
      map.(j) <- w;
      ids.(w) <- j;
      used.(eid st.map.(idd) w) <- true;
      (* New rightmost path: j, then idd and its ancestors. *)
      let rec chop = function
        | [] -> []
        | x :: rest -> if x = idd then x :: rest else chop rest
      in
      {
        map;
        ids;
        nmapped = j + 1;
        rpath = j :: chop st.rpath;
        used;
        nused = st.nused + 1;
      }
  in
  let rec loop () =
    let some = List.hd !states in
    if some.nused = m then ()
    else begin
      let proposals =
        List.filter_map
          (fun st ->
            match min_candidates st with
            | None -> None
            | Some (e, tied) -> Some (st, e, tied))
          !states
      in
      match proposals with
      | [] -> invalid_arg "Dfs_code.min_code: internal: dead search"
      | (_, e0, _) :: rest ->
        let gmin =
          List.fold_left
            (fun acc (_, e, _) -> if compare_edge e acc < 0 then e else acc)
            e0 rest
        in
        let next_states =
          List.concat_map
            (fun (st, e, tied) ->
              if compare_edge e gmin = 0 then
                List.map (fun (_, action) -> extend st action) tied
              else [])
            proposals
        in
        code := gmin :: !code;
        states := next_states;
        loop ()
    end
  in
  loop ();
  Array.of_list (List.rev !code)

(* --- Code utilities ----------------------------------------------------- *)

let graph_of_code (code : t) =
  if Array.length code = 0 then invalid_arg "Dfs_code.graph_of_code: empty";
  let nv =
    Array.fold_left (fun acc e -> max acc (max e.i e.j)) 0 code + 1
  in
  let labels = Array.make nv (-1) in
  let set v l =
    if labels.(v) >= 0 && labels.(v) <> l then
      invalid_arg "Dfs_code.graph_of_code: inconsistent labels";
    labels.(v) <- l
  in
  let es =
    Array.to_list code
    |> List.map (fun e ->
           set e.i e.li;
           set e.j e.lj;
           (min e.i e.j, max e.i e.j))
  in
  if Array.exists (fun l -> l < 0) labels then
    invalid_arg "Dfs_code.graph_of_code: unlabeled vertex";
  Graph.Builder.of_edges ~labels es

let is_min code =
  Array.length code > 0 && equal code (min_code (graph_of_code code))

let rightmost_path (code : t) =
  (* Rebuild the DFS-tree parent relation from forward edges, then climb from
     the rightmost (max id) vertex. *)
  let nv =
    Array.fold_left (fun acc e -> max acc (max e.i e.j)) 0 code + 1
  in
  let parent = Array.make nv (-1) in
  Array.iter (fun e -> if is_forward e then parent.(e.j) <- e.i) code;
  let rec climb v acc = if v < 0 then acc else climb parent.(v) (v :: acc) in
  List.rev (climb (nv - 1) [])

let backward_slots (code : t) =
  match Array.length code with
  | 0 -> []
  | _ ->
    let rp = rightmost_path code in
    let r = List.hd rp in
    let present = Hashtbl.create 16 in
    Array.iter
      (fun e ->
        Hashtbl.replace present (min e.i e.j, max e.i e.j) ())
      code;
    List.filter_map
      (fun jd ->
        if jd = r then None
        else if Hashtbl.mem present (min r jd, max r jd) then None
        else Some (r, jd))
      (List.tl rp)
    |> List.sort Stdlib.compare

let forward_slots (code : t) =
  match Array.length code with 0 -> [ 0 ] | _ -> rightmost_path code

let to_string (code : t) =
  let buf = Buffer.create (Array.length code * 12) in
  Array.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "%d,%d,%d,%d,%d;" e.i e.j e.li e.le e.lj))
    code;
  Buffer.contents buf

let pp ppf code =
  Format.fprintf ppf "@[<h>";
  Array.iter
    (fun e -> Format.fprintf ppf "(%d,%d,%d,%d,%d)" e.i e.j e.li e.le e.lj)
    code;
  Format.fprintf ppf "@]"
