open Spm_graph

type key = int array

let key_of_mapping ~data_n ~pattern m =
  let edges = Graph.edges pattern in
  let packed =
    List.map
      (fun (pu, pv) ->
        let u = m.(pu) and v = m.(pv) in
        let u, v = if u < v then (u, v) else (v, u) in
        (u * data_n) + v)
      edges
  in
  let a = Array.of_list packed in
  Array.sort Int.compare a;
  a

let compare_key (a : key) (b : key) = compare a b
let equal_key (a : key) (b : key) = a = b
let hash_key (k : key) = Hashtbl.hash k
