(** Subgraph-isomorphism search (VF2-flavored backtracking).

    An embedding of a pattern P in a data graph G is, per the paper (§2), a
    subgraph G' of G isomorphic to P — i.e. the *image* of an injective,
    label-preserving, edge-preserving (non-induced) mapping. This module
    enumerates the mappings; {!Embedding} normalizes mappings to subgraphs.

    The matcher orders pattern vertices by a connected queue-BFS search
    order rooted at the vertex whose label is rarest in the target (cached
    label frequencies — no per-call recount). Candidates are drawn directly
    from the target's label-filtered structures: the label-range run of a
    mapped neighbor's image ({!Spm_graph.Graph.adj_with_label}) once any
    pattern neighbor is mapped, or the graph-level label index for the root.
    Only injectivity, degree, and adjacency to the mapped pattern neighbors
    remain to check per candidate. *)

val iter_mappings :
  pattern:Pattern.t -> target:Spm_graph.Graph.t -> (int array -> unit) -> unit
(** Call the function on every injective label/edge-preserving mapping
    (pattern vertex index -> target vertex id). The array is reused between
    calls — copy if retained. The pattern must be connected and non-empty. *)

val mappings : pattern:Pattern.t -> target:Spm_graph.Graph.t -> int array list

val exists : pattern:Pattern.t -> target:Spm_graph.Graph.t -> bool
(** Early-exits at the first mapping. *)

val count_mappings :
  ?limit:int -> pattern:Pattern.t -> target:Spm_graph.Graph.t -> unit -> int
(** Number of mappings, stopping at [limit] if given. *)

val iter_mappings_anchored :
  pattern:Pattern.t ->
  target:Spm_graph.Graph.t ->
  anchor:int * int ->
  (int array -> unit) ->
  unit
(** Mappings with pattern vertex [fst anchor] pinned to target vertex
    [snd anchor]. The search order is a queue BFS rooted at the anchored
    pattern vertex.
    @raise Invalid_argument if the pattern is disconnected or empty. *)
