(** Subgraph-isomorphism search — legacy entry points over {!Plan}.

    An embedding of a pattern P in a data graph G is, per the paper (§2), a
    subgraph G' of G isomorphic to P — i.e. the *image* of an injective,
    label-preserving, edge-preserving (non-induced) mapping. Since the
    plan refactor every call here compiles a {!Plan} against the target's
    label frequencies and runs its executor; the mapping-level functions
    expand each symmetry-broken representative through the automorphism
    group, so the full mapping set is produced without any backtracking
    redundancy. Callers on hot paths (miners, server) should compile and
    reuse plans directly. *)

val iter_mappings :
  pattern:Pattern.t -> target:Spm_graph.Graph.t -> (int array -> unit) -> unit
(** Call the function on every injective label/edge-preserving mapping
    (pattern vertex index -> target vertex id). The array is reused between
    calls — copy if retained. The pattern must be connected and non-empty. *)

val mappings : pattern:Pattern.t -> target:Spm_graph.Graph.t -> int array list

val exists : pattern:Pattern.t -> target:Spm_graph.Graph.t -> bool
(** Early-exits at the first mapping. *)

val count_mappings :
  ?limit:int -> pattern:Pattern.t -> target:Spm_graph.Graph.t -> unit -> int
(** Number of mappings, stopping at [limit] if given. *)

val iter_mappings_anchored :
  pattern:Pattern.t ->
  target:Spm_graph.Graph.t ->
  anchor:int * int ->
  (int array -> unit) ->
  unit
(** Mappings with pattern vertex [fst anchor] pinned to target vertex
    [snd anchor]. The search order is a queue BFS rooted at the anchored
    pattern vertex.
    @raise Invalid_argument if the pattern is disconnected or empty. *)
