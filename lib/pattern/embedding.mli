(** Embedding identity as image subgraphs.

    The paper defines E[P] as the set of *subgraphs* of G isomorphic to P
    (§2), so two mappings whose images are the same edge set count once.
    This module gives mappings a canonical image key, used by tests and
    cross-checks to compare enumerations; production counting no longer
    deduplicates — {!Plan}'s symmetry-broken executor visits each image
    subgraph exactly once, so the old key-set/dedup machinery is gone. *)

type key
(** Canonical identity of an embedding's image subgraph. *)

val key_of_mapping : data_n:int -> pattern:Pattern.t -> int array -> key
(** Key of the image of a mapping: the sorted image edge set, each edge packed
    as [u * data_n + v] with [u < v]. Requires [data_n * data_n] within native
    int range (always true for graphs that fit in memory). *)

val compare_key : key -> key -> int

val equal_key : key -> key -> bool

val hash_key : key -> int
