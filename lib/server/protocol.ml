module Codec = Spm_store.Codec
module Store = Spm_store.Store
module Run = Spm_engine.Run

(* v2: response envelopes carry a run status byte, and the Progress/Cancel
   requests observe and stop a running mine. The version bump was
   deliberate: a v1 client would mis-decode the widened envelope.

   v3: Update/Subscribe for evolving graphs. Every v2 frame layout is
   unchanged, so v3 is negotiated (the server accepts both greetings and
   echoes the one it got) rather than gated: a v2 client keeps working,
   it just cannot send the v3-only verbs.

   v4: the Partial response status of the sharded serving tier — status
   byte 3 followed by the names of the unreachable shards. Requests are
   untouched and every pre-v4 response byte sequence is unchanged, so v4 is
   negotiated like v3 was; a router only emits Partial envelopes on
   connections that greeted with v4 (older clients get a plain Error).

   v5: the constraint-family field of Mine. A skinny Mine still encodes to
   the v2 tag-2 bytes (so every pre-v5 request byte sequence is unchanged
   and cache keys survive); a neighborhood Mine uses the new tag 11, which
   only a v5 connection may carry — older servers answer it with a clean
   protocol error rather than a mis-decode. *)
let version = 5
let min_version = 2
let handshake_of_version v = Printf.sprintf "SKNYSRV%d" v
let handshake = handshake_of_version version
let max_frame = 64 * 1024 * 1024
let default_port = 7707

type mine_params = {
  l : int;
  delta : int;
  sigma : int;
  closed_growth : bool;
  family : Spm_core.Constraints.family;
}

type lookup_params = {
  min_support : int option;
  max_support : int option;
  length : int option;
  labels : Spm_graph.Label.t list option;
}

type update_params = { edits : Spm_graph.Delta.edit list }

type request =
  | Ping
  | Load_store of string
  | Mine of mine_params
  | Lookup of lookup_params
  | Contains of Spm_graph.Graph.t
  | Stats
  | Shutdown
  | Progress
  | Cancel
  | Update of update_params
  | Subscribe

(* Versioned request records with defaults: the one construction surface
   for params records, so future fields extend these constructors instead
   of every call site. *)
let mine_params ?(closed_growth = false)
    ?(family = Spm_core.Constraints.Skinny) ~l ~delta ~sigma () =
  { l; delta; sigma; closed_growth; family }

let lookup_params ?min_support ?max_support ?length ?labels () =
  { min_support; max_support; length; labels }

let update_params edits = { edits }

let request_version = function
  | Mine { family = Spm_core.Constraints.Neighborhood _; _ } -> 5
  | Ping | Load_store _ | Mine _ | Lookup _ | Contains _ | Stats | Shutdown
  | Progress | Cancel ->
    2
  | Update _ | Subscribe -> 3

type server_stats = {
  requests : int;
  cache_hits : int;
  errors : int;
  store_patterns : int;
  uptime_seconds : float;
  service_seconds : float;
}

type mine_progress = {
  running : bool;
  candidates : int;
  emitted : int;
  level : int;
  elapsed_seconds : float;
}

type update_reply = {
  new_version : int;
  added : Spm_core.Skinny_mine.mined list;
  removed : Spm_core.Skinny_mine.mined list;
  repaired : int;
  clusters : int;
}

type payload =
  | Pong
  | Loaded of int
  | Patterns of Spm_core.Skinny_mine.mined list
  | Stats_reply of server_stats
  | Bye
  | Error of string
  | Progress_reply of mine_progress
  | Cancel_ack of bool
  | Update_reply of update_reply
  | Subscribed of int

type response = {
  cache_hit : bool;
  seconds : float;
  status : Run.status;
  unreachable : string list;
      (* v4: shards that could not contribute to this answer (the router's
         Partial status). Empty everywhere else — and the empty list encodes
         to the plain pre-v4 status byte, so full answers are byte-identical
         to a single-process server's. *)
  payload : payload;
}

let response ?(cache_hit = false) ?(seconds = 0.0) ?(status = Run.Ok)
    ?(unreachable = []) payload =
  { cache_hit; seconds; status; unreachable; payload }

let cacheable = function
  | Mine _ | Lookup _ | Contains _ -> true
  | Ping | Load_store _ | Stats | Shutdown | Progress | Cancel | Update _
  | Subscribe ->
    false

(* --- request codec --- *)

let encode_request req =
  let w = Codec.W.create () in
  (match req with
  | Ping -> Codec.W.byte w 0
  | Load_store path ->
    Codec.W.byte w 1;
    Codec.W.string w path
  | Mine { l; delta; sigma; closed_growth; family = Spm_core.Constraints.Skinny }
    ->
    Codec.W.byte w 2;
    Codec.W.uint w l;
    Codec.W.uint w delta;
    Codec.W.uint w sigma;
    Codec.W.bool w closed_growth
  | Mine
      {
        l;
        delta;
        sigma;
        closed_growth;
        family = Spm_core.Constraints.Neighborhood { center };
      } ->
    (* v5: the neighborhood Mine. [delta] carries the radius r and [l] is 0
       by construction; both still travel so the codec stays symmetric. *)
    Codec.W.byte w 11;
    Codec.W.uint w l;
    Codec.W.uint w delta;
    Codec.W.uint w sigma;
    Codec.W.bool w closed_growth;
    Codec.W.option w Codec.W.uint center
  | Lookup { min_support; max_support; length; labels } ->
    Codec.W.byte w 3;
    Codec.W.option w Codec.W.uint min_support;
    Codec.W.option w Codec.W.uint max_support;
    Codec.W.option w Codec.W.uint length;
    Codec.W.option w (fun w ls -> Codec.W.list w Codec.W.uint ls) labels
  | Contains g ->
    Codec.W.byte w 4;
    Store.write_graph w g
  | Stats -> Codec.W.byte w 5
  | Shutdown -> Codec.W.byte w 6
  | Progress -> Codec.W.byte w 7
  | Cancel -> Codec.W.byte w 8
  | Update { edits } ->
    Codec.W.byte w 9;
    Codec.W.list w Store.write_edit edits
  | Subscribe -> Codec.W.byte w 10);
  Codec.W.contents w

let decode_request s =
  let r = Codec.R.of_string s in
  match Codec.R.byte r with
  | 0 -> Ping
  | 1 -> Load_store (Codec.R.string r)
  | 2 ->
    let l = Codec.R.uint r in
    let delta = Codec.R.uint r in
    let sigma = Codec.R.uint r in
    let closed_growth = Codec.R.bool r in
    Mine { l; delta; sigma; closed_growth; family = Spm_core.Constraints.Skinny }
  | 3 ->
    let min_support = Codec.R.option r Codec.R.uint in
    let max_support = Codec.R.option r Codec.R.uint in
    let length = Codec.R.option r Codec.R.uint in
    let labels = Codec.R.option r (fun r -> Codec.R.list r Codec.R.uint) in
    Lookup { min_support; max_support; length; labels }
  | 4 -> Contains (Store.read_graph r)
  | 5 -> Stats
  | 6 -> Shutdown
  | 7 -> Progress
  | 8 -> Cancel
  | 9 -> Update { edits = Codec.R.list r Store.read_edit }
  | 10 -> Subscribe
  | 11 ->
    let l = Codec.R.uint r in
    let delta = Codec.R.uint r in
    let sigma = Codec.R.uint r in
    let closed_growth = Codec.R.bool r in
    let center = Codec.R.option r Codec.R.uint in
    Mine
      {
        l;
        delta;
        sigma;
        closed_growth;
        family = Spm_core.Constraints.Neighborhood { center };
      }
  | t -> raise (Codec.Corrupt (Printf.sprintf "unknown request tag %d" t))

(* --- response codec --- *)

let encode_payload w = function
  | Pong -> Codec.W.byte w 0
  | Loaded n ->
    Codec.W.byte w 1;
    Codec.W.uint w n
  | Patterns ms ->
    Codec.W.byte w 2;
    Codec.W.list w Store.write_mined ms
  | Stats_reply s ->
    Codec.W.byte w 3;
    Codec.W.uint w s.requests;
    Codec.W.uint w s.cache_hits;
    Codec.W.uint w s.errors;
    Codec.W.uint w s.store_patterns;
    Codec.W.float w s.uptime_seconds;
    Codec.W.float w s.service_seconds
  | Bye -> Codec.W.byte w 4
  | Error msg ->
    Codec.W.byte w 5;
    Codec.W.string w msg
  | Progress_reply p ->
    Codec.W.byte w 6;
    Codec.W.bool w p.running;
    Codec.W.uint w p.candidates;
    Codec.W.uint w p.emitted;
    Codec.W.uint w p.level;
    Codec.W.float w p.elapsed_seconds
  | Cancel_ack was_running ->
    Codec.W.byte w 7;
    Codec.W.bool w was_running
  | Update_reply u ->
    Codec.W.byte w 8;
    Codec.W.uint w u.new_version;
    Codec.W.list w Store.write_mined u.added;
    Codec.W.list w Store.write_mined u.removed;
    Codec.W.uint w u.repaired;
    Codec.W.uint w u.clusters
  | Subscribed v ->
    Codec.W.byte w 9;
    Codec.W.uint w v

let decode_payload r =
  match Codec.R.byte r with
  | 0 -> Pong
  | 1 -> Loaded (Codec.R.uint r)
  | 2 -> Patterns (Codec.R.list r Store.read_mined)
  | 3 ->
    let requests = Codec.R.uint r in
    let cache_hits = Codec.R.uint r in
    let errors = Codec.R.uint r in
    let store_patterns = Codec.R.uint r in
    let uptime_seconds = Codec.R.float r in
    let service_seconds = Codec.R.float r in
    Stats_reply
      { requests; cache_hits; errors; store_patterns; uptime_seconds;
        service_seconds }
  | 4 -> Bye
  | 5 -> Error (Codec.R.string r)
  | 6 ->
    let running = Codec.R.bool r in
    let candidates = Codec.R.uint r in
    let emitted = Codec.R.uint r in
    let level = Codec.R.uint r in
    let elapsed_seconds = Codec.R.float r in
    Progress_reply { running; candidates; emitted; level; elapsed_seconds }
  | 7 -> Cancel_ack (Codec.R.bool r)
  | 8 ->
    let new_version = Codec.R.uint r in
    let added = Codec.R.list r Store.read_mined in
    let removed = Codec.R.list r Store.read_mined in
    let repaired = Codec.R.uint r in
    let clusters = Codec.R.uint r in
    Update_reply { new_version; added; removed; repaired; clusters }
  | 9 -> Subscribed (Codec.R.uint r)
  | t -> raise (Codec.Corrupt (Printf.sprintf "unknown payload tag %d" t))

let status_byte = function Run.Ok -> 0 | Run.Timeout -> 1 | Run.Cancelled -> 2

let encode_response resp =
  let w = Codec.W.create () in
  Codec.W.bool w resp.cache_hit;
  Codec.W.float w resp.seconds;
  (* Status byte 3 (v4) is "Partial": an Ok answer missing the named
     shards' contributions, the shard list spliced in before the payload.
     An empty list uses the plain status byte, keeping every pre-v4
     response encoding unchanged. *)
  (match resp.unreachable with
  | [] -> Codec.W.byte w (status_byte resp.status)
  | shards ->
    Codec.W.byte w 3;
    Codec.W.list w Codec.W.string shards);
  encode_payload w resp.payload;
  Codec.W.contents w

let decode_response s =
  let r = Codec.R.of_string s in
  let cache_hit = Codec.R.bool r in
  let seconds = Codec.R.float r in
  let status, unreachable =
    match Codec.R.byte r with
    | 0 -> (Run.Ok, [])
    | 1 -> (Run.Timeout, [])
    | 2 -> (Run.Cancelled, [])
    | 3 -> (Run.Ok, Codec.R.list r Codec.R.string)
    | b -> raise (Codec.Corrupt (Printf.sprintf "unknown status byte %d" b))
  in
  let payload = decode_payload r in
  { cache_hit; seconds; status; unreachable; payload }

(* --- framing --- *)

let really_write fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then
      let n = Unix.write fd b off (len - off) in
      go (off + n)
  in
  go 0

let really_read fd n =
  let b = Bytes.create n in
  let rec go off =
    if off >= n then Some (Bytes.unsafe_to_string b)
    else
      match Unix.read fd b off (n - off) with
      | 0 ->
        if off = 0 then None
        else
          raise
            (Codec.Corrupt
               (Printf.sprintf "connection closed mid-frame (%d of %d bytes)" off n))
      | k -> go (off + k)
  in
  go 0

(* Negotiation: the client greets with the newest version it speaks; the
   server echoes any greeting in [min_version, version] verbatim and
   remembers the agreed version for the connection. An old server closes on
   an unknown greeting, so a v3 client that gets no echo reconnects and
   greets with v2 ({!Client.connect} does this). *)
let accept_handshake fd =
  let rec find v =
    if v < min_version then None
    else Some (v, handshake_of_version v)
  and accept got v =
    match find v with
    | None -> None
    | Some (v, hs) ->
      if String.equal got hs then begin
        really_write fd hs;
        Some v
      end
      else accept got (v - 1)
  in
  match really_read fd (String.length handshake) with
  | Some got -> accept got version
  | None -> None
  | exception Codec.Corrupt _ -> None

let client_handshake ?(version = version) fd =
  if version < min_version then
    invalid_arg
      (Printf.sprintf "Protocol.client_handshake: version %d below %d" version
         min_version);
  let hs = handshake_of_version version in
  really_write fd hs;
  match really_read fd (String.length hs) with
  | Some got when String.equal got hs -> ()
  | Some got -> raise (Codec.Corrupt (Printf.sprintf "bad handshake echo %S" got))
  | None -> raise (Codec.Corrupt "server closed the connection during handshake")

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then
    raise (Codec.Corrupt (Printf.sprintf "frame too large to send: %d bytes" len));
  (* Header and payload go out in ONE write: a separate 4-byte header
     write leaves a small unacked segment in flight, and Nagle then holds
     the payload back for the peer's delayed ACK — a ~40ms stall per frame
     on loopback request-response traffic. *)
  let frame = Bytes.create (4 + len) in
  Bytes.set_uint8 frame 0 ((len lsr 24) land 0xFF);
  Bytes.set_uint8 frame 1 ((len lsr 16) land 0xFF);
  Bytes.set_uint8 frame 2 ((len lsr 8) land 0xFF);
  Bytes.set_uint8 frame 3 (len land 0xFF);
  Bytes.blit_string payload 0 frame 4 len;
  really_write fd (Bytes.unsafe_to_string frame)

let read_frame fd =
  match really_read fd 4 with
  | None -> None
  | Some hdr ->
    let len =
      (Char.code hdr.[0] lsl 24)
      lor (Char.code hdr.[1] lsl 16)
      lor (Char.code hdr.[2] lsl 8)
      lor Char.code hdr.[3]
    in
    if len > max_frame then
      raise
        (Codec.Corrupt
           (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len
              max_frame));
    (match really_read fd len with
    | Some payload -> Some payload
    | None ->
      raise (Codec.Corrupt "connection closed between frame header and payload"))
