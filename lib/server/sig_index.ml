module Graph = Spm_graph.Graph
module Skinny_mine = Spm_core.Skinny_mine
module Path_pattern = Spm_core.Path_pattern
module Pool = Spm_engine.Pool

type entry = {
  mined : Skinny_mine.mined;
  label_counts : (int * int) array;  (* sorted (label, count) multiset *)
  n_vertices : int;
  n_edges : int;
  diam_len : int;
  plan : Spm_pattern.Plan.t;
      (* compiled once at build; immutable, shared across pool tasks *)
}

type t = {
  entries : entry array;
  by_signature : (string, int list) Hashtbl.t;  (* ascending entry indices *)
  by_diameter : (int, int list) Hashtbl.t;
}

let label_counts_of g =
  let tbl = Hashtbl.create 16 in
  Graph.iter_vertices
    (fun v ->
      let l = Graph.label g v in
      Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
    g;
  let a = Hashtbl.fold (fun l c acc -> (l, c) :: acc) tbl [] |> Array.of_list in
  Array.sort compare a;
  a

let signature_of_counts counts =
  String.concat ","
    (Array.to_list (Array.map (fun (l, c) -> Printf.sprintf "%d:%d" l c) counts))

let signature p = signature_of_counts (label_counts_of p)
let label_counts = label_counts_of

let push tbl key idx =
  Hashtbl.replace tbl key (idx :: Option.value ~default:[] (Hashtbl.find_opt tbl key))

let build mined_list =
  let entries =
    Array.of_list
      (List.map
         (fun (m : Skinny_mine.mined) ->
           {
             mined = m;
             label_counts = label_counts_of m.pattern;
             n_vertices = Graph.n m.pattern;
             n_edges = Graph.m m.pattern;
             diam_len = Path_pattern.length m.diameter_labels;
             plan = Spm_pattern.Plan.compile m.pattern;
           })
         mined_list)
  in
  let by_signature = Hashtbl.create (Array.length entries) in
  let by_diameter = Hashtbl.create 16 in
  (* Build in reverse so each bucket ends up in ascending index order. *)
  for i = Array.length entries - 1 downto 0 do
    push by_signature (signature_of_counts entries.(i).label_counts) i;
    push by_diameter entries.(i).diam_len i
  done;
  { entries; by_signature; by_diameter }

let size t = Array.length t.entries
let patterns t = Array.to_list (Array.map (fun e -> e.mined) t.entries)

let bucket tbl key = Option.value ~default:[] (Hashtbl.find_opt tbl key)

let normalize_multiset labels =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun l ->
      Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
    labels;
  let a = Hashtbl.fold (fun l c acc -> (l, c) :: acc) tbl [] |> Array.of_list in
  Array.sort compare a;
  a

let lookup ?min_support ?max_support ?length ?labels t =
  (* Start from the narrowest indexed access path, then filter. *)
  let indices =
    match (labels, length) with
    | Some ls, _ ->
      bucket t.by_signature (signature_of_counts (normalize_multiset ls))
    | None, Some l -> bucket t.by_diameter l
    | None, None -> List.init (Array.length t.entries) Fun.id
  in
  List.filter_map
    (fun i ->
      let e = t.entries.(i) in
      let ok =
        (match length with Some l -> e.diam_len = l | None -> true)
        && (match min_support with
           | Some s -> e.mined.support >= s
           | None -> true)
        && (match max_support with
           | Some s -> e.mined.support <= s
           | None -> true)
      in
      if ok then Some e.mined else None)
    indices

let dominated counts g =
  Array.for_all (fun (l, c) -> Graph.label_freq g l >= c) counts

let candidate_entries t g =
  let n = Graph.n g and m = Graph.m g in
  Array.to_list t.entries
  |> List.filter (fun e ->
         e.n_vertices <= n && e.n_edges <= m && dominated e.label_counts g)

let containment_candidates t g =
  List.map (fun e -> e.mined) (candidate_entries t g)

let contained_in ?(pool = Pool.serial) t g =
  let candidates = candidate_entries t g in
  let hits =
    Pool.map_list pool
      (fun e ->
        if Spm_pattern.Plan.exists e.plan ~target:g then Some e.mined else None)
      candidates
  in
  List.filter_map Fun.id hits
