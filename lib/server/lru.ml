type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* toward most-recently-used *)
  mutable next : ('k, 'v) node option;  (* toward least-recently-used *)
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create (2 * capacity); head = None; tail = None }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  let already_head = match t.head with Some h -> h == n | None -> false in
  if not already_head then begin
    unlink t n;
    push_front t n
  end

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
    promote t n;
    Some n.value

let mem t k = Hashtbl.mem t.table k

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table n.key

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
    n.value <- v;
    promote t n
  | None ->
    if length t >= t.capacity then evict_lru t;
    let n = { key = k; value = v; prev = None; next = None } in
    push_front t n;
    Hashtbl.replace t.table k n

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
