(** The query planner's index over a mined pattern set: label-signature and
    diameter-key lookup structures that prune candidates cheaply before the
    server falls back to {!Spm_pattern.Plan} matching.

    Two access paths:
    - {b label signature}: the sorted (label, count) multiset of a pattern's
      vertices, as an interned string key — equality lookups are O(1), and
      containment queries prune any pattern whose signature is not dominated
      by the target graph's label frequencies (a necessary condition for a
      subgraph-isomorphic image to exist).
    - {b diameter key}: the diameter length l of the mined pattern — the
      constraint the whole system is organized around, so by-length lookups
      are table reads. *)

type t

val build : Spm_core.Skinny_mine.mined list -> t
(** Index the mined set; the input order is remembered and every query
    returns patterns in that order (stable, deterministic responses). *)

val size : t -> int

val patterns : t -> Spm_core.Skinny_mine.mined list

val signature : Spm_pattern.Pattern.t -> string
(** The label-signature key itself: sorted ["label:count"] pairs. Exposed
    for tests and for client-side signature computation. *)

val label_counts : Spm_pattern.Pattern.t -> (int * int) array
(** The sorted (label, count) multiset behind {!signature} — the raw form
    the cluster router's shard summaries aggregate and compare. *)

val normalize_multiset : Spm_graph.Label.t list -> (int * int) array
(** A query's label multiset in the same sorted (label, count) form. *)

val signature_of_counts : (int * int) array -> string
(** Interned string key of a sorted (label, count) multiset. *)

val dominated : (int * int) array -> Spm_graph.Graph.t -> bool
(** Whether the target graph's label frequencies dominate the multiset — the
    necessary condition for any pattern with that signature to embed, shared
    by {!containment_candidates} and the router's shard pruning. *)

val lookup :
  ?min_support:int ->
  ?max_support:int ->
  ?length:int ->
  ?labels:Spm_graph.Label.t list ->
  t ->
  Spm_core.Skinny_mine.mined list
(** Patterns satisfying every given filter: support bounds, diameter length
    (served from the diameter-key table), and exact label multiset (served
    from the signature table; the list is a multiset, order-insensitive). *)

val containment_candidates :
  t -> Spm_graph.Graph.t -> Spm_core.Skinny_mine.mined list
(** Patterns that could embed in the given graph: vertex/edge counts no
    larger than the target's and label signature dominated by the target's
    label frequencies. Everything returned still needs a {!Subiso} check;
    everything pruned is definitely absent. *)

val contained_in :
  ?pool:Spm_engine.Pool.t ->
  t ->
  Spm_graph.Graph.t ->
  Spm_core.Skinny_mine.mined list
(** The mined patterns with at least one embedding in the given graph:
    {!containment_candidates} then a {!Spm_pattern.Plan.exists} check per
    survivor — each entry's plan is compiled once at {!build} time and
    shared read-only — fanned out on [pool] (default serial). *)
