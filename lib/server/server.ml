module Graph = Spm_graph.Graph
module Skinny_mine = Spm_core.Skinny_mine
module Store = Spm_store.Store
module Codec = Spm_store.Codec
module Pool = Spm_engine.Pool
module Clock = Spm_engine.Clock
module Run = Spm_engine.Run

type t = {
  jobs : int;
  mine_timeout : float option;
  lock : Mutex.t;
  mine_lock : Mutex.t;
      (* Serializes actual mining, which is the only long-running request.
         Held WITHOUT [lock], so Progress/Cancel (and the planner queries)
         stay responsive while a mine is in flight. Lock order: a thread
         holding [mine_lock] may take [lock]; never the reverse. *)
  mutable current : Run.t option;  (* the in-flight mine, if any; under [lock] *)
  cache : (string, Protocol.payload) Lru.t;
  mutable graph : Graph.t option;
  mutable index : Sig_index.t;
  mutable store : Store.pattern_store option;
  mutable requests : int;
  mutable cache_hits : int;
  mutable errors : int;
  mutable service_seconds : float;
  started : float;
  mutable stop : bool;
  mutable listen_addr : Unix.sockaddr option;
}

let create ?(jobs = 1) ?(cache_capacity = 128) ?mine_timeout () =
  {
    jobs = max 1 jobs;
    mine_timeout;
    lock = Mutex.create ();
    mine_lock = Mutex.create ();
    current = None;
    cache = Lru.create ~capacity:cache_capacity;
    graph = None;
    index = Sig_index.build [];
    store = None;
    requests = 0;
    cache_hits = 0;
    errors = 0;
    service_seconds = 0.0;
    started = Clock.now ();
    stop = false;
    listen_addr = None;
  }

let jobs t = t.jobs
let mine_timeout t = t.mine_timeout

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let install_store t s =
  t.store <- Some s;
  t.graph <- Some s.Store.graph;
  t.index <- Sig_index.build s.Store.patterns;
  Lru.clear t.cache

let set_store t s = locked t (fun () -> install_store t s)

let set_graph t g =
  locked t (fun () ->
      t.store <- None;
      t.graph <- Some g;
      t.index <- Sig_index.build [];
      Lru.clear t.cache)

let stopping t = t.stop

let stats_unlocked t =
  {
    Protocol.requests = t.requests;
    cache_hits = t.cache_hits;
    errors = t.errors;
    store_patterns = Sig_index.size t.index;
    uptime_seconds = Clock.now () -. t.started;
    service_seconds = t.service_seconds;
  }

let stats t = locked t (fun () -> stats_unlocked t)

let with_jobs_pool jobs f =
  if jobs <= 1 then f Pool.serial else Pool.with_pool ~jobs f

(* Wake the accept loop after [Shutdown]: a throwaway connection to our own
   listening address makes the blocked [accept] return, and the loop then
   observes [t.stop]. *)
let wake_listener t =
  match t.listen_addr with
  | None -> ()
  | Some addr -> (
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ -> ( try Unix.close fd with _ -> ()))

(* Dispatch outcome of the state-locked phase: everything except an actual
   mine completes in there. *)
type dispatch =
  | Done of Run.status * Protocol.payload
  | Need_mine of Protocol.mine_params * Graph.t

let dispatch_unlocked t req : dispatch =
  match (req : Protocol.request) with
  | Ping -> Done (Run.Ok, Pong)
  | Load_store path ->
    let s = Store.load path in
    install_store t s;
    Done (Run.Ok, Loaded (List.length s.Store.patterns))
  | Mine { l; delta; sigma; closed_growth } -> (
    let matches_store =
      match t.store with
      | Some s ->
        (* An incomplete store (flushed from a timed-out mine) is a prefix,
           not the answer set — never let it satisfy a Mine request. *)
        if s.Store.complete && s.Store.l = l && s.Store.delta = delta
           && s.Store.sigma = sigma
           && s.Store.closed_growth = closed_growth
        then Some s.Store.patterns
        else None
      | None -> None
    in
    match matches_store with
    | Some patterns ->
      Done (Run.Ok, Patterns patterns) (* resident store: no re-mining *)
    | None -> (
      match t.graph with
      | None -> Done (Run.Ok, Error "no graph loaded (send Load_store first)")
      | Some g -> Need_mine ({ l; delta; sigma; closed_growth }, g)))
  | Lookup { min_support; max_support; length; labels } ->
    Done
      ( Run.Ok,
        Patterns
          (Sig_index.lookup ?min_support ?max_support ?length ?labels t.index)
      )
  | Contains g ->
    Done
      ( Run.Ok,
        Patterns
          (with_jobs_pool t.jobs (fun pool ->
               Sig_index.contained_in ~pool t.index g)) )
  | Stats -> Done (Run.Ok, Stats_reply (stats_unlocked t))
  | Shutdown ->
    t.stop <- true;
    (* Stop an in-flight mine too, so [serve] can join its connection
       thread promptly instead of waiting out the full search. *)
    Option.iter Run.cancel t.current;
    wake_listener t;
    Done (Run.Ok, Bye)
  | Progress -> (
    match t.current with
    | None ->
      Done
        ( Run.Ok,
          Progress_reply
            {
              running = false;
              candidates = 0;
              emitted = 0;
              level = 0;
              elapsed_seconds = 0.0;
            } )
    | Some run ->
      let p = Run.progress run in
      Done
        ( Run.Ok,
          Progress_reply
            {
              running = true;
              candidates = p.Run.candidates;
              emitted = p.Run.emitted;
              level = p.Run.level;
              elapsed_seconds = Run.elapsed run;
            } ))
  | Cancel -> (
    match t.current with
    | None -> Done (Run.Ok, Cancel_ack false)
    | Some run ->
      Run.cancel run;
      Done (Run.Ok, Cancel_ack true))

(* The mine itself, outside the state lock. Serialized by [mine_lock]
   (mining already fans out across domains; parallel mines would
   oversubscribe the cores). *)
let run_mine t { Protocol.l; delta; sigma; closed_growth } g =
  let run = Run.create ?timeout:t.mine_timeout () in
  locked t (fun () -> t.current <- Some run);
  let r =
    Fun.protect
      ~finally:(fun () -> locked t (fun () -> t.current <- None))
      (fun () ->
        let config =
          { Skinny_mine.Config.default with closed_growth; jobs = t.jobs }
        in
        Skinny_mine.mine ~config ~run g ~l ~delta ~sigma)
  in
  (r.Skinny_mine.stats.Skinny_mine.status, Protocol.Patterns r.Skinny_mine.patterns)

(* Request failures become [Error] payloads ({!handle} never raises for
   these); anything else is a server bug and propagates. *)
let classify_error = function
  | Codec.Corrupt msg | Failure msg | Sys_error msg -> Some msg
  | Invalid_argument msg -> Some ("invalid request: " ^ msg)
  | Unix.Unix_error (e, fn, _) ->
    Some (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | _ -> None

let handle t req : Protocol.response =
  let t0 = Clock.now () in
  let key =
    if Protocol.cacheable req then Some (Protocol.encode_request req) else None
  in
  let finish ~cache_hit (status, payload) =
    locked t (fun () ->
        (match (key, payload) with
        | ( Some k,
            Protocol.(Pong | Loaded _ | Patterns _ | Stats_reply _ | Bye) )
          when (not cache_hit) && status = Run.Ok ->
          (* Only complete answers are cacheable: a Timeout/Cancelled
             [Patterns] is a prefix, and a retry deserves a fresh attempt. *)
          Lru.add t.cache k payload
        | _, _ -> ());
        let seconds = Clock.now () -. t0 in
        t.service_seconds <- t.service_seconds +. seconds;
        { Protocol.cache_hit; seconds; status; payload })
  in
  (* Phase 1, under the state lock: cache probe plus every request except an
     actual mine. *)
  let phase1 =
    locked t (fun () ->
        t.requests <- t.requests + 1;
        match Option.bind key (Lru.find t.cache) with
        | Some payload ->
          t.cache_hits <- t.cache_hits + 1;
          `Hit payload
        | None -> (
          match dispatch_unlocked t req with
          | Done (status, payload) -> `Done (status, payload)
          | Need_mine (params, g) -> `Mine (params, g)
          | exception e -> (
            match classify_error e with
            | Some msg ->
              t.errors <- t.errors + 1;
              `Done (Run.Ok, Protocol.Error msg)
            | None -> raise e)))
  in
  match phase1 with
  | `Hit payload -> finish ~cache_hit:true (Run.Ok, payload)
  | `Done result -> finish ~cache_hit:false result
  | `Mine (params, g) ->
    Mutex.lock t.mine_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mine_lock)
      (fun () ->
        (* Another request may have mined and cached the same parameters
           while we waited for the mine lock. *)
        let recheck =
          locked t (fun () ->
              match Option.bind key (Lru.find t.cache) with
              | Some payload ->
                t.cache_hits <- t.cache_hits + 1;
                Some payload
              | None -> None)
        in
        match recheck with
        | Some payload -> finish ~cache_hit:true (Run.Ok, payload)
        | None ->
          let result =
            match run_mine t params g with
            | result -> result
            | exception e -> (
              match classify_error e with
              | Some msg ->
                locked t (fun () -> t.errors <- t.errors + 1);
                (Run.Ok, Protocol.Error msg)
              | None -> raise e)
          in
          finish ~cache_hit:false result)

(* --- the socket surface --- *)

let listen ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  (try Unix.bind fd (ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  Unix.listen fd 64;
  let actual_port =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, actual_port)

let handle_connection t conn =
  Fun.protect
    ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
    (fun () ->
      if Protocol.accept_handshake conn then
        let rec loop () =
          match Protocol.read_frame conn with
          | None -> ()
          | Some frame ->
            let req =
              try Ok (Protocol.decode_request frame)
              with Codec.Corrupt msg -> Error msg
            in
            (match req with
            | Error msg ->
              (* Undecodable request: report and drop the connection — the
                 stream offset can no longer be trusted. *)
              Protocol.write_frame conn
                (Protocol.encode_response
                   {
                     cache_hit = false;
                     seconds = 0.0;
                     status = Run.Ok;
                     payload = Error msg;
                   })
            | Ok req ->
              let resp = handle t req in
              Protocol.write_frame conn (Protocol.encode_response resp);
              (* A served [Shutdown] ends this connection too. *)
              if req <> Protocol.Shutdown then loop ())
        in
        try loop () with
        | Codec.Corrupt _ -> ()
        | Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ())

let serve t fd =
  (* A client that disconnects mid-reply must not kill the process: turn
     SIGPIPE into EPIPE from [write], which [handle_connection] absorbs. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  t.listen_addr <- Some (Unix.getsockname fd);
  let threads = ref [] in
  let rec accept_loop () =
    if not t.stop then
      match Unix.accept fd with
      | conn, _ ->
        if t.stop then (try Unix.close conn with Unix.Unix_error _ -> ())
        else
          threads :=
            Thread.create (fun () -> handle_connection t conn) () :: !threads;
        accept_loop ()
      | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) ->
        accept_loop ()
      | exception Unix.Unix_error _ when t.stop -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      t.listen_addr <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      List.iter Thread.join !threads)
    accept_loop
