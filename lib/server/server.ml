module Graph = Spm_graph.Graph
module Skinny_mine = Spm_core.Skinny_mine
module Store = Spm_store.Store
module Codec = Spm_store.Codec
module Pool = Spm_engine.Pool
module Clock = Spm_engine.Clock

type t = {
  jobs : int;
  lock : Mutex.t;
  cache : (string, Protocol.payload) Lru.t;
  mutable graph : Graph.t option;
  mutable index : Sig_index.t;
  mutable store : Store.pattern_store option;
  mutable requests : int;
  mutable cache_hits : int;
  mutable errors : int;
  mutable service_seconds : float;
  started : float;
  mutable stop : bool;
  mutable listen_addr : Unix.sockaddr option;
}

let create ?(jobs = 1) ?(cache_capacity = 128) () =
  {
    jobs = max 1 jobs;
    lock = Mutex.create ();
    cache = Lru.create ~capacity:cache_capacity;
    graph = None;
    index = Sig_index.build [];
    store = None;
    requests = 0;
    cache_hits = 0;
    errors = 0;
    service_seconds = 0.0;
    started = Clock.now ();
    stop = false;
    listen_addr = None;
  }

let jobs t = t.jobs

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let install_store t s =
  t.store <- Some s;
  t.graph <- Some s.Store.graph;
  t.index <- Sig_index.build s.Store.patterns;
  Lru.clear t.cache

let set_store t s = locked t (fun () -> install_store t s)

let set_graph t g =
  locked t (fun () ->
      t.store <- None;
      t.graph <- Some g;
      t.index <- Sig_index.build [];
      Lru.clear t.cache)

let stopping t = t.stop

let stats_unlocked t =
  {
    Protocol.requests = t.requests;
    cache_hits = t.cache_hits;
    errors = t.errors;
    store_patterns = Sig_index.size t.index;
    uptime_seconds = Clock.now () -. t.started;
    service_seconds = t.service_seconds;
  }

let stats t = locked t (fun () -> stats_unlocked t)

let with_jobs_pool jobs f =
  if jobs <= 1 then f Pool.serial else Pool.with_pool ~jobs f

(* Wake the accept loop after [Shutdown]: a throwaway connection to our own
   listening address makes the blocked [accept] return, and the loop then
   observes [t.stop]. *)
let wake_listener t =
  match t.listen_addr with
  | None -> ()
  | Some addr -> (
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ -> ( try Unix.close fd with _ -> ()))

let run_request t req : Protocol.payload =
  match (req : Protocol.request) with
  | Ping -> Pong
  | Load_store path ->
    let s = Store.load path in
    install_store t s;
    Loaded (List.length s.Store.patterns)
  | Mine { l; delta; sigma; closed_growth } -> (
    let matches_store =
      match t.store with
      | Some s ->
        if s.Store.l = l && s.Store.delta = delta && s.Store.sigma = sigma
           && s.Store.closed_growth = closed_growth
        then Some s.Store.patterns
        else None
      | None -> None
    in
    match matches_store with
    | Some patterns -> Patterns patterns (* resident store: no re-mining *)
    | None -> (
      match t.graph with
      | None -> Error "no graph loaded (send Load_store first)"
      | Some g ->
        let config =
          { Skinny_mine.Config.default with closed_growth; jobs = t.jobs }
        in
        let r = Skinny_mine.mine ~config g ~l ~delta ~sigma in
        Patterns r.Skinny_mine.patterns))
  | Lookup { min_support; max_support; length; labels } ->
    Patterns
      (Sig_index.lookup ?min_support ?max_support ?length ?labels t.index)
  | Contains g ->
    Patterns
      (with_jobs_pool t.jobs (fun pool ->
           Sig_index.contained_in ~pool t.index g))
  | Stats -> Stats_reply (stats_unlocked t)
  | Shutdown ->
    t.stop <- true;
    wake_listener t;
    Bye

let handle t req : Protocol.response =
  let t0 = Clock.now () in
  locked t (fun () ->
      t.requests <- t.requests + 1;
      let key =
        if Protocol.cacheable req then Some (Protocol.encode_request req)
        else None
      in
      let cached = Option.bind key (Lru.find t.cache) in
      let cache_hit, payload =
        match cached with
        | Some payload ->
          t.cache_hits <- t.cache_hits + 1;
          (true, payload)
        | None ->
          let payload =
            try run_request t req with
            | Codec.Corrupt msg | Failure msg | Sys_error msg ->
              t.errors <- t.errors + 1;
              Protocol.Error msg
            | Invalid_argument msg ->
              t.errors <- t.errors + 1;
              Protocol.Error ("invalid request: " ^ msg)
            | Unix.Unix_error (e, fn, _) ->
              t.errors <- t.errors + 1;
              Protocol.Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
          in
          (match (key, payload) with
          | Some k, (Pong | Loaded _ | Patterns _ | Stats_reply _ | Bye) ->
            Lru.add t.cache k payload
          | _, Protocol.Error _ | None, _ -> ());
          (false, payload)
      in
      let seconds = Clock.now () -. t0 in
      t.service_seconds <- t.service_seconds +. seconds;
      { Protocol.cache_hit; seconds; payload })

(* --- the socket surface --- *)

let listen ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  (try Unix.bind fd (ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  Unix.listen fd 64;
  let actual_port =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, actual_port)

let handle_connection t conn =
  Fun.protect
    ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
    (fun () ->
      if Protocol.accept_handshake conn then
        let rec loop () =
          match Protocol.read_frame conn with
          | None -> ()
          | Some frame ->
            let req =
              try Ok (Protocol.decode_request frame)
              with Codec.Corrupt msg -> Error msg
            in
            (match req with
            | Error msg ->
              (* Undecodable request: report and drop the connection — the
                 stream offset can no longer be trusted. *)
              Protocol.write_frame conn
                (Protocol.encode_response
                   { cache_hit = false; seconds = 0.0; payload = Error msg })
            | Ok req ->
              let resp = handle t req in
              Protocol.write_frame conn (Protocol.encode_response resp);
              (* A served [Shutdown] ends this connection too. *)
              if req <> Protocol.Shutdown then loop ())
        in
        try loop () with
        | Codec.Corrupt _ -> ()
        | Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ())

let serve t fd =
  t.listen_addr <- Some (Unix.getsockname fd);
  let threads = ref [] in
  let rec accept_loop () =
    if not t.stop then
      match Unix.accept fd with
      | conn, _ ->
        if t.stop then (try Unix.close conn with Unix.Unix_error _ -> ())
        else
          threads := Thread.create (fun () -> handle_connection t conn) () :: !threads;
        accept_loop ()
      | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> accept_loop ()
      | exception Unix.Unix_error _ when t.stop -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      t.listen_addr <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      List.iter Thread.join !threads)
    accept_loop
