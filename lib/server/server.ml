module Graph = Spm_graph.Graph
module Delta = Spm_graph.Delta
module Skinny_mine = Spm_core.Skinny_mine
module Constraints = Spm_core.Constraints
module Incremental = Spm_core.Incremental
module Path_pattern = Spm_core.Path_pattern
module Store = Spm_store.Store
module Codec = Spm_store.Codec
module Pool = Spm_engine.Pool
module Clock = Spm_engine.Clock
module Run = Spm_engine.Run

type t = {
  jobs : int;
  mine_timeout : float option;
  mmap_stores : bool;
      (* [Load_store] requests map the store's G2 graph payload instead of
         decoding a copy (v1 files still decode). *)
  lock : Mutex.t;
  mine_lock : Mutex.t;
      (* Serializes actual mining — full [Mine]s and incremental [Update]
         repairs, the only long-running requests. Held WITHOUT [lock], so
         Progress/Cancel (and the planner queries) stay responsive while
         one is in flight. Lock order: a thread holding [mine_lock] may
         take [lock]; never the reverse. *)
  mutable current : Run.t option;  (* the in-flight mine, if any; under [lock] *)
  cache : (string, Protocol.payload) Lru.t;
  mutable graph : Graph.t option;
  mutable index : Sig_index.t;
  mutable store : Store.pattern_store option;
  mutable store_path : string option;
      (* Where committed updates are persisted (journal appended); set by
         [Load_store] and [set_store ~path]. *)
  mutable version : int;
      (* Current graph version: [Store.latest_version] of the resident
         store at install, +1 per committed [Update]. Part of every LRU
         cache key, so an update can never serve a pre-update answer. *)
  mutable live : Incremental.t option;
      (* Incremental mining state at [version]; built lazily on the first
         [Update] (eagerly when the loaded store carries a journal). *)
  mutable scope : (Path_pattern.t -> bool) option;
      (* Cluster-ownership predicate, derived from the resident store's
         shard identity: a shard worker serves (and repairs, and mines)
         only the diameter clusters its shard owns. [None] for ordinary
         stores — behaviour is then exactly the unsharded server's. *)
  sub_lock : Mutex.t;
  mutable subscribers : Unix.file_descr list;
      (* Connections handed off by [Subscribe]; each gets one pushed
         [Update_reply] frame per committed version. Under [sub_lock] only
         — pushes write to sockets and must not hold [lock]. *)
  mutable requests : int;
  mutable cache_hits : int;
  mutable errors : int;
  mutable service_seconds : float;
  started : float;
  mutable stop : bool;
  mutable listen_addr : Unix.sockaddr option;
}

let create ?(jobs = 1) ?(cache_capacity = 128) ?mine_timeout
    ?(mmap_stores = false) () =
  {
    jobs = max 1 jobs;
    mine_timeout;
    mmap_stores;
    lock = Mutex.create ();
    mine_lock = Mutex.create ();
    current = None;
    cache = Lru.create ~capacity:cache_capacity;
    graph = None;
    index = Sig_index.build [];
    store = None;
    store_path = None;
    version = 0;
    live = None;
    scope = None;
    sub_lock = Mutex.create ();
    subscribers = [];
    requests = 0;
    cache_hits = 0;
    errors = 0;
    service_seconds = 0.0;
    started = Clock.now ();
    stop = false;
    listen_addr = None;
  }

let jobs t = t.jobs
let mine_timeout t = t.mine_timeout

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let version t = locked t (fun () -> t.version)

let incr_config t (s : Store.pattern_store) =
  {
    Skinny_mine.Config.default with
    closed_growth = s.Store.closed_growth;
    jobs = t.jobs;
  }

(* A shard store's ownership predicate: the diameter clusters whose
   byte-stable key maps to its shard index. *)
let scope_of_store (s : Store.pattern_store) =
  Option.map
    (fun (index, count) ->
      fun labels -> Path_pattern.shard_of ~shards:count labels = index)
    s.Store.shard

(* Incremental state for the resident store: restore from its pattern set
   (no re-mining) when it partitions cleanly, re-mine from scratch if not
   (a store from a foreign producer), then replay the journal batch by
   batch to reach [latest_version]. Shard stores restore/create/update
   under their ownership scope, so repairs never grow clusters the shard
   does not own. *)
let build_live t (s : Store.pattern_store) =
  if not s.Store.complete then
    failwith "resident store is incomplete (truncated mine); cannot update";
  (match s.Store.family with
  | Constraints.Skinny -> ()
  | Constraints.Neighborhood _ ->
    (* The incremental repair machinery is diameter-cluster-shaped; the
       neighborhood family re-mines from scratch instead of updating. *)
    failwith
      "resident store mines the neighborhood family; incremental updates \
       are skinny-only");
  let config = incr_config t s in
  let scope = scope_of_store s in
  let dg = Delta.of_graph s.Store.graph in
  let inc =
    match
      Incremental.restore ~config ?scope dg ~l:s.Store.l ~delta:s.Store.delta
        ~sigma:s.Store.sigma ~patterns:s.Store.patterns
    with
    | Some inc -> inc
    | None ->
      Incremental.create ~config ?scope dg ~l:s.Store.l ~delta:s.Store.delta
        ~sigma:s.Store.sigma
  in
  List.fold_left
    (fun inc batch -> fst (Incremental.update inc batch))
    inc s.Store.journal

let install_store t ?path s =
  (* A journal means graph+patterns as stored are behind the latest
     version: replay through the incremental miner before serving. *)
  let live = if s.Store.journal = [] then None else Some (build_live t s) in
  t.store <- Some s;
  t.store_path <- path;
  t.version <- Store.latest_version s;
  t.live <- live;
  t.scope <- scope_of_store s;
  (match live with
  | Some inc ->
    t.graph <- Some (Delta.snapshot (Incremental.graph inc));
    t.index <- Sig_index.build (Incremental.patterns inc)
  | None ->
    t.graph <- Some s.Store.graph;
    t.index <- Sig_index.build s.Store.patterns);
  Lru.clear t.cache

let set_store t ?path s = locked t (fun () -> install_store t ?path s)

let set_graph t g =
  locked t (fun () ->
      t.store <- None;
      t.store_path <- None;
      t.version <- 0;
      t.live <- None;
      t.scope <- None;
      t.graph <- Some g;
      t.index <- Sig_index.build [];
      Lru.clear t.cache)

let stopping t = t.stop

let stats_unlocked t =
  {
    Protocol.requests = t.requests;
    cache_hits = t.cache_hits;
    errors = t.errors;
    store_patterns = Sig_index.size t.index;
    uptime_seconds = Clock.now () -. t.started;
    service_seconds = t.service_seconds;
  }

let stats t = locked t (fun () -> stats_unlocked t)

let with_jobs_pool jobs f =
  if jobs <= 1 then f Pool.serial else Pool.with_pool ~jobs f

(* Wake the accept loop after [Shutdown]: a throwaway connection to our own
   listening address makes the blocked [accept] return, and the loop then
   observes [t.stop]. *)
let wake_listener t =
  match t.listen_addr with
  | None -> ()
  | Some addr -> (
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ -> ( try Unix.close fd with _ -> ()))

(* Dispatch outcome of the state-locked phase: everything except an actual
   mine or an incremental update completes in there. *)
type dispatch =
  | Done of Run.status * Protocol.payload
  | Need_mine of Protocol.mine_params * Graph.t
  | Need_update of Spm_graph.Delta.edit list

let dispatch_unlocked t req : dispatch =
  match (req : Protocol.request) with
  | Ping -> Done (Run.Ok, Pong)
  | Load_store path ->
    let s =
      if t.mmap_stores then Store.load_mapped path else Store.load path
    in
    install_store t ~path s;
    Done (Run.Ok, Loaded (List.length s.Store.patterns))
  | Mine { l; delta; sigma; closed_growth; family } -> (
    let matches_store =
      match t.store with
      | Some s
        when s.Store.complete && s.Store.l = l && s.Store.delta = delta
             && s.Store.sigma = sigma
             && s.Store.closed_growth = closed_growth
             && s.Store.family = family -> (
        (* An incomplete store (flushed from a timed-out mine) is a prefix,
           not the answer set — never let it satisfy a Mine request. Only
           an update-free store short-circuits: after updates the resident
           patterns live in [live], and [t.graph] tracks them. *)
        match t.live with
        | None -> Some s.Store.patterns
        | Some inc when Option.is_some t.scope && Incremental.complete inc ->
          (* A shard worker past an update: serve the scoped incremental
             state — the owned restriction of the current version's answer.
             (A full re-mine would leak clusters the shard does not own.) *)
          Some (Incremental.patterns inc)
        | Some _ -> None)
      | Some _ | None -> None
    in
    match matches_store with
    | Some patterns ->
      Done (Run.Ok, Patterns patterns) (* resident store: no re-mining *)
    | None -> (
      match t.graph with
      | None -> Done (Run.Ok, Error "no graph loaded (send Load_store first)")
      | Some g -> Need_mine ({ l; delta; sigma; closed_growth; family }, g)))
  | Lookup { min_support; max_support; length; labels } ->
    Done
      ( Run.Ok,
        Patterns
          (Sig_index.lookup ?min_support ?max_support ?length ?labels t.index)
      )
  | Contains g ->
    Done
      ( Run.Ok,
        Patterns
          (with_jobs_pool t.jobs (fun pool ->
               Sig_index.contained_in ~pool t.index g)) )
  | Stats -> Done (Run.Ok, Stats_reply (stats_unlocked t))
  | Shutdown ->
    t.stop <- true;
    (* Stop an in-flight mine too, so [serve] can join its connection
       thread promptly instead of waiting out the full search. *)
    Option.iter Run.cancel t.current;
    wake_listener t;
    Done (Run.Ok, Bye)
  | Progress -> (
    match t.current with
    | None ->
      Done
        ( Run.Ok,
          Progress_reply
            {
              running = false;
              candidates = 0;
              emitted = 0;
              level = 0;
              elapsed_seconds = 0.0;
            } )
    | Some run ->
      let p = Run.progress run in
      Done
        ( Run.Ok,
          Progress_reply
            {
              running = true;
              candidates = p.Run.candidates;
              emitted = p.Run.emitted;
              level = p.Run.level;
              elapsed_seconds = Run.elapsed run;
            } ))
  | Cancel -> (
    match t.current with
    | None -> Done (Run.Ok, Cancel_ack false)
    | Some run ->
      Run.cancel run;
      Done (Run.Ok, Cancel_ack true))
  | Update { edits } -> (
    match t.store with
    | None ->
      Done (Run.Ok, Error "no store loaded (send Load_store first)")
    | Some s ->
      if not s.Store.complete then
        Done
          ( Run.Ok,
            Error "resident store is incomplete (truncated mine); cannot update"
          )
      else (
        match s.Store.family with
        | Constraints.Neighborhood _ ->
          Done
            ( Run.Ok,
              Error
                "resident store mines the neighborhood family; incremental \
                 updates are skinny-only" )
        | Constraints.Skinny -> Need_update edits))
  | Subscribe -> Done (Run.Ok, Subscribed t.version)

(* The mine itself, outside the state lock. Serialized by [mine_lock]
   (mining already fans out across domains; parallel mines would
   oversubscribe the cores). *)
let run_mine t { Protocol.l; delta; sigma; closed_growth; family } g =
  let run = Run.create ?timeout:t.mine_timeout () in
  locked t (fun () -> t.current <- Some run);
  let r =
    Fun.protect
      ~finally:(fun () -> locked t (fun () -> t.current <- None))
      (fun () ->
        let config =
          { Skinny_mine.Config.default with closed_growth; family; jobs = t.jobs }
        in
        Skinny_mine.mine ~config ~run g ~l ~delta ~sigma)
  in
  (* A shard worker answers any Mine with the owned restriction of the full
     answer: the router's merge of all shards is then the complete set. *)
  let patterns =
    match t.scope with
    | None -> r.Skinny_mine.patterns
    | Some owned ->
      List.filter
        (fun (m : Skinny_mine.mined) -> owned m.Skinny_mine.diameter_labels)
        r.Skinny_mine.patterns
  in
  (r.Skinny_mine.stats.Skinny_mine.status, Protocol.Patterns patterns)

let push_to_subscribers t (u : Protocol.update_reply) ~seconds =
  let frame =
    Protocol.encode_response
      (Protocol.response ~seconds (Protocol.Update_reply u))
  in
  Mutex.lock t.sub_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.sub_lock)
    (fun () ->
      t.subscribers <-
        List.filter
          (fun fd ->
            match Protocol.write_frame fd frame with
            | () -> true
            | exception (Unix.Unix_error _ | Codec.Corrupt _) ->
              (* Subscriber gone: drop it; the rest still get the push. *)
              (try Unix.close fd with Unix.Unix_error _ -> ());
              false)
          t.subscribers)

(* An incremental update, outside the state lock and serialized with mines
   by [mine_lock]: cluster repair fans out across the same domain pool. *)
let run_update t edits =
  let live, store = locked t (fun () -> (t.live, t.store)) in
  match store with
  | None -> (Run.Ok, Protocol.Error "no store loaded (send Load_store first)")
  | Some s ->
    let inc =
      match live with Some inc -> inc | None -> build_live t s
    in
    let run = Run.create ?timeout:t.mine_timeout () in
    locked t (fun () -> t.current <- Some run);
    let inc', diff =
      Fun.protect
        ~finally:(fun () -> locked t (fun () -> t.current <- None))
        (fun () -> Incremental.update ~run inc edits)
    in
    if diff.Incremental.status <> Run.Ok then
      (* Interrupted repair: nothing was committed — the resident set and
         version are exactly as before, and a retry starts fresh. *)
      ( diff.Incremental.status,
        Protocol.Error "update interrupted; no version committed" )
    else begin
      let store', new_version =
        locked t (fun () ->
            let s' =
              { s with Store.journal = s.Store.journal @ [ edits ] }
            in
            t.store <- Some s';
            t.live <- Some inc';
            t.graph <- Some (Delta.snapshot (Incremental.graph inc'));
            t.index <- Sig_index.build (Incremental.patterns inc');
            t.version <- t.version + 1;
            (* No cache flush: keys carry the version, so every cached
               answer is now unreachable by construction. *)
            (s', t.version))
      in
      let reply =
        {
          Protocol.new_version;
          added = diff.Incremental.added;
          removed = diff.Incremental.removed;
          repaired = diff.Incremental.repaired_clusters;
          clusters = diff.Incremental.total_clusters;
        }
      in
      push_to_subscribers t reply ~seconds:diff.Incremental.seconds;
      match t.store_path with
      | None -> (Run.Ok, Protocol.Update_reply reply)
      | Some path -> (
        match Store.save path store' with
        | () -> (Run.Ok, Protocol.Update_reply reply)
        | exception Sys_error msg ->
          ( Run.Ok,
            Protocol.Error
              (Printf.sprintf
                 "update committed as v%d but not persisted to %s: %s"
                 new_version path msg) ))
    end

(* Request failures become [Error] payloads ({!handle} never raises for
   these); anything else is a server bug and propagates. *)
let classify_error = function
  | Codec.Corrupt msg | Failure msg | Sys_error msg -> Some msg
  | Invalid_argument msg -> Some ("invalid request: " ^ msg)
  | Unix.Unix_error (e, fn, _) ->
    Some (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | _ -> None

let handle ?(client_version = Protocol.version) t req : Protocol.response =
  let t0 = Clock.now () in
  if Protocol.request_version req > client_version then begin
    (* v3-only verb on a v2 connection: refuse without dispatching. *)
    locked t (fun () ->
        t.requests <- t.requests + 1;
        t.errors <- t.errors + 1);
    Protocol.response
      ~seconds:(Clock.now () -. t0)
      (Protocol.Error
         (Printf.sprintf
            "request requires protocol v%d (connection negotiated v%d)"
            (Protocol.request_version req)
            client_version))
  end
  else begin
    let req_bytes =
      if Protocol.cacheable req then Some (Protocol.encode_request req)
      else None
    in
    let finish ~key ~cache_hit (status, payload) =
      locked t (fun () ->
          (match (key, payload) with
          | ( Some k,
              Protocol.(Pong | Loaded _ | Patterns _ | Stats_reply _ | Bye) )
            when (not cache_hit) && status = Run.Ok ->
            (* Only complete answers are cacheable: a Timeout/Cancelled
               [Patterns] is a prefix, and a retry deserves a fresh
               attempt. *)
            Lru.add t.cache k payload
          | _, _ -> ());
          let seconds = Clock.now () -. t0 in
          t.service_seconds <- t.service_seconds +. seconds;
          Protocol.response ~cache_hit ~seconds ~status payload)
    in
    (* Phase 1, under the state lock: cache probe plus every request except
       an actual mine or update. The cache key is the graph version plus
       the request bytes — version-keying is what makes an [Update] safe
       against the cache: an answer computed at version v is only ever
       findable at version v (the stale entries just age out of the
       LRU). *)
    let phase1 =
      locked t (fun () ->
          t.requests <- t.requests + 1;
          let key =
            Option.map
              (fun k -> Printf.sprintf "v%d:%s" t.version k)
              req_bytes
          in
          match Option.bind key (Lru.find t.cache) with
          | Some payload ->
            t.cache_hits <- t.cache_hits + 1;
            `Hit payload
          | None -> (
            match dispatch_unlocked t req with
            | Done (status, payload) -> `Done (key, (status, payload))
            | Need_mine (params, g) -> `Mine (key, params, g)
            | Need_update edits -> `Update edits
            | exception e -> (
              match classify_error e with
              | Some msg ->
                t.errors <- t.errors + 1;
                `Done (key, (Run.Ok, Protocol.Error msg))
              | None -> raise e)))
    in
    let guarded ~key f =
      Mutex.lock t.mine_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.mine_lock)
        (fun () ->
          let result =
            match f () with
            | result -> result
            | exception e -> (
              match classify_error e with
              | Some msg ->
                locked t (fun () -> t.errors <- t.errors + 1);
                (Run.Ok, Protocol.Error msg)
              | None -> raise e)
          in
          finish ~key ~cache_hit:false result)
    in
    match phase1 with
    | `Hit payload -> finish ~key:None ~cache_hit:true (Run.Ok, payload)
    | `Done (key, result) -> finish ~key ~cache_hit:false result
    | `Mine (key, params, g) ->
      Mutex.lock t.mine_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.mine_lock)
        (fun () ->
          (* Another request may have mined and cached the same parameters
             while we waited for the mine lock. *)
          let recheck =
            locked t (fun () ->
                match Option.bind key (Lru.find t.cache) with
                | Some payload ->
                  t.cache_hits <- t.cache_hits + 1;
                  Some payload
                | None -> None)
          in
          match recheck with
          | Some payload -> finish ~key:None ~cache_hit:true (Run.Ok, payload)
          | None ->
            let result =
              match run_mine t params g with
              | result -> result
              | exception e -> (
                match classify_error e with
                | Some msg ->
                  locked t (fun () -> t.errors <- t.errors + 1);
                  (Run.Ok, Protocol.Error msg)
                | None -> raise e)
            in
            finish ~key ~cache_hit:false result)
    | `Update edits -> guarded ~key:None (fun () -> run_update t edits)
  end

(* --- the socket surface --- *)

let listen ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  (try Unix.bind fd (ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  Unix.listen fd 64;
  let actual_port =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, actual_port)

let handle_connection t conn =
  (try Unix.setsockopt conn TCP_NODELAY true with Unix.Unix_error _ -> ());
  (* A [Subscribe] hands the socket over to the push registry: this thread
     exits without closing it, and the fd dies with the registry (push
     failure or shutdown). *)
  let handed_off = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !handed_off then
        try Unix.close conn with Unix.Unix_error _ -> ())
    (fun () ->
      match Protocol.accept_handshake conn with
      | None -> ()
      | Some client_version ->
        let rec loop () =
          match Protocol.read_frame conn with
          | None -> ()
          | Some frame ->
            let req =
              try Ok (Protocol.decode_request frame)
              with Codec.Corrupt msg -> Error msg
            in
            (match req with
            | Error msg ->
              (* Undecodable request: report and drop the connection — the
                 stream offset can no longer be trusted. *)
              Protocol.write_frame conn
                (Protocol.encode_response (Protocol.response (Error msg)))
            | Ok req -> (
              let resp = handle ~client_version t req in
              Protocol.write_frame conn (Protocol.encode_response resp);
              match (req, resp.Protocol.payload) with
              | Protocol.Subscribe, Protocol.Subscribed _ ->
                Mutex.lock t.sub_lock;
                t.subscribers <- conn :: t.subscribers;
                Mutex.unlock t.sub_lock;
                handed_off := true
              | _ ->
                (* A served [Shutdown] ends this connection too. *)
                if req <> Protocol.Shutdown then loop ()))
        in
        try loop () with
        | Codec.Corrupt _ -> ()
        | Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ())

let serve t fd =
  (* A client that disconnects mid-reply must not kill the process: turn
     SIGPIPE into EPIPE from [write], which [handle_connection] absorbs. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  t.listen_addr <- Some (Unix.getsockname fd);
  let threads = ref [] in
  let rec accept_loop () =
    if not t.stop then
      match Unix.accept fd with
      | conn, _ ->
        if t.stop then (try Unix.close conn with Unix.Unix_error _ -> ())
        else
          threads :=
            Thread.create (fun () -> handle_connection t conn) () :: !threads;
        accept_loop ()
      | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) ->
        accept_loop ()
      | exception Unix.Unix_error _ when t.stop -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      t.listen_addr <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      List.iter Thread.join !threads;
      (* Orderly close of every subscriber: they read EOF and know the
         stream of diffs is over. *)
      Mutex.lock t.sub_lock;
      List.iter
        (fun s -> try Unix.close s with Unix.Unix_error _ -> ())
        t.subscribers;
      t.subscribers <- [];
      Mutex.unlock t.sub_lock)
    accept_loop
