(** A fixed-capacity LRU cache (hash table + intrusive doubly-linked recency
    list; O(1) find/add/evict). Not thread-safe — the server guards it with
    its own lock. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Promotes the entry to most-recently-used on a hit. *)

val mem : ('k, 'v) t -> 'k -> bool
(** No promotion. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite; evicts the least-recently-used entry when full. *)

val clear : ('k, 'v) t -> unit
