(** SkinnyServe: the TCP query service over mined pattern stores.

    One server owns a resident pattern store (graph + mined set + the
    {!Sig_index} planner index over it), an LRU response cache keyed by the
    graph version plus the encoded request bytes, and running counters. The
    accept loop handles each connection on its own thread. Short requests
    are serialized by a state lock; actual mining — full [Mine]s and
    incremental [Update] repairs — runs outside it under a separate mine
    lock (mining already fans out across domains via {!Spm_engine.Pool}, so
    parallel mines would oversubscribe the cores), which keeps
    [Progress]/[Cancel] and planner queries responsive while one is in
    flight.

    {b Evolving graphs} (protocol v3): an [Update] request applies an edit
    batch as one new graph version, repairs the resident pattern set with
    {!Spm_core.Incremental} (only the diameter clusters whose
    δ-neighborhoods the edits touched are re-grown), rebuilds the planner
    index, and appends the batch to the resident store's mutation journal —
    persisted back to the store's path when there is one, so a restarted
    server replays the journal and resumes at the latest version.
    [Subscribe] hands its connection to a push registry that receives one
    [Update_reply] frame per committed version. Cache entries are keyed by
    version, so an update can never serve a pre-update answer.

    Each mine or update executes under a fresh {!Spm_engine.Run} context.
    When the server was created with [?mine_timeout], the run carries that
    deadline: an overrunning mine stops cooperatively and its client
    receives [status = Timeout] with the partial patterns mined so far; an
    overrunning update commits {e nothing} and reports the interruption. A
    [Cancel] request trips the same mechanism ([status = Cancelled]).
    Non-[Ok] responses are never cached, so a retry gets a fresh attempt.

    {!handle} is the full dispatch path minus the socket, so tests and
    benchmarks can drive the server in-process and get byte-identical
    behaviour to the wire. *)

type t

val create :
  ?jobs:int ->
  ?cache_capacity:int ->
  ?mine_timeout:float ->
  ?mmap_stores:bool ->
  unit ->
  t
(** [jobs] (default 1) is the domain-pool width used for mining, update
    repair and containment requests; [cache_capacity] (default 128) bounds
    the LRU response cache; [mine_timeout] (default: none) is the
    wall-clock budget in seconds granted to each [Mine]/[Update] request
    that actually mines — cache and resident-store answers are exempt.
    With [mmap_stores] (default false), [Load_store] requests open stores
    via {!Spm_store.Store.load_mapped} — G2 graph payloads are served
    straight from the mapped file instead of a decoded copy. *)

val jobs : t -> int

val mine_timeout : t -> float option

val set_store : t -> ?path:string -> Spm_store.Store.pattern_store -> unit
(** Install a pattern store as the resident set: its graph becomes the mine
    target, its patterns the lookup/containment corpus. A store carrying a
    mutation journal is replayed through the incremental miner first, so
    the resident set reflects {!Spm_store.Store.latest_version}. When
    [path] is given, committed updates persist the journal back to it
    (as does the path of a [Load_store] request). Clears the response
    cache.

    A {e shard} store (one with [shard = Some (i, n)], produced by
    {!Spm_cluster.Partition}) automatically scopes the server to the
    diameter clusters shard [i] of [n] owns: [Mine] answers are the owned
    restriction of the full answer (a router merges the shards back into
    the complete set), and [Update] repairs only owned clusters — the
    server becomes a shard worker with no further configuration. *)

val set_graph : t -> Spm_graph.Graph.t -> unit
(** Install a bare data graph (mine requests only; empty resident set, no
    updates). Clears the response cache. *)

val version : t -> int
(** Current graph version: the loaded store's latest version, +1 per
    committed [Update]. *)

val handle : ?client_version:int -> t -> Protocol.request -> Protocol.response
(** Dispatch one request: LRU lookup for {!Protocol.cacheable} requests,
    then the query planner ({!Sig_index}), the miner, or the incremental
    repairer. Never raises — failures become [Error] payloads and count in
    [stats.errors]. [client_version] (default {!Protocol.version}) is the
    connection's negotiated protocol version; requests whose
    {!Protocol.request_version} exceeds it are refused with an [Error].
    An in-process [Subscribe] returns [Subscribed] but registers nothing —
    push delivery needs the socket surface ({!serve}). *)

val stats : t -> Protocol.server_stats

val stopping : t -> bool
(** True once a [Shutdown] request has been handled. *)

val listen : ?host:string -> port:int -> unit -> Unix.file_descr * int
(** Bound, listening socket and its actual port (pass [port:0] for an
    ephemeral port — how the tests and benchmarks avoid collisions). *)

val serve : t -> Unix.file_descr -> unit
(** Accept loop: one thread per connection, each running
    handshake/read/dispatch/reply until EOF — except subscribers, whose
    sockets move to the push registry and receive one frame per committed
    update. Ignores [SIGPIPE] for the process, so a client that disconnects
    mid-reply surfaces as [EPIPE] on that connection's thread instead of
    killing the server. Returns after a [Shutdown] request (which also
    cancels any in-flight mine), once every connection thread has finished;
    subscriber sockets are closed on exit (subscribers read EOF). *)
