(** SkinnyServe: the TCP query service over mined pattern stores.

    One server owns a resident pattern store (graph + mined set + the
    {!Sig_index} planner index over it), an LRU response cache keyed by the
    encoded request bytes, and running counters. The accept loop handles
    each connection on its own thread. Short requests are serialized by a
    state lock; actual mining runs outside it under a separate mine lock
    (mining already fans out across domains via {!Spm_engine.Pool}, so
    parallel mines would oversubscribe the cores), which keeps
    [Progress]/[Cancel] and planner queries responsive while a mine is in
    flight.

    Each mine executes under a fresh {!Spm_engine.Run} context. When the
    server was created with [?mine_timeout], the run carries that deadline:
    an overrunning mine stops cooperatively and its client receives
    [status = Timeout] with the partial patterns mined so far. A [Cancel]
    request trips the same mechanism ([status = Cancelled]). Non-[Ok]
    responses are never cached, so a retry gets a fresh attempt.

    {!handle} is the full dispatch path minus the socket, so tests and
    benchmarks can drive the server in-process and get byte-identical
    behaviour to the wire. *)

type t

val create :
  ?jobs:int -> ?cache_capacity:int -> ?mine_timeout:float -> unit -> t
(** [jobs] (default 1) is the domain-pool width used for mining and
    containment requests; [cache_capacity] (default 128) bounds the LRU
    response cache; [mine_timeout] (default: none) is the wall-clock budget
    in seconds granted to each [Mine] request that actually mines — cache
    and resident-store answers are exempt. *)

val jobs : t -> int

val mine_timeout : t -> float option

val set_store : t -> Spm_store.Store.pattern_store -> unit
(** Install a pattern store as the resident set: its graph becomes the mine
    target, its patterns the lookup/containment corpus. Clears the response
    cache. *)

val set_graph : t -> Spm_graph.Graph.t -> unit
(** Install a bare data graph (mine requests only; empty resident set).
    Clears the response cache. *)

val handle : t -> Protocol.request -> Protocol.response
(** Dispatch one request: LRU lookup for {!Protocol.cacheable} requests,
    then the query planner ({!Sig_index}) or the miner. Never raises —
    failures become [Error] payloads and count in [stats.errors]. *)

val stats : t -> Protocol.server_stats

val stopping : t -> bool
(** True once a [Shutdown] request has been handled. *)

val listen : ?host:string -> port:int -> unit -> Unix.file_descr * int
(** Bound, listening socket and its actual port (pass [port:0] for an
    ephemeral port — how the tests and benchmarks avoid collisions). *)

val serve : t -> Unix.file_descr -> unit
(** Accept loop: one thread per connection, each running
    handshake/read/dispatch/reply until EOF. Ignores [SIGPIPE] for the
    process, so a client that disconnects mid-reply surfaces as [EPIPE] on
    that connection's thread instead of killing the server. Returns after a
    [Shutdown] request (which also cancels any in-flight mine), once every
    connection thread has finished; the listening socket is closed on
    exit. *)
