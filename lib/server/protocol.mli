(** The SkinnyServe wire protocol: length-prefixed binary frames over TCP.

    Connection: after connect, the client sends an 8-byte greeting naming
    the newest protocol version it speaks ({!handshake_of_version}); the
    server echoes any greeting it supports and the trailing digit becomes
    the connection's negotiated version. A mismatch (v1 client, stray
    scanner) closes the connection. Then each request is one frame and earns
    exactly one response frame — except [Subscribe], after which the server
    additionally pushes one unsolicited [Update_reply] frame per committed
    graph version.

    Frame: 4-byte big-endian payload length, then the payload — a
    {!Spm_store.Codec} encoding of a {!request} or {!response}. Payloads
    above {!max_frame} are rejected without allocation.

    Responses carry a small envelope (cache hit flag, server-side service
    seconds, run {!Spm_engine.Run.status}) so clients and benchmarks can
    observe per-request latency, LRU effectiveness and deadline truncation
    without a separate stats round trip. *)

val version : int
(** Newest protocol version this build speaks (5). v2 widened the response
    envelope with a status byte and added [Progress]/[Cancel]; v3 added
    [Update]/[Subscribe] for evolving graphs; v4 added the [Partial]
    response status of the sharded serving tier (status byte 3 followed by
    the unreachable shard names); v5 added the constraint-family field of
    [Mine] (skinny Mines keep the v2 tag-2 bytes, neighborhood Mines use a
    new tag). Each extension leaves every earlier frame layout unchanged, so
    newer versions are negotiated rather than gated. *)

val min_version : int
(** Oldest version still accepted at the handshake (2). v1 peers would
    mis-decode the widened envelope and are refused. *)

val handshake_of_version : int -> string
(** ["SKNYSRV<v>"] — the 8-byte greeting for version [v]. *)

val handshake : string
(** [handshake_of_version version]. *)

val max_frame : int
(** Upper bound on accepted payload sizes (64 MiB). *)

val default_port : int

(** {1 Messages} *)

type mine_params = {
  l : int;
  delta : int;
  sigma : int;
  closed_growth : bool;
  family : Spm_core.Constraints.family;
      (** v5. Which constraint family to mine; [Skinny] requests encode to
          the exact pre-v5 bytes, [Neighborhood] requests need a v5
          connection ([l] must be 0, [delta] carries the radius r). *)
}

type lookup_params = {
  min_support : int option;
  max_support : int option;
  length : int option;
  labels : Spm_graph.Label.t list option;  (** exact label multiset *)
}

type update_params = { edits : Spm_graph.Delta.edit list }

type request =
  | Ping
  | Load_store of string
      (** Server-side path of a {!Spm_store} pattern-store file. *)
  | Mine of mine_params
      (** Mine the loaded graph; answered from the resident store when the
          parameters match it (no re-mining). *)
  | Lookup of lookup_params  (** Filter the resident pattern set. *)
  | Contains of Spm_graph.Graph.t
      (** Which resident patterns embed in this submitted graph? *)
  | Stats
  | Shutdown
  | Progress
      (** Counters of the mine currently executing, if any. Answered
          immediately even while a [Mine] request is running. *)
  | Cancel
      (** Request cooperative cancellation of the running mine (if any); it
          answers its own client with [status = Cancelled] and whatever
          partial patterns it had. Acknowledged with [Cancel_ack]. *)
  | Update of update_params
      (** v3. Apply an edit batch to the resident graph as one new version
          and repair the resident pattern set incrementally
          ({!Spm_core.Incremental}). Answered with [Update_reply]; the same
          diff is pushed to every subscriber. *)
  | Subscribe
      (** v3. Answered with [Subscribed current_version]; the connection
          then receives one pushed [Update_reply] frame per subsequent
          committed version and must not send further requests. *)

(** {1 Request constructors}

    The one construction surface for params records: future fields extend
    these (with defaults) instead of every call site. *)

val mine_params :
  ?closed_growth:bool ->
  ?family:Spm_core.Constraints.family ->
  l:int ->
  delta:int ->
  sigma:int ->
  unit ->
  mine_params
(** [closed_growth] defaults to [false]; [family] to [Skinny]. *)

val lookup_params :
  ?min_support:int ->
  ?max_support:int ->
  ?length:int ->
  ?labels:Spm_graph.Label.t list ->
  unit ->
  lookup_params
(** Omitted filters match everything. *)

val update_params : Spm_graph.Delta.edit list -> update_params

val request_version : request -> int
(** Oldest protocol version that can carry this request — a neighborhood
    [Mine] needs 5, [Update] and [Subscribe] need 3, everything else 2.
    Servers reject requests whose [request_version] exceeds the connection's
    negotiated version. *)

type server_stats = {
  requests : int;
  cache_hits : int;
  errors : int;
  store_patterns : int;  (** resident pattern count *)
  uptime_seconds : float;
  service_seconds : float;  (** total time spent inside request handling *)
}

type mine_progress = {
  running : bool;  (** false = no mine in flight (counters are zero) *)
  candidates : int;  (** candidate patterns examined so far *)
  emitted : int;  (** patterns emitted so far *)
  level : int;  (** current level (pattern size being grown) *)
  elapsed_seconds : float;
}

type update_reply = {
  new_version : int;  (** graph version after the batch committed *)
  added : Spm_core.Skinny_mine.mined list;
  removed : Spm_core.Skinny_mine.mined list;
  repaired : int;  (** diameter clusters re-grown *)
  clusters : int;  (** total diameter clusters at the new version *)
}

type payload =
  | Pong
  | Loaded of int  (** pattern count of the newly resident store *)
  | Patterns of Spm_core.Skinny_mine.mined list
  | Stats_reply of server_stats
  | Bye
  | Error of string
  | Progress_reply of mine_progress
  | Cancel_ack of bool  (** was a mine actually running? *)
  | Update_reply of update_reply  (** v3 *)
  | Subscribed of int  (** v3; current graph version *)

type response = {
  cache_hit : bool;
  seconds : float;  (** server-side service time for this request *)
  status : Spm_engine.Run.status;
      (** [Ok] unless this response was truncated by the server's
          per-request mine deadline ([Timeout]) or a [Cancel] ([Cancelled]);
          [Patterns] then holds the partial results *)
  unreachable : string list;
      (** v4 [Partial] status: shards that could not contribute to this
          answer (worker down or past its deadline) — the router's degraded
          -but-well-formed response. Always empty from a single-process
          server, and an empty list encodes to the plain status byte, so
          full answers are byte-identical across the two tiers. Only sent
          on connections that negotiated v4. *)
  payload : payload;
}

val response :
  ?cache_hit:bool ->
  ?seconds:float ->
  ?status:Spm_engine.Run.status ->
  ?unreachable:string list ->
  payload ->
  response
(** Envelope constructor with neutral defaults ([false], [0.0], [Ok],
    [[]]) — the construction surface that lets future envelope fields
    extend here instead of at every call site. *)

(** {1 Codec} *)

val encode_request : request -> string

val decode_request : string -> request
(** @raise Spm_store.Codec.Corrupt on malformed input. *)

val encode_response : response -> string

val decode_response : string -> response

val cacheable : request -> bool
(** Deterministic read-only requests ([Mine], [Lookup], [Contains]) whose
    responses the server may serve from its LRU cache. The cache key must
    also include the graph version — an [Update] invalidates every cached
    answer. *)

(** {1 Handshake} *)

val accept_handshake : Unix.file_descr -> int option
(** Server side: read 8 bytes, match against every supported greeting
    ([min_version] … [version]), echo the matched greeting back and return
    the negotiated version. [None] (no echo) on mismatch or early EOF. *)

val client_handshake : ?version:int -> Unix.file_descr -> unit
(** Client side: send [handshake_of_version version] (default {!version}),
    read the echo. A pre-v3 server closes instead of echoing an unknown
    greeting, so clients retry the handshake with an older [version] on a
    fresh connection ({!Client.connect} automates this).
    @raise Spm_store.Codec.Corrupt if the server does not echo it.
    @raise Invalid_argument if [version < min_version]. *)

(** {1 Framing} *)

val write_frame : Unix.file_descr -> string -> unit

val read_frame : Unix.file_descr -> string option
(** [None] on orderly EOF before the first length byte.
    @raise Spm_store.Codec.Corrupt on truncation mid-frame or oversized
    frames. *)
