(** The SkinnyServe wire protocol: length-prefixed binary frames over TCP.

    Connection: after connect, the client sends the 8-byte handshake
    {!handshake} and the server echoes it; a mismatch (old client, stray
    scanner) closes the connection. Then each request is one frame and earns
    exactly one response frame.

    Frame: 4-byte big-endian payload length, then the payload — a
    {!Spm_store.Codec} encoding of a {!request} or {!response}. Payloads
    above {!max_frame} are rejected without allocation.

    Responses carry a small envelope (cache hit flag, server-side service
    seconds, run {!Spm_engine.Run.status}) so clients and benchmarks can
    observe per-request latency, LRU effectiveness and deadline truncation
    without a separate stats round trip. *)

val handshake : string
(** ["SKNYSRV2"] — protocol version is the trailing digit. v2 widened the
    response envelope with a status byte and added [Progress]/[Cancel], so
    v1 peers are refused at the handshake rather than mis-decoded. *)

val max_frame : int
(** Upper bound on accepted payload sizes (64 MiB). *)

val default_port : int

(** {1 Messages} *)

type mine_params = {
  l : int;
  delta : int;
  sigma : int;
  closed_growth : bool;
}

type lookup_params = {
  min_support : int option;
  max_support : int option;
  length : int option;
  labels : Spm_graph.Label.t list option;  (** exact label multiset *)
}

type request =
  | Ping
  | Load_store of string
      (** Server-side path of a {!Spm_store} pattern-store file. *)
  | Mine of mine_params
      (** Mine the loaded graph; answered from the resident store when the
          parameters match it (no re-mining). *)
  | Lookup of lookup_params  (** Filter the resident pattern set. *)
  | Contains of Spm_graph.Graph.t
      (** Which resident patterns embed in this submitted graph? *)
  | Stats
  | Shutdown
  | Progress
      (** Counters of the mine currently executing, if any. Answered
          immediately even while a [Mine] request is running. *)
  | Cancel
      (** Request cooperative cancellation of the running mine (if any); it
          answers its own client with [status = Cancelled] and whatever
          partial patterns it had. Acknowledged with [Cancel_ack]. *)

type server_stats = {
  requests : int;
  cache_hits : int;
  errors : int;
  store_patterns : int;  (** resident pattern count *)
  uptime_seconds : float;
  service_seconds : float;  (** total time spent inside request handling *)
}

type mine_progress = {
  running : bool;  (** false = no mine in flight (counters are zero) *)
  candidates : int;  (** candidate patterns examined so far *)
  emitted : int;  (** patterns emitted so far *)
  level : int;  (** current level (pattern size being grown) *)
  elapsed_seconds : float;
}

type payload =
  | Pong
  | Loaded of int  (** pattern count of the newly resident store *)
  | Patterns of Spm_core.Skinny_mine.mined list
  | Stats_reply of server_stats
  | Bye
  | Error of string
  | Progress_reply of mine_progress
  | Cancel_ack of bool  (** was a mine actually running? *)

type response = {
  cache_hit : bool;
  seconds : float;  (** server-side service time for this request *)
  status : Spm_engine.Run.status;
      (** [Ok] unless this response was truncated by the server's
          per-request mine deadline ([Timeout]) or a [Cancel] ([Cancelled]);
          [Patterns] then holds the partial results *)
  payload : payload;
}

(** {1 Codec} *)

val encode_request : request -> string

val decode_request : string -> request
(** @raise Spm_store.Codec.Corrupt on malformed input. *)

val encode_response : response -> string

val decode_response : string -> response

val cacheable : request -> bool
(** Deterministic read-only requests ([Mine], [Lookup], [Contains]) whose
    responses the server may serve from its LRU cache. *)

(** {1 Handshake} *)

val accept_handshake : Unix.file_descr -> bool
(** Server side: read 8 bytes, compare with {!handshake}, echo it back on a
    match. [false] (no echo) on mismatch or early EOF. *)

val client_handshake : Unix.file_descr -> unit
(** Client side: send {!handshake}, read the echo.
    @raise Spm_store.Codec.Corrupt if the server does not echo it. *)

(** {1 Framing} *)

val write_frame : Unix.file_descr -> string -> unit

val read_frame : Unix.file_descr -> string option
(** [None] on orderly EOF before the first length byte.
    @raise Spm_store.Codec.Corrupt on truncation mid-frame or oversized
    frames. *)
