(** Blocking client for the SkinnyServe protocol — the [skinnymine query]
    subcommand, the end-to-end tests, and the serving benchmark all go
    through this. One request in flight per connection. *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** TCP connect + protocol handshake. Greets with {!Protocol.version}; if
    the server closes instead of echoing (an older server refusing an
    unknown greeting), reconnects and greets one version lower, down to
    {!Protocol.min_version} — so new clients keep working against old
    servers at the newest version both sides speak.
    @raise Unix.Unix_error on connection failure.
    @raise Spm_store.Codec.Corrupt if the peer is not a SkinnyServe server. *)

val version : t -> int
(** Protocol version this connection negotiated. v3-only calls ([update],
    [subscribe]) against a v2 connection earn a server [Error]. *)

val close : t -> unit

val call : t -> Protocol.request -> Protocol.response
(** One request/response round trip.
    @raise Spm_store.Codec.Corrupt on protocol violations (including EOF
    before the response arrives). *)

val with_connection :
  ?host:string -> port:int -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)

(** {1 Conveniences} — one call each, failing loudly on [Error] replies. *)

exception Server_error of string
(** An [Error] payload from the server, raised by the typed wrappers. *)

val ping : t -> unit

val load_store : t -> string -> int
(** Pattern count of the store the server loaded. *)

val mine : t -> Protocol.mine_params -> Spm_core.Skinny_mine.mined list

val lookup : t -> Protocol.lookup_params -> Spm_core.Skinny_mine.mined list

val contains : t -> Spm_graph.Graph.t -> Spm_core.Skinny_mine.mined list

val stats : t -> Protocol.server_stats

val shutdown : t -> unit

val progress : t -> Protocol.mine_progress
(** Counters of the server's in-flight mine ([running = false] if none).
    Issue it from a second connection: a connection blocked on its own
    [Mine] cannot interleave another request. *)

val cancel : t -> bool
(** Ask the server to cancel its in-flight mine; [true] if one was running.
    The mining client receives [status = Cancelled] plus partial patterns. *)

val update : t -> Spm_graph.Delta.edit list -> Protocol.update_reply
(** Apply an edit batch as one new graph version and get back the
    pattern-set diff the incremental repair produced (v3). *)

val subscribe : t -> int
(** Enter subscriber mode: returns the current graph version; from then on
    this connection only receives pushed diffs — read them with
    {!next_diff} and send nothing further (v3). *)

val next_diff : t -> Protocol.update_reply option
(** Block for the next pushed diff on a subscribed connection. [None] on
    orderly EOF — the server shut down and the stream of diffs is over. *)

val last_meta : t -> (bool * float) option
(** [(cache_hit, server_seconds)] of the most recent response on this
    connection — the per-request observability hook used by the benchmark
    and the CLI. *)

val last_status : t -> Spm_engine.Run.status option
(** {!Spm_engine.Run.status} of the most recent response: anything other
    than [Ok] means the answer was truncated by the server's mine deadline
    or a concurrent [Cancel]. *)

val last_unreachable : t -> string list
(** Shards the most recent response is missing (the router's v4 [Partial]
    status) — empty for complete answers and for every response from a
    single-process server. The typed wrappers deliver partial answers
    normally; callers that must distinguish degraded responses check
    here. *)
