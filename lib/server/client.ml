module Codec = Spm_store.Codec
module Run = Spm_engine.Run

type t = {
  fd : Unix.file_descr;
  version : int;
  mutable meta : (bool * float) option;
  mutable status : Run.status option;
  mutable unreachable : string list;
  mutable closed : bool;
}

let connect_version ~host ~port v =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  try
    Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string host, port));
    (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
    Protocol.client_handshake ~version:v fd;
    fd
  with e ->
    (try Unix.close fd with _ -> ());
    raise e

let connect ?(host = "127.0.0.1") ~port () =
  (* Greet with the newest version; an older server closes instead of
     echoing an unknown greeting, so walk down one version per fresh
     connection until one is echoed. *)
  let rec try_version v =
    match connect_version ~host ~port v with
    | fd -> (fd, v)
    | exception Codec.Corrupt _ when v > Protocol.min_version ->
      try_version (v - 1)
  in
  let fd, version = try_version Protocol.version in
  { fd; version; meta = None; status = None; unreachable = []; closed = false }

let version t = t.version

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let call t req =
  Protocol.write_frame t.fd (Protocol.encode_request req);
  match Protocol.read_frame t.fd with
  | None -> raise (Codec.Corrupt "server closed the connection before replying")
  | Some frame ->
    let resp = Protocol.decode_response frame in
    t.meta <- Some (resp.Protocol.cache_hit, resp.Protocol.seconds);
    t.status <- Some resp.Protocol.status;
    t.unreachable <- resp.Protocol.unreachable;
    resp

let with_connection ?host ~port f =
  let t = connect ?host ~port () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let last_meta t = t.meta
let last_status t = t.status
let last_unreachable t = t.unreachable

exception Server_error of string

let expect_payload t req =
  match (call t req).Protocol.payload with
  | Protocol.Error msg -> raise (Server_error msg)
  | p -> p

let protocol_violation what =
  raise (Codec.Corrupt ("unexpected response payload to " ^ what))

let ping t =
  match expect_payload t Protocol.Ping with
  | Protocol.Pong -> ()
  | _ -> protocol_violation "Ping"

let load_store t path =
  match expect_payload t (Protocol.Load_store path) with
  | Protocol.Loaded n -> n
  | _ -> protocol_violation "Load_store"

let patterns_of what = function
  | Protocol.Patterns ms -> ms
  | _ -> protocol_violation what

let mine t params = patterns_of "Mine" (expect_payload t (Protocol.Mine params))

let lookup t params =
  patterns_of "Lookup" (expect_payload t (Protocol.Lookup params))

let contains t g =
  patterns_of "Contains" (expect_payload t (Protocol.Contains g))

let stats t =
  match expect_payload t Protocol.Stats with
  | Protocol.Stats_reply s -> s
  | _ -> protocol_violation "Stats"

let shutdown t =
  match expect_payload t Protocol.Shutdown with
  | Protocol.Bye -> ()
  | _ -> protocol_violation "Shutdown"

let progress t =
  match expect_payload t Protocol.Progress with
  | Protocol.Progress_reply p -> p
  | _ -> protocol_violation "Progress"

let cancel t =
  match expect_payload t Protocol.Cancel with
  | Protocol.Cancel_ack was_running -> was_running
  | _ -> protocol_violation "Cancel"

let update t edits =
  match expect_payload t (Protocol.Update (Protocol.update_params edits)) with
  | Protocol.Update_reply u -> u
  | _ -> protocol_violation "Update"

let subscribe t =
  match expect_payload t Protocol.Subscribe with
  | Protocol.Subscribed v -> v
  | _ -> protocol_violation "Subscribe"

let next_diff t =
  match Protocol.read_frame t.fd with
  | None -> None
  | Some frame -> (
    match (Protocol.decode_response frame).Protocol.payload with
    | Protocol.Update_reply u -> Some u
    | _ -> protocol_violation "Subscribe push")
