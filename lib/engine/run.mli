(** Run contexts: one value threaded through a whole mining run carrying a
    cooperative cancellation token, an absolute wall-clock deadline, an
    optional emission budget, and monotonic progress counters.

    Every engine entry point ([Skinny_mine.mine], [Spm_gspan.Engine.mine],
    the baselines) accepts [?run] and polls it at pattern-extension
    granularity: cheap enough to keep cancellation latency in the
    milliseconds, coarse enough that the polling cost disappears into the
    work of a single extension. Cancellation is {e cooperative} — a single
    [Atomic.t] flag that running code tests via {!check} / {!interrupted} —
    never preemptive: workers are plain domains sharing the heap, and
    killing one mid-extension would leak the batch protocol's invariants
    (claimed-but-unfinished cursor slots, half-built hash tables).

    Contexts form a tree: {!fork} makes a child whose token and counters are
    fresh but which still observes the parent's token and deadline, and
    whose counter increments propagate upward. [Skinny_mine] uses forks to
    give each diameter cluster a private budget slice while the server's
    per-request deadline keeps acting on all of them. *)

type status = Ok | Timeout | Cancelled
(** How a run ended: [Ok] means it ran to natural completion (a filled
    emission budget still counts as [Ok] — the budget is an output size
    limit, not an interruption), [Timeout] means the deadline passed, and
    [Cancelled] means {!cancel} was called on the run or an ancestor. *)

val status_to_string : status -> string
(** Lowercase rendering: ["ok"], ["timeout"], ["cancelled"]. *)

type progress = {
  candidates : int;  (** candidate patterns examined so far ({!tick}) *)
  emitted : int;  (** patterns emitted into the result set ({!emit}) *)
  level : int;  (** current level: pattern size being grown ({!set_level}) *)
}

exception Cancelled of status * progress
(** Raised by {!check} (and thus from inside any engine honoring a run) when
    the run is interrupted, carrying why and how far the run got. Partial
    per-engine stats survive in the engine's own accumulators; engines that
    can return partial results catch this internally and report the status
    in their stats instead of letting it escape. *)

type t

val create : ?deadline:float -> ?timeout:float -> ?budget:int -> unit -> t
(** A fresh root context. [deadline] is absolute ({!Clock.now} scale);
    [timeout] is relative seconds from now — when both are given the
    earlier one wins. [budget] bounds {!emit} via {!budget_exhausted}. *)

val fork : ?timeout:float -> ?budget:int -> t -> t
(** A child context with a fresh token, fresh counters, and its own budget.
    The child is interrupted whenever the parent is (the deadline is the
    minimum of the parent's and [now + timeout]); {!tick}/{!emit}/
    {!set_level} on the child also advance the parent's counters, so
    progress reported from the root reflects all descendants. Cancelling a
    child does not cancel the parent. *)

val cancel : t -> unit
(** Request cooperative cancellation: sets the token; running code observes
    it at its next {!check}. Safe from any domain or thread; idempotent. *)

val interrupted : t -> bool
(** The token (here or on an ancestor) is set, or the deadline has passed.
    Budget exhaustion is deliberately {e not} an interruption — see
    {!status}. *)

val check : t -> unit
(** Raise {!Cancelled} with the current {!status} and {!progress} if
    {!interrupted}. This is the polling point engines call once per pattern
    extension (and pools call between task claims). *)

val should_stop : t -> bool
(** [interrupted t || budget_exhausted t] — the loop guard for engines that
    unwind manually instead of raising. *)

val tick : ?n:int -> t -> unit
(** Count [n] (default 1) candidates examined, propagating to ancestors. *)

val emit : ?n:int -> t -> unit
(** Count [n] (default 1) patterns emitted, propagating to ancestors. *)

val budget_exhausted : t -> bool
(** This context's emission count has reached its [budget] (never true
    without one). Ancestors' budgets are not consulted: a fork with its own
    budget slice is charged only against that slice. *)

val set_level : t -> int -> unit
(** Record the current mining level (pattern size); monotone — the stored
    level only ever increases. Propagates to ancestors. *)

val progress : t -> progress
(** Snapshot of the counters. Safe to call from another thread while the
    run is mining (the server's [Progress] request does exactly that). *)

val elapsed : t -> float
(** Wall-clock seconds since this context was created. *)

val status : t -> status
(** [Cancelled] if the token (here or on an ancestor) is set, else
    [Timeout] if the deadline has passed, else [Ok]. An engine that
    finished naturally should report [Ok] regardless — only code that
    actually observed an interruption should consult this. *)
