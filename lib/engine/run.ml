(* Run contexts: cancellation token + deadline + budget + progress counters.
   All state is a handful of atomics, so a context can be polled from every
   pool worker and snapshotted from the server's accept threads without
   locks. The [status] type is declared before the [Cancelled] exception on
   purpose: both want the [Cancelled] name, and declaration order lets the
   status-producing functions below bind the variant constructor while
   everything after the exception declaration gets the exception. *)

type status = Ok | Timeout | Cancelled

let status_to_string = function
  | Ok -> "ok"
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"

type progress = { candidates : int; emitted : int; level : int }

type t = {
  parent : t option;
  token : bool Atomic.t;
  deadline : float option;
  budget : int option;
  candidates : int Atomic.t;
  emitted : int Atomic.t;
  level : int Atomic.t;
  started : float;
}

let make ~parent ~deadline ~budget =
  {
    parent;
    token = Atomic.make false;
    deadline;
    budget;
    candidates = Atomic.make 0;
    emitted = Atomic.make 0;
    level = Atomic.make 0;
    started = Clock.now ();
  }

let min_deadline a b =
  match (a, b) with
  | None, d | d, None -> d
  | Some x, Some y -> Some (Float.min x y)

let create ?deadline ?timeout ?budget () =
  let relative = Option.map (fun s -> Clock.now () +. s) timeout in
  make ~parent:None ~deadline:(min_deadline deadline relative) ~budget

let fork ?timeout ?budget t =
  let relative = Option.map (fun s -> Clock.now () +. s) timeout in
  make ~parent:(Some t) ~deadline:(min_deadline t.deadline relative) ~budget

let cancel t = Atomic.set t.token true

let rec cancel_requested t =
  Atomic.get t.token
  || match t.parent with Some p -> cancel_requested p | None -> false

let past_deadline t =
  match t.deadline with None -> false | Some d -> Clock.now () >= d

let interrupted t = cancel_requested t || past_deadline t

let rec tick ?(n = 1) t =
  ignore (Atomic.fetch_and_add t.candidates n);
  match t.parent with Some p -> tick ~n p | None -> ()

let rec emit ?(n = 1) t =
  ignore (Atomic.fetch_and_add t.emitted n);
  match t.parent with Some p -> emit ~n p | None -> ()

let budget_exhausted t =
  match t.budget with Some b -> Atomic.get t.emitted >= b | None -> false

let should_stop t = interrupted t || budget_exhausted t

let rec set_level t k =
  let rec bump () =
    let cur = Atomic.get t.level in
    if k > cur && not (Atomic.compare_and_set t.level cur k) then bump ()
  in
  bump ();
  match t.parent with Some p -> set_level p k | None -> ()

let progress t =
  {
    candidates = Atomic.get t.candidates;
    emitted = Atomic.get t.emitted;
    level = Atomic.get t.level;
  }

let elapsed t = Clock.now () -. t.started

let status t =
  if cancel_requested t then Cancelled
  else if past_deadline t then Timeout
  else Ok

exception Cancelled of status * progress

let check t = if interrupted t then raise (Cancelled (status t, progress t))
