(** A from-scratch domain pool for task-parallel mining (OCaml 5 stdlib
    [Domain]/[Atomic]/[Mutex]/[Condition] only — no Domainslib).

    A pool owns [jobs - 1] long-lived worker domains; the caller's domain is
    the [jobs]-th participant. Work is submitted as an indexed batch; every
    participant pulls the next unclaimed index from a shared atomic cursor
    (dynamic scheduling, so heavily skewed task sizes — e.g. diameter
    clusters — balance automatically). Results land in a pre-sized array at
    their task's own index, so [map] is order-preserving and the output is
    identical to the sequential run regardless of interleaving.

    Tasks must not mutate shared state: they may read shared immutable data
    (the data graph, prebuilt indices) and write only task-local structures.
    Exceptions raised by tasks are caught, the batch is drained, and the
    first exception (by completion time) is re-raised in the caller with its
    backtrace. A pool survives a failed batch and can be reused. *)

type t

val serial : t
(** The always-available sequential pool: [jobs = 1], no worker domains, no
    shutdown needed. [map serial f] is [Array.map f]. *)

val default_jobs : unit -> int
(** The [SKINNY_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** A pool of [jobs] participants ([jobs - 1] spawned worker domains).
    [jobs] defaults to {!default_jobs}[ ()] and is clamped to at least 1.
    Call {!shutdown} when done, or use {!with_pool}. *)

val jobs : t -> int
(** Number of participants (worker domains + the calling domain). *)

val shutdown : t -> unit
(** Join all worker domains. Idempotent; [serial] needs none. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down afterwards,
    also on exceptions. *)

val map : ?run:Run.t -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel, order-preserving map with dynamic scheduling. With [?run],
    every participant calls {!Run.check} between task claims: once the run
    is interrupted no further task starts, already-raised {!Run.Cancelled}
    rides the normal failed-batch drain, and the first such exception is
    re-raised in the caller — the pool stays reusable afterwards. Tasks
    that should survive interruption and return partial results must
    handle the run themselves and be submitted without [?run]. *)

val map_list : ?run:Run.t -> t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val map_reduce :
  ?run:Run.t -> t -> map:('a -> 'b) -> combine:('acc -> 'b -> 'acc) ->
  init:'acc -> 'a array -> 'acc
(** Parallel map followed by a {e deterministic} sequential fold in task
    index order — the combine order never depends on [jobs]. *)

val slices : 'a array -> pieces:int -> 'a array array
(** Split an array into at most [pieces] contiguous slices of near-equal
    length (fewer when the array is shorter); concatenation restores the
    input. Used to chunk fine-grained work into pool tasks. *)
