(* Domain pool: long-lived workers blocked on a condition variable; each
   batch bumps a generation counter and installs a participation closure.
   The closure owns the batch state (task array, atomic cursor, result
   slots), so workers that miss a generation or wake late run a no-op. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable generation : int;
  mutable batch : (unit -> unit) option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let make_handle jobs =
  {
    jobs;
    mutex = Mutex.create ();
    cond = Condition.create ();
    generation = 0;
    batch = None;
    stop = false;
    workers = [];
  }

let serial = make_handle 1

let default_jobs () =
  match Sys.getenv_opt "SKINNY_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let worker_loop t =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = !seen do
      Condition.wait t.cond t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      let gen = t.generation and job = t.batch in
      Mutex.unlock t.mutex;
      seen := gen;
      (match job with Some f -> f () | None -> ());
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let t = make_handle jobs in
  if jobs > 1 then
    t.workers <-
      List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  if t.workers <> [] then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map ?run t f arr =
  let n = Array.length arr in
  let guard () = match run with Some r -> Run.check r | None -> () in
  if n = 0 then [||]
  else if t.workers = [] || n = 1 then
    Array.map
      (fun x ->
        guard ();
        f x)
      arr
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let error = Atomic.make None in
    let participate () =
      let rec pull () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (* After a failure the batch is drained without running the
             remaining tasks, so [completed] still reaches [n]. A cancelled
             run rides the same path: the [Run.check] between task claims
             raises, the first raiser records the exception, and everyone
             else drains. *)
          (if Atomic.get error = None then
             try
               guard ();
               results.(i) <- Some (f arr.(i))
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set error None (Some (e, bt))));
          Atomic.incr completed;
          pull ()
        end
      in
      pull ()
    in
    Mutex.lock t.mutex;
    t.batch <- Some participate;
    t.generation <- t.generation + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    participate ();
    (* The cursor is exhausted; only tasks already claimed by workers are
       still in flight, so this wait is short. The atomic read also
       publishes the workers' writes to [results]. *)
    while Atomic.get completed < n do
      Domain.cpu_relax ()
    done;
    match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?run t f l = Array.to_list (map ?run t f (Array.of_list l))

let map_reduce ?run t ~map:f ~combine ~init arr =
  Array.fold_left combine init (map ?run t f arr)

let slices arr ~pieces =
  let n = Array.length arr in
  let pieces = max 1 (min pieces n) in
  if n = 0 then [||]
  else
    Array.init pieces (fun k ->
        let lo = k * n / pieces and hi = (k + 1) * n / pieces in
        Array.sub arr lo (hi - lo))
