let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)
