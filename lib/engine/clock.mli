(** Wall-clock timing for the mining stages.

    [Sys.time] measures process CPU time, which *grows* with the number of
    worker domains; every speedup measurement in this repo therefore goes
    through this module instead. *)

val now : unit -> float
(** Seconds since the epoch, wall clock. Only differences are meaningful. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed wall-clock
    seconds. *)
