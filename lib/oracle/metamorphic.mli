(** Metamorphic invariants: properties of the miner that need no oracle —
    they relate two runs of the production pipeline to each other, so they
    hold at any scale the miner itself can handle, not just oracle-sized
    instances.

    - {b σ monotonicity}: every pattern mined at σ+1 clears its threshold
      and appears, with identical support, in the σ answer. (Containment,
      not equality: support |E[P]| is not anti-monotone, so a higher σ can
      legitimately starve growth chains and lose patterns whose support
      would still qualify — the same caveat Theorem 2 sidesteps at σ = 1.)
    - {b permutation invariance}: permuting data-graph vertex ids must not
      change the answer set (canonical keys and supports).
    - {b jobs stability}: [jobs = 1] and [jobs = n] must produce
      byte-identical serialized outputs.
    - {b cancel / resume-from-store}: a budget-capped run is byte-identical
      to a prefix of the full run; persisting the partial result and loading
      it back round-trips; an asynchronous mid-run cancel yields a subset of
      the full answer with matching supports, and re-running completes it. *)

type failure = { check : string; detail : string }
(** One violated invariant, with enough detail to reproduce. *)

(** Every invariant is constraint-generic: [family] (default [Skinny])
    selects the production config, and the invariants hold for any family
    the miner supports — they never mention the constraint predicate itself.
    Neighborhood runs take [l = 0] with the radius in [delta]. *)

val sigma_monotone :
  ?family:Spm_core.Constraints.family ->
  Spm_graph.Graph.t -> l:int -> delta:int -> sigma:int -> failure list
(** Compares the runs at [sigma] and [sigma + 1]. *)

val relabel_invariant :
  ?family:Spm_core.Constraints.family ->
  seed:int -> Spm_graph.Graph.t -> l:int -> delta:int -> sigma:int ->
  failure list
(** The permutation is drawn from [seed]. *)

val jobs_stable :
  ?jobs:int ->
  ?family:Spm_core.Constraints.family ->
  Spm_graph.Graph.t -> l:int -> delta:int -> sigma:int ->
  failure list
(** [jobs] defaults to 4. *)

val cancel_resume :
  ?family:Spm_core.Constraints.family ->
  dir:string -> Spm_graph.Graph.t -> l:int -> delta:int -> sigma:int ->
  failure list
(** [dir] is a scratch directory for the store file (the caller owns its
    lifetime — tests pass a per-run temp dir). *)

val run_item : dir:string -> Corpus.item -> failure list
(** All four invariant families on one corpus item, under the item's own
    constraint family. *)
