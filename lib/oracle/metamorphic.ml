(* Metamorphic invariants over the production miner. See metamorphic.mli. *)

open Spm_core
module Pattern = Spm_pattern.Pattern
module Canon = Spm_pattern.Canon

type failure = { check : string; detail : string }

let fail check fmt = Printf.ksprintf (fun detail -> { check; detail }) fmt

let mine ?(jobs = 1) ?max_patterns ?run ?(family = Constraints.Skinny) g ~l
    ~delta ~sigma =
  Skinny_mine.mine ?run
    ~config:{ Skinny_mine.Config.default with jobs; max_patterns; family }
    g ~l ~delta ~sigma

let mined_bytes patterns =
  let w = Spm_store.Codec.W.create () in
  List.iter (Spm_store.Store.write_mined w) patterns;
  Spm_store.Codec.W.contents w

(* (canonical key, support) multiset — pattern-set identity up to iso. *)
let keyed patterns =
  List.map
    (fun (m : Skinny_mine.mined) ->
      (Canon.key m.Skinny_mine.pattern, m.Skinny_mine.support))
    patterns
  |> List.sort compare

(* Support is |E[P]| — NOT anti-monotone — so raising sigma strengthens the
   growth pruning: a support-sigma intermediate that carried the chain at
   sigma is dead at sigma+1, and everything above it goes unreached. The
   sound direction is containment: every pattern mined at sigma+1 was mined
   at sigma with the same support (>= sigma+1); equality with the filtered
   subset does not hold in general. *)
let sigma_monotone ?family g ~l ~delta ~sigma =
  let lo = keyed (mine ?family g ~l ~delta ~sigma).Skinny_mine.patterns in
  let hi =
    keyed (mine ?family g ~l ~delta ~sigma:(sigma + 1)).Skinny_mine.patterns
  in
  let bad_support = List.filter (fun (_, s) -> s < sigma + 1) hi in
  let escaped = List.filter (fun kv -> not (List.mem kv lo)) hi in
  if bad_support <> [] then
    [
      fail "sigma-monotone"
        "sigma %d run emitted %d patterns below its own threshold" (sigma + 1)
        (List.length bad_support);
    ]
  else if escaped <> [] then
    [
      fail "sigma-monotone"
        "sigma %d -> %d: %d patterns of the stricter run are not in the \
         looser run (or changed support)"
        sigma (sigma + 1) (List.length escaped);
    ]
  else []

let permute_graph st (g : Spm_graph.Graph.t) =
  let n = Spm_graph.Graph.n g in
  let perm = Array.init n (fun i -> i) in
  Spm_graph.Gen.shuffle st perm;
  let labels = Array.make n 0 in
  Array.iteri
    (fun v l -> labels.(perm.(v)) <- l)
    (Spm_graph.Graph.labels g);
  let edges =
    List.map (fun (u, v) -> (perm.(u), perm.(v))) (Spm_graph.Graph.edges g)
  in
  Spm_graph.Graph.Builder.of_edges ~labels edges

let relabel_invariant ?family ~seed g ~l ~delta ~sigma =
  let g' = permute_graph (Spm_graph.Gen.rng seed) g in
  let a = keyed (mine ?family g ~l ~delta ~sigma).Skinny_mine.patterns in
  let b = keyed (mine ?family g' ~l ~delta ~sigma).Skinny_mine.patterns in
  if a <> b then
    [
      fail "relabel-invariant"
        "vertex permutation (seed %d) changed the answer: %d vs %d keyed \
         patterns"
        seed (List.length a) (List.length b);
    ]
  else []

let jobs_stable ?(jobs = 4) ?family g ~l ~delta ~sigma =
  let a = (mine ~jobs:1 ?family g ~l ~delta ~sigma).Skinny_mine.patterns in
  let b = (mine ~jobs ?family g ~l ~delta ~sigma).Skinny_mine.patterns in
  if mined_bytes a <> mined_bytes b then
    [
      fail "jobs-stable" "jobs 1 vs %d: serialized outputs differ (%d vs %d)"
        jobs (List.length a) (List.length b);
    ]
  else []

let take k l = List.filteri (fun i _ -> i < k) l

let cancel_resume ?(family = Constraints.Skinny) ~dir g ~l ~delta ~sigma =
  let failures = ref [] in
  let add f = failures := f :: !failures in
  let full = mine ~family g ~l ~delta ~sigma in
  let full_pats = full.Skinny_mine.patterns in
  let total = List.length full_pats in
  (* Budget cap = deterministic prefix of the uncapped emission order. *)
  let k = max 1 (total / 2) in
  let capped =
    (mine ~max_patterns:k ~family g ~l ~delta ~sigma).Skinny_mine.patterns
  in
  if total > 0 && mined_bytes capped <> mined_bytes (take k full_pats) then
    add
      (fail "cancel-prefix"
         "max_patterns=%d is not a byte-identical prefix of the full run \
          (%d patterns)"
         k total);
  (* Persist the partial result; the store round trip must preserve it. *)
  let store =
    Spm_store.Store.of_result ~family ~graph:g ~l ~delta ~sigma
      ~closed_growth:false
      { full with Skinny_mine.patterns = capped }
  in
  let path = Filename.concat dir "metamorphic_partial.spm" in
  Spm_store.Store.save path store;
  let loaded = Spm_store.Store.load path in
  if
    mined_bytes loaded.Spm_store.Store.patterns <> mined_bytes capped
    || loaded.Spm_store.Store.l <> l
    || loaded.Spm_store.Store.delta <> delta
    || loaded.Spm_store.Store.sigma <> sigma
  then
    add
      (fail "cancel-store-roundtrip"
         "partial store save/load did not round-trip (%d patterns)"
         (List.length capped));
  (* Asynchronous cancel: whenever it lands, the partial answer must be a
     subset of the full one with matching supports — and a fresh full run
     (the "resume") must still be byte-identical to the first. *)
  let run = Spm_engine.Run.create () in
  let result = ref None in
  let t =
    Thread.create
      (fun () -> result := Some (mine ~run ~family g ~l ~delta ~sigma))
      ()
  in
  Thread.delay 0.002;
  Spm_engine.Run.cancel run;
  Thread.join t;
  (match !result with
  | None -> add (fail "cancel-subset" "cancelled mine returned no result")
  | Some partial ->
    let fk = keyed full_pats in
    List.iter
      (fun kv ->
        if not (List.mem kv fk) then
          add
            (fail "cancel-subset"
               "pattern emitted under cancellation is not in the full \
                answer set"))
      (keyed partial.Skinny_mine.patterns));
  let again = mine ~family g ~l ~delta ~sigma in
  if mined_bytes again.Skinny_mine.patterns <> mined_bytes full_pats then
    add (fail "cancel-resume" "re-run after cancel is not byte-identical");
  List.rev !failures

let run_item ~dir (it : Corpus.item) =
  let g = it.Corpus.graph in
  let l = it.Corpus.l and delta = it.Corpus.delta and sigma = it.Corpus.sigma in
  let family = it.Corpus.family in
  sigma_monotone ~family g ~l ~delta ~sigma
  @ relabel_invariant ~family ~seed:it.Corpus.seed g ~l ~delta ~sigma
  @ jobs_stable ~family g ~l ~delta ~sigma
  @ cancel_resume ~family ~dir g ~l ~delta ~sigma
