(* The seeded differential corpus. See corpus.mli. *)

open Spm_graph
module Constraints = Spm_core.Constraints

type item = {
  name : string;
  seed : int;
  family : Constraints.family;
  l : int;
  delta : int;
  sigma : int;
  graph : Graph.t;
}

let clique labels =
  let n = Array.length labels in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.Builder.of_edges ~labels !edges

let bipartite left right =
  let nl = Array.length left in
  let labels = Array.append left right in
  let edges = ref [] in
  Array.iteri
    (fun i _ ->
      Array.iteri (fun j _ -> edges := (i, nl + j) :: !edges) right)
    left;
  Graph.Builder.of_edges ~labels !edges

(* A 2 x k grid (ladder): rung i is vertices (2i, 2i+1). *)
let ladder k labels =
  let edges = ref [] in
  for i = 0 to k - 1 do
    edges := (2 * i, (2 * i) + 1) :: !edges;
    if i < k - 1 then begin
      edges := (2 * i, 2 * (i + 1)) :: !edges;
      edges := ((2 * i) + 1, (2 * (i + 1)) + 1) :: !edges
    end
  done;
  Graph.Builder.of_edges ~labels !edges

let injected ~seed ~n ~num_labels ~backbone ~twigs ~copies =
  let st = Gen.rng seed in
  let bg = Gen.erdos_renyi st ~n ~avg_degree:1.8 ~num_labels in
  let b = Graph.Builder.of_graph bg in
  let pat =
    Gen.random_skinny_pattern st ~backbone ~delta:1 ~twigs ~num_labels
  in
  ignore (Gen.inject st b ~pattern:pat ~copies ());
  Graph.Builder.freeze b

let er ~seed ~n ~avg_degree ~num_labels =
  Gen.erdos_renyi (Gen.rng seed) ~n ~avg_degree ~num_labels

let cyc k = Array.init k (fun i -> i mod 3)

let builtin () =
  [
    {
      name = "path8";
      seed = 101;
      family = Constraints.Skinny;
      l = 3;
      delta = 1;
      sigma = 1;
      graph = Gen.path_graph (cyc 9);
    }
    (* Two label-2 vertices at distance 6: paths and their sub-paths only. *);
    {
      name = "path12_sparse_labels";
      seed = 102;
      family = Constraints.Skinny;
      l = 4;
      delta = 1;
      sigma = 2;
      graph =
        Gen.path_graph
          (Array.init 13 (fun i -> if i = 3 || i = 9 then 2 else i mod 2));
    };
    {
      name = "star6";
      seed = 103;
      family = Constraints.Skinny;
      l = 2;
      delta = 1;
      sigma = 2;
      graph = Gen.star_graph ~center:9 [| 1; 2; 1; 2; 1; 2 |];
    };
    {
      name = "clique4";
      seed = 104;
      family = Constraints.Skinny;
      l = 2;
      delta = 1;
      sigma = 1;
      graph = clique [| 0; 1; 0; 1 |];
    };
    {
      name = "clique5";
      seed = 105;
      family = Constraints.Skinny;
      l = 2;
      delta = 2;
      sigma = 2;
      graph = clique [| 0; 1; 2; 0; 1 |];
    };
    {
      name = "bipartite23";
      seed = 106;
      family = Constraints.Skinny;
      l = 2;
      delta = 1;
      sigma = 1;
      graph = bipartite [| 0; 0 |] [| 1; 1; 1 |];
    };
    {
      name = "bipartite33";
      seed = 107;
      family = Constraints.Skinny;
      l = 3;
      delta = 1;
      sigma = 2;
      graph = bipartite [| 0; 1; 0 |] [| 2; 2; 2 |];
    }
    (* The documented paradigm-gap shape: C4 itself plus its relatives. *);
    {
      name = "cycle6";
      seed = 108;
      family = Constraints.Skinny;
      l = 2;
      delta = 1;
      sigma = 1;
      graph = Gen.cycle_graph (cyc 6);
    };
    {
      name = "cycle8";
      seed = 109;
      family = Constraints.Skinny;
      l = 4;
      delta = 1;
      sigma = 1;
      graph = Gen.cycle_graph (cyc 8);
    };
    {
      name = "ladder4";
      seed = 110;
      family = Constraints.Skinny;
      l = 3;
      delta = 1;
      sigma = 1;
      graph = ladder 4 [| 0; 1; 0; 1; 0; 1; 0; 1 |];
    };
    {
      name = "er14_sparse";
      seed = 111;
      family = Constraints.Skinny;
      l = 3;
      delta = 2;
      sigma = 1;
      graph = er ~seed:111 ~n:14 ~avg_degree:2.0 ~num_labels:2;
    };
    {
      name = "er10_dense";
      seed = 112;
      family = Constraints.Skinny;
      l = 2;
      delta = 2;
      sigma = 2;
      graph = er ~seed:112 ~n:10 ~avg_degree:3.0 ~num_labels:2;
    };
    {
      name = "er12_3labels";
      seed = 113;
      family = Constraints.Skinny;
      l = 4;
      delta = 2;
      sigma = 1;
      graph = er ~seed:113 ~n:12 ~avg_degree:2.2 ~num_labels:3;
    };
    {
      name = "inject_skinny2";
      seed = 114;
      family = Constraints.Skinny;
      l = 3;
      delta = 1;
      sigma = 2;
      graph =
        injected ~seed:114 ~n:10 ~num_labels:4 ~backbone:3 ~twigs:1 ~copies:2;
    }
    (* --- r-neighborhood items: l = 0, the radius rides in [delta]. --- *);
    {
      name = "nbr_star6";
      seed = 201;
      family = Constraints.Neighborhood { center = None };
      l = 0;
      delta = 1;
      sigma = 1;
      graph = Gen.star_graph ~center:9 [| 1; 2; 1; 2; 1; 2 |];
    };
    {
      name = "nbr_path8";
      seed = 202;
      family = Constraints.Neighborhood { center = None };
      l = 0;
      delta = 2;
      sigma = 1;
      graph = Gen.path_graph (cyc 9);
    };
    {
      name = "nbr_clique5";
      seed = 203;
      family = Constraints.Neighborhood { center = None };
      l = 0;
      delta = 1;
      sigma = 2;
      graph = clique [| 0; 1; 2; 0; 1 |];
    };
    {
      name = "nbr_cycle6";
      seed = 204;
      family = Constraints.Neighborhood { center = None };
      l = 0;
      delta = 2;
      sigma = 1;
      graph = Gen.cycle_graph (cyc 6);
    };
    {
      name = "nbr_er12";
      seed = 205;
      family = Constraints.Neighborhood { center = None };
      l = 0;
      delta = 2;
      sigma = 2;
      graph = er ~seed:205 ~n:12 ~avg_degree:2.2 ~num_labels:3;
    }
    (* Centered variant: only label-2 vertices may anchor the ball. *);
    {
      name = "nbr_center2";
      seed = 206;
      family = Constraints.Neighborhood { center = Some 2 };
      l = 0;
      delta = 2;
      sigma = 1;
      graph =
        Gen.path_graph
          (Array.init 13 (fun i -> if i = 3 || i = 9 then 2 else i mod 2));
    };
  ]

let skinny_items () =
  List.filter (fun it -> it.family = Constraints.Skinny) (builtin ())

let neighborhood_items () =
  List.filter (fun it -> it.family <> Constraints.Skinny) (builtin ())

let find name = List.find (fun it -> String.equal it.name name) (builtin ())
let filename it = it.name ^ ".graph"

let render it =
  match it.family with
  | Constraints.Skinny ->
    Printf.sprintf "# corpus %s seed=%d l=%d delta=%d sigma=%d\n%s" it.name
      it.seed it.l it.delta it.sigma
      (Io.to_string it.graph)
  | Constraints.Neighborhood { center } ->
    Printf.sprintf "# corpus %s seed=%d family=neighborhood r=%d sigma=%d \
                    center=%s\n%s"
      it.name it.seed it.delta it.sigma
      (match center with None -> "any" | Some c -> string_of_int c)
      (Io.to_string it.graph)

let write_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun it ->
      let oc = open_out_bin (Filename.concat dir (filename it)) in
      output_string oc (render it);
      close_out oc)
    (builtin ())
