(** The brute-force reference miner — correct by construction.

    Everything here deliberately reimplements, with the most naive correct
    algorithm available, the machinery the optimized miners are built on:
    subgraph enumeration (breadth-first closure over connected edge subsets,
    deduplicated by edge-set identity), isomorphism (plain backtracking over
    vertex bijections), support (an embedding subgraph of P {e is} a
    connected edge subset of G isomorphic to P, so |E[P]| is a count over the
    enumeration — no matcher involved), and the (l,δ)-skinny predicate
    (all-pairs BFS, exhaustive realizing-path enumeration, the Definition 3
    path order spelled out). No code is shared with [lib/core], [lib/pattern]
    or [lib/gspan] beyond reading the input {!Spm_graph.Graph.t} and
    converting representatives at the reporting boundary.

    Exponential everywhere: intended for data graphs of a few dozen edges
    and patterns up to ~10 vertices, which is what the differential corpus
    uses ({!Corpus}). *)

type pat = {
  labels : int array;  (** label of local vertex i *)
  edges : (int * int) list;  (** u < v, sorted; no duplicates *)
}
(** A pattern with dense local vertex ids [0..n-1]. *)

val of_pattern : Spm_pattern.Pattern.t -> pat

val to_pattern : pat -> Spm_pattern.Pattern.t

val order : pat -> int
(** Vertices. *)

val size : pat -> int
(** Edges. *)

val iso : pat -> pat -> bool
(** Naive backtracking isomorphism (label-preserving vertex bijection that
    maps the edge set onto the edge set). *)

val connected : pat -> bool

val ecc : pat -> int -> int
(** [ecc p v] — max BFS distance from local vertex [v]; [max_int] when some
    vertex is unreachable from [v]. *)

val diameter : pat -> int
(** Max pairwise BFS distance. The pattern must be connected. *)

val canonical_diameter : pat -> int array
(** The minimum, under (label sequence, then vertex-id sequence), of all
    directed simple paths of length D whose endpoints are at distance D —
    the reference rendering of Definitions 2–3, independent of
    {!Spm_core.Canonical_diameter}. *)

val is_target : pat -> l:int -> delta:int -> bool
(** The isomorphism-class reading of Definitions 6–7: diameter exactly [l]
    and {e some} realizing path carrying the minimal label sequence has all
    vertices within [delta]. The per-representation predicate (levels w.r.t.
    the id-tiebroken {!canonical_diameter}) is not invariant under vertex
    renumbering when label ties pick structurally different paths; since a
    renumbering can make any label-minimal realizing path canonical, the
    class is a target exactly when one such path works. The production miner
    grows patterns whose backbone owns ids [0..l], so its outputs satisfy
    this predicate by construction. *)

val is_neighborhood : ?center:int -> pat -> r:int -> bool
(** The r-neighborhood family's predicate, naively: connected, at least one
    edge, and some vertex — any vertex, or one labeled [center] when given —
    has eccentricity at most [r]. Eccentricity is invariant under vertex
    renumbering, so unlike {!is_target} the class-level and
    per-representation readings coincide. *)

val immediate_subs : pat -> pat list
(** Connected one-edge-deletion subpatterns with at least one edge (an
    isolated endpoint is dropped), deduplicated up to {!iso}. *)

val count_embeddings :
  ?max_subsets:int -> pat -> Spm_graph.Graph.t -> int
(** |E[P]| by exhaustive enumeration of injective label/edge-preserving
    mappings, counting distinct image edge sets. *)

type found = {
  rep : pat;  (** class representative, as first enumerated *)
  support : int;  (** number of connected subsets of G in the class *)
  occurrences : (int * int) list list;
      (** every embedding subgraph, as a sorted data-graph edge list *)
}

type result = {
  found : found list;  (** target classes with [support >= sigma] *)
  enumerated : int;  (** connected edge subsets visited *)
  classes : int;  (** isomorphism classes among them *)
}

exception Too_large of string
(** Raised when the enumeration exceeds [max_subsets] — the instance is out
    of the oracle's league and the caller should shrink it, not trust a
    truncated answer. *)

val mine_pred :
  ?max_vertices:int ->
  ?max_edges:int ->
  ?max_subsets:int ->
  Spm_graph.Graph.t ->
  sigma:int ->
  pred:(pat -> bool) ->
  result
(** The constraint-generic oracle: every isomorphism class of connected edge
    subsets with at least [sigma] distinct embedding subgraphs that satisfies
    [pred] (a property of the class — it is evaluated on one representative).
    {!mine} and {!mine_neighborhood} are its two instantiations. *)

val mine :
  ?max_vertices:int ->
  ?max_edges:int ->
  ?max_subsets:int ->
  Spm_graph.Graph.t ->
  l:int ->
  delta:int ->
  sigma:int ->
  result
(** All l-long δ-skinny patterns of the graph with at least [sigma] distinct
    embedding subgraphs, restricted to patterns with at most [max_vertices]
    (default 10) vertices and [max_edges] (default 12) edges.
    @raise Too_large past [max_subsets] (default 2_000_000) subsets. *)

val mine_neighborhood :
  ?max_vertices:int ->
  ?max_edges:int ->
  ?max_subsets:int ->
  ?center:int ->
  Spm_graph.Graph.t ->
  r:int ->
  sigma:int ->
  result
(** [mine_pred] at {!is_neighborhood}: all frequent patterns lying within
    radius [r] of some (optionally [center]-labeled) vertex. *)
