(* The brute-force reference miner. Everything is reimplemented naively on
   purpose: this module is the fixed point the optimized miners are diffed
   against, so it must not share their code paths. See brute.mli. *)

type pat = { labels : int array; edges : (int * int) list }

exception Too_large of string

let order p = Array.length p.labels
let size p = List.length p.edges

let norm_edge u v = if u < v then (u, v) else (v, u)

let of_pattern (g : Spm_pattern.Pattern.t) =
  {
    labels = Array.copy (Spm_graph.Graph.labels g);
    edges = List.sort compare (Spm_graph.Graph.edges g);
  }

let to_pattern p = Spm_graph.Graph.Builder.of_edges ~labels:p.labels p.edges

(* Plain adjacency lists, rebuilt on every call — naive by design. *)
let adj_of p =
  let a = Array.make (order p) [] in
  List.iter
    (fun (u, v) ->
      a.(u) <- v :: a.(u);
      a.(v) <- u :: a.(v))
    p.edges;
  a

let bfs_dist adj n src =
  let d = Array.make n (-1) in
  d.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if d.(v) < 0 then begin
          d.(v) <- d.(u) + 1;
          Queue.add v q
        end)
      adj.(u)
  done;
  d

let connected p =
  let n = order p in
  n = 0 || Array.for_all (fun d -> d >= 0) (bfs_dist (adj_of p) n 0)

let ecc p v =
  let d = bfs_dist (adj_of p) (order p) v in
  Array.fold_left
    (fun acc x -> if x < 0 then max_int else max acc x)
    0 d

let dist_matrix p =
  let n = order p in
  let adj = adj_of p in
  Array.init n (fun v -> bfs_dist adj n v)

let diameter p =
  let dm = dist_matrix p in
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc d ->
          if d < 0 then invalid_arg "Brute.diameter: disconnected pattern"
          else max acc d)
        acc row)
    0 dm

(* All directed simple paths of exactly [len] edges, by exhaustive DFS. *)
let simple_paths p ~len =
  let adj = adj_of p in
  let n = order p in
  let out = ref [] in
  let path = Array.make (len + 1) (-1) in
  let on_path = Array.make n false in
  let rec go depth u =
    path.(depth) <- u;
    on_path.(u) <- true;
    if depth = len then out := Array.copy path :: !out
    else
      List.iter (fun v -> if not on_path.(v) then go (depth + 1) v) adj.(u);
    on_path.(u) <- false
  in
  for v = 0 to n - 1 do
    go 0 v
  done;
  !out

(* Definition 3's total order restricted to equal-length paths: label
   sequence first, then the vertex-id sequence. *)
let compare_path p a b =
  let la = Array.map (fun v -> p.labels.(v)) a
  and lb = Array.map (fun v -> p.labels.(v)) b in
  let c = compare la lb in
  if c <> 0 then c else compare a b

let canonical_diameter p =
  if order p = 0 then invalid_arg "Brute.canonical_diameter: empty pattern";
  let dm = dist_matrix p in
  let d = diameter p in
  let realizing =
    simple_paths p ~len:d
    |> List.filter (fun path -> dm.(path.(0)).(path.(d)) = d)
  in
  match realizing with
  | [] -> assert false (* a shortest path of length D always realizes D *)
  | first :: rest ->
    List.fold_left
      (fun best c -> if compare_path p c best < 0 then c else best)
      first rest

(* Levels w.r.t. one path: distance of every vertex to the path — min over
   path vertices of a plain BFS distance, naive multi-source. *)
let levels_within p path ~delta =
  let adj = adj_of p in
  let n = order p in
  let dists = Array.map (fun v -> bfs_dist adj n v) path in
  let ok = ref true in
  for v = 0 to n - 1 do
    let lvl = Array.fold_left (fun acc d -> min acc d.(v)) max_int dists in
    if lvl > delta then ok := false
  done;
  !ok

(* Whether the isomorphism CLASS of [p] is an (l, delta) target.

   The canonical diameter breaks label ties by physical vertex ids
   (Definition 3), so which realizing path is canonical — and hence whether
   every vertex sits within delta of it — can differ between two numberings
   of the same abstract pattern. Renumbering can promote any label-minimal
   realizing path to canonical, so the class-level predicate is: some
   realizing path with the minimal label sequence has all levels <= delta.
   This is the representation the production miner grows (its backbone
   carries ids 0..l), so mined patterns satisfy it by construction. *)
let is_target p ~l ~delta =
  order p > 0 && connected p
  && diameter p = l
  &&
  let dm = dist_matrix p in
  let realizing =
    simple_paths p ~len:l
    |> List.filter (fun path -> dm.(path.(0)).(path.(l)) = l)
  in
  let labels_of path = Array.map (fun v -> p.labels.(v)) path in
  match realizing with
  | [] -> false
  | first :: rest ->
    let minlab =
      List.fold_left
        (fun acc path -> min acc (labels_of path))
        (labels_of first) rest
    in
    List.exists
      (fun path -> labels_of path = minlab && levels_within p path ~delta)
      realizing

(* The r-neighborhood predicate, class-level: some admissible center sees
   every vertex within r. Unlike [is_target] there is no representation
   subtlety — eccentricity is renumbering-invariant. *)
let is_neighborhood ?center p ~r =
  order p > 0 && connected p
  &&
  let n = order p in
  let rec loop v =
    v < n
    && (((match center with None -> true | Some c -> p.labels.(v) = c)
        && ecc p v <= r)
       || loop (v + 1))
  in
  loop 0

(* --- Naive isomorphism: backtracking over label-preserving bijections. --- *)

let degrees p =
  let d = Array.make (order p) 0 in
  List.iter
    (fun (u, v) ->
      d.(u) <- d.(u) + 1;
      d.(v) <- d.(v) + 1)
    p.edges;
  d

let iso p q =
  let n = order p in
  if n <> order q || size p <> size q then false
  else if
    List.sort compare (Array.to_list p.labels)
    <> List.sort compare (Array.to_list q.labels)
  then false
  else begin
    let dp = degrees p and dq = degrees q in
    let has_edge_q =
      let t = Hashtbl.create (2 * size q) in
      List.iter (fun (u, v) -> Hashtbl.replace t (norm_edge u v) ()) q.edges;
      fun u v -> Hashtbl.mem t (norm_edge u v)
    in
    let adj_p = adj_of p in
    let map = Array.make n (-1) in
    let used = Array.make n false in
    let rec go v =
      if v = n then true
      else
        let rec try_target w =
          if w = n then false
          else if
            (not used.(w))
            && p.labels.(v) = q.labels.(w)
            && dp.(v) = dq.(w)
            && List.for_all
                 (fun u -> map.(u) < 0 || has_edge_q map.(u) w)
                 adj_p.(v)
          then begin
            map.(v) <- w;
            used.(w) <- true;
            if go (v + 1) then true
            else begin
              map.(v) <- -1;
              used.(w) <- false;
              try_target (w + 1)
            end
          end
          else try_target (w + 1)
        in
        try_target 0
    in
    (* Equal vertex count, edge count, injective and edge-preserving: the
       image of the edge set is the whole edge set, so this is a full
       isomorphism, not just an embedding. *)
    go 0
  end

(* --- One-edge deletions (with >= 1 edge), up to iso. --- *)

let normalize labels edges =
  (* Keep only vertices that carry an edge; renumber densely. *)
  let n = Array.length labels in
  let keep = Array.make n false in
  List.iter
    (fun (u, v) ->
      keep.(u) <- true;
      keep.(v) <- true)
    edges;
  let idx = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if keep.(v) then begin
      idx.(v) <- !next;
      incr next
    end
  done;
  {
    labels =
      Array.of_list
        (List.filteri (fun v _ -> keep.(v)) (Array.to_list labels));
    edges =
      List.sort compare (List.map (fun (u, v) -> (idx.(u), idx.(v))) edges);
  }

let immediate_subs p =
  let subs =
    List.filter_map
      (fun e ->
        let edges = List.filter (fun e' -> e' <> e) p.edges in
        if edges = [] then None
        else
          let q = normalize p.labels edges in
          if connected q then Some q else None)
      p.edges
  in
  List.fold_left
    (fun acc q -> if List.exists (iso q) acc then acc else q :: acc)
    [] subs
  |> List.rev

(* --- Embedding counting: exhaustive injective mapping enumeration. --- *)

let count_embeddings ?(max_subsets = 2_000_000) p (g : Spm_graph.Graph.t) =
  let np = order p in
  if np = 0 then 0
  else begin
    let ng = Spm_graph.Graph.n g in
    let adj_p = adj_of p in
    (* A connected visit order so each new vertex has a mapped neighbor. *)
    let ord = Array.make np (-1) in
    let seen = Array.make np false in
    let k = ref 0 in
    let rec visit v =
      if not seen.(v) then begin
        seen.(v) <- true;
        ord.(!k) <- v;
        incr k;
        List.iter visit adj_p.(v)
      end
    in
    visit 0;
    if !k < np then invalid_arg "Brute.count_embeddings: disconnected pattern";
    let images = Hashtbl.create 64 in
    let map = Array.make np (-1) in
    let used = Hashtbl.create 16 in
    let record () =
      let img =
        List.sort compare
          (List.map (fun (u, v) -> norm_edge map.(u) map.(v)) p.edges)
      in
      Hashtbl.replace images img ();
      if Hashtbl.length images > max_subsets then
        raise (Too_large "count_embeddings: too many embeddings")
    in
    let rec go i =
      if i = np then record ()
      else
        let v = ord.(i) in
        for w = 0 to ng - 1 do
          if
            (not (Hashtbl.mem used w))
            && Spm_graph.Graph.label g w = p.labels.(v)
            && List.for_all
                 (fun u ->
                   map.(u) < 0 || Spm_graph.Graph.has_edge g map.(u) w)
                 adj_p.(v)
          then begin
            map.(v) <- w;
            Hashtbl.replace used w ();
            go (i + 1);
            Hashtbl.remove used w;
            map.(v) <- -1
          end
        done
    in
    go 0;
    Hashtbl.length images
  end

(* --- Enumeration of connected edge subsets + classification. --- *)

type found = {
  rep : pat;
  support : int;
  occurrences : (int * int) list list;
}

type result = { found : found list; enumerated : int; classes : int }

(* The pattern of a connected data-edge subset, with its data vertices
   renumbered in ascending order. *)
let pat_of_subset (g : Spm_graph.Graph.t) edges =
  let vs =
    List.sort_uniq compare (List.concat_map (fun (u, v) -> [ u; v ]) edges)
  in
  let idx = Hashtbl.create (List.length vs) in
  List.iteri (fun i v -> Hashtbl.add idx v i) vs;
  {
    labels =
      Array.of_list (List.map (fun v -> Spm_graph.Graph.label g v) vs);
    edges =
      List.sort compare
        (List.map
           (fun (u, v) -> norm_edge (Hashtbl.find idx u) (Hashtbl.find idx v))
           edges);
  }

(* A cheap iso-invariant bucket key: vertex/edge counts plus the sorted
   multiset of (label, degree, sorted neighbor labels) signatures. *)
let bucket_key p =
  let adj = adj_of p in
  let sigs =
    Array.to_list
      (Array.mapi
         (fun v l ->
           ( l,
             List.length adj.(v),
             List.sort compare (List.map (fun w -> p.labels.(w)) adj.(v)) ))
         p.labels)
  in
  (order p, size p, List.sort compare sigs)

let mine_pred ?(max_vertices = 10) ?(max_edges = 12) ?(max_subsets = 2_000_000)
    (g : Spm_graph.Graph.t) ~sigma ~pred =
  let edges = Array.of_list (Spm_graph.Graph.edges g) in
  let m = Array.length edges in
  let incident = Array.make (Spm_graph.Graph.n g) [] in
  Array.iteri
    (fun i (u, v) ->
      incident.(u) <- i :: incident.(u);
      incident.(v) <- i :: incident.(v))
    edges;
  (* Breadth-first closure over connected edge subsets: every connected
     subset within the caps is reached (adding one incident edge at a time
     keeps connectivity), and the visited table makes each unique. *)
  let visited = Hashtbl.create 4096 in
  let key subset = String.concat "," (List.map string_of_int subset) in
  let frontier = Queue.create () in
  let all = ref [] in
  let enumerated = ref 0 in
  let push subset =
    let k = key subset in
    if not (Hashtbl.mem visited k) then begin
      Hashtbl.add visited k ();
      incr enumerated;
      if !enumerated > max_subsets then
        raise
          (Too_large
             (Printf.sprintf "enumeration passed %d connected subsets"
                max_subsets));
      Queue.add subset frontier;
      all := subset :: !all
    end
  in
  for i = 0 to m - 1 do
    push [ i ]
  done;
  while not (Queue.is_empty frontier) do
    let subset = Queue.pop frontier in
    if List.length subset < max_edges then begin
      let vs =
        List.sort_uniq compare
          (List.concat_map
             (fun i ->
               let u, v = edges.(i) in
               [ u; v ])
             subset)
      in
      let nv = List.length vs in
      List.iter
        (fun v ->
          List.iter
            (fun e ->
              if not (List.mem e subset) then begin
                let u', v' = edges.(e) in
                let fresh w = if List.mem w vs then 0 else 1 in
                if nv + fresh u' + fresh v' <= max_vertices then
                  push (List.sort compare (e :: subset))
              end)
            incident.(v))
        vs
    end
  done;
  (* Classify up to isomorphism; each subset in a class is one embedding
     subgraph of the class representative, so |class| = |E[P]|. *)
  let buckets = Hashtbl.create 1024 in
  let classes = ref [] in
  List.iter
    (fun subset ->
      let data_edges =
        List.sort compare (List.map (fun i -> edges.(i)) subset)
      in
      let p = pat_of_subset g data_edges in
      let bk = bucket_key p in
      let candidates = Hashtbl.find_all buckets bk in
      match List.find_opt (fun (q, _) -> iso p q) candidates with
      | Some (_, cell) -> cell := data_edges :: !cell
      | None ->
        let cell = ref [ data_edges ] in
        Hashtbl.add buckets bk (p, cell);
        classes := (p, cell) :: !classes)
    (List.rev !all);
  let classes = List.rev !classes in
  let found =
    List.filter_map
      (fun (p, cell) ->
        let occurrences = List.rev !cell in
        let support = List.length occurrences in
        if support >= sigma && pred p then Some { rep = p; support; occurrences }
        else None)
      classes
  in
  { found; enumerated = !enumerated; classes = List.length classes }

let mine ?max_vertices ?max_edges ?max_subsets g ~l ~delta ~sigma =
  mine_pred ?max_vertices ?max_edges ?max_subsets g ~sigma
    ~pred:(fun p -> is_target p ~l ~delta)

let mine_neighborhood ?max_vertices ?max_edges ?max_subsets ?center g ~r ~sigma
    =
  mine_pred ?max_vertices ?max_edges ?max_subsets g ~sigma
    ~pred:(fun p -> is_neighborhood ?center p ~r)
