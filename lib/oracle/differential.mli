(** The differential harness: run the production miners and the brute-force
    oracle over one instance and diff the answer sets.

    Pipelines compared, all restricted to patterns within the oracle's
    vertex/edge caps:

    - SkinnyMine sequential ([jobs = 1]) against the oracle — soundness
      (every mined pattern is an oracle target with the same support) and
      bounded completeness: a target the miner misses is a {e mismatch} only
      when some mined pattern extends by one edge into a representation of
      it that the production grower's own acceptance predicate passes
      (backbone still canonical, levels within δ) — i.e. the miner dropped
      a growth step it was obliged to take. Misses with no such step are
      the documented growth-paradigm gap (the C4 class and relatives,
      DESIGN.md) and are counted, not flagged.
    - SkinnyMine parallel ([jobs], default 4) against sequential —
      byte-identical serialized output, the miner's determinism contract.
    - gSpan growth + skinny filter ({!Spm_gspan.Moss.enumerate} at σ = 1,
      then the (l,δ) predicate and the σ threshold) against the oracle —
      exact two-sided equality, no gap allowance: enumerate-and-check has no
      growth constraint to get stuck on.

    Every mismatch carries the divergent pattern, the oracle's embeddings of
    it, and the corpus seed, so a failure is reproducible from the report
    alone. *)

type kind =
  | Unsound  (** the miner reported a pattern the oracle does not have *)
  | Missing  (** reachable oracle target absent from the miner's output *)
  | Support_mismatch of { miner : int; oracle : int }
  | Jobs_divergence
      (** parallel and sequential SkinnyMine outputs are not byte-identical *)
  | Harness of string
      (** the harness itself could not certify the case (oracle overflow,
          incomplete gSpan enumeration) — never expected on the corpus *)

type mismatch = {
  side : string;  (** ["skinnymine"], ["gspan+filter"], a baseline name… *)
  kind : kind;
  pattern : Spm_pattern.Pattern.t;
  occurrences : (int * int) list list;
      (** the oracle's embedding subgraphs of [pattern] (data-graph edge
          lists); empty when the oracle has none (unsound patterns) *)
}

type report = {
  name : string;
  seed : int;
  l : int;
  delta : int;
  sigma : int;
  oracle_targets : int;
  mined_patterns : int;  (** SkinnyMine output size (uncapped) *)
  gspan_patterns : int;  (** gSpan+filter output size within caps *)
  paradigm_gaps : int;  (** informational C4-class misses *)
  mismatches : mismatch list;  (** empty = the case is certified *)
}

val run_case :
  ?max_vertices:int ->
  ?max_edges:int ->
  ?jobs:int ->
  ?family:Spm_core.Constraints.family ->
  name:string ->
  seed:int ->
  Spm_graph.Graph.t ->
  l:int ->
  delta:int ->
  sigma:int ->
  report
(** [family] (default [Skinny]) selects the constraint family the whole
    harness runs under: the oracle predicate ({!Brute.is_target} or
    {!Brute.is_neighborhood}), the production miner's config, the gSpan
    filter, and the one-step acceptance check that separates [Missing]
    mismatches from counted paradigm gaps. A [Neighborhood] case takes
    [l = 0] and the radius r in [delta], mirroring
    {!Spm_core.Skinny_mine.mine}. *)

val run_item : ?max_vertices:int -> ?max_edges:int -> ?jobs:int -> Corpus.item -> report

val check_baselines :
  ?max_vertices:int ->
  ?max_edges:int ->
  ?seed:int ->
  graph:Spm_graph.Graph.t ->
  sigma:int ->
  unit ->
  mismatch list
(** Baseline soundness subsets against the oracle's naive embedding counter:
    SEuS verified supports and SUBDUE instance counts must equal the naive
    |E[P]|; SpiderMine's (limit-capped) supports must never exceed it and
    every reported pattern must clear σ. Incomplete miners are not checked
    for completeness — only for not lying. *)

val check_origami :
  ?max_vertices:int ->
  ?max_edges:int ->
  ?seed:int ->
  db:Spm_graph.Graph.t list ->
  sigma:int ->
  unit ->
  mismatch list
(** ORIGAMI (transaction setting): every sampled pattern's reported
    transaction support must equal the number of database graphs the oracle
    finds an embedding in. *)

val ok : report -> bool

val pp_report : Format.formatter -> report -> unit
(** Structured rendering: parameters and counts, then the first divergent
    pattern in full (side, kind, the pattern, its oracle embeddings, and the
    seed line to reproduce), then one summary line per further mismatch. *)
