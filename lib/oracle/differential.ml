(* The differential harness. See differential.mli. *)

open Spm_core

type kind =
  | Unsound
  | Missing
  | Support_mismatch of { miner : int; oracle : int }
  | Jobs_divergence
  | Harness of string

type mismatch = {
  side : string;
  kind : kind;
  pattern : Spm_pattern.Pattern.t;
  occurrences : (int * int) list list;
}

type report = {
  name : string;
  seed : int;
  l : int;
  delta : int;
  sigma : int;
  oracle_targets : int;
  mined_patterns : int;
  gspan_patterns : int;
  paradigm_gaps : int;
  mismatches : mismatch list;
}

(* Serialized mined stream — the store codec is deterministic, so byte
   equality here is the miner's cross-jobs identity contract. *)
let mined_bytes patterns =
  let w = Spm_store.Codec.W.create () in
  List.iter (Spm_store.Store.write_mined w) patterns;
  Spm_store.Codec.W.contents w

let find_class ofound bp =
  let idx = ref (-1) in
  Array.iteri
    (fun i (f : Brute.found) ->
      if !idx < 0 && Brute.iso bp f.Brute.rep then idx := i)
    ofound;
  !idx

let run_case ?(max_vertices = 10) ?(max_edges = 12) ?(jobs = 4)
    ?(family = Constraints.Skinny) ~name ~seed graph ~l ~delta ~sigma =
  let mismatches = ref [] in
  let add side kind pattern occurrences =
    mismatches := { side; kind; pattern; occurrences } :: !mismatches
  in
  (* Both families funnel through the same harness; only the class
     predicate, the production config, and the one-step acceptance check
     (below) differ. For [Neighborhood], [l] is 0 and [delta] is r. *)
  let pred bp =
    match family with
    | Constraints.Skinny -> Brute.is_target bp ~l ~delta
    | Constraints.Neighborhood { center } ->
      Brute.is_neighborhood ?center bp ~r:delta
  in
  let miner_side =
    match family with
    | Constraints.Skinny -> "skinnymine"
    | Constraints.Neighborhood _ -> "nbrmine"
  in
  let gaps = ref 0 in
  let oracle_targets = ref 0 in
  let mined_patterns = ref 0 in
  let gspan_patterns = ref 0 in
  (try
     let oracle = Brute.mine_pred ~max_vertices ~max_edges graph ~sigma ~pred in
     let ofound = Array.of_list oracle.Brute.found in
     oracle_targets := Array.length ofound;
     let config j = { Skinny_mine.Config.default with jobs = j; family } in
     let r1 = Skinny_mine.mine ~config:(config 1) graph ~l ~delta ~sigma in
     let rj = Skinny_mine.mine ~config:(config jobs) graph ~l ~delta ~sigma in
     mined_patterns := List.length r1.Skinny_mine.patterns;
     (* 1. Determinism across jobs: byte-identical serialized streams. *)
     (if mined_bytes r1.Skinny_mine.patterns <> mined_bytes rj.Skinny_mine.patterns
      then
        let rec first_divergent a b =
          match (a, b) with
          | x :: a', y :: b' ->
            if mined_bytes [ x ] <> mined_bytes [ y ] then
              x.Skinny_mine.pattern
            else first_divergent a' b'
          | x :: _, [] | [], x :: _ -> x.Skinny_mine.pattern
          | [], [] -> assert false
        in
        add
          (Printf.sprintf "%s-jobs%d" miner_side jobs)
          Jobs_divergence
          (first_divergent r1.Skinny_mine.patterns rj.Skinny_mine.patterns)
          []);
     (* 2. SkinnyMine vs the oracle. *)
     let mined =
       List.filter_map
         (fun (m : Skinny_mine.mined) ->
           let bp = Brute.of_pattern m.Skinny_mine.pattern in
           if Brute.order bp <= max_vertices && Brute.size bp <= max_edges
           then Some (m, bp)
           else None)
         r1.Skinny_mine.patterns
     in
     let hit = Array.make (Array.length ofound) false in
     List.iter
       (fun ((m : Skinny_mine.mined), bp) ->
         let i = find_class ofound bp in
         if i < 0 then add miner_side Unsound m.Skinny_mine.pattern []
         else begin
           hit.(i) <- true;
           let f = ofound.(i) in
           if f.Brute.support <> m.Skinny_mine.support then
             add miner_side
               (Support_mismatch
                  { miner = m.Skinny_mine.support; oracle = f.Brute.support })
               m.Skinny_mine.pattern f.Brute.occurrences
         end)
       mined;
     (* A miss is a bug only if the growth paradigm reaches the class: some
        mined pattern extends by ONE edge into a representation of it that
        the production grower itself accepts — the parent's backbone (ids
        0..l) must STILL be the canonical diameter of the grown pattern
        ([identity_preserved], the check the miner performs after every
        extension), and every level must stay within delta. Plain
        [is_target] on the grown representation is too weak here: it can
        certify skinniness via a different realizing path, one no
        single-edge growth chain passes through. Misses with no accepting
        step are the documented growth-paradigm gap (the C4 class and
        relatives) and are counted, not flagged. *)
     let one_step_extensions (p : Spm_pattern.Pattern.t) ~labels =
       let n = Spm_pattern.Pattern.order p in
       let fresh =
         List.concat_map
           (fun host ->
             List.map
               (fun label -> Spm_pattern.Pattern.extend_new_vertex p ~host ~label)
               labels)
           (List.init n (fun v -> v))
       in
       let closing = ref [] in
       for u = 0 to n - 1 do
         for v = u + 1 to n - 1 do
           if not (Spm_graph.Graph.has_edge p u v) then
             closing := Spm_pattern.Pattern.extend_close_edge p u v :: !closing
         done
       done;
       fresh @ !closing
     in
     let accepts_grown c =
       match family with
       | Constraints.Skinny ->
         Canonical_diameter.identity_preserved c ~l
         && Skinny_mine.is_target c ~l ~delta
       | Constraints.Neighborhood _ ->
         (* The neighborhood grower keeps vertex 0 as the cluster's center
            and accepts an extension exactly when every vertex still sits
            within r of it. The mined parent's vertex 0 already carries an
            admissible center label, which extensions preserve. *)
         Brute.ecc (Brute.of_pattern c) 0 <= delta
     in
     let reachable_one_step (missing : Brute.pat) =
       let labels =
         List.sort_uniq compare (Array.to_list missing.Brute.labels)
       in
       let mo = Brute.order missing and ms = Brute.size missing in
       List.exists
         (fun ((m : Skinny_mine.mined), bp) ->
           Brute.size bp = ms - 1
           && Brute.order bp >= mo - 1
           && List.exists
                (fun c ->
                  Spm_pattern.Pattern.order c = mo
                  && Brute.iso (Brute.of_pattern c) missing
                  && accepts_grown c)
                (one_step_extensions m.Skinny_mine.pattern ~labels))
         mined
     in
     Array.iteri
       (fun i (f : Brute.found) ->
         if not hit.(i) then
           if reachable_one_step f.Brute.rep then
             add miner_side Missing
               (Brute.to_pattern f.Brute.rep)
               f.Brute.occurrences
           else incr gaps)
       ofound;
     (* 3. gSpan enumeration + skinny filter vs the oracle: exact equality. *)
     let outcome = Spm_gspan.Moss.enumerate ~max_vertices ~max_edges ~graph () in
     if not outcome.Spm_gspan.Engine.complete then
       add "gspan+filter"
         (Harness "gspan enumeration incomplete under the corpus caps")
         (Spm_pattern.Pattern.singleton_edge 0 0)
         []
     else begin
       let gset =
         List.filter_map
           (fun (r : Spm_gspan.Engine.result) ->
             let bp = Brute.of_pattern r.Spm_gspan.Engine.pattern in
             (* The skinny filter uses the oracle's class-level predicate:
                [Skinny_mine.is_target] reads the id-tiebroken canonical
                diameter, which on gSpan's DFS-code numbering can pick a
                label-tied path the class would not pick under the miner's
                backbone numbering. *)
             if
               Brute.order bp <= max_vertices
               && Brute.size bp <= max_edges
               && r.Spm_gspan.Engine.support >= sigma
               && pred bp
             then Some (r, bp)
             else None)
           outcome.Spm_gspan.Engine.results
       in
       gspan_patterns := List.length gset;
       let hit = Array.make (Array.length ofound) false in
       List.iter
         (fun ((r : Spm_gspan.Engine.result), bp) ->
           let i = find_class ofound bp in
           if i < 0 then
             add "gspan+filter" Unsound r.Spm_gspan.Engine.pattern []
           else begin
             hit.(i) <- true;
             let f = ofound.(i) in
             if f.Brute.support <> r.Spm_gspan.Engine.support then
               add "gspan+filter"
                 (Support_mismatch
                    {
                      miner = r.Spm_gspan.Engine.support;
                      oracle = f.Brute.support;
                    })
                 r.Spm_gspan.Engine.pattern f.Brute.occurrences
           end)
         gset;
       Array.iteri
         (fun i (f : Brute.found) ->
           if not hit.(i) then
             add "gspan+filter" Missing
               (Brute.to_pattern f.Brute.rep)
               f.Brute.occurrences)
         ofound
     end
   with Brute.Too_large msg ->
     add "oracle" (Harness msg) (Spm_pattern.Pattern.singleton_edge 0 0) []);
  {
    name;
    seed;
    l;
    delta;
    sigma;
    oracle_targets = !oracle_targets;
    mined_patterns = !mined_patterns;
    gspan_patterns = !gspan_patterns;
    paradigm_gaps = !gaps;
    mismatches = List.rev !mismatches;
  }

let run_item ?max_vertices ?max_edges ?jobs (it : Corpus.item) =
  run_case ?max_vertices ?max_edges ?jobs ~family:it.Corpus.family
    ~name:it.Corpus.name ~seed:it.Corpus.seed it.Corpus.graph ~l:it.Corpus.l
    ~delta:it.Corpus.delta ~sigma:it.Corpus.sigma

(* --- Baselines: sound-subset checks (incomplete miners must not lie). --- *)

let within ?(max_vertices = 10) ?(max_edges = 12) bp =
  Brute.order bp <= max_vertices && Brute.size bp <= max_edges

let check_baselines ?max_vertices ?max_edges ?(seed = 1) ~graph ~sigma () =
  let mm = ref [] in
  let add side kind pattern =
    mm := { side; kind; pattern; occurrences = [] } :: !mm
  in
  let oracle_count p = Brute.count_embeddings (Brute.of_pattern p) graph in
  (* SEuS verifies survivors with the production |E[P]| counter: must agree
     with the naive one exactly. *)
  let seus = Spm_baselines.Seus.mine ~graph ~sigma () in
  List.iter
    (fun (p, sup) ->
      if within ?max_vertices ?max_edges (Brute.of_pattern p) then begin
        let oc = oracle_count p in
        if oc <> sup then
          add "seus" (Support_mismatch { miner = sup; oracle = oc }) p
      end)
    seus.Spm_baselines.Seus.patterns;
  (* SUBDUE instance counts are distinct embedding subgraphs. *)
  let subdue = Spm_baselines.Subdue.mine ~graph () in
  List.iter
    (fun (s : Spm_baselines.Subdue.scored) ->
      let p = s.Spm_baselines.Subdue.pattern in
      if
        Spm_pattern.Pattern.size p >= 1
        && within ?max_vertices ?max_edges (Brute.of_pattern p)
      then begin
        let oc = oracle_count p in
        if oc <> s.Spm_baselines.Subdue.instances then
          add "subdue"
            (Support_mismatch
               { miner = s.Spm_baselines.Subdue.instances; oracle = oc })
            p
      end)
    subdue.Spm_baselines.Subdue.best;
  (* SpiderMine counts with a limit, so reported <= true; and everything it
     reports as frequent must actually clear sigma. *)
  let spider =
    Spm_baselines.Spider_mine.mine ~rng:(Spm_graph.Gen.rng seed) ~graph ~sigma
      ~k:5 ()
  in
  List.iter
    (fun (p, sup) ->
      if within ?max_vertices ?max_edges (Brute.of_pattern p) then begin
        let oc = oracle_count p in
        if sup > oc || oc < sigma then
          add "spidermine" (Support_mismatch { miner = sup; oracle = oc }) p
      end)
    spider.Spm_baselines.Spider_mine.patterns;
  List.rev !mm

let check_origami ?max_vertices ?max_edges ?(seed = 1) ~db ~sigma () =
  let mm = ref [] in
  let origami =
    Spm_baselines.Origami.mine ~rng:(Spm_graph.Gen.rng seed) ~db ~sigma ()
  in
  List.iter
    (fun (p, sup) ->
      let bp = Brute.of_pattern p in
      if within ?max_vertices ?max_edges bp then begin
        let oc =
          List.length
            (List.filter (fun g -> Brute.count_embeddings bp g >= 1) db)
        in
        if oc <> sup then
          mm :=
            {
              side = "origami";
              kind = Support_mismatch { miner = sup; oracle = oc };
              pattern = p;
              occurrences = [];
            }
            :: !mm
      end)
    origami.Spm_baselines.Origami.patterns;
  List.rev !mm

let ok r = r.mismatches = []

let kind_to_string = function
  | Unsound -> "unsound (mined pattern absent from the oracle set)"
  | Missing -> "missing (reachable oracle target not mined)"
  | Support_mismatch { miner; oracle } ->
    Printf.sprintf "support mismatch (miner %d, oracle %d)" miner oracle
  | Jobs_divergence -> "jobs divergence (parallel != sequential bytes)"
  | Harness msg -> "harness: " ^ msg

let pp_occurrence ppf edges =
  Format.fprintf ppf "{%s}"
    (String.concat ", "
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) edges))

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>case %s (seed %d, l=%d delta=%d sigma=%d): oracle %d targets, \
     skinnymine %d, gspan+filter %d, paradigm gaps %d, mismatches %d@,"
    r.name r.seed r.l r.delta r.sigma r.oracle_targets r.mined_patterns
    r.gspan_patterns r.paradigm_gaps
    (List.length r.mismatches);
  (match r.mismatches with
  | [] -> Format.fprintf ppf "OK: certified.@,"
  | first :: rest ->
    Format.fprintf ppf "FIRST DIVERGENT PATTERN [%s] %s:@,  %a@," first.side
      (kind_to_string first.kind)
      Spm_pattern.Pattern.pp first.pattern;
    (match first.occurrences with
    | [] -> Format.fprintf ppf "  oracle embeddings: none@,"
    | occ ->
      Format.fprintf ppf "  oracle embeddings (%d):@," (List.length occ);
      List.iter (Format.fprintf ppf "    %a@," pp_occurrence) occ);
    Format.fprintf ppf
      "  reproduce: Differential.run_case ~seed:%d ~l:%d ~delta:%d ~sigma:%d \
       on corpus item %S@,"
      r.seed r.l r.delta r.sigma r.name;
    List.iter
      (fun m ->
        Format.fprintf ppf "  also: [%s] %s@," m.side (kind_to_string m.kind))
      rest);
  Format.fprintf ppf "@]"
