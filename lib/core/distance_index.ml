open Spm_graph

type t = { dh : int array; dt : int array }

let init p ~head ~tail =
  { dh = Bfs.distances p head; dt = Bfs.distances p tail }

let recompute = init

let dh t v = t.dh.(v)
let dt t v = t.dt.(v)

let copy t = { dh = Array.copy t.dh; dt = Array.copy t.dt }

let extend_new_vertex t ~host =
  let n = Array.length t.dh in
  let dh = Array.make (n + 1) 0 and dt = Array.make (n + 1) 0 in
  Array.blit t.dh 0 dh 0 n;
  Array.blit t.dt 0 dt 0 n;
  dh.(n) <- t.dh.(host) + 1;
  dt.(n) <- t.dt.(host) + 1;
  { dh; dt }

(* Decrease-only relaxation of one distance array after edge (u, v) was
   added to [p']. Only vertices whose distance drops are visited. *)
let relax p' dist u v =
  let queue = Queue.create () in
  let try_improve a b =
    if dist.(b) > dist.(a) + 1 then begin
      dist.(b) <- dist.(a) + 1;
      Queue.add b queue
    end
  in
  try_improve u v;
  try_improve v u;
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    Graph.iter_adj p' x (fun y -> try_improve x y)
  done

let extend_close_edge p' t u v =
  let t = copy t in
  relax p' t.dh u v;
  relax p' t.dt u v;
  t

let equal a b = a.dh = b.dh && a.dt = b.dt

let pp ppf t =
  Format.fprintf ppf "@[<v>dh: %s@,dt: %s@]"
    (String.concat " " (Array.to_list (Array.map string_of_int t.dh)))
    (String.concat " " (Array.to_list (Array.map string_of_int t.dt)))
