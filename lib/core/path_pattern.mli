(** Path patterns: label sequences and their directed embeddings.

    A path pattern of length l is a sequence of l+1 vertex labels. Its
    identity as an (undirected) pattern is the {!canonical} orientation —
    the lexicographically smaller of the sequence and its reverse, realizing
    the paper's lexicographic path order (Definition 2) restricted to paths
    of equal length. An embedding is a directed vertex sequence in the data
    graph reading the labels in order; as a *subgraph* (Definition of E[P]) a
    path and its reverse are the same embedding, so support counting
    normalizes orientation. *)

type t = Spm_graph.Label.t array
(** l+1 labels; length of the path = [Array.length - 1] edges. *)

val length : t -> int
(** Number of edges. *)

val rev : t -> t

val compare_labels : t -> t -> int
(** Lexicographic path order of Definition 2: shorter first, then label
    sequence. *)

val canonical : t -> t
(** [min seq (rev seq)] under {!compare_labels}. *)

val is_canonical : t -> bool

val is_palindrome : t -> bool

val shard_key : t -> int
(** Deterministic, byte-stable hash of the {!canonical} label sequence
    (FNV-1a folded to 62 bits): the cluster-partitioning key of the sharded
    serving tier. Identical for a path and its reverse, identical across
    builds and platforms — shard layouts computed with it remain valid
    forever. *)

val shard_of : shards:int -> t -> int
(** [shard_key p mod shards] — which of [shards] shards owns the diameter
    cluster keyed by [p]. @raise Invalid_argument if [shards <= 0]. *)

val to_pattern : t -> Spm_pattern.Pattern.t
(** The path graph with these labels (vertex i = position i). *)

val of_vertex_path : Spm_graph.Graph.t -> int array -> t

val pp : Format.formatter -> t -> unit

(** Directed embeddings. *)
module Emb : sig
  type path := t

  type t = int array
  (** Vertex sequence in the data graph. *)

  val reads : Spm_graph.Graph.t -> path -> t -> bool
  (** The embedding is a simple path whose labels spell the pattern. *)

  val canonical_orientation : t -> t
  (** Subgraph identity: smaller of the sequence and its reverse. *)

  val support : t list -> int
  (** Number of distinct subgraphs among directed embeddings. *)

  val dedup_subgraphs : t list -> t list
  (** One directed representative per subgraph (first seen). *)
end
