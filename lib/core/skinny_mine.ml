open Spm_graph
open Spm_pattern
module Pool = Spm_engine.Pool
module Clock = Spm_engine.Clock
module Run = Spm_engine.Run

type mined = Level_grow.mined = {
  pattern : Pattern.t;
  support : int;
  levels : int array;
  diameter_labels : Path_pattern.t;
}

type stats = {
  diam_stats : Diam_mine.stats;
  num_diameters : int;
  grow_seconds : float;
  grow_stats : Level_grow.stats list;
  status : Run.status;
  total_seconds : float;
}

type result = { patterns : mined list; stats : stats }

module Config = struct
  type t = {
    mode : Constraints.mode;
    family : Constraints.family;
    closed_growth : bool;
    prune_intermediate : bool;
    closed_only : bool;
    max_patterns : int option;
    support : (Pattern.t -> int array list -> int) option;
    jobs : int;
  }

  let default =
    {
      mode = Constraints.Exact;
      family = Constraints.Skinny;
      closed_growth = false;
      prune_intermediate = true;
      closed_only = false;
      max_patterns = None;
      support = None;
      jobs = 1;
    }

  let with_mode mode t = { t with mode }
  let with_family family t = { t with family }
  let with_closed_growth closed_growth t = { t with closed_growth }

  let with_prune_intermediate prune_intermediate t =
    { t with prune_intermediate }

  let with_closed_only closed_only t = { t with closed_only }
  let with_max_patterns max_patterns t = { t with max_patterns }
  let with_support support t = { t with support }
  let with_jobs jobs t = { t with jobs = max 1 jobs }
  let parallel () = { default with jobs = Pool.default_jobs () }
end

module Stats = struct
  type t = stats

  let sum_grow f stats = List.fold_left (fun acc s -> acc + f s) 0 stats

  let pp ppf s =
    Format.fprintf ppf "@[<v>stage I (DiamMine): %.3fs"
      s.diam_stats.Diam_mine.total_seconds;
    if s.diam_stats.Diam_mine.per_power <> [] then begin
      Format.fprintf ppf " [";
      List.iteri
        (fun i (len, count, secs) ->
          Format.fprintf ppf "%sl=%d: %d paths (%.3fs)"
            (if i > 0 then "; " else "")
            len count secs)
        s.diam_stats.Diam_mine.per_power;
      Format.fprintf ppf "]"
    end;
    Format.fprintf ppf ", merge %.3fs@," s.diam_stats.Diam_mine.merge_seconds;
    Format.fprintf ppf
      "stage II (LevelGrow): %.3fs over %d diameter cluster(s)@," s.grow_seconds
      s.num_diameters;
    Format.fprintf ppf
      "  extensions tried %d, constraint-rejected %d, infrequent %d, emitted \
       %d@,"
      (sum_grow (fun g -> g.Level_grow.extensions_tried) s.grow_stats)
      (sum_grow (fun g -> g.Level_grow.constraint_rejected) s.grow_stats)
      (sum_grow (fun g -> g.Level_grow.infrequent) s.grow_stats)
      (sum_grow (fun g -> g.Level_grow.emitted) s.grow_stats);
    if s.status <> Spm_engine.Run.Ok then
      Format.fprintf ppf "status: %s (partial results)@,"
        (Spm_engine.Run.status_to_string s.status);
    Format.fprintf ppf "total: %.3fs@]" s.total_seconds

  let to_json s =
    let b = Buffer.create 256 in
    let field first name v =
      if not first then Buffer.add_string b ",";
      Buffer.add_string b (Printf.sprintf "%S:%s" name v)
    in
    Buffer.add_string b "{";
    field true "status"
      (Printf.sprintf "%S" (Spm_engine.Run.status_to_string s.status));
    field false "total_seconds" (Printf.sprintf "%.6f" s.total_seconds);
    field false "num_diameters" (string_of_int s.num_diameters);
    field false "grow_seconds" (Printf.sprintf "%.6f" s.grow_seconds);
    field false "diam_total_seconds"
      (Printf.sprintf "%.6f" s.diam_stats.Diam_mine.total_seconds);
    field false "diam_merge_seconds"
      (Printf.sprintf "%.6f" s.diam_stats.Diam_mine.merge_seconds);
    field false "per_power"
      (Printf.sprintf "[%s]"
         (String.concat ","
            (List.map
               (fun (len, count, secs) ->
                 Printf.sprintf
                   "{\"length\":%d,\"paths\":%d,\"seconds\":%.6f}" len count
                   secs)
               s.diam_stats.Diam_mine.per_power)));
    field false "extensions_tried"
      (string_of_int (sum_grow (fun g -> g.Level_grow.extensions_tried) s.grow_stats));
    field false "constraint_rejected"
      (string_of_int
         (sum_grow (fun g -> g.Level_grow.constraint_rejected) s.grow_stats));
    field false "infrequent"
      (string_of_int (sum_grow (fun g -> g.Level_grow.infrequent) s.grow_stats));
    field false "emitted"
      (string_of_int (sum_grow (fun g -> g.Level_grow.emitted) s.grow_stats));
    field false "clusters"
      (Printf.sprintf "[%s]"
         (String.concat ","
            (List.map
               (fun (g : Level_grow.stats) ->
                 Printf.sprintf
                   "{\"tried\":%d,\"rejected\":%d,\"infrequent\":%d,\"emitted\":%d,\"seconds\":%.6f}"
                   g.Level_grow.extensions_tried g.Level_grow.constraint_rejected
                   g.Level_grow.infrequent g.Level_grow.emitted
                   g.Level_grow.seconds)
               s.grow_stats)));
    Buffer.add_string b "}";
    Buffer.contents b
end

let empty_diam_stats =
  { Diam_mine.per_power = []; merge_seconds = 0.0; total_seconds = 0.0 }

(* Closedness (Algorithm 3 line 12): drop P if some reported super-pattern
   has the same support. Comparisons stay within one diameter cluster. *)
let closed_filter patterns =
  let arr = Array.of_list patterns in
  let keep p =
    (* One plan per kept candidate, compiled only if some super-pattern
       passes the cheap filters. *)
    let plan = lazy (Plan.compile p.pattern) in
    not
      (Array.exists
         (fun q ->
           q != p
           && q.support = p.support
           && Pattern.size q.pattern > Pattern.size p.pattern
           && q.diameter_labels = p.diameter_labels
           && Plan.exists (Lazy.force plan) ~target:q.pattern)
         arr)
  in
  List.filter keep patterns

(* Stage II over the diameter clusters. Theorem 4 makes the clusters
   independent, so each cluster is one pool task; per-cluster results and
   stats are merged back in Stage-I entry order, so the output is
   bit-identical to the sequential run. The tasks are submitted WITHOUT
   [?run]: every [Level_grow.grow] polls the shared run itself and returns a
   partial prefix on interruption, so the batch always completes and the
   partials land in entry order.

   A [max_patterns] budget no longer forces the sequential path. A capped
   grow emits a deterministic prefix of its uncapped emission order, so
   giving each cluster its own budget fork of the full cap, concatenating in
   entry order and truncating to the cap yields exactly the sequential
   budgeted output: cluster i contributes min(full_i, cap) patterns, a
   prefix that always covers the min(full_i, remaining) the sequential run
   would have taken. The parallel path merely over-mines past the global
   cap (bounded by cap per cluster); the sequential path keeps the exact
   remaining-budget accounting as a fast path. *)
(* Neighborhood clusters overlap (a pattern near two differently-labeled
   centers is grown from both), so the concatenated cluster results are
   deduplicated in entry order — each pattern keeps the emission (and
   [diameter_labels] owner) of its first cluster, deterministically. Skinny
   clusters are disjoint (Theorem 4) and skip the pass.

   Overlap also changes what a [max_patterns] budget may count: a raw
   per-cluster budget fork would spend cap on emissions that dedup then
   drops, leaving the capped run shorter than — and not a prefix of — the
   deduped full run. So the neighborhood path grows uncapped and truncates
   AFTER dedup: the cap is exact and prefix-stable, at the cost of not
   short-circuiting growth (deadlines and [Run.cancel] still interrupt). *)
let dedup_across_clusters patterns =
  let seen = Canon.Set.create () in
  List.filter (fun (m : mined) -> Canon.Set.add seen m.pattern) patterns

let grow_all ~(config : Config.t) ~pool ~run data ~entries ~delta ~sigma =
  let t0 = Clock.now () in
  let mode = config.Config.mode
  and family = config.Config.family
  and closed_growth = config.Config.closed_growth
  and support = config.Config.support in
  let grow_entry ~run entry =
    Level_grow.grow ~mode ~family ~closed_growth ?support ~run ~data ~sigma
      ~delta ~entry ()
  in
  let uncapped () =
    let per_cluster =
      Pool.map pool (fun entry -> grow_entry ~run entry)
        (Array.of_list entries)
    in
    ( List.concat_map fst (Array.to_list per_cluster),
      List.map snd (Array.to_list per_cluster) )
  in
  let patterns, stats =
    match config.Config.max_patterns with
    | None -> uncapped ()
    | Some _ when family <> Constraints.Skinny -> uncapped ()
    | Some cap when Pool.jobs pool <= 1 ->
      let patterns = ref [] and stats = ref [] in
      let count = ref 0 in
      (try
         List.iter
           (fun entry ->
             let left = cap - !count in
             if left <= 0 || Run.interrupted run then raise Exit;
             let mined, st = grow_entry ~run:(Run.fork ~budget:left run) entry in
             count := !count + List.length mined;
             patterns := List.rev_append mined !patterns;
             stats := st :: !stats)
           entries
       with Exit -> ());
      (List.rev !patterns, List.rev !stats)
    | Some cap ->
      let per_cluster =
        Pool.map pool
          (fun entry -> grow_entry ~run:(Run.fork ~budget:cap run) entry)
          (Array.of_list entries)
      in
      let all = List.concat_map fst (Array.to_list per_cluster) in
      ( List.filteri (fun i _ -> i < cap) all,
        List.map snd (Array.to_list per_cluster) )
  in
  let patterns =
    match family with
    | Constraints.Skinny -> patterns
    | Constraints.Neighborhood _ -> (
      let deduped = dedup_across_clusters patterns in
      match config.Config.max_patterns with
      | None -> deduped
      | Some cap -> List.filteri (fun i _ -> i < cap) deduped)
  in
  let patterns =
    if config.Config.closed_only then closed_filter patterns else patterns
  in
  let interrupted =
    List.exists (fun (g : Level_grow.stats) -> g.Level_grow.interrupted) stats
  in
  (patterns, stats, interrupted, Clock.now () -. t0)

let with_config_pool (config : Config.t) f =
  if config.Config.jobs <= 1 then f Pool.serial
  else Pool.with_pool ~jobs:config.Config.jobs f

let fresh_run run = match run with Some r -> r | None -> Run.create ()

(* An engine that finished naturally reports [Ok] even if the deadline
   expired an instant later; only a run that actually cut Stage II short
   consults [Run.status]. *)
let final_status ~run ~interrupted =
  if interrupted then Run.status run else Run.Ok

(* Stage I raised [Run.Cancelled]: nothing grown yet, return the empty
   partial carrying why. *)
let cancelled_result ~t0 status =
  {
    patterns = [];
    stats =
      {
        diam_stats = empty_diam_stats;
        num_diameters = 0;
        grow_seconds = 0.0;
        grow_stats = [];
        status;
        total_seconds = Clock.now () -. t0;
      };
  }

(* Stage I dispatch: skinny mines frequent length-l paths; neighborhood
   seeds one single-vertex entry per center label ([l] must be 0 — the
   radius rides in [delta], and a length-0 "diameter" is exactly a
   center). *)
let stage_one ~(config : Config.t) ~run ~pool g ~l ~sigma =
  match config.Config.family with
  | Constraints.Skinny ->
    let diam =
      Diam_mine.mine ~prune_intermediate:config.Config.prune_intermediate
        ~run ~pool g ~l ~sigma
    in
    (diam.Diam_mine.entries, diam.Diam_mine.stats)
  | Constraints.Neighborhood { center } ->
    if l <> 0 then
      invalid_arg
        "Skinny_mine.mine: the neighborhood family takes l = 0 (the radius \
         rides in delta)";
    (Neighbor_mine.centers ?center g, empty_diam_stats)

let mine ?run ?(config = Config.default) g ~l ~delta ~sigma =
  let run = fresh_run run in
  let t0 = Clock.now () in
  with_config_pool config (fun pool ->
      match stage_one ~config ~run ~pool g ~l ~sigma with
      | exception Run.Cancelled (status, _) -> cancelled_result ~t0 status
      | entries, diam_stats ->
        let patterns, grow_stats, interrupted, grow_seconds =
          grow_all ~config ~pool ~run g ~entries ~delta ~sigma
        in
        {
          patterns;
          stats =
            {
              diam_stats;
              num_diameters = List.length entries;
              grow_seconds;
              grow_stats;
              status = final_status ~run ~interrupted;
              total_seconds = Clock.now () -. t0;
            };
        })

let mine_with_entries ?run ?(config = Config.default) g ~entries ~delta
    ~sigma =
  let run = fresh_run run in
  let t0 = Clock.now () in
  with_config_pool config (fun pool ->
      let patterns, grow_stats, interrupted, grow_seconds =
        grow_all ~config ~pool ~run g ~entries ~delta ~sigma
      in
      {
        patterns;
        stats =
          {
            diam_stats = empty_diam_stats;
            num_diameters = List.length entries;
            grow_seconds;
            grow_stats;
            status = final_status ~run ~interrupted;
            total_seconds = Clock.now () -. t0;
          };
      })

let disjoint_union gs =
  let b = Graph.Builder.create () in
  let tx_of = ref [] in
  List.iteri
    (fun tx g ->
      let offset = Graph.Builder.n b in
      Graph.iter_vertices
        (fun v ->
          ignore (Graph.Builder.add_vertex b (Graph.label g v));
          tx_of := tx :: !tx_of)
        g;
      Graph.iter_edges
        (fun u v -> Graph.Builder.add_edge b (offset + u) (offset + v))
        g)
    gs;
  let tx = Array.of_list (List.rev !tx_of) in
  (Graph.Builder.freeze b, tx)

let mine_transactions ?run ?(config = Config.default) gs ~l ~delta ~sigma =
  (match config.Config.family with
  | Constraints.Skinny -> ()
  | Constraints.Neighborhood _ ->
    invalid_arg "Skinny_mine.mine_transactions: skinny family only");
  let run = fresh_run run in
  let t0 = Clock.now () in
  let union, tx = disjoint_union gs in
  (* Transaction support: distinct transactions among embedding images. *)
  let tx_support_paths embs =
    let seen = Hashtbl.create 8 in
    List.iter (fun (e : int array) -> Hashtbl.replace seen tx.(e.(0)) ()) embs;
    Hashtbl.length seen
  in
  let tx_support_maps _pattern maps =
    let seen = Hashtbl.create 8 in
    List.iter (fun (m : int array) -> Hashtbl.replace seen tx.(m.(0)) ()) maps;
    Hashtbl.length seen
  in
  let config = { config with Config.support = Some tx_support_maps } in
  with_config_pool config (fun pool ->
      match
        Diam_mine.mine ~prune_intermediate:config.Config.prune_intermediate
          ~support:tx_support_paths ~run ~pool union ~l ~sigma
      with
      | exception Run.Cancelled (status, _) -> cancelled_result ~t0 status
      | diam ->
        let patterns, grow_stats, interrupted, grow_seconds =
          grow_all ~config ~pool ~run union ~entries:diam.Diam_mine.entries
            ~delta ~sigma
        in
        {
          patterns;
          stats =
            {
              diam_stats = diam.Diam_mine.stats;
              num_diameters = List.length diam.Diam_mine.entries;
              grow_seconds;
              grow_stats;
              status = final_status ~run ~interrupted;
              total_seconds = Clock.now () -. t0;
            };
        })

let is_target p ~l ~delta = Canonical_diameter.is_l_long_delta_skinny p ~l ~delta

let is_neighborhood_target ?center p ~r =
  Constraints.neighborhood_target ?center p ~r
