(** Incremental (l,δ)-SPM over an evolving graph: keep a mined pattern set
    in sync with a {!Spm_graph.Delta} under edit batches, re-growing only
    the diameter clusters an edit can actually reach.

    The δ-level bound that makes direct mining efficient also localizes
    change. Stage II grows a cluster by consulting only vertices within
    data-graph distance δ of the diameter entry's embedding vertices, so an
    edge flip (u,v) can alter a cluster's output only if u or v lies inside
    that δ-ball — in the pre-edit or post-edit graph. {!update} therefore:

    + re-runs Stage I (cheap relative to growth; its σ filter is global
      under [prune_intermediate], so it cannot be localized soundly),
    + marks every vertex within δ of a touched endpoint by bounded BFS in
      both graph versions,
    + reuses each cluster whose Stage-I entry is unchanged and whose
      embeddings avoid the marks, re-growing the rest via
      {!Level_grow.grow}, and
    + splices results back in Stage-I entry order.

    Because clusters are independent (Theorem 4), emission order within a
    cluster is deterministic, and [closed_only] filtering never crosses
    clusters, the spliced result is byte-identical to a from-scratch
    {!Skinny_mine.mine} at the new version — the oracle suite checks
    exactly that.

    Interrupted repairs abort: {!update} returns the {e old} state with a
    non-[Ok] {!diff.status} and the graph unmodified, so a deadline-bounded
    server never commits a half-repaired pattern set. *)

type cluster = {
  entry : Diam_mine.entry;
  mined : Skinny_mine.mined list;  (** grow output, [closed_only]-filtered *)
}

type t

type diff = {
  version : int;  (** graph version the diff leads to (or stays at) *)
  added : Skinny_mine.mined list;  (** in new output, not in old *)
  removed : Skinny_mine.mined list;  (** in old output, not in new *)
  repaired_clusters : int;  (** clusters re-grown *)
  reused_clusters : int;  (** clusters spliced through untouched *)
  total_clusters : int;
  seconds : float;
  status : Spm_engine.Run.status;
      (** non-[Ok] means the update aborted: the returned state is the old
          one and [added]/[removed] are empty *)
}

val create :
  ?run:Spm_engine.Run.t ->
  ?config:Skinny_mine.Config.t ->
  ?scope:(Path_pattern.t -> bool) ->
  Spm_graph.Delta.t ->
  l:int ->
  delta:int ->
  sigma:int ->
  t
(** Full mine at the delta's current version, retaining per-cluster state
    for later {!update}s. An interrupted create yields an incomplete state
    (see {!complete}); its first successful update rebuilds from scratch.

    [scope] (default: accept everything) is a cluster-ownership predicate
    over canonical diameter labels: Stage I still runs over the whole graph
    (the σ filter is global), but entries outside the scope are dropped
    before growth, and every later {!update} repairs only in-scope
    clusters. This is how a shard worker of the serving tier keeps the full
    data graph while owning just its partition of the pattern set — results
    and diffs are then the in-scope restriction of the unsharded answer.
    @raise Invalid_argument if [config] carries [max_patterns] or a custom
    [support] — both are global accounting that cluster-local repair cannot
    reproduce. *)

val restore :
  ?run:Spm_engine.Run.t ->
  ?config:Skinny_mine.Config.t ->
  ?scope:(Path_pattern.t -> bool) ->
  Spm_graph.Delta.t ->
  l:int ->
  delta:int ->
  sigma:int ->
  patterns:Skinny_mine.mined list ->
  t option
(** Rebuild incremental state from a complete stored pattern set without
    re-growing: Stage I runs on the snapshot and [patterns] are partitioned
    by [diameter_labels]. [None] if the partition does not line up with the
    ([scope]-filtered) Stage-I entries (wrong parameters, incomplete store,
    patterns outside the scope) — fall back to {!create}. A shard store
    restored with its own shard's [scope] lines up exactly. *)

val update : ?run:Spm_engine.Run.t -> t -> Spm_graph.Delta.edit list -> t * diff
(** Apply one edit batch (one graph version) and repair the pattern set.
    [run] bounds the repair; on interruption the old state returns with
    [diff.status] ≠ [Ok]. @raise Invalid_argument on invalid edits (the
    state is unchanged). *)

val graph : t -> Spm_graph.Delta.t

val version : t -> int

val params : t -> int * int * int
(** [(l, delta, sigma)]. *)

val config : t -> Skinny_mine.Config.t

val complete : t -> bool
(** Whether the held pattern set is a complete mine of the current version
    (false only after an interrupted {!create}/{!restore} Stage I). *)

val clusters : t -> cluster list
(** Stage-I entry order. *)

val patterns : t -> Skinny_mine.mined list
(** Flat pattern list, identical to [ (Skinny_mine.mine g).patterns ] at
    the current version when {!complete}. *)
