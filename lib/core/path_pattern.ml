open Spm_graph

type t = Label.t array

let length p = Array.length p - 1

let rev p =
  let n = Array.length p in
  Array.init n (fun i -> p.(n - 1 - i))

let compare_labels (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec loop i =
      if i >= la then 0
      else
        let c = Label.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let canonical p =
  let r = rev p in
  if compare_labels p r <= 0 then p else r

let is_canonical p = compare_labels p (rev p) <= 0

let is_palindrome p = compare_labels p (rev p) = 0

(* FNV-1a over the canonical label sequence, folded to 62 bits so the value
   is identical on every OCaml int width (the offset basis is the FNV-64
   one with its top two bits dropped). Orientation-insensitive (both
   orientations name the same diameter cluster) and independent of
   Hashtbl.hash internals, so a shard layout computed today opens
   unchanged by any future build. *)
let shard_key p =
  let c = canonical p in
  let h = ref 0x0bf29ce484222325 in
  let mix byte = h := (!h lxor byte) * 0x100000001b3 land 0x3FFFFFFFFFFFFFFF in
  Array.iter
    (fun l ->
      mix (l land 0xFF);
      mix ((l lsr 8) land 0xFF);
      mix ((l lsr 16) land 0xFF);
      mix ((l lsr 24) land 0xFF))
    c;
  !h

let shard_of ~shards p =
  if shards <= 0 then invalid_arg "Path_pattern.shard_of: shards must be > 0";
  shard_key p mod shards

let to_pattern p =
  let n = Array.length p in
  Graph.Builder.of_edges ~labels:p (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let of_vertex_path g path = Array.map (fun v -> Graph.label g v) path

let pp ppf p =
  Format.fprintf ppf "@[<h>[%s]@]"
    (String.concat "-" (Array.to_list (Array.map string_of_int p)))

module Emb = struct
  type t = int array

  let reads g labels emb =
    Array.length emb = Array.length labels
    && Paths.is_simple_path g emb
    && Array.for_all2 (fun v l -> Graph.label g v = l)
         emb labels

  let canonical_orientation emb =
    let r =
      let n = Array.length emb in
      Array.init n (fun i -> emb.(n - 1 - i))
    in
    if emb <= r then emb else r

  let dedup_subgraphs embs =
    let seen = Hashtbl.create (List.length embs) in
    List.filter
      (fun e ->
        let k = canonical_orientation e in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      embs

  let support embs = List.length (dedup_subgraphs embs)
end
