open Spm_graph

type t = Label.t array

let length p = Array.length p - 1

let rev p =
  let n = Array.length p in
  Array.init n (fun i -> p.(n - 1 - i))

let compare_labels (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec loop i =
      if i >= la then 0
      else
        let c = Label.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let canonical p =
  let r = rev p in
  if compare_labels p r <= 0 then p else r

let is_canonical p = compare_labels p (rev p) <= 0

let is_palindrome p = compare_labels p (rev p) = 0

let to_pattern p =
  let n = Array.length p in
  Graph.Builder.of_edges ~labels:p (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let of_vertex_path g path = Array.map (fun v -> Graph.label g v) path

let pp ppf p =
  Format.fprintf ppf "@[<h>[%s]@]"
    (String.concat "-" (Array.to_list (Array.map string_of_int p)))

module Emb = struct
  type t = int array

  let reads g labels emb =
    Array.length emb = Array.length labels
    && Paths.is_simple_path g emb
    && Array.for_all2 (fun v l -> Graph.label g v = l)
         emb labels

  let canonical_orientation emb =
    let r =
      let n = Array.length emb in
      Array.init n (fun i -> emb.(n - 1 - i))
    in
    if emb <= r then emb else r

  let dedup_subgraphs embs =
    let seen = Hashtbl.create (List.length embs) in
    List.filter
      (fun e ->
        let k = canonical_orientation e in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      embs

  let support embs = List.length (dedup_subgraphs embs)
end
