open Spm_graph

(* Stage I for the r-neighborhood family: the minimal constraint-satisfying
   patterns are single labeled centers, so seeding is a label histogram, not
   a path mine. One entry per label, embeddings in ascending vertex order so
   the result (and everything grown from it) is deterministic.

   No sigma filter here: a single data vertex can host many distinct
   embedding subgraphs of the grown patterns, so pruning a center whose
   vertex count is below sigma would be unsound (|E[P]| is not bounded by
   the number of center vertices). Frequency is enforced on every grown
   pattern by Stage II. *)
let centers ?center g =
  let tbl : (Label.t, int array list) Hashtbl.t = Hashtbl.create 16 in
  for v = Graph.n g - 1 downto 0 do
    let c = Graph.label g v in
    let keep = match center with None -> true | Some c0 -> c = c0 in
    if keep then
      let prev =
        match Hashtbl.find_opt tbl c with Some l -> l | None -> []
      in
      Hashtbl.replace tbl c ([| v |] :: prev)
  done;
  Hashtbl.fold (fun c embs acc -> (c, embs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (c, embeddings) -> { Diam_mine.labels = [| c |]; embeddings })
