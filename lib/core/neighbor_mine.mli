(** Stage I for the r-neighborhood family (Han & Wen): enumerate the minimal
    constraint-satisfying patterns, which are single labeled centers.

    The analog of {!Diam_mine} for {!Constraints.Neighborhood}: each entry is
    a length-0 "diameter" — one label, with one single-vertex embedding per
    data vertex carrying it — ready to be grown by {!Level_grow.grow} with
    the radius in the [delta] slot. *)

val centers :
  ?center:Spm_graph.Label.t -> Spm_graph.Graph.t -> Diam_mine.entry list
(** One entry per distinct vertex label present in the graph (restricted to
    [center] when given), sorted by label; embeddings are in ascending vertex
    order. No sigma filter: center-vertex counts do not bound the |E[P]| of
    grown patterns, so seed-level frequency pruning would be unsound —
    Stage II enforces sigma on every grown pattern. *)
