open Spm_graph

type mode = Naive | Paper | Exact

type extension = New_leaf of { host : int } | Close of int * int

let identity_path l = Array.init (l + 1) (fun i -> i)

let check_naive p' ~l =
  Canonical_diameter.compute p' = identity_path l

(* The optimized modes verify canonicity with the pruned DAG search. *)
let check_fast p' ~l = Canonical_diameter.identity_preserved p' ~l

(* Eccentricity of a vertex within the pattern (BFS). *)
let ecc p v = Array.fold_left max 0 (Bfs.distances p v)

let check_paper ~pattern' ~idx ~idx' ~l ext =
  match ext with
  | New_leaf { host } ->
    let u = Graph.n pattern' - 1 in
    let duh = Distance_index.dh idx' u and dut = Distance_index.dt idx' u in
    (* Constraint I (Theorem 1). *)
    duh <= l && dut <= l
    (* Constraint II (Theorem 2). *)
    && duh + dut >= l
    (* Constraint III (Theorem 3 case I): only a host one step short of the
       diameter length can spawn a new same-length diameter. *)
    &&
    let trigger =
      max (Distance_index.dh idx host) (Distance_index.dt idx host) = l - 1
    in
    (not trigger) || check_fast pattern' ~l
  | Close (u, v) ->
    (* Constraint I: joining existing vertices never increases distances. *)
    (* Constraint II: the shortcut through the new edge must not undercut
       the head-tail distance (old index values, Theorem 2's argument). *)
    let dhu = Distance_index.dh idx u and dtu = Distance_index.dt idx u in
    let dhv = Distance_index.dh idx v and dtv = Distance_index.dt idx v in
    min (dhu + 1 + dtv) (dhv + 1 + dtu) >= l
    (* Constraint III (Theorem 3 case II). *)
    &&
    let trigger = dhu + dtv = l - 1 || dhv + dtu = l - 1 in
    (not trigger) || check_fast pattern' ~l

let check_exact ~pattern' ~idx ~idx' ~l ext =
  match ext with
  | New_leaf { host } ->
    let u = Graph.n pattern' - 1 in
    let duh = Distance_index.dh idx' u and dut = Distance_index.dt idx' u in
    duh <= l && dut <= l
    && duh + dut >= l
    &&
    (* A new realizing path must end at the new leaf; one exists iff the
       host's eccentricity in the old pattern is exactly l - 1. A leaf with
       eccentricity > l is already excluded by Constraint I... except through
       vertices not on head/tail geodesics, so re-check via the host. *)
    let host_ecc = ecc pattern' host in
    if 1 + host_ecc > l then false
    else if 1 + host_ecc = l then check_fast pattern' ~l
    else true
  | Close (u, v) ->
    let dhu = Distance_index.dh idx u and dtu = Distance_index.dt idx u in
    let dhv = Distance_index.dh idx v and dtv = Distance_index.dt idx v in
    min (dhu + 1 + dtv) (dhv + 1 + dtu) >= l
    && Distance_index.dh idx' l = l
    (* Closing edges are rare relative to leaves; verify canonicity with the
       pruned search. *)
    && check_fast pattern' ~l

let check ~mode ~pattern' ~idx ~idx' ~l ext =
  match mode with
  | Naive -> check_naive pattern' ~l
  | Paper -> check_paper ~pattern' ~idx ~idx' ~l ext
  | Exact -> check_exact ~pattern' ~idx ~idx' ~l ext

(* --- Constraint families ------------------------------------------------- *)

type family = Skinny | Neighborhood of { center : Label.t option }

let family_name = function
  | Skinny -> "skinny"
  | Neighborhood _ -> "neighborhood"

(* r-neighborhood admissibility: the center is pattern vertex 0 (the head of
   a zero-length "diameter", so the D_H index is exactly distance-to-center).
   A fresh leaf is admissible iff it lands within radius r; a closing edge
   can only shrink distances, so it is always admissible. *)
let check_neighborhood_naive p' ~r = ecc p' 0 <= r

let check_neighborhood ~mode ~pattern' ~idx' ~r ext =
  match mode with
  | Naive -> check_neighborhood_naive pattern' ~r
  | Paper | Exact -> (
    match ext with
    | New_leaf _ -> Distance_index.dh idx' (Graph.n pattern' - 1) <= r
    | Close _ -> true)

let neighborhood_target ?center p ~r =
  Graph.m p >= 1
  && Bfs.is_connected p
  &&
  let n = Graph.n p in
  let ok v =
    (match center with None -> true | Some c -> Graph.label p v = c)
    && ecc p v <= r
  in
  let rec loop v = v < n && (ok v || loop (v + 1)) in
  loop 0
