(** The direct-mining index (Figure 2): pre-compute the minimal
    constraint-satisfying patterns — frequent paths — once, then serve mining
    requests for any diameter length l (or range) without touching the
    pattern space below l.

    Powers of two are materialized eagerly; requested lengths are merged on
    demand and cached. *)

type t

val build :
  ?prune_intermediate:bool ->
  ?path_support:(int array list -> int) ->
  ?run:Spm_engine.Run.t ->
  ?jobs:int ->
  Spm_graph.Graph.t ->
  sigma:int ->
  l_max:int ->
  t
(** Index able to serve any l in [1, l_max] (provided l_max >= 1 and either
    l is at most twice the largest materialized power minus one, which holds
    for every l <= l_max by construction). [jobs] (default 1) parallelizes
    the power-of-2 construction and later on-demand merges; request-time
    Stage-II parallelism is configured per request via
    [config.Skinny_mine.Config.jobs]. [run] bounds the eager power-of-2
    construction ({!Spm_engine.Run.Cancelled} escapes as from
    [Diam_mine.mine]). *)

val graph : t -> Spm_graph.Graph.t

val sigma : t -> int

val l_max : t -> int
(** The [l_max] the index was built (or snapshotted) for. *)

(** Persistable Stage-I state: the frequent-path entries of every length the
    index has materialized (all powers of two, plus any merged lengths served
    so far). {!Spm_store} serializes this so Stage I survives across runs. *)
type snapshot = {
  snap_sigma : int;
  snap_l_max : int;
  lengths : (int * Diam_mine.entry list) list;
      (** Ascending lengths, each with its frequent-path entries. *)
}

val snapshot : t -> snapshot

val of_snapshot :
  ?prune_intermediate:bool -> ?jobs:int -> Spm_graph.Graph.t -> snapshot -> t
(** Index serving every snapshotted length without recomputation. A request
    for a length outside the snapshot triggers a full lazy Stage-I rebuild
    (under [prune_intermediate], default [true], with the default |E[P]|
    path support — custom path-support functions are not serializable). *)

val entries : ?run:Spm_engine.Run.t -> t -> l:int -> Diam_mine.entry list
(** Frequent length-l paths with embeddings; cached after the first call.
    [run] bounds the on-demand merge (and the lazy Stage-I rebuild of a
    restored index) — a cached length never consults it. *)

val request :
  ?config:Skinny_mine.Config.t ->
  t ->
  l:int ->
  delta:int ->
  Skinny_mine.result
(** Serve one (l, δ) mining request from the index: Stage II only, under
    [config] (default {!Skinny_mine.Config.default}). *)

val request_range :
  ?config:Skinny_mine.Config.t ->
  t ->
  l_min:int ->
  l_max:int ->
  delta:int ->
  Skinny_mine.result
(** All patterns with diameter length in [l_min, l_max] — the "between l1 and
    l2 without visiting shorter or longer diameters" use case of §1. *)

val build_seconds : t -> float
