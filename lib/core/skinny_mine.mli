(** SkinnyMine (Algorithm 1): the complete (l,δ)-SPM miner.

    Stage I mines all frequent simple paths of length l (the canonical
    diameters = minimal constraint-satisfying patterns); Stage II grows each
    into its disjoint cluster of l-long δ-skinny patterns while preserving
    the canonical diameter. The union over clusters is the complete result
    (Theorem 4), with unique generation per pattern.

    All tuning knobs live in {!Config.t}; the three entry points take one
    optional [?config] instead of a spread of optional arguments. With
    [config.jobs > 1] both stages run on a {!Spm_engine.Pool} of that many
    domains — Stage II schedules one task per diameter cluster (Theorem 4
    makes clusters independent), Stage I partitions the candidate-path
    extension loops — and the output is bit-identical to the sequential
    run. *)

type mined = Level_grow.mined = {
  pattern : Spm_pattern.Pattern.t;
  support : int;
  levels : int array;
  diameter_labels : Path_pattern.t;
}

type stats = {
  diam_stats : Diam_mine.stats;
  num_diameters : int;
  grow_seconds : float;
  grow_stats : Level_grow.stats list;  (** one per diameter cluster *)
  status : Spm_engine.Run.status;
      (** [Ok] for a natural finish (including a filled [max_patterns]
          budget); [Timeout] / [Cancelled] when the run was interrupted —
          [patterns] then holds the partial results gathered so far *)
  total_seconds : float;  (** wall clock, not CPU time *)
}

type result = { patterns : mined list; stats : stats }

(** The consolidated mining configuration. Build one with record update
    syntax ([{ Config.default with jobs = 4 }]) or the [with_*] setters
    ([Config.(default |> with_jobs 4 |> with_closed_growth true)]). *)
module Config : sig
  type t = {
    mode : Constraints.mode;
        (** Constraint-maintenance mode (default [Exact]). *)
    family : Constraints.family;
        (** Which constraint family to mine (default [Skinny]). With
            [Neighborhood], {!mine} takes [l = 0] and reads the radius r from
            [delta]: Stage I seeds one single-vertex entry per center label
            ({!Neighbor_mine.centers}) and Stage II grows each center under
            {!Constraints.check_neighborhood}. Overlapping clusters are
            deduplicated in entry order, so the output is still
            bit-identical for every [jobs] value. *)
    closed_growth : bool;
        (** Closed-pattern semantics: apply support-preserving extensions
            eagerly, collapsing the twig powerset (default [false]). *)
    prune_intermediate : bool;
        (** Apply the σ filter at every Stage-I power-of-2 stage (the
            paper's behaviour, default [true]). *)
    closed_only : bool;
        (** Post-filter to patterns with no reported super-pattern of equal
            support (Algorithm 3 line 12; default [false]). *)
    max_patterns : int option;
        (** Stop after this many patterns (default [None]). Works with any
            [jobs] value and yields the same patterns either way: a capped
            cluster emits a deterministic prefix of its uncapped emission
            order, so the parallel path gives every cluster the full cap as
            its private budget ({!Spm_engine.Run.fork}), concatenates the
            per-cluster results in Stage-I entry order and truncates to the
            cap — exactly the sequential budgeted output. (Before runs
            carried budgets this was a sequential-only special case that
            silently ignored [jobs].)

            Under the neighborhood family the cap is applied only after
            every cluster has grown in full and duplicates across
            overlapping clusters have been removed, so it bounds the size
            of the answer, not the mining work (see DESIGN.md §19). *)
    support : (Spm_pattern.Pattern.t -> int array list -> int) option;
        (** Stage-II support override, e.g. a distinct-transaction counter.
            [None] = |E[P]|, distinct embedding subgraphs.
            {!mine_transactions} installs its own counter here. *)
    jobs : int;
        (** Worker domains for both stages (default 1 = sequential). For a
            fixed input the mined [(pattern, support)] list is bit-identical
            for every [jobs] value. *)
  }

  val default : t

  val parallel : unit -> t
  (** {!default} with [jobs] set to {!Spm_engine.Pool.default_jobs} (the
      [SKINNY_JOBS] environment variable, or every available core). *)

  val with_mode : Constraints.mode -> t -> t
  val with_family : Constraints.family -> t -> t
  val with_closed_growth : bool -> t -> t
  val with_prune_intermediate : bool -> t -> t
  val with_closed_only : bool -> t -> t
  val with_max_patterns : int option -> t -> t

  val with_support :
    (Spm_pattern.Pattern.t -> int array list -> int) option -> t -> t

  val with_jobs : int -> t -> t
  (** Clamped to at least 1. *)
end

(** The single rendering surface for {!stats} — the CLI and the bench
    runners both go through it. *)
module Stats : sig
  type t = stats

  val pp : Format.formatter -> stats -> unit
  (** Multi-line human-readable rendering (stage timings, per-power path
      counts, aggregated Stage-II counters). *)

  val to_json : stats -> string
  (** One JSON object; per-cluster Stage-II stats under ["clusters"]. *)
end

val closed_filter : mined list -> mined list
(** The [closed_only] post-filter (Algorithm 3 line 12): drop every pattern
    with a reported super-pattern of equal support. Comparisons stay within
    one diameter cluster (equal [diameter_labels]), so filtering a single
    cluster's output equals filtering it inside the full result — which is
    what lets [Incremental] repair clusters independently. *)

val mine :
  ?run:Spm_engine.Run.t ->
  ?config:Config.t ->
  Spm_graph.Graph.t ->
  l:int ->
  delta:int ->
  sigma:int ->
  result
(** All l-long δ-skinny patterns P of the graph with |E[P]| >= sigma,
    mined under [config] (default {!Config.default}).

    [run] (default a fresh unbounded context) bounds and observes the whole
    mine: a deadline or {!Spm_engine.Run.cancel} stops both stages
    cooperatively, [stats.status] reports how the run ended, and [patterns]
    holds whatever was mined before the interruption (Stage-II clusters
    return their emitted prefixes; a Stage-I interruption yields no
    patterns). {!Spm_engine.Run.Cancelled} never escapes this function. *)

val mine_with_entries :
  ?run:Spm_engine.Run.t ->
  ?config:Config.t ->
  Spm_graph.Graph.t ->
  entries:Diam_mine.entry list ->
  delta:int ->
  sigma:int ->
  result
(** Stage II only, from precomputed Stage-I entries (the direct-mining server
    path: entries come from {!Diameter_index}). [diam_stats] is zeroed. *)

val mine_transactions :
  ?run:Spm_engine.Run.t ->
  ?config:Config.t ->
  Spm_graph.Graph.t list ->
  l:int ->
  delta:int ->
  sigma:int ->
  result
(** Graph-transaction adaptation (§6.2.1 "Graph-Transaction Setting"): the
    database is combined into one disjoint-union graph; a pattern qualifies
    if it appears in at least [sigma] distinct transactions.
    [config.support] is overridden with the distinct-transaction counter. *)

val is_target : Spm_pattern.Pattern.t -> l:int -> delta:int -> bool
(** The (l,δ) constraint predicate itself (Definition 7), usable with
    {!Framework} checkers and enumerate-and-check baselines. *)

val is_neighborhood_target :
  ?center:Spm_graph.Label.t -> Spm_pattern.Pattern.t -> r:int -> bool
(** The r-neighborhood constraint predicate
    ({!Constraints.neighborhood_target}): at least one edge, connected, and
    some vertex (of label [center] when given) has eccentricity <= [r]. *)
