open Spm_graph

let realizing_paths p =
  let n = Graph.n p in
  if n = 0 then invalid_arg "Canonical_diameter: empty pattern";
  if not (Bfs.is_connected p) then
    invalid_arg "Canonical_diameter: pattern must be connected";
  let dm = Bfs.dist_matrix p in
  let d = ref 0 in
  Array.iter (fun row -> Array.iter (fun x -> if x > !d then d := x) row) dm;
  let d = !d in
  if d = 0 then List.init n (fun v -> [| v |])
  else begin
    let acc = ref [] in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v && dm.(u).(v) = d then
          acc := List.rev_append (Paths.shortest_paths_between p u v) !acc
      done
    done;
    !acc
  end

let compare_paths p a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec labels i =
      if i >= la then 0
      else
        let c = Label.compare (Graph.label p a.(i)) (Graph.label p b.(i)) in
        if c <> 0 then c else labels (i + 1)
    in
    let c = labels 0 in
    if c <> 0 then c
    else
      let rec ids i =
        if i >= la then 0
        else
          let c = Int.compare a.(i) b.(i) in
          if c <> 0 then c else ids (i + 1)
      in
      ids 0
  end

let compute p =
  match realizing_paths p with
  | [] -> invalid_arg "Canonical_diameter.compute: no realizing path"
  | first :: rest ->
    List.fold_left
      (fun best cand -> if compare_paths p cand best < 0 then cand else best)
      first rest

let diameter = Bfs.diameter

let is_canonical_diameter p path = compute p = path

(* Fast check that the identity path [0..l] is the canonical diameter.
   After confirming D(p) = l and dist(0, l) = l (which also rules out chords
   among diameter vertices), the only way the identity loses is to a
   realizing path with a strictly smaller label sequence: the identity wins
   every id tiebreak because at the first difference the rival's vertex id
   is necessarily larger. So we search each realizing source's shortest-path
   DAG only along label-equal prefixes, failing as soon as a strictly
   smaller label appears. *)
let identity_preserved p ~l =
  let n = Graph.n p in
  if n < l + 1 then invalid_arg "identity_preserved: too few vertices";
  let rec edges_ok i =
    i >= l || (Graph.has_edge p i (i + 1) && edges_ok (i + 1))
  in
  if not (edges_ok 0) then false
  else begin
    let dm = Array.init n (fun v -> Bfs.distances p v) in
    let diameter_ok =
      let d = ref 0 in
      Array.iter (fun row -> Array.iter (fun x -> if x > !d then d := x) row) dm;
      !d = l
    in
    if (not diameter_ok) || dm.(0).(l) <> l then false
    else begin
      let lbl v = Graph.label p v in
      let llabel i = lbl i in
      (* DFS from x toward any realizing sink, along label-equal prefixes of
         the identity; a strictly smaller label at any position is a strictly
         smaller realizing path. *)
      let exception Smaller in
      let check_source x =
        let dist_x = dm.(x) in
        (* Realizing sinks for x. *)
        let has_sink = Array.exists (fun d -> d = l) dist_x in
        if has_sink then begin
          if Label.compare (lbl x) (llabel 0) < 0 then raise Smaller;
          if Label.compare (lbl x) (llabel 0) = 0 then begin
            let visited = Hashtbl.create 32 in
            let rec dfs v pos =
              (* Invariant: labels of the prefix equal L[0..pos]. *)
              if pos < l && not (Hashtbl.mem visited (v, pos)) then begin
                Hashtbl.add visited (v, pos) ();
                Graph.iter_adj p v (fun w ->
                    (* Stay on a shortest path from x of full length l: w is
                       at x-distance pos+1 and can still reach a vertex at
                       distance l - need dist from w: l - pos - 1 more
                       steps to some sink y with dist_x y = l. Using
                       dm.(w): exists y, dm.(w).(y) = l - pos - 1 and
                       dist_x.(y) = l. *)
                    if dist_x.(w) = pos + 1 then begin
                      let reaches_sink =
                        let ok = ref false in
                        Array.iteri
                          (fun y dwy ->
                            if dwy = l - pos - 1 && dist_x.(y) = l then
                              ok := true)
                          dm.(w);
                        !ok
                      in
                      if reaches_sink then begin
                        let c = Label.compare (lbl w) (llabel (pos + 1)) in
                        if c < 0 then raise Smaller
                        else if c = 0 then dfs w (pos + 1)
                      end
                    end)
              end
            in
            dfs x 0
          end
        end
      in
      try
        for x = 0 to n - 1 do
          check_source x
        done;
        true
      with Smaller -> false
    end
  end

let levels p ~diameter =
  Bfs.distances_from_set p (Array.to_list diameter)

let is_skinny p ~delta =
  let l = compute p in
  Array.for_all (fun d -> d >= 0 && d <= delta) (levels p ~diameter:l)

let is_l_long_delta_skinny p ~l ~delta =
  Bfs.diameter p = l && is_skinny p ~delta
