(** Canonical-diameter maintenance — Loop Invariant 1 via Constraints I–III
    (§3.3–3.4, Lemma 1, Theorems 1–3).

    The grown pattern always has its canonical diameter on vertices [0..l]
    (head 0, tail l). An edge extension is admissible iff the canonical
    diameter is preserved. Three strategies:

    - [Naive]: recompute the canonical diameter of the extended pattern and
      compare (the "highly inefficient" baseline of §3.3, kept as ground
      truth and for the ablation benchmark).
    - [Paper]: the paper's local checks — Constraint I/II on the D_H/D_T
      indices, Constraint III verified only when Theorem 3's trigger fires.
    - [Exact]: the paper's local checks for I/II hardened with provably
      exact triggers for III (a BFS from the extension site for leaf
      extensions; a full verification for closing edges, which are rare).
      This is the default: it never reports a pattern under a diameter that
      is not canonical.

    All three agree on every instance we have property-tested; [Paper]'s
    Theorem-3 trigger restricts new diameters to end at the head or tail,
    which its Theorem 2 justifies under the growth discipline. *)

type mode = Naive | Paper | Exact

type extension =
  | New_leaf of { host : int }
      (** fresh vertex (taking the next id) attached to [host] *)
  | Close of int * int  (** new edge between existing vertices *)

val check :
  mode:mode ->
  pattern':Spm_pattern.Pattern.t ->
  idx:Distance_index.t ->
  idx':Distance_index.t ->
  l:int ->
  extension ->
  bool
(** [pattern'] is the extended pattern; [idx]/[idx'] the distance indices
    before/after the extension. True iff the path on vertices [0..l] is still
    the canonical diameter of [pattern']. *)

val check_naive : Spm_pattern.Pattern.t -> l:int -> bool
(** Ground truth: the canonical diameter of the pattern is exactly the
    identity path [0..l]. *)

(** {1 Constraint families}

    The growth loop is shared between two qualified constraint families; the
    family selects which admissibility check gates each extension. *)

type family =
  | Skinny  (** l-long δ-skinny (Definition 7) — the paper's constraint. *)
  | Neighborhood of { center : Spm_graph.Label.t option }
      (** r-neighborhood (Han & Wen): every vertex within distance r of a
          labeled center. [center] restricts Stage-I seeds to one label;
          [None] seeds every label present in the data graph. *)

val family_name : family -> string
(** ["skinny"] or ["neighborhood"] — the CLI / protocol spelling. *)

val check_neighborhood :
  mode:mode ->
  pattern':Spm_pattern.Pattern.t ->
  idx':Distance_index.t ->
  r:int ->
  extension ->
  bool
(** Admissibility for the r-neighborhood family. The center is pattern
    vertex 0 and the distance index is rooted there (head = tail = 0), so
    [Distance_index.dh] is exact distance-to-center: a new leaf is admissible
    iff it lands within radius [r]; a closing edge only shrinks distances and
    is always admissible. [Naive] recomputes the eccentricity of vertex 0
    from scratch (the ground-truth ablation, like {!check_naive}). *)

val neighborhood_target :
  ?center:Spm_graph.Label.t -> Spm_pattern.Pattern.t -> r:int -> bool
(** The r-neighborhood constraint predicate itself: the pattern has at least
    one edge, is connected, and some vertex (of label [center] when given)
    has eccentricity at most [r]. Usable with {!Framework} checkers and
    enumerate-and-check baselines. *)
