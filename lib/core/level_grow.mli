(** Stage II — LevelGrow (Algorithm 3): grow a canonical diameter into all
    l-long δ-skinny patterns that keep it canonical.

    Vertices [0..l] of every grown pattern are the diameter (head 0, tail l);
    twig vertices take ids beyond [l]. Extensions are leaf additions (a twig
    on any vertex whose level leaves room under δ) and closing edges; every
    extension must pass Constraints I–III ({!Constraints.check}) and the σ
    frequency test on distinct embedding subgraphs. Patterns are
    deduplicated by canonical key, which also provides the unique-generation
    guarantee. *)

type mined = {
  pattern : Spm_pattern.Pattern.t;
  support : int;  (** |E[P]|: distinct embedding subgraphs *)
  levels : int array;  (** per-vertex level (Definition 5) *)
  diameter_labels : Path_pattern.t;
}

type stats = {
  extensions_tried : int;
  constraint_rejected : int;
  infrequent : int;
  emitted : int;
  interrupted : bool;
      (** the run was cancelled or timed out mid-closure; the mined list is
          the partial prefix emitted before the interruption *)
  seconds : float;
}

val grow :
  ?mode:Constraints.mode ->
  ?family:Constraints.family ->
  ?closed_growth:bool ->
  ?support:(Spm_pattern.Pattern.t -> int array list -> int) ->
  ?run:Spm_engine.Run.t ->
  data:Spm_graph.Graph.t ->
  sigma:int ->
  delta:int ->
  entry:Diam_mine.entry ->
  unit ->
  mined list * stats
(** All patterns grown from one canonical diameter (the diameter itself is
    the first element — Observation 1's minimal pattern). [mode] defaults to
    [Constraints.Exact]; [support] maps (pattern, mappings) to a support
    value, by default the number of distinct embedding subgraphs.

    [family] (default [Constraints.Skinny]) selects the admissibility check
    gating each extension. With [Constraints.Neighborhood], [entry] is a
    single labeled center (a length-0 path, so [delta] carries the radius r
    and the per-vertex levels are exact distances to the center); the bare
    center itself is a growth state, not a result — every reported pattern
    has at least one edge.
    Unique generation: instead of the paper's Panchor extension-order
    discipline (which we found subtly lossy — constraint verdicts on
    intermediate patterns depend on edge order, and a twig's level can drop
    when a later closing edge arrives), growth is a memoized closure over
    single-edge extensions with *true* (distance-to-diameter) levels: each
    distinct pattern is constructed, checked and counted exactly once, so
    the cost stays polynomial in the number of distinct patterns and no
    reachable pattern is lost. See EXPERIMENTS.md for the analysis.

    [closed_growth] (default false) switches to closed-pattern semantics:
    a support-preserving ("universal") extension is applied eagerly without
    emitting or branching, so only patterns with no support-preserving
    extension are reported. This collapses the twig powerset — a cluster
    whose diameter has k always-co-occurring twigs yields one closed pattern
    instead of 2^k — and is how the paper's experiments remain sub-second on
    40-vertex injected patterns despite Theorem 4's complete-set claim.

    [run] (default a fresh unbounded context) is polled once per state
    popped and once per embedding scanned during candidate enumeration;
    when it is interrupted, [grow] returns the patterns emitted so far with
    [interrupted = true] instead of raising — the closure's emission order
    is deterministic, so the partial list is a prefix of the full output.
    The run's emission budget replaces the old [?max_patterns]: a fork with
    [~budget:n] makes [grow] stop exploring after its n-th emission and
    finish with [interrupted = false] (a budget is an output cap, not an
    interruption). *)
