open Spm_graph
module Pool = Spm_engine.Pool
module Clock = Spm_engine.Clock
module Run = Spm_engine.Run

(* Cooperative cancellation: [guard] is the per-extension polling point and
   [note n] the progress counter; both are no-ops without a run context. *)
let guard = function Some r -> Run.check r | None -> ()
let note run n = match run with Some r -> Run.tick ~n r | None -> ()

type entry = { labels : Path_pattern.t; embeddings : int array list }

let entry_support e = List.length e.embeddings

type stats = {
  per_power : (int * int * float) list;
  merge_seconds : float;
  total_seconds : float;
}

type result = { entries : entry list; stats : stats }

(* Directed path table: label sequence -> directed embeddings (deduped as
   directed sequences). The table is closed under reversal: every path is
   stored in both reading directions so concatenation and merging can join
   freely. *)
type dir_set = (Label.t array, (int array, unit) Hashtbl.t) Hashtbl.t

let add_emb (set : dir_set) labels emb =
  let tbl =
    match Hashtbl.find_opt set labels with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 16 in
      Hashtbl.add set labels t;
      t
  in
  Hashtbl.replace tbl emb ()

let embs_of tbl = Hashtbl.fold (fun e () acc -> e :: acc) tbl []

(* Parallelization scaffolding: the extension steps below iterate over every
   directed path, probing read-only indices built up front. The iteration is
   flattened into an array, chunked into more slices than domains (dynamic
   scheduling absorbs skew), each slice fills a worker-local table, and the
   locals are merged on the caller. Tables hold set semantics, so the merged
   content is identical to the sequential run regardless of [jobs]; final
   ordering is normalized in [entries_of_set]. *)

let oversplit pool = 4 * Pool.jobs pool

let flatten_paths (set : dir_set) =
  let acc = ref [] in
  Hashtbl.iter
    (fun labels tbl ->
      Hashtbl.iter (fun emb () -> acc := (labels, emb) :: !acc) tbl)
    set;
  Array.of_list !acc

let merge_into (dst : dir_set) (src : dir_set) =
  Hashtbl.iter
    (fun labels tbl ->
      match Hashtbl.find_opt dst labels with
      | None -> Hashtbl.add dst labels tbl
      | Some d -> Hashtbl.iter (fun e () -> Hashtbl.replace d e ()) tbl)
    src

let fan_out ?run pool work body =
  let parts =
    Pool.map ?run pool
      (fun slice ->
        let out : dir_set = Hashtbl.create 64 in
        Array.iter
          (fun item ->
            guard run;
            body out item)
          slice;
        note run (Array.length slice);
        out)
      (Pool.slices work ~pieces:(oversplit pool))
  in
  let out : dir_set = Hashtbl.create 64 in
  Array.iter (merge_into out) parts;
  out

(* Support of the undirected pattern with canonical label sequence [c]: the
   directed embeddings under [c], deduped as subgraphs (only palindromic
   sequences ever hold both orientations of one subgraph), then measured by
   [support] — by default their count, i.e. |E[P]|. *)
let canonical_support ~support (set : dir_set) c =
  match Hashtbl.find_opt set c with
  | None -> 0
  | Some tbl -> support (Path_pattern.Emb.dedup_subgraphs (embs_of tbl))

(* Keep only paths whose undirected pattern meets sigma. [set] is only read,
   so the per-sequence support checks run on the pool. *)
let frequency_filter ?run ?(pool = Pool.serial) ~support (set : dir_set)
    ~sigma =
  let work =
    Array.of_list (Hashtbl.fold (fun labels tbl acc -> (labels, tbl) :: acc) set [])
  in
  let parts =
    Pool.map ?run pool
      (fun slice ->
        let out : dir_set = Hashtbl.create 64 in
        Array.iter
          (fun (labels, tbl) ->
            guard run;
            let c = Path_pattern.canonical labels in
            if canonical_support ~support set c >= sigma then
              Hashtbl.replace out labels tbl)
          slice;
        out)
      (Pool.slices work ~pieces:(oversplit pool))
  in
  (* Top-level keys are unique across slices: plain adds suffice. *)
  let out : dir_set = Hashtbl.create (Hashtbl.length set) in
  Array.iter
    (fun part -> Hashtbl.iter (fun labels tbl -> Hashtbl.add out labels tbl) part)
    parts;
  out

let count_canonical (set : dir_set) =
  let seen = Hashtbl.create 64 in
  Hashtbl.iter
    (fun labels _ -> Hashtbl.replace seen (Path_pattern.canonical labels) ())
    set;
  Hashtbl.length seen

let edges_set g =
  let out : dir_set = Hashtbl.create 64 in
  Graph.iter_edges
    (fun u v ->
      let lu = Graph.label g u and lv = Graph.label g v in
      add_emb out [| lu; lv |] [| u; v |];
      add_emb out [| lv; lu |] [| v; u |])
    g;
  out

let disjoint_from ~except_first emb (vs : (int, unit) Hashtbl.t) =
  let n = Array.length emb in
  let rec loop i = i >= n || ((not (Hashtbl.mem vs emb.(i))) && loop (i + 1)) in
  loop except_first

(* Concatenate two directed paths of equal length at a shared junction
   vertex (CheckConcat of Algorithm 2, embedding-level). The head index is
   built once, then candidate paths are partitioned across the pool. *)
let concat_step ?run ?(pool = Pool.serial) (set : dir_set) =
  (* Index every directed embedding by its head vertex; the junction label
     condition is implied by vertex equality. *)
  let by_head : (int, (Label.t array * int array) list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  Hashtbl.iter
    (fun labels tbl ->
      Hashtbl.iter
        (fun emb () ->
          let h = emb.(0) in
          match Hashtbl.find_opt by_head h with
          | Some l -> l := (labels, emb) :: !l
          | None -> Hashtbl.add by_head h (ref [ (labels, emb) ]))
        tbl)
    set;
  fan_out ?run pool (flatten_paths set) (fun out (a_labels, a) ->
      let la = Array.length a in
      let tail = a.(la - 1) in
      match Hashtbl.find_opt by_head tail with
      | None -> ()
      | Some candidates ->
        let a_verts = Hashtbl.create la in
        Array.iter (fun v -> Hashtbl.replace a_verts v ()) a;
        List.iter
          (fun (b_labels, b) ->
            if disjoint_from ~except_first:1 b a_verts then begin
              let lb = Array.length b in
              let labels =
                Array.append a_labels (Array.sub b_labels 1 (lb - 1))
              in
              let emb = Array.append a (Array.sub b 1 (lb - 1)) in
              add_emb out labels emb
            end)
          !candidates)

(* Merge two directed paths of length 2^k overlapping in [ov] edges to form a
   path of length 2^{k+1} - ov (CheckMergeHead/CheckMergeTail, over all
   ordered pairs). *)
let merge_step ?run ?(pool = Pool.serial) (set : dir_set) ~ov =
  let ov_verts = ov + 1 in
  (* Index embeddings by their first ov+1 vertices. *)
  let by_prefix : (int list, (Label.t array * int array) list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  Hashtbl.iter
    (fun labels tbl ->
      Hashtbl.iter
        (fun emb () ->
          let key = Array.to_list (Array.sub emb 0 ov_verts) in
          match Hashtbl.find_opt by_prefix key with
          | Some l -> l := (labels, emb) :: !l
          | None -> Hashtbl.add by_prefix key (ref [ (labels, emb) ]))
        tbl)
    set;
  fan_out ?run pool (flatten_paths set) (fun out (a_labels, a) ->
      let la = Array.length a in
      let key = Array.to_list (Array.sub a (la - ov_verts) ov_verts) in
      match Hashtbl.find_opt by_prefix key with
      | None -> ()
      | Some candidates ->
        let a_verts = Hashtbl.create la in
        Array.iter (fun v -> Hashtbl.replace a_verts v ()) a;
        List.iter
          (fun (b_labels, b) ->
            if disjoint_from ~except_first:ov_verts b a_verts then begin
              let lb = Array.length b in
              let labels =
                Array.append a_labels
                  (Array.sub b_labels ov_verts (lb - ov_verts))
              in
              let emb =
                Array.append a (Array.sub b ov_verts (lb - ov_verts))
              in
              add_emb out labels emb
            end)
          !candidates)

(* Entry extraction is normalized so the result is a pure function of the
   set's *content*: entries sorted by canonical labels, embeddings sorted,
   and palindromic embeddings read in their canonical orientation. This is
   what makes mining output bit-identical across [jobs] settings (the
   parallel steps produce the same sets in different insertion orders). *)
let entries_of_set ~support (set : dir_set) ~sigma =
  let seen = Hashtbl.create 64 in
  let entries =
    Hashtbl.fold
      (fun labels tbl acc ->
        let c = Path_pattern.canonical labels in
        if Hashtbl.mem seen c then acc
        else begin
          Hashtbl.add seen c ();
          (* Read embeddings in the canonical direction. *)
          let ctbl = if labels = c then tbl else Hashtbl.find set c in
          let embs = embs_of ctbl in
          let embs =
            if Path_pattern.is_palindrome c then
              List.map Path_pattern.Emb.canonical_orientation embs
            else embs
          in
          let embs =
            List.sort compare (Path_pattern.Emb.dedup_subgraphs embs)
          in
          if support embs >= sigma then { labels = c; embeddings = embs } :: acc
          else acc
        end)
      set []
  in
  List.sort
    (fun a b -> Path_pattern.compare_labels a.labels b.labels)
    entries

module Powers = struct
  type t = {
    sigma : int;
    prune : bool;
    support : int array list -> int;
    levels : (int * dir_set) list; (* ascending lengths 1, 2, 4, ... *)
    stats_per_power : (int * int * float) list;
    build_seconds : float;
  }

  let build ?(prune_intermediate = true) ?(support = List.length) ?run ?pool
      g ~sigma ~up_to =
    let t0 = Clock.now () in
    let stats = ref [] in
    let level l = match run with Some r -> Run.set_level r l | None -> () in
    let rec grow set len acc =
      let acc = (len, set) :: acc in
      if 2 * len > up_to then List.rev acc
      else begin
        let t = Clock.now () in
        level (2 * len);
        let next = concat_step ?run ?pool set in
        let next =
          if prune_intermediate then
            frequency_filter ?run ?pool ~support next ~sigma
          else next
        in
        stats := (2 * len, count_canonical next, Clock.now () -. t) :: !stats;
        grow next (2 * len) acc
      end
    in
    let levels =
      if up_to < 1 then []
      else begin
        let t = Clock.now () in
        level 1;
        let s1 = edges_set g in
        let s1 =
          if prune_intermediate then
            frequency_filter ?run ?pool ~support s1 ~sigma
          else s1
        in
        stats := (1, count_canonical s1, Clock.now () -. t) :: !stats;
        grow s1 1 []
      end
    in
    {
      sigma;
      prune = prune_intermediate;
      support;
      levels;
      stats_per_power = List.rev !stats;
      build_seconds = Clock.now () -. t0;
    }

  let max_power t =
    List.fold_left (fun acc (len, _) -> max acc len) 0 t.levels

  let set_of_length t len = List.assoc_opt len t.levels

  let paths_of_length ?run ?pool t ~l ~sigma =
    if l < 1 then invalid_arg "Diam_mine: l must be >= 1";
    let support = t.support in
    match set_of_length t l with
    | Some set -> entries_of_set ~support set ~sigma
    | None ->
      (* l is not a materialized power: merge two paths of length p, the
         largest materialized power below l, overlapping in 2p - l edges. *)
      let p =
        List.fold_left
          (fun acc (len, _) -> if len <= l then max acc len else acc)
          0 t.levels
      in
      if p = 0 || l >= 2 * p then
        invalid_arg
          (Printf.sprintf
             "Diam_mine.Powers.paths_of_length: l=%d not servable (largest \
              usable power %d)"
             l p);
      let set = Option.get (set_of_length t p) in
      let ov = (2 * p) - l in
      let merged = merge_step ?run ?pool set ~ov in
      entries_of_set ~support merged ~sigma

  let stats t =
    {
      per_power = t.stats_per_power;
      merge_seconds = 0.0;
      total_seconds = t.build_seconds;
    }
end

let mine ?(prune_intermediate = true) ?support ?run ?pool g ~l ~sigma =
  if l < 1 then invalid_arg "Diam_mine.mine: l must be >= 1";
  let t0 = Clock.now () in
  let powers =
    Powers.build ~prune_intermediate ?support ?run ?pool g ~sigma ~up_to:l
  in
  let tm = Clock.now () in
  let entries = Powers.paths_of_length ?run ?pool powers ~l ~sigma in
  let merge_seconds = Clock.now () -. tm in
  {
    entries;
    stats =
      {
        per_power = powers.Powers.stats_per_power;
        merge_seconds;
        total_seconds = Clock.now () -. t0;
      };
  }
