open Spm_graph
module Pool = Spm_engine.Pool
module Clock = Spm_engine.Clock
module Run = Spm_engine.Run

type cluster = { entry : Diam_mine.entry; mined : Skinny_mine.mined list }

type t = {
  dgraph : Delta.t;
  l : int;
  delta : int;
  sigma : int;
  config : Skinny_mine.Config.t;
  scope : Path_pattern.t -> bool;
      (* Cluster-ownership predicate over canonical diameter labels. The
         default accepts everything; a shard worker passes the predicate of
         its shard so Stage-I entries outside it are dropped before any
         growth — repairs then stay inside the owned cluster set. *)
  clusters : cluster list; (* Stage-I entry order *)
  complete : bool;
}

type diff = {
  version : int;
  added : Skinny_mine.mined list;
  removed : Skinny_mine.mined list;
  repaired_clusters : int;
  reused_clusters : int;
  total_clusters : int;
  seconds : float;
  status : Run.status;
}

let graph t = t.dgraph
let version t = Delta.version t.dgraph
let params t = (t.l, t.delta, t.sigma)
let config t = t.config
let complete t = t.complete
let clusters t = t.clusters
let patterns t = List.concat_map (fun c -> c.mined) t.clusters

let check_config (config : Skinny_mine.Config.t) =
  if config.max_patterns <> None then
    invalid_arg "Incremental: max_patterns is a global budget; unsupported";
  if config.support <> None then
    invalid_arg "Incremental: custom support functions are unsupported"

let with_jobs_pool jobs f =
  if jobs <= 1 then f Pool.serial else Pool.with_pool ~jobs f

(* Stage I for one graph version: route through Diameter_index so the entry
   list is the exact list Skinny_mine.mine would grow (Diam_mine.mine is the
   same Powers.build + paths_of_length composition). *)
let stage1 ~run ~(config : Skinny_mine.Config.t) ~scope g ~l ~sigma =
  let idx =
    Diameter_index.build ~prune_intermediate:config.prune_intermediate ~run
      ~jobs:config.jobs g ~sigma ~l_max:l
  in
  (* Scoping happens after the full Stage I: the σ filter is global, so the
     frequent-path set must be computed over the whole graph; ownership then
     drops entire clusters (a cluster is never split across shards). *)
  List.filter
    (fun (e : Diam_mine.entry) -> scope e.Diam_mine.labels)
    (Diameter_index.entries ~run idx ~l)

(* One cluster's Stage II, mirroring Skinny_mine.grow_all's uncapped path
   (per-cluster closedness equals the global filter: comparisons never cross
   diameter_labels). *)
let grow_entry ~run ~(config : Skinny_mine.Config.t) ~data ~delta ~sigma entry
    =
  let mined, st =
    Level_grow.grow ~mode:config.mode ~closed_growth:config.closed_growth ~run
      ~data ~sigma ~delta ~entry ()
  in
  let mined =
    if config.closed_only then Skinny_mine.closed_filter mined else mined
  in
  (mined, st)

let grow_entries ~run ~config ~data ~delta ~sigma entries =
  let per_cluster =
    with_jobs_pool config.Skinny_mine.Config.jobs (fun pool ->
        Pool.map pool
          (fun entry -> grow_entry ~run ~config ~data ~delta ~sigma entry)
          (Array.of_list entries))
  in
  let interrupted =
    Array.exists
      (fun (_, (st : Level_grow.stats)) -> st.Level_grow.interrupted)
      per_cluster
  in
  (Array.to_list (Array.map fst per_cluster), interrupted)

let mine_clusters ~run ~config ~scope dg ~l ~delta ~sigma =
  let g = Delta.snapshot dg in
  match stage1 ~run ~config ~scope g ~l ~sigma with
  | exception Run.Cancelled _ -> ([], false)
  | entries ->
    let mined_lists, interrupted =
      grow_entries ~run ~config ~data:g ~delta ~sigma entries
    in
    (List.map2 (fun entry mined -> { entry; mined }) entries mined_lists,
     not interrupted)

let fresh_run run = match run with Some r -> r | None -> Run.create ()
let unscoped = fun _ -> true

let create ?run ?(config = Skinny_mine.Config.default) ?(scope = unscoped) dg
    ~l ~delta ~sigma =
  check_config config;
  let run = fresh_run run in
  let clusters, complete =
    mine_clusters ~run ~config ~scope dg ~l ~delta ~sigma
  in
  { dgraph = dg; l; delta; sigma; config; scope; clusters; complete }

let restore ?run ?(config = Skinny_mine.Config.default) ?(scope = unscoped) dg
    ~l ~delta ~sigma ~patterns =
  check_config config;
  let run = fresh_run run in
  match stage1 ~run ~config ~scope (Delta.snapshot dg) ~l ~sigma with
  | exception Run.Cancelled _ -> None
  | entries ->
    (* Partition the flat stored list by diameter labels; preserving input
       order inside each bucket reproduces the per-cluster grow order the
       store was written in. *)
    let buckets : (Path_pattern.t, Skinny_mine.mined list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    List.iter
      (fun e -> Hashtbl.replace buckets e.Diam_mine.labels (ref []))
      entries;
    let orphan =
      List.exists
        (fun (m : Skinny_mine.mined) ->
          match Hashtbl.find_opt buckets m.diameter_labels with
          | Some b ->
            b := m :: !b;
            false
          | None -> true)
        patterns
    in
    if orphan then None
    else
      let clusters =
        List.map
          (fun e ->
            {
              entry = e;
              mined = List.rev !(Hashtbl.find buckets e.Diam_mine.labels);
            })
          entries
      in
      (* Every cluster emits at least its diameter pattern; an empty bucket
         means the stored set does not match this (l, δ, σ, config). *)
      if List.exists (fun c -> c.mined = []) clusters then None
      else
        Some
          { dgraph = dg; l; delta; sigma; config; scope; clusters;
            complete = true }

(* Byte-level identity key for diffing: pattern text + support + levels +
   diameter labels — the same rendering the oracle suite compares. *)
let key_of_mined (m : Skinny_mine.mined) =
  let b = Buffer.create 128 in
  Buffer.add_string b (Io.to_string m.pattern);
  Buffer.add_string b (Printf.sprintf "|%d|" m.support);
  Array.iter (fun x -> Buffer.add_string b (Printf.sprintf "%d," x)) m.levels;
  Buffer.add_char b '|';
  Array.iter
    (fun x -> Buffer.add_string b (Printf.sprintf "%d," x))
    m.diameter_labels;
  Buffer.contents b

let diff_patterns ~old_patterns ~new_patterns =
  let keys ms =
    let h = Hashtbl.create 256 in
    List.iter (fun m -> Hashtbl.replace h (key_of_mined m) ()) ms;
    h
  in
  let old_keys = keys old_patterns and new_keys = keys new_patterns in
  let added =
    List.filter (fun m -> not (Hashtbl.mem old_keys (key_of_mined m))) new_patterns
  in
  let removed =
    List.filter (fun m -> not (Hashtbl.mem new_keys (key_of_mined m))) old_patterns
  in
  (added, removed)

(* Bounded BFS: mark every vertex within [depth] of [src]. Patterns are
   repaired per cluster, so this is the only whole-graph work scoping does;
   it touches O(ball) vertices, not O(n). *)
let mark_ball g src depth marks =
  if src < Graph.n g then begin
    let dist = Hashtbl.create 64 in
    Hashtbl.replace dist src 0;
    marks.(src) <- true;
    let q = Queue.create () in
    Queue.push src q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      let d = Hashtbl.find dist v in
      if d < depth then
        Graph.iter_adj g v (fun w ->
            if not (Hashtbl.mem dist w) then begin
              Hashtbl.replace dist w (d + 1);
              marks.(w) <- true;
              Queue.push w q
            end)
    done
  end

let touched_endpoints edits =
  List.concat_map
    (function
      | Delta.Add_vertex _ -> []
      | Delta.Add_edge (u, v) | Delta.Remove_edge (u, v) -> [ u; v ])
    edits
  |> List.sort_uniq Int.compare

let empty_diff ~version ~t0 ~status =
  {
    version;
    added = [];
    removed = [];
    repaired_clusters = 0;
    reused_clusters = 0;
    total_clusters = 0;
    seconds = Clock.now () -. t0;
    status;
  }

(* Only reached when the run was observed interrupted, so [Run.status] is
   necessarily Timeout or Cancelled here. *)
let abort ~t ~t0 ~run = (t, empty_diff ~version:(version t) ~t0 ~status:(Run.status run))

let update ?run t edits =
  let run = fresh_run run in
  let t0 = Clock.now () in
  let dg' = Delta.apply_all t.dgraph edits in
  let touched = touched_endpoints edits in
  if touched = [] && t.complete then
    (* Pure vertex additions: no edge flips, so neither Stage I (paths need
       edges) nor any δ-ball changes — splice everything through. *)
    ( { t with dgraph = dg' },
      {
        (empty_diff ~version:(Delta.version dg') ~t0 ~status:Run.Ok) with
        reused_clusters = List.length t.clusters;
        total_clusters = List.length t.clusters;
      } )
  else if not t.complete then
    (* Nothing trustworthy to splice: full rebuild at the new version. *)
    let clusters, ok =
      mine_clusters ~run ~config:t.config ~scope:t.scope dg' ~l:t.l
        ~delta:t.delta ~sigma:t.sigma
    in
    if not ok then abort ~t ~t0 ~run
    else
      let t' = { t with dgraph = dg'; clusters; complete = true } in
      let added, removed =
        diff_patterns ~old_patterns:(patterns t) ~new_patterns:(patterns t')
      in
      ( t',
        {
          version = Delta.version dg';
          added;
          removed;
          repaired_clusters = List.length clusters;
          reused_clusters = 0;
          total_clusters = List.length clusters;
          seconds = Clock.now () -. t0;
          status = Run.Ok;
        } )
  else begin
    let g0 = Delta.snapshot t.dgraph and g1 = Delta.snapshot dg' in
    (* δ-balls around every touched endpoint, in both versions: a cluster
       whose embeddings avoid the marks has an identical δ-neighborhood
       before and after, hence an identical grow. *)
    let marks = Array.make (max (Graph.n g0) (Graph.n g1)) false in
    List.iter
      (fun v ->
        mark_ball g0 v t.delta marks;
        mark_ball g1 v t.delta marks)
      touched;
    match stage1 ~run ~config:t.config ~scope:t.scope g1 ~l:t.l ~sigma:t.sigma
    with
    | exception Run.Cancelled _ -> abort ~t ~t0 ~run
    | entries ->
      let old_by_labels : (Path_pattern.t, cluster) Hashtbl.t =
        Hashtbl.create 64
      in
      List.iter
        (fun c -> Hashtbl.replace old_by_labels c.entry.Diam_mine.labels c)
        t.clusters;
      let embeddings_marked (e : Diam_mine.entry) =
        List.exists
          (fun emb -> Array.exists (fun v -> marks.(v)) emb)
          e.embeddings
      in
      let decisions =
        List.map
          (fun (e : Diam_mine.entry) ->
            match Hashtbl.find_opt old_by_labels e.Diam_mine.labels with
            | Some c
              when c.entry.Diam_mine.embeddings = e.Diam_mine.embeddings
                   && not (embeddings_marked e) ->
              `Reuse c
            | Some _ | None -> `Grow e)
          entries
      in
      let to_grow =
        List.filter_map
          (function `Grow e -> Some e | `Reuse _ -> None)
          decisions
      in
      let grown, interrupted =
        grow_entries ~run ~config:t.config ~data:g1 ~delta:t.delta
          ~sigma:t.sigma to_grow
      in
      if interrupted then abort ~t ~t0 ~run
      else begin
        let grown = ref grown in
        let clusters =
          List.map2
            (fun decision (e : Diam_mine.entry) ->
              match decision with
              | `Reuse c -> c
              | `Grow _ ->
                let mined = List.hd !grown in
                grown := List.tl !grown;
                { entry = e; mined })
            decisions entries
        in
        let t' = { t with dgraph = dg'; clusters } in
        let added, removed =
          diff_patterns ~old_patterns:(patterns t) ~new_patterns:(patterns t')
        in
        let repaired = List.length to_grow in
        ( t',
          {
            version = Delta.version dg';
            added;
            removed;
            repaired_clusters = repaired;
            reused_clusters = List.length entries - repaired;
            total_clusters = List.length entries;
            seconds = Clock.now () -. t0;
            status = Run.Ok;
          } )
      end
  end
