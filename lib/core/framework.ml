open Spm_graph
open Spm_pattern

module type CONSTRAINT = sig
  type request
  type seed

  val name : string
  val minimal_patterns : Graph.t -> sigma:int -> request -> seed list
  val grow : Graph.t -> sigma:int -> request -> seed -> (Pattern.t * int) list
end

module Make (C : CONSTRAINT) = struct
  (* Stage II (one C.grow per seed) fans out over the pool; results are
     concatenated and deduplicated in seed order, so the output does not
     depend on [jobs]. *)
  let mine ?(jobs = 1) g ~sigma request =
    let seeds = Array.of_list (C.minimal_patterns g ~sigma request) in
    let per_seed =
      if jobs <= 1 then Array.map (fun seed -> C.grow g ~sigma request seed) seeds
      else
        Spm_engine.Pool.with_pool ~jobs (fun pool ->
            Spm_engine.Pool.map pool (fun seed -> C.grow g ~sigma request seed) seeds)
    in
    let seen = Canon.Set.create () in
    List.concat (Array.to_list per_seed)
    |> List.filter (fun (p, _) -> Canon.Set.add seen p)
end

module Skinny = struct
  type request = { l : int; delta : int }
  type seed = Diam_mine.entry

  let name = "l-long delta-skinny"

  let minimal_patterns g ~sigma { l; delta = _ } =
    (Diam_mine.mine g ~l ~sigma).Diam_mine.entries

  let grow g ~sigma { delta; _ } seed =
    let mined, _stats = Level_grow.grow ~data:g ~sigma ~delta ~entry:seed () in
    List.map
      (fun m -> (m.Level_grow.pattern, m.Level_grow.support))
      mined

  let mine ?jobs g ~sigma request =
    let module M = Make (struct
      type nonrec request = request
      type nonrec seed = seed

      let name = name
      let minimal_patterns = minimal_patterns
      let grow = grow
    end) in
    M.mine ?jobs g ~sigma request
end

module Neighborhood = struct
  type request = { r : int; center : Label.t option }
  type seed = Diam_mine.entry

  let name = "r-neighborhood"

  (* No sigma filter on seeds — see [Neighbor_mine.centers]. *)
  let minimal_patterns g ~sigma:_ { center; _ } = Neighbor_mine.centers ?center g

  let grow g ~sigma { r; center } seed =
    let mined, _stats =
      Level_grow.grow
        ~family:(Constraints.Neighborhood { center })
        ~data:g ~sigma ~delta:r ~entry:seed ()
    in
    List.map (fun m -> (m.Level_grow.pattern, m.Level_grow.support)) mined

  (* Unlike skinny clusters (disjoint by Theorem 4), neighborhood clusters
     can overlap: a pattern within radius r of both an a-labeled and a
     b-labeled vertex is grown from both centers. [Make]'s seed-order
     deduplication makes the overlap harmless. *)
  let mine ?jobs g ~sigma request =
    let module M = Make (struct
      type nonrec request = request
      type nonrec seed = seed

      let name = name
      let minimal_patterns = minimal_patterns
      let grow = grow
    end) in
    M.mine ?jobs g ~sigma request
end

(* --- Property checkers --------------------------------------------------- *)

let pattern_minus_edge p (u, v) =
  let es = List.filter (fun e -> e <> (u, v)) (Graph.edges p) in
  let keep =
    (* Drop endpoints this deletion isolates; keep everything else. *)
    List.init (Graph.n p) (fun w -> w)
    |> List.filter (fun w ->
           List.exists (fun (a, b) -> a = w || b = w) es
           || (w <> u && w <> v && Graph.degree p w = 0))
  in
  let keep = Array.of_list keep in
  let idx = Hashtbl.create 8 in
  Array.iteri (fun i w -> Hashtbl.add idx w i) keep;
  let labels = Array.map (fun w -> Graph.label p w) keep in
  let es' = List.map (fun (a, b) -> (Hashtbl.find idx a, Hashtbl.find idx b)) es in
  Graph.Builder.of_edges ~labels es'

let single_vertex p w = Graph.Builder.of_edges ~labels:[| Graph.label p w |] []

let immediate_subpatterns p =
  let seen = Canon.Set.create () in
  if Pattern.size p = 0 then []
  else if Pattern.size p = 1 then begin
    (* Removing the only edge leaves single vertices. *)
    List.filter
      (fun q -> Canon.Set.add seen q)
      [ single_vertex p 0; single_vertex p 1 ]
  end
  else
    Graph.edges p
    |> List.filter_map (fun e ->
           let q = pattern_minus_edge p e in
           if Bfs.is_connected q && Canon.Set.add seen q then Some q else None)

let rec is_minimal_satisfying ~pred p =
  pred p
  && List.for_all
       (fun q -> not (satisfies_somewhere ~pred q))
       (immediate_subpatterns p)

and satisfies_somewhere ~pred p =
  pred p
  || List.exists (fun q -> satisfies_somewhere ~pred q) (immediate_subpatterns p)

let reducible_witnesses ~pred ~universe =
  List.filter
    (fun p -> Pattern.size p >= 1 && is_minimal_satisfying ~pred p)
    universe

let is_reducible ~pred ~universe = reducible_witnesses ~pred ~universe <> []

let is_continuous ~pred ~universe =
  List.for_all
    (fun p ->
      (not (pred p))
      || is_minimal_satisfying ~pred p
      || List.exists pred (immediate_subpatterns p))
    universe

let connected_patterns_upto g ~max_edges =
  let seen = Canon.Set.create () in
  let out = ref [] in
  let add p = if Canon.Set.add seen p then out := p :: !out in
  Graph.iter_vertices (fun v -> add (single_vertex g v)) g;
  let all_edges = Array.of_list (Graph.edges g) in
  let m = Array.length all_edges in
  let consider chosen =
    let es = List.map (fun i -> all_edges.(i)) chosen in
    let vs =
      List.concat_map (fun (u, v) -> [ u; v ]) es
      |> List.sort_uniq Int.compare |> Array.of_list
    in
    let idx = Hashtbl.create 8 in
    Array.iteri (fun i v -> Hashtbl.add idx v i) vs;
    let labels = Array.map (fun v -> Graph.label g v) vs in
    let es' = List.map (fun (u, v) -> (Hashtbl.find idx u, Hashtbl.find idx v)) es in
    let p = Graph.Builder.of_edges ~labels es' in
    if Bfs.is_connected p then add p
  in
  let rec choose i chosen size =
    if size > 0 then consider chosen;
    if i < m && size < max_edges then begin
      choose (i + 1) (i :: chosen) (size + 1);
      choose (i + 1) chosen size
    end
  in
  choose 0 [] 0;
  List.rev !out
