open Spm_graph
open Spm_pattern

type mined = {
  pattern : Pattern.t;
  support : int;
  levels : int array;
  diameter_labels : Path_pattern.t;
}

type stats = {
  extensions_tried : int;
  constraint_rejected : int;
  infrequent : int;
  emitted : int;
  interrupted : bool;
  seconds : float;
}

(* Extension descriptor: NL (host, new label) creates a twig; CE (u, v)
   closes an edge between existing vertices. *)
type desc = NL of int * Label.t | CE of int * int

let compare_desc a b =
  match (a, b) with
  | NL (h1, l1), NL (h2, l2) -> compare (h1, l1) (h2, l2)
  | CE (u1, v1), CE (u2, v2) -> compare (u1, v1) (u2, v2)
  | NL _, CE _ -> -1
  | CE _, NL _ -> 1

type pstate = {
  pattern : Pattern.t;
  levels : int array; (* true distance to the diameter path [0..l] *)
  idx : Distance_index.t;
  maps : int array list; (* all mappings pattern vertex -> data vertex *)
  support : int;
}

(* |E[P]| from the complete mapping list: for a connected pattern every
   image subgraph accounts for exactly |Aut(P)| mappings, so the
   distinct-subgraph count is a division — no per-mapping dedup hashing.
   The plans carrying the automorphism groups are cached per grow call,
   keyed by canonical code. *)
let default_support data =
  let plans = Plan.Cache.create () in
  let freq l = Graph.label_freq data l in
  fun pattern maps ->
    match maps with
    | [] -> 0
    | _ -> List.length maps / Plan.Cache.aut_count plans ~freq pattern

(* Per-grow scratch: the relaxation queue and the embedding-image mark array
   are allocated once per [grow] call and reused across every state and
   embedding, instead of a fresh Queue / Hashtbl per extension. The mark
   array is stamp-based: each embedding bumps [stamp] and writes it at its
   image vertices, so membership is one array probe and no clearing pass. *)
type scratch = {
  relax_queue : int Queue.t;
  mark : int array; (* sized to the data graph *)
  mutable stamp : int;
}

let make_scratch data =
  {
    relax_queue = Queue.create ();
    mark = Array.make (max 1 (Graph.n data)) 0;
    stamp = 0;
  }

(* Levels (distance to the diameter) maintained exactly: a fresh leaf sits
   one above its host; a closing edge can only lower levels, propagated by a
   decrease-only relaxation. *)
let relax_levels scratch pattern' levels u v =
  let queue = scratch.relax_queue in
  Queue.clear queue;
  let try_improve a b =
    if levels.(b) > levels.(a) + 1 then begin
      levels.(b) <- levels.(a) + 1;
      Queue.add b queue
    end
  in
  try_improve u v;
  try_improve v u;
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    Graph.iter_adj pattern' x (fun y -> try_improve x y)
  done

(* Enumerate extension candidates for one state, grouped by descriptor with
   per-descriptor mapping lists. Twigs may hang off any vertex whose level
   leaves room under delta; closing edges may join any non-adjacent pair
   whose images are adjacent in the data graph. Twig labels arrive sorted
   per host vertex thanks to the CSR's (label, id) neighbor order. *)
let candidates run scratch data st ~delta =
  let by_desc : (desc, int array list ref) Hashtbl.t = Hashtbl.create 32 in
  let add desc m =
    match Hashtbl.find_opt by_desc desc with
    | Some l -> l := m :: !l
    | None -> Hashtbl.add by_desc desc (ref [ m ])
  in
  let np = Graph.n st.pattern in
  List.iter
    (fun m ->
      Spm_engine.Run.check run;
      scratch.stamp <- scratch.stamp + 1;
      let s = scratch.stamp in
      Array.iter (fun tv -> scratch.mark.(tv) <- s) m;
      for pv = 0 to np - 1 do
        if st.levels.(pv) <= delta - 1 then
          Graph.iter_adj data m.(pv) (fun w ->
              if scratch.mark.(w) <> s then
                add (NL (pv, Graph.label data w)) (Array.append m [| w |]))
      done;
      for pv = 0 to np - 1 do
        for pu = 0 to pv - 1 do
          if
            (not (Graph.has_edge st.pattern pu pv))
            && Graph.has_edge data m.(pu) m.(pv)
          then add (CE (pu, pv)) m
        done
      done)
    st.maps;
  Hashtbl.fold (fun d ms acc -> (d, !ms) :: acc) by_desc []
  |> List.sort (fun (d1, _) (d2, _) -> compare_desc d1 d2)

let apply_desc scratch st desc =
  match desc with
  | NL (host, label) ->
    let pattern = Pattern.extend_new_vertex st.pattern ~host ~label in
    let idx = Distance_index.extend_new_vertex st.idx ~host in
    let levels = Array.append st.levels [| st.levels.(host) + 1 |] in
    (pattern, idx, levels, Constraints.New_leaf { host })
  | CE (u, v) ->
    let pattern = Pattern.extend_close_edge st.pattern u v in
    let idx = Distance_index.extend_close_edge pattern st.idx u v in
    let levels = Array.copy st.levels in
    relax_levels scratch pattern levels u v;
    (pattern, idx, levels, Constraints.Close (u, v))

(* A descriptor is "universal" for a state when every embedding of the
   pattern supports it — extending by it cannot reduce the support, so every
   closed superpattern contains it. Closed growth applies such extensions
   eagerly without branching (the item-merging jump of closed-pattern
   mining), collapsing the twig powerset the complete semantics enumerates. *)
let universal_descs st cands =
  let total = List.length st.maps in
  List.filter
    (fun (desc, maps) ->
      match desc with
      | CE _ -> List.length maps = total
      | NL _ ->
        (* Forward maps extend parents; count distinct parents covered. *)
        let parents = Hashtbl.create total in
        List.iter
          (fun (m : int array) ->
            Hashtbl.replace parents (Array.sub m 0 (Array.length m - 1)) ())
          maps;
        Hashtbl.length parents = total)
    cands

let grow ?(mode = Constraints.Exact) ?(family = Constraints.Skinny)
    ?(closed_growth = false) ?support ?run ~data ~sigma ~delta
    ~(entry : Diam_mine.entry) () =
  let run =
    match run with Some r -> r | None -> Spm_engine.Run.create ()
  in
  let t0 = Spm_engine.Clock.now () in
  let support_fn =
    match support with Some f -> f | None -> default_support data
  in
  let scratch = make_scratch data in
  let l = Path_pattern.length entry.Diam_mine.labels in
  let diameter_pattern = Path_pattern.to_pattern entry.Diam_mine.labels in
  let tried = ref 0 and rejected = ref 0 and infreq = ref 0 in
  let init_maps =
    let embs = entry.Diam_mine.embeddings in
    (* A length-0 path ([l = 0], the neighborhood family's single center) is
       trivially a palindrome but has only one orientation per embedding —
       doubling would double-count |maps| against |Aut|. *)
    if l > 0 && Path_pattern.is_palindrome entry.Diam_mine.labels then
      List.concat_map
        (fun e ->
          let r = Array.init (Array.length e) (fun k -> e.(Array.length e - 1 - k)) in
          [ e; r ])
        embs
    else embs
  in
  let init =
    {
      pattern = diameter_pattern;
      levels = Array.make (l + 1) 0;
      idx = Distance_index.init diameter_pattern ~head:0 ~tail:l;
      maps = init_maps;
      support = support_fn diameter_pattern init_maps;
    }
  in
  (* Unique generation: every pattern whose key is in [decided] has been
     judged exactly once (accepted or infrequent); verdicts are
     derivation-independent, so re-derivations are skipped. *)
  let decided : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let out = ref [] in
  let interrupted = ref false in
  (* [full] = this run's emission budget is spent: stop exploring but finish
     normally (status Ok — a budget is an output cap, not an interruption). *)
  let full = ref (Spm_engine.Run.budget_exhausted run) in
  (* Edgeless patterns (the neighborhood family's bare center seed) are
     growth states, never results: every reported pattern has >= 1 edge. A
     no-op for skinny, whose seeds carry l >= 1 edges. *)
  let emit st =
    if (not !full) && Pattern.size st.pattern > 0 then begin
      out :=
        {
          pattern = st.pattern;
          support = st.support;
          levels = st.levels;
          diameter_labels = entry.Diam_mine.labels;
        }
        :: !out;
      Spm_engine.Run.emit run;
      if Spm_engine.Run.budget_exhausted run then full := true
    end
  in
  Hashtbl.replace decided (Canon.key init.pattern) ();
  (* Build one child; [`Dup] = pattern already judged elsewhere. *)
  let build_child st (desc, maps) =
    incr tried;
    Spm_engine.Run.tick run;
    let pattern', idx', levels', ext = apply_desc scratch st desc in
    (* Constraints first: rejections are by far the most common outcome and
       must not pay for canonicalization. (Verdicts depend on WHICH vertices
       carry the diameter — two isomorphic constructions can differ, e.g. a
       paw built as triangle-on-the-diameter vs triangle-on-a-twig — so a
       rejection must NOT be memoized; only acceptance and infrequency are
       pattern-intrinsic.) *)
    let admissible =
      match family with
      | Constraints.Skinny ->
        Constraints.check ~mode ~pattern':pattern' ~idx:st.idx ~idx':idx' ~l
          ext
      | Constraints.Neighborhood _ ->
        (* [delta] carries the radius r; vertex 0 is the center. *)
        Constraints.check_neighborhood ~mode ~pattern':pattern' ~idx':idx'
          ~r:delta ext
    in
    if not admissible then begin
      incr rejected;
      `Rejected
    end
    else begin
      let key = Canon.key pattern' in
      if Hashtbl.mem decided key then `Dup
      else begin
        Hashtbl.replace decided key ();
        let support = support_fn pattern' maps in
        if support < sigma then begin
          incr infreq;
          `Infrequent
        end
        else
          `Child { pattern = pattern'; levels = levels'; idx = idx'; maps; support }
      end
    end
  in
  let rec closure frontier =
    match frontier with
    | [] -> ()
    | st :: rest when not !full ->
      Spm_engine.Run.check run;
      Spm_engine.Run.set_level run (Graph.m st.pattern);
      let cands = candidates run scratch data st ~delta in
      if closed_growth then begin
        (* Eager phase: the first applicable support-preserving extension
           replaces the state without emitting it (the parent cannot be
           closed); universal children whose support grows are kept as
           ordinary branches. A duplicate universal means an isomorphic
           continuation is handled elsewhere. *)
        let rec eager stash = function
          | [] -> `NoUniversal stash
          | cand :: more -> (
            match build_child st cand with
            | `Child st' when st'.support = st.support -> `Jump (st', stash)
            | `Child st' -> eager (st' :: stash) more
            | `Dup -> `Covered stash
            | `Rejected | `Infrequent -> eager stash more)
        in
        match eager [] (universal_descs st cands) with
        | `Jump (st', stash) -> closure ((st' :: stash) @ rest)
        | `Covered stash -> closure (stash @ rest)
        | `NoUniversal stash ->
          emit st;
          let children =
            List.filter_map
              (fun cand ->
                match build_child st cand with
                | `Child st' -> Some st'
                | `Dup | `Rejected | `Infrequent -> None)
              cands
          in
          closure (stash @ children @ rest)
      end
      else begin
        let children =
          List.filter_map
            (fun cand ->
              match build_child st cand with
              | `Child st' ->
                emit st';
                Some st'
              | `Dup | `Rejected | `Infrequent -> None)
            cands
        in
        closure (children @ rest)
      end
    | _ :: _ -> ()
  in
  (* An interrupted run unwinds here via [Run.Cancelled]; [out] survives the
     unwinding, so the patterns emitted before the interruption are returned
     as a partial result with [interrupted = true] in the stats. *)
  (try
     Spm_engine.Run.check run;
     if not closed_growth then emit init;
     if delta >= 0 then closure [ init ]
   with Spm_engine.Run.Cancelled _ -> interrupted := true);
  let result = List.rev !out in
  ( result,
    {
      extensions_tried = !tried;
      constraint_rejected = !rejected;
      infrequent = !infreq;
      emitted = List.length result;
      interrupted = !interrupted;
      seconds = Spm_engine.Clock.now () -. t0;
    } )
