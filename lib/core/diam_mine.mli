(** Stage I — DiamMine (Algorithm 2): mine all frequent simple paths of an
    exact length l.

    The algorithm first builds frequent paths of lengths 1, 2, 4, …, 2^k
    (k = ⌊log₂ l⌋) by concatenating two paths of the previous power at a
    shared junction vertex, then obtains length-l paths (l not a power of 2)
    by merging two length-2^k paths overlapping in 2^{k+1} − l edges — the
    unique prefix/suffix decomposition the paper proves in §3.2.

    Support is the paper's |E[P]|: the number of distinct path *subgraphs*
    reading the label sequence. With [prune_intermediate = true] (the paper's
    behaviour) the σ filter is applied at every power-of-2 stage; since
    embedding-count support is not anti-monotone this is a growth semantics —
    a frequent length-l path all of whose aligned power-of-2 sub-paths are
    also frequent. [prune_intermediate = false] keeps every intermediate path
    and is exhaustively complete (used in tests against brute-force
    enumeration, and as an ablation). *)

type entry = {
  labels : Path_pattern.t;  (** canonical orientation *)
  embeddings : int array list;
      (** directed vertex sequences reading [labels], one per distinct
          subgraph *)
}

val entry_support : entry -> int

type stats = {
  per_power : (int * int * float) list;
      (** (length 2^i, #frequent paths of that length, seconds) *)
  merge_seconds : float;
  total_seconds : float;
}

type result = { entries : entry list; stats : stats }

val mine :
  ?prune_intermediate:bool ->
  ?support:(int array list -> int) ->
  ?run:Spm_engine.Run.t ->
  ?pool:Spm_engine.Pool.t ->
  Spm_graph.Graph.t ->
  l:int ->
  sigma:int ->
  result
(** All frequent simple paths of length exactly [l] (>= 1). [support] maps a
    list of subgraph-deduped embeddings to a support value; the default is
    their count (|E[P]|). The transaction adaptation passes a distinct-
    transaction counter.

    [pool] (default {!Spm_engine.Pool.serial}) parallelizes the candidate
    extension loops: each concat/merge/frequency step partitions the
    directed-path table across the pool's domains. Entries are returned in
    canonical order (sorted labels, sorted embeddings), so the result is
    bit-identical whatever the pool size.

    [run] is polled once per directed path examined (and between pool task
    claims); an interrupted run raises {!Spm_engine.Run.Cancelled} out of
    this function — Stage I has no useful partial result, so the caller
    decides what to salvage. Progress ticks count directed paths examined
    and the level tracks the current power-of-2 length. *)

(** The reusable power-of-2 table, for serving many values of l from one
    precomputation (the direct-mining index of Figure 2). *)
module Powers : sig
  type t

  val build :
    ?prune_intermediate:bool ->
    ?support:(int array list -> int) ->
    ?run:Spm_engine.Run.t ->
    ?pool:Spm_engine.Pool.t ->
    Spm_graph.Graph.t ->
    sigma:int ->
    up_to:int ->
    t
  (** Frequent paths of lengths 1, 2, 4, …, up to the largest power of 2 that
      is <= [up_to] (or, if [up_to] < 1, nothing). [pool] parallelizes each
      power-of-2 extension step; [run] is polled as in {!mine}. *)

  val max_power : t -> int
  (** Largest power length materialized. *)

  val paths_of_length :
    ?run:Spm_engine.Run.t ->
    ?pool:Spm_engine.Pool.t -> t -> l:int -> sigma:int -> entry list
  (** Frequent paths of length exactly [l] ([l] <= 2 * max_power is required
      unless [l] is itself a materialized power). *)

  val stats : t -> stats
end
