module Pool = Spm_engine.Pool
module Clock = Spm_engine.Clock

type t = {
  graph : Spm_graph.Graph.t;
  sigma : int;
  jobs : int;
  powers : Diam_mine.Powers.t;
  cache : (int, Diam_mine.entry list) Hashtbl.t;
  build_seconds : float;
}

let with_jobs_pool jobs f =
  if jobs <= 1 then f Pool.serial else Pool.with_pool ~jobs f

let build ?prune_intermediate ?path_support ?(jobs = 1) g ~sigma ~l_max =
  let t0 = Clock.now () in
  (* Materialize powers up to l_max; a non-power l <= l_max is served by
     merging from the largest power below it. *)
  let powers =
    with_jobs_pool jobs (fun pool ->
        Diam_mine.Powers.build ?prune_intermediate ?support:path_support ~pool
          g ~sigma ~up_to:l_max)
  in
  {
    graph = g;
    sigma;
    jobs;
    powers;
    cache = Hashtbl.create 16;
    build_seconds = Clock.now () -. t0;
  }

let graph t = t.graph
let sigma t = t.sigma
let build_seconds t = t.build_seconds

let entries t ~l =
  match Hashtbl.find_opt t.cache l with
  | Some e -> e
  | None ->
    let e =
      with_jobs_pool t.jobs (fun pool ->
          Diam_mine.Powers.paths_of_length ~pool t.powers ~l ~sigma:t.sigma)
    in
    Hashtbl.add t.cache l e;
    e

let request ?config t ~l ~delta =
  Skinny_mine.mine_with_entries ?config t.graph ~entries:(entries t ~l) ~delta
    ~sigma:t.sigma

let request_range ?config t ~l_min ~l_max ~delta =
  let t0 = Clock.now () in
  let results =
    List.init (l_max - l_min + 1) (fun i ->
        request ?config t ~l:(l_min + i) ~delta)
  in
  let patterns = List.concat_map (fun r -> r.Skinny_mine.patterns) results in
  let grow_stats =
    List.concat_map (fun r -> r.Skinny_mine.stats.Skinny_mine.grow_stats) results
  in
  {
    Skinny_mine.patterns;
    stats =
      {
        Skinny_mine.diam_stats =
          { Diam_mine.per_power = []; merge_seconds = 0.0; total_seconds = 0.0 };
        num_diameters =
          List.fold_left
            (fun acc r -> acc + r.Skinny_mine.stats.Skinny_mine.num_diameters)
            0 results;
        grow_seconds = Clock.now () -. t0;
        grow_stats;
        total_seconds = Clock.now () -. t0;
      };
  }
