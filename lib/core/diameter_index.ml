module Pool = Spm_engine.Pool
module Clock = Spm_engine.Clock

type t = {
  graph : Spm_graph.Graph.t;
  sigma : int;
  jobs : int;
  l_max : int;
  prune_intermediate : bool;
  powers : Diam_mine.Powers.t Lazy.t;
      (* Forced at [build]; a restored index only forces it when asked for a
         length outside its snapshot (full Stage-I rebuild). *)
  cache : (int, Diam_mine.entry list) Hashtbl.t;
  build_seconds : float;
}

let with_jobs_pool jobs f =
  if jobs <= 1 then f Pool.serial else Pool.with_pool ~jobs f

let build ?(prune_intermediate = true) ?path_support ?run ?(jobs = 1) g ~sigma
    ~l_max =
  let t0 = Clock.now () in
  (* Materialize powers up to l_max; a non-power l <= l_max is served by
     merging from the largest power below it. *)
  let powers =
    with_jobs_pool jobs (fun pool ->
        Diam_mine.Powers.build ~prune_intermediate ?support:path_support ?run
          ~pool g ~sigma ~up_to:l_max)
  in
  {
    graph = g;
    sigma;
    jobs;
    l_max;
    prune_intermediate;
    powers = Lazy.from_val powers;
    cache = Hashtbl.create 16;
    build_seconds = Clock.now () -. t0;
  }

let graph t = t.graph
let sigma t = t.sigma
let l_max t = t.l_max
let build_seconds t = t.build_seconds

let entries ?run t ~l =
  match Hashtbl.find_opt t.cache l with
  | Some e -> e
  | None ->
    let powers = Lazy.force t.powers in
    let e =
      with_jobs_pool t.jobs (fun pool ->
          Diam_mine.Powers.paths_of_length ?run ~pool powers ~l ~sigma:t.sigma)
    in
    Hashtbl.add t.cache l e;
    e

type snapshot = {
  snap_sigma : int;
  snap_l_max : int;
  lengths : (int * Diam_mine.entry list) list;
}

let snapshot t =
  (* Cover every materialized power plus every on-demand length served so
     far; [entries] caches the powers it touches, so the fold over powers
     just fills the cache before we dump it. *)
  let powers = Lazy.force t.powers in
  let rec power_lengths p acc =
    if p > Diam_mine.Powers.max_power powers then List.rev acc
    else power_lengths (2 * p) (p :: acc)
  in
  List.iter (fun l -> ignore (entries t ~l)) (power_lengths 1 []);
  let lengths =
    Hashtbl.fold (fun l e acc -> (l, e) :: acc) t.cache []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  { snap_sigma = t.sigma; snap_l_max = t.l_max; lengths }

let of_snapshot ?(prune_intermediate = true) ?(jobs = 1) g snap =
  let cache = Hashtbl.create 16 in
  List.iter (fun (l, e) -> Hashtbl.replace cache l e) snap.lengths;
  {
    graph = g;
    sigma = snap.snap_sigma;
    jobs;
    l_max = snap.snap_l_max;
    prune_intermediate;
    powers =
      lazy
        (with_jobs_pool jobs (fun pool ->
             Diam_mine.Powers.build ~prune_intermediate ~pool g
               ~sigma:snap.snap_sigma ~up_to:snap.snap_l_max));
    cache;
    build_seconds = 0.0;
  }

let request ?config t ~l ~delta =
  Skinny_mine.mine_with_entries ?config t.graph ~entries:(entries t ~l) ~delta
    ~sigma:t.sigma

let request_range ?config t ~l_min ~l_max ~delta =
  let t0 = Clock.now () in
  let results =
    List.init (l_max - l_min + 1) (fun i ->
        request ?config t ~l:(l_min + i) ~delta)
  in
  let patterns = List.concat_map (fun r -> r.Skinny_mine.patterns) results in
  let grow_stats =
    List.concat_map (fun r -> r.Skinny_mine.stats.Skinny_mine.grow_stats) results
  in
  {
    Skinny_mine.patterns;
    stats =
      {
        Skinny_mine.diam_stats =
          { Diam_mine.per_power = []; merge_seconds = 0.0; total_seconds = 0.0 };
        num_diameters =
          List.fold_left
            (fun acc r -> acc + r.Skinny_mine.stats.Skinny_mine.num_diameters)
            0 results;
        grow_seconds = Clock.now () -. t0;
        grow_stats;
        status =
          (* First non-Ok wins: later lengths ran after the interruption. *)
          List.fold_left
            (fun acc r ->
              if acc <> Spm_engine.Run.Ok then acc
              else r.Skinny_mine.stats.Skinny_mine.status)
            Spm_engine.Run.Ok results;
        total_seconds = Clock.now () -. t0;
      };
  }
