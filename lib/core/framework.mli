(** The general direct-mining framework (§5) and executable checkers for the
    two qualifying properties of constraints.

    A qualified constraint is mined in two stages: (1) generate the minimal
    constraint-satisfying patterns (possible when the constraint is
    {e reducible} — Property 1); (2) grow each minimal pattern while
    preserving the constraint (complete when the constraint is {e continuous}
    — Property 2). The functor {!Make} packages the two stages; {!Skinny} is
    the (l,δ)-SPM instance built from {!Diam_mine} and {!Level_grow}. *)

type pattern := Spm_pattern.Pattern.t

module type CONSTRAINT = sig
  type request
  (** A concrete mining request (e.g. (l, δ) for skinny patterns). *)

  type seed
  (** A minimal constraint-satisfying pattern plus whatever state growth
      needs (e.g. its embeddings). *)

  val name : string

  val minimal_patterns :
    Spm_graph.Graph.t -> sigma:int -> request -> seed list

  val grow :
    Spm_graph.Graph.t -> sigma:int -> request -> seed -> (pattern * int) list
  (** Constraint-preserving growth: every pattern in the seed's cluster with
      its support. *)
end

module Make (C : CONSTRAINT) : sig
  val mine :
    ?jobs:int -> Spm_graph.Graph.t -> sigma:int -> C.request ->
    (pattern * int) list
  (** Two-stage direct mining; results deduplicated up to isomorphism.
      [jobs] (default 1) runs one [C.grow] per seed across that many
      domains; the result list is identical for every [jobs] value. *)
end

module Skinny : sig
  type request = { l : int; delta : int }

  include CONSTRAINT with type request := request

  val mine :
    ?jobs:int -> Spm_graph.Graph.t -> sigma:int -> request ->
    (pattern * int) list
end

(** The r-neighborhood instance (Han & Wen): minimal patterns are single
    labeled centers ({!Neighbor_mine.centers}), growth preserves "every
    vertex within distance [r] of the center" via
    {!Constraints.check_neighborhood}. Qualification (reducibility with the
    one-edge witnesses, continuity) is demonstrated by the committed
    property-checker tests. Unlike skinny clusters, neighborhood clusters
    overlap — a pattern near two differently-labeled centers is grown from
    both — so {!Make}'s seed-order deduplication is load-bearing here. *)
module Neighborhood : sig
  type request = { r : int; center : Spm_graph.Label.t option }

  include CONSTRAINT with type request := request

  val mine :
    ?jobs:int -> Spm_graph.Graph.t -> sigma:int -> request ->
    (pattern * int) list
end

(** {1 Property checkers}

    Executable over a finite universe of candidate patterns (e.g. all
    connected subgraphs of a small graph); used to demonstrate the paper's
    §5.2/§5.3 examples: MaxDegree ≤ K is not reducible, "all degrees equal"
    is not continuous. *)

val immediate_subpatterns : pattern -> pattern list
(** All connected patterns obtained by deleting one edge (dropping a vertex
    it isolates), deduplicated up to isomorphism. Single vertices count. *)

val is_minimal_satisfying : pred:(pattern -> bool) -> pattern -> bool
(** No proper connected subpattern (of any size) satisfies [pred], but the
    pattern does. Exponential — small patterns only. *)

val reducible_witnesses :
  pred:(pattern -> bool) -> universe:pattern list -> pattern list
(** Minimal satisfying patterns with at least one edge found in the
    universe. *)

val is_reducible : pred:(pattern -> bool) -> universe:pattern list -> bool
(** Property 1 restricted to the universe: some non-trivial minimal
    satisfying pattern exists. *)

val is_continuous : pred:(pattern -> bool) -> universe:pattern list -> bool
(** Property 2 restricted to the universe: every satisfying pattern is
    minimal or has a satisfying immediate subpattern. *)

val connected_patterns_upto :
  Spm_graph.Graph.t -> max_edges:int -> pattern list
(** Universe helper: all connected subgraph patterns (up to isomorphism)
    with 1..max_edges edges, plus single-vertex patterns. Exponential. *)
