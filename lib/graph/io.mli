(** Text serialization of graphs and graph-transaction databases.

    Format (one item per line, [#] comments allowed):
    {v
    t <graph-index>          # starts a new graph (databases only)
    v <vertex-id> <label>    # vertex ids must be dense 0..n-1 per graph
    e <u> <v>                # undirected edge
    v} *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Failure on malformed input. *)

val db_to_string : Graph.t list -> string

val db_of_string : string -> Graph.t list

val write_file : string -> Graph.t -> unit

val read_file : string -> Graph.t

val write_db : string -> Graph.t list -> unit

val read_db : string -> Graph.t list

val edits_to_string : Delta.edit list -> string
(** Textual edit script, one edit per line: [av <label>] / [ae <u> <v>] /
    [re <u> <v>]. Same comment and whitespace conventions as the graph
    format. *)

val edits_of_string : string -> Delta.edit list
(** @raise Failure on malformed input, naming the 1-based line. Endpoint
    validity is only checked when the script is applied. *)

val read_edits : string -> Delta.edit list

val to_dot : ?names:Label.Table.t -> ?highlight:int list -> Graph.t -> string
(** Graphviz rendering; [highlight] vertices are drawn filled. *)
