let is_simple_path g path =
  let k = Array.length path in
  if k = 0 then false
  else begin
    let seen = Hashtbl.create k in
    let ok = ref true in
    Array.iter
      (fun v ->
        if Hashtbl.mem seen v then ok := false else Hashtbl.add seen v ())
      path;
    if !ok then
      for i = 0 to k - 2 do
        if not (Graph.has_edge g path.(i) path.(i + 1)) then ok := false
      done;
    !ok
  end

let reverse_path path =
  let k = Array.length path in
  Array.init k (fun i -> path.(k - 1 - i))

let compare_id_seq a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let canonical_orientation path =
  let rev = reverse_path path in
  if compare_id_seq path rev <= 0 then path else rev

let iter_simple_paths g ~length f =
  if length < 0 then invalid_arg "Paths.iter_simple_paths: negative length";
  let nv = Graph.n g in
  let path = Array.make (length + 1) 0 in
  let on_path = Array.make nv false in
  (* Emit each undirected path once: start <= end vertex id. *)
  let rec extend depth =
    if depth = length then begin
      if path.(0) <= path.(length) then f path
    end
    else begin
      let u = path.(depth) in
      Graph.iter_adj g u (fun v ->
          if not on_path.(v) then begin
            path.(depth + 1) <- v;
            on_path.(v) <- true;
            extend (depth + 1);
            on_path.(v) <- false
          end)
    end
  in
  for s = 0 to nv - 1 do
    path.(0) <- s;
    on_path.(s) <- true;
    extend 0;
    on_path.(s) <- false
  done

let simple_paths_of_length g ~length =
  let acc = ref [] in
  iter_simple_paths g ~length (fun p -> acc := Array.copy p :: !acc);
  List.rev !acc

let shortest_paths_between g s t =
  let dist = Bfs.distances g s in
  if t < 0 || t >= Graph.n g || dist.(t) < 0 then []
  else begin
    (* Walk backwards from t through the BFS DAG; collect reversed paths. *)
    let acc = ref [] in
    let rec back v suffix =
      if v = s then acc := Array.of_list (s :: suffix) :: !acc
      else
        Graph.iter_adj g v (fun u ->
            if dist.(u) = dist.(v) - 1 then back u (v :: suffix))
    in
    back t [];
    List.rev !acc
  end

let labels_of_path g path = Array.map (fun v -> Graph.label g v) path
