(** Backing storage for frozen CSR arrays.

    Every flat index a {!Graph.t} is made of — neighbor runs, offsets, label
    directories — is a {!t}: either a GC-managed OCaml [int array] (the
    default, built in memory) or a [Bigarray] slice of native 64-bit words,
    typically memory-mapped straight out of a store file
    ({!Spm_store.Store.map_graph}). Consumers of the graph API never see the
    difference; the accessors below are the only read path and both backings
    honor identical bounds-checked semantics.

    Values are immutable by contract: nothing in this library writes through
    a [t] after construction, and mapped slices may live on read-only pages
    where a write would fault. *)

type bigints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Native-word slice: on disk these are 64-bit little-endian words, mapped
    with kind [Bigarray.int] so each element reads back as an unboxed OCaml
    [int] with no per-element decoding. *)

type t =
  | Arr of int array
  | Big of bigints

type backing = [ `Array | `Bigarray ]

val of_array : int array -> t

val of_bigarray : bigints -> t

val length : t -> int

val get : t -> int -> int
(** Bounds-checked element read; raises [Invalid_argument] out of range
    (for either backing — a corrupt mapped file can make indices lie, and
    the failure mode must be an exception, never a wild read). *)

val backing : t -> backing

val convert : backing -> t -> t
(** Copy into the requested backing ([`Bigarray] allocates outside the OCaml
    heap). Returns the argument unchanged when it already matches. *)

val to_array : t -> int array
(** Fresh array copy ([Arr] included — callers may mutate the result). *)

val sub_array : t -> int -> int -> int array
(** [sub_array s pos len] is a fresh array of the given range. *)

val iter : (int -> unit) -> t -> unit

val equal : t -> t -> bool
(** Element-wise equality, blind to the backing. *)

(** The eight arrays of a frozen CSR graph, in their canonical (and on-disk)
    order. [Graph.of_csr] re-assembles a graph from these; [Graph.to_csr]
    exposes them for serialization. *)
type csr = {
  labels : t;
  xadj : t;
  nbr : t;
  lab_off : t;
  lab_keys : t;
  lab_starts : t;
  vl_off : t;
  vl : t;
}

val csr_fields : csr -> (string * t) list
(** [(name, slice)] pairs in canonical order — the single source of truth
    for serialization layout. *)
