(** Random graph generation and pattern injection.

    The paper's synthetic data (§6.2) is an Erdős–Rényi background graph with
    uniformly random labels from a universe of [f] labels, into which skinny
    and/or small patterns are explicitly embedded a prescribed number of
    times. Every generator takes an explicit RNG so experiments are
    reproducible. *)

type rng = Random.State.t

val rng : int -> rng
(** Seeded RNG. *)

val random_labels : rng -> n:int -> num_labels:int -> Label.t array

val erdos_renyi_gnp : rng -> n:int -> p:float -> num_labels:int -> Graph.t
(** G(n, p) with uniform labels in [0, num_labels). *)

val erdos_renyi : rng -> n:int -> avg_degree:float -> num_labels:int -> Graph.t
(** G(n, m)-style: [n * avg_degree / 2] distinct random edges. Matches the
    paper's "|V| vertices, average degree deg" parameterization. *)

val rmat_edges :
  ?a:float ->
  ?b:float ->
  ?c:float ->
  rng ->
  scale:int ->
  edges:int ->
  (int -> int -> unit) ->
  unit
(** Stream [edges] R-MAT edges over [2^scale] vertices to the callback,
    materializing nothing. Quadrant probabilities default to the Graph500
    mix (a = 0.57, b = 0.19, c = 0.19, d = 0.05), which produces the
    heavy-tailed degree skew real graphs show. Self-loops are resampled
    (exact edge count); duplicate edges are emitted as drawn — graph
    constructors merge them. The sequence is a deterministic function of
    the RNG state, so replaying a [Random.State.copy] replays the edges.
    @raise Invalid_argument if [scale] outside [1, 30] or probabilities
    are malformed. *)

val rmat :
  ?a:float ->
  ?b:float ->
  ?c:float ->
  rng ->
  scale:int ->
  edge_factor:int ->
  num_labels:int ->
  Graph.t
(** R-MAT graph with [2^scale] vertices and [edge_factor * 2^scale] edge
    draws, uniform labels, built through the two-pass streaming constructor
    ({!Graph.Builder.of_edge_stream}) — peak memory is the finished CSR,
    never a per-edge list. *)

val barabasi_albert : rng -> n:int -> m_per:int -> num_labels:int -> Graph.t
(** Barabási–Albert preferential attachment: a star seed on the first
    [m_per + 1] vertices, then each new vertex attaches to [m_per] distinct
    existing vertices with probability proportional to their degree.
    Scale-free degree distribution, guaranteed connected.
    @raise Invalid_argument unless [1 <= m_per < n]. *)

val path_graph : Label.t array -> Graph.t
(** Path whose i-th vertex has the i-th label. *)

val cycle_graph : Label.t array -> Graph.t

val star_graph : center:Label.t -> Label.t array -> Graph.t

val random_tree : rng -> n:int -> num_labels:int -> Graph.t

val random_skinny_pattern :
  ?accept:(Graph.t -> bool) ->
  rng ->
  backbone:int ->
  delta:int ->
  twigs:int ->
  num_labels:int ->
  Graph.t
(** A connected pattern built from a length-[backbone] path (vertices
    [0..backbone]) by rejection-sampled twig attachment: each of up to [twigs]
    extra leaves is kept only when [accept] holds on the candidate. The
    default acceptance keeps the diameter exactly [backbone], keeps the
    backbone a shortest path between its endpoints, and keeps all vertices
    within [delta] of the backbone. Pass the core library's exact δ-skinny
    predicate as [accept] for a guarantee w.r.t. the canonical diameter.
    Requires [backbone >= 1]. *)

val random_connected_pattern :
  rng -> n:int -> extra_edges:int -> num_labels:int -> Graph.t
(** Random tree plus [extra_edges] random chords — the "fat" patterns used to
    contrast with skinny ones. *)

val inject :
  rng ->
  Graph.Builder.t ->
  pattern:Graph.t ->
  copies:int ->
  ?bridges:int ->
  unit ->
  int array array
(** Embed [copies] fresh copies of [pattern] into the graph being built, each
    connected to [bridges] (default 1) uniformly random pre-existing vertices
    by bridge edges (so injected structure is part of one connected data
    graph, as in the paper's setup). Returns, per copy, the data-vertex id of
    each pattern vertex. If the builder is empty, no bridges are added. *)

val shuffle : rng -> 'a array -> unit

val pick : rng -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
