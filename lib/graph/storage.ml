type bigints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t =
  | Arr of int array
  | Big of bigints

type backing = [ `Array | `Bigarray ]

let of_array a = Arr a
let of_bigarray b = Big b

let length = function
  | Arr a -> Array.length a
  | Big b -> Bigarray.Array1.dim b

(* The one hot accessor: a two-way branch in front of a bounds-checked
   load. Kept tiny so the inliner removes the call on every CSR scan. *)
let[@inline always] get s i =
  match s with Arr a -> a.(i) | Big b -> Bigarray.Array1.get b i

let backing = function Arr _ -> `Array | Big _ -> `Bigarray

let to_array s =
  match s with
  | Arr a -> Array.copy a
  | Big b ->
    let n = Bigarray.Array1.dim b in
    Array.init n (fun i -> Bigarray.Array1.get b i)

let sub_array s pos len =
  match s with
  | Arr a -> Array.sub a pos len
  | Big b ->
    if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim b then
      invalid_arg "Storage.sub_array";
    Array.init len (fun i -> Bigarray.Array1.get b (pos + i))

let convert (want : backing) s =
  match (want, s) with
  | `Array, Arr _ | `Bigarray, Big _ -> s
  | `Array, Big _ -> Arr (to_array s)
  | `Bigarray, Arr a ->
    let n = Array.length a in
    let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
    for i = 0 to n - 1 do
      Bigarray.Array1.set b i a.(i)
    done;
    Big b

let iter f s =
  for i = 0 to length s - 1 do
    f (get s i)
  done

let equal a b =
  length a = length b
  &&
  let n = length a in
  let rec go i = i >= n || (get a i = get b i && go (i + 1)) in
  go 0

type csr = {
  labels : t;
  xadj : t;
  nbr : t;
  lab_off : t;
  lab_keys : t;
  lab_starts : t;
  vl_off : t;
  vl : t;
}

let csr_fields c =
  [
    ("labels", c.labels);
    ("xadj", c.xadj);
    ("nbr", c.nbr);
    ("lab_off", c.lab_off);
    ("lab_keys", c.lab_keys);
    ("lab_starts", c.lab_starts);
    ("vl_off", c.vl_off);
    ("vl", c.vl);
  ]
