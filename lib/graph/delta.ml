(* CSR snapshot + edit overlay.

   The overlay is two symmetric adjacency maps: [added] holds edges present
   in the merged view but not in the base, [removed] masks base edges out.
   An edge is never in both. Vertices created since the last rebuild live in
   [extra] (their ids are all >= Graph.n base, assigned densely). Records
   are immutable; [apply_all] returns a new version and, once the overlay
   crosses the rebuild threshold, freezes the merged view into a fresh base
   so reads degrade back to plain CSR. *)

module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

type edit =
  | Add_vertex of Label.t
  | Add_edge of int * int
  | Remove_edge of int * int

let pp_edit ppf = function
  | Add_vertex l -> Format.fprintf ppf "av %a" Label.pp l
  | Add_edge (u, v) -> Format.fprintf ppf "ae %d %d" u v
  | Remove_edge (u, v) -> Format.fprintf ppf "re %d %d" u v

type t = {
  base : Graph.t;
  version : int;
  rebuild_every : int;
  pending : int;
  nv : int; (* current vertex count *)
  extra : Label.t IntMap.t; (* labels of vertices >= Graph.n base *)
  max_extra_label : Label.t; (* -1 when [extra] is empty *)
  added : IntSet.t IntMap.t; (* symmetric overlay adjacency *)
  removed : IntSet.t IntMap.t; (* symmetric mask over base edges *)
  added_m : int;
  removed_m : int;
  snap : Graph.t option ref; (* memoized merged snapshot, per version *)
}

let default_rebuild_every g = max 64 (Graph.m g / 8)

let of_graph ?rebuild_every g =
  let rebuild_every =
    match rebuild_every with
    | Some k ->
      if k < 1 then invalid_arg "Graph.Delta: rebuild_every must be positive";
      k
    | None -> default_rebuild_every g
  in
  {
    base = g;
    version = 0;
    rebuild_every;
    pending = 0;
    nv = Graph.n g;
    extra = IntMap.empty;
    max_extra_label = -1;
    added = IntMap.empty;
    removed = IntMap.empty;
    added_m = 0;
    removed_m = 0;
    snap = ref (Some g);
  }

let version t = t.version
let base t = t.base
let pending t = t.pending
let n t = t.nv
let m t = Graph.m t.base + t.added_m - t.removed_m

let check_v t v =
  if v < 0 || v >= t.nv then invalid_arg "Graph.Delta: vertex out of range"

let label t v =
  check_v t v;
  if v < Graph.n t.base then Graph.label t.base v else IntMap.find v t.extra

let neighbors_in map v =
  match IntMap.find_opt v map with Some s -> s | None -> IntSet.empty

let has_edge t u v =
  check_v t u;
  check_v t v;
  u <> v
  &&
  if IntSet.mem v (neighbors_in t.added u) then true
  else if IntSet.mem v (neighbors_in t.removed u) then false
  else
    let bn = Graph.n t.base in
    u < bn && v < bn && Graph.has_edge t.base u v

let degree t v =
  check_v t v;
  let base_deg = if v < Graph.n t.base then Graph.degree t.base v else 0 in
  base_deg
  + IntSet.cardinal (neighbors_in t.added v)
  - IntSet.cardinal (neighbors_in t.removed v)

(* Neighbor order is (label, id), matching the CSR run contract. *)
let nbr_compare t a b =
  let c = Label.compare (label t a) (label t b) in
  if c <> 0 then c else Int.compare a b

let iter_adj t v f =
  check_v t v;
  let removed_v = neighbors_in t.removed v in
  let added_v = neighbors_in t.added v in
  if
    IntSet.is_empty removed_v && IntSet.is_empty added_v
    && v < Graph.n t.base
  then Graph.iter_adj t.base v f
  else begin
    (* Materialize the filtered base run (already in (label, id) order) and
       two-way merge it with the sorted overlay neighbors. *)
    let base_run =
      if v >= Graph.n t.base then [||]
      else begin
        let buf = Vec.create ~capacity:(Graph.degree t.base v) () in
        Graph.iter_adj t.base v (fun w ->
            if not (IntSet.mem w removed_v) then Vec.push buf w);
        Vec.to_array buf
      end
    in
    let extra_run = Array.of_list (IntSet.elements added_v) in
    Array.sort (nbr_compare t) extra_run;
    let nb = Array.length base_run and ne = Array.length extra_run in
    let i = ref 0 and j = ref 0 in
    while !i < nb || !j < ne do
      if !j >= ne then begin
        f base_run.(!i);
        incr i
      end
      else if !i >= nb then begin
        f extra_run.(!j);
        incr j
      end
      else if nbr_compare t base_run.(!i) extra_run.(!j) <= 0 then begin
        f base_run.(!i);
        incr i
      end
      else begin
        f extra_run.(!j);
        incr j
      end
    done
  end

let fold_adj t v f acc =
  let acc = ref acc in
  iter_adj t v (fun w -> acc := f w !acc);
  !acc

(* O(deg) filtered scan: the merged view gives up the per-vertex label
   directory until the next rebuild restores it. *)
let adj_with_label t v l f =
  iter_adj t v (fun w -> if Label.compare (label t w) l = 0 then f w)

let num_labels t = max (Graph.num_labels t.base) (t.max_extra_label + 1)
let max_label t = num_labels t - 1

let extra_with_label t l f =
  IntMap.iter (fun v lv -> if Label.compare lv l = 0 then f v) t.extra

let label_freq t l =
  let extra = ref 0 in
  extra_with_label t l (fun _ -> incr extra);
  Graph.label_freq t.base l + !extra

(* Overlay vertex ids all exceed base ids and IntMap iterates in ascending
   key order, so base-then-extra preserves the ascending-id contract. *)
let iter_vertices_with_label t l f =
  Graph.iter_vertices_with_label t.base l f;
  extra_with_label t l f

let vertices_with_label t l =
  let buf = Vec.create () in
  iter_vertices_with_label t l (Vec.push buf);
  Vec.to_array buf

let edges t =
  let keep u v = not (IntSet.mem v (neighbors_in t.removed u)) in
  let base_edges =
    Graph.fold_edges
      (fun u v acc -> if keep u v then (u, v) :: acc else acc)
      t.base []
  in
  let all =
    IntMap.fold
      (fun u s acc ->
        IntSet.fold (fun v acc -> if u < v then (u, v) :: acc else acc) s acc)
      t.added base_edges
  in
  List.sort compare all

let snapshot t =
  match !(t.snap) with
  | Some g -> g
  | None ->
    let labels = Array.init t.nv (label t) in
    let g = Graph.Builder.of_edges ~labels (edges t) in
    t.snap := Some g;
    g

(* --- mutation --- *)

let adj_add map u v =
  IntMap.update u
    (function
      | Some s -> Some (IntSet.add v s) | None -> Some (IntSet.singleton v))
    map

let adj_remove map u v =
  IntMap.update u
    (function
      | Some s ->
        let s = IntSet.remove v s in
        if IntSet.is_empty s then None else Some s
      | None -> None)
    map

let apply_edit t = function
  | Add_vertex l ->
    if l < 0 then invalid_arg "Graph.Delta: negative label";
    {
      t with
      nv = t.nv + 1;
      extra = IntMap.add t.nv l t.extra;
      max_extra_label = max t.max_extra_label l;
    }
  | Add_edge (u, v) ->
    check_v t u;
    check_v t v;
    if u = v then invalid_arg "Graph.Delta: self-loop";
    if has_edge t u v then t (* idempotent, like Builder.add_edge *)
    else if IntSet.mem v (neighbors_in t.removed u) then
      {
        t with
        removed = adj_remove (adj_remove t.removed u v) v u;
        removed_m = t.removed_m - 1;
      }
    else
      {
        t with
        added = adj_add (adj_add t.added u v) v u;
        added_m = t.added_m + 1;
      }
  | Remove_edge (u, v) ->
    check_v t u;
    check_v t v;
    if not (u <> v && has_edge t u v) then t (* no-op, like Builder *)
    else if IntSet.mem v (neighbors_in t.added u) then
      {
        t with
        added = adj_remove (adj_remove t.added u v) v u;
        added_m = t.added_m - 1;
      }
    else
      {
        t with
        removed = adj_add (adj_add t.removed u v) v u;
        removed_m = t.removed_m + 1;
      }

let apply_all t es =
  let t' = List.fold_left apply_edit t es in
  let t' =
    {
      t' with
      version = t.version + 1;
      pending = t.pending + List.length es;
      snap = ref None;
    }
  in
  if t'.pending < t'.rebuild_every then t'
  else
    let g = snapshot t' in
    {
      base = g;
      version = t'.version;
      rebuild_every = t'.rebuild_every;
      pending = 0;
      nv = Graph.n g;
      extra = IntMap.empty;
      max_extra_label = -1;
      added = IntMap.empty;
      removed = IntMap.empty;
      added_m = 0;
      removed_m = 0;
      snap = ref (Some g);
    }

let apply t e = apply_all t [e]
