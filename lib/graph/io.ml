let to_buffer buf g =
  Graph.iter_vertices
    (fun v -> Buffer.add_string buf (Printf.sprintf "v %d %d\n" v (Graph.label g v)))
    g;
  (* Sorted edge order keeps the textual form canonical per graph. *)
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "e %d %d\n" u v))
    (Graph.edges g)

let to_string g =
  let buf = Buffer.create 256 in
  to_buffer buf g;
  Buffer.contents buf

let db_to_string gs =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i g ->
      Buffer.add_string buf (Printf.sprintf "t %d\n" i);
      to_buffer buf g)
    gs;
  Buffer.contents buf

type accum = { mutable vl : (int * int) list; mutable es : (int * int) list }

let finish acc =
  let vl = List.rev acc.vl in
  let n = List.length vl in
  let labels = Array.make n (-1) in
  List.iter
    (fun (v, l) ->
      if v < 0 || v >= n then failwith "Io: vertex ids must be dense 0..n-1";
      labels.(v) <- l)
    vl;
  if Array.exists (fun l -> l < 0) labels then
    failwith "Io: duplicate or missing vertex id";
  Graph.of_edges ~labels (List.rev acc.es)

let parse_lines lines =
  let graphs = ref [] in
  let acc = ref None in
  let get_acc () =
    match !acc with
    | Some a -> a
    | None ->
      let a = { vl = []; es = [] } in
      acc := Some a;
      a
  in
  let flush () =
    match !acc with
    | Some a ->
      graphs := finish a :: !graphs;
      acc := None
    | None -> ()
  in
  List.iteri
    (fun lineno line ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      let fail msg = failwith (Printf.sprintf "Io: line %d: %s" (lineno + 1) msg) in
      let int w = match int_of_string_opt w with
        | Some i -> i
        | None -> fail (Printf.sprintf "bad integer %S" w)
      in
      match words with
      | [] -> ()
      | "t" :: _ -> flush ()
      | [ "v"; v; l ] ->
        let a = get_acc () in
        a.vl <- (int v, int l) :: a.vl
      | [ "e"; u; v ] ->
        let a = get_acc () in
        a.es <- (int u, int v) :: a.es
      | w :: _ -> fail (Printf.sprintf "unknown directive %S" w))
    lines;
  flush ();
  List.rev !graphs

let db_of_string s = parse_lines (String.split_on_char '\n' s)

let of_string s =
  match db_of_string s with
  | [ g ] -> g
  | [] -> failwith "Io.of_string: empty input"
  | _ -> failwith "Io.of_string: multiple graphs; use db_of_string"

let write_file path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string g))

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      of_string (In_channel.input_all ic))

let write_db path gs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (db_to_string gs))

let read_db path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      db_of_string (In_channel.input_all ic))

let to_dot ?names ?(highlight = []) g =
  let name l =
    match names with
    | Some t -> Label.Table.name t l
    | None -> string_of_int l
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph G {\n  node [shape=circle];\n";
  Graph.iter_vertices
    (fun v ->
      let extra =
        if List.mem v highlight then " style=filled fillcolor=lightblue" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"%s\"%s];\n" v (name (Graph.label g v)) extra))
    g;
  Graph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
