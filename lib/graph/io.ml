let to_buffer buf g =
  Graph.iter_vertices
    (fun v -> Buffer.add_string buf (Printf.sprintf "v %d %d\n" v (Graph.label g v)))
    g;
  (* Sorted edge order keeps the textual form canonical per graph. *)
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "e %d %d\n" u v))
    (Graph.edges g)

let to_string g =
  let buf = Buffer.create 256 in
  to_buffer buf g;
  Buffer.contents buf

let db_to_string gs =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i g ->
      Buffer.add_string buf (Printf.sprintf "t %d\n" i);
      to_buffer buf g)
    gs;
  Buffer.contents buf

(* Each vertex/edge remembers the 1-based line it came from, so structural
   errors (duplicate ids, dangling edge endpoints) can name the offending
   line — graph text arrives over the wire now, not just from trusted
   files. *)
type accum = {
  start_line : int;
  mutable vl : (int * int * int) list;  (* line, vertex, label *)
  mutable es : (int * int * int) list;  (* line, u, v *)
}

let fail_at line fmt =
  Printf.ksprintf (fun s -> failwith (Printf.sprintf "Io: line %d: %s" line s)) fmt

let finish acc =
  let vl = List.rev acc.vl in
  let n = List.length vl in
  let labels = Array.make n (-1) in
  List.iter
    (fun (line, v, l) ->
      if v < 0 || v >= n then
        fail_at line "vertex id %d outside the dense range 0..%d" v (n - 1);
      if l < 0 then fail_at line "negative label %d" l;
      if labels.(v) >= 0 then fail_at line "duplicate vertex id %d" v;
      labels.(v) <- l)
    vl;
  (* Every id in range and none duplicated means all of 0..n-1 are present,
     so no separate missing-id check is needed. *)
  let es =
    List.rev_map
      (fun (line, u, v) ->
        if u < 0 || u >= n then
          fail_at line "edge endpoint %d is not a declared vertex" u;
        if v < 0 || v >= n then
          fail_at line "edge endpoint %d is not a declared vertex" v;
        if u = v then fail_at line "self-loop on vertex %d" u;
        (u, v))
      acc.es
  in
  Graph.Builder.of_edges ~labels es

let parse_lines lines =
  let graphs = ref [] in
  let acc = ref None in
  let get_acc line =
    match !acc with
    | Some a -> a
    | None ->
      let a = { start_line = line; vl = []; es = [] } in
      acc := Some a;
      a
  in
  let flush () =
    match !acc with
    | Some a ->
      graphs := finish a :: !graphs;
      acc := None
    | None -> ()
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      (* Tolerate CRLF line endings and stray trailing whitespace: strip a
         trailing '\r' explicitly, treat tabs as separators, and let
         [String.trim] drop the rest. *)
      let line =
        let len = String.length line in
        if len > 0 && line.[len - 1] = '\r' then String.sub line 0 (len - 1)
        else line
      in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let words =
        String.split_on_char ' '
          (String.trim (String.map (fun c -> if c = '\t' then ' ' else c) line))
        |> List.filter (fun w -> w <> "")
      in
      let int w =
        match int_of_string_opt w with
        | Some i -> i
        | None -> fail_at lineno "bad integer %S" w
      in
      match words with
      | [] -> ()
      | "t" :: _ -> flush ()
      | [ "v"; v; l ] ->
        let a = get_acc lineno in
        a.vl <- (lineno, int v, int l) :: a.vl
      | [ "e"; u; v ] ->
        let a = get_acc lineno in
        a.es <- (lineno, int u, int v) :: a.es
      | "v" :: _ ->
        fail_at lineno "malformed vertex line (expected: v <id> <label>)"
      | "e" :: _ -> fail_at lineno "malformed edge line (expected: e <u> <v>)"
      | w :: _ -> fail_at lineno "unknown directive %S" w)
    lines;
  flush ();
  List.rev !graphs

let db_of_string s = parse_lines (String.split_on_char '\n' s)

let of_string s =
  match db_of_string s with
  | [ g ] -> g
  | [] -> failwith "Io.of_string: empty input"
  | _ -> failwith "Io.of_string: multiple graphs; use db_of_string"

let write_file path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string g))

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      of_string (In_channel.input_all ic))

let write_db path gs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (db_to_string gs))

let read_db path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      db_of_string (In_channel.input_all ic))

(* --- edit scripts ---

   One edit per line, same lexical conventions as the graph format
   (comments, CRLF, tabs): [av <label>] adds a vertex, [ae <u> <v>] adds an
   edge, [re <u> <v>] removes one. Endpoint validity is checked by
   [Delta.apply_all] against the graph the script is applied to, not
   here. *)

let edits_to_string es =
  let buf = Buffer.create 64 in
  List.iter
    (fun e ->
      (match e with
      | Delta.Add_vertex l -> Buffer.add_string buf (Printf.sprintf "av %d" l)
      | Delta.Add_edge (u, v) ->
        Buffer.add_string buf (Printf.sprintf "ae %d %d" u v)
      | Delta.Remove_edge (u, v) ->
        Buffer.add_string buf (Printf.sprintf "re %d %d" u v));
      Buffer.add_char buf '\n')
    es;
  Buffer.contents buf

let edits_of_string s =
  let edits = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        let len = String.length line in
        if len > 0 && line.[len - 1] = '\r' then String.sub line 0 (len - 1)
        else line
      in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let words =
        String.split_on_char ' '
          (String.trim (String.map (fun c -> if c = '\t' then ' ' else c) line))
        |> List.filter (fun w -> w <> "")
      in
      let int w =
        match int_of_string_opt w with
        | Some i -> i
        | None -> fail_at lineno "bad integer %S" w
      in
      match words with
      | [] -> ()
      | [ "av"; l ] -> edits := Delta.Add_vertex (int l) :: !edits
      | [ "ae"; u; v ] -> edits := Delta.Add_edge (int u, int v) :: !edits
      | [ "re"; u; v ] -> edits := Delta.Remove_edge (int u, int v) :: !edits
      | "av" :: _ -> fail_at lineno "malformed edit (expected: av <label>)"
      | "ae" :: _ -> fail_at lineno "malformed edit (expected: ae <u> <v>)"
      | "re" :: _ -> fail_at lineno "malformed edit (expected: re <u> <v>)"
      | w :: _ -> fail_at lineno "unknown edit %S" w)
    (String.split_on_char '\n' s);
  List.rev !edits

let read_edits path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      edits_of_string (In_channel.input_all ic))

let to_dot ?names ?(highlight = []) g =
  let name l =
    match names with
    | Some t -> Label.Table.name t l
    | None -> string_of_int l
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph G {\n  node [shape=circle];\n";
  Graph.iter_vertices
    (fun v ->
      let extra =
        if List.mem v highlight then " style=filled fillcolor=lightblue" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"%s\"%s];\n" v (name (Graph.label g v)) extra))
    g;
  Graph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
