(** Growable integer-friendly vectors (OCaml 5.1 has no [Dynarray]).

    A tiny resizable-array used by graph builders and mining frontiers. All
    operations are amortized O(1) unless stated otherwise. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element. @raise Invalid_argument if out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Remove and return the last element. @raise Invalid_argument if empty. *)

val clear : 'a t -> unit

val is_empty : 'a t -> bool

val to_array : 'a t -> 'a array
(** Fresh array of the current contents, O(n). *)

val to_list : 'a t -> 'a list

val iter : ('a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val of_list : 'a list -> 'a t

val exists : ('a -> bool) -> 'a t -> bool

val remove_first : ('a -> bool) -> 'a t -> bool
(** Remove the first element satisfying the predicate by swapping the last
    element into its slot (element order is not preserved). Returns whether
    anything was removed. O(n) search, O(1) removal. *)
