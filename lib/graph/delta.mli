(** Versioned evolving graphs: a frozen CSR snapshot plus a small edit
    overlay, rebuilt into a fresh snapshot past a threshold.

    A {!t} is a persistent value — applying a batch returns a new version
    and leaves every older version readable, which is what lets a server
    answer in-flight queries against the version they started on while a
    mutation commits. Reads answer against the merged view (base minus
    masked edges plus overlay edges); between rebuilds they cost at most a
    filtered scan plus an ordered merge of the per-vertex overlay, and the
    moment the overlay grows past [rebuild_every] edits the base is
    re-frozen and reads are plain CSR again.

    Iteration order contracts match {!Graph}: neighbor enumeration is in
    [(label, id)] order and label-directory enumeration is in ascending id
    order, so code written against the {!Graph} read API can run unchanged
    against a merged view. {!snapshot} freezes the merged view into a
    {!Graph.t}; because CSR arrays are canonical per (labels, edge set),
    the snapshot is byte-identical to building the same graph from
    scratch — the property the incremental miner's byte-stability proof
    leans on. *)

type edit =
  | Add_vertex of Label.t  (** fresh vertex, id = current vertex count *)
  | Add_edge of int * int  (** idempotent, may touch overlay vertices *)
  | Remove_edge of int * int  (** removing an absent edge is a no-op *)

val pp_edit : Format.formatter -> edit -> unit

type t

val of_graph : ?rebuild_every:int -> Graph.t -> t
(** Version 0, empty overlay. [rebuild_every] caps the overlay size before
    the base is re-frozen; the default scales with the base edge count
    ([max 64 (m/8)]) so rebuild cost stays amortized O(1) per edit. *)

val apply : t -> edit -> t
(** [apply t e] is [apply_all t [e]]: a batch of one. *)

val apply_all : t -> edit list -> t
(** Apply an edit batch left to right and bump the version by exactly one —
    a batch is the unit of versioning, matching one server [Update].
    @raise Invalid_argument on out-of-range endpoints, self-loops, or a
    negative label; the input [t] is unchanged (persistence). *)

val version : t -> int

val base : t -> Graph.t
(** The frozen snapshot under the overlay (advances on rebuild). *)

val pending : t -> int
(** Edits applied since the last rebuild. *)

val snapshot : t -> Graph.t
(** The merged view frozen to an immutable CSR graph; memoized per
    version. O(n + m) on first call, O(1) after. *)

(** {1 Merged-view reads}

    Same contracts as the corresponding {!Graph} functions. *)

val n : t -> int

val m : t -> int

val label : t -> int -> Label.t

val degree : t -> int -> int

val iter_adj : t -> int -> (int -> unit) -> unit

val fold_adj : t -> int -> (int -> 'a -> 'a) -> 'a -> 'a

val adj_with_label : t -> int -> Label.t -> (int -> unit) -> unit

val has_edge : t -> int -> int -> bool

val label_freq : t -> Label.t -> int

val vertices_with_label : t -> Label.t -> int array

val iter_vertices_with_label : t -> Label.t -> (int -> unit) -> unit

val edges : t -> (int * int) list

val num_labels : t -> int

val max_label : t -> Label.t
