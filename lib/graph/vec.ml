type 'a t = { mutable data : 'a array; mutable len : int; initial : int }

let create ?(capacity = 8) () = { data = [||]; len = 0; initial = max 1 capacity }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

(* The element being pushed seeds the fresh array, so no unsafe dummy value is
   ever needed (important for float arrays). *)
let ensure_room v x =
  let cap = Array.length v.data in
  if v.len = cap then begin
    let data = Array.make (max v.initial (2 * cap)) x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure_room v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let clear v = v.len <- 0

let is_empty v = v.len = 0

let to_array v = Array.sub v.data 0 v.len

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let of_list xs =
  let v = create ~capacity:(max 1 (List.length xs)) () in
  List.iter (push v) xs;
  v

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

(* Swap-with-last removal: order is not preserved, which is fine for the
   graph builder's neighbor scratch (freeze sorts every run anyway). *)
let remove_first p v =
  let rec find i = if i >= v.len then -1 else if p v.data.(i) then i else find (i + 1) in
  let i = find 0 in
  i >= 0
  && begin
       v.data.(i) <- v.data.(v.len - 1);
       v.len <- v.len - 1;
       true
     end
