let distances_from_set g sources =
  let nv = Graph.n g in
  let dist = Array.make nv (-1) in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = dist.(u) in
    Graph.iter_adj g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- du + 1;
          Queue.add v queue
        end)
  done;
  dist

let distances g s = distances_from_set g [ s ]

let distance g s t =
  if s = t then 0
  else begin
    let nv = Graph.n g in
    let dist = Array.make nv (-1) in
    let queue = Queue.create () in
    dist.(s) <- 0;
    Queue.add s queue;
    let result = ref (-1) in
    (try
       while not (Queue.is_empty queue) do
         let u = Queue.pop queue in
         let du = dist.(u) in
         Graph.iter_adj g u (fun v ->
             if dist.(v) < 0 then begin
               dist.(v) <- du + 1;
               if v = t then begin
                 result := du + 1;
                 raise Exit
               end;
               Queue.add v queue
             end)
       done
     with Exit -> ());
    !result
  end

let eccentricity g v = Array.fold_left max 0 (distances g v)

let diameter g =
  let d = ref 0 in
  Graph.iter_vertices (fun v -> d := max !d (eccentricity g v)) g;
  !d

let diameter_endpoints g =
  let best = ref (0, 0, -1) in
  Graph.iter_vertices
    (fun u ->
      let dist = distances g u in
      Array.iteri
        (fun v d ->
          let _, _, bd = !best in
          if u <= v && d > bd then best := (u, v, d))
        dist)
    g;
  let u, v, d = !best in
  (u, v, max d 0)

let dist_matrix g = Array.init (Graph.n g) (fun v -> distances g v)

let components g =
  let nv = Graph.n g in
  let comp = Array.make nv (-1) in
  let k = ref 0 in
  for s = 0 to nv - 1 do
    if comp.(s) < 0 then begin
      let id = !k in
      incr k;
      let queue = Queue.create () in
      comp.(s) <- id;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_adj g u (fun v ->
            if comp.(v) < 0 then begin
              comp.(v) <- id;
              Queue.add v queue
            end)
      done
    end
  done;
  (comp, !k)

let is_connected g =
  Graph.n g = 0
  ||
  let dist = distances g 0 in
  Array.for_all (fun d -> d >= 0) dist

let component_of g v =
  let dist = distances g v in
  let acc = ref [] in
  for u = Graph.n g - 1 downto 0 do
    if dist.(u) >= 0 then acc := u :: !acc
  done;
  Array.of_list !acc
