type rng = Random.State.t

let rng seed = Random.State.make [| seed; 0x5ee5; 0x1dea |]

let random_labels st ~n ~num_labels =
  if num_labels <= 0 then invalid_arg "Gen.random_labels: num_labels <= 0";
  Array.init n (fun _ -> Random.State.int st num_labels)

let shuffle st a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let pick st a =
  if Array.length a = 0 then invalid_arg "Gen.pick: empty array";
  a.(Random.State.int st (Array.length a))

let erdos_renyi_gnp st ~n ~p ~num_labels =
  let labels = random_labels st ~n ~num_labels in
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float st 1.0 < p then es := (u, v) :: !es
    done
  done;
  Graph.Builder.of_edges ~labels !es

let erdos_renyi st ~n ~avg_degree ~num_labels =
  if n < 2 then Graph.Builder.of_edges ~labels:(random_labels st ~n ~num_labels) []
  else begin
    let labels = random_labels st ~n ~num_labels in
    let target = int_of_float (float_of_int n *. avg_degree /. 2.0) in
    let target = min target (n * (n - 1) / 2) in
    let seen = Hashtbl.create (2 * target) in
    let es = ref [] in
    let count = ref 0 in
    while !count < target do
      let u = Random.State.int st n and v = Random.State.int st n in
      if u <> v then begin
        let key = if u < v then (u, v) else (v, u) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          es := key :: !es;
          incr count
        end
      end
    done;
    Graph.Builder.of_edges ~labels !es
  end

(* R-MAT (Chakrabarti et al.): each edge picks one of four quadrants per
   recursion level with probabilities a, b, c, d = 1-a-b-c, accumulating one
   endpoint bit per pick. Skewed quadrant weights yield the heavy-tailed
   degree distributions real graphs show; self-loops are resampled so the
   edge count is exact. Pure streaming: edges go straight to [emit], nothing
   is materialized — and the whole sequence is a deterministic function of
   the RNG state, so a caller holding a [Random.State.copy] can replay it
   (what {!rmat} does to drive [Graph.Builder.of_edge_stream]). *)
let rmat_edges ?(a = 0.57) ?(b = 0.19) ?(c = 0.19) st ~scale ~edges emit =
  if scale < 1 || scale > 30 then invalid_arg "Gen.rmat_edges: scale out of [1,30]";
  if a < 0.0 || b < 0.0 || c < 0.0 || a +. b +. c > 1.0 then
    invalid_arg "Gen.rmat_edges: bad quadrant probabilities";
  let ab = a +. b and abc = a +. b +. c in
  for _ = 1 to edges do
    let rec sample () =
      let u = ref 0 and v = ref 0 in
      for _ = 1 to scale do
        let r = Random.State.float st 1.0 in
        let ubit, vbit =
          if r < a then (0, 0)
          else if r < ab then (0, 1)
          else if r < abc then (1, 0)
          else (1, 1)
        in
        u := (!u lsl 1) lor ubit;
        v := (!v lsl 1) lor vbit
      done;
      if !u = !v then sample () else (!u, !v)
    in
    let u, v = sample () in
    emit u v
  done

let rmat ?a ?b ?c st ~scale ~edge_factor ~num_labels =
  if edge_factor < 1 then invalid_arg "Gen.rmat: edge_factor < 1";
  let n = 1 lsl scale in
  let labels = random_labels st ~n ~num_labels in
  let edges = edge_factor * n in
  (* The stream is invoked twice (degree pass, fill pass); each invocation
     replays from a snapshot of the RNG so the sequences are identical. *)
  let base = Random.State.copy st in
  Graph.Builder.of_edge_stream ~labels (fun emit ->
      rmat_edges ?a ?b ?c (Random.State.copy base) ~scale ~edges emit)

(* Barabási–Albert preferential attachment via the endpoint-array trick:
   picking a uniform entry of the flat endpoint list selects a vertex with
   probability proportional to its degree. Seed is a star on the first
   [m_per + 1] vertices; every later vertex attaches to [m_per] distinct
   degree-weighted targets. *)
let barabasi_albert st ~n ~m_per ~num_labels =
  if m_per < 1 then invalid_arg "Gen.barabasi_albert: m_per < 1";
  if n <= m_per then invalid_arg "Gen.barabasi_albert: n <= m_per";
  let labels = random_labels st ~n ~num_labels in
  let max_edges = m_per + ((n - m_per - 1) * m_per) in
  let us = Array.make max_edges 0 in
  let vs = Array.make max_edges 0 in
  let ends = Array.make (2 * max_edges) 0 in
  let ne = ref 0 in
  let add_edge u v =
    us.(!ne) <- u;
    vs.(!ne) <- v;
    ends.(2 * !ne) <- u;
    ends.((2 * !ne) + 1) <- v;
    incr ne
  in
  for i = 0 to m_per - 1 do
    add_edge i m_per
  done;
  let targets = Array.make m_per 0 in
  for v = m_per + 1 to n - 1 do
    let picked = ref 0 in
    while !picked < m_per do
      let t = ends.(Random.State.int st (2 * !ne)) in
      let dup = ref false in
      for j = 0 to !picked - 1 do
        if targets.(j) = t then dup := true
      done;
      if not !dup then begin
        targets.(!picked) <- t;
        incr picked
      end
    done;
    for j = 0 to m_per - 1 do
      add_edge targets.(j) v
    done
  done;
  let total = !ne in
  Graph.Builder.of_edge_stream ~labels (fun emit ->
      for i = 0 to total - 1 do
        emit us.(i) vs.(i)
      done)

let path_graph labels =
  let n = Array.length labels in
  let es = List.init (max 0 (n - 1)) (fun i -> (i, i + 1)) in
  Graph.Builder.of_edges ~labels es

let cycle_graph labels =
  let n = Array.length labels in
  if n < 3 then invalid_arg "Gen.cycle_graph: need >= 3 vertices";
  let es = (0, n - 1) :: List.init (n - 1) (fun i -> (i, i + 1)) in
  Graph.Builder.of_edges ~labels es

let star_graph ~center leaves =
  let labels = Array.append [| center |] leaves in
  let es = List.init (Array.length leaves) (fun i -> (0, i + 1)) in
  Graph.Builder.of_edges ~labels es

let random_tree st ~n ~num_labels =
  let labels = random_labels st ~n ~num_labels in
  let es = List.init (max 0 (n - 1)) (fun i ->
      let v = i + 1 in
      (Random.State.int st v, v))
  in
  Graph.Builder.of_edges ~labels es

(* Rejection-sampled twig attachment: tentatively attach a new leaf, keep the
   candidate only if [accept] holds. The default acceptance keeps the diameter
   equal to the backbone, keeps the backbone a shortest path between its
   endpoints, and keeps every vertex within [delta] of the backbone path.
   The true δ-skinny predicate (distance to the *canonical* diameter,
   Definitions 4–6) lives in the core library; workload generators pass it in
   via [accept] to be exact. Patterns are small, so BFS checks are cheap. *)
let random_skinny_pattern ?accept st ~backbone ~delta ~twigs ~num_labels =
  if backbone < 1 then invalid_arg "Gen.random_skinny_pattern: backbone < 1";
  let backbone_vertices = List.init (backbone + 1) (fun i -> i) in
  let default_accept g =
    Bfs.diameter g = backbone
    && Bfs.distance g 0 backbone = backbone
    &&
    let dist = Bfs.distances_from_set g backbone_vertices in
    Array.for_all (fun d -> d >= 0 && d <= delta) dist
  in
  let accept = Option.value accept ~default:default_accept in
  let base_labels =
    Array.init (backbone + 1) (fun _ -> Random.State.int st num_labels)
  in
  let start = path_graph base_labels in
  let try_attach g =
    let host = Random.State.int st (Graph.n g) in
    let lbl = Random.State.int st num_labels in
    let v = Graph.n g in
    let labels = Array.append (Graph.labels g) [| lbl |] in
    let candidate = Graph.Builder.of_edges ~labels ((host, v) :: Graph.edges g) in
    if accept candidate then Some candidate else None
  in
  let rec loop g attached attempts =
    if attached >= twigs || attempts >= 30 * (twigs + 1) then g
    else
      match try_attach g with
      | Some g' -> loop g' (attached + 1) (attempts + 1)
      | None -> loop g attached (attempts + 1)
  in
  loop start 0 0

let random_connected_pattern st ~n ~extra_edges ~num_labels =
  let tree = random_tree st ~n ~num_labels in
  let b = Graph.Builder.of_graph tree in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra_edges && !attempts < 20 * (extra_edges + 1) do
    incr attempts;
    let u = Random.State.int st n and v = Random.State.int st n in
    if u <> v && not (Graph.Builder.has_edge b u v) then begin
      Graph.Builder.add_edge b u v;
      incr added
    end
  done;
  Graph.Builder.freeze b

let inject st b ~pattern ~copies ?(bridges = 1) () =
  let maps = ref [] in
  for _ = 1 to copies do
    let existing = Graph.Builder.n b in
    let map =
      Array.init (Graph.n pattern) (fun pv ->
          Graph.Builder.add_vertex b (Graph.label pattern pv))
    in
    Graph.iter_edges (fun u v -> Graph.Builder.add_edge b map.(u) map.(v))
      pattern;
    if existing > 0 then
      for _ = 1 to bridges do
        let host = Random.State.int st existing in
        let pv = map.(Random.State.int st (Array.length map)) in
        Graph.Builder.add_edge b host pv
      done;
    maps := map :: !maps
  done;
  Array.of_list (List.rev !maps)
