(* Flat CSR substrate with label-indexed adjacency.

   Neighbors live in one flat [nbr] slice; vertex v's run is
   nbr.[xadj.(v) .. xadj.(v+1)) and is sorted by (label of neighbor, id).
   Per-vertex label-range offsets (lab_off / lab_keys / lab_starts) expose
   each label's sub-run without scanning, and a graph-level label index
   (vl_off / vl) lists the vertices carrying each label in ascending id
   order, which doubles as a cached label-frequency table. Everything is
   built once at construction; the graph is immutable afterwards.

   Every index is a {!Storage.t}: ordinarily a plain [int array], but a
   graph loaded through {!Spm_store.Store.map_graph} carries Bigarray
   slices mapped straight from the store file. All accessors below read
   through [Storage.get], so no consumer — miners, matchers, the delta
   overlay — can tell the backings apart. *)

type t = {
  labels : Storage.t;
  xadj : Storage.t; (* n+1 offsets into nbr *)
  nbr : Storage.t; (* neighbor runs, each sorted by (label, id) *)
  lab_off : Storage.t; (* n+1 offsets into lab_keys/lab_starts *)
  lab_keys : Storage.t; (* distinct neighbor labels of v, ascending *)
  lab_starts : Storage.t; (* start of each label's sub-run in nbr *)
  vl_off : Storage.t; (* num_labels+1 offsets into vl *)
  vl : Storage.t; (* vertices grouped by label, ids ascending *)
  m : int;
}

let get = Storage.get

let n g = Storage.length g.labels
let m g = g.m
let label g v = get g.labels v

let labels g =
  (* The array behind an array-backed graph is returned as-is (callers hold
     the "do not mutate" contract); a mapped graph materializes a copy. *)
  match g.labels with
  | Storage.Arr a -> a
  | Storage.Big _ -> Storage.to_array g.labels

let degree g v = get g.xadj (v + 1) - get g.xadj v

let iter_adj g v f =
  let start = get g.xadj v and stop = get g.xadj (v + 1) in
  (* Hoist the backing dispatch out of the scan: one match per call, not
     one per neighbor. *)
  match g.nbr with
  | Storage.Arr nbr ->
    for i = start to stop - 1 do
      f nbr.(i)
    done
  | Storage.Big nbr ->
    for i = start to stop - 1 do
      f (Bigarray.Array1.get nbr i)
    done

let fold_adj g v f acc =
  let acc = ref acc in
  iter_adj g v (fun w -> acc := f w !acc);
  !acc

let adj g v =
  let a = Storage.sub_array g.nbr (get g.xadj v) (degree g v) in
  Array.sort Int.compare a;
  a

(* Binary search for [l] among the distinct neighbor labels of [v]; returns
   the [lab_keys] slot or -1. *)
let find_label_slot g v l =
  let rec loop lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      let c = Label.compare (get g.lab_keys mid) l in
      if c = 0 then mid else if c < 0 then loop (mid + 1) hi else loop lo mid
  in
  loop (get g.lab_off v) (get g.lab_off (v + 1))

let label_run_bounds g v slot =
  let stop =
    if slot + 1 < get g.lab_off (v + 1) then get g.lab_starts (slot + 1)
    else get g.xadj (v + 1)
  in
  (get g.lab_starts slot, stop)

let adj_with_label g v l f =
  let slot = find_label_slot g v l in
  if slot >= 0 then begin
    let start, stop = label_run_bounds g v slot in
    match g.nbr with
    | Storage.Arr nbr ->
      for i = start to stop - 1 do
        f nbr.(i)
      done
    | Storage.Big nbr ->
      for i = start to stop - 1 do
        f (Bigarray.Array1.get nbr i)
      done
  end

let has_edge g u v =
  let slot = find_label_slot g u (get g.labels v) in
  slot >= 0
  &&
  let start, stop = label_run_bounds g u slot in
  let rec loop lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let w = get g.nbr mid in
      if w = v then true else if w < v then loop (mid + 1) hi else loop lo mid
  in
  loop start stop

let num_labels g = Storage.length g.vl_off - 1
let max_label g = num_labels g - 1

let label_freq g l =
  if l < 0 || l >= num_labels g then 0
  else get g.vl_off (l + 1) - get g.vl_off l

let vertices_with_label g l =
  if l < 0 || l >= num_labels g then [||]
  else
    Storage.sub_array g.vl (get g.vl_off l) (get g.vl_off (l + 1) - get g.vl_off l)

let iter_vertices_with_label g l f =
  if l >= 0 && l < num_labels g then
    for i = get g.vl_off l to get g.vl_off (l + 1) - 1 do
      f (get g.vl i)
    done

let iter_edges f g =
  for u = 0 to n g - 1 do
    for i = get g.xadj u to get g.xadj (u + 1) - 1 do
      let v = get g.nbr i in
      if u < v then f u v
    done
  done

let fold_edges f g acc =
  let acc = ref acc in
  iter_edges (fun u v -> acc := f u v !acc) g;
  !acc

let edges g =
  fold_edges (fun u v acc -> (u, v) :: acc) g [] |> List.sort compare

let iter_vertices f g =
  for v = 0 to n g - 1 do
    f v
  done

(* --- storage views --- *)

let backing g = Storage.backing g.nbr

let to_csr g =
  {
    Storage.labels = g.labels;
    xadj = g.xadj;
    nbr = g.nbr;
    lab_off = g.lab_off;
    lab_keys = g.lab_keys;
    lab_starts = g.lab_starts;
    vl_off = g.vl_off;
    vl = g.vl;
  }

(* Cheap cross-array sanity: O(1) length arithmetic plus a handful of
   element reads. This is the trust boundary for mapped graphs — deep
   validation of every offset would touch every page and defeat lazy
   loading, so beyond these checks a mapped file is trusted to the extent
   its checksums were verified (see Store's validation policy). *)
let of_csr (c : Storage.csr) =
  let nv = Storage.length c.labels in
  let fail msg = invalid_arg ("Graph.of_csr: " ^ msg) in
  if Storage.length c.xadj <> nv + 1 then fail "xadj length";
  if Storage.length c.lab_off <> nv + 1 then fail "lab_off length";
  if Storage.length c.vl <> nv then fail "vl length";
  if Storage.length c.lab_keys <> Storage.length c.lab_starts then
    fail "label directory length";
  let nl = Storage.length c.vl_off - 1 in
  if nl < 0 then fail "vl_off empty";
  let total = Storage.length c.nbr in
  if total land 1 <> 0 then fail "odd neighbor count";
  if nv > 0 || total > 0 then begin
    if Storage.get c.xadj 0 <> 0 then fail "xadj origin";
    if Storage.get c.xadj nv <> total then fail "xadj total";
    if Storage.get c.lab_off 0 <> 0 then fail "lab_off origin";
    if Storage.get c.lab_off nv <> Storage.length c.lab_keys then
      fail "lab_off total";
    if Storage.get c.vl_off 0 <> 0 then fail "vl_off origin";
    if Storage.get c.vl_off nl <> nv then fail "vl_off total"
  end;
  {
    labels = c.labels;
    xadj = c.xadj;
    nbr = c.nbr;
    lab_off = c.lab_off;
    lab_keys = c.lab_keys;
    lab_starts = c.lab_starts;
    vl_off = c.vl_off;
    vl = c.vl;
    m = total / 2;
  }

let with_backing want g =
  if backing g = want then g
  else
    {
      labels = Storage.convert want g.labels;
      xadj = Storage.convert want g.xadj;
      nbr = Storage.convert want g.nbr;
      lab_off = Storage.convert want g.lab_off;
      lab_keys = Storage.convert want g.lab_keys;
      lab_starts = Storage.convert want g.lab_starts;
      vl_off = Storage.convert want g.vl_off;
      vl = Storage.convert want g.vl;
      m = g.m;
    }

(* Sort a neighbor scratch array by (label, id) and drop duplicate ids
   (equal ids compare equal, so duplicates are adjacent). Returns the
   deduplicated length; the prefix of [a] holds the result. *)
let sort_dedup_run labels a =
  let cmp x y =
    let c = Label.compare labels.(x) labels.(y) in
    if c <> 0 then c else Int.compare x y
  in
  Array.sort cmp a;
  let len = Array.length a in
  if len <= 1 then len
  else begin
    let w = ref 1 in
    for r = 1 to len - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    !w
  end

(* Build the directory indices over finished (sorted, deduplicated) CSR runs:
   per-vertex label ranges by a single scan of each run, then the
   graph-level label index by counting sort (stable, so ids ascend within
   each label). *)
let finish_csr ~labels ~(xadj : int array) ~(nbr : int array) =
  let nv = Array.length labels in
  let lab_off = Array.make (nv + 1) 0 in
  for v = 0 to nv - 1 do
    let distinct = ref 0 in
    for i = xadj.(v) to xadj.(v + 1) - 1 do
      if i = xadj.(v) || labels.(nbr.(i)) <> labels.(nbr.(i - 1)) then
        incr distinct
    done;
    lab_off.(v + 1) <- lab_off.(v) + !distinct
  done;
  let lab_keys = Array.make lab_off.(nv) 0 in
  let lab_starts = Array.make lab_off.(nv) 0 in
  for v = 0 to nv - 1 do
    let k = ref lab_off.(v) in
    for i = xadj.(v) to xadj.(v + 1) - 1 do
      if i = xadj.(v) || labels.(nbr.(i)) <> labels.(nbr.(i - 1)) then begin
        lab_keys.(!k) <- labels.(nbr.(i));
        lab_starts.(!k) <- i;
        incr k
      end
    done
  done;
  let nl = 1 + Array.fold_left max (-1) labels in
  let vl_off = Array.make (nl + 1) 0 in
  Array.iter (fun l -> vl_off.(l + 1) <- vl_off.(l + 1) + 1) labels;
  for l = 1 to nl do
    vl_off.(l) <- vl_off.(l) + vl_off.(l - 1)
  done;
  let vl = Array.make nv 0 in
  let cursor = Array.copy vl_off in
  for v = 0 to nv - 1 do
    let l = labels.(v) in
    vl.(cursor.(l)) <- v;
    cursor.(l) <- cursor.(l) + 1
  done;
  {
    labels = Storage.Arr labels;
    xadj = Storage.Arr xadj;
    nbr = Storage.Arr nbr;
    lab_off = Storage.Arr lab_off;
    lab_keys = Storage.Arr lab_keys;
    lab_starts = Storage.Arr lab_starts;
    vl_off = Storage.Arr vl_off;
    vl = Storage.Arr vl;
    m = Array.length nbr / 2;
  }

(* Build the complete CSR from a label array and per-vertex neighbor scratch
   arrays (unsorted, possibly with duplicates). O(n + m log deg_max) for the
   runs plus O(n + L) counting sort for the label index. *)
let build ~labels ~(scratch : int array array) =
  let nv = Array.length labels in
  let labels = Array.copy labels in
  (* Sort and dedup each run in place, recording kept lengths. *)
  let kept = Array.make nv 0 in
  for v = 0 to nv - 1 do
    kept.(v) <- sort_dedup_run labels scratch.(v)
  done;
  let xadj = Array.make (nv + 1) 0 in
  for v = 0 to nv - 1 do
    xadj.(v + 1) <- xadj.(v) + kept.(v)
  done;
  let total = xadj.(nv) in
  let nbr = Array.make total 0 in
  for v = 0 to nv - 1 do
    Array.blit scratch.(v) 0 nbr xadj.(v) kept.(v)
  done;
  finish_csr ~labels ~xadj ~nbr

let of_edges ~labels es =
  let nv = Array.length labels in
  let check v =
    if v < 0 || v >= nv then invalid_arg "Graph.of_edges: vertex out of range"
  in
  List.iter
    (fun (u, v) ->
      check u;
      check v;
      if u = v then invalid_arg "Graph.of_edges: self-loop")
    es;
  let deg = Array.make nv 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    es;
  let scratch = Array.init nv (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make nv 0 in
  List.iter
    (fun (u, v) ->
      scratch.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      scratch.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    es;
  build ~labels ~scratch

(* Two-pass streaming construction: the producer is invoked twice and must
   replay the identical edge sequence (generators do this by replaying a
   copied RNG). Pass 1 counts degrees, pass 2 fills the flat runs directly —
   no per-edge list cells, no per-vertex scratch arrays — so peak memory is
   the finished CSR plus one cursor array. *)
let of_edge_stream ~labels stream =
  let nv = Array.length labels in
  let labels = Array.copy labels in
  let check v =
    if v < 0 || v >= nv then
      invalid_arg "Graph.of_edge_stream: vertex out of range"
  in
  let deg = Array.make nv 0 in
  stream (fun u v ->
      check u;
      check v;
      if u = v then invalid_arg "Graph.of_edge_stream: self-loop";
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1);
  let xadj = Array.make (nv + 1) 0 in
  for v = 0 to nv - 1 do
    xadj.(v + 1) <- xadj.(v) + deg.(v)
  done;
  let total = xadj.(nv) in
  let nbr = Array.make total 0 in
  let cursor = Array.copy xadj in
  stream (fun u v ->
      check u;
      check v;
      if cursor.(u) >= xadj.(u + 1) || cursor.(v) >= xadj.(v + 1) then
        invalid_arg "Graph.of_edge_stream: stream did not replay identically";
      nbr.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      nbr.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1);
  for v = 0 to nv - 1 do
    if cursor.(v) <> xadj.(v + 1) then
      invalid_arg "Graph.of_edge_stream: stream did not replay identically"
  done;
  (* Sort and dedup each run, compacting left in place (the write cursor
     never passes the read cursor). *)
  let write = ref 0 in
  let new_xadj = Array.make (nv + 1) 0 in
  for v = 0 to nv - 1 do
    let run = Array.sub nbr xadj.(v) deg.(v) in
    let kept = sort_dedup_run labels run in
    Array.blit run 0 nbr !write kept;
    write := !write + kept;
    new_xadj.(v + 1) <- !write
  done;
  let nbr =
    if !write = total then nbr else Array.sub nbr 0 !write
  in
  finish_csr ~labels ~xadj:new_xadj ~nbr

let induced g vs =
  let nv = Array.length vs in
  let index = Hashtbl.create nv in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem index v then invalid_arg "Graph.induced: duplicate vertex";
      Hashtbl.add index v i)
    vs;
  let labels = Array.map (fun v -> label g v) vs in
  let es = ref [] in
  Array.iteri
    (fun i v ->
      iter_adj g v (fun w ->
          match Hashtbl.find_opt index w with
          | Some j when i < j -> es := (i, j) :: !es
          | Some _ | None -> ()))
    vs;
  of_edges ~labels !es

(* The CSR arrays are canonical for a given (labels, edge set): element-wise
   equality is structural identity, whatever the backing. *)
let equal_structure g1 g2 =
  Storage.equal g1.labels g2.labels
  && Storage.equal g1.xadj g2.xadj
  && Storage.equal g1.nbr g2.nbr

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d vertices, %d edges@," (n g) (m g);
  iter_vertices
    (fun v -> Format.fprintf ppf "v %d %a@," v Label.pp (label g v))
    g;
  List.iter (fun (u, v) -> Format.fprintf ppf "e %d %d@," u v) (edges g);
  Format.fprintf ppf "@]"

module Builder = struct
  type graph = t

  let graph_label = label

  type t = { mutable bl : Label.t Vec.t; nbrs : int Vec.t Vec.t }

  let create () = { bl = Vec.create (); nbrs = Vec.create () }

  let add_vertex b l =
    let v = Vec.length b.bl in
    Vec.push b.bl l;
    Vec.push b.nbrs (Vec.create ~capacity:4 ());
    v

  let n b = Vec.length b.bl

  let label b v = Vec.get b.bl v

  let check b v =
    if v < 0 || v >= n b then invalid_arg "Graph.Builder: unknown vertex"

  let has_edge b u v =
    check b u;
    check b v;
    Vec.exists (fun w -> w = v) (Vec.get b.nbrs u)

  let add_edge b u v =
    check b u;
    check b v;
    if u = v then invalid_arg "Graph.Builder.add_edge: self-loop";
    if not (has_edge b u v) then begin
      Vec.push (Vec.get b.nbrs u) v;
      Vec.push (Vec.get b.nbrs v) u
    end

  let remove_edge b u v =
    check b u;
    check b v;
    let removed = Vec.remove_first (fun w -> w = v) (Vec.get b.nbrs u) in
    if removed then
      ignore (Vec.remove_first (fun w -> w = u) (Vec.get b.nbrs v));
    removed

  let freeze b =
    let nv = n b in
    let labels = Vec.to_array b.bl in
    let scratch = Array.init nv (fun v -> Vec.to_array (Vec.get b.nbrs v)) in
    build ~labels ~scratch

  let of_graph (g : graph) =
    let b = create () in
    iter_vertices (fun v -> ignore (add_vertex b (graph_label g v))) g;
    iter_edges (fun u v -> add_edge b u v) g;
    b

  (* One-shot batch construction; shares the presized scratch path with the
     legacy top-level constructor so migrated call sites pay nothing. *)
  let of_edges = of_edges

  let of_edge_stream = of_edge_stream
end
