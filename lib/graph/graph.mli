(** Immutable vertex-labeled, undirected, simple graphs in CSR form.

    This is the data-graph substrate for all miners: the single input graph
    of the (l,δ)-SPM problem (Definition 8) and the members of a
    graph-transaction database. Vertices are dense integers [0..n-1].

    Adjacency is one flat neighbor array with per-vertex offsets (CSR); each
    vertex's neighbor run is sorted by [(label, id)] and carries label-range
    offsets, so label-filtered neighbor enumeration ({!adj_with_label}) costs
    O(log deg + answers) instead of a full O(deg) scan. A graph-level label
    index gives the vertices and frequency of every label in O(1) lookups
    ({!vertices_with_label}, {!label_freq}) — matchers no longer recount
    label frequencies per query. All indices are built once at construction
    ([Builder.of_edges] / [Builder.freeze]). Evolving graphs layer edits on
    top of a frozen snapshot via the [Delta] module in this library. *)

type t

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of (undirected) edges. *)

val label : t -> int -> Label.t

val labels : t -> Label.t array
(** The label array itself — do not mutate. *)

val degree : t -> int -> int
(** O(1). *)

val adj : t -> int -> int array
(** Neighbors of a vertex as a freshly allocated array sorted by id
    (ascending). O(deg log deg) — prefer {!iter_adj} / {!fold_adj} /
    {!adj_with_label} on hot paths; they read the CSR run directly. *)

val iter_adj : t -> int -> (int -> unit) -> unit
(** Iterate the neighbors of a vertex in [(label, id)] order. O(deg), no
    allocation. *)

val fold_adj : t -> int -> (int -> 'a -> 'a) -> 'a -> 'a
(** Fold over the neighbors of a vertex in [(label, id)] order. *)

val adj_with_label : t -> int -> Label.t -> (int -> unit) -> unit
(** [adj_with_label g v l f] calls [f] on exactly the neighbors of [v]
    carrying label [l], in ascending id order. O(log deg + answers) via the
    per-vertex label-range offsets. *)

val has_edge : t -> int -> int -> bool
(** O(log deg) binary search on the [(label, id)]-sorted run. *)

val label_freq : t -> Label.t -> int
(** Number of vertices carrying a label; 0 for labels outside the graph's
    universe. O(1), cached at construction. *)

val vertices_with_label : t -> Label.t -> int array
(** Freshly allocated ascending array of the vertices carrying a label;
    [[||]] for unknown labels. *)

val iter_vertices_with_label : t -> Label.t -> (int -> unit) -> unit
(** Iterate the vertices carrying a label in ascending id order, without
    allocating. *)

val edges : t -> (int * int) list
(** All edges as [(u, v)] with [u < v], in increasing order. *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** Iterate each undirected edge once, with [u < v]. No order guarantee
    beyond that — use {!edges} when a sorted list matters. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val iter_vertices : (int -> unit) -> t -> unit

val max_label : t -> Label.t
(** Largest label present; [-1] for the empty graph. *)

val num_labels : t -> int
(** [max_label g + 1] — the size of a dense label universe. *)

val induced : t -> int array -> t
(** [induced g vs] is the subgraph induced by the distinct vertices [vs];
    vertex [i] of the result corresponds to [vs.(i)]. *)

val equal_structure : t -> t -> bool
(** Identity on (labels, edge set) with the same vertex numbering — NOT
    isomorphism (see {!Spm_pattern.Canon} for that). Blind to the storage
    backing: an array-backed and a mapped copy of the same graph are equal. *)

(** {1 Storage backing}

    A frozen graph's indices live in {!Storage.t} slices: plain [int array]s
    when built in memory, [Bigarray] views when mapped from a store file.
    Every accessor above works identically on both. *)

val backing : t -> Storage.backing

val with_backing : Storage.backing -> t -> t
(** Copy the graph's indices into the requested backing; returns the
    argument unchanged when it already matches. *)

val to_csr : t -> Storage.csr
(** The graph's eight index slices, shared (not copied) — for
    serialization. *)

val of_csr : Storage.csr -> t
(** Re-assemble a graph from index slices. Performs O(1) cross-slice
    consistency checks (lengths, offset endpoints); it does {e not} deep-walk
    the arrays, so the slices are otherwise trusted — mapped stores gate this
    behind checksum validation ({!Spm_store.Store.map_graph}).
    @raise Invalid_argument when the slices cannot form a CSR graph. *)

val pp : Format.formatter -> t -> unit

module Builder : sig
  (** Mutable construction; [freeze] to obtain the immutable graph. *)

  type graph := t

  type t

  val create : unit -> t

  val add_vertex : t -> Label.t -> int
  (** Returns the fresh vertex id. *)

  val add_edge : t -> int -> int -> unit
  (** Idempotent; rejects self-loops and unknown endpoints.
      @raise Invalid_argument on self-loop or out-of-range endpoint. *)

  val remove_edge : t -> int -> int -> bool
  (** Remove an edge; [false] (and no change) when it was absent.
      O(deg). @raise Invalid_argument on out-of-range endpoint. *)

  val has_edge : t -> int -> int -> bool
  (** O(deg) membership test on the partially built graph. *)

  val n : t -> int

  val label : t -> int -> Label.t

  val freeze : t -> graph
  (** O(n + m log m): builds the CSR runs and both label indices. The
      builder remains usable afterwards. *)

  val of_graph : graph -> t
  (** Builder pre-seeded with an existing graph (used for pattern
      injection). *)

  val of_edges : labels:Label.t array -> (int * int) list -> graph
  (** One-shot batch construction from a label array (index = vertex id)
      and an edge list — the replacement for the deprecated top-level
      [of_edges], with identical behavior: duplicate edges merged,
      self-loops rejected. O(n + m log deg_max).
      @raise Invalid_argument on self-loops or out-of-range endpoints. *)

  val of_edge_stream :
    labels:Label.t array -> ((int -> int -> unit) -> unit) -> graph
  (** [of_edge_stream ~labels stream] builds a graph from a replayable edge
      producer: [stream emit] must call [emit u v] once per edge and, when
      invoked a second time, replay the {e identical} sequence (generators
      achieve this by copying their RNG state). Two passes — degree count,
      then direct fill of the flat CSR runs — so peak memory is the finished
      graph plus one offset array; no per-edge allocation. Duplicate edges
      merged, self-loops rejected.
      @raise Invalid_argument on self-loops, out-of-range endpoints, or a
      stream that does not replay identically. *)
end
