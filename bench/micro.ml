(* Bechamel micro-benchmarks: one Test per reproduced table/figure workload,
   timing the core operation that experiment stresses, plus a "csr" family
   probing the graph substrate itself (has_edge, full vs label-filtered
   neighbor enumeration, subiso) across label-universe sizes. Results are
   printed as a table and re-emitted as one JSON line for machine diffing. *)

open Bechamel
open Toolkit
open Spm_graph
open Spm_core
open Spm_workload

let make_graph ~seed ~n ~deg ~f =
  let st = Gen.rng seed in
  let bg = Gen.erdos_renyi st ~n ~avg_degree:deg ~num_labels:f in
  let b = Graph.Builder.of_graph bg in
  let p = Gen.random_skinny_pattern st ~backbone:5 ~delta:1 ~twigs:2 ~num_labels:f in
  ignore (Gen.inject st b ~pattern:p ~copies:2 ());
  Graph.Builder.freeze b

(* Substrate probes. Each workload touches every vertex so the numbers track
   the whole graph, not one lucky cache line. *)

let has_edge_workload g =
  let n = Graph.n g in
  let hits = ref 0 in
  for u = 0 to n - 1 do
    let v = (u * 7919 + 13) mod n in
    if Graph.has_edge g u v then incr hits
  done;
  !hits

(* Old-style enumeration: scan the full neighbor run and test labels. *)
let full_scan_workload g lbl =
  let count = ref 0 in
  Graph.iter_vertices
    (fun v ->
      Graph.iter_adj g v (fun w -> if Graph.label g w = lbl then incr count))
    g;
  !count

(* CSR label-range enumeration of the same quantity. *)
let label_filtered_workload g lbl =
  let count = ref 0 in
  Graph.iter_vertices (fun v -> Graph.adj_with_label g v lbl (fun _ -> incr count)) g;
  !count

let csr_tests =
  let mk_family f =
    (* Dense enough that a neighbor run holds many labels: that's the regime
       the label-range index targets (on sparse runs a full scan is fine). *)
    let g = make_graph ~seed:29 ~n:400 ~deg:16.0 ~f in
    let pattern =
      Gen.random_skinny_pattern (Gen.rng 31) ~backbone:3 ~delta:1 ~twigs:1
        ~num_labels:f
    in
    [
      Test.make
        ~name:(Printf.sprintf "csr/has-edge-f%d" f)
        (Staged.stage (fun () -> has_edge_workload g));
      Test.make
        ~name:(Printf.sprintf "csr/full-scan-f%d" f)
        (Staged.stage (fun () -> full_scan_workload g 0));
      Test.make
        ~name:(Printf.sprintf "csr/label-filtered-f%d" f)
        (Staged.stage (fun () -> label_filtered_workload g 0));
      Test.make
        ~name:(Printf.sprintf "csr/subiso-count-f%d" f)
        (Staged.stage (fun () ->
             Spm_pattern.Subiso.count_mappings ~limit:10_000 ~pattern
               ~target:g ()));
    ]
  in
  mk_family 10 @ mk_family 50

let tests ~scale =
  let g = make_graph ~seed:11 ~n:120 ~deg:2.0 ~f:30 in
  let gid1 = (Settings.gid ~scale:(min scale 0.2) ~seed:5 1).Settings.graph in
  let small_pattern = Gen.random_skinny_pattern (Gen.rng 3) ~backbone:4 ~delta:1 ~twigs:2 ~num_labels:5 in
  [
    Test.make ~name:"fig4-8/skinnymine-gid1"
      (Staged.stage (fun () ->
           Skinny_mine.mine
             ~config:{ Skinny_mine.Config.default with closed_growth = true }
             gid1 ~l:4 ~delta:2 ~sigma:2));
    Test.make ~name:"fig16/diam-mine-l5"
      (Staged.stage (fun () -> Diam_mine.mine g ~l:5 ~sigma:2));
    Test.make ~name:"fig17/level-grow-l5-d2"
      (Staged.stage (fun () -> Skinny_mine.mine g ~l:5 ~delta:2 ~sigma:2));
    Test.make ~name:"fig20/canonical-diameter"
      (Staged.stage (fun () -> Canonical_diameter.compute small_pattern));
    Test.make ~name:"fig20/min-dfs-code"
      (Staged.stage (fun () -> Spm_pattern.Dfs_code.min_code small_pattern));
    Test.make ~name:"fig14/diameter-index-build"
      (Staged.stage (fun () -> Diameter_index.build g ~sigma:2 ~l_max:5));
  ]
  @ csr_tests

let run ~scale () =
  Util.section "Bechamel micro-benchmarks (monotonic clock, ns/run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:10 ~quota:(Time.second 0.25) ~stabilize:false
      ~start:1 ()
  in
  let collected = ref [] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some [ x ] ->
              collected := (name, x) :: !collected;
              Printf.sprintf "%12.0f ns/run" x
            | _ -> "(no estimate)"
          in
          Printf.printf "  %-32s %s\n" name est)
        results)
    (tests ~scale);
  (* One machine-readable line with every estimate, for cross-run diffing. *)
  let json =
    List.rev !collected
    |> List.map (fun (name, ns) -> Printf.sprintf "{\"name\":%S,\"ns_per_run\":%.0f}" name ns)
    |> String.concat ","
  in
  Printf.printf "  micro-json: [%s]\n" json
