(* Bechamel micro-benchmarks: one Test per reproduced table/figure workload,
   timing the core operation that experiment stresses. *)

open Bechamel
open Toolkit
open Spm_graph
open Spm_core
open Spm_workload

let make_graph ~seed ~n ~deg ~f =
  let st = Gen.rng seed in
  let bg = Gen.erdos_renyi st ~n ~avg_degree:deg ~num_labels:f in
  let b = Graph.Builder.of_graph bg in
  let p = Gen.random_skinny_pattern st ~backbone:5 ~delta:1 ~twigs:2 ~num_labels:f in
  ignore (Gen.inject st b ~pattern:p ~copies:2 ());
  Graph.Builder.freeze b

let tests ~scale =
  let g = make_graph ~seed:11 ~n:120 ~deg:2.0 ~f:30 in
  let gid1 = (Settings.gid ~scale:(min scale 0.2) ~seed:5 1).Settings.graph in
  let small_pattern = Gen.random_skinny_pattern (Gen.rng 3) ~backbone:4 ~delta:1 ~twigs:2 ~num_labels:5 in
  [
    Test.make ~name:"fig4-8/skinnymine-gid1"
      (Staged.stage (fun () ->
           Skinny_mine.mine
             ~config:{ Skinny_mine.Config.default with closed_growth = true }
             gid1 ~l:4 ~delta:2 ~sigma:2));
    Test.make ~name:"fig16/diam-mine-l5"
      (Staged.stage (fun () -> Diam_mine.mine g ~l:5 ~sigma:2));
    Test.make ~name:"fig17/level-grow-l5-d2"
      (Staged.stage (fun () -> Skinny_mine.mine g ~l:5 ~delta:2 ~sigma:2));
    Test.make ~name:"fig20/canonical-diameter"
      (Staged.stage (fun () -> Canonical_diameter.compute small_pattern));
    Test.make ~name:"fig20/min-dfs-code"
      (Staged.stage (fun () -> Spm_pattern.Dfs_code.min_code small_pattern));
    Test.make ~name:"fig14/diameter-index-build"
      (Staged.stage (fun () -> Diameter_index.build g ~sigma:2 ~l_max:5));
  ]

let run ~scale () =
  Util.section "Bechamel micro-benchmarks (monotonic clock, ns/run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:10 ~quota:(Time.second 0.25) ~stabilize:false
      ~start:1 ()
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some [ x ] -> Printf.sprintf "%12.0f ns/run" x
            | _ -> "(no estimate)"
          in
          Printf.printf "  %-32s %s\n" name est)
        results)
    (tests ~scale)
