(* Matching-plan support vs the legacy backtracking matcher.

   The claim under measurement (DESIGN.md §18): compiling each candidate
   into a symmetry-broken plan makes the support path cheaper on two axes —
   automorphic images are never enumerated (the legacy matcher found each
   subgraph |Aut(P)| times), and distinct-subgraph counting needs no
   dedup hashing at all (exactly-once enumeration means the accept count
   IS the support). The "before" below is a faithful reimplementation of
   the replaced matcher: BFS-ordered backtracking over all mappings, with
   distinct images recovered by hashing embedding keys.

   Three groups of sections, all written to BENCH_plan.json:
   - fig sections: supports of patterns actually mined from the paper's
     GID settings, recomputed by both implementations (correctness is
     asserted, not assumed — any divergence fails the bench);
   - a symmetric-pattern section (palindrome paths, uniform stars, C4)
     where |Aut| >= 2 and the legacy redundancy is structural;
   - the serving path: Mine and Contains p50/p95 through the sharded
     router at 1/2/4 shards, with byte-identity of the Mine responses
     asserted across layouts. *)

open Spm_graph
open Spm_pattern
module Skinny_mine = Spm_core.Skinny_mine
module Settings = Spm_workload.Settings
module Store = Spm_store.Store
module Protocol = Spm_server.Protocol
module Client = Spm_server.Client

(* --- The replaced matcher: BFS order, no symmetry breaking, hash dedup --- *)

let legacy_iter_mappings ~pattern ~target f =
  let np = Graph.n pattern in
  if np > 0 then begin
    let order = Array.make np (-1) in
    let seen = Array.make np false in
    let q = Queue.create () in
    Queue.add 0 q;
    seen.(0) <- true;
    let k = ref 0 in
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      order.(!k) <- v;
      incr k;
      Array.iter
        (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            Queue.add w q
          end)
        (Graph.adj pattern v)
    done;
    let placed = Array.make np false in
    let map = Array.make np (-1) in
    let used = Array.make (max 1 (Graph.n target)) false in
    let ok pv tv =
      Graph.label target tv = Graph.label pattern pv
      && Array.for_all
           (fun w -> (not placed.(w)) || Graph.has_edge target tv map.(w))
           (Graph.adj pattern pv)
    in
    let rec place depth =
      if depth = np then f map
      else begin
        let pv = order.(depth) in
        let try_candidate tv =
          if (not used.(tv)) && ok pv tv then begin
            map.(pv) <- tv;
            placed.(pv) <- true;
            used.(tv) <- true;
            place (depth + 1);
            used.(tv) <- false;
            placed.(pv) <- false;
            map.(pv) <- -1
          end
        in
        (* Candidates from any already-placed pattern neighbor, like the
           replaced matcher; the root scans its label class. *)
        match
          Array.fold_left
            (fun acc w -> if placed.(w) && acc < 0 then w else acc)
            (-1) (Graph.adj pattern pv)
        with
        | -1 ->
          Graph.iter_vertices_with_label target (Graph.label pattern pv)
            try_candidate
        | src -> Graph.iter_adj target map.(src) try_candidate
      end
    in
    place 0
  end

let legacy_support p g =
  let dedup = Hashtbl.create 1024 in
  legacy_iter_mappings ~pattern:p ~target:g (fun m ->
      Hashtbl.replace dedup
        (Embedding.key_of_mapping ~data_n:(Graph.n g) ~pattern:p m)
        ());
  Hashtbl.length dedup

(* --- Support sections --- *)

type section = {
  name : string;
  patterns : int;
  legacy_s : float;
  plan_s : float;
  speedup : float;
}

let run_section ~name g pats =
  let legacy, legacy_s =
    Util.time (fun () -> List.map (fun p -> legacy_support p g) pats)
  in
  let plan, plan_s =
    Util.time (fun () -> List.map (fun p -> Support.single_graph p g) pats)
  in
  if legacy <> plan then
    failwith
      (Printf.sprintf "%s: plan-driven support diverged from legacy matcher"
         name);
  let speedup = if plan_s > 0.0 then legacy_s /. plan_s else 0.0 in
  Printf.printf
    "  %-28s %3d patterns  legacy %8.1f ms  plan %8.1f ms  %5.2fx\n%!" name
    (List.length pats)
    (1000.0 *. legacy_s)
    (1000.0 *. plan_s)
    speedup;
  { name; patterns = List.length pats; legacy_s; plan_s; speedup }

let mined_patterns ?(cap = 40) g =
  let r = Skinny_mine.mine g ~l:4 ~delta:2 ~sigma:2 in
  List.filteri
    (fun i _ -> i < cap)
    (List.map (fun (m : Skinny_mine.mined) -> m.pattern) r.patterns)

let fig_section ~seed ~scale gid =
  let d = Settings.gid ~scale ~seed gid in
  let g = d.Settings.graph in
  run_section
    ~name:(Printf.sprintf "fig_gid%d (n=%d)" gid (Graph.n g))
    g (mined_patterns g)

let symmetric_section ~seed =
  let st = Gen.rng (seed + 0x5a11) in
  let g = Gen.erdos_renyi st ~n:3000 ~avg_degree:3.0 ~num_labels:2 in
  let pats =
    [
      Pattern.of_path_labels [| 0; 1; 0 |];
      Pattern.of_path_labels [| 1; 0; 0; 1 |];
      Gen.star_graph ~center:1 [| 0; 0; 0 |];
      Gen.star_graph ~center:1 [| 0; 0; 0; 0 |];
      Gen.cycle_graph [| 0; 0; 0; 0 |];
    ]
  in
  let auts = List.map Plan.automorphism_count pats in
  Printf.printf "  symmetric patterns, |Aut| = %s\n%!"
    (String.concat ", " (List.map string_of_int auts));
  run_section ~name:"symmetric (|Aut|>=2)" g pats

let section_json s =
  Printf.sprintf
    "{\"name\": \"%s\", \"patterns\": %d, \"legacy_ms\": %.2f, \"plan_ms\": \
     %.2f, \"speedup\": %.2f}"
    s.name s.patterns
    (1000.0 *. s.legacy_s)
    (1000.0 *. s.plan_s)
    s.speedup

(* --- Serving path: router Mine / Contains latency --- *)

type serving = {
  shards : int;
  requests : int;
  mine_p50_ms : float;
  mine_p95_ms : float;
  contains_p50_ms : float;
  contains_p95_ms : float;
}

let render_mined (ms : Skinny_mine.mined list) =
  let b = Buffer.create 4096 in
  List.iter
    (fun (m : Skinny_mine.mined) ->
      Buffer.add_string b (Io.to_string m.pattern);
      Buffer.add_string b (Printf.sprintf "s%d\n" m.support))
    ms;
  Buffer.contents b

let latencies_ms f n =
  let a =
    Array.init n (fun _ ->
        let _, s = Util.time f in
        1000.0 *. s)
  in
  Array.sort compare a;
  a

let serving_layout ~store ~mine_params ~contains_targets ~requests ~shards =
  Exp_cluster.with_sharded_cluster ~store ~shards (fun ~router:_ ~port ->
      Client.with_connection ~port (fun c ->
          let reply = ref [] in
          let mine =
            latencies_ms (fun () -> reply := Client.mine c mine_params) requests
          in
          let i = ref 0 in
          let contains =
            latencies_ms
              (fun () ->
                let g =
                  contains_targets.(!i mod Array.length contains_targets)
                in
                incr i;
                ignore (Client.contains c g))
              requests
          in
          let pct a p = Exp_cluster.percentile a p in
          ( {
              shards;
              requests;
              mine_p50_ms = pct mine 0.50;
              mine_p95_ms = pct mine 0.95;
              contains_p50_ms = pct contains 0.50;
              contains_p95_ms = pct contains 0.95;
            },
            render_mined !reply )))

let serving_json r =
  Printf.sprintf
    "{\"shards\": %d, \"requests\": %d, \"mine_p50_ms\": %.3f, \
     \"mine_p95_ms\": %.3f, \"contains_p50_ms\": %.3f, \"contains_p95_ms\": \
     %.3f}"
    r.shards r.requests r.mine_p50_ms r.mine_p95_ms r.contains_p50_ms
    r.contains_p95_ms

let serving_sections ~seed ~requests =
  let store = Exp_cluster.mined_store ~seed ~n:300 ~f:30 in
  let mine_params =
    Protocol.mine_params ~l:4 ~delta:2 ~sigma:2 ~closed_growth:false ()
  in
  let contains_targets =
    Array.of_list
      (List.filteri
         (fun i _ -> i < 8)
         (List.map
            (fun (m : Skinny_mine.mined) -> m.pattern)
            store.Store.patterns))
  in
  Util.print_row_header
    [
      (8, "shards");
      (12, "mine p50");
      (12, "mine p95");
      (14, "contains p50");
      (14, "contains p95");
    ];
  let results, renders =
    List.split
      (List.map
         (fun shards ->
           let r, rendered =
             serving_layout ~store ~mine_params ~contains_targets ~requests
               ~shards
           in
           Printf.printf "%-8d%12.3f%12.3f%14.3f%14.3f\n%!" r.shards
             r.mine_p50_ms r.mine_p95_ms r.contains_p50_ms r.contains_p95_ms;
           (r, rendered))
         [ 1; 2; 4 ])
  in
  (match renders with
  | first :: rest ->
    List.iteri
      (fun i r ->
        if r <> first then
          failwith
            (Printf.sprintf
               "serving: %d-shard Mine response diverged from 1-shard"
               (List.nth [ 2; 4 ] i)))
      rest
  | [] -> ());
  Printf.printf "  Mine responses byte-identical across 1/2/4 shards\n%!";
  results

(* --- Entry point --- *)

let run ~seed ?(scale = 0.25) ?(requests = 120) () =
  Util.section
    "Plan: symmetry-broken matching vs legacy backtracking + dedup hashing";
  let s1 = fig_section ~seed ~scale 1 in
  let s2 = fig_section ~seed ~scale 2 in
  let s3 = fig_section ~seed ~scale 3 in
  let sym = symmetric_section ~seed in
  let sections = [ s1; s2; s3; sym ] in
  let best =
    List.fold_left (fun acc s -> max acc s.speedup) 0.0 sections
  in
  Printf.printf "  best support-path speedup: %.2fx\n%!" best;
  let serving = serving_sections ~seed ~requests in
  let json =
    Printf.sprintf
      "{\"seed\": %d, \"scale\": %.2f, \"sections\": [%s], \"serving\": \
       [%s], \"best_speedup\": %.2f}"
      seed scale
      (String.concat ", " (List.map section_json sections))
      (String.concat ", " (List.map serving_json serving))
      best
  in
  let oc = open_out "BENCH_plan.json" in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "  wrote BENCH_plan.json\n%!";
  json
