(* Constraint experiments: Figures 16-17 (DiamMine / LevelGrow runtime and
   pattern counts as the diameter constraint l varies — the reducibility and
   continuity demonstrations), Figures 18-19 (LevelGrow runtime and largest
   pattern size as the skinniness bound delta varies), and the second
   constraint family: an r-neighborhood sweep with the Exact-vs-Naive
   admissibility ablation, written to BENCH_constraints.json. *)

open Spm_graph
open Spm_core

let constraint_graph ~seed ~n ~f =
  let st = Gen.rng (seed + 0xc0) in
  let bg = Gen.erdos_renyi st ~n ~avg_degree:3.0 ~num_labels:f in
  let b = Graph.Builder.of_graph bg in
  (* A few long skinny patterns so long diameters exist. *)
  for _ = 1 to 3 do
    let p = Gen.random_skinny_pattern st ~backbone:10 ~delta:2 ~twigs:3 ~num_labels:f in
    ignore (Gen.inject st b ~pattern:p ~copies:2 ())
  done;
  Graph.Builder.freeze b

let figures_16_17 ~seed ~n ~f ~l_values () =
  Util.section
    (Printf.sprintf
       "Figures 16-17: runtime of the two stages vs the diameter constraint \
        l (|V| = %d, deg = 3, f = %d, sigma = 2, delta = 2)"
       n f);
  let g = constraint_graph ~seed ~n ~f in
  let l_max = List.fold_left max 1 l_values in
  (* Support = greedy vertex-disjoint embeddings, which reproduces the
     paper's curve shapes (see Disjoint_support and EXPERIMENTS.md). *)
  let idx, build_t =
    Util.time (fun () ->
        Diameter_index.build ~path_support:Disjoint_support.paths g ~sigma:2
          ~l_max)
  in
  Printf.printf "(power-of-2 index built once in %.3fs; per-l times below \
                 include only the merge/growth work)\n%!" build_t;
  Util.print_row_header
    [ (5, "l"); (14, "DiamMine(s)"); (10, "#paths"); (15, "LevelGrow(s)");
      (12, "#patterns") ];
  List.iter
    (fun l ->
      let entries, diam_t = Util.time (fun () -> Diameter_index.entries idx ~l) in
      let result, grow_t =
        Util.time (fun () ->
            Diameter_index.request
              ~config:
                {
                  Skinny_mine.Config.default with
                  support = Some Disjoint_support.maps;
                  max_patterns = Some 20000;
                }
              idx ~l ~delta:2)
      in
      let count = List.length result.Skinny_mine.patterns in
      Printf.printf "%-5d%-14s%-10d%-15s%-12s\n%!" l (Util.fmt_time diam_t)
        (List.length entries) (Util.fmt_time grow_t)
        (if count >= 20000 then string_of_int count ^ "(cap)"
         else string_of_int count))
    l_values

let figures_18_19 ~seed ~n ~f ~l ~deltas () =
  Util.section
    (Printf.sprintf
       "Figures 18-19: LevelGrow runtime and largest pattern vs skinniness \
        delta (|V| = %d, l = %d, sigma = 2)"
       n l);
  let st = Gen.rng (seed + 0xd1) in
  let bg = Gen.erdos_renyi st ~n ~avg_degree:3.0 ~num_labels:f in
  let b = Graph.Builder.of_graph bg in
  (* Injected patterns are full delta = max-delta skinny patterns so the
     sweep has something to find at every delta. *)
  let dmax = List.fold_left max 0 deltas in
  for _ = 1 to 8 do
    let p =
      Gen.random_skinny_pattern st ~backbone:l ~delta:dmax
        ~twigs:(3 * max 1 dmax) ~num_labels:f
    in
    ignore (Gen.inject st b ~pattern:p ~copies:2 ())
  done;
  let g = Graph.Builder.freeze b in
  let idx, build_t =
    Util.time (fun () ->
        Diameter_index.build ~path_support:Disjoint_support.paths g ~sigma:2
          ~l_max:l)
  in
  Printf.printf "(DiamMine stage shared across deltas: %.3fs)\n%!" build_t;
  Util.print_row_header
    [ (7, "delta"); (15, "LevelGrow(s)"); (12, "#patterns"); (14, "max |E|") ];
  List.iter
    (fun delta ->
      let result, grow_t =
        Util.time (fun () ->
            Diameter_index.request
              ~config:
                {
                  Skinny_mine.Config.default with
                  support = Some Disjoint_support.maps;
                  max_patterns = Some 20000;
                }
              idx ~l ~delta)
      in
      let max_e =
        List.fold_left
          (fun acc m -> max acc (Graph.m m.Skinny_mine.pattern))
          0 result.Skinny_mine.patterns
      in
      Printf.printf "%-7d%-15s%-12d%-14d\n%!" delta (Util.fmt_time grow_t)
        (List.length result.Skinny_mine.patterns)
        max_e)
    deltas

(* --- the second constraint family: r-neighborhood sweep + ablation ---

   Per radius r, the same mine runs under [Exact] admissibility (the
   distance index answers "did the leaf land within r?" in O(1)) and under
   [Naive] (recompute the center's eccentricity from scratch per extension,
   the ground-truth baseline) — the two must produce identical answer sets,
   and the gap between their runtimes is the price of the naive check. *)

let mined_render (r : Skinny_mine.result) =
  String.concat "|"
    (List.map
       (fun (m : Skinny_mine.mined) ->
         Printf.sprintf "%s:%d"
           (Spm_pattern.Canon.key m.Skinny_mine.pattern)
           m.Skinny_mine.support)
       r.Skinny_mine.patterns)

let neighborhood ~seed ~n ~f ~r_values () =
  Util.section
    (Printf.sprintf
       "Second family: r-neighborhood mining, Exact vs Naive admissibility \
        (|V| = %d, deg = 2, f = %d, sigma = 2)"
       n f);
  (* Plain sparse ER, no injections: overlapping neighborhood clusters make
     the pattern count grow explosively with density and radius (deg 3 at
     r = 2 is already intractable), so this section pins its own shape
     instead of riding the skinny sweeps' [constraint_n]. *)
  let g =
    Gen.erdos_renyi (Gen.rng seed) ~n ~avg_degree:2.0 ~num_labels:f
  in
  Util.print_row_header
    [ (5, "r"); (12, "Exact(s)"); (12, "Naive(s)"); (12, "#patterns");
      (10, "max |E|"); (8, "agree") ];
  let rows =
    List.map
      (fun r ->
        let mine mode =
          Util.time (fun () ->
              Skinny_mine.mine
                ~config:
                  {
                    Skinny_mine.Config.default with
                    family = Constraints.Neighborhood { center = None };
                    mode;
                    max_patterns = Some 20000;
                  }
                g ~l:0 ~delta:r ~sigma:2)
        in
        let exact, exact_t = mine Constraints.Exact in
        let naive, naive_t = mine Constraints.Naive in
        let agree = mined_render exact = mined_render naive in
        let count = List.length exact.Skinny_mine.patterns in
        let max_e =
          List.fold_left
            (fun acc (m : Skinny_mine.mined) ->
              max acc (Graph.m m.Skinny_mine.pattern))
            0 exact.Skinny_mine.patterns
        in
        Printf.printf "%-5d%-12s%-12s%-12d%-10d%-8b\n%!" r
          (Util.fmt_time exact_t) (Util.fmt_time naive_t) count max_e agree;
        if not agree then
          failwith
            (Printf.sprintf
               "neighborhood ablation: Exact and Naive disagree at r = %d" r);
        Printf.sprintf
          "{\"r\": %d, \"exact_s\": %.4f, \"naive_s\": %.4f, \"patterns\": \
           %d, \"max_edges\": %d, \"agree\": %b}"
          r exact_t naive_t count max_e agree)
      r_values
  in
  let json =
    Printf.sprintf
      "{\"seed\": %d, \"n\": %d, \"f\": %d, \"sigma\": 2, \"family\": \
       \"neighborhood\", \"sweep\": [%s]}"
      seed n f
      (String.concat ", " rows)
  in
  let oc = open_out "BENCH_constraints.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  neighborhood measurements written to BENCH_constraints.json\n%!"
