(* Real-data analogues (§6.3): temporal collaboration patterns over DBLP-like
   career timelines and diffusion-chain patterns over Weibo-like
   conversations. The real crawls are unavailable; DESIGN.md §4 documents the
   substitution. *)

open Spm_graph
open Spm_core
open Spm_workload

let render_dblp_pattern p =
  let parts =
    Graph.fold_edges
      (fun u v acc ->
        Printf.sprintf "%s-%s"
          (Dblp_like.label_name (Graph.label p u))
          (Dblp_like.label_name (Graph.label p v))
        :: acc)
      p []
  in
  String.concat " " (List.rev parts)

let closed ~jobs =
  { Spm_core.Skinny_mine.Config.default with closed_growth = true; jobs }

let dblp ~seed ~num_authors ~l ?(jobs = 1) () =
  Util.section
    (Printf.sprintf
       "DBLP analogue: %d-year temporal collaboration patterns over %d \
        author timelines (sigma = 2)"
       l num_authors);
  let authors = Dblp_like.generate ~num_authors ~seed () in
  let db = List.map (fun a -> a.Dblp_like.graph) authors in
  let result, t =
    Util.time (fun () ->
        Skinny_mine.mine_transactions ~config:(closed ~jobs) db ~l ~delta:1
          ~sigma:2)
  in
  Printf.printf
    "found %d frequent skinny patterns with a %d-year backbone in %.2fs\n%!"
    (List.length result.Skinny_mine.patterns)
    l t;
  (* Show the largest two patterns as label chains (Figures 21-22 analogue). *)
  let biggest =
    List.sort
      (fun a b ->
        Int.compare (Graph.m b.Skinny_mine.pattern) (Graph.m a.Skinny_mine.pattern))
      result.Skinny_mine.patterns
    |> List.filteri (fun i _ -> i < 2)
  in
  List.iteri
    (fun i m ->
      Printf.printf "example %d (support %d): %s\n%!" (i + 1)
        m.Skinny_mine.support
        (render_dblp_pattern m.Skinny_mine.pattern))
    biggest

let weibo ~seed ~num_conversations ~chain ~l ?(jobs = 1) () =
  Util.section
    (Printf.sprintf
       "Weibo analogue: diffusion patterns with backbone >= %d over %d \
        conversations (sigma = 4, delta = 2)"
       l num_conversations);
  let convs =
    Weibo_like.generate ~num_conversations ~size:80 ~chain ~seed ()
  in
  let db = List.map (fun c -> c.Weibo_like.graph) convs in
  let result, t =
    Util.time (fun () ->
        Skinny_mine.mine_transactions ~config:(closed ~jobs) db ~l ~delta:2
          ~sigma:4)
  in
  Printf.printf "found %d frequent skinny diffusion patterns in %.2fs\n%!"
    (List.length result.Skinny_mine.patterns)
    t;
  let motif = Weibo_like.diffusion_motif ~chain in
  let recovered =
    List.exists
      (fun m ->
        Spm_pattern.Subiso.exists ~pattern:m.Skinny_mine.pattern ~target:motif)
      result.Skinny_mine.patterns
  in
  Printf.printf "Figure-24 style root-reengagement chain present: %b\n%!"
    recovered
