(* Graph-transaction experiments: Figures 9 and 10 — SkinnyMine (adapted)
   vs SpiderMine vs ORIGAMI on a ten-graph database with injected skinny
   patterns, without and with 120 extra small patterns. *)

open Spm_graph
open Spm_core
open Spm_baselines
open Spm_workload

let run ~scale ~seed ~extra_small ~figure ?(jobs = 1) () =
  Util.section
    (Printf.sprintf
       "Figure %d: transaction setting (%d extra small patterns injected)"
       figure extra_small);
  let t = Settings.transaction_setting ~scale ~extra_small ~seed () in
  let db = t.Settings.transactions in
  let ld =
    match t.Settings.injected_long with
    | p :: _ -> Bfs.diameter p
    | [] -> 4
  in
  let sigma = 4 in
  let skinny, sk_t =
    Util.time (fun () ->
        Skinny_mine.mine_transactions
          ~config:{ Skinny_mine.Config.default with closed_growth = true; jobs }
          db ~l:ld ~delta:2 ~sigma)
  in
  let union =
    let b = Graph.Builder.create () in
    List.iter
      (fun g ->
        let off = Graph.Builder.n b in
        Graph.iter_vertices
          (fun v -> ignore (Graph.Builder.add_vertex b (Graph.label g v)))
          g;
        Graph.iter_edges (fun u v -> Graph.Builder.add_edge b (off + u) (off + v)) g)
      db;
    Graph.Builder.freeze b
  in
  let spider, sp_t =
    Util.time (fun () ->
        Spider_mine.mine ~rng:(Gen.rng (seed + figure)) ~seeds:100 ~graph:union
          ~sigma ~k:6 ())
  in
  let origami, or_t =
    Util.time (fun () ->
        Origami.mine ~rng:(Gen.rng (seed + figure + 1)) ~walks:40 ~db ~sigma ())
  in
  Util.print_histogram ~name:"ORIGAMI"
    (List.map (fun (p, _) -> Graph.n p) origami.Origami.patterns);
  Util.print_histogram ~name:"SpiderMine"
    (List.map (fun (p, _) -> Graph.n p) spider.Spider_mine.patterns);
  Util.print_histogram ~name:"SkinnyMine" (Util.orders_of_skinny skinny);
  let recovered =
    List.length
      (List.filter
         (fun p ->
           List.exists
             (fun m -> Spm_pattern.Canon.iso m.Skinny_mine.pattern p)
             skinny.Skinny_mine.patterns)
         t.Settings.injected_long)
  in
  Printf.printf
    "  SkinnyMine recovered %d/%d injected long patterns (%.2fs); SpiderMine \
     %.2fs; ORIGAMI %.2fs\n%!"
    recovered
    (List.length t.Settings.injected_long)
    sk_t sp_t or_t

let figure_9 ~scale ~seed ?(jobs = 1) () =
  run ~scale ~seed ~extra_small:0 ~figure:9 ~jobs ()

let figure_10 ~scale ~seed ?(jobs = 1) () =
  run ~scale ~seed ~extra_small:(max 12 (int_of_float (120.0 *. scale)))
    ~figure:10 ~jobs ()
