(* Oracle cost report: how expensive the correctness machinery itself is.

   Runs the differential harness (brute-force reference miner, SkinnyMine at
   jobs=1 and jobs=4, gSpan + skinny filter) over the committed corpus and
   reports per-item wall clock plus the aggregate mismatch count, which must
   be zero on a healthy tree. The point of benching this at all: the oracle
   gates CI, so its runtime budget (< 2 min) is itself a contract worth
   tracking. *)

open Spm_oracle

(* Returns a JSON fragment for the harness summary file. *)
let run () =
  Util.section "Oracle: differential harness over the committed corpus";
  let items = Corpus.builtin () in
  let rows =
    List.map
      (fun it ->
        let r, dt = Util.time (fun () -> Differential.run_item it) in
        let mismatches = List.length r.Differential.mismatches in
        Printf.printf "  %-22s %s in %6.3fs (%d oracle targets)\n%!"
          it.Corpus.name
          (if Differential.ok r then "clean" else "DIVERGED")
          dt r.Differential.oracle_targets;
        (it.Corpus.name, dt, mismatches))
      items
  in
  let total = List.fold_left (fun acc (_, dt, _) -> acc +. dt) 0.0 rows in
  let mismatches = List.fold_left (fun acc (_, _, m) -> acc + m) 0 rows in
  Printf.printf "  total: %.3fs over %d corpus items, %d mismatches\n%!" total
    (List.length rows) mismatches;
  Printf.sprintf "{\"items\": %d, \"mismatches\": %d, \"seconds\": %.3f}"
    (List.length rows) mismatches total
