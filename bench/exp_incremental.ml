(* Incremental repair vs full re-mine on an evolving graph.

   The claim under measurement (DESIGN.md §15): after a small edit batch,
   Incremental.update re-runs Stage II only on the diameter clusters whose
   δ-neighborhoods the edits touched, so update latency should sit far
   below a from-scratch Skinny_mine.mine of the edited graph — while
   producing the byte-identical pattern set (asserted here on every trial,
   not just in the test suite).

   Two workloads: single-edge updates (the latency-critical path a live
   server sees) and 1%-of-m batches. For each trial we time the repair,
   time the full re-mine of the same edited snapshot, and record the
   pattern-set diff the repair reported. Medians plus the speedup ratio go
   to BENCH_incremental.json. *)

open Spm_graph
open Spm_core
module Incremental = Spm_core.Incremental
module Run = Spm_engine.Run

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  if Array.length a = 0 then 0.0 else a.(Array.length a / 2)

let render (ms : Skinny_mine.mined list) =
  let b = Buffer.create 4096 in
  List.iter
    (fun (m : Skinny_mine.mined) ->
      Buffer.add_string b (Io.to_string m.pattern);
      Buffer.add_string b
        (Printf.sprintf "s%d l%s d%s\n" m.support
           (String.concat ","
              (Array.to_list (Array.map string_of_int m.levels)))
           (String.concat ","
              (Array.to_list (Array.map string_of_int m.diameter_labels)))))
    ms;
  Buffer.contents b

(* An edit batch over the current merged view: mostly fresh edges, some
   deletions of existing ones — the mix a drifting data graph produces. *)
let random_batch st dg size =
  List.init size (fun _ ->
      let n = Delta.n dg in
      if Random.State.int st 3 = 0 && Delta.m dg > 0 then begin
        let es = Array.of_list (Delta.edges dg) in
        let u, v = es.(Random.State.int st (Array.length es)) in
        Delta.Remove_edge (u, v)
      end
      else
        let rec fresh tries =
          let u = Random.State.int st n in
          let v = Random.State.int st n in
          if u <> v && (tries = 0 || not (Delta.has_edge dg u v)) then (u, v)
          else fresh (max 0 (tries - 1))
        in
        let u, v = fresh 20 in
        Delta.Add_edge (u, v))

type trial = {
  inc_s : float;
  full_s : float;
  added : int;
  removed : int;
  repaired : int;
  clusters : int;
}

let run_trials ~name ~config ~l ~delta ~sigma ~st ~trials ~batch_size inc0 =
  let inc = ref inc0 in
  let results = ref [] in
  for t = 1 to trials do
    let edits = random_batch st (Incremental.graph !inc) batch_size in
    let (inc', diff), inc_s =
      Util.time (fun () -> Incremental.update !inc edits)
    in
    inc := inc';
    let g = Delta.snapshot (Incremental.graph inc') in
    let full, full_s =
      Util.time (fun () -> Skinny_mine.mine ~config g ~l ~delta ~sigma)
    in
    if render full.Skinny_mine.patterns <> render (Incremental.patterns inc')
    then
      failwith
        (Printf.sprintf "%s trial %d: repair diverged from full re-mine" name
           t);
    results :=
      {
        inc_s;
        full_s;
        added = List.length diff.Incremental.added;
        removed = List.length diff.Incremental.removed;
        repaired = diff.Incremental.repaired_clusters;
        clusters = diff.Incremental.total_clusters;
      }
      :: !results
  done;
  List.rev !results

let summarize ~name ~batch_size trials =
  let inc_ms = median (List.map (fun t -> 1000.0 *. t.inc_s) trials) in
  let full_ms = median (List.map (fun t -> 1000.0 *. t.full_s) trials) in
  let speedup = if inc_ms > 0.0 then full_ms /. inc_ms else 0.0 in
  let avg f =
    float_of_int (List.fold_left (fun a t -> a + f t) 0 trials)
    /. float_of_int (max 1 (List.length trials))
  in
  Printf.printf
    "  %-12s (batch %3d): repair p50 %7.1f ms vs full re-mine p50 %7.1f ms \
     — %.1fx; avg diff +%.1f/-%.1f patterns, %.1f of %.0f clusters \
     re-grown\n\
     %!"
    name batch_size inc_ms full_ms speedup
    (avg (fun t -> t.added))
    (avg (fun t -> t.removed))
    (avg (fun t -> t.repaired))
    (avg (fun t -> t.clusters));
  ( speedup,
    Printf.sprintf
      "{\"batch_size\": %d, \"trials\": %d, \"repair_ms_p50\": %.2f, \
       \"full_ms_p50\": %.2f, \"speedup\": %.2f, \"avg_added\": %.2f, \
       \"avg_removed\": %.2f, \"avg_repaired_clusters\": %.2f, \
       \"avg_clusters\": %.2f}"
      batch_size (List.length trials) inc_ms full_ms speedup
      (avg (fun t -> t.added))
      (avg (fun t -> t.removed))
      (avg (fun t -> t.repaired))
      (avg (fun t -> t.clusters)) )

(* Returns a JSON fragment for the harness summary file. *)
let run ~seed ?(n = 1500) ?(num_labels = 30) ?(single_trials = 6)
    ?(batch_trials = 3) ?(jobs = 1) () =
  Util.section "Incremental: delta-scoped repair vs full re-mine";
  let st = Random.State.make [| seed; 0x1ec2 |] in
  (* Label diversity scales with n so each frequent entry keeps a bounded
     embedding count: clusters stay LOCAL, which is the regime where
     delta-scoped repair pays — a single edit's δ-ball then intersects few
     clusters. (With few labels every entry has embeddings everywhere and
     any edit touches a constant fraction of clusters, no matter how the
     repair is scoped.) Closed growth keeps the twig powerset collapsed and
     Stage II dominant. *)
  let g =
    Gen.erdos_renyi (Gen.rng (seed + 17)) ~n ~avg_degree:2.2 ~num_labels
  in
  let l, delta, sigma = (4, 2, 2) in
  let config =
    { Skinny_mine.Config.default with closed_growth = true; jobs }
  in
  let inc0, create_s =
    Util.time (fun () ->
        Incremental.create ~config (Delta.of_graph g) ~l ~delta ~sigma)
  in
  Printf.printf
    "  graph: %d vertices, %d edges; initial mine (l=%d, delta=%d, \
     sigma=%d, jobs=%d): %d patterns in %.2fs\n\
     %!"
    (Graph.n g) (Graph.m g) l delta sigma jobs
    (List.length (Incremental.patterns inc0))
    create_s;
  let single =
    run_trials ~name:"single-edge" ~config ~l ~delta ~sigma ~st
      ~trials:single_trials ~batch_size:1 inc0
  in
  let batch_size = max 1 (Graph.m g / 100) in
  let batch =
    run_trials ~name:"1%-batch" ~config ~l ~delta ~sigma ~st
      ~trials:batch_trials ~batch_size inc0
  in
  let single_speedup, single_json =
    summarize ~name:"single-edge" ~batch_size:1 single
  in
  let _, batch_json = summarize ~name:"1%-batch" ~batch_size batch in
  if single_speedup < 5.0 then
    Printf.printf
      "  WARNING: single-edge speedup %.1fx below the 5x acceptance target\n%!"
      single_speedup;
  let json =
    Printf.sprintf
      "{\"n\": %d, \"m\": %d, \"initial_mine_s\": %.3f, \"single\": %s, \
       \"batch\": %s}"
      (Graph.n g) (Graph.m g) create_s single_json batch_json
  in
  let oc = open_out "BENCH_incremental.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc json;
      output_char oc '\n');
  Printf.printf "  details written to BENCH_incremental.json\n%!";
  json
