(* Shared helpers for the experiment harness: wall-clock timing, pattern-size
   histograms, and paper-style table printing. *)

(* Wall clock, not CPU time: parallel runs burn CPU seconds on every domain
   but should report elapsed time. *)
let time = Spm_engine.Clock.time

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let subsection title =
  Printf.printf "\n-- %s --\n%!" title

(* Histogram of pattern sizes (vertex counts, as in Figures 4-10). *)
let size_histogram orders =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun o -> Hashtbl.replace tbl o (1 + Option.value ~default:0 (Hashtbl.find_opt tbl o)))
    orders;
  Hashtbl.fold (fun o c acc -> (o, c) :: acc) tbl [] |> List.sort compare

let print_histogram ~name orders =
  let hist = size_histogram orders in
  if hist = [] then Printf.printf "  %-12s (no patterns)\n%!" name
  else begin
    Printf.printf "  %-12s" name;
    List.iter (fun (o, c) -> Printf.printf " %d:|V|=%d" c o) hist;
    print_newline ();
    flush stdout
  end

let print_row_header cols =
  List.iter (fun (w, h) -> Printf.printf "%-*s" w h) cols;
  print_newline ();
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 cols in
  Printf.printf "%s\n" (String.make total '-')

let fmt_time s =
  if s < 0.0 then "  t/o  " else Printf.sprintf "%7.3f" s

(* Run a closure with a crude wall-clock cap by checking inside the miners'
   own deadline support where available; for miners without one, we just run
   them on sizes where they finish. *)
let orders_of_skinny (r : Spm_core.Skinny_mine.result) =
  List.map
    (fun m -> Spm_graph.Graph.n m.Spm_core.Skinny_mine.pattern)
    r.Spm_core.Skinny_mine.patterns

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
