(* Ablations for the design choices DESIGN.md §6 calls out:
   1. DiamMine merging vs exhaustive (no intermediate pruning) path mining —
      the Reducibility argument of §3.2;
   2. constraint maintenance: naive all-pairs recomputation vs the local
      D_H/D_T checks (Exact mode) vs the paper's literal triggers — §3.3-3.4;
   3. direct mining vs enumerate-and-check (complete MoSS mining followed by
      a skinny filter). *)

open Spm_graph
open Spm_core

let ablation_graph ~seed ~n =
  let st = Gen.rng (seed + 0xab1) in
  (* A label-rich, sparse background keeps the complete pattern space
     enumerable so all three maintenance modes can run it to completion. *)
  let bg = Gen.erdos_renyi st ~n ~avg_degree:2.0 ~num_labels:60 in
  let b = Graph.Builder.of_graph bg in
  for _ = 1 to 3 do
    let p = Gen.random_skinny_pattern st ~backbone:6 ~delta:2 ~twigs:3 ~num_labels:60 in
    ignore (Gen.inject st b ~pattern:p ~copies:2 ())
  done;
  Graph.Builder.freeze b

let diam_mine_pruning ~seed ~n () =
  Util.section "Ablation 1: DiamMine intermediate pruning (sigma at powers of 2)";
  let g = ablation_graph ~seed ~n in
  Util.print_row_header [ (6, "l"); (14, "pruned (s)"); (16, "exhaustive (s)"); (18, "#paths (pr/ex)") ];
  List.iter
    (fun l ->
      let pr, pt = Util.time (fun () -> Diam_mine.mine g ~l ~sigma:2) in
      let ex, et =
        Util.time (fun () -> Diam_mine.mine ~prune_intermediate:false g ~l ~sigma:2)
      in
      Printf.printf "%-6d%-14s%-16s%d/%d\n%!" l (Util.fmt_time pt)
        (Util.fmt_time et)
        (List.length pr.Diam_mine.entries)
        (List.length ex.Diam_mine.entries))
    [ 3; 5; 6 ]

let constraint_maintenance ~seed ~n () =
  Util.section
    "Ablation 2: constraint maintenance (naive recomputation vs local \
     D_H/D_T checks vs the paper's literal triggers)";
  (* A denser instance so the per-extension check cost dominates: the same
     workload as Figure 14 at |V| = 2n. *)
  let st = Gen.rng (seed + 0xab2) in
  let bg = Gen.erdos_renyi st ~n:(2 * n) ~avg_degree:3.0 ~num_labels:80 in
  let b = Graph.Builder.of_graph bg in
  let pat = Gen.random_skinny_pattern st ~backbone:6 ~delta:1 ~twigs:2 ~num_labels:80 in
  ignore (Gen.inject st b ~pattern:pat ~copies:2 ());
  let g = Graph.Builder.freeze b in
  Util.print_row_header
    [ (8, "mode"); (12, "time (s)"); (12, "#patterns"); (26, "note") ];
  let run mode name note =
    let config =
      {
        Skinny_mine.Config.default with
        mode;
        closed_growth = true;
        max_patterns = Some 50000;
      }
    in
    let r, t =
      Util.time (fun () -> Skinny_mine.mine ~config g ~l:6 ~delta:2 ~sigma:2)
    in
    Printf.printf "%-8s%-12s%-12d%-26s\n%!" name (Util.fmt_time t)
      (List.length r.Skinny_mine.patterns)
      note
  in
  run Constraints.Naive "naive" "recompute every step";
  run Constraints.Exact "exact" "local checks, exact triggers";
  run Constraints.Paper "paper" "literal Thm-3 triggers (may over-accept)"

let direct_vs_enumerate ~seed ~n ~cap () =
  Util.section
    "Ablation 3: direct mining vs enumerate-and-check (complete mining + \
     skinny filter)";
  let g = ablation_graph ~seed:(seed + 2) ~n in
  let l = 5 and delta = 2 and sigma = 2 in
  let direct, dt = Util.time (fun () -> Skinny_mine.mine g ~l ~delta ~sigma) in
  let enum, et =
    Util.time (fun () ->
        let out =
          Spm_gspan.Moss.mine ~deadline:cap ~max_edges:(3 * l) ~graph:g ~sigma ()
        in
        let filtered =
          List.filter
            (fun r ->
              Skinny_mine.is_target r.Spm_gspan.Engine.pattern ~l ~delta)
            out.Spm_gspan.Engine.results
        in
        (filtered, out.Spm_gspan.Engine.complete))
  in
  let filtered, complete = enum in
  Printf.printf "direct:            %.3fs, %d patterns\n%!" dt
    (List.length direct.Skinny_mine.patterns);
  Printf.printf "enumerate-and-check: %.3fs, %d patterns%s\n%!" et
    (List.length filtered)
    (if complete then "" else " (TIMED OUT before completing)")
