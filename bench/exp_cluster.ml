(* The sharded serving tier under load: an open-loop, zipf-keyed query
   stream against the same mined corpus partitioned into 1/2/4/8 shards,
   each layout fronted by a router on an ephemeral port with one worker
   per shard. Reports client-observed throughput, p50/p95/p99 latency and
   the planner's pruning effectiveness (fraction of shards contacted per
   plannable query) into BENCH_cluster.json.

   Open-loop means arrivals are scheduled on a fixed clock, not gated on
   completions: each request's latency is measured from its {e scheduled}
   arrival to its response, so queueing delay behind a slow layout counts
   against that layout instead of silently thinning the offered load. *)

open Spm_graph
open Spm_core
module Store = Spm_store.Store
module Protocol = Spm_server.Protocol
module Server = Spm_server.Server
module Client = Spm_server.Client
module Partition = Spm_cluster.Partition
module Worker = Spm_cluster.Worker
module Router = Spm_cluster.Router
module Sampler = Spm_workload.Sampler

let serving_graph ~seed ~n ~f =
  let st = Gen.rng (seed + n) in
  let bg = Gen.erdos_renyi st ~n ~avg_degree:2.0 ~num_labels:f in
  let b = Graph.Builder.of_graph bg in
  for _ = 1 to 4 do
    let pat =
      Gen.random_skinny_pattern st ~backbone:4 ~delta:1 ~twigs:2 ~num_labels:f
    in
    ignore (Gen.inject st b ~pattern:pat ~copies:4 ())
  done;
  Graph.Builder.freeze b

let mined_store ~seed ~n ~f =
  let g = serving_graph ~seed ~n ~f in
  let r = Skinny_mine.mine g ~l:4 ~delta:2 ~sigma:2 in
  Store.of_result ~graph:g ~l:4 ~delta:2 ~sigma:2 ~closed_growth:false r

(* The key space: distinct label multisets of resident patterns. A zipf
   draw picks a key; the query is the Lookup with that exact multiset —
   the planner only contacts shards whose summaries carry it. *)
let lookup_keys (s : Store.pattern_store) ~cap =
  let tbl = Hashtbl.create 64 in
  let keys = ref [] in
  List.iter
    (fun (m : Skinny_mine.mined) ->
      let labels =
        List.sort compare (Array.to_list (Graph.labels m.Skinny_mine.pattern))
      in
      if not (Hashtbl.mem tbl labels) then begin
        Hashtbl.add tbl labels ();
        keys := labels :: !keys
      end)
    s.Store.patterns;
  let arr = Array.of_list (List.rev !keys) in
  Array.sub arr 0 (min cap (Array.length arr))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

type layout_result = {
  shards : int;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  contacted_fraction : float;
  errors : int;
}

let with_sharded_cluster ~store ~shards f =
  let dir =
    Filename.temp_file "spm_cluster_bench" "" |> fun p ->
    Sys.remove p;
    Unix.mkdir p 0o700;
    p
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with _ -> ())
    (fun () ->
      let base = Filename.concat dir "corpus" in
      let manifest = Partition.write ~base ~shards store in
      let workers =
        Array.init shards (fun i ->
            (* Shard workers open their stores through the mmap path: at
               serving scale the shard file is the working set, not a
               buffer to copy. *)
            Worker.start ~jobs:1
              (Store.load_mapped (Partition.shard_file ~base ~shard:i ~shards)))
      in
      Fun.protect
        ~finally:(fun () -> Array.iter Worker.stop workers)
        (fun () ->
          let endpoints =
            Array.map (fun w -> ("127.0.0.1", Worker.port w)) workers
          in
          let router =
            Router.create ~deadline:30.0 ~manifest ~endpoints ()
          in
          let fd, port = Server.listen ~port:0 () in
          let th = Thread.create (fun () -> Router.serve router fd) () in
          Fun.protect
            ~finally:(fun () ->
              (try Client.with_connection ~port Client.shutdown
               with _ -> ());
              Thread.join th)
            (fun () -> f ~router ~port)))

(* One open-loop run: [requests] arrivals at [rate]/s, keys pre-drawn from
   the zipf sampler, served by [clients] connections racing down the shared
   schedule. *)
let drive ~port ~keys ~sampler ~requests ~rate ~clients =
  let schedule =
    Array.init requests (fun i ->
        (float_of_int i /. rate, keys.(Sampler.next sampler)))
  in
  let latencies = Array.make requests 0.0 in
  let errors = ref 0 in
  let next = ref 0 in
  let lock = Mutex.create () in
  let claim () =
    Mutex.lock lock;
    let i = !next in
    if i < requests then incr next;
    Mutex.unlock lock;
    if i < requests then Some i else None
  in
  let t0 = Unix.gettimeofday () +. 0.05 in
  let worker () =
    Client.with_connection ~port (fun c ->
        let rec loop () =
          match claim () with
          | None -> ()
          | Some i ->
            let arrival, labels = schedule.(i) in
            let wait = t0 +. arrival -. Unix.gettimeofday () in
            if wait > 0.0 then Thread.delay wait;
            (match
               Client.lookup c (Protocol.lookup_params ~labels ())
             with
            | _ -> ()
            | exception _ ->
              Mutex.lock lock;
              incr errors;
              Mutex.unlock lock);
            latencies.(i) <- Unix.gettimeofday () -. (t0 +. arrival);
            loop ()
        in
        loop ())
  in
  let threads = Array.init clients (fun _ -> Thread.create worker ()) in
  Array.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  (latencies, elapsed, !errors)

let run_layout ~store ~keys ~requests ~rate ~clients ~zipf_seed ~shards =
  with_sharded_cluster ~store ~shards (fun ~router ~port ->
      (* Same seed per layout: every shard count faces the identical
         arrival sequence. *)
      let sampler =
        Sampler.zipf ~s:1.2 ~seed:zipf_seed ~n:(Array.length keys) ()
      in
      let latencies, elapsed, errors =
        drive ~port ~keys ~sampler ~requests ~rate ~clients
      in
      let contacted, pruned = Router.pruning router in
      let sorted = Array.copy latencies in
      Array.sort compare sorted;
      let ms p = 1000.0 *. percentile sorted p in
      {
        shards;
        throughput_rps = float_of_int requests /. elapsed;
        p50_ms = ms 0.50;
        p95_ms = ms 0.95;
        p99_ms = ms 0.99;
        contacted_fraction =
          (let total = contacted + pruned in
           if total = 0 then 1.0
           else float_of_int contacted /. float_of_int total);
        errors;
      })

let layout_json r =
  Printf.sprintf
    "{\"shards\": %d, \"throughput_rps\": %.1f, \"p50_ms\": %.3f, \
     \"p95_ms\": %.3f, \"p99_ms\": %.3f, \"contacted_fraction\": %.3f, \
     \"errors\": %d}"
    r.shards r.throughput_rps r.p50_ms r.p95_ms r.p99_ms r.contacted_fraction
    r.errors

let run ~seed ?(n = 300) ?(shard_counts = [ 1; 2; 4; 8 ])
    ?(requests = 4000) ?(rate = 2000.0) ?(clients = 16) () =
  Util.section
    (Printf.sprintf
       "Cluster: open-loop zipf lookups against 1/2/4/8-shard layouts \
        (%d req at %.0f/s)"
       requests rate);
  let f = 30 in
  let store, mine_seconds =
    Util.time (fun () -> mined_store ~seed ~n ~f)
  in
  let keys = lookup_keys store ~cap:64 in
  Printf.printf
    "  corpus: %d patterns (%d distinct lookup keys) mined in %s\n%!"
    (List.length store.Store.patterns)
    (Array.length keys)
    (String.trim (Util.fmt_time mine_seconds));
  Util.print_row_header
    [ (8, "shards"); (9, "req/s"); (10, "p50 ms"); (10, "p95 ms");
      (10, "p99 ms"); (12, "contacted"); (8, "errors") ];
  let results =
    List.map
      (fun shards ->
        let r =
          run_layout ~store ~keys ~requests ~rate ~clients
            ~zipf_seed:(seed + 31) ~shards
        in
        Printf.printf "%-8d%9.1f%10.3f%10.3f%10.3f%11.0f%%%8d\n%!" r.shards
          r.throughput_rps r.p50_ms r.p95_ms r.p99_ms
          (100.0 *. r.contacted_fraction)
          r.errors;
        r)
      shard_counts
  in
  let json =
    Printf.sprintf
      "{\"seed\": %d, \"n\": %d, \"requests\": %d, \"rate\": %.1f, \
       \"clients\": %d, \"zipf_s\": 1.2, \"keys\": %d, \"layouts\": [%s]}"
      seed n requests rate clients (Array.length keys)
      (String.concat ", " (List.map layout_json results))
  in
  let oc = open_out "BENCH_cluster.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  cluster measurements written to BENCH_cluster.json\n%!";
  json

(* CI smoke: partition a small corpus into 2 shards, serve it, and assert
   the router's answers — planner-pruned lookup, full-scatter lookup, the
   resident mine, and one Update — byte-identical to a single-process
   server over the unsharded store, under a wall-clock ceiling. Exits
   nonzero on any violation. *)

let render (ms : Skinny_mine.mined list) =
  String.concat "\n"
    (List.map
       (fun (m : Skinny_mine.mined) ->
         Printf.sprintf "%s support %d diam %s"
           (Io.to_string m.Skinny_mine.pattern)
           m.Skinny_mine.support
           (String.concat " "
              (Array.to_list
                 (Array.map string_of_int m.Skinny_mine.diameter_labels))))
       ms)

let smoke ~seed () =
  let t0 = Unix.gettimeofday () in
  let store = mined_store ~seed ~n:150 ~f:20 in
  let keys = lookup_keys store ~cap:8 in
  let reference = Server.create ~jobs:1 () in
  Server.set_store reference store;
  let failures = ref [] in
  let ensure what ok = if not ok then failures := what :: !failures in
  with_sharded_cluster ~store ~shards:2 (fun ~router ~port ->
      let identical what req =
        let single =
          match (Server.handle reference req).Protocol.payload with
          | Protocol.Patterns ms -> render ms
          | _ -> "single-process error"
        in
        let routed =
          Client.with_connection ~port (fun c ->
              match (Client.call c req).Protocol.payload with
              | Protocol.Patterns ms -> render ms
              | _ -> "router error")
        in
        ensure (what ^ " byte-identical") (single = routed)
      in
      identical "planner-pruned lookup"
        (Protocol.Lookup
           (Protocol.lookup_params ~labels:keys.(0) ()));
      identical "full-scatter lookup"
        (Protocol.Lookup (Protocol.lookup_params ()));
      identical "resident mine"
        (Protocol.Mine
           { Protocol.l = 4; delta = 2; sigma = 2; closed_growth = false; family = Spm_core.Constraints.Skinny });
      (* The second constraint family through the same sharded tier: both
         sides re-mine (the resident store is skinny), and the router's
         merge of owned clusters must still match the reference bytes. *)
      identical "neighborhood mine"
        (Protocol.Mine
           (Protocol.mine_params
              ~family:(Spm_core.Constraints.Neighborhood { center = None })
              ~l:0 ~delta:1 ~sigma:2 ()));
      let contacted, pruned = Router.pruning router in
      ensure "planner pruned at least one shard" (pruned > 0);
      ensure "scatter contacted at least one shard" (contacted > 0);
      (* One committed update, then byte-identity again at the new
         version. *)
      let g = store.Store.graph in
      let n = Graph.n g in
      let rec fresh u v =
        if v >= n then fresh (u + 1) (u + 2)
        else if not (Graph.has_edge g u v) then (u, v)
        else fresh u (v + 1)
      in
      let u, v = fresh 0 1 in
      let edits = [ Delta.Add_edge (u, v) ] in
      let single_diff =
        match
          (Server.handle reference (Protocol.Update { Protocol.edits }))
            .Protocol.payload
        with
        | Protocol.Update_reply r -> r
        | _ -> failwith "single-process update failed"
      in
      let routed_diff =
        Client.with_connection ~port (fun c -> Client.update c edits)
      in
      ensure "update version agrees"
        (single_diff.Protocol.new_version = routed_diff.Protocol.new_version);
      ensure "update diff byte-identical"
        (render single_diff.Protocol.added = render routed_diff.Protocol.added
        && render single_diff.Protocol.removed
           = render routed_diff.Protocol.removed);
      identical "post-update lookup"
        (Protocol.Lookup (Protocol.lookup_params ())));
  let total = Unix.gettimeofday () -. t0 in
  ensure "whole smoke under 300s" (total < 300.0);
  match !failures with
  | [] -> Printf.printf "cluster smoke PASS in %.1fs\n%!" total
  | fs ->
    List.iter (Printf.eprintf "cluster smoke FAIL: %s\n%!") fs;
    exit 1
