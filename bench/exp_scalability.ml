(* Scalability experiments: Figures 11-13 (runtime vs |V| against MoSS,
   SUBDUE, SpiderMine) and Figures 14-15 (stage-wise runtime and pattern
   counts on larger graphs). *)

open Spm_graph
open Spm_core
open Spm_baselines

(* A sweep graph: ER background with one injected skinny pattern so the
   mining task is non-trivial at every size. *)
let sweep_graph ~seed ~n ~deg ~f ~l =
  let st = Gen.rng (seed + n) in
  let bg = Gen.erdos_renyi st ~n ~avg_degree:deg ~num_labels:f in
  let b = Graph.Builder.of_graph bg in
  let pat = Gen.random_skinny_pattern st ~backbone:l ~delta:1 ~twigs:2 ~num_labels:f in
  ignore (Gen.inject st b ~pattern:pat ~copies:2 ());
  Graph.Builder.freeze b

let closed ~jobs =
  { Skinny_mine.Config.default with closed_growth = true; jobs }

let figure_11 ~seed ~sizes ~moss_cap ?(jobs = 1) () =
  Util.section "Figure 11: runtime vs MoSS (deg = 2, f = 70)";
  Util.print_row_header [ (8, "|V|"); (10, "MoSS"); (12, "SkinnyMine") ];
  List.iter
    (fun n ->
      let g = sweep_graph ~seed ~n ~deg:2.0 ~f:70 ~l:4 in
      let moss, mt =
        Util.time (fun () ->
            Spm_gspan.Moss.mine ~deadline:moss_cap ~max_edges:8 ~graph:g ~sigma:2 ())
      in
      let mt = if moss.Spm_gspan.Engine.complete then mt else -1.0 in
      let _, st = Util.time (fun () ->
            Skinny_mine.mine ~config:(closed ~jobs) g ~l:4 ~delta:2 ~sigma:2) in
      Printf.printf "%-8d%-10s%-12s\n%!" n (Util.fmt_time mt) (Util.fmt_time st))
    sizes

let figure_12 ~seed ~sizes ?(jobs = 1) () =
  Util.section "Figure 12: runtime vs SUBDUE (deg = 3, f = 100)";
  Util.print_row_header [ (8, "|V|"); (10, "SUBDUE"); (12, "SkinnyMine") ];
  List.iter
    (fun n ->
      let g = sweep_graph ~seed:(seed + 1) ~n ~deg:3.0 ~f:100 ~l:5 in
      let _, bt = Util.time (fun () -> Subdue.mine ~iterations:40 ~graph:g ()) in
      let _, st = Util.time (fun () ->
            Skinny_mine.mine ~config:(closed ~jobs) g ~l:5 ~delta:2 ~sigma:2) in
      Printf.printf "%-8d%-10s%-12s\n%!" n (Util.fmt_time bt) (Util.fmt_time st))
    sizes

let figure_13 ~seed ~sizes ?(jobs = 1) () =
  Util.section "Figure 13: runtime vs SpiderMine (deg = 3, f = 100, K = 10)";
  Util.print_row_header [ (8, "|V|"); (12, "SpiderMine"); (12, "SkinnyMine") ];
  List.iter
    (fun n ->
      let g = sweep_graph ~seed:(seed + 2) ~n ~deg:3.0 ~f:100 ~l:5 in
      let _, bt =
        Util.time (fun () ->
            Spider_mine.mine ~rng:(Gen.rng (seed + n)) ~seeds:100 ~graph:g
              ~sigma:2 ~k:10 ())
      in
      let _, st = Util.time (fun () ->
            Skinny_mine.mine ~config:(closed ~jobs) g ~l:5 ~delta:2 ~sigma:2) in
      Printf.printf "%-8d%-12s%-12s\n%!" n (Util.fmt_time bt) (Util.fmt_time st))
    sizes

let figures_14_15 ~seed ~sizes ?(jobs = 1) () =
  Util.section
    "Figures 14-15: stage runtimes and pattern counts on larger graphs (l in \
     4..6, delta = 3, sigma = 2, deg = 3, f = 80)";
  Util.print_row_header
    [ (9, "|V|"); (14, "I: DiamMine"); (14, "II: LevelGrow"); (10, "patterns") ];
  List.iter
    (fun n ->
      let g = sweep_graph ~seed:(seed + 3) ~n ~deg:3.0 ~f:80 ~l:6 in
      let idx, diam_t =
        Util.time (fun () -> Diameter_index.build ~jobs g ~sigma:2 ~l_max:6)
      in
      let results, grow_t =
        Util.time (fun () ->
            List.map
              (fun l ->
                Diameter_index.request ~config:(closed ~jobs) idx ~l ~delta:3)
              [ 4; 5; 6 ])
      in
      let count =
        List.fold_left
          (fun acc r -> acc + List.length r.Skinny_mine.patterns)
          0 results
      in
      Printf.printf "%-9d%-14s%-14s%-10d\n%!" n (Util.fmt_time diam_t)
        (Util.fmt_time grow_t) count)
    sizes
