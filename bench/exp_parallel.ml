(* Multicore engine experiment: the same mining problem at increasing [jobs],
   verifying the determinism guarantee (identical pattern sets) and
   reporting wall-clock scaling. This is the bench backing the engine layer
   of DESIGN.md; run with a large -n (e.g. 50000) for meaningful numbers. *)

open Spm_graph
open Spm_pattern
open Spm_core

let sweep_graph ~seed ~n ~deg ~f ~l =
  let st = Gen.rng (seed + n) in
  let bg = Gen.erdos_renyi st ~n ~avg_degree:deg ~num_labels:f in
  let b = Graph.Builder.of_graph bg in
  for _ = 1 to 3 do
    let pat =
      Gen.random_skinny_pattern st ~backbone:l ~delta:1 ~twigs:2 ~num_labels:f
    in
    ignore (Gen.inject st b ~pattern:pat ~copies:3 ())
  done;
  Graph.Builder.freeze b

let signature r =
  List.map
    (fun m -> (Canon.key m.Skinny_mine.pattern, m.Skinny_mine.support))
    r.Skinny_mine.patterns

let run ~seed ~n ?(jobs_list = [ 1; 2; 4 ]) () =
  Util.section
    (Printf.sprintf
       "Parallel engine: jobs sweep on a %d-vertex graph (l = 5, delta = 2, \
        sigma = 2, closed growth)"
       n);
  let g = sweep_graph ~seed ~n ~deg:2.0 ~f:70 ~l:5 in
  Printf.printf "  graph: %d vertices, %d edges; %d core(s) available\n%!"
    (Graph.n g) (Graph.m g)
    (Domain.recommended_domain_count ());
  Util.print_row_header
    [ (7, "jobs"); (10, "total"); (10, "stage I"); (10, "stage II");
      (10, "patterns"); (9, "speedup") ];
  let baseline = ref None in
  let reference = ref None in
  List.iter
    (fun jobs ->
      let config =
        { Skinny_mine.Config.default with closed_growth = true; jobs }
      in
      let r = Skinny_mine.mine ~config g ~l:5 ~delta:2 ~sigma:2 in
      let s = r.Skinny_mine.stats in
      let total = s.Skinny_mine.total_seconds in
      if !baseline = None then baseline := Some total;
      let speedup = Option.get !baseline /. total in
      (* Determinism check: every jobs setting must reproduce the
         sequential (pattern, support) list exactly. *)
      let sg = signature r in
      (match !reference with
      | None -> reference := Some sg
      | Some expected ->
        if sg <> expected then
          Printf.printf "  !! jobs=%d diverged from the sequential result\n%!"
            jobs);
      Printf.printf "%-7d%-10s%-10s%-10s%-10d%.2fx\n%!" jobs
        (Util.fmt_time total)
        (Util.fmt_time s.Skinny_mine.diam_stats.Diam_mine.total_seconds)
        (Util.fmt_time s.Skinny_mine.grow_seconds)
        (List.length r.Skinny_mine.patterns)
        speedup;
      if jobs = List.nth jobs_list (List.length jobs_list - 1) then
        Format.printf "  @[<v 2>stats at jobs=%d:@,%a@]@." jobs
          Skinny_mine.Stats.pp s)
    jobs_list;
  Printf.printf "  determinism: %s\n%!"
    (if !reference <> None then "all jobs settings bit-identical"
     else "n/a")
