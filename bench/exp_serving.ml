(* SkinnyServe experiment: an in-process server on an ephemeral port, driven
   over the real TCP path by the blocking client. Reports throughput as the
   domain-pool width grows (containment queries fan embedding checks across
   the pool), client-observed latency percentiles, and the LRU hit rate on a
   skewed query mix. *)

open Spm_graph
open Spm_core
module Protocol = Spm_server.Protocol
module Server = Spm_server.Server
module Client = Spm_server.Client

let serving_graph ~seed ~n ~f =
  let st = Gen.rng (seed + n) in
  let bg = Gen.erdos_renyi st ~n ~avg_degree:2.0 ~num_labels:f in
  let b = Graph.Builder.of_graph bg in
  for _ = 1 to 4 do
    let pat =
      Gen.random_skinny_pattern st ~backbone:4 ~delta:1 ~twigs:2 ~num_labels:f
    in
    ignore (Gen.inject st b ~pattern:pat ~copies:4 ())
  done;
  Graph.Builder.freeze b

(* Distinct probe graphs so containment queries miss the cache; the repeated
   mine request is the cache-hit half of the mix. *)
let probes ~seed ~count ~f =
  let st = Gen.rng (seed + 71) in
  List.init count (fun _ ->
      Gen.erdos_renyi st ~n:(60 + Random.State.int st 40) ~avg_degree:2.2
        ~num_labels:f)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let run ~seed ~n ?(jobs_list = [ 1; 2; 4 ]) () =
  Util.section
    (Printf.sprintf
       "Serving: TCP query throughput vs --jobs on a %d-vertex store" n);
  let f = 30 in
  let g = serving_graph ~seed ~n ~f in
  let config = { Skinny_mine.Config.default with closed_growth = true } in
  let r, mine_seconds =
    Util.time (fun () -> Skinny_mine.mine ~config g ~l:4 ~delta:2 ~sigma:2)
  in
  let store =
    Spm_store.Store.of_result ~graph:g ~l:4 ~delta:2 ~sigma:2
      ~closed_growth:true r
  in
  Printf.printf
    "  store: %d patterns mined in %s from %d vertices / %d edges\n%!"
    (List.length store.Spm_store.Store.patterns)
    (String.trim (Util.fmt_time mine_seconds))
    (Graph.n g) (Graph.m g);
  let probe_list = probes ~seed ~count:40 ~f in
  let mine_params =
    { Protocol.l = 4; delta = 2; sigma = 2; closed_growth = true; family = Spm_core.Constraints.Skinny }
  in
  Util.print_row_header
    [ (7, "jobs"); (9, "req/s"); (10, "p50 ms"); (10, "p95 ms");
      (10, "p99 ms"); (10, "hit rate"); (9, "speedup") ];
  let baseline = ref None in
  List.iter
    (fun jobs ->
      let srv = Server.create ~jobs () in
      Server.set_store srv store;
      let fd, port = Server.listen ~port:0 () in
      let server_thread = Thread.create (fun () -> Server.serve srv fd) () in
      let latencies = ref [] in
      let (), elapsed =
        Util.time (fun () ->
            Client.with_connection ~port (fun c ->
                (* The mix: every probe is a fresh containment query; every
                   third request re-issues the resident mine (an LRU hit
                   after the first). *)
                List.iteri
                  (fun i probe ->
                    let _, dt = Util.time (fun () -> Client.contains c probe) in
                    latencies := dt :: !latencies;
                    if i mod 3 = 0 then begin
                      let _, dt =
                        Util.time (fun () -> Client.mine c mine_params)
                      in
                      latencies := dt :: !latencies
                    end)
                  probe_list))
      in
      let stats = Client.with_connection ~port Client.stats in
      Client.with_connection ~port Client.shutdown;
      Thread.join server_thread;
      let sorted = Array.of_list !latencies in
      Array.sort compare sorted;
      let requests = Array.length sorted in
      let throughput = float_of_int requests /. elapsed in
      if !baseline = None then baseline := Some elapsed;
      let hit_rate =
        float_of_int stats.Protocol.cache_hits
        /. float_of_int (max 1 stats.Protocol.requests)
      in
      Printf.printf "%-7d%-9.1f%-10.2f%-10.2f%-10.2f%-10.2f%.2fx\n%!" jobs
        throughput
        (1000.0 *. percentile sorted 0.50)
        (1000.0 *. percentile sorted 0.95)
        (1000.0 *. percentile sorted 0.99)
        hit_rate
        (Option.get !baseline /. elapsed))
    jobs_list;
  Printf.printf
    "  (containment queries fan Subiso checks across the pool; the repeated \
     mine is served from the LRU)\n%!"
