(* Out-of-core serving: how fast a multi-million-edge graph becomes
   queryable from (a) the canonical text format, (b) a full binary decode of
   a G2 store, and (c) an mmap-backed open of the same store — and at what
   peak-RSS cost. Each path runs in a forked copy of this executable
   ([--outofcore-child], dispatched in main.ml before argument parsing) so
   /proc VmHWM isolates exactly one load path per process; children print a
   single JSON line on stdout. The combined measurements are written to
   BENCH_outofcore.json. *)

open Spm_graph
module Store = Spm_store.Store

let vm_hwm_kb () =
  let ic = open_in "/proc/self/status" in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec scan () =
        match input_line ic with
        | line ->
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
            Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d kB"
              (fun kb -> kb)
          else scan ()
        | exception End_of_file -> 0
      in
      scan ())

(* One small planner-shaped query against a mapped store: the Sig_index
   prunes by label signature, then a full BFS sweeps the mapped CSR (so the
   measurement faults real payload pages, not just the header). *)
let query_mapped (s : Store.pattern_store) =
  let g = s.Store.graph in
  let idx = Spm_server.Sig_index.build s.Store.patterns in
  let probe =
    Gen.path_graph
      (Array.init (min 3 (Graph.n g)) (fun i -> Graph.label g i))
  in
  let cands = Spm_server.Sig_index.containment_candidates idx probe in
  let dist = Bfs.distances g 0 in
  let reached =
    Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 dist
  in
  (List.length cands, reached)

let child ~mode ~path =
  let t0 = Unix.gettimeofday () in
  let g, extra =
    match mode with
    | "parse" -> (Io.read_file path, "")
    | "decode" -> ((Store.load path).Store.graph, "")
    | "mmap" -> (Store.map_graph path, "")
    | "query" ->
      let s = Store.load_mapped path in
      let cands, reached = query_mapped s in
      ( s.Store.graph,
        Printf.sprintf ", \"candidates\": %d, \"reached\": %d" cands reached )
    | m -> invalid_arg (Printf.sprintf "unknown out-of-core child mode %s" m)
  in
  let seconds = Unix.gettimeofday () -. t0 in
  Printf.printf
    "{\"mode\": %S, \"seconds\": %.6f, \"vm_hwm_kb\": %d, \"n\": %d, \"m\": \
     %d%s}\n\
     %!"
    mode seconds (vm_hwm_kb ()) (Graph.n g) (Graph.m g) extra

let spawn_child ~mode ~path =
  let exe = Sys.executable_name in
  let rfd, wfd = Unix.pipe () in
  let pid =
    Unix.create_process exe
      [| exe; "--outofcore-child"; mode; path |]
      Unix.stdin wfd Unix.stderr
  in
  Unix.close wfd;
  let ic = Unix.in_channel_of_descr rfd in
  let line = try input_line ic with End_of_file -> "" in
  close_in ic;
  let _, status = Unix.waitpid [] pid in
  (match status with
  | Unix.WEXITED 0 when line <> "" -> ()
  | _ -> failwith (Printf.sprintf "out-of-core %s child failed" mode));
  line

(* Minimal field extraction from the single-line child JSON — no JSON
   library in the tree, and the shape is fixed by [child] above. *)
let json_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat in
  let len = String.length line in
  let rec find i =
    if i + plen > len then
      failwith (Printf.sprintf "missing %s in child report %s" key line)
    else if String.sub line i plen = pat then i + plen
    else find (i + 1)
  in
  let start = find 0 in
  let stop = ref start in
  while
    !stop < len
    && (match line.[!stop] with
       | '0' .. '9' | '.' | '-' | '+' | 'e' -> true
       | _ -> false)
  do
    incr stop
  done;
  String.sub line start (!stop - start)

let field_float line key = float_of_string (json_field line key)
let field_int line key = int_of_string (json_field line key)

(* The text form, streamed (Io.to_string would stage a quarter-gigabyte
   buffer at full scale). Same grammar as Io; edge order is irrelevant to
   the parser. *)
let write_text path g =
  Out_channel.with_open_bin path (fun oc ->
      for v = 0 to Graph.n g - 1 do
        Printf.fprintf oc "v %d %d\n" v (Graph.label g v)
      done;
      for u = 0 to Graph.n g - 1 do
        Graph.iter_adj g u (fun v ->
            if u < v then Printf.fprintf oc "e %d %d\n" u v)
      done)

let file_size path = (Unix.stat path).Unix.st_size

let with_bench_files ~seed ~scale ~edge_factor f =
  let st = Gen.rng (seed + 0x00c) in
  let g, gen_seconds =
    Spm_engine.Clock.time (fun () ->
        Gen.rmat st ~scale ~edge_factor ~num_labels:64)
  in
  let dir =
    Filename.temp_file "spm_outofcore" "" |> fun p ->
    Sys.remove p;
    Unix.mkdir p 0o700;
    p
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> Sys.remove (Filename.concat dir n))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f ~dir ~g ~gen_seconds)

let run ~seed ?(scale = 16) ?(edge_factor = 8) () =
  Util.section
    (Printf.sprintf
       "Out-of-core: parse vs decode vs mmap on an R-MAT 2^%d x %d graph"
       scale edge_factor);
  with_bench_files ~seed ~scale ~edge_factor
    (fun ~dir ~g ~gen_seconds ->
      Printf.printf "  generated |V|=%d |E|=%d in %.1fs\n%!" (Graph.n g)
        (Graph.m g) gen_seconds;
      let text = Filename.concat dir "graph.txt" in
      let store = Filename.concat dir "graph.spm" in
      write_text text g;
      Store.save store (Store.of_graph g);
      Printf.printf "  text %d bytes, store %d bytes\n%!" (file_size text)
        (file_size store);
      let reports =
        List.map
          (fun (mode, path) -> (mode, spawn_child ~mode ~path))
          [ ("parse", text); ("decode", store); ("mmap", store); ("query", store) ]
      in
      Util.print_row_header
        [ (8, "path"); (12, "seconds"); (14, "peak RSS MB"); (12, "|V|"); (12, "|E|") ];
      List.iter
        (fun (mode, line) ->
          Printf.printf "%-8s%12.4f%14.1f%12d%12d\n%!" mode
            (field_float line "seconds")
            (float_of_int (field_int line "vm_hwm_kb") /. 1024.)
            (field_int line "n") (field_int line "m"))
        reports;
      let seconds mode = field_float (List.assoc mode reports) "seconds" in
      let rss mode = field_int (List.assoc mode reports) "vm_hwm_kb" in
      let speedup_parse = seconds "parse" /. seconds "mmap" in
      let speedup_decode = seconds "decode" /. seconds "mmap" in
      Printf.printf
        "  mmap open is %.0fx faster than text parse, %.0fx faster than \
         binary decode\n\
         \  peak RSS: mmap %.1f MB vs decode %.1f MB vs parse %.1f MB\n%!"
        speedup_parse speedup_decode
        (float_of_int (rss "mmap") /. 1024.)
        (float_of_int (rss "decode") /. 1024.)
        (float_of_int (rss "parse") /. 1024.);
      let json =
        Printf.sprintf
          "{\"scale\": %d, \"edge_factor\": %d, \"n\": %d, \"m\": %d, \
           \"text_bytes\": %d, \"store_bytes\": %d, \"generate_seconds\": \
           %.3f, \"speedup_mmap_vs_parse\": %.1f, \
           \"speedup_mmap_vs_decode\": %.1f, \"paths\": [%s]}"
          scale edge_factor (Graph.n g) (Graph.m g) (file_size text)
          (file_size store) gen_seconds speedup_parse speedup_decode
          (String.concat ", " (List.map snd reports))
      in
      let oc = open_out "BENCH_outofcore.json" in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      Printf.printf "  out-of-core measurements written to BENCH_outofcore.json\n%!";
      json)

(* CI smoke: generate → save → mmap-open → one planner-pruned query, under
   explicit wall-clock and RSS ceilings. Exits nonzero on any violation so
   the CI job fails loudly. *)
let smoke ~seed ?(scale = 20) ?(edge_factor = 8) () =
  let t0 = Unix.gettimeofday () in
  with_bench_files ~seed ~scale ~edge_factor
    (fun ~dir ~g ~gen_seconds ->
      Printf.printf
        "outofcore smoke: |V|=%d |E|=%d generated in %.1fs\n%!" (Graph.n g)
        (Graph.m g) gen_seconds;
      let store = Filename.concat dir "graph.spm" in
      let (), save_seconds =
        Spm_engine.Clock.time (fun () -> Store.save store (Store.of_graph g))
      in
      let store_bytes = file_size store in
      Printf.printf "  store %d bytes saved in %.1fs\n%!" store_bytes
        save_seconds;
      let mmap = spawn_child ~mode:"mmap" ~path:store in
      let query = spawn_child ~mode:"query" ~path:store in
      Printf.printf "  mmap:  %s\n  query: %s\n%!" mmap query;
      let failures = ref [] in
      let ensure what ok =
        if not ok then failures := what :: !failures
      in
      ensure "mmap open under 5s" (field_float mmap "seconds" < 5.0);
      ensure "query under 120s" (field_float query "seconds" < 120.0);
      (* The mapped query's peak RSS is bounded by the file it mapped plus a
         fixed program overhead — the property that makes the path
         out-of-core at all. *)
      let rss_ceiling_kb = (store_bytes / 1024) + (512 * 1024) in
      ensure
        (Printf.sprintf "query RSS under %d kB" rss_ceiling_kb)
        (field_int query "vm_hwm_kb" < rss_ceiling_kb);
      ensure "query BFS reached vertices" (field_int query "reached" > 0);
      let total = Unix.gettimeofday () -. t0 in
      ensure "whole smoke under 600s" (total < 600.0);
      match !failures with
      | [] -> Printf.printf "outofcore smoke PASS in %.1fs\n%!" total
      | fs ->
        List.iter (Printf.eprintf "outofcore smoke FAIL: %s\n%!") fs;
        exit 1)
