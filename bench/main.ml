(* The full experiment harness: one section per table/figure of the paper's
   evaluation (§6), plus the ablations of DESIGN.md §6 and Bechamel micro
   benchmarks. Sizes are scaled so the whole run finishes in minutes; pass
   --full for paper-scale sizes (see EXPERIMENTS.md for expectations). *)

let usage =
  "usage: main.exe [--quick|--full] [--seed N] [--jobs N] [--skip SECTION]...\n\
   sections: effectiveness table3 transaction scalability constraints real \
   ablation parallel serving plan cancel incremental oracle outofcore \
   cluster micro\n\
   standalone modes: --bench-outofcore [SCALE] (just the out-of-core \
   measurements), --smoke-outofcore [SCALE] (CI smoke with wall-clock/RSS \
   ceilings), --bench-cluster (just the sharded-serving load run), \
   --smoke-cluster (CI smoke: 2-shard byte-identity under a wall-clock \
   ceiling)\n\
   a per-section timing summary is written to BENCH_run.json"

type config = {
  scale : float;
  probe_scale : float;
  tx_scale : float;
  sweep_sizes : int list;
  large_sizes : int list;
  l_values : int list;
  deltas : int list;
  constraint_n : int;
  parallel_n : int;
  outofcore_scale : int;
  moss_cap : float;
  seed : int;
  jobs : int;
  skip : string list;
}

let quick =
  {
    scale = 0.3;
    probe_scale = 0.2;
    tx_scale = 0.1;
    sweep_sizes = [ 100; 200; 300; 400 ];
    large_sizes = [ 500; 1000; 2000 ];
    l_values = [ 2; 3; 4; 5; 6; 7; 8 ];
    deltas = [ 0; 1; 2; 3 ];
    constraint_n = 800;
    parallel_n = 3000;
    outofcore_scale = 15;
    moss_cap = 5.0;
    seed = 2013;
    jobs = Spm_engine.Pool.default_jobs ();
    skip = [];
  }

let full =
  {
    quick with
    scale = 1.0;
    probe_scale = 1.0;
    tx_scale = 1.0;
    sweep_sizes = [ 500; 1500; 3000; 4500; 6000 ];
    large_sizes = [ 10000; 50000; 100000; 200000; 300000 ];
    l_values = [ 2; 4; 6; 8; 10; 12; 14; 16; 18 ];
    deltas = [ 0; 1; 2; 3; 4; 5; 6 ];
    constraint_n = 10000;
    parallel_n = 50000;
    outofcore_scale = 20;
    moss_cap = 60.0;
  }

let parse_args () =
  let cfg = ref quick in
  let rec loop = function
    | [] -> ()
    | "--full" :: rest ->
      cfg := { full with skip = !cfg.skip; seed = !cfg.seed; jobs = !cfg.jobs };
      loop rest
    | "--quick" :: rest -> loop rest
    | "--seed" :: n :: rest ->
      cfg := { !cfg with seed = int_of_string n };
      loop rest
    | "--jobs" :: n :: rest ->
      cfg := { !cfg with jobs = max 1 (int_of_string n) };
      loop rest
    | "--skip" :: s :: rest ->
      cfg := { !cfg with skip = s :: !cfg.skip };
      loop rest
    | "--help" :: _ ->
      print_endline usage;
      exit 0
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n%s\n%!" arg usage;
      exit 2
  in
  loop (List.tl (Array.to_list Sys.argv));
  !cfg

(* Per-section wall-clock times plus any section-provided JSON details,
   flushed to BENCH_run.json at the end so CI can archive one machine-readable
   artifact per harness run. *)
let summary : (string * float * string option) list ref = ref []

let summary_json cfg =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"scale\": %.2f, \"seed\": %d, \"jobs\": %d, \"sections\": {"
       cfg.scale cfg.seed cfg.jobs);
  List.iteri
    (fun i (name, seconds, details) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "\"%s\": {\"seconds\": %.3f%s}" name seconds
           (match details with
           | None -> ""
           | Some d -> Printf.sprintf ", \"details\": %s" d)))
    (List.rev !summary);
  Buffer.add_string b "}}";
  Buffer.contents b

let write_summary cfg =
  let oc = open_out "BENCH_run.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (summary_json cfg);
      output_char oc '\n');
  Printf.printf "\nsection timing summary written to BENCH_run.json\n%!"

let () =
  (* Standalone modes dispatch before argument parsing: forked out-of-core
     children must not re-enter the harness, and the CI smoke runs alone. *)
  (match Array.to_list Sys.argv with
  | _ :: "--outofcore-child" :: mode :: path :: _ ->
    Exp_outofcore.child ~mode ~path;
    exit 0
  | _ :: "--smoke-outofcore" :: rest ->
    let scale = match rest with s :: _ -> int_of_string s | [] -> 20 in
    Exp_outofcore.smoke ~seed:2013 ~scale ();
    exit 0
  | _ :: "--bench-outofcore" :: rest ->
    let scale = match rest with s :: _ -> int_of_string s | [] -> 20 in
    ignore (Exp_outofcore.run ~seed:2013 ~scale ());
    exit 0
  | _ :: "--smoke-cluster" :: _ ->
    Exp_cluster.smoke ~seed:2013 ();
    exit 0
  | _ :: "--bench-cluster" :: _ ->
    ignore (Exp_cluster.run ~seed:2013 ());
    exit 0
  | _ -> ());
  let cfg = parse_args () in
  let enabled name = not (List.mem name cfg.skip) in
  let timed name f =
    if enabled name then begin
      let details, seconds = Util.time f in
      summary := (name, seconds, details) :: !summary
    end
  in
  let plain f () =
    f ();
    None
  in
  Printf.printf
    "SkinnyMine reproduction harness (SIGMOD'13) — scale %.2f, seed %d, jobs %d\n%!"
    cfg.scale cfg.seed cfg.jobs;
  Util.section "Tables 1-2: data settings";
  List.iter
    (fun g ->
      Printf.printf "  GID %d: %s\n%!" g (Spm_workload.Settings.gid_description g))
    [ 1; 2; 3; 4; 5 ];
  timed "effectiveness"
    (plain (fun () ->
         let runs =
           Exp_effectiveness.figures_4_to_8 ~scale:cfg.scale ~seed:cfg.seed
             ~moss_cap:cfg.moss_cap ~jobs:cfg.jobs ()
         in
         Exp_effectiveness.figure_20 runs));
  timed "table3"
    (plain (fun () ->
         Exp_effectiveness.table_3 ~scale:cfg.probe_scale ~seed:cfg.seed
           ~jobs:cfg.jobs ()));
  timed "transaction"
    (plain (fun () ->
         Exp_transaction.figure_9 ~scale:cfg.tx_scale ~seed:cfg.seed
           ~jobs:cfg.jobs ();
         Exp_transaction.figure_10 ~scale:cfg.tx_scale ~seed:cfg.seed
           ~jobs:cfg.jobs ()));
  timed "scalability"
    (plain (fun () ->
         Exp_scalability.figure_11 ~seed:cfg.seed ~sizes:cfg.sweep_sizes
           ~moss_cap:cfg.moss_cap ~jobs:cfg.jobs ();
         Exp_scalability.figure_12 ~seed:cfg.seed ~sizes:cfg.sweep_sizes
           ~jobs:cfg.jobs ();
         Exp_scalability.figure_13 ~seed:cfg.seed ~sizes:cfg.sweep_sizes
           ~jobs:cfg.jobs ();
         Exp_scalability.figures_14_15 ~seed:cfg.seed ~sizes:cfg.large_sizes
           ~jobs:cfg.jobs ()));
  timed "constraints"
    (plain (fun () ->
         Exp_constraints.figures_16_17 ~seed:cfg.seed ~n:cfg.constraint_n
           ~f:25 ~l_values:cfg.l_values ();
         Exp_constraints.figures_18_19 ~seed:cfg.seed ~n:cfg.constraint_n
           ~f:40 ~l:8 ~deltas:cfg.deltas ();
         Exp_constraints.neighborhood ~seed:cfg.seed ~n:800 ~f:25
           ~r_values:[ 1; 2 ] ()));
  timed "real"
    (plain (fun () ->
         Exp_real.dblp ~seed:cfg.seed ~num_authors:60 ~l:10 ~jobs:cfg.jobs ();
         Exp_real.weibo ~seed:cfg.seed ~num_conversations:20 ~chain:9 ~l:8
           ~jobs:cfg.jobs ()));
  timed "ablation"
    (plain (fun () ->
         Exp_ablation.diam_mine_pruning ~seed:cfg.seed ~n:400 ();
         Exp_ablation.constraint_maintenance ~seed:cfg.seed ~n:400 ();
         Exp_ablation.direct_vs_enumerate ~seed:cfg.seed ~n:300
           ~cap:cfg.moss_cap ()));
  timed "parallel" (plain (fun () -> Exp_parallel.run ~seed:cfg.seed ~n:cfg.parallel_n ()));
  timed "serving"
    (plain (fun () -> Exp_serving.run ~seed:cfg.seed ~n:(cfg.parallel_n / 10) ()));
  timed "plan"
    (fun () ->
      Some (Exp_plan.run ~seed:cfg.seed ~scale:cfg.probe_scale ()));
  timed "cancel" (fun () -> Some (Exp_cancel.run ~seed:cfg.seed ()));
  timed "incremental"
    (fun () -> Some (Exp_incremental.run ~seed:cfg.seed ~jobs:cfg.jobs ()));
  timed "oracle" (fun () -> Some (Exp_oracle.run ()));
  timed "outofcore"
    (fun () -> Some (Exp_outofcore.run ~seed:cfg.seed ~scale:cfg.outofcore_scale ()));
  timed "cluster" (fun () -> Some (Exp_cluster.run ~seed:cfg.seed ()));
  timed "micro" (plain (fun () -> Micro.run ~scale:cfg.scale ()));
  write_summary cfg;
  Printf.printf "\nAll requested experiment sections completed.\n%!"
