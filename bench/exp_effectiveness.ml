(* Effectiveness experiments: Figures 4-8 (pattern-size distributions per
   miner on GID 1-5), Table 3 (the skinniness probe), Figure 20 (runtime
   comparison table with timeouts). *)

open Spm_graph
open Spm_pattern
open Spm_core
open Spm_baselines
open Spm_workload

type gid_run = {
  gid : int;
  skinny_orders : int list;
  spider_orders : int list;
  subdue_orders : int list;
  seus_orders : int list;
  skinny_time : float;
  spider_time : float;
  subdue_time : float;
  seus_time : float;
  moss_time : float; (* negative = timed out *)
  injected_found : int;
  injected_total : int;
}

let closed ~jobs =
  { Skinny_mine.Config.default with closed_growth = true; jobs }

let run_gid ~scale ~seed ~moss_cap ~jobs gid =
  let d = Settings.gid ~scale ~seed gid in
  let g = d.Settings.graph in
  let ld =
    match d.Settings.long_patterns with
    | inj :: _ -> Bfs.diameter inj.Settings.pattern
    | [] -> 4
  in
  let sigma = 2 in
  let skinny, skinny_time =
    Util.time (fun () ->
        Skinny_mine.mine ~config:(closed ~jobs) g ~l:ld ~delta:2 ~sigma)
  in
  let injected_found =
    List.length
      (List.filter
         (fun inj ->
           List.exists
             (fun m -> Canon.iso m.Skinny_mine.pattern inj.Settings.pattern)
             skinny.Skinny_mine.patterns)
         d.Settings.long_patterns)
  in
  let spider, spider_time =
    Util.time (fun () ->
        Spider_mine.mine ~rng:(Gen.rng (seed + gid)) ~seeds:100 ~graph:g ~sigma
          ~k:5 ())
  in
  let subdue, subdue_time = Util.time (fun () -> Subdue.mine ~graph:g ()) in
  let seus, seus_time = Util.time (fun () -> Seus.mine ~graph:g ~sigma ()) in
  let moss_out, moss_elapsed =
    Util.time (fun () ->
        Spm_gspan.Moss.mine ~deadline:moss_cap ~max_edges:(2 * ld) ~graph:g ~sigma ())
  in
  let moss_time =
    if moss_out.Spm_gspan.Engine.complete then moss_elapsed else -1.0
  in
  {
    gid;
    skinny_orders = Util.orders_of_skinny skinny;
    spider_orders =
      List.map (fun (p, _) -> Graph.n p) spider.Spider_mine.patterns;
    subdue_orders =
      List.map (fun s -> Pattern.order s.Subdue.pattern) subdue.Subdue.best;
    seus_orders = List.map (fun (p, _) -> Graph.n p) seus.Seus.patterns;
    skinny_time;
    spider_time;
    subdue_time;
    seus_time;
    moss_time;
    injected_found;
    injected_total = List.length d.Settings.long_patterns;
  }

let figures_4_to_8 ~scale ~seed ~moss_cap ?(jobs = 1) () =
  Util.section "Figures 4-8: pattern-size distributions on GID 1-5";
  Printf.printf
    "(Each histogram entry c:|V|=o means c patterns with o vertices.)\n";
  let runs = List.map (run_gid ~scale ~seed ~moss_cap ~jobs) [ 1; 2; 3; 4; 5 ] in
  List.iter
    (fun r ->
      Util.subsection
        (Printf.sprintf "Figure %d: GID %d (%s)" (r.gid + 3) r.gid
           (Settings.gid_description r.gid));
      Util.print_histogram ~name:"SUBDUE" r.subdue_orders;
      Util.print_histogram ~name:"SEuS" r.seus_orders;
      Util.print_histogram ~name:"SpiderMine" r.spider_orders;
      Util.print_histogram ~name:"SkinnyMine" r.skinny_orders;
      Printf.printf "  SkinnyMine recovered %d/%d injected long patterns\n%!"
        r.injected_found r.injected_total)
    runs;
  runs

let figure_20 runs =
  Util.section "Figure 20: runtime comparison (seconds; t/o = deadline hit)";
  Util.print_row_header
    [ (6, "GID"); (12, "SkinnyMine"); (12, "SpiderMine"); (10, "SUBDUE");
      (10, "SEuS"); (10, "MoSS") ];
  List.iter
    (fun r ->
      Printf.printf "%-6d%-12s%-12s%-10s%-10s%-10s\n%!" r.gid
        (Util.fmt_time r.skinny_time)
        (Util.fmt_time r.spider_time)
        (Util.fmt_time r.subdue_time)
        (Util.fmt_time r.seus_time)
        (Util.fmt_time r.moss_time))
    runs

let table_3 ~scale ~seed ?(jobs = 1) () =
  Util.section "Table 3: skinniness probe (which PIDs each miner captures)";
  let probe = Settings.skinniness_probe ~scale ~seed () in
  let g = probe.Settings.dataset.Settings.graph in
  let sigma = 2 in
  Util.print_row_header
    [ (5, "PID"); (6, "|V|"); (10, "diameter"); (12, "SkinnyMine"); (12, "SpiderMine") ];
  (* SkinnyMine: one request per distinct injected diameter. *)
  let spider =
    Spider_mine.mine ~rng:(Gen.rng (seed + 99)) ~seeds:150 ~d_max:4 ~graph:g
      ~sigma ~k:10 ()
  in
  List.iter2
    (fun (pid, order, diam) inj ->
      let p = inj.Settings.pattern in
      let mined = Skinny_mine.mine ~config:(closed ~jobs) g ~l:diam ~delta:4 ~sigma in
      let sk =
        List.exists
          (fun m -> Canon.iso m.Skinny_mine.pattern p)
          mined.Skinny_mine.patterns
      in
      let sp =
        List.exists (fun (q, _) -> Canon.iso q p) spider.Spider_mine.patterns
      in
      Printf.printf "%-5d%-6d%-10d%-12s%-12s\n%!" pid order diam
        (if sk then "yes" else "-")
        (if sp then "yes" else "-"))
    probe.Settings.pids probe.Settings.dataset.Settings.long_patterns
