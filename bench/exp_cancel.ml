(* Run-context costs, both directions:

   1. Overhead — threading a deadline-armed Run through an uncancelled mine
      makes every Run.check read the clock. Compare the same mine with no
      deadline vs a far-future one.
   2. Latency — how long past its deadline does a deadline-bounded server
      Mine actually take to answer? Timeout responses are never cached, so
      repeating the identical request measures a fresh cancellation each
      time; we report request-to-Timeout p50/p95 over the real TCP path. *)

open Spm_graph
open Spm_core
module Protocol = Spm_server.Protocol
module Server = Spm_server.Server
module Client = Spm_server.Client
module Run = Spm_engine.Run

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* Returns a JSON fragment for the harness summary file. *)
let run ~seed ?(overhead_n = 500) ?(requests = 8) ?(mine_timeout = 0.25) () =
  Util.section
    "Cancellation: Run.check overhead and request-to-Timeout latency";

  (* --- 1. polling overhead on a mine nobody interrupts --- *)
  let n = overhead_n in
  let g =
    Gen.erdos_renyi (Gen.rng (seed + 17)) ~n ~avg_degree:2.2 ~num_labels:12
  in
  (* Closed growth keeps the twig powerset collapsed: a ~1s sequential mine,
     long enough that per-extension polling would show up, short enough to
     repeat. *)
  let config =
    { Skinny_mine.Config.default with closed_growth = true; jobs = 1 }
  in
  let mine run =
    ignore (Skinny_mine.mine ~config ?run g ~l:4 ~delta:2 ~sigma:2)
  in
  mine None;
  (* warm-up *)
  let best f =
    let t = ref infinity in
    for _ = 1 to 3 do
      let (), dt = Util.time f in
      t := min !t dt
    done;
    !t
  in
  let bare = best (fun () -> mine None) in
  let armed =
    best (fun () -> mine (Some (Run.create ~timeout:3600.0 ())))
  in
  let overhead_pct = 100.0 *. (armed -. bare) /. bare in
  Printf.printf
    "  uncancelled mine on %d vertices: %.3fs without a deadline, %.3fs with \
     a far-future one (%+.1f%% polling overhead)\n%!"
    n bare armed overhead_pct;

  (* --- 2. request-to-Timeout latency over TCP --- *)
  let big =
    (* A graph whose full mine takes minutes: every request runs out its
       budget instead of finishing early. *)
    Gen.erdos_renyi (Gen.rng (seed + 48)) ~n:4000 ~avg_degree:3.0 ~num_labels:4
  in
  let srv = Server.create ~jobs:2 ~mine_timeout () in
  Server.set_graph srv big;
  let fd, port = Server.listen ~port:0 () in
  let server_thread = Thread.create (fun () -> Server.serve srv fd) () in
  let params = { Protocol.l = 4; delta = 2; sigma = 2; closed_growth = false; family = Spm_core.Constraints.Skinny } in
  let timeouts = ref 0 in
  let lats = ref [] in
  Client.with_connection ~port (fun c ->
      for _ = 1 to requests do
        let resp, dt = Util.time (fun () -> Client.call c (Protocol.Mine params)) in
        if resp.Protocol.status = Run.Timeout then incr timeouts;
        lats := (dt -. mine_timeout) :: !lats
      done);
  Client.with_connection ~port Client.shutdown;
  Thread.join server_thread;
  let sorted = Array.of_list !lats in
  Array.sort compare sorted;
  let p50 = 1000.0 *. percentile sorted 0.50 in
  let p95 = 1000.0 *. percentile sorted 0.95 in
  Printf.printf
    "  %d/%d deadline-bounded (%.2fs) mines answered Timeout; \
     request-to-Timeout latency beyond the deadline: p50 %.1f ms, p95 %.1f \
     ms\n%!"
    !timeouts requests mine_timeout p50 p95;
  Printf.sprintf
    "{\"overhead_pct\": %.2f, \"timeout_latency_p50_ms\": %.2f, \
     \"timeout_latency_p95_ms\": %.2f, \"timeouts\": %d, \"requests\": %d}"
    overhead_pct p50 p95 !timeouts requests
