(* Differential tests for the incremental miner: for random edit scripts
   over the oracle corpus, repairing with Incremental.update must be
   byte-identical to a from-scratch Skinny_mine.mine at every intermediate
   graph version — at jobs 1 and 4 — and the Delta merged view must agree
   with a naive edge-set model. *)

open Spm_graph
module Skinny_mine = Spm_core.Skinny_mine
module Incremental = Spm_core.Incremental
module Corpus = Spm_oracle.Corpus

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_s = Alcotest.(check string)

let render (ms : Skinny_mine.mined list) =
  let b = Buffer.create 4096 in
  List.iter
    (fun (m : Skinny_mine.mined) ->
      Buffer.add_string b (Io.to_string m.pattern);
      Buffer.add_string b (Printf.sprintf "support %d\n" m.support);
      Buffer.add_string b
        (Printf.sprintf "levels %s\n"
           (String.concat " "
              (Array.to_list (Array.map string_of_int m.levels))));
      Buffer.add_string b
        (Printf.sprintf "diam %s\n\n"
           (String.concat " "
              (Array.to_list (Array.map string_of_int m.diameter_labels)))))
    ms;
  Buffer.contents b

(* --- random edit scripts --- *)

(* A batch mixes edge insertions (biased toward fresh endpoints), deletions
   of existing edges, and the occasional new vertex, all drawn from the
   item's label universe. *)
let random_batch st dg size =
  List.init size (fun _ ->
      let n = Delta.n dg in
      let roll = Random.State.int st 10 in
      if roll = 0 then
        Delta.Add_vertex (Random.State.int st (max 1 (Delta.num_labels dg)))
      else if roll <= 6 || Delta.m dg = 0 then begin
        let u = Random.State.int st n in
        let v = Random.State.int st n in
        if u = v then Delta.Add_vertex (Random.State.int st (max 1 (Delta.num_labels dg)))
        else Delta.Add_edge (u, v)
      end
      else
        let es = Array.of_list (Delta.edges dg) in
        let u, v = es.(Random.State.int st (Array.length es)) in
        Delta.Remove_edge (u, v))

let differential_item ~jobs ~batches ~batch_size (item : Corpus.item) =
  let st = Random.State.make [| item.seed; jobs; 0xd1ff |] in
  let config = { Skinny_mine.Config.default with jobs } in
  let dg = Delta.of_graph ~rebuild_every:7 item.graph in
  let inc =
    Incremental.create ~config dg ~l:item.l ~delta:item.delta
      ~sigma:item.sigma
  in
  check_bool (item.name ^ " create complete") true (Incremental.complete inc);
  let full0 =
    Skinny_mine.mine ~config item.graph ~l:item.l ~delta:item.delta
      ~sigma:item.sigma
  in
  check_s (item.name ^ " v0") (render full0.patterns)
    (render (Incremental.patterns inc));
  let inc = ref inc in
  for b = 1 to batches do
    let edits = random_batch st (Incremental.graph !inc) batch_size in
    let inc', diff = Incremental.update !inc edits in
    inc := inc';
    check (Printf.sprintf "%s version after batch %d" item.name b) b
      (Incremental.version inc');
    check (Printf.sprintf "%s diff version %d" item.name b) b diff.version;
    let g = Delta.snapshot (Incremental.graph inc') in
    let full =
      Skinny_mine.mine ~config g ~l:item.l ~delta:item.delta ~sigma:item.sigma
    in
    check_s
      (Printf.sprintf "%s batch %d byte-identical" item.name b)
      (render full.patterns)
      (render (Incremental.patterns inc'))
  done

(* Incremental repair is skinny-only (the serving tier refuses Update on
   neighborhood stores), so the drills skip the corpus's nbr_* items. *)
let test_differential_jobs jobs () =
  List.iter
    (differential_item ~jobs ~batches:4 ~batch_size:3)
    (Corpus.skinny_items ())

(* Single-edge updates across the corpus: the latency-critical path. *)
let test_single_edge_updates () =
  List.iter
    (differential_item ~jobs:1 ~batches:6 ~batch_size:1)
    (Corpus.skinny_items ())

(* closed_only repairs per cluster; make sure the spliced result matches the
   globally filtered full mine. *)
let test_closed_only () =
  let item = Corpus.find "er12_3labels" in
  let config =
    { Skinny_mine.Config.default with closed_only = true; jobs = 2 }
  in
  let st = Random.State.make [| 77; 0xc105 |] in
  let inc =
    ref
      (Incremental.create ~config
         (Delta.of_graph item.graph)
         ~l:item.l ~delta:item.delta ~sigma:item.sigma)
  in
  for b = 1 to 3 do
    let edits = random_batch st (Incremental.graph !inc) 2 in
    let inc', _ = Incremental.update !inc edits in
    inc := inc';
    let g = Delta.snapshot (Incremental.graph inc') in
    let full =
      Skinny_mine.mine ~config g ~l:item.l ~delta:item.delta ~sigma:item.sigma
    in
    check_s
      (Printf.sprintf "closed_only batch %d" b)
      (render full.patterns)
      (render (Incremental.patterns inc'))
  done

let test_restore_roundtrip () =
  let item = Corpus.find "star6" in
  let config = Skinny_mine.Config.default in
  let dg = Delta.of_graph item.graph in
  let inc =
    Incremental.create ~config dg ~l:item.l ~delta:item.delta
      ~sigma:item.sigma
  in
  match
    Incremental.restore ~config dg ~l:item.l ~delta:item.delta
      ~sigma:item.sigma ~patterns:(Incremental.patterns inc)
  with
  | None -> Alcotest.fail "restore refused a complete pattern set"
  | Some inc' ->
    check_s "restored patterns" (render (Incremental.patterns inc))
      (render (Incremental.patterns inc'));
    (* And the restored state repairs correctly. *)
    let edits = [ Delta.Add_edge (0, 2) ] in
    let a, _ = Incremental.update inc edits in
    let b, _ = Incremental.update inc' edits in
    check_s "restored update" (render (Incremental.patterns a))
      (render (Incremental.patterns b))

let test_restore_mismatch () =
  let item = Corpus.find "star6" in
  let dg = Delta.of_graph item.graph in
  let inc =
    Incremental.create dg ~l:item.l ~delta:item.delta ~sigma:item.sigma
  in
  (* Wrong sigma: Stage I entries shift, the partition cannot line up. *)
  match
    Incremental.restore dg ~l:item.l ~delta:item.delta
      ~sigma:(item.sigma + 1000) ~patterns:(Incremental.patterns inc)
  with
  | None -> ()
  | Some _ -> Alcotest.fail "restore accepted a mismatched pattern set"

let test_rejects_global_budgets () =
  let item = Corpus.find "path8" in
  let dg = Delta.of_graph item.graph in
  let bad =
    { Skinny_mine.Config.default with max_patterns = Some 5 }
  in
  check_bool "max_patterns rejected" true
    (try
       ignore
         (Incremental.create ~config:bad dg ~l:item.l ~delta:item.delta
            ~sigma:item.sigma);
       false
     with Invalid_argument _ -> true)

let test_interrupted_update_aborts () =
  let item = Corpus.find "er14_sparse" in
  let dg = Delta.of_graph item.graph in
  let inc =
    Incremental.create dg ~l:item.l ~delta:item.delta ~sigma:item.sigma
  in
  let before = render (Incremental.patterns inc) in
  let run = Spm_engine.Run.create () in
  Spm_engine.Run.cancel run;
  let inc', diff = Incremental.update ~run inc [ Delta.Add_edge (0, 5) ] in
  check_bool "aborted status" true (diff.status <> Spm_engine.Run.Ok);
  check "no adds" 0 (List.length diff.added);
  check "version unchanged" 0 (Incremental.version inc');
  check_s "state unchanged" before (render (Incremental.patterns inc'))

(* --- Delta merged view vs a naive edge-set model --- *)

module Model = struct
  type t = { labels : int list; edges : (int * int) list }

  let of_graph g =
    { labels = Array.to_list (Graph.labels g); edges = Graph.edges g }

  let norm (u, v) = if u < v then (u, v) else (v, u)

  let apply m = function
    | Delta.Add_vertex l -> { m with labels = m.labels @ [ l ] }
    | Delta.Add_edge (u, v) ->
      let e = norm (u, v) in
      if List.mem e m.edges then m else { m with edges = e :: m.edges }
    | Delta.Remove_edge (u, v) ->
      let e = norm (u, v) in
      { m with edges = List.filter (fun e' -> e' <> e) m.edges }

  let graph m =
    Graph.Builder.of_edges ~labels:(Array.of_list m.labels) m.edges
end

let delta_agrees_with_model seed steps =
  let st = Random.State.make [| seed; 0xde17a |] in
  let g0 =
    Gen.erdos_renyi st ~n:(4 + Random.State.int st 8) ~avg_degree:2.0
      ~num_labels:3
  in
  let dg = ref (Delta.of_graph ~rebuild_every:5 g0) in
  let model = ref (Model.of_graph g0) in
  let ok = ref true in
  for _ = 1 to steps do
    let batch = random_batch st !dg (1 + Random.State.int st 3) in
    dg := Delta.apply_all !dg batch;
    List.iter (fun e -> model := Model.apply !model e) batch;
    let want = Model.graph !model in
    let got = Delta.snapshot !dg in
    ok := !ok && Graph.equal_structure want got;
    (* Merged-view reads, not just the snapshot. *)
    ok := !ok && Delta.n !dg = Graph.n want && Delta.m !dg = Graph.m want;
    ok :=
      !ok
      && List.for_all
           (fun v ->
             Delta.label !dg v = Graph.label want v
             && Delta.degree !dg v = Graph.degree want v
             && Delta.fold_adj !dg v (fun w acc -> w :: acc) []
                = Graph.fold_adj want v (fun w acc -> w :: acc) [])
           (List.init (Delta.n !dg) Fun.id);
    let nl = Delta.num_labels !dg in
    ok := !ok && nl = Graph.num_labels want;
    ok :=
      !ok
      && List.for_all
           (fun l ->
             Delta.label_freq !dg l = Graph.label_freq want l
             && Delta.vertices_with_label !dg l
                = Graph.vertices_with_label want l)
           (List.init nl Fun.id);
    ok := !ok && Delta.edges !dg = Graph.edges want
  done;
  !ok

let qcheck_delta_model =
  QCheck.Test.make ~count:60 ~name:"Delta merged view = naive edge-set model"
    QCheck.(pair (int_bound 10_000) (int_range 1 12))
    (fun (seed, steps) -> delta_agrees_with_model seed steps)

let () =
  Alcotest.run "incremental"
    [
      ( "differential",
        [
          Alcotest.test_case "corpus jobs=1" `Slow (test_differential_jobs 1);
          Alcotest.test_case "corpus jobs=4" `Slow (test_differential_jobs 4);
          Alcotest.test_case "single-edge updates" `Slow
            test_single_edge_updates;
          Alcotest.test_case "closed_only" `Quick test_closed_only;
        ] );
      ( "state",
        [
          Alcotest.test_case "restore roundtrip" `Quick test_restore_roundtrip;
          Alcotest.test_case "restore mismatch" `Quick test_restore_mismatch;
          Alcotest.test_case "rejects global budgets" `Quick
            test_rejects_global_budgets;
          Alcotest.test_case "interrupted update aborts" `Quick
            test_interrupted_update_aborts;
        ] );
      ( "delta-model",
        [ QCheck_alcotest.to_alcotest qcheck_delta_model ] );
    ]
