(* Tests for the graph substrate: construction, BFS, paths, generators, IO. *)

open Spm_graph

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Path a-b-c-d plus a chord (0,2). *)
let small () =
  Graph.Builder.of_edges ~labels:[| 0; 1; 2; 3 |] [ (0, 1); (1, 2); (2, 3); (0, 2) ]

let test_of_edges () =
  let g = small () in
  check "n" 4 (Graph.n g);
  check "m" 4 (Graph.m g);
  check "deg0" 2 (Graph.degree g 0);
  check "deg2" 3 (Graph.degree g 2);
  check_bool "edge 0-2" true (Graph.has_edge g 0 2);
  check_bool "edge 2-0" true (Graph.has_edge g 2 0);
  check_bool "no edge 0-3" false (Graph.has_edge g 0 3);
  check "label" 2 (Graph.label g 2)

let test_of_edges_dedup () =
  let g = Graph.Builder.of_edges ~labels:[| 0; 0 |] [ (0, 1); (1, 0); (0, 1) ] in
  check "m dedup" 1 (Graph.m g)

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop")
    (fun () -> ignore (Graph.Builder.of_edges ~labels:[| 0 |] [ (0, 0) ]))

let test_edges_list () =
  let g = small () in
  Alcotest.(check (list (pair int int)))
    "edges sorted" [ (0, 1); (0, 2); (1, 2); (2, 3) ] (Graph.edges g)

let test_induced () =
  let g = small () in
  let h = Graph.induced g [| 0; 2; 3 |] in
  check "ind n" 3 (Graph.n h);
  check "ind m" 2 (Graph.m h);
  check "ind label of old 2" 2 (Graph.label h 1);
  check_bool "0-2 kept" true (Graph.has_edge h 0 1);
  check_bool "2-3 kept" true (Graph.has_edge h 1 2)

let test_builder () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_vertex b 7 in
  let c = Graph.Builder.add_vertex b 8 in
  Graph.Builder.add_edge b a c;
  Graph.Builder.add_edge b a c;
  let g = Graph.Builder.freeze b in
  check "builder n" 2 (Graph.n g);
  check "builder m (idempotent)" 1 (Graph.m g);
  (* Builder remains usable after freeze. *)
  let d = Graph.Builder.add_vertex b 9 in
  Graph.Builder.add_edge b c d;
  let g2 = Graph.Builder.freeze b in
  check "extended n" 3 (Graph.n g2);
  check "extended m" 2 (Graph.m g2);
  check "first freeze untouched" 2 (Graph.n g)

let test_builder_remove_edge () =
  let b = Graph.Builder.create () in
  let u = Graph.Builder.add_vertex b 1 in
  let v = Graph.Builder.add_vertex b 2 in
  let w = Graph.Builder.add_vertex b 3 in
  Graph.Builder.add_edge b u v;
  Graph.Builder.add_edge b v w;
  check_bool "present edge removed" true (Graph.Builder.remove_edge b u v);
  check_bool "absent edge is a no-op" false (Graph.Builder.remove_edge b u v);
  check_bool "never-added edge is a no-op" false
    (Graph.Builder.remove_edge b u w);
  let g = Graph.Builder.freeze b in
  check "one edge left" 1 (Graph.m g);
  check_bool "surviving edge intact" true (Graph.has_edge g v w);
  (* Removing from either endpoint works: undirected storage. *)
  check_bool "reverse orientation removed" true
    (Graph.Builder.remove_edge b w v);
  check "empty after both removals" 0 (Graph.m (Graph.Builder.freeze b))

let test_delta_basics () =
  let g = small () in
  let d0 = Delta.of_graph g in
  check "v0" 0 (Delta.version d0);
  check "delta n" (Graph.n g) (Delta.n d0);
  check "delta m" (Graph.m g) (Delta.m d0);
  check_bool "no pending" true (Delta.pending d0 = 0);
  check_bool "snapshot of v0 is base" true
    (Graph.equal_structure g (Delta.snapshot d0));
  let d1 =
    Delta.apply_all d0
      [ Delta.Add_vertex 9; Delta.Add_edge (0, 4); Delta.Remove_edge (0, 1) ]
  in
  check "one batch, one version" 1 (Delta.version d1);
  check "new vertex visible" (Graph.n g + 1) (Delta.n d1);
  check "label of new vertex" 9 (Delta.label d1 (Graph.n g));
  check "m after add+remove" (Graph.m g) (Delta.m d1);
  check_bool "added edge" true (Delta.has_edge d1 0 4);
  check_bool "removed edge" false (Delta.has_edge d1 0 1);
  (* The original overlay is untouched: persistence. *)
  check "d0 still v0" 0 (Delta.version d0);
  check_bool "d0 still has 0-1" true (Delta.has_edge d0 0 1);
  (* Re-adding a removed edge cancels the removal; removing an added edge
     cancels the addition. *)
  let d2 = Delta.apply_all d1 [ Delta.Add_edge (0, 1); Delta.Remove_edge (0, 4) ] in
  check_bool "un-removed" true (Delta.has_edge d2 0 1);
  check_bool "un-added" false (Delta.has_edge d2 0 4);
  check_bool "back to base structure" true
    (Delta.m d2 = Graph.m g && Delta.n d2 = Graph.n g + 1);
  (* Invalid edits are rejected with the overlay unchanged. *)
  check_bool "self-loop rejected" true
    (match Delta.apply_all d2 [ Delta.Add_edge (2, 2) ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "out-of-range rejected" true
    (match Delta.apply_all d2 [ Delta.Add_edge (0, 99) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_delta_rebuild_threshold () =
  let g = small () in
  let d = ref (Delta.of_graph ~rebuild_every:2 g) in
  (* Each batch holds one edit; after crossing the threshold the overlay
     collapses into a fresh CSR base but the merged view never changes. *)
  let edits =
    [ Delta.Add_vertex 5; Delta.Add_edge (0, 4); Delta.Add_vertex 6;
      Delta.Add_edge (4, 5); Delta.Remove_edge (0, 4) ]
  in
  List.iteri
    (fun i e ->
      d := Delta.apply !d e;
      check (Printf.sprintf "version %d" (i + 1)) (i + 1) (Delta.version !d))
    edits;
  check "n" 6 (Delta.n !d);
  check_bool "4-5 present" true (Delta.has_edge !d 4 5);
  check_bool "0-4 gone" false (Delta.has_edge !d 0 4);
  check_bool "rebuild collapsed the overlay" true (Delta.pending !d <= 2)

let test_edits_io_roundtrip () =
  let edits =
    [ Delta.Add_vertex 4; Delta.Add_edge (0, 3); Delta.Remove_edge (1, 2) ]
  in
  let s = Io.edits_to_string edits in
  check_bool "text round trip" true (Io.edits_of_string s = edits);
  (* Comments, blank lines, CRLF. *)
  let noisy = "# touch up\r\n\nav 4\n  ae 0 3\t\nre 1 2\n" in
  check_bool "noisy parse" true (Io.edits_of_string noisy = edits);
  check_bool "bad line rejected with its number" true
    (match Io.edits_of_string "av 1\nzz 3 4\n" with
    | _ -> false
    | exception Failure msg ->
      (* 1-based: the bad directive is on line 2 *)
      let rec mentions i =
        i + 6 <= String.length msg
        && (String.sub msg i 6 = "line 2" || mentions (i + 1))
      in
      mentions 0)

let test_bfs_distances () =
  let g = small () in
  let d = Bfs.distances g 3 in
  Alcotest.(check (array int)) "dist from 3" [| 2; 2; 1; 0 |] d

let test_bfs_distance_pair () =
  let g = small () in
  check "d(0,3)" 2 (Bfs.distance g 0 3);
  check "d(3,3)" 0 (Bfs.distance g 3 3)

let test_bfs_disconnected () =
  let g = Graph.Builder.of_edges ~labels:[| 0; 0; 0 |] [ (0, 1) ] in
  let d = Bfs.distances g 0 in
  check "unreachable" (-1) d.(2);
  check_bool "not connected" false (Bfs.is_connected g);
  let _, k = Bfs.components g in
  check "2 components" 2 k

let test_diameter () =
  let g = small () in
  check "diameter" 2 (Bfs.diameter g);
  let path = Gen.path_graph [| 0; 1; 2; 3; 4 |] in
  check "path diameter" 4 (Bfs.diameter path);
  let u, v, d = Bfs.diameter_endpoints path in
  check "endpoints d" 4 d;
  check "endpoint u" 0 u;
  check "endpoint v" 4 v

let test_multi_source () =
  let path = Gen.path_graph [| 0; 0; 0; 0; 0 |] in
  let d = Bfs.distances_from_set path [ 0; 4 ] in
  Alcotest.(check (array int)) "multi source" [| 0; 1; 2; 1; 0 |] d

let test_dist_matrix () =
  let g = small () in
  let dm = Bfs.dist_matrix g in
  check "dm 0 3" 2 dm.(0).(3);
  check "dm 3 0" 2 dm.(3).(0);
  check "dm diag" 0 dm.(1).(1)

(* --- Paths --- *)

let test_simple_path_check () =
  let g = small () in
  check_bool "good path" true (Paths.is_simple_path g [| 3; 2; 0; 1 |]);
  check_bool "revisit" false (Paths.is_simple_path g [| 0; 1; 2; 0 |]);
  check_bool "non-edge" false (Paths.is_simple_path g [| 0; 3 |])

let test_simple_paths_count () =
  (* Triangle with distinct labels: 3 undirected paths of length 2. *)
  let tri = Graph.Builder.of_edges ~labels:[| 0; 1; 2 |] [ (0, 1); (1, 2); (0, 2) ] in
  check "len2 in triangle" 3 (List.length (Paths.simple_paths_of_length tri ~length:2));
  check "len1 in triangle" 3 (List.length (Paths.simple_paths_of_length tri ~length:1));
  (* Path graph 0-1-2-3: exactly one simple path of length 3. *)
  let p = Gen.path_graph [| 5; 6; 7; 8 |] in
  check "len3 in path" 1 (List.length (Paths.simple_paths_of_length p ~length:3))

let test_paths_canonical_orientation () =
  let p = [| 4; 2; 9 |] in
  Alcotest.(check (array int)) "orient" [| 4; 2; 9 |] (Paths.canonical_orientation p);
  let q = [| 9; 2; 4 |] in
  Alcotest.(check (array int)) "orient rev" [| 4; 2; 9 |] (Paths.canonical_orientation q)

let test_shortest_paths_between () =
  (* 4-cycle: two shortest paths between opposite corners. *)
  let c4 = Gen.cycle_graph [| 0; 1; 2; 3 |] in
  let sps = Paths.shortest_paths_between c4 0 2 in
  check "two shortest" 2 (List.length sps);
  List.iter (fun p -> check "len 2" 3 (Array.length p)) sps;
  check "none disconnected" 0
    (List.length
       (Paths.shortest_paths_between
          (Graph.Builder.of_edges ~labels:[| 0; 0; 0 |] [ (0, 1) ])
          0 2))

(* --- Generators --- *)

let test_erdos_renyi () =
  let st = Gen.rng 42 in
  let g = Gen.erdos_renyi st ~n:200 ~avg_degree:3.0 ~num_labels:5 in
  check "er n" 200 (Graph.n g);
  check "er m" 300 (Graph.m g);
  check_bool "labels in range" true
    (Array.for_all (fun l -> l >= 0 && l < 5) (Graph.labels g))

let test_gnp () =
  let st = Gen.rng 1 in
  let g = Gen.erdos_renyi_gnp st ~n:50 ~p:1.0 ~num_labels:2 in
  check "complete" (50 * 49 / 2) (Graph.m g)

let test_random_tree () =
  let st = Gen.rng 7 in
  let t = Gen.random_tree st ~n:30 ~num_labels:3 in
  check "tree edges" 29 (Graph.m t);
  check_bool "tree connected" true (Bfs.is_connected t)

let test_random_skinny_pattern () =
  let st = Gen.rng 11 in
  for backbone = 3 to 8 do
    let p = Gen.random_skinny_pattern st ~backbone ~delta:2 ~twigs:4 ~num_labels:4 in
    check (Printf.sprintf "diam %d" backbone) backbone (Bfs.diameter p);
    check_bool "connected" true (Bfs.is_connected p);
    let dist = Bfs.distances_from_set p (List.init (backbone + 1) (fun i -> i)) in
    check_bool "within delta of backbone" true
      (Array.for_all (fun d -> d >= 0 && d <= 2) dist)
  done

let test_inject () =
  let st = Gen.rng 3 in
  let bg = Gen.erdos_renyi st ~n:50 ~avg_degree:2.0 ~num_labels:3 in
  let b = Graph.Builder.of_graph bg in
  let pat = Gen.path_graph [| 0; 1; 2 |] in
  let maps = Gen.inject st b ~pattern:pat ~copies:4 () in
  let g = Graph.Builder.freeze b in
  check "injected vertices" (50 + 12) (Graph.n g);
  check "copies" 4 (Array.length maps);
  Array.iter
    (fun map ->
      Array.iteri (fun pv tv -> check "label preserved" (Graph.label pat pv) (Graph.label g tv)) map;
      Graph.iter_edges (fun u v -> check_bool "edge present" true (Graph.has_edge g map.(u) map.(v))) pat)
    maps

let test_star_and_cycle () =
  let s = Gen.star_graph ~center:9 [| 1; 2; 3 |] in
  check "star m" 3 (Graph.m s);
  check "star diameter" 2 (Bfs.diameter s);
  let c = Gen.cycle_graph [| 0; 1; 2; 3; 4 |] in
  check "cycle m" 5 (Graph.m c);
  check "cycle diameter" 2 (Bfs.diameter c)

(* --- IO --- *)

let test_io_roundtrip () =
  let g = small () in
  let g' = Io.of_string (Io.to_string g) in
  check_bool "roundtrip" true (Graph.equal_structure g g')

let test_io_db_roundtrip () =
  let st = Gen.rng 5 in
  let gs = List.init 3 (fun i -> Gen.erdos_renyi st ~n:(10 + i) ~avg_degree:2.0 ~num_labels:3) in
  let gs' = Io.db_of_string (Io.db_to_string gs) in
  check "db size" 3 (List.length gs');
  List.iter2
    (fun a b -> check_bool "each graph" true (Graph.equal_structure a b))
    gs gs'

let test_io_comments_and_errors () =
  let g = Io.of_string "# header\nv 0 5\nv 1 6 # trailing\ne 0 1\n" in
  check "parsed n" 2 (Graph.n g);
  check "parsed label" 5 (Graph.label g 0);
  (try
     ignore (Io.of_string "v 0 1\nq 3\n");
     Alcotest.fail "expected failure"
   with Failure _ -> ())

(* Graph text arrives over the wire now: the parser must shrug off CRLF
   endings, tabs and trailing whitespace, and name the 1-based offending
   line when it does reject. *)
let test_io_crlf_and_line_numbers () =
  let g = Io.of_string "v 0 5\r\nv\t1 6  \r\ne 0 1 \r\n" in
  check "crlf n" 2 (Graph.n g);
  check "crlf m" 1 (Graph.m g);
  check "crlf label" 6 (Graph.label g 1);
  let expect_line line input =
    match Io.of_string input with
    | _ -> Alcotest.failf "expected failure on %S" input
    | exception Failure msg ->
      check_bool
        (Printf.sprintf "%S names line %d (got %S)" input line msg)
        true
        (String.starts_with ~prefix:(Printf.sprintf "Io: line %d:" line) msg)
  in
  expect_line 2 "v 0 1\nv 0 2\ne 0 0\n";       (* duplicate vertex id *)
  expect_line 2 "v 0 1\ne 0 5\n";              (* dangling edge endpoint *)
  expect_line 2 "v 0 1\ne 0 0\n";              (* self-loop *)
  expect_line 3 "v 0 1\nv 1 2\ne 0 x\n";       (* bad integer *)
  expect_line 2 "v 0 1\nq 3\n";                (* unknown directive *)
  expect_line 1 "v 0\n";                       (* malformed vertex line *)
  expect_line 2 "v 0 1\ne 0 1 9\n"             (* malformed edge line *)

let test_label_table () =
  let t = Label.Table.of_names [ "A"; "B" ] in
  check "A" 0 (Option.get (Label.Table.find t "A"));
  check "B" 1 (Label.Table.find t "B" |> Option.get);
  check "intern existing" 0 (Label.Table.intern t "A");
  check "intern new" 2 (Label.Table.intern t "C");
  Alcotest.(check string) "name" "B" (Label.Table.name t 1);
  Alcotest.(check string) "unknown name" "L9" (Label.Table.name t 9)

let test_vec () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do Vec.push v i done;
  check "len" 100 (Vec.length v);
  check "get" 37 (Vec.get v 37);
  Vec.set v 37 (-1);
  check "set" (-1) (Vec.get v 37);
  check "pop" 99 (Vec.pop v);
  check "len after pop" 99 (Vec.length v);
  check "fold" (Vec.fold_left ( + ) 0 v) (List.fold_left ( + ) 0 (Vec.to_list v));
  Vec.clear v;
  check "cleared" 0 (Vec.length v)

(* --- Properties --- *)

let prop_er_connected_labels =
  QCheck.Test.make ~name:"generated labels always in range" ~count:50
    QCheck.(pair (int_range 2 60) (int_range 1 8))
    (fun (n, f) ->
      let g = Gen_qcheck.er ~seed:((n * 131) + f) ~n ~avg_degree:2.0 ~num_labels:f in
      Array.for_all (fun l -> l >= 0 && l < f) (Graph.labels g))

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"bfs distances satisfy triangle inequality over edges"
    ~count:40
    QCheck.(int_range 3 40)
    (fun n ->
      let g = Gen_qcheck.er ~seed:(n * 7) ~n ~avg_degree:3.0 ~num_labels:3 in
      let d = Bfs.distances g 0 in
      Graph.fold_edges
        (fun u v acc ->
          acc
          && (d.(u) < 0 || d.(v) < 0 || abs (d.(u) - d.(v)) <= 1))
        g true)

let prop_simple_paths_are_simple =
  QCheck.Test.make ~name:"enumerated simple paths are simple and unique" ~count:25
    QCheck.(pair (int_range 3 12) (int_range 1 3))
    (fun (n, len) ->
      let g =
        Gen_qcheck.er ~seed:(n + (len * 1000)) ~n ~avg_degree:2.5 ~num_labels:2
      in
      let ps = Paths.simple_paths_of_length g ~length:len in
      let keys = Hashtbl.create 16 in
      List.for_all
        (fun p ->
          let ok = Paths.is_simple_path g p && Array.length p = len + 1 in
          let k = Array.to_list (Paths.canonical_orientation p) in
          let fresh = not (Hashtbl.mem keys k) in
          Hashtbl.add keys k ();
          ok && fresh)
        ps)

(* parse . print = id, on arbitrary raw specs (not just ER graphs). *)
let prop_io_roundtrip =
  QCheck.Test.make ~name:"io roundtrip preserves structure" ~count:60
    (Gen_qcheck.arb_spec ())
    (fun s ->
      let g = Gen_qcheck.graph_of_spec s in
      Graph.equal_structure g (Io.of_string (Io.to_string g)))

(* [to_string] output is the canonical form: parsing it back and reprinting
   must reproduce it byte-for-byte (print . parse = id on canonical text). *)
let prop_io_print_parse_fixpoint =
  QCheck.Test.make ~name:"printed form is a parse/print fixpoint" ~count:60
    (Gen_qcheck.arb_spec ())
    (fun s ->
      let text = Io.to_string (Gen_qcheck.graph_of_spec s) in
      Io.to_string (Io.of_string text) = text)

(* The parser shrugs off CRLF endings, tabs and trailing blanks; reprinting
   the mangled text restores the canonical form exactly. *)
let prop_io_tolerates_crlf_tabs =
  QCheck.Test.make ~name:"CRLF/tab mangling parses back to the canonical form"
    ~count:60
    (QCheck.pair (Gen_qcheck.arb_spec ()) QCheck.small_nat)
    (fun (s, salt) ->
      let text = Io.to_string (Gen_qcheck.graph_of_spec s) in
      let mangled = Buffer.create (String.length text * 2) in
      String.iteri
        (fun i c ->
          match c with
          | '\n' ->
            (* Cycle through line-ending and trailing-blank variants. *)
            (match (i + salt) mod 3 with
            | 0 -> Buffer.add_string mangled "\r\n"
            | 1 -> Buffer.add_string mangled " \r\n"
            | _ -> Buffer.add_char mangled '\n')
          | ' ' ->
            if (i + salt) mod 2 = 0 then Buffer.add_char mangled '\t'
            else Buffer.add_string mangled "  "
          | c -> Buffer.add_char mangled c)
        text;
      let g = Io.of_string (Buffer.contents mangled) in
      Graph.equal_structure g (Gen_qcheck.graph_of_spec s)
      && Io.to_string g = text)

(* --- CSR substrate vs a naive edge-set model ---

   Raw {!Gen_qcheck.spec} instances — duplicate and reversed edges included,
   exercising [of_edges] normalization — checked against a plain Hashtbl
   edge-set model of the same input. *)

let model_instance seed =
  let s = Gen_qcheck.spec_of_seed seed in
  (s.Gen_qcheck.num_labels, s.Gen_qcheck.labels, s.Gen_qcheck.edges)

let edge_set edges =
  let t = Hashtbl.create 64 in
  List.iter (fun (u, v) -> Hashtbl.replace t (min u v, max u v) ()) edges;
  t

let model_adj n edges v =
  let set = edge_set edges in
  List.init n (fun u -> u)
  |> List.filter (fun u -> u <> v && Hashtbl.mem set (min u v, max u v))

let prop_csr_has_edge_model =
  QCheck.Test.make ~name:"has_edge agrees with edge-set model and is symmetric"
    ~count:80 QCheck.small_nat (fun seed ->
      let _, labels, edges = model_instance seed in
      let n = Array.length labels in
      let g = Graph.Builder.of_edges ~labels edges in
      let set = edge_set edges in
      let ok = ref (Graph.m g = Hashtbl.length set) in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let expect = u <> v && Hashtbl.mem set (min u v, max u v) in
          if Graph.has_edge g u v <> expect then ok := false;
          if Graph.has_edge g u v <> Graph.has_edge g v u then ok := false
        done
      done;
      !ok)

let prop_csr_adj_sorted_dupfree =
  QCheck.Test.make
    ~name:"adj is id-sorted, duplicate-free, equals model neighbors" ~count:80
    QCheck.small_nat (fun seed ->
      let _, labels, edges = model_instance seed in
      let n = Array.length labels in
      let g = Graph.Builder.of_edges ~labels edges in
      let ok = ref true in
      for v = 0 to n - 1 do
        let a = Array.to_list (Graph.adj g v) in
        let sorted_dupfree =
          List.sort_uniq compare a = a && List.length a = Graph.degree g v
        in
        if not (sorted_dupfree && a = model_adj n edges v) then ok := false
      done;
      !ok)

let prop_csr_iter_adj_label_order =
  QCheck.Test.make
    ~name:"iter_adj visits the adj set in strict (label, id) order" ~count:80
    QCheck.small_nat (fun seed ->
      let _, labels, edges = model_instance seed in
      let n = Array.length labels in
      let g = Graph.Builder.of_edges ~labels edges in
      let ok = ref true in
      for v = 0 to n - 1 do
        let run = ref [] in
        Graph.iter_adj g v (fun w -> run := w :: !run);
        let run = List.rev !run in
        let keys = List.map (fun w -> (Graph.label g w, w)) run in
        if List.sort_uniq compare keys <> keys then ok := false;
        if List.sort compare run <> Array.to_list (Graph.adj g v) then
          ok := false;
        (* fold_adj is iter_adj with an accumulator. *)
        let folded = Graph.fold_adj g v (fun w acc -> w :: acc) [] in
        if List.rev folded <> run then ok := false
      done;
      !ok)

let prop_csr_adj_with_label_filter =
  QCheck.Test.make ~name:"adj_with_label equals the label filter of adj"
    ~count:80 QCheck.small_nat (fun seed ->
      let num_labels, labels, edges = model_instance seed in
      let n = Array.length labels in
      let g = Graph.Builder.of_edges ~labels edges in
      let ok = ref true in
      for v = 0 to n - 1 do
        (* Including a label beyond the graph's universe: must yield nothing. *)
        for l = 0 to num_labels + 2 do
          let got = ref [] in
          Graph.adj_with_label g v l (fun w -> got := w :: !got);
          let got = List.rev !got in
          let expect =
            Array.to_list (Graph.adj g v)
            |> List.filter (fun w -> Graph.label g w = l)
          in
          if got <> expect then ok := false
        done
      done;
      !ok)

let prop_csr_label_index =
  QCheck.Test.make
    ~name:"label_freq and vertices_with_label recount the label array"
    ~count:80 QCheck.small_nat (fun seed ->
      let num_labels, labels, edges = model_instance seed in
      let n = Array.length labels in
      let g = Graph.Builder.of_edges ~labels edges in
      let recount l =
        Array.fold_left (fun acc x -> if x = l then acc + 1 else acc) 0 labels
      in
      let ok = ref (Graph.label_freq g (-1) = 0) in
      let total = ref 0 in
      for l = 0 to num_labels + 2 do
        let vl = Graph.vertices_with_label g l in
        total := !total + Array.length vl;
        if Graph.label_freq g l <> recount l then ok := false;
        if Array.length vl <> recount l then ok := false;
        if not (Array.for_all (fun v -> Graph.label g v = l) vl) then
          ok := false;
        let lst = Array.to_list vl in
        if List.sort_uniq compare lst <> lst then ok := false;
        let iterated = ref [] in
        Graph.iter_vertices_with_label g l (fun v -> iterated := v :: !iterated);
        if List.rev !iterated <> lst then ok := false
      done;
      !ok && !total = n)

(* --- storage backing equivalence --- *)

(* Every accessor must be blind to whether the CSR arrays are OCaml arrays
   or Bigarray slices (the mmap substrate). *)
let prop_backing_equivalence =
  QCheck.Test.make
    ~name:"every accessor agrees between array and bigarray backings"
    ~count:120 QCheck.small_nat (fun seed ->
      let num_labels, labels, edges = model_instance seed in
      let g = Graph.Builder.of_edges ~labels edges in
      let h = Graph.with_backing `Bigarray g in
      let ok = ref (Graph.backing g = `Array && Graph.backing h = `Bigarray) in
      let n = Graph.n g in
      if Graph.n h <> n || Graph.m h <> Graph.m g then ok := false;
      if Graph.labels h <> Graph.labels g then ok := false;
      if Graph.num_labels h <> Graph.num_labels g then ok := false;
      if Graph.max_label h <> Graph.max_label g then ok := false;
      if Graph.edges h <> Graph.edges g then ok := false;
      if not (Graph.equal_structure g h) then ok := false;
      for v = 0 to n - 1 do
        if Graph.label h v <> Graph.label g v then ok := false;
        if Graph.degree h v <> Graph.degree g v then ok := false;
        if Graph.adj h v <> Graph.adj g v then ok := false;
        let via_iter g =
          let acc = ref [] in
          Graph.iter_adj g v (fun w -> acc := w :: !acc);
          List.rev !acc
        in
        if via_iter h <> via_iter g then ok := false;
        if Graph.fold_adj h v (fun w acc -> w :: acc) []
           <> Graph.fold_adj g v (fun w acc -> w :: acc) []
        then ok := false;
        for w = 0 to n - 1 do
          if Graph.has_edge h v w <> Graph.has_edge g v w then ok := false
        done;
        for l = -1 to num_labels + 1 do
          let via_label g =
            let acc = ref [] in
            Graph.adj_with_label g v l (fun w -> acc := w :: !acc);
            List.rev !acc
          in
          if via_label h <> via_label g then ok := false
        done
      done;
      for l = -1 to num_labels + 1 do
        if Graph.label_freq h l <> Graph.label_freq g l then ok := false;
        if Graph.vertices_with_label h l <> Graph.vertices_with_label g l then
          ok := false;
        let via_iter g =
          let acc = ref [] in
          Graph.iter_vertices_with_label g l (fun v -> acc := v :: !acc);
          List.rev !acc
        in
        if via_iter h <> via_iter g then ok := false
      done;
      !ok)

let prop_csr_roundtrip =
  QCheck.Test.make ~name:"of_csr (to_csr g) preserves structure" ~count:120
    QCheck.small_nat (fun seed ->
      let _, labels, edges = model_instance seed in
      let g = Graph.Builder.of_edges ~labels edges in
      let g' = Graph.of_csr (Graph.to_csr g) in
      let h = Graph.with_backing `Bigarray g in
      let h' = Graph.of_csr (Graph.to_csr h) in
      Graph.equal_structure g g'
      && Graph.equal_structure g h'
      && Graph.with_backing `Array h' |> Graph.equal_structure g)

let prop_edge_stream_equals_batch =
  QCheck.Test.make
    ~name:"of_edge_stream builds the same graph as of_edges" ~count:120
    QCheck.small_nat (fun seed ->
      let _, labels, edges = model_instance seed in
      let batch = Graph.Builder.of_edges ~labels edges in
      let streamed =
        Graph.Builder.of_edge_stream ~labels (fun emit ->
            List.iter (fun (u, v) -> emit u v) edges)
      in
      Graph.equal_structure batch streamed
      && Graph.labels batch = Graph.labels streamed)

let test_of_csr_rejects_inconsistency () =
  let g = small () in
  let c = Graph.to_csr g in
  let broken = { c with Spm_graph.Storage.xadj = Spm_graph.Storage.Arr [| 0 |] } in
  (match Graph.of_csr broken with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inconsistent CSR accepted");
  let dangling =
    { c with Spm_graph.Storage.vl = Spm_graph.Storage.Arr [| 0; 1 |] }
  in
  match Graph.of_csr dangling with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong vl length accepted"

let test_edge_stream_replay_mismatch () =
  let calls = ref 0 in
  let stream emit =
    incr calls;
    (* Second invocation emits a different sequence. *)
    if !calls = 1 then begin
      emit 0 1;
      emit 1 2
    end
    else begin
      emit 0 1;
      emit 0 2
    end
  in
  match Graph.Builder.of_edge_stream ~labels:[| 0; 1; 2 |] stream with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-replaying stream accepted"

(* --- scale-free generators --- *)

let test_rmat () =
  let st = Gen.rng 42 in
  let g = Gen.rmat st ~scale:8 ~edge_factor:4 ~num_labels:10 in
  check "rmat n" 256 (Graph.n g);
  check_bool "rmat has edges" true (Graph.m g > 0);
  (* Duplicate draws merge, so m is at most the draw count. *)
  check_bool "rmat m bounded" true (Graph.m g <= 4 * 256);
  Graph.iter_vertices (fun v -> assert (Graph.label g v < 10)) g;
  Graph.iter_edges (fun u v -> assert (u <> v)) g;
  (* Same seed, same graph. *)
  let g' = Gen.rmat (Gen.rng 42) ~scale:8 ~edge_factor:4 ~num_labels:10 in
  check_bool "rmat deterministic" true (Graph.equal_structure g g');
  (* Heavy tail: some vertex far exceeds the average degree. *)
  let maxdeg = ref 0 in
  Graph.iter_vertices (fun v -> maxdeg := max !maxdeg (Graph.degree g v)) g;
  check_bool "rmat skewed" true
    (!maxdeg > 3 * (2 * Graph.m g) / Graph.n g)

let test_barabasi_albert () =
  let st = Gen.rng 43 in
  let n = 300 and m_per = 3 in
  let g = Gen.barabasi_albert st ~n ~m_per ~num_labels:7 in
  check "ba n" n (Graph.n g);
  (* Exact when no duplicate multi-target draws collide after dedup. *)
  check_bool "ba m" true (Graph.m g = m_per + ((n - m_per - 1) * m_per));
  let dist = Bfs.distances g 0 in
  check_bool "ba connected" true (Array.for_all (fun d -> d >= 0) dist);
  let g' = Gen.barabasi_albert (Gen.rng 43) ~n ~m_per ~num_labels:7 in
  check_bool "ba deterministic" true (Graph.equal_structure g g')

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "of_edges" `Quick test_of_edges;
          Alcotest.test_case "dedup" `Quick test_of_edges_dedup;
          Alcotest.test_case "self loop rejected" `Quick test_self_loop_rejected;
          Alcotest.test_case "edges list" `Quick test_edges_list;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "builder" `Quick test_builder;
          Alcotest.test_case "builder remove edge" `Quick
            test_builder_remove_edge;
        ] );
      ( "delta",
        [
          Alcotest.test_case "merged view basics" `Quick test_delta_basics;
          Alcotest.test_case "rebuild threshold" `Quick
            test_delta_rebuild_threshold;
          Alcotest.test_case "edit script io" `Quick test_edits_io_roundtrip;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "distances" `Quick test_bfs_distances;
          Alcotest.test_case "pair distance" `Quick test_bfs_distance_pair;
          Alcotest.test_case "disconnected" `Quick test_bfs_disconnected;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "multi source" `Quick test_multi_source;
          Alcotest.test_case "dist matrix" `Quick test_dist_matrix;
        ] );
      ( "paths",
        [
          Alcotest.test_case "is_simple_path" `Quick test_simple_path_check;
          Alcotest.test_case "enumeration counts" `Quick test_simple_paths_count;
          Alcotest.test_case "canonical orientation" `Quick test_paths_canonical_orientation;
          Alcotest.test_case "shortest paths between" `Quick test_shortest_paths_between;
        ] );
      ( "storage",
        [
          Alcotest.test_case "of_csr rejects inconsistency" `Quick
            test_of_csr_rejects_inconsistency;
          Alcotest.test_case "edge stream replay mismatch" `Quick
            test_edge_stream_replay_mismatch;
        ] );
      qsuite "storage-props"
        [
          prop_backing_equivalence;
          prop_csr_roundtrip;
          prop_edge_stream_equals_batch;
        ];
      ( "gen",
        [
          Alcotest.test_case "erdos renyi" `Quick test_erdos_renyi;
          Alcotest.test_case "gnp complete" `Quick test_gnp;
          Alcotest.test_case "random tree" `Quick test_random_tree;
          Alcotest.test_case "skinny pattern" `Quick test_random_skinny_pattern;
          Alcotest.test_case "inject" `Quick test_inject;
          Alcotest.test_case "star and cycle" `Quick test_star_and_cycle;
          Alcotest.test_case "rmat" `Quick test_rmat;
          Alcotest.test_case "barabasi albert" `Quick test_barabasi_albert;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "db roundtrip" `Quick test_io_db_roundtrip;
          Alcotest.test_case "comments and errors" `Quick test_io_comments_and_errors;
          Alcotest.test_case "crlf and line numbers" `Quick
            test_io_crlf_and_line_numbers;
        ] );
      ( "misc",
        [
          Alcotest.test_case "label table" `Quick test_label_table;
          Alcotest.test_case "vec" `Quick test_vec;
        ] );
      qsuite "props"
        [
          prop_er_connected_labels;
          prop_bfs_triangle_inequality;
          prop_simple_paths_are_simple;
          prop_io_roundtrip;
          prop_io_print_parse_fixpoint;
          prop_io_tolerates_crlf_tabs;
        ];
      qsuite "csr"
        [
          prop_csr_has_edge_model;
          prop_csr_adj_sorted_dupfree;
          prop_csr_iter_adj_label_order;
          prop_csr_adj_with_label_filter;
          prop_csr_label_index;
        ];
    ]
