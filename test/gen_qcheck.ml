(* The shared qcheck graph generator. Every suite that property-tests over
   random graphs draws from here, so failures shrink and reproduce the same
   way everywhere instead of each file growing its own ad-hoc generator.

   The generated value is a [spec]: the raw (labels, edge list) input of
   [Graph.Builder.of_edges] — duplicates and reversed edges included, so substrate
   normalization stays under test — plus the integer seed it was derived
   from. Content is a pure function of the seed, so a printed failure is
   reproducible from the seed alone; shrinking then edits the spec directly
   (fewer edges, fewer vertices, smaller labels). *)

open Spm_graph

type spec = {
  seed : int;
  num_labels : int;
  labels : int array;
  edges : (int * int) list;  (* raw: may repeat and reverse pairs *)
}

let graph_of_spec s = Graph.Builder.of_edges ~labels:s.labels s.edges

(* Deterministic instance from a seed — the one generator body shared by
   qcheck properties and plain seeded tests. *)
let spec_of_seed ?(max_n = 25) ?(max_labels = 6) seed =
  let st = Gen.rng seed in
  let n = 1 + Random.State.int st max_n in
  let num_labels = 1 + Random.State.int st max_labels in
  let labels = Array.init n (fun _ -> Random.State.int st num_labels) in
  let m = Random.State.int st (3 * n) in
  let edges = ref [] in
  for _ = 1 to m do
    let u = Random.State.int st n and v = Random.State.int st n in
    if u <> v then begin
      edges := (u, v) :: !edges;
      (* Every third edge also appears reversed and duplicated. *)
      if Random.State.int st 3 = 0 then edges := (v, u) :: (u, v) :: !edges
    end
  done;
  { seed; num_labels; labels; edges = !edges }

let graph_of_seed ?max_n ?max_labels seed =
  graph_of_spec (spec_of_seed ?max_n ?max_labels seed)

let print_spec s =
  Printf.sprintf "seed=%d n=%d labels=[%s] edges=[%s]" s.seed
    (Array.length s.labels)
    (String.concat ";" (Array.to_list (Array.map string_of_int s.labels)))
    (String.concat ";"
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) s.edges))

let shrink_spec s yield =
  (* Fewer edges first — the cheapest reduction. *)
  QCheck.Shrink.list_spine s.edges (fun edges -> yield { s with edges });
  (* Drop the last vertex and everything incident to it. *)
  let n = Array.length s.labels in
  if n > 1 then begin
    let labels = Array.sub s.labels 0 (n - 1) in
    let edges = List.filter (fun (u, v) -> u < n - 1 && v < n - 1) s.edges in
    yield { s with labels; edges }
  end;
  (* Flatten labels toward 0. *)
  Array.iteri
    (fun i l ->
      if l > 0 then begin
        let labels = Array.copy s.labels in
        labels.(i) <- 0;
        yield { s with labels }
      end)
    s.labels

let arb_spec ?max_n ?max_labels () =
  QCheck.make ~print:print_spec ~shrink:shrink_spec
    (QCheck.Gen.map
       (fun seed -> spec_of_seed ?max_n ?max_labels seed)
       (QCheck.Gen.int_bound 1_000_000))

(* Connected variant: the raw spec's graph restricted to the component of
   vertex 0 — for suites (mining, patterns) that need a connected input. *)
let connected_of_spec s =
  let g = graph_of_spec s in
  let comp, _ = Bfs.components g in
  let keep =
    Array.to_list (Array.init (Graph.n g) (fun v -> v))
    |> List.filter (fun v -> comp.(v) = comp.(0))
    |> Array.of_list
  in
  Graph.induced g keep

(* Seeded convenience wrappers over the substrate generators, so call sites
   write one expression instead of threading a [Random.State.t]. *)
let er ~seed ~n ~avg_degree ~num_labels =
  Gen.erdos_renyi (Gen.rng seed) ~n ~avg_degree ~num_labels

let tree ~seed ~n ~num_labels = Gen.random_tree (Gen.rng seed) ~n ~num_labels

let connected ~seed ~n ~extra_edges ~num_labels =
  Gen.random_connected_pattern (Gen.rng seed) ~n ~extra_edges ~num_labels

(* Relabel the vertices of [g] by a seed-drawn permutation; returns the
   permuted graph and the permutation (old id -> new id). *)
let permute_graph ~seed g =
  let st = Gen.rng seed in
  let n = Graph.n g in
  let perm = Array.init n (fun i -> i) in
  Gen.shuffle st perm;
  let labels = Array.make n 0 in
  Array.iteri (fun v l -> labels.(perm.(v)) <- l) (Graph.labels g);
  let edges = List.map (fun (u, v) -> (perm.(u), perm.(v))) (Graph.edges g) in
  (Graph.Builder.of_edges ~labels edges, perm)
