(* The correctness oracle: brute-force reference miner sanity, the
   differential harness over the committed corpus, baseline soundness
   checks, and the metamorphic invariants. *)

open Spm_oracle

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Brute-force reference miner sanity --- *)

let test_brute_path () =
  (* Path 0-1-2-3, labels 0-1-0-1. Connected subgraphs: 3 single edges,
     2 two-edge paths, 1 three-edge path. *)
  let g =
    Spm_graph.Graph.Builder.of_edges ~labels:[| 0; 1; 0; 1 |]
      [ (0, 1); (1, 2); (2, 3) ]
  in
  let r = Brute.mine g ~l:3 ~delta:1 ~sigma:1 in
  check "enumerated" 6 r.Brute.enumerated;
  (* Classes: edge 0-1 (two occurrences), paths 0-1-0 and 1-0-1 are... the
     two 2-edge paths are 0-1-0 and 1-0-1: distinct label sequences = one
     class each; the 3-edge path once. Single edges 0-1 and 1-0 are the same
     pattern: one class of support 3? No — labels are 0,1,0,1 so each edge
     joins a 0 and a 1: one class, support 3. Total classes: 1 + 2 + 1. *)
  check "classes" 4 r.Brute.classes;
  (* Only the full path has diameter 3. *)
  let targets = List.filter (fun f -> Brute.is_target f.Brute.rep ~l:3 ~delta:1) r.Brute.found in
  check "l=3 targets" 1 (List.length targets);
  let f = List.hd targets in
  check "support" 1 f.Brute.support;
  check "occurrence edges" 3 (List.length (List.hd f.Brute.occurrences))

let test_brute_triangle_support () =
  (* Triangle with equal labels: the single-edge pattern has support 3, the
     wedge (2-edge path) support 3, the triangle support 1. *)
  let g =
    Spm_graph.Graph.Builder.of_edges ~labels:[| 0; 0; 0 |] [ (0, 1); (1, 2); (0, 2) ]
  in
  let r = Brute.mine g ~l:1 ~delta:1 ~sigma:1 in
  check "classes" 3 r.Brute.classes;
  List.iter
    (fun f ->
      match List.length f.Brute.rep.Brute.edges with
      | 1 -> check "edge support" 3 f.Brute.support
      | 2 -> check "wedge support" 3 f.Brute.support
      | 3 -> check "triangle support" 1 f.Brute.support
      | _ -> Alcotest.fail "unexpected pattern size")
    r.Brute.found

let test_brute_iso () =
  let a = { Brute.labels = [| 0; 1; 0 |]; edges = [ (0, 1); (1, 2) ] } in
  let b = { Brute.labels = [| 0; 0; 1 |]; edges = [ (2, 0); (1, 2) ] } in
  let c = { Brute.labels = [| 0; 1; 1 |]; edges = [ (0, 1); (1, 2) ] } in
  check_bool "iso" true (Brute.iso a b);
  check_bool "not iso (labels)" false (Brute.iso a c)

let test_brute_canonical_diameter_matches_production () =
  (* The oracle's from-scratch canonical diameter must agree with the
     production implementation on random connected patterns. *)
  for seed = 1 to 40 do
    let g = Gen_qcheck.connected_of_spec (Gen_qcheck.spec_of_seed ~max_n:8 seed) in
    if Spm_graph.Graph.n g > 1 && Spm_graph.Graph.m g <= 10 then begin
      let p = Brute.of_pattern g in
      let ours = Brute.canonical_diameter p in
      let theirs = Spm_core.Canonical_diameter.compute g in
      Alcotest.(check (list int))
        (Printf.sprintf "canonical diameter path (seed %d)" seed)
        (Array.to_list theirs) (Array.to_list ours)
    end
  done

let test_brute_too_large () =
  let g = Gen_qcheck.er ~seed:9 ~n:30 ~avg_degree:4.0 ~num_labels:1 in
  try
    ignore (Brute.mine ~max_subsets:500 g ~l:2 ~delta:1 ~sigma:1);
    Alcotest.fail "expected Too_large"
  with Brute.Too_large _ -> ()

(* --- Differential harness over the committed corpus --- *)

let report_to_string r = Format.asprintf "%a" Differential.pp_report r

let test_differential_corpus () =
  List.iter
    (fun it ->
      let r = Differential.run_item it in
      if not (Differential.ok r) then
        Alcotest.failf "corpus case %s diverged:\n%s" it.Corpus.name
          (report_to_string r))
    (Corpus.builtin ())

(* The second family alone, so CI can name a neighborhood-only differential
   step: every committed neighborhood item must certify clean against the
   brute oracle and the filtered gSpan baseline at jobs 1 and 4. *)
let test_differential_neighborhood () =
  let items = Corpus.neighborhood_items () in
  check_bool "neighborhood corpus is non-empty" true (items <> []);
  List.iter
    (fun it ->
      let r = Differential.run_item it in
      if not (Differential.ok r) then
        Alcotest.failf "neighborhood case %s diverged:\n%s" it.Corpus.name
          (report_to_string r))
    items

let test_differential_catches_unsound () =
  (* Sanity that the harness itself can fail: a report with an injected
     mismatch must not be [ok], and the rendering must carry the repro
     seed. *)
  let it = Corpus.find "path8" in
  let r = Differential.run_item it in
  check_bool "clean case ok" true (Differential.ok r);
  let bad =
    {
      r with
      Differential.mismatches =
        [
          {
            Differential.side = "skinnymine";
            kind = Differential.Unsound;
            pattern = it.Corpus.graph;
            occurrences = [];
          };
        ];
    }
  in
  check_bool "poisoned case not ok" false (Differential.ok bad);
  let s = report_to_string bad in
  check_bool "report names the seed" true
    (let needle = "~seed:101" in
     let rec find i =
       i + String.length needle <= String.length s
       && (String.sub s i (String.length needle) = needle || find (i + 1))
     in
     find 0)

(* --- Baselines vs the oracle --- *)

let test_baselines_sound () =
  let g = Gen_qcheck.er ~seed:77 ~n:12 ~avg_degree:2.0 ~num_labels:2 in
  match Differential.check_baselines ~graph:g ~sigma:2 () with
  | [] -> ()
  | m :: _ ->
    Alcotest.failf "baseline %s disagrees with the oracle" m.Differential.side

let test_origami_sound () =
  let db =
    List.init 4 (fun i ->
        Gen_qcheck.er ~seed:(300 + i) ~n:8 ~avg_degree:1.8 ~num_labels:2)
  in
  match Differential.check_origami ~db ~sigma:2 () with
  | [] -> ()
  | m :: _ ->
    Alcotest.failf "origami: %s disagrees with the oracle" m.Differential.side

(* --- Metamorphic invariants --- *)

let metamorphic_case it () =
  Testutil.with_temp_dir (fun dir ->
      match Metamorphic.run_item ~dir it with
      | [] -> ()
      | fs ->
        Alcotest.failf "%s: %s" it.Corpus.name
          (String.concat "; "
             (List.map
                (fun f ->
                  Printf.sprintf "[%s] %s" f.Metamorphic.check
                    f.Metamorphic.detail)
                fs)))

(* --- Corpus pinning ---

   The files under examples/corpus/ are the committed form of
   [Corpus.builtin]: CI and fresh checkouts must agree byte-for-byte, so a
   generator change that silently shifts the corpus fails here instead of
   invalidating every recorded differential run. *)

(* Under `dune runtest` the cwd is _build/default/test; under `dune exec`
   from the root it is the workspace root. Probe both. *)
let corpus_dir =
  List.find_opt Sys.file_exists
    [
      Filename.concat (Filename.concat ".." "examples") "corpus";
      Filename.concat "examples" "corpus";
    ]
  |> Option.value ~default:"examples/corpus"

let test_corpus_pinned () =
  List.iter
    (fun it ->
      let path = Filename.concat corpus_dir (Corpus.filename it) in
      if not (Sys.file_exists path) then
        Alcotest.failf
          "missing committed corpus file %s (regenerate with Corpus.write_dir)"
          path;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let committed = really_input_string ic len in
      close_in ic;
      Alcotest.(check string)
        (Printf.sprintf "%s matches the generator" (Corpus.filename it))
        (Corpus.render it) committed)
    (Corpus.builtin ())

let test_corpus_parses_back () =
  List.iter
    (fun it ->
      let g = Spm_graph.Io.of_string (Corpus.render it) in
      check_bool
        (Printf.sprintf "%s round-trips" it.Corpus.name)
        true
        (Spm_graph.Graph.equal_structure g it.Corpus.graph))
    (Corpus.builtin ())

let () =
  let metamorphic_cases =
    List.map
      (fun it ->
        Alcotest.test_case it.Corpus.name `Quick (metamorphic_case it))
      (Corpus.builtin ())
  in
  Alcotest.run "oracle"
    [
      ( "brute",
        [
          Alcotest.test_case "path counts" `Quick test_brute_path;
          Alcotest.test_case "triangle supports" `Quick
            test_brute_triangle_support;
          Alcotest.test_case "iso" `Quick test_brute_iso;
          Alcotest.test_case "canonical diameter vs production" `Quick
            test_brute_canonical_diameter_matches_production;
          Alcotest.test_case "too large" `Quick test_brute_too_large;
        ] );
      ( "differential",
        [
          Alcotest.test_case "corpus certifies clean" `Quick
            test_differential_corpus;
          Alcotest.test_case "neighborhood corpus certifies clean" `Quick
            test_differential_neighborhood;
          Alcotest.test_case "harness can fail" `Quick
            test_differential_catches_unsound;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "soundness vs oracle" `Quick test_baselines_sound;
          Alcotest.test_case "origami transaction support" `Quick
            test_origami_sound;
        ] );
      ("metamorphic", metamorphic_cases);
      ( "corpus",
        [
          Alcotest.test_case "committed files pinned" `Quick test_corpus_pinned;
          Alcotest.test_case "files parse back" `Quick test_corpus_parses_back;
        ] );
    ]
