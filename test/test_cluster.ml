(* The sharded serving tier: partitioner determinism and byte-stability,
   manifest codec round trips, and the headline guarantee — a router over
   N shard workers answers every query byte-identically to a single-process
   server over the unsharded store, before and after updates, and degrades
   to a well-formed Partial response (naming exactly the dead shards) when
   a worker is killed. *)

open Spm_graph
open Spm_core
module Store = Spm_store.Store
module Codec = Spm_store.Codec
module Protocol = Spm_server.Protocol
module Server = Spm_server.Server
module Client = Spm_server.Client
module Partition = Spm_cluster.Partition
module Worker = Spm_cluster.Worker
module Router = Spm_cluster.Router

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Same corpus recipe as the server suite: ER background + injected skinny
   patterns, mined at the parameters the stores carry. *)
let serving_graph seed =
  let st = Gen.rng seed in
  let bg = Gen.erdos_renyi st ~n:110 ~avg_degree:2.0 ~num_labels:12 in
  let b = Graph.Builder.of_graph bg in
  for _ = 1 to 3 do
    let p =
      Gen.random_skinny_pattern st ~backbone:4 ~delta:1 ~twigs:2 ~num_labels:12
    in
    ignore (Gen.inject st b ~pattern:p ~copies:3 ())
  done;
  Graph.Builder.freeze b

let corpus =
  lazy
    (let g = serving_graph 2013 in
     let r = Skinny_mine.mine g ~l:4 ~delta:2 ~sigma:2 in
     (g, r))

let corpus_store () =
  let g, r = Lazy.force corpus in
  Store.of_result ~graph:g ~l:4 ~delta:2 ~sigma:2 ~closed_growth:false r

let render (ms : Skinny_mine.mined list) =
  let b = Buffer.create 4096 in
  List.iter
    (fun (m : Skinny_mine.mined) ->
      Buffer.add_string b (Io.to_string m.pattern);
      Buffer.add_string b (Printf.sprintf "support %d\n" m.support);
      Buffer.add_string b
        (Printf.sprintf "levels %s\n"
           (String.concat " " (Array.to_list (Array.map string_of_int m.levels))));
      Buffer.add_string b
        (Printf.sprintf "diam %s\n\n"
           (String.concat " "
              (Array.to_list (Array.map string_of_int m.diameter_labels)))))
    ms;
  Buffer.contents b

let patterns_of (resp : Protocol.response) =
  match resp.Protocol.payload with
  | Protocol.Patterns ms -> ms
  | Protocol.Error e -> Alcotest.fail ("unexpected Error payload: " ^ e)
  | _ -> Alcotest.fail "expected Patterns payload"

(* --- placement key --- *)

(* The shard key must never change value across builds: a layout cut
   yesterday must open unchanged today. Pinned against an independent
   reimplementation of the 62-bit FNV-1a fold. *)
let test_shard_key_pinned () =
  let cases =
    [ ([| 1; 2; 3 |], 4404255743208522645);
      ([| 0; 0; 0; 0; 0 |], 3352361463074982197);
      ([| 5; 1; 4; 1; 5 |], 2938502798111877201);
      ([| 7 |], 3257635690488061506);
      ([| 2; 11; 2 |], 1858283883599282622) ]
  in
  List.iter
    (fun (labels, expected) ->
      check "pinned key" expected (Path_pattern.shard_key labels))
    cases;
  (* Orientation-insensitive: both directions of a diameter are one
     cluster and must land on one shard. *)
  check "reverse orientation same key"
    (Path_pattern.shard_key [| 1; 2; 3 |])
    (Path_pattern.shard_key [| 3; 2; 1 |]);
  Alcotest.check_raises "zero shards rejected"
    (Invalid_argument "Path_pattern.shard_of: shards must be > 0") (fun () ->
      ignore (Path_pattern.shard_of ~shards:0 [| 1 |]))

(* --- partitioner --- *)

let test_split_partitions () =
  let s = corpus_store () in
  List.iter
    (fun shards ->
      let pieces = Partition.split ~shards s in
      check "one store per shard" shards (Array.length pieces);
      (* Every pattern lands on exactly one shard — the one its cluster
         key names — and nothing is lost. *)
      check "no pattern lost or duplicated"
        (List.length s.Store.patterns)
        (Array.fold_left
           (fun acc p -> acc + List.length p.Store.patterns)
           0 pieces);
      Array.iteri
        (fun i p ->
          Alcotest.(check (option (pair int int)))
            "shard identity" (Some (i, shards)) p.Store.shard;
          check_bool "full data graph travels with every shard" true
            (Graph.equal_structure p.Store.graph s.Store.graph);
          List.iter
            (fun (m : Skinny_mine.mined) ->
              check "owned cluster" i
                (Path_pattern.shard_of ~shards m.Skinny_mine.diameter_labels))
            p.Store.patterns)
        pieces;
      (* Byte-stable: the same store splits to the same bytes, and shard
         stores survive an encode/decode round trip byte-identically. *)
      let pieces' = Partition.split ~shards s in
      Array.iteri
        (fun i p ->
          let bytes = Store.encode p in
          check_str "deterministic split" bytes (Store.encode pieces'.(i));
          check_str "round-trip stable" bytes
            (Store.encode (Store.decode bytes)))
        pieces)
    [ 1; 2; 4 ]

let test_split_rejects () =
  let s = corpus_store () in
  check_bool "zero shards rejected" true
    (match Partition.split ~shards:0 s with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "incomplete store rejected" true
    (match Partition.split ~shards:2 { s with Store.complete = false } with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "journaled store rejected" true
    (match
       Partition.split ~shards:2
         { s with Store.journal = [ [ Delta.Add_vertex 0 ] ] }
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_manifest_roundtrip () =
  let s = corpus_store () in
  let shards = 3 in
  let files = List.init shards (fun i -> Printf.sprintf "f%d.spm" i) in
  let m = Partition.manifest_of ~shards ~files s in
  check "entries per shard" shards (List.length m.Partition.entries);
  (* Summaries mirror the split exactly: one per owned pattern, in shard
     store order. *)
  let pieces = Partition.split ~shards s in
  List.iteri
    (fun i (e : Partition.entry) ->
      check_bool "summaries = split patterns" true
        (e.Partition.patterns
        = List.map Partition.summary_of_mined pieces.(i).Store.patterns))
    m.Partition.entries;
  let bytes = Partition.encode_manifest m in
  check_bool "manifest codec round trips" true
    (Partition.decode_manifest bytes = m);
  check_str "deterministic encoding" bytes
    (Partition.encode_manifest (Partition.manifest_of ~shards ~files s));
  (* Flip one byte mid-file: the section CRC must catch it. *)
  let broken = Bytes.of_string bytes in
  let pos = Bytes.length broken / 2 in
  Bytes.set broken pos (Char.chr (Char.code (Bytes.get broken pos) lxor 0x20));
  check_bool "corruption detected" true
    (match Partition.decode_manifest (Bytes.to_string broken) with
    | _ -> false
    | exception Codec.Corrupt _ -> true);
  Testutil.with_temp_dir (fun dir ->
      let path = Testutil.temp_file_in dir "x.manifest" in
      Partition.save_manifest path m;
      check_bool "save/load round trips" true (Partition.load_manifest path = m))

(* --- cluster harness --- *)

type cluster = {
  store : Store.pattern_store;  (* the unsharded source *)
  manifest : Partition.manifest;
  workers : Worker.t array;
  router : Router.t;
  reference : Server.t;  (* single-process server over the same store *)
  dir : string;
}

let shard_path c i =
  Partition.shard_file
    ~base:(Filename.concat c.dir "corpus")
    ~shard:i
    ~shards:(Array.length c.workers)

let with_cluster ?deadline ~shards f =
  Testutil.with_temp_dir (fun dir ->
      let s = corpus_store () in
      let base = Filename.concat dir "corpus" in
      let manifest = Partition.write ~base ~shards s in
      let workers =
        Array.init shards (fun i ->
            let path = Partition.shard_file ~base ~shard:i ~shards in
            Worker.start ~jobs:1 ~path (Store.load path))
      in
      let endpoints =
        Array.map (fun w -> ("127.0.0.1", Worker.port w)) workers
      in
      let router = Router.create ?deadline ~manifest ~endpoints () in
      let reference = Server.create ~jobs:1 () in
      Server.set_store reference s;
      Fun.protect
        ~finally:(fun () ->
          Router.close router;
          Array.iter Worker.stop workers)
        (fun () -> f { store = s; manifest; workers; router; reference; dir }))

(* Byte-identity of one request across the two tiers: same payload bytes,
   same status, and a complete (non-Partial) answer from the router. *)
let assert_identical c req label =
  let single = Server.handle c.reference req in
  let routed = Router.handle c.router req in
  Alcotest.(check (list string))
    (label ^ ": no unreachable shards") [] routed.Protocol.unreachable;
  check_bool (label ^ ": status agrees") true
    (single.Protocol.status = routed.Protocol.status);
  check_str (label ^ ": payload byte-identical")
    (render (patterns_of single))
    (render (patterns_of routed))

let query_suite (s : Store.pattern_store) =
  let first = List.hd s.Store.patterns in
  [ ("mine (store params)",
     Protocol.Mine { l = 4; delta = 2; sigma = 2; closed_growth = false; family = Spm_core.Constraints.Skinny });
    ("lookup all", Protocol.Lookup (Protocol.lookup_params ()));
    ("lookup min_support",
     Protocol.Lookup (Protocol.lookup_params ~min_support:3 ()));
    ("lookup max_support",
     Protocol.Lookup (Protocol.lookup_params ~max_support:2 ()));
    ("lookup length", Protocol.Lookup (Protocol.lookup_params ~length:4 ()));
    ("lookup labels",
     Protocol.Lookup
       (Protocol.lookup_params
          ~labels:(Array.to_list (Graph.labels first.Skinny_mine.pattern))
          ()));
    ("contains pattern", Protocol.Contains first.Skinny_mine.pattern);
    ("contains fresh graph", Protocol.Contains (serving_graph 99));
    ("contains unrelated",
     Protocol.Contains
       (Gen.erdos_renyi (Gen.rng 5) ~n:15 ~avg_degree:2.0 ~num_labels:3)) ]

let test_router_byte_identity () =
  List.iter
    (fun shards ->
      with_cluster ~shards (fun c ->
          List.iter
            (fun (label, req) ->
              assert_identical c req
                (Printf.sprintf "%d shards, %s" shards label))
            (query_suite c.store);
          (* A mine at parameters the stores do not carry re-mines on every
             shard (scoped to owned clusters); only exercised at one shard
             count to keep the suite quick. *)
          if shards = 2 then
            assert_identical c
              (Protocol.Mine
                 { l = 4; delta = 2; sigma = 3; closed_growth = false; family = Spm_core.Constraints.Skinny })
              "2 shards, mine (fresh params)"))
    [ 1; 2; 4 ]

(* The second constraint family across the sharded tier: workers re-mine
   their full resident graph under the neighborhood config and keep only
   owned clusters (a neighborhood pattern's singleton diameter_labels key
   shards like any other), so the router's merge must be byte-identical to
   the single-process answer — the ISSUE-10 acceptance drill. *)
let test_router_neighborhood_byte_identity () =
  with_cluster ~shards:2 (fun c ->
      List.iter
        (fun (label, family) ->
          (* r = 1: at r = 2 the corpus graph's overlapping clusters yield
             tens of thousands of patterns (σ = 2) — minutes per tier. *)
          assert_identical c
            (Protocol.Mine
               (Protocol.mine_params ~family ~l:0 ~delta:1 ~sigma:2 ()))
            label)
        [ ( "2 shards, neighborhood mine",
            Spm_core.Constraints.Neighborhood { center = None } );
          ( "2 shards, centered neighborhood mine",
            Spm_core.Constraints.Neighborhood { center = Some 3 } ) ])

(* An edit batch the corpus graph definitely accepts: one fresh edge. *)
let fresh_edge g =
  let n = Graph.n g in
  let rec go u v =
    if u >= n then Alcotest.fail "no fresh edge in corpus graph"
    else if v >= n then go (u + 1) (u + 2)
    else if not (Graph.has_edge g u v) then (u, v)
    else go u (v + 1)
  in
  go 0 1

let render_diff (u : Protocol.update_reply) =
  Printf.sprintf "v%d repaired %d of %d\nadded:\n%s\nremoved:\n%s"
    u.Protocol.new_version u.Protocol.repaired u.Protocol.clusters
    (render u.Protocol.added) (render u.Protocol.removed)

let test_update_byte_identity () =
  with_cluster ~shards:2 (fun c ->
      let g, _ = Lazy.force corpus in
      let u, v = fresh_edge g in
      let batches =
        [ [ Delta.Add_edge (u, v) ]; [ Delta.Remove_edge (u, v) ] ]
      in
      List.iteri
        (fun i edits ->
          let req = Protocol.Update { Protocol.edits } in
          let single = Server.handle c.reference req in
          let routed = Router.handle c.router req in
          (match (single.Protocol.payload, routed.Protocol.payload) with
          | Protocol.Update_reply a, Protocol.Update_reply b ->
            check_str
              (Printf.sprintf "update %d: merged diff byte-identical" i)
              (render_diff a) (render_diff b);
            check (Printf.sprintf "update %d: router version advanced" i)
              a.Protocol.new_version (Router.version c.router)
          | Protocol.Error e, _ | _, Protocol.Error e ->
            Alcotest.fail ("update failed: " ^ e)
          | _ -> Alcotest.fail "expected Update_reply");
          (* The repaired corpus serves identically through both tiers —
             including the planner paths, whose summary tables the router
             just patched from the diff. *)
          List.iter
            (fun (label, q) ->
              assert_identical c q
                (Printf.sprintf "post-update %d, %s" i label))
            [ ("mine", Protocol.Mine
                 { l = 4; delta = 2; sigma = 2; closed_growth = false; family = Spm_core.Constraints.Skinny });
              ("lookup", Protocol.Lookup (Protocol.lookup_params ()));
              ("lookup min_support",
               Protocol.Lookup (Protocol.lookup_params ~min_support:3 ())) ])
        batches)

let test_planner_prunes () =
  with_cluster ~shards:2 (fun c ->
      let c0, p0 = Router.pruning c.router in
      (* A support bound nothing satisfies: the planner answers locally
         with zero scatter legs. *)
      let resp =
        Router.handle c.router
          (Protocol.Lookup (Protocol.lookup_params ~min_support:100_000 ()))
      in
      check_str "empty answer" (render []) (render (patterns_of resp));
      let c1, p1 = Router.pruning c.router in
      check "no shard contacted" c0 c1;
      check "both shards pruned" (p0 + 2) p1;
      (* A label multiset no pattern has: same. *)
      let resp =
        Router.handle c.router
          (Protocol.Lookup (Protocol.lookup_params ~labels:[ 999; 998 ] ()))
      in
      check_str "empty answer" (render []) (render (patterns_of resp));
      let c2, p2 = Router.pruning c.router in
      check "still no shard contacted" c1 c2;
      check "both shards pruned again" (p1 + 2) p2;
      (* An unfiltered lookup must contact everything. *)
      ignore (Router.handle c.router (Protocol.Lookup (Protocol.lookup_params ())));
      let c3, _ = Router.pruning c.router in
      check "full scatter contacts both" (c2 + 2) c3)

(* Failure detection needs no tight deadline: a killed worker's pooled
   connections see EOF instantly (half-close) and redials are refused
   instantly. The deadline here is only a safety net so a genuine hang
   fails the test instead of wedging it — it must stay far above the
   single-threaded repair time of an Update leg. *)
let failure_deadline = 120.0

let test_worker_kill_partial_and_recovery () =
  with_cluster ~shards:2 ~deadline:failure_deadline (fun c ->
      let req = Protocol.Lookup (Protocol.lookup_params ~min_support:2 ()) in
      (* Warm the pools: both shards answer, connections persist. *)
      ignore (Router.handle c.router req);
      Worker.kill c.workers.(1);
      let resp = Router.handle c.router req in
      Alcotest.(check (list string))
        "partial names exactly the dead shard" [ "shard1" ]
        resp.Protocol.unreachable;
      (* The degraded answer is the reachable shards' merge — well-formed
         and exactly shard0's restriction of the full answer. *)
      let owned_by_0 =
        List.filter
          (fun (m : Skinny_mine.mined) ->
            Path_pattern.shard_of ~shards:2 m.Skinny_mine.diameter_labels = 0
            && m.Skinny_mine.support >= 2)
          c.store.Store.patterns
      in
      check_str "partial payload = reachable restriction" (render owned_by_0)
        (render (patterns_of resp));
      (* Pre-v4 clients cannot carry Partial: they get an Error naming the
         shard instead of a silently truncated answer. *)
      (match (Router.handle ~client_version:3 c.router req).Protocol.payload with
      | Protocol.Error msg ->
        check_bool "v3 degradation names the shard" true
          (let n = String.length msg in
           let rec scan i =
             i + 6 <= n && (String.sub msg i 6 = "shard1" || scan (i + 1))
           in
           scan 0)
      | _ -> Alcotest.fail "expected Error for a v3 partial answer");
      (* The router itself stays live. *)
      check_bool "router still answers" true
        ((Router.handle c.router Protocol.Ping).Protocol.payload
        = Protocol.Pong);
      (* Restart the worker on its old port from its persisted store: the
         next scatter redials and the full answer returns. *)
      let port = Worker.port c.workers.(1) in
      Worker.stop c.workers.(1);
      let w' = Worker.start ~jobs:1 ~port (Store.load (shard_path c 1)) in
      Fun.protect
        ~finally:(fun () -> Worker.stop w')
        (fun () ->
          let resp = Router.handle c.router req in
          Alcotest.(check (list string))
            "recovered: complete again" [] resp.Protocol.unreachable;
          check_str "recovered: byte-identical"
            (render (patterns_of (Server.handle c.reference req)))
            (render (patterns_of resp))))

let test_update_needs_every_shard () =
  with_cluster ~shards:2 ~deadline:failure_deadline (fun c ->
      let g, _ = Lazy.force corpus in
      let u, v = fresh_edge g in
      let req = Protocol.Update { Protocol.edits = [ Delta.Add_edge (u, v) ] } in
      ignore (Router.handle c.router Protocol.Ping);
      Worker.kill c.workers.(1);
      (* No partial acks: the update errs, names the missing shard, and
         the router's version does not move. *)
      (match (Router.handle c.router req).Protocol.payload with
      | Protocol.Error msg ->
        check_bool "error names the shard" true
          (let n = String.length msg in
           let rec scan i =
             i + 6 <= n && (String.sub msg i 6 = "shard1" || scan (i + 1))
           in
           scan 0)
      | _ -> Alcotest.fail "expected Error for a one-legged update");
      check "version unchanged" c.manifest.Partition.version
        (Router.version c.router);
      (* shard0 committed its leg; a restarted shard1 is a version behind,
         so the next update must surface the disagreement, not ack. *)
      let port = Worker.port c.workers.(1) in
      Worker.stop c.workers.(1);
      let w' = Worker.start ~jobs:1 ~port (Store.load (shard_path c 1)) in
      Fun.protect
        ~finally:(fun () -> Worker.stop w')
        (fun () ->
          match
            (Router.handle c.router
               (Protocol.Update
                  { Protocol.edits = [ Delta.Remove_edge (u, v) ] }))
              .Protocol.payload
          with
          | Protocol.Error msg ->
            let n = String.length msg in
            let rec scan i =
              i + 12 <= n
              && (String.sub msg i 12 = "disagreement" || scan (i + 1))
            in
            if not (scan 0) then
              Alcotest.failf "expected a disagreement Error, got: %s" msg
          | _ -> Alcotest.fail "expected a version-disagreement Error"))

(* The wire surface: a served router is indistinguishable from a served
   single server, and its subscribers see the merged diff per update. *)
let test_router_over_the_wire () =
  with_cluster ~shards:2 (fun c ->
      let lfd, port = Server.listen ~port:0 () in
      let th = Thread.create (fun () -> Router.serve c.router lfd) () in
      Fun.protect
        ~finally:(fun () -> Thread.join th)
        (fun () ->
          let g, _ = Lazy.force corpus in
          let u, v = fresh_edge g in
          let subscriber = Client.connect ~port () in
          check "subscribed at manifest version"
            c.manifest.Partition.version
            (Client.subscribe subscriber);
          Client.with_connection ~port (fun cl ->
              check "negotiated newest" Protocol.version (Client.version cl);
              let routed =
                Client.mine cl (Protocol.mine_params ~l:4 ~delta:2 ~sigma:2 ())
              in
              check_str "wire mine byte-identical"
                (render
                   (patterns_of
                      (Server.handle c.reference
                         (Protocol.Mine
                            { l = 4; delta = 2; sigma = 2;
                              closed_growth = false; family = Spm_core.Constraints.Skinny }))))
                (render routed);
              Alcotest.(check (list string))
                "complete answer" [] (Client.last_unreachable cl);
              let diff = Client.update cl [ Delta.Add_edge (u, v) ] in
              let expected =
                match
                  (Server.handle c.reference
                     (Protocol.Update
                        { Protocol.edits = [ Delta.Add_edge (u, v) ] }))
                    .Protocol.payload
                with
                | Protocol.Update_reply r -> r
                | _ -> Alcotest.fail "reference update failed"
              in
              check_str "wire update diff matches" (render_diff expected)
                (render_diff diff);
              (match Client.next_diff subscriber with
              | Some pushed ->
                check_str "subscriber got the merged diff"
                  (render_diff expected) (render_diff pushed)
              | None -> Alcotest.fail "subscriber stream ended early");
              Client.shutdown cl);
          Client.close subscriber))

let () =
  Alcotest.run "cluster"
    [
      ( "placement",
        [ Alcotest.test_case "shard key pinned" `Quick test_shard_key_pinned ] );
      ( "partition",
        [
          Alcotest.test_case "split partitions" `Quick test_split_partitions;
          Alcotest.test_case "split rejects" `Quick test_split_rejects;
          Alcotest.test_case "manifest round trip" `Quick
            test_manifest_roundtrip;
        ] );
      ( "router",
        [
          Alcotest.test_case "byte identity at 1/2/4 shards" `Quick
            test_router_byte_identity;
          Alcotest.test_case "post-update byte identity" `Quick
            test_update_byte_identity;
          Alcotest.test_case "neighborhood byte identity at 2 shards" `Quick
            test_router_neighborhood_byte_identity;
          Alcotest.test_case "planner prunes" `Quick test_planner_prunes;
        ] );
      ( "failure",
        [
          Alcotest.test_case "worker kill -> partial -> recovery" `Quick
            test_worker_kill_partial_and_recovery;
          Alcotest.test_case "update needs every shard" `Quick
            test_update_needs_every_shard;
        ] );
      ( "wire",
        [
          Alcotest.test_case "served router + subscriber" `Quick
            test_router_over_the_wire;
        ] );
    ]
