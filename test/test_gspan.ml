(* Tests for the gSpan growth engine: completeness against a brute-force
   connected-subgraph enumerator, canonical (unique) generation, support
   semantics, and budget caps. *)

open Spm_graph
open Spm_pattern
open Spm_gspan

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Brute-force: all connected subgraphs (as patterns up to isomorphism) with
   1..max_edges edges of a graph. Exponential; only for tiny graphs. *)
let connected_subgraph_keys g ~max_edges =
  let all_edges = Array.of_list (Graph.edges g) in
  let m = Array.length all_edges in
  let keys = Hashtbl.create 64 in
  let patterns = Hashtbl.create 64 in
  let consider chosen =
    let es = List.map (fun i -> all_edges.(i)) chosen in
    let vs =
      List.concat_map (fun (u, v) -> [ u; v ]) es
      |> List.sort_uniq Int.compare |> Array.of_list
    in
    let idx = Hashtbl.create 8 in
    Array.iteri (fun i v -> Hashtbl.add idx v i) vs;
    let labels = Array.map (fun v -> Graph.label g v) vs in
    let es' = List.map (fun (u, v) -> (Hashtbl.find idx u, Hashtbl.find idx v)) es in
    let p = Graph.Builder.of_edges ~labels es' in
    if Bfs.is_connected p then begin
      let k = Canon.key p in
      if not (Hashtbl.mem keys k) then begin
        Hashtbl.add keys k ();
        Hashtbl.add patterns k p
      end
    end
  in
  let rec choose i chosen size =
    if size > 0 && size <= max_edges then consider chosen;
    if i < m && size < max_edges then begin
      choose (i + 1) (i :: chosen) (size + 1);
      choose (i + 1) chosen size
    end
  in
  choose 0 [] 0;
  patterns

let result_keys (outcome : Engine.outcome) =
  List.map (fun r -> Canon.key r.Engine.pattern) outcome.Engine.results
  |> List.sort_uniq String.compare

(* --- Transaction setting --- *)

let test_gspan_single_edge_db () =
  let e01 = Pattern.singleton_edge 0 1 in
  let e02 = Pattern.singleton_edge 0 2 in
  let db = [ e01; e01; e02 ] in
  let out = Gspan.mine ~db ~sigma:2 () in
  check "one frequent pattern" 1 (List.length out.Engine.results);
  let r = List.hd out.Engine.results in
  check "its support" 2 r.Engine.support;
  check_bool "complete" true out.Engine.complete

let test_gspan_completeness_vs_brute_force () =
  let st = Gen.rng 2024 in
  for trial = 1 to 8 do
    let db =
      List.init 4 (fun i ->
          Gen.erdos_renyi st ~n:(5 + ((trial + i) mod 3)) ~avg_degree:2.2
            ~num_labels:2)
    in
    let max_edges = 4 in
    let sigma = 2 in
    let out = Gspan.mine ~max_edges ~db ~sigma () in
    check_bool "run complete" true out.Engine.complete;
    (* Reference: union of per-graph subgraph patterns, supported by
       counting containing graphs. *)
    let per_graph = List.map (fun g -> connected_subgraph_keys g ~max_edges) db in
    let union = Hashtbl.create 64 in
    List.iter
      (fun tbl -> Hashtbl.iter (fun k p -> Hashtbl.replace union k p) tbl)
      per_graph;
    let expected =
      Hashtbl.fold
        (fun k p acc ->
          let support =
            List.fold_left
              (fun c g -> if Subiso.exists ~pattern:p ~target:g then c + 1 else c)
              0 db
          in
          if support >= sigma then k :: acc else acc)
        union []
      |> List.sort_uniq String.compare
    in
    Alcotest.(check (list string))
      (Printf.sprintf "trial %d matches brute force" trial)
      expected (result_keys out)
  done

let test_gspan_unique_generation () =
  let st = Gen.rng 77 in
  let db = List.init 3 (fun _ -> Gen.erdos_renyi st ~n:7 ~avg_degree:2.5 ~num_labels:2) in
  let out = Gspan.mine ~max_edges:4 ~db ~sigma:1 () in
  let keys = List.map (fun r -> Canon.key r.Engine.pattern) out.Engine.results in
  check "no duplicate patterns" (List.length keys)
    (List.length (List.sort_uniq String.compare keys))

let test_gspan_support_values () =
  (* db: triangle(0,0,0) x2, path(0,0,0) x1. Path embeds in triangles too. *)
  let tri = Graph.Builder.of_edges ~labels:[| 0; 0; 0 |] [ (0, 1); (1, 2); (0, 2) ] in
  let path = Pattern.of_path_labels [| 0; 0; 0 |] in
  let db = [ tri; tri; path ] in
  let out = Gspan.mine ~db ~sigma:2 () in
  let find key =
    List.find_opt (fun r -> String.equal (Canon.key r.Engine.pattern) key) out.Engine.results
  in
  (match find (Canon.key path) with
  | Some r -> check "path support 3" 3 r.Engine.support
  | None -> Alcotest.fail "path not found");
  match find (Canon.key tri) with
  | Some r -> check "triangle support 2" 2 r.Engine.support
  | None -> Alcotest.fail "triangle not found"

let test_gspan_caps () =
  let st = Gen.rng 5 in
  let db = [ Gen.erdos_renyi st ~n:12 ~avg_degree:3.0 ~num_labels:1 ] in
  let out = Gspan.mine ~max_patterns:3 ~db ~sigma:1 () in
  check_bool "truncated" false out.Engine.complete;
  check "respects cap" 3 (List.length out.Engine.results);
  let out2 = Gspan.mine ~max_edges:2 ~db ~sigma:1 () in
  check_bool "size-capped is complete" true
    (List.for_all (fun r -> Pattern.size r.Engine.pattern <= 2) out2.Engine.results)

(* --- Single graph (MoSS) --- *)

let test_moss_sigma1_equals_enumeration () =
  let st = Gen.rng 99 in
  let g = Gen.erdos_renyi st ~n:7 ~avg_degree:2.0 ~num_labels:2 in
  let max_edges = 3 in
  let out = Moss.mine ~max_edges ~graph:g ~sigma:1 () in
  let expected =
    connected_subgraph_keys g ~max_edges
    |> fun tbl ->
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string)) "sigma=1 complete" expected (result_keys out)

let test_moss_embedding_count_support () =
  (* Star with 3 same-label leaves: edge pattern support = 3 subgraphs. *)
  let star = Gen.star_graph ~center:0 [| 1; 1; 1 |] in
  let out = Moss.mine ~graph:star ~sigma:3 () in
  (* Only the edge (0)-(1) reaches support 3 (each 2-edge path has 3
     embeddings too: chooses 2 of 3 leaves). *)
  let sizes =
    List.map (fun r -> (Pattern.size r.Engine.pattern, r.Engine.support)) out.Engine.results
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int))) "patterns with support"
    [ (1, 3); (2, 3) ] sizes

let test_moss_mni_measure () =
  let star = Gen.star_graph ~center:0 [| 1; 1; 1 |] in
  let out = Moss.mine ~measure:Engine.Mni ~graph:star ~sigma:2 () in
  (* MNI of the edge pattern is min(1, 3) = 1 < 2: nothing is frequent. *)
  check "mni prunes" 0 (List.length out.Engine.results)

let test_moss_finds_injected_pattern () =
  let st = Gen.rng 31 in
  let bg = Gen.erdos_renyi st ~n:40 ~avg_degree:1.5 ~num_labels:6 in
  let b = Graph.Builder.of_graph bg in
  let pat = Pattern.of_path_labels [| 3; 4; 5; 3 |] in
  ignore (Gen.inject st b ~pattern:pat ~copies:3 ());
  let g = Graph.Builder.freeze b in
  let out = Moss.mine ~max_edges:3 ~graph:g ~sigma:3 () in
  check_bool "injected pattern found" true
    (List.exists (fun r -> Canon.iso r.Engine.pattern pat) out.Engine.results)

let prop_gspan_patterns_are_frequent =
  QCheck.Test.make ~name:"every reported pattern really meets its support"
    ~count:15
    QCheck.(int_range 4 7)
    (fun n ->
      let st = Gen.rng (n * 3) in
      let db = List.init 3 (fun _ -> Gen.erdos_renyi st ~n ~avg_degree:2.0 ~num_labels:2) in
      let out = Gspan.mine ~max_edges:3 ~db ~sigma:2 () in
      List.for_all
        (fun r ->
          Support.transaction r.Engine.pattern db = r.Engine.support
          && r.Engine.support >= 2)
        out.Engine.results)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "gspan"
    [
      ( "gspan",
        [
          Alcotest.test_case "single edge db" `Quick test_gspan_single_edge_db;
          Alcotest.test_case "completeness vs brute force" `Slow
            test_gspan_completeness_vs_brute_force;
          Alcotest.test_case "unique generation" `Quick test_gspan_unique_generation;
          Alcotest.test_case "support values" `Quick test_gspan_support_values;
          Alcotest.test_case "caps" `Quick test_gspan_caps;
        ] );
      ( "moss",
        [
          Alcotest.test_case "sigma=1 equals enumeration" `Quick
            test_moss_sigma1_equals_enumeration;
          Alcotest.test_case "embedding-count support" `Quick
            test_moss_embedding_count_support;
          Alcotest.test_case "mni measure" `Quick test_moss_mni_measure;
          Alcotest.test_case "finds injected pattern" `Quick
            test_moss_finds_injected_pattern;
        ] );
      qsuite "props" [ prop_gspan_patterns_are_frequent ];
    ]
