(* Frame-level fuzzing of the SKNYSRV protocol.

   The contract under attack: whatever bytes a peer throws at the serving
   endpoint — wrong handshakes, oversized or truncated frames, undecodable
   payloads, mutated valid requests — it answers with an [Error] response
   or drops that one connection, and ALWAYS stays alive for the next
   client. Every attack round is followed by a liveness probe (fresh
   connection, handshake, Ping) so a hung or dead endpoint fails the very
   round that killed it.

   Both serving tiers speak the same wire protocol, so every attack runs
   twice: once against a single-process {!Server}, once against a
   {!Spm_cluster.Router} fronting two shard workers — a fuzz-crashed
   router (or a router wedged by a confused worker leg) fails the same
   liveness probe.

   All randomness is drawn from fixed seeds; everything runs in-process on
   ephemeral ports. *)

module Protocol = Spm_server.Protocol
module Server = Spm_server.Server
module Client = Spm_server.Client
module Partition = Spm_cluster.Partition
module Worker = Spm_cluster.Worker
module Router = Spm_cluster.Router

let graph () =
  (Spm_oracle.Corpus.find "star6").Spm_oracle.Corpus.graph

let with_server f =
  let t = Server.create ~jobs:1 ~mine_timeout:5.0 () in
  Server.set_graph t (graph ());
  let fd, port = Server.listen ~port:0 () in
  let th = Thread.create (fun () -> Server.serve t fd) () in
  Fun.protect
    ~finally:(fun () ->
      (try Client.with_connection ~port Client.shutdown
       with _ -> ());
      Thread.join th)
    (fun () -> f port)

(* The same wire surface served by a router over two shard workers: the
   corpus graph mined at toy parameters, partitioned, one worker per
   shard, router on an ephemeral port. *)
let with_router f =
  let dir = Filename.temp_file "spm_fuzz_cluster_" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let g = graph () in
  let r = Spm_core.Skinny_mine.mine g ~l:2 ~delta:1 ~sigma:1 in
  let s =
    Spm_store.Store.of_result ~graph:g ~l:2 ~delta:1 ~sigma:1
      ~closed_growth:false r
  in
  let base = Filename.concat dir "corpus" in
  let shards = 2 in
  let manifest = Partition.write ~base ~shards s in
  let workers =
    Array.init shards (fun i ->
        Worker.start ~jobs:1
          (Spm_store.Store.load (Partition.shard_file ~base ~shard:i ~shards)))
  in
  let endpoints = Array.map (fun w -> ("127.0.0.1", Worker.port w)) workers in
  let router = Router.create ~deadline:30.0 ~manifest ~endpoints () in
  let fd, port = Server.listen ~port:0 () in
  let th = Thread.create (fun () -> Router.serve router fd) () in
  Fun.protect
    ~finally:(fun () ->
      (try Client.with_connection ~port Client.shutdown with _ -> ());
      Thread.join th;
      Array.iter Worker.stop workers;
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with _ -> ())
    (fun () -> f port)

(* Every attack suite runs against both serving tiers. *)
let targets = [ ("server", with_server); ("router", with_router) ]

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* The whole point: after every attack the server must still serve. *)
let assert_alive ~after port =
  match Client.with_connection ~port (fun c -> Client.ping c) with
  | () -> ()
  | exception e ->
    Alcotest.failf "server dead after %s: %s" after (Printexc.to_string e)

let frame payload =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int (String.length payload));
  Bytes.to_string b ^ payload

let raw_frame_header len =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.to_string b

(* --- handshake attacks --- *)

let bad_handshakes =
  [
    ("v1 peer", "SKNYSRV1");
    ("http", "GET / HT");
    ("zeros", String.make 8 '\000');
    ("all-ff", String.make 8 '\xff');
    ("short then close", "SKN");
    ("empty close", "");
  ]

let test_bad_handshakes with_target () =
  with_target (fun port ->
      List.iter
        (fun (name, hs) ->
          let fd = connect port in
          send_all fd hs;
          (* Half-close our side: a short handshake otherwise leaves the
             server waiting for the remaining bytes while we wait for its
             reply — a mutual deadlock of the test's own making. *)
          (try Unix.shutdown fd Unix.SHUTDOWN_SEND
           with Unix.Unix_error _ -> ());
          (* The server must NOT echo the handshake back on a mismatch:
             either orderly close or silence-then-close. Read with a
             timeout and accept only EOF. *)
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
          let buf = Bytes.create 8 in
          (match Unix.read fd buf 0 8 with
          | 0 -> ()
          | n ->
            (* Any echo of the real handshake to a bad peer is a bug. *)
            if Bytes.sub_string buf 0 n = String.sub Protocol.handshake 0 n
            then Alcotest.failf "server echoed handshake to %s" name
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
            Alcotest.failf "server hung on bad handshake %s" name
          | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> ());
          close_quietly fd;
          assert_alive ~after:(Printf.sprintf "bad handshake %S" name) port)
        bad_handshakes)

(* --- frame attacks (after a genuine handshake) --- *)

let handshaken port =
  let fd = connect port in
  send_all fd Protocol.handshake;
  let echo = Bytes.create 8 in
  let got = Unix.read fd echo 0 8 in
  Alcotest.(check string)
    "handshake echoed" Protocol.handshake
    (Bytes.sub_string echo 0 got);
  fd

let test_frame_attacks with_target () =
  with_target (fun port ->
      let attacks =
        [
          ("oversized length prefix", raw_frame_header (Protocol.max_frame + 1));
          ("negative length prefix", "\xff\xff\xff\xff");
          ("truncated frame", raw_frame_header 100 ^ String.make 10 'x');
          ("zero-length frame", raw_frame_header 0);
          ("garbage payload", frame (String.make 64 '\x9b'));
          ("partial header", "\x00\x00");
        ]
      in
      List.iter
        (fun (name, bytes) ->
          let fd = handshaken port in
          send_all fd bytes;
          close_quietly fd;
          assert_alive ~after:name port)
        attacks)

(* --- mutated valid requests --- *)

let test_mutated_requests with_target () =
  let requests =
    [
      Protocol.Ping;
      Protocol.Stats;
      Protocol.Progress;
      Protocol.Lookup
        {
          Protocol.min_support = Some 1;
          max_support = None;
          length = Some 2;
          labels = None;
        };
      Protocol.Contains (graph ());
      (* Skinny Mine keeps the v2 tag-2 encoding; neighborhood Mine is the
         v5 tag-11 request — mutate both so the versioned decode path and
         the router's family dispatch face damaged bytes too. *)
      Protocol.Mine (Protocol.mine_params ~l:2 ~delta:1 ~sigma:1 ());
      Protocol.Mine
        (Protocol.mine_params
           ~family:(Spm_core.Constraints.Neighborhood { center = None })
           ~l:0 ~delta:1 ~sigma:1 ());
      Protocol.Mine
        (Protocol.mine_params
           ~family:(Spm_core.Constraints.Neighborhood { center = Some 1 })
           ~l:0 ~delta:2 ~sigma:1 ());
    ]
  in
  (* A fresh stream per target: both tiers face the identical mutation
     sequence. *)
  let st = Spm_graph.Gen.rng 777 in
  with_target (fun port ->
      List.iter
        (fun req ->
          let payload = Protocol.encode_request req in
          for round = 1 to 20 do
            let b = Bytes.of_string payload in
            let i = Random.State.int st (Bytes.length b) in
            Bytes.set b i (Char.chr (Random.State.int st 256));
            let fd = handshaken port in
            send_all fd (frame (Bytes.to_string b));
            (* Whatever the mutation decoded to, the server must produce
               exactly one well-formed response frame (possibly Error) or
               close; then it must still be alive. *)
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
            (match Protocol.read_frame fd with
            | None -> ()
            | Some resp ->
              ignore (Protocol.decode_response resp)
            | exception Spm_store.Codec.Corrupt _ -> ()
            | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
              Alcotest.failf "server hung on mutated request (round %d)" round
            | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> ());
            close_quietly fd;
            assert_alive ~after:"mutated request" port
          done)
        requests)

(* --- random payload soak, no socket: the request decoder itself --- *)

let test_decode_request_total () =
  let st = Spm_graph.Gen.rng 31337 in
  for _ = 1 to 2000 do
    let len = Random.State.int st 200 in
    let s = String.init len (fun _ -> Char.chr (Random.State.int st 256)) in
    match Protocol.decode_request s with
    | _ -> ()
    | exception Spm_store.Codec.Corrupt _ -> ()
    | exception e ->
      Alcotest.failf "decode_request raised %s on random bytes"
        (Printexc.to_string e)
  done

let () =
  Alcotest.run "fuzz_protocol"
    (List.map
       (fun (tname, with_target) ->
         ( tname,
           [
             Alcotest.test_case
               (Printf.sprintf "bad handshakes never kill the %s" tname)
               `Quick
               (test_bad_handshakes with_target);
             Alcotest.test_case
               (Printf.sprintf "malformed frames never kill the %s" tname)
               `Quick
               (test_frame_attacks with_target);
             Alcotest.test_case "mutated requests earn error responses" `Quick
               (test_mutated_requests with_target);
           ] ))
       targets
    @ [
        ( "decoder",
          [
            Alcotest.test_case "request decoder is total" `Quick
              test_decode_request_total;
          ] );
      ])
