(* Byte-level fuzzing of the store codec.

   The contract under attack: a {!Spm_store.Store} file either decodes to
   the value that was encoded, or decoding raises {!Spm_store.Codec.Corrupt}
   — never a wrong value, never another exception, never a crash. Every
   section is CRC-framed and the header is magic+version checked, so EVERY
   single-byte corruption and EVERY truncation of a valid file must be
   detected, exhaustively, not probabilistically. On top of the exhaustive
   sweeps, a seeded random-mutation soak covers multi-byte damage.

   Deterministic by construction: inputs come from the committed corpus and
   a fixed seed, so a failure here reproduces as-is. *)

open Spm_oracle

(* Mines the item under its own constraint family, so neighborhood corpus
   items produce stores carrying the 'C' constraint section. *)
let mine_store name =
  let it = Corpus.find name in
  let g = it.Corpus.graph in
  let r =
    Spm_core.Skinny_mine.mine
      ~config:
        {
          Spm_core.Skinny_mine.Config.default with
          jobs = 1;
          family = it.Corpus.family;
        }
      g ~l:it.Corpus.l ~delta:it.Corpus.delta ~sigma:it.Corpus.sigma
  in
  Spm_store.Store.of_result ~family:it.Corpus.family ~graph:g ~l:it.Corpus.l
    ~delta:it.Corpus.delta ~sigma:it.Corpus.sigma ~closed_growth:false r

(* [decode] must refuse [bytes] with Corrupt — anything else is a verdict:
   success = wrong decode (the bytes differ from a valid encoding), another
   exception = crash escape. *)
let expect_corrupt (type a) ~what (decode : string -> a) bytes =
  match decode bytes with
  | _ -> Alcotest.failf "%s: accepted corrupted input" what
  | exception Spm_store.Codec.Corrupt _ -> ()
  | exception e ->
    Alcotest.failf "%s: raised %s instead of Codec.Corrupt" what
      (Printexc.to_string e)

let flip_byte s i mask =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
  Bytes.to_string b

let exhaustive_flips ~what decode encoded =
  List.iter
    (fun mask ->
      for i = 0 to String.length encoded - 1 do
        expect_corrupt
          ~what:(Printf.sprintf "%s: byte %d xor 0x%02x" what i mask)
          decode
          (flip_byte encoded i mask)
      done)
    [ 0xFF; 0x01; 0x80 ]

let exhaustive_truncations ~what decode encoded =
  for len = 0 to String.length encoded - 1 do
    expect_corrupt
      ~what:(Printf.sprintf "%s: truncated to %d bytes" what len)
      decode (String.sub encoded 0 len)
  done

let random_mutations ~what ~seed ~rounds decode encoded =
  let st = Spm_graph.Gen.rng seed in
  let len = String.length encoded in
  for round = 1 to rounds do
    let b = Bytes.of_string encoded in
    let hits = 1 + Random.State.int st 4 in
    let changed = ref false in
    for _ = 1 to hits do
      let i = Random.State.int st len in
      let c = Char.chr (Random.State.int st 256) in
      if c <> Bytes.get b i then begin
        Bytes.set b i c;
        changed := true
      end
    done;
    if !changed then
      expect_corrupt
        ~what:(Printf.sprintf "%s: random mutation round %d" what round)
        decode (Bytes.to_string b)
  done

let test_store_roundtrip_baseline () =
  (* The unmutated encoding must decode back byte-stably — otherwise the
     corruption verdicts below would be vacuous. *)
  let store = mine_store "star6" in
  let encoded = Spm_store.Store.encode store in
  let decoded = Spm_store.Store.decode encoded in
  Alcotest.(check string)
    "encode . decode = id on bytes" encoded
    (Spm_store.Store.encode decoded)

let test_store_flips () =
  let encoded = Spm_store.Store.encode (mine_store "star6") in
  exhaustive_flips ~what:"pattern store" Spm_store.Store.decode encoded

let test_store_truncations () =
  let encoded = Spm_store.Store.encode (mine_store "star6") in
  exhaustive_truncations ~what:"pattern store" Spm_store.Store.decode encoded

let test_store_random_soak () =
  let encoded = Spm_store.Store.encode (mine_store "er10_dense") in
  random_mutations ~what:"pattern store" ~seed:4242 ~rounds:400
    Spm_store.Store.decode encoded

(* Neighborhood stores add the 'C' constraint section: its payload is
   CRC-framed like every other section and its tag byte is covered by the
   section-grammar check, so the same exhaustive guarantees must hold. The
   centered item additionally exercises the Some-center encoding. *)

let test_nbr_store_roundtrip_baseline () =
  List.iter
    (fun name ->
      let store = mine_store name in
      Alcotest.(check bool)
        (name ^ " mined something") true
        (store.Spm_store.Store.patterns <> []);
      let encoded = Spm_store.Store.encode store in
      let decoded = Spm_store.Store.decode encoded in
      Alcotest.(check bool)
        (name ^ " family preserved") true
        (decoded.Spm_store.Store.family = store.Spm_store.Store.family);
      Alcotest.(check string)
        (name ^ ": encode . decode = id on bytes")
        encoded
        (Spm_store.Store.encode decoded))
    [ "nbr_star6"; "nbr_center2" ]

let test_nbr_store_flips () =
  let encoded = Spm_store.Store.encode (mine_store "nbr_star6") in
  exhaustive_flips ~what:"neighborhood store" Spm_store.Store.decode encoded

let test_nbr_store_truncations () =
  let encoded = Spm_store.Store.encode (mine_store "nbr_star6") in
  exhaustive_truncations ~what:"neighborhood store" Spm_store.Store.decode
    encoded

let test_nbr_store_random_soak () =
  let encoded = Spm_store.Store.encode (mine_store "nbr_er12") in
  random_mutations ~what:"neighborhood store" ~seed:4243 ~rounds:400
    Spm_store.Store.decode encoded

(* --- mapped (G2) opens: fuzzing through the file system --- *)

let with_temp_dir f =
  let dir = Filename.temp_file "fuzz_store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> Sys.remove (Filename.concat dir n))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let g2_encoded () = Spm_store.Store.encode (mine_store "star6")

(* Every byte inside the ranges the mapped open claims to validate (header,
   sections, padding, sampled payload pages, trailer) must, when flipped,
   make [load_mapped] refuse the file with Corrupt. *)
let test_mapped_checked_byte_flips () =
  let encoded = g2_encoded () in
  with_temp_dir (fun dir ->
      let ranges = Spm_store.Store.g2_checked_byte_ranges encoded in
      Alcotest.(check bool) "checked ranges exist" true (ranges <> []);
      let mut = Filename.concat dir "mut.spm" in
      List.iter
        (fun mask ->
          List.iter
            (fun (pos, len) ->
              for i = pos to pos + len - 1 do
                write_file mut (flip_byte encoded i mask);
                expect_corrupt
                  ~what:
                    (Printf.sprintf "mapped open: byte %d xor 0x%02x" i mask)
                  Spm_store.Store.load_mapped mut
              done)
            ranges)
        [ 0xFF; 0x01; 0x80 ])

(* Bytes outside the checked ranges are trusted at open time (that is the
   documented mmap trust model) — flipping them must never escape as a crash
   or a foreign exception: the open either succeeds or raises Corrupt. The
   full-file verifier, which streams the whole payload CRC, must still catch
   every one of them. Uses a store whose payload spans more pages than the
   sample budget so trusted bytes exist; seeded sample (an exhaustive sweep
   would rewrite a ~300 KB file per trusted byte). *)
let big_graph_encoded () =
  let st = Spm_graph.Gen.rng 9091 in
  let g =
    Spm_graph.Gen.erdos_renyi st ~n:3000 ~avg_degree:4.0 ~num_labels:20
  in
  Spm_store.Store.encode (Spm_store.Store.of_graph g)

let test_mapped_unchecked_flips_never_crash () =
  let encoded = big_graph_encoded () in
  let len = String.length encoded in
  let checked = Array.make len false in
  List.iter
    (fun (pos, l) ->
      for i = pos to pos + l - 1 do
        checked.(i) <- true
      done)
    (Spm_store.Store.g2_checked_byte_ranges encoded);
  let unchecked = ref [] in
  for i = len - 1 downto 0 do
    if not checked.(i) then unchecked := i :: !unchecked
  done;
  let unchecked = Array.of_list !unchecked in
  Alcotest.(check bool) "some bytes are trusted at open" true
    (Array.length unchecked > 0);
  let st = Spm_graph.Gen.rng 777 in
  with_temp_dir (fun dir ->
      let mut = Filename.concat dir "mut.spm" in
      for _ = 1 to 200 do
        let i = unchecked.(Random.State.int st (Array.length unchecked)) in
        write_file mut (flip_byte encoded i 0xFF);
        (match Spm_store.Store.load_mapped mut with
        | _ -> ()
        | exception Spm_store.Codec.Corrupt _ -> ()
        | exception e ->
          Alcotest.failf "unchecked byte %d: raised %s" i
            (Printexc.to_string e));
        expect_corrupt
          ~what:(Printf.sprintf "verify_file: trusted byte %d" i)
          Spm_store.Store.verify_file mut
      done)

(* [verify_file] reads everything (section CRCs plus the full payload CRC),
   so it must catch the flips the sampled open is allowed to miss. *)
let test_verify_file_catches_every_flip () =
  let encoded = g2_encoded () in
  with_temp_dir (fun dir ->
      let mut = Filename.concat dir "mut.spm" in
      String.iteri
        (fun i _ ->
          write_file mut (flip_byte encoded i 0xFF);
          expect_corrupt
            ~what:(Printf.sprintf "verify_file: byte %d xor 0xff" i)
            Spm_store.Store.verify_file mut)
        encoded)

(* Truncation can never segfault a mapped open or hand back a partial
   graph: every prefix must be refused outright. *)
let test_mapped_truncations () =
  let encoded = g2_encoded () in
  with_temp_dir (fun dir ->
      let mut = Filename.concat dir "trunc.spm" in
      for len = 0 to String.length encoded - 1 do
        write_file mut (String.sub encoded 0 len);
        expect_corrupt
          ~what:(Printf.sprintf "mapped open: truncated to %d bytes" len)
          Spm_store.Store.load_mapped mut
      done)

let index_bytes () =
  let it = Corpus.find "path8" in
  let idx =
    Spm_core.Diameter_index.build it.Corpus.graph ~sigma:1 ~l_max:3
  in
  Spm_store.Store.encode_index idx

let test_index_flips () =
  let encoded = index_bytes () in
  exhaustive_flips ~what:"index snapshot"
    (fun s -> Spm_store.Store.decode_index s)
    encoded

let test_index_truncations () =
  let encoded = index_bytes () in
  exhaustive_truncations ~what:"index snapshot"
    (fun s -> Spm_store.Store.decode_index s)
    encoded

let () =
  Alcotest.run "fuzz_store"
    [
      ( "store",
        [
          Alcotest.test_case "roundtrip baseline" `Quick
            test_store_roundtrip_baseline;
          Alcotest.test_case "every single-byte flip detected" `Quick
            test_store_flips;
          Alcotest.test_case "every truncation detected" `Quick
            test_store_truncations;
          Alcotest.test_case "seeded random mutation soak" `Quick
            test_store_random_soak;
        ] );
      ( "neighborhood-store",
        [
          Alcotest.test_case "roundtrip baseline" `Quick
            test_nbr_store_roundtrip_baseline;
          Alcotest.test_case "every single-byte flip detected" `Quick
            test_nbr_store_flips;
          Alcotest.test_case "every truncation detected" `Quick
            test_nbr_store_truncations;
          Alcotest.test_case "seeded random mutation soak" `Quick
            test_nbr_store_random_soak;
        ] );
      ( "mapped",
        [
          Alcotest.test_case "checked-range byte flips refused" `Quick
            test_mapped_checked_byte_flips;
          Alcotest.test_case "unchecked byte flips never crash" `Quick
            test_mapped_unchecked_flips_never_crash;
          Alcotest.test_case "verify_file catches every flip" `Quick
            test_verify_file_catches_every_flip;
          Alcotest.test_case "every truncation refused" `Quick
            test_mapped_truncations;
        ] );
      ( "index",
        [
          Alcotest.test_case "every single-byte flip detected" `Quick
            test_index_flips;
          Alcotest.test_case "every truncation detected" `Quick
            test_index_truncations;
        ] );
    ]
