(* Byte-level fuzzing of the store codec.

   The contract under attack: a {!Spm_store.Store} file either decodes to
   the value that was encoded, or decoding raises {!Spm_store.Codec.Corrupt}
   — never a wrong value, never another exception, never a crash. Every
   section is CRC-framed and the header is magic+version checked, so EVERY
   single-byte corruption and EVERY truncation of a valid file must be
   detected, exhaustively, not probabilistically. On top of the exhaustive
   sweeps, a seeded random-mutation soak covers multi-byte damage.

   Deterministic by construction: inputs come from the committed corpus and
   a fixed seed, so a failure here reproduces as-is. *)

open Spm_oracle

let mine_store name =
  let it = Corpus.find name in
  let g = it.Corpus.graph in
  let r =
    Spm_core.Skinny_mine.mine
      ~config:{ Spm_core.Skinny_mine.Config.default with jobs = 1 }
      g ~l:it.Corpus.l ~delta:it.Corpus.delta ~sigma:it.Corpus.sigma
  in
  Spm_store.Store.of_result ~graph:g ~l:it.Corpus.l ~delta:it.Corpus.delta
    ~sigma:it.Corpus.sigma ~closed_growth:false r

(* [decode] must refuse [bytes] with Corrupt — anything else is a verdict:
   success = wrong decode (the bytes differ from a valid encoding), another
   exception = crash escape. *)
let expect_corrupt (type a) ~what (decode : string -> a) bytes =
  match decode bytes with
  | _ -> Alcotest.failf "%s: accepted corrupted input" what
  | exception Spm_store.Codec.Corrupt _ -> ()
  | exception e ->
    Alcotest.failf "%s: raised %s instead of Codec.Corrupt" what
      (Printexc.to_string e)

let flip_byte s i mask =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
  Bytes.to_string b

let exhaustive_flips ~what decode encoded =
  List.iter
    (fun mask ->
      for i = 0 to String.length encoded - 1 do
        expect_corrupt
          ~what:(Printf.sprintf "%s: byte %d xor 0x%02x" what i mask)
          decode
          (flip_byte encoded i mask)
      done)
    [ 0xFF; 0x01; 0x80 ]

let exhaustive_truncations ~what decode encoded =
  for len = 0 to String.length encoded - 1 do
    expect_corrupt
      ~what:(Printf.sprintf "%s: truncated to %d bytes" what len)
      decode (String.sub encoded 0 len)
  done

let random_mutations ~what ~seed ~rounds decode encoded =
  let st = Spm_graph.Gen.rng seed in
  let len = String.length encoded in
  for round = 1 to rounds do
    let b = Bytes.of_string encoded in
    let hits = 1 + Random.State.int st 4 in
    let changed = ref false in
    for _ = 1 to hits do
      let i = Random.State.int st len in
      let c = Char.chr (Random.State.int st 256) in
      if c <> Bytes.get b i then begin
        Bytes.set b i c;
        changed := true
      end
    done;
    if !changed then
      expect_corrupt
        ~what:(Printf.sprintf "%s: random mutation round %d" what round)
        decode (Bytes.to_string b)
  done

let test_store_roundtrip_baseline () =
  (* The unmutated encoding must decode back byte-stably — otherwise the
     corruption verdicts below would be vacuous. *)
  let store = mine_store "star6" in
  let encoded = Spm_store.Store.encode store in
  let decoded = Spm_store.Store.decode encoded in
  Alcotest.(check string)
    "encode . decode = id on bytes" encoded
    (Spm_store.Store.encode decoded)

let test_store_flips () =
  let encoded = Spm_store.Store.encode (mine_store "star6") in
  exhaustive_flips ~what:"pattern store" Spm_store.Store.decode encoded

let test_store_truncations () =
  let encoded = Spm_store.Store.encode (mine_store "star6") in
  exhaustive_truncations ~what:"pattern store" Spm_store.Store.decode encoded

let test_store_random_soak () =
  let encoded = Spm_store.Store.encode (mine_store "er10_dense") in
  random_mutations ~what:"pattern store" ~seed:4242 ~rounds:400
    Spm_store.Store.decode encoded

let index_bytes () =
  let it = Corpus.find "path8" in
  let idx =
    Spm_core.Diameter_index.build it.Corpus.graph ~sigma:1 ~l_max:3
  in
  Spm_store.Store.encode_index idx

let test_index_flips () =
  let encoded = index_bytes () in
  exhaustive_flips ~what:"index snapshot"
    (fun s -> Spm_store.Store.decode_index s)
    encoded

let test_index_truncations () =
  let encoded = index_bytes () in
  exhaustive_truncations ~what:"index snapshot"
    (fun s -> Spm_store.Store.decode_index s)
    encoded

let () =
  Alcotest.run "fuzz_store"
    [
      ( "store",
        [
          Alcotest.test_case "roundtrip baseline" `Quick
            test_store_roundtrip_baseline;
          Alcotest.test_case "every single-byte flip detected" `Quick
            test_store_flips;
          Alcotest.test_case "every truncation detected" `Quick
            test_store_truncations;
          Alcotest.test_case "seeded random mutation soak" `Quick
            test_store_random_soak;
        ] );
      ( "index",
        [
          Alcotest.test_case "every single-byte flip detected" `Quick
            test_index_flips;
          Alcotest.test_case "every truncation detected" `Quick
            test_index_truncations;
        ] );
    ]
