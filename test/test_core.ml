(* Core tests: path patterns, canonical diameters, DiamMine (vs brute-force
   path enumeration), distance indices (vs BFS recomputation), and the three
   constraint-checking modes. *)

open Spm_graph
open Spm_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Path_pattern --- *)

let test_path_pattern_basics () =
  let p = [| 2; 0; 1 |] in
  check "length" 2 (Path_pattern.length p);
  Alcotest.(check (array int)) "canonical flips" [| 1; 0; 2 |] (Path_pattern.canonical p);
  check_bool "not canonical" false (Path_pattern.is_canonical p);
  check_bool "palindrome" true (Path_pattern.is_palindrome [| 1; 0; 1 |]);
  check_bool "not palindrome" false (Path_pattern.is_palindrome [| 1; 0; 2 |]);
  let g = Path_pattern.to_pattern [| 4; 5; 6 |] in
  check "to_pattern n" 3 (Graph.n g);
  check "to_pattern m" 2 (Graph.m g)

let test_path_order_definition2 () =
  (* Definition 2: shorter paths precede longer ones regardless of labels. *)
  check_bool "shorter first" true
    (Path_pattern.compare_labels [| 9; 9 |] [| 0; 0; 0 |] < 0);
  check_bool "label tiebreak" true
    (Path_pattern.compare_labels [| 0; 1; 2 |] [| 0; 2; 1 |] < 0)

let test_emb_support () =
  let embs = [ [| 1; 2; 3 |]; [| 3; 2; 1 |]; [| 4; 5; 6 |] ] in
  check "two distinct subgraphs" 2 (Path_pattern.Emb.support embs);
  check "dedup" 2 (List.length (Path_pattern.Emb.dedup_subgraphs embs))

let test_emb_reads () =
  let g = Gen.path_graph [| 7; 8; 9 |] in
  check_bool "reads" true (Path_pattern.Emb.reads g [| 7; 8; 9 |] [| 0; 1; 2 |]);
  check_bool "wrong labels" false
    (Path_pattern.Emb.reads g [| 9; 8; 7 |] [| 0; 1; 2 |]);
  check_bool "not a path" false
    (Path_pattern.Emb.reads g [| 7; 9 |] [| 0; 2 |])

(* --- Canonical diameter --- *)

let test_canonical_diameter_path () =
  (* A path with ascending labels: the canonical diameter reads the smaller
     orientation. *)
  let p = Gen.path_graph [| 3; 1; 2 |] in
  let l = Canonical_diameter.compute p in
  (* Label sequences: 3-1-2 forwards, 2-1-3 backwards; backwards smaller. *)
  Alcotest.(check (array int)) "orientation by labels" [| 2; 1; 0 |] l

let test_canonical_diameter_id_tiebreak () =
  (* Uniform labels: vertex-id sequence decides (Definition 3). *)
  let p = Gen.path_graph [| 5; 5; 5 |] in
  Alcotest.(check (array int)) "id order" [| 0; 1; 2 |] (Canonical_diameter.compute p)

let test_canonical_diameter_cycle () =
  let c = Gen.cycle_graph [| 0; 0; 0; 0 |] in
  check "cycle diameter" 2 (Bfs.diameter c);
  let l = Canonical_diameter.compute c in
  check "length" 3 (Array.length l);
  (* Smallest realizing path by ids: 0-1-2. *)
  Alcotest.(check (array int)) "min ids" [| 0; 1; 2 |] l

let test_levels_and_skinny () =
  (* Path 0-1-2-3-4 with a twig on vertex 2. *)
  let p =
    Graph.Builder.of_edges ~labels:[| 0; 0; 0; 0; 0; 7 |]
      [ (0, 1); (1, 2); (2, 3); (3, 4); (2, 5) ]
  in
  let l = Canonical_diameter.compute p in
  check "diameter length 4" 5 (Array.length l);
  let levels = Canonical_diameter.levels p ~diameter:l in
  check "twig level" 1 levels.(5);
  check_bool "1-skinny" true (Canonical_diameter.is_skinny p ~delta:1);
  check_bool "not 0-skinny" false (Canonical_diameter.is_skinny p ~delta:0);
  check_bool "4-long 1-skinny" true
    (Canonical_diameter.is_l_long_delta_skinny p ~l:4 ~delta:1);
  check_bool "not 3-long" false
    (Canonical_diameter.is_l_long_delta_skinny p ~l:3 ~delta:1)

let test_realizing_paths_both_orientations () =
  let p = Gen.path_graph [| 1; 0; 1 |] in
  let rs = Canonical_diameter.realizing_paths p in
  check "two orientations" 2 (List.length rs)

let prop_canonical_diameter_is_minimum =
  QCheck.Test.make ~name:"canonical diameter is the minimum realizing path"
    ~count:60
    QCheck.(pair (int_range 3 9) (int_range 0 3))
    (fun (n, extra) ->
      let st = Gen.rng ((n * 71) + extra) in
      let p = Gen.random_connected_pattern st ~n ~extra_edges:extra ~num_labels:3 in
      let l = Canonical_diameter.compute p in
      let rs = Canonical_diameter.realizing_paths p in
      List.for_all (fun r -> Canonical_diameter.compare_paths p l r <= 0) rs
      && List.exists (fun r -> r = l) rs)

(* The fast identity-preservation check must agree exactly with recomputing
   the canonical diameter, on valid grown patterns (diameter on [0..l]) and
   arbitrary perturbations alike. *)
let prop_identity_preserved_equals_compute =
  QCheck.Test.make ~name:"identity_preserved equals compute-based check"
    ~count:120
    QCheck.(pair small_nat (int_range 2 5))
    (fun (seed, l) ->
      let st = Gen.rng ((seed * 13) + l) in
      let labels = Array.init (l + 1) (fun _ -> Random.State.int st 3) in
      let p = ref (Gen.path_graph labels) in
      (* Random growth, accepting everything — produces both preserving and
         violating patterns. *)
      for _ = 1 to 2 + Random.State.int st 5 do
        let n = Graph.n !p in
        if Random.State.bool st then
          p :=
            Spm_pattern.Pattern.extend_new_vertex !p
              ~host:(Random.State.int st n)
              ~label:(Random.State.int st 3)
        else begin
          let u = Random.State.int st n and v = Random.State.int st n in
          if u <> v && not (Graph.has_edge !p u v) then
            p := Spm_pattern.Pattern.extend_close_edge !p u v
        end
      done;
      let reference =
        Bfs.is_connected !p
        && Canonical_diameter.compute !p = Array.init (l + 1) (fun i -> i)
      in
      Canonical_diameter.identity_preserved !p ~l = reference)

let prop_realizing_paths_realize =
  QCheck.Test.make ~name:"realizing paths have diameter length and distance"
    ~count:40
    QCheck.(int_range 3 9)
    (fun n ->
      let st = Gen.rng (n * 17) in
      let p = Gen.random_connected_pattern st ~n ~extra_edges:1 ~num_labels:2 in
      let d = Bfs.diameter p in
      List.for_all
        (fun r ->
          Array.length r = d + 1
          && Paths.is_simple_path p r
          && Bfs.distance p r.(0) r.(d) = d)
        (Canonical_diameter.realizing_paths p))

(* --- DiamMine --- *)

(* Brute-force reference: all frequent simple paths of length l by
   exhaustive enumeration. Returns canonical-label-seq -> support. *)
let brute_force_paths g ~l ~sigma =
  let by_pattern = Hashtbl.create 64 in
  Paths.iter_simple_paths g ~length:l (fun path ->
      let labels = Path_pattern.canonical (Path_pattern.of_vertex_path g path) in
      let cnt = Option.value ~default:0 (Hashtbl.find_opt by_pattern labels) in
      Hashtbl.replace by_pattern labels (cnt + 1));
  Hashtbl.fold
    (fun labels cnt acc -> if cnt >= sigma then (labels, cnt) :: acc else acc)
    by_pattern []
  |> List.sort compare

let diam_mine_summary result =
  List.map
    (fun e -> (e.Diam_mine.labels, Diam_mine.entry_support e))
    result.Diam_mine.entries
  |> List.sort compare

let test_diam_mine_single_edge () =
  let g = Graph.Builder.of_edges ~labels:[| 0; 1; 0; 1 |] [ (0, 1); (2, 3); (1, 2) ] in
  let r = Diam_mine.mine g ~l:1 ~sigma:2 in
  (* All three edges carry labels (0,1); (0,0)/(1,1) never occur. *)
  Alcotest.(check (list (pair (array int) int)))
    "frequent edges"
    [ ([| 0; 1 |], 3) ]
    (diam_mine_summary r)

let test_diam_mine_vs_brute_force_exact () =
  let st = Gen.rng 1234 in
  List.iter
    (fun (n, l, sigma) ->
      let g = Gen.erdos_renyi st ~n ~avg_degree:2.5 ~num_labels:2 in
      let r = Diam_mine.mine ~prune_intermediate:false g ~l ~sigma in
      Alcotest.(check (list (pair (array int) int)))
        (Printf.sprintf "n=%d l=%d sigma=%d" n l sigma)
        (brute_force_paths g ~l ~sigma)
        (diam_mine_summary r))
    [ (10, 2, 1); (10, 3, 2); (12, 4, 2); (12, 5, 2); (14, 6, 2); (9, 7, 1) ]

let test_diam_mine_pruned_is_subset () =
  let st = Gen.rng 321 in
  let g = Gen.erdos_renyi st ~n:14 ~avg_degree:2.5 ~num_labels:2 in
  let full = diam_mine_summary (Diam_mine.mine ~prune_intermediate:false g ~l:5 ~sigma:2) in
  let pruned = diam_mine_summary (Diam_mine.mine g ~l:5 ~sigma:2) in
  check_bool "pruned subset of exact" true
    (List.for_all (fun e -> List.mem e full) pruned)

let test_diam_mine_finds_injected () =
  let st = Gen.rng 55 in
  let bg = Gen.erdos_renyi st ~n:60 ~avg_degree:1.5 ~num_labels:8 in
  let b = Graph.Builder.of_graph bg in
  let labels = [| 3; 4; 5; 6; 7; 3 |] in
  let pat = Gen.path_graph labels in
  ignore (Gen.inject st b ~pattern:pat ~copies:3 ());
  let g = Graph.Builder.freeze b in
  let r = Diam_mine.mine g ~l:5 ~sigma:3 in
  let key = Path_pattern.canonical labels in
  check_bool "injected path found" true
    (List.exists (fun e -> e.Diam_mine.labels = key) r.Diam_mine.entries)

let test_diam_mine_embeddings_valid () =
  let st = Gen.rng 8 in
  let g = Gen.erdos_renyi st ~n:25 ~avg_degree:3.0 ~num_labels:2 in
  let r = Diam_mine.mine g ~l:4 ~sigma:2 in
  List.iter
    (fun e ->
      List.iter
        (fun emb ->
          check_bool "embedding reads labels" true
            (Path_pattern.Emb.reads g e.Diam_mine.labels emb))
        e.Diam_mine.embeddings)
    r.Diam_mine.entries

let test_powers_serves_many_l () =
  let st = Gen.rng 91 in
  let g = Gen.erdos_renyi st ~n:20 ~avg_degree:2.5 ~num_labels:2 in
  let powers = Diam_mine.Powers.build ~prune_intermediate:false g ~sigma:1 ~up_to:6 in
  List.iter
    (fun l ->
      let via_index =
        Diam_mine.Powers.paths_of_length powers ~l ~sigma:1
        |> List.map (fun e -> (e.Diam_mine.labels, Diam_mine.entry_support e))
        |> List.sort compare
      in
      let direct =
        diam_mine_summary (Diam_mine.mine ~prune_intermediate:false g ~l ~sigma:1)
      in
      Alcotest.(check (list (pair (array int) int)))
        (Printf.sprintf "index serves l=%d" l)
        direct via_index)
    [ 1; 2; 3; 4; 5; 6 ]

let prop_diam_mine_exact_complete =
  QCheck.Test.make ~name:"exact DiamMine equals brute-force path mining"
    ~count:25
    QCheck.(pair (int_range 6 12) (int_range 2 6))
    (fun (n, l) ->
      let st = Gen.rng ((n * 1009) + l) in
      let g = Gen.erdos_renyi st ~n ~avg_degree:2.2 ~num_labels:2 in
      diam_mine_summary (Diam_mine.mine ~prune_intermediate:false g ~l ~sigma:2)
      = brute_force_paths g ~l ~sigma:2)

(* --- Distance index --- *)

(* Random valid growth sequence on top of a diameter path; compare the
   incremental index with BFS recomputation at every step. *)
let random_growth_agrees seed =
  let st = Gen.rng seed in
  let l = 3 + Random.State.int st 4 in
  let labels = Array.init (l + 1) (fun _ -> Random.State.int st 3) in
  let p = ref (Gen.path_graph labels) in
  let idx = ref (Distance_index.init !p ~head:0 ~tail:l) in
  let ok = ref true in
  for _ = 1 to 8 do
    let n = Graph.n !p in
    if Random.State.bool st then begin
      (* New leaf on a random host. *)
      let host = Random.State.int st n in
      p := Spm_pattern.Pattern.extend_new_vertex !p ~host ~label:(Random.State.int st 3);
      idx := Distance_index.extend_new_vertex !idx ~host
    end
    else begin
      (* Random closing edge if one is available. *)
      let u = Random.State.int st n and v = Random.State.int st n in
      if u <> v && not (Graph.has_edge !p u v) then begin
        p := Spm_pattern.Pattern.extend_close_edge !p u v;
        idx := Distance_index.extend_close_edge !p !idx u v
      end
    end;
    let fresh = Distance_index.recompute !p ~head:0 ~tail:l in
    if not (Distance_index.equal !idx fresh) then ok := false
  done;
  !ok

let prop_distance_index_incremental =
  QCheck.Test.make ~name:"incremental D_H/D_T equals BFS recomputation"
    ~count:100 QCheck.small_nat
    (fun seed -> random_growth_agrees (seed + 1))

let test_distance_index_leaf () =
  let p = Gen.path_graph [| 0; 0; 0 |] in
  let idx = Distance_index.init p ~head:0 ~tail:2 in
  check "dh head" 0 (Distance_index.dh idx 0);
  check "dh tail" 2 (Distance_index.dh idx 2);
  check "dt head" 2 (Distance_index.dt idx 0);
  let idx' = Distance_index.extend_new_vertex idx ~host:1 in
  check "leaf dh" 2 (Distance_index.dh idx' 3);
  check "leaf dt" 2 (Distance_index.dt idx' 3);
  (* Original untouched (persistence). *)
  check "orig still 3 vertices" 2 (Distance_index.dh idx 2)

(* --- Constraints --- *)

(* Random growth on a diameter; at each candidate extension compare the three
   modes against ground truth. [Exact] must always agree with [Naive]; we
   also track [Paper] (its Theorem-3 trigger is believed exact under the
   level discipline, but we only assert it on extensions the level discipline
   would propose: leaf hosts and closing pairs chosen freely here, so Paper
   is allowed to differ; the property asserts Paper never *wrongly accepts*
   without the naive check failing in the other direction... we simply
   assert Exact = Naive and Paper >= Naive on acceptance soundness). *)
let constraint_modes_once seed =
  let st = Gen.rng seed in
  let l = 3 + Random.State.int st 3 in
  let labels = Array.init (l + 1) (fun _ -> Random.State.int st 3) in
  (* Make the identity path canonical by construction: relabel so that it is
     the canonical diameter of the bare path. *)
  let base = Gen.path_graph labels in
  if Canonical_diameter.compute base <> Array.init (l + 1) (fun i -> i) then
    true (* skip: bare path not canonical in this orientation *)
  else begin
    let p = ref base in
    let idx = ref (Distance_index.init !p ~head:0 ~tail:l) in
    let ok = ref true in
    for _ = 1 to 10 do
      let n = Graph.n !p in
      let choice = Random.State.int st 3 in
      let attempt =
        if choice < 2 then begin
          let host = Random.State.int st n in
          let p' =
            Spm_pattern.Pattern.extend_new_vertex !p ~host
              ~label:(Random.State.int st 3)
          in
          let idx' = Distance_index.extend_new_vertex !idx ~host in
          Some (p', idx', Constraints.New_leaf { host })
        end
        else begin
          let u = Random.State.int st n and v = Random.State.int st n in
          if u <> v && not (Graph.has_edge !p u v) then begin
            let p' = Spm_pattern.Pattern.extend_close_edge !p u v in
            let idx' = Distance_index.extend_close_edge p' !idx u v in
            Some (p', idx', Constraints.Close (u, v))
          end
          else None
        end
      in
      match attempt with
      | None -> ()
      | Some (p', idx', ext) ->
        let naive =
          Constraints.check ~mode:Constraints.Naive ~pattern':p' ~idx:!idx
            ~idx':idx' ~l ext
        in
        let exact =
          Constraints.check ~mode:Constraints.Exact ~pattern':p' ~idx:!idx
            ~idx':idx' ~l ext
        in
        if exact <> naive then ok := false;
        (* Accept only valid extensions so the invariant is maintained. *)
        if naive then begin
          p := p';
          idx := idx'
        end
    done;
    !ok
  end

let prop_constraints_exact_equals_naive =
  QCheck.Test.make ~name:"Exact constraint mode equals naive recomputation"
    ~count:150 QCheck.small_nat
    (fun seed -> constraint_modes_once (seed + 17))

let test_constraint_examples () =
  (* Figure 3-style checks on a concrete 4-long diameter. *)
  let l = 4 in
  let labels = [| 0; 1; 1; 1; 2 |] in
  let p = Gen.path_graph labels in
  Alcotest.(check (array int)) "identity canonical"
    (Array.init 5 (fun i -> i))
    (Canonical_diameter.compute p);
  let idx = Distance_index.init p ~head:0 ~tail:l in
  (* Violating Constraint I: leaf on the head stretches the diameter. *)
  let p1 = Spm_pattern.Pattern.extend_new_vertex p ~host:0 ~label:1 in
  let idx1 = Distance_index.extend_new_vertex idx ~host:0 in
  check_bool "leaf on head rejected" false
    (Constraints.check ~mode:Constraints.Exact ~pattern':p1 ~idx ~idx':idx1 ~l
       (Constraints.New_leaf { host = 0 }));
  check_bool "naive agrees" false (Constraints.check_naive p1 ~l);
  (* Violating Constraint II: chord 0-3 shortens head-tail distance. *)
  let p2 = Spm_pattern.Pattern.extend_close_edge p 0 3 in
  let idx2 = Distance_index.extend_close_edge p2 idx 0 3 in
  check_bool "chord rejected" false
    (Constraints.check ~mode:Constraints.Exact ~pattern':p2 ~idx ~idx':idx2 ~l
       (Constraints.Close (0, 3)));
  (* A mid-path twig is fine. *)
  let p3 = Spm_pattern.Pattern.extend_new_vertex p ~host:2 ~label:3 in
  let idx3 = Distance_index.extend_new_vertex idx ~host:2 in
  check_bool "twig accepted" true
    (Constraints.check ~mode:Constraints.Exact ~pattern':p3 ~idx ~idx':idx3 ~l
       (Constraints.New_leaf { host = 2 }));
  check_bool "naive agrees on twig" true (Constraints.check_naive p3 ~l);
  (* Constraint III: a twig creating a smaller same-length diameter. Labels
     make the alternative path smaller: twig label 0 on vertex 1 gives path
     [twig;1;2;3;4] with labels 0-1-1-1-2 equal to L's labels but larger by
     vertex ids, so still accepted; twig label -? labels are nonneg — use
     host 3 and label 0: path reads 0-1-1-1-2 from twig... build and let the
     naive check decide, then require Exact to agree. *)
  let p4 = Spm_pattern.Pattern.extend_new_vertex p ~host:1 ~label:0 in
  let idx4 = Distance_index.extend_new_vertex idx ~host:1 in
  check_bool "III: exact agrees with naive" true
    (Constraints.check ~mode:Constraints.Exact ~pattern':p4 ~idx ~idx':idx4 ~l
       (Constraints.New_leaf { host = 1 })
    = Constraints.check_naive p4 ~l)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "core"
    [
      ( "path_pattern",
        [
          Alcotest.test_case "basics" `Quick test_path_pattern_basics;
          Alcotest.test_case "definition 2 order" `Quick test_path_order_definition2;
          Alcotest.test_case "emb support" `Quick test_emb_support;
          Alcotest.test_case "emb reads" `Quick test_emb_reads;
        ] );
      ( "canonical_diameter",
        [
          Alcotest.test_case "path orientation" `Quick test_canonical_diameter_path;
          Alcotest.test_case "id tiebreak" `Quick test_canonical_diameter_id_tiebreak;
          Alcotest.test_case "cycle" `Quick test_canonical_diameter_cycle;
          Alcotest.test_case "levels and skinny" `Quick test_levels_and_skinny;
          Alcotest.test_case "orientations" `Quick test_realizing_paths_both_orientations;
        ] );
      ( "diam_mine",
        [
          Alcotest.test_case "single edges" `Quick test_diam_mine_single_edge;
          Alcotest.test_case "vs brute force (exact)" `Quick test_diam_mine_vs_brute_force_exact;
          Alcotest.test_case "pruned subset" `Quick test_diam_mine_pruned_is_subset;
          Alcotest.test_case "finds injected" `Quick test_diam_mine_finds_injected;
          Alcotest.test_case "embeddings valid" `Quick test_diam_mine_embeddings_valid;
          Alcotest.test_case "powers index" `Quick test_powers_serves_many_l;
        ] );
      ( "distance_index",
        [ Alcotest.test_case "leaf extension" `Quick test_distance_index_leaf ] );
      ( "constraints",
        [ Alcotest.test_case "concrete examples" `Quick test_constraint_examples ] );
      qsuite "props"
        [
          prop_canonical_diameter_is_minimum;
          prop_identity_preserved_equals_compute;
          prop_realizing_paths_realize;
          prop_diam_mine_exact_complete;
          prop_distance_index_incremental;
          prop_constraints_exact_equals_naive;
        ];
    ]
