(* Additional focused tests: disjoint support, the fast canonicity check on
   hand-built corner cases, the diameter index with custom supports, closed
   growth interactions, and IO/dot rendering. *)

open Spm_graph
open Spm_pattern
open Spm_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Disjoint support --- *)

let test_disjoint_paths_overlap () =
  (* Three path embeddings, the first two overlapping. *)
  let embs = [ [| 0; 1; 2 |]; [| 2; 3; 4 |]; [| 5; 6; 7 |] ] in
  check "greedy disjoint" 2 (Disjoint_support.paths embs);
  check "all disjoint" 2
    (Disjoint_support.paths [ [| 0; 1 |]; [| 2; 3 |]; [| 1; 2 |] ]);
  check "empty" 0 (Disjoint_support.paths [])

let test_disjoint_maps_dedup () =
  let p = Pattern.of_path_labels [| 0; 0 |] in
  (* Two mappings of the same subgraph plus one disjoint. *)
  let ms = [ [| 0; 1 |]; [| 1; 0 |]; [| 2; 3 |] ] in
  check "dedup then disjoint" 2 (Disjoint_support.maps p ms)

let test_disjoint_vs_subgraph_support () =
  (* A "caterpillar" of overlapping length-2 paths: subgraph support is
     large, disjoint support small. *)
  let g = Gen.path_graph (Array.make 10 0) in
  let labels = [| 0; 0; 0 |] in
  let r = Diam_mine.mine g ~l:2 ~sigma:1 in
  let entry =
    List.find (fun e -> e.Diam_mine.labels = labels) r.Diam_mine.entries
  in
  let embs = entry.Diam_mine.embeddings in
  check "subgraph count inflates" 8 (List.length embs);
  check_bool "disjoint count is smaller" true
    (Disjoint_support.paths embs <= 3)

let test_diam_mine_with_disjoint_support () =
  (* Overlapping frequent paths disappear under disjoint support. *)
  let g = Gen.path_graph (Array.make 12 0) in
  let subgraph_freq = Diam_mine.mine g ~l:3 ~sigma:2 in
  let disjoint_freq =
    Diam_mine.mine ~support:Disjoint_support.paths g ~l:3 ~sigma:4 in
  check "frequent under subgraph count" 1 (List.length subgraph_freq.Diam_mine.entries);
  (* Only 2-3 disjoint length-3 paths fit in a length-11 path: sigma=4 kills
     the pattern. *)
  check "infrequent under disjoint count" 0 (List.length disjoint_freq.Diam_mine.entries)

(* --- identity_preserved corner cases --- *)

let test_identity_preserved_basic () =
  let p = Gen.path_graph [| 0; 1; 1; 2 |] in
  check_bool "bare path preserved" true
    (Canonical_diameter.identity_preserved p ~l:3);
  (* Reversal smaller: labels [2;1;1;0] reversed [0;1;1;2]... the identity
     reads [0;1;1;2], already canonical. A path whose reverse is smaller: *)
  let q = Gen.path_graph [| 2; 1; 1; 0 |] in
  check_bool "wrong orientation rejected" false
    (Canonical_diameter.identity_preserved q ~l:3)

let test_identity_preserved_twig_violation () =
  (* Twig with label smaller than the head creates a smaller diameter. *)
  let p = Gen.path_graph [| 1; 1; 1; 2 |] in
  let p' = Pattern.extend_new_vertex p ~host:1 ~label:0 in
  (* New realizing path 4-1-2-3 reads [0;1;1;2] < [1;1;1;2]. *)
  check_bool "smaller-label twig dethrones" false
    (Canonical_diameter.identity_preserved p' ~l:3);
  let p'' = Pattern.extend_new_vertex p ~host:1 ~label:3 in
  check_bool "larger-label twig is fine" true
    (Canonical_diameter.identity_preserved p'' ~l:3)

let test_identity_preserved_diameter_changes () =
  let p = Gen.path_graph [| 0; 1; 2 |] in
  (* Leaf on the head stretches the diameter to 3. *)
  let p' = Pattern.extend_new_vertex p ~host:0 ~label:5 in
  check_bool "grown diameter rejected" false
    (Canonical_diameter.identity_preserved p' ~l:2);
  (* Chord shrinks the head-tail distance. *)
  let q = Gen.path_graph [| 0; 1; 2; 3; 4 |] in
  let q' = Pattern.extend_close_edge q 0 4 in
  check_bool "chord rejected" false
    (Canonical_diameter.identity_preserved q' ~l:4)

let test_identity_preserved_missing_backbone () =
  (* A graph where vertices 0..l are not even a path. *)
  let g = Graph.Builder.of_edges ~labels:[| 0; 1; 2 |] [ (0, 2); (2, 1) ] in
  check_bool "no backbone edges" false
    (Canonical_diameter.identity_preserved g ~l:2)

(* --- Diameter index with custom supports --- *)

let test_index_with_disjoint_support () =
  let st = Gen.rng 5 in
  let bg = Gen.erdos_renyi st ~n:60 ~avg_degree:1.5 ~num_labels:6 in
  let b = Graph.Builder.of_graph bg in
  let pat = Gen.path_graph [| 1; 2; 3; 4; 5 |] in
  ignore (Gen.inject st b ~pattern:pat ~copies:3 ());
  let g = Graph.Builder.freeze b in
  let idx =
    Diameter_index.build ~path_support:Disjoint_support.paths g ~sigma:3
      ~l_max:4
  in
  let entries = Diameter_index.entries idx ~l:4 in
  check_bool "injected path found with disjoint support" true
    (List.exists
       (fun e -> e.Diam_mine.labels = Path_pattern.canonical [| 1; 2; 3; 4; 5 |])
       entries);
  let r =
    Diameter_index.request
      ~config:
        { Skinny_mine.Config.default with support = Some Disjoint_support.maps }
      idx ~l:4 ~delta:1
  in
  check_bool "request works" true (List.length r.Skinny_mine.patterns >= 1);
  List.iter
    (fun m -> check_bool "supports >= sigma" true (m.Skinny_mine.support >= 3))
    r.Skinny_mine.patterns

(* --- Closed growth specifics --- *)

let test_closed_growth_support_increase_kept () =
  (* When an extension *increases* support it is not a closed-jump: both the
     parent and the child must be reported. Build: edge (0,1) appears once
     as a standalone and once inside a star, so the 2-edge path has support
     2 while the single twig extension exists... keep it simple: verify
     closed growth never drops the bare diameter when its extensions change
     support. *)
  let g =
    Graph.Builder.of_edges ~labels:[| 0; 1; 0; 1; 2 |]
      [ (0, 1); (2, 3); (3, 4) ]
  in
  (* Pattern 0-1 has support 2; extension by label-2 twig has support 1. *)
  let r =
    Skinny_mine.mine
      ~config:{ Skinny_mine.Config.default with closed_growth = true }
      g ~l:1 ~delta:1 ~sigma:2
  in
  check "bare edge is closed here" 1 (List.length r.Skinny_mine.patterns);
  let m = List.hd r.Skinny_mine.patterns in
  check "its support" 2 m.Skinny_mine.support;
  check "one edge" 1 (Pattern.size m.Skinny_mine.pattern)

let test_closed_growth_transactions () =
  let pat = Gen.path_graph [| 2; 3; 2; 3 |] in
  let st = Gen.rng 8 in
  let make () =
    let b = Graph.Builder.of_graph (Gen.erdos_renyi st ~n:15 ~avg_degree:1.0 ~num_labels:6) in
    ignore (Gen.inject st b ~pattern:pat ~copies:1 ());
    Graph.Builder.freeze b
  in
  let db = [ make (); make (); make () ] in
  let r =
    Skinny_mine.mine_transactions
      ~config:{ Skinny_mine.Config.default with closed_growth = true }
      db ~l:3 ~delta:1 ~sigma:3
  in
  check_bool "injected found closed" true
    (List.exists
       (fun m -> Subiso.exists ~pattern:pat ~target:m.Skinny_mine.pattern)
       r.Skinny_mine.patterns)

(* --- IO extras --- *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec loop i =
    i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1))
  in
  loop 0

let test_to_dot () =
  let g = Gen.path_graph [| 0; 1 |] in
  let dot = Io.to_dot ~highlight:[ 0 ] g in
  check_bool "mentions edge" true (contains dot "0 -- 1");
  check_bool "highlights vertex 0" true (contains dot "fillcolor");
  let t = Label.Table.of_names [ "alpha"; "beta" ] in
  let dot2 = Io.to_dot ~names:t g in
  check_bool "named labels" true (contains dot2 "alpha")

let test_write_read_files () =
  let g = Gen_qcheck.er ~seed:3 ~n:20 ~avg_degree:2.0 ~num_labels:3 in
  Testutil.with_temp_dir (fun dir ->
      let tmp = Testutil.temp_file_in dir "g.graph" in
      Io.write_file tmp g;
      let g' = Io.read_file tmp in
      check_bool "file roundtrip" true (Graph.equal_structure g g');
      let db = [ g; Gen.path_graph [| 0; 1 |] ] in
      let tmp2 = Testutil.temp_file_in dir "g.db" in
      Io.write_db tmp2 db;
      let db' = Io.read_db tmp2 in
      check "db file roundtrip" 2 (List.length db'))

(* --- Stats sanity from the miners --- *)

let test_level_grow_stats () =
  let g =
    Graph.Builder.of_edges ~labels:[| 0; 1; 1; 1; 2; 3 |]
      [ (0, 1); (1, 2); (2, 3); (3, 4); (2, 5) ]
  in
  let r = Skinny_mine.mine g ~l:4 ~delta:1 ~sigma:1 in
  let stats = r.Skinny_mine.stats in
  check_bool "grow stats per cluster" true
    (List.length stats.Skinny_mine.grow_stats = stats.Skinny_mine.num_diameters);
  List.iter
    (fun s ->
      check_bool "tried >= rejected + infrequent" true
        (s.Level_grow.extensions_tried
        >= s.Level_grow.constraint_rejected + s.Level_grow.infrequent))
    stats.Skinny_mine.grow_stats

let test_diam_mine_stats_powers () =
  let st = Gen.rng 2 in
  let g = Gen.erdos_renyi st ~n:40 ~avg_degree:2.0 ~num_labels:3 in
  let r = Diam_mine.mine g ~l:6 ~sigma:1 in
  let lengths = List.map (fun (len, _, _) -> len) r.Diam_mine.stats.Diam_mine.per_power in
  Alcotest.(check (list int)) "powers materialized" [ 1; 2; 4 ] lengths

let () =
  Alcotest.run "extra"
    [
      ( "disjoint_support",
        [
          Alcotest.test_case "overlap" `Quick test_disjoint_paths_overlap;
          Alcotest.test_case "maps dedup" `Quick test_disjoint_maps_dedup;
          Alcotest.test_case "vs subgraph support" `Quick
            test_disjoint_vs_subgraph_support;
          Alcotest.test_case "diam mine integration" `Quick
            test_diam_mine_with_disjoint_support;
        ] );
      ( "identity_preserved",
        [
          Alcotest.test_case "basic" `Quick test_identity_preserved_basic;
          Alcotest.test_case "twig violation" `Quick
            test_identity_preserved_twig_violation;
          Alcotest.test_case "diameter changes" `Quick
            test_identity_preserved_diameter_changes;
          Alcotest.test_case "missing backbone" `Quick
            test_identity_preserved_missing_backbone;
        ] );
      ( "index",
        [
          Alcotest.test_case "disjoint support" `Quick
            test_index_with_disjoint_support;
        ] );
      ( "closed_growth",
        [
          Alcotest.test_case "support increase kept" `Quick
            test_closed_growth_support_increase_kept;
          Alcotest.test_case "transactions" `Quick test_closed_growth_transactions;
        ] );
      ( "io",
        [
          Alcotest.test_case "dot" `Quick test_to_dot;
          Alcotest.test_case "files" `Quick test_write_read_files;
        ] );
      ( "stats",
        [
          Alcotest.test_case "level grow stats" `Quick test_level_grow_stats;
          Alcotest.test_case "diam mine powers" `Quick test_diam_mine_stats_powers;
        ] );
    ]
