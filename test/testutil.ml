(* Shared helpers for the test executables (every module in test/ that is
   not itself a test main is linked into all of them). *)

(* Run [f] in a unique scratch directory and remove it afterwards, pass or
   fail — suites that write store files must not leave litter behind or
   collide when run concurrently. *)
let with_temp_dir ?(prefix = "spm_test_") f =
  let dir = Filename.temp_dir prefix "" in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ()) (fun () ->
      f dir)

let temp_file_in dir name = Filename.concat dir name
