(* The binary pattern store: codec primitive round trips, qcheck
   decode-encode identities for graphs / mined records / whole stores,
   byte-stability of double encodes, whole-file corruption detection (every
   single-byte flip must be caught), and Diameter_index snapshots serving
   without re-mining. *)

open Spm_graph
open Spm_core
module Codec = Spm_store.Codec
module Store = Spm_store.Store

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- codec primitives --- *)

let test_crc32 () =
  (* The standard CRC-32 check value. *)
  check_str "check value" "cbf43926"
    (Printf.sprintf "%08lx" (Codec.crc32 "123456789"));
  check_str "empty" "00000000" (Printf.sprintf "%08lx" (Codec.crc32 ""));
  (* Substring addressing. *)
  check_str "substring"
    (Printf.sprintf "%08lx" (Codec.crc32 "456"))
    (Printf.sprintf "%08lx" (Codec.crc32 ~pos:3 ~len:3 "123456789"))

let rt_int n =
  let w = Codec.W.create () in
  Codec.W.int w n;
  Codec.R.int (Codec.R.of_string (Codec.W.contents w))

let rt_uint n =
  let w = Codec.W.create () in
  Codec.W.uint w n;
  Codec.R.uint (Codec.R.of_string (Codec.W.contents w))

let test_varints () =
  List.iter
    (fun n -> check (Printf.sprintf "int %d" n) n (rt_int n))
    [ 0; 1; -1; 63; 64; 127; 128; -128; 65535; -65536; max_int; min_int;
      max_int - 1; min_int + 1 ];
  List.iter
    (fun n -> check (Printf.sprintf "uint %d" n) n (rt_uint n))
    [ 0; 1; 127; 128; 16384; max_int ];
  (* Small non-negative values stay single-byte. *)
  let w = Codec.W.create () in
  Codec.W.int w 100;
  check "compact small int" 1 (Codec.W.length w)

let test_floats_strings () =
  let w = Codec.W.create () in
  Codec.W.float w 1.5;
  Codec.W.float w (-0.0);
  Codec.W.float w Float.pi;
  Codec.W.string w "hello";
  Codec.W.string w "";
  Codec.W.int_array w [| 3; -1; 0; 999 |];
  let r = Codec.R.of_string (Codec.W.contents w) in
  Alcotest.(check (float 0.0)) "1.5" 1.5 (Codec.R.float r);
  check_bool "-0.0 bits" true (Int64.equal (Int64.bits_of_float (-0.0))
      (Int64.bits_of_float (Codec.R.float r)));
  Alcotest.(check (float 0.0)) "pi" Float.pi (Codec.R.float r);
  check_str "hello" "hello" (Codec.R.string r);
  check_str "empty" "" (Codec.R.string r);
  Alcotest.(check (array int)) "int array" [| 3; -1; 0; 999 |] (Codec.R.int_array r);
  check "fully consumed" 0 (Codec.R.left r)

let test_truncation_detected () =
  let w = Codec.W.create () in
  Codec.W.string w "some payload";
  let s = Codec.W.contents w in
  let truncated = String.sub s 0 (String.length s - 3) in
  check_bool "truncated string raises" true
    (match Codec.R.string (Codec.R.of_string truncated) with
    | _ -> false
    | exception Codec.Corrupt _ -> true)

(* --- random inputs --- *)

let random_graph seed =
  let st = Gen.rng seed in
  let n = 1 + Random.State.int st 14 in
  Gen.erdos_renyi st ~n ~avg_degree:2.5 ~num_labels:(1 + Random.State.int st 6)

let graphs_equal a b =
  Graph.equal_structure a b && Graph.labels a = Graph.labels b

(* --- qcheck round trips --- *)

let prop_graph_roundtrip =
  QCheck.Test.make ~name:"decode (encode g) = g for random graphs" ~count:100
    QCheck.small_nat (fun seed ->
      let g = random_graph seed in
      let w = Codec.W.create () in
      Store.write_graph w g;
      let g' = Store.read_graph (Codec.R.of_string (Codec.W.contents w)) in
      graphs_equal g g')

let prop_entry_roundtrip =
  QCheck.Test.make ~name:"Diam_mine entry round trip" ~count:60
    QCheck.small_nat (fun seed ->
      let g = random_graph (seed + 1000) in
      let r = Diam_mine.mine g ~l:2 ~sigma:1 in
      List.for_all
        (fun (e : Diam_mine.entry) ->
          let w = Codec.W.create () in
          Store.write_entry w e;
          let e' = Store.read_entry (Codec.R.of_string (Codec.W.contents w)) in
          e.labels = e'.Diam_mine.labels
          && e.embeddings = e'.Diam_mine.embeddings)
        r.Diam_mine.entries)

let mined_store seed =
  let st = Gen.rng seed in
  let bg = Gen.erdos_renyi st ~n:60 ~avg_degree:2.0 ~num_labels:8 in
  let b = Graph.Builder.of_graph bg in
  let p = Gen.random_skinny_pattern st ~backbone:3 ~delta:1 ~twigs:2 ~num_labels:8 in
  ignore (Gen.inject st b ~pattern:p ~copies:3 ());
  let g = Graph.Builder.freeze b in
  let r = Skinny_mine.mine g ~l:3 ~delta:1 ~sigma:2 in
  Store.of_result ~graph:g ~l:3 ~delta:1 ~sigma:2 ~closed_growth:false r

let mined_equal (a : Skinny_mine.mined) (b : Skinny_mine.mined) =
  graphs_equal a.pattern b.pattern
  && a.support = b.support && a.levels = b.levels
  && a.diameter_labels = b.diameter_labels

let stores_equal (a : Store.pattern_store) (b : Store.pattern_store) =
  graphs_equal a.graph b.graph
  && a.l = b.l && a.delta = b.delta && a.sigma = b.sigma
  && a.closed_growth = b.closed_growth
  && a.family = b.family
  && List.length a.patterns = List.length b.patterns
  && List.for_all2 mined_equal a.patterns b.patterns

let prop_store_roundtrip_byte_stable =
  QCheck.Test.make
    ~name:"pattern store: decode inverts encode; double encode is byte-stable"
    ~count:10 QCheck.small_nat (fun seed ->
      let s = mined_store (seed * 17) in
      let bytes1 = Store.encode s in
      let s' = Store.decode bytes1 in
      let bytes2 = Store.encode s' in
      stores_equal s s' && String.equal bytes1 bytes2)

let test_mined_roundtrip () =
  let s = mined_store 5 in
  check_bool "store has patterns" true (s.Store.patterns <> []);
  List.iter
    (fun m ->
      let w = Codec.W.create () in
      Store.write_mined w m;
      let m' = Store.read_mined (Codec.R.of_string (Codec.W.contents w)) in
      check_bool "mined round trip" true (mined_equal m m'))
    s.Store.patterns

(* --- corruption: every single-byte flip must be rejected --- *)

let assert_all_flips_detected s =
  let bytes = Store.encode s in
  check_bool "store is non-trivial" true (String.length bytes > 100);
  let undetected = ref [] in
  String.iteri
    (fun i _ ->
      let b = Bytes.of_string bytes in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5A));
      match Store.decode (Bytes.unsafe_to_string b) with
      | _ -> undetected := i :: !undetected
      | exception Codec.Corrupt _ -> ())
    bytes;
  Alcotest.(check (list int)) "flips that slipped through" [] !undetected

let test_every_byte_flip_detected () = assert_all_flips_detected (mined_store 7)

let test_legacy_byte_flip_detected () =
  assert_all_flips_detected
    { (mined_store 7) with Store.graph_format = Store.Legacy }

(* --- constraint-family section ('C') --- *)

(* Small on purpose: the flip sweep below decodes the whole store once per
   byte, and the neighborhood family's overlapping clusters make pattern
   counts blow up fast with n and r. *)
let nbr_mined_store ?center seed =
  let st = Gen.rng seed in
  let g = Gen.erdos_renyi st ~n:16 ~avg_degree:2.2 ~num_labels:5 in
  let family = Constraints.Neighborhood { center } in
  let r =
    Skinny_mine.mine
      ~config:{ Skinny_mine.Config.default with family }
      g ~l:0 ~delta:2 ~sigma:2
  in
  Store.of_result ~family ~graph:g ~l:0 ~delta:2 ~sigma:2
    ~closed_growth:false r

(* Tags of the framed sections of a Legacy encoding (Legacy ends at the last
   section, so the scan terminates cleanly at EOF). *)
let section_tags s =
  let bytes = Store.encode { s with Store.graph_format = Store.Legacy } in
  (* 8-byte magic + 1-byte version varint + 1-byte kind varint. *)
  let r = Codec.R.of_string ~pos:10 ~len:(String.length bytes - 10) bytes in
  let rec loop acc =
    match Codec.R.section r with
    | None -> List.rev acc
    | Some (tag, _) -> loop (tag :: acc)
  in
  loop []

(* Back-compat: skinny stores — the only kind older builds ever wrote or can
   read — must not grow a 'C' section; neighborhood stores must carry one
   and round-trip their family. *)
let test_constraint_section_presence () =
  check_bool "skinny store has no 'C' section" false
    (List.mem 'C' (section_tags (mined_store 7)));
  check_bool "neighborhood store has a 'C' section" true
    (List.mem 'C' (section_tags (nbr_mined_store 7)))

let test_neighborhood_roundtrip () =
  List.iter
    (fun center ->
      let s = nbr_mined_store ?center 7 in
      check_bool "mined something" true (s.Store.patterns <> []);
      let bytes1 = Store.encode s in
      let s' = Store.decode bytes1 in
      check_bool "family preserved" true
        (s'.Store.family = Constraints.Neighborhood { center });
      check_bool "round trip" true (stores_equal s s');
      check_bool "re-encode byte-stable" true
        (String.equal bytes1 (Store.encode s')))
    [ None; Some 1 ]

let test_neighborhood_byte_flip_detected () =
  (* Covers the 'C' payload bytes and — via the section-grammar check — the
     'C' tag byte, which sits outside its own CRC. *)
  assert_all_flips_detected (nbr_mined_store 7);
  assert_all_flips_detected
    { (nbr_mined_store ~center:1 7) with Store.graph_format = Store.Legacy }

let test_save_load_file () =
  let s = mined_store 11 in
  Testutil.with_temp_dir (fun dir ->
      let path = Testutil.temp_file_in dir "store.spm" in
      Store.save path s;
      let s' = Store.load path in
      check_bool "file round trip" true (stores_equal s s'))

(* --- G2 layout and mapped loads --- *)

let mined_bytes patterns =
  let w = Codec.W.create () in
  List.iter (Store.write_mined w) patterns;
  Codec.W.contents w

(* Both layouts pin down: version byte, decode inverting encode, re-encode
   byte-stability, and format conversion landing byte-for-byte on what a
   store born in the target format writes. *)
let test_format_pins () =
  let s = mined_store 23 in
  let legacy = { s with Store.graph_format = Store.Legacy } in
  let g2 = { s with Store.graph_format = Store.G2 } in
  let bl = Store.encode legacy in
  let bg = Store.encode g2 in
  (* The version varint follows the 8-byte magic; both fit one byte. *)
  check "legacy writes version 1" 1 (Char.code bl.[8]);
  check "g2 writes version 2" 2 (Char.code bg.[8]);
  check_bool "layouts differ" false (String.equal bl bg);
  let ll = Store.decode bl in
  let gg = Store.decode bg in
  check_bool "legacy decode keeps Legacy" true
    (ll.Store.graph_format = Store.Legacy);
  check_bool "g2 decode keeps G2" true (gg.Store.graph_format = Store.G2);
  check_bool "legacy content preserved" true (stores_equal s ll);
  check_bool "g2 content preserved" true (stores_equal s gg);
  check_bool "legacy re-encode byte-stable" true
    (String.equal bl (Store.encode ll));
  check_bool "g2 re-encode byte-stable" true (String.equal bg (Store.encode gg));
  (* Converting a decoded store across formats is byte-identical to a store
     born in that format. *)
  check_bool "legacy -> g2 conversion pins bytes" true
    (String.equal bg (Store.encode { ll with Store.graph_format = Store.G2 }));
  check_bool "g2 -> legacy conversion pins bytes" true
    (String.equal bl
       (Store.encode { gg with Store.graph_format = Store.Legacy }))

let test_load_mapped () =
  let s = mined_store 29 in
  Testutil.with_temp_dir (fun dir ->
      let path = Testutil.temp_file_in dir "store.spm" in
      Store.save path s;
      Store.verify_file path;
      let s' = Store.load_mapped path in
      check_bool "mapped round trip" true (stores_equal s s');
      check_bool "mapped graph is Bigarray-backed" true
        (Graph.backing s'.Store.graph = `Bigarray);
      let mg = Store.map_graph path in
      check_bool "map_graph is Bigarray-backed" true
        (Graph.backing mg = `Bigarray);
      check_bool "map_graph equals decoded graph" true
        (graphs_equal s.Store.graph mg);
      (* Version-1 files take the in-memory fallback. *)
      let lpath = Testutil.temp_file_in dir "legacy.spm" in
      Store.save lpath { s with Store.graph_format = Store.Legacy };
      let l' = Store.load_mapped lpath in
      check_bool "legacy fallback round trip" true (stores_equal s l');
      check_bool "legacy fallback is array-backed" true
        (Graph.backing l'.Store.graph = `Array))

let test_mapped_truncation_rejected () =
  let s = mined_store 41 in
  Testutil.with_temp_dir (fun dir ->
      let path = Testutil.temp_file_in dir "store.spm" in
      Store.save path s;
      let full = In_channel.with_open_bin path In_channel.input_all in
      let len = String.length full in
      List.iter
        (fun keep ->
          let tpath = Testutil.temp_file_in dir "trunc.spm" in
          Out_channel.with_open_bin tpath (fun oc ->
              Out_channel.output_string oc (String.sub full 0 keep));
          check_bool
            (Printf.sprintf "truncation to %d/%d bytes rejected" keep len)
            true
            (match Store.load_mapped tpath with
            | _ -> false
            | exception Codec.Corrupt _ -> true))
        [ 0; 1; 8; len / 4; len / 2; len - 9; len - 1 ])

(* The acceptance bar: mining a mapped graph is byte-identical to mining the
   array-backed original, sequentially and with a worker pool. *)
let test_mapped_mine_byte_identical () =
  let st = Gen.rng 101 in
  let bg = Gen.erdos_renyi st ~n:80 ~avg_degree:2.0 ~num_labels:10 in
  let b = Graph.Builder.of_graph bg in
  let p =
    Gen.random_skinny_pattern st ~backbone:4 ~delta:1 ~twigs:2 ~num_labels:10
  in
  ignore (Gen.inject st b ~pattern:p ~copies:3 ());
  let g = Graph.Builder.freeze b in
  Testutil.with_temp_dir (fun dir ->
      let path = Testutil.temp_file_in dir "graph.spm" in
      Store.save path (Store.of_graph g);
      let mg = Store.map_graph path in
      List.iter
        (fun jobs ->
          let config = { Skinny_mine.Config.default with jobs } in
          let r1 = Skinny_mine.mine ~config g ~l:4 ~delta:1 ~sigma:2 in
          let r2 = Skinny_mine.mine ~config mg ~l:4 ~delta:1 ~sigma:2 in
          check_bool
            (Printf.sprintf "mined bytes identical (jobs=%d)" jobs)
            true
            (String.equal
               (mined_bytes r1.Skinny_mine.patterns)
               (mined_bytes r2.Skinny_mine.patterns)))
        [ 1; 4 ])

(* Delta overlays and snapshots work over a mapped base exactly as over an
   array-backed one — the incremental path never notices the backing. *)
let test_delta_over_mapped () =
  let g = random_graph 37 in
  Testutil.with_temp_dir (fun dir ->
      let path = Testutil.temp_file_in dir "graph.spm" in
      Store.save path (Store.of_graph g);
      let mg = Store.map_graph path in
      let n = Graph.n g in
      let edits =
        [
          Delta.Add_vertex 0;
          Delta.Add_edge (0, n);
          Delta.Remove_edge (0, n);
          Delta.Add_edge (1, n);
        ]
      in
      let snap base = Delta.snapshot (Delta.apply_all (Delta.of_graph base) edits) in
      let from_array = snap g in
      let from_mapped = snap mg in
      check_bool "snapshots agree across backings" true
        (graphs_equal from_array from_mapped);
      check_bool "snapshot is array-backed" true
        (Graph.backing from_mapped = `Array))

(* --- diameter-index snapshots --- *)

let entries_equal (a : Diam_mine.entry list) (b : Diam_mine.entry list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Diam_mine.entry) (y : Diam_mine.entry) ->
         x.labels = y.labels && x.embeddings = y.embeddings)
       a b

let result_signature (r : Skinny_mine.result) =
  List.map
    (fun (m : Skinny_mine.mined) ->
      (Spm_pattern.Canon.key m.pattern, m.support))
    r.patterns

let test_index_snapshot () =
  let s = mined_store 13 in
  let idx = Diameter_index.build s.Store.graph ~sigma:2 ~l_max:4 in
  (* Touch a non-power length so the snapshot includes a merged cache line. *)
  let e3 = Diameter_index.entries idx ~l:3 in
  let bytes = Store.encode_index idx in
  let idx' = Store.decode_index bytes in
  check "sigma preserved" (Diameter_index.sigma idx) (Diameter_index.sigma idx');
  check "l_max preserved" (Diameter_index.l_max idx) (Diameter_index.l_max idx');
  check_bool "graph preserved" true
    (graphs_equal (Diameter_index.graph idx) (Diameter_index.graph idx'));
  List.iter
    (fun l ->
      check_bool
        (Printf.sprintf "entries l=%d preserved" l)
        true
        (entries_equal (Diameter_index.entries idx ~l)
           (Diameter_index.entries idx' ~l)))
    [ 1; 2; 3; 4 ];
  check_bool "l=3 went through the snapshot" true
    (entries_equal e3 (Diameter_index.entries idx' ~l:3));
  (* A request served by the restored index matches the original. *)
  let direct = Diameter_index.request idx ~l:3 ~delta:1 in
  let restored = Diameter_index.request idx' ~l:3 ~delta:1 in
  Alcotest.(check (list (pair string int)))
    "restored request = original request" (result_signature direct)
    (result_signature restored)

let test_index_snapshot_file () =
  let s = mined_store 17 in
  let idx = Diameter_index.build s.Store.graph ~sigma:2 ~l_max:2 in
  Testutil.with_temp_dir (fun dir ->
      let path = Testutil.temp_file_in dir "index.spx" in
      Store.save_index path idx;
      let idx' = Store.load_index path in
      check_bool "file snapshot serves l=2" true
        (entries_equal (Diameter_index.entries idx ~l:2)
           (Diameter_index.entries idx' ~l:2)))

let test_store_kind_mismatch () =
  let s = mined_store 19 in
  let bytes = Store.encode s in
  check_bool "pattern store is not an index" true
    (match Store.decode_index bytes with
    | _ -> false
    | exception Codec.Corrupt _ -> true)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "store"
    [
      ( "codec",
        [
          Alcotest.test_case "crc32 check value" `Quick test_crc32;
          Alcotest.test_case "varint round trips" `Quick test_varints;
          Alcotest.test_case "floats, strings, arrays" `Quick
            test_floats_strings;
          Alcotest.test_case "truncation detected" `Quick
            test_truncation_detected;
        ] );
      qsuite "roundtrip-props"
        [
          prop_graph_roundtrip; prop_entry_roundtrip;
          prop_store_roundtrip_byte_stable;
        ];
      ( "store",
        [
          Alcotest.test_case "mined record round trip" `Quick
            test_mined_roundtrip;
          Alcotest.test_case "every byte flip detected" `Quick
            test_every_byte_flip_detected;
          Alcotest.test_case "every byte flip detected (legacy)" `Quick
            test_legacy_byte_flip_detected;
          Alcotest.test_case "constraint section presence" `Quick
            test_constraint_section_presence;
          Alcotest.test_case "neighborhood store round trip" `Quick
            test_neighborhood_roundtrip;
          Alcotest.test_case "every byte flip detected (neighborhood)" `Quick
            test_neighborhood_byte_flip_detected;
          Alcotest.test_case "file save/load" `Quick test_save_load_file;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_store_kind_mismatch;
        ] );
      ( "g2-mapped",
        [
          Alcotest.test_case "format pins (legacy vs G2)" `Quick
            test_format_pins;
          Alcotest.test_case "load_mapped / map_graph" `Quick test_load_mapped;
          Alcotest.test_case "mapped truncation rejected" `Quick
            test_mapped_truncation_rejected;
          Alcotest.test_case "mapped mine byte-identical (jobs 1,4)" `Quick
            test_mapped_mine_byte_identical;
          Alcotest.test_case "delta over mapped base" `Quick
            test_delta_over_mapped;
        ] );
      ( "index-snapshot",
        [
          Alcotest.test_case "entries and requests preserved" `Quick
            test_index_snapshot;
          Alcotest.test_case "file snapshot" `Quick test_index_snapshot_file;
        ] );
    ]
