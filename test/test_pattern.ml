(* Tests for the pattern substrate: extension, subgraph isomorphism,
   matching plans (automorphisms, symmetry-broken enumeration),
   embeddings-as-subgraphs, support measures, DFS codes, canonical keys. *)

open Spm_graph
open Spm_pattern
module Run = Spm_engine.Run

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let triangle la lb lc =
  Graph.Builder.of_edges ~labels:[| la; lb; lc |] [ (0, 1); (1, 2); (0, 2) ]

(* --- Pattern building --- *)

let test_singleton_edge () =
  let p = Pattern.singleton_edge 3 5 in
  check "order" 2 (Pattern.order p);
  check "size" 1 (Pattern.size p);
  check "la" 3 (Graph.label p 0);
  check "lb" 5 (Graph.label p 1)

let test_extensions () =
  let p = Pattern.singleton_edge 0 1 in
  let p = Pattern.extend_new_vertex p ~host:1 ~label:2 in
  check "size after fwd" 2 (Pattern.size p);
  check "order after fwd" 3 (Pattern.order p);
  let p = Pattern.extend_close_edge p 0 2 in
  check "size after close" 3 (Pattern.size p);
  Alcotest.check_raises "existing edge"
    (Invalid_argument "Pattern.extend_close_edge: edge exists") (fun () ->
      ignore (Pattern.extend_close_edge p 0 1))

(* --- Subiso --- *)

let test_subiso_triangle_in_k4 () =
  (* K4 uniform label contains C(4,3) = 4 triangles, 6 mappings each. *)
  let k4 =
    Graph.Builder.of_edges ~labels:[| 0; 0; 0; 0 |]
      [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
  in
  let tri = triangle 0 0 0 in
  check "mappings" 24 (List.length (Subiso.mappings ~pattern:tri ~target:k4));
  check "distinct subgraphs" 4 (Support.single_graph tri k4)

let test_subiso_label_mismatch () =
  let tri = triangle 0 1 2 in
  let k3 = triangle 0 1 1 in
  check_bool "no embedding" false (Subiso.exists ~pattern:tri ~target:k3);
  check_bool "self embedding" true (Subiso.exists ~pattern:tri ~target:tri)

let test_subiso_non_induced () =
  (* Path 0-1-2 embeds into a triangle even though the triangle has the
     extra closing edge (embeddings are not induced). *)
  let path = Pattern.of_path_labels [| 0; 0; 0 |] in
  let tri = triangle 0 0 0 in
  check_bool "non-induced ok" true (Subiso.exists ~pattern:path ~target:tri);
  (* 3 distinct subgraphs: each pair of triangle edges. *)
  check "path subgraphs in triangle" 3 (Support.single_graph path tri)

let test_subiso_anchored () =
  let path = Pattern.of_path_labels [| 0; 1 |] in
  let g = Graph.Builder.of_edges ~labels:[| 0; 1; 0; 1 |] [ (0, 1); (2, 3); (1, 2) ] in
  (* Vertex 2 (label 0) has two label-1 neighbors: 1 and 3. *)
  let hits = ref 0 in
  Subiso.iter_mappings_anchored ~pattern:path ~target:g ~anchor:(0, 2)
    (fun m ->
      incr hits;
      check "anchor respected" 2 m.(0));
  check "anchored count" 2 !hits;
  (* Anchoring vertex 1 (the label-1 end) on data vertex 3 leaves one map. *)
  let hits = ref 0 in
  Subiso.iter_mappings_anchored ~pattern:path ~target:g ~anchor:(1, 3)
    (fun m ->
      incr hits;
      check "anchor respected b" 3 m.(1));
  check "anchored count b" 1 !hits

let test_count_limit () =
  let k4 =
    Graph.Builder.of_edges ~labels:[| 0; 0; 0; 0 |]
      [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
  in
  let tri = triangle 0 0 0 in
  check "limit" 5 (Subiso.count_mappings ~limit:5 ~pattern:tri ~target:k4 ())

(* Brute-force reference matcher: try all injective vertex maps. *)
let brute_force_mappings ~pattern ~target =
  let np = Graph.n pattern and nt = Graph.n target in
  let out = ref [] in
  let map = Array.make np (-1) in
  let used = Array.make nt false in
  let ok_sofar pv =
    Graph.label target map.(pv) = Graph.label pattern pv
    && Array.for_all
         (fun w -> map.(w) < 0 || Graph.has_edge target map.(pv) map.(w))
         (Graph.adj pattern pv)
  in
  let rec go pv =
    if pv = np then out := Array.copy map :: !out
    else
      for tv = 0 to nt - 1 do
        if not used.(tv) then begin
          map.(pv) <- tv;
          used.(tv) <- true;
          if ok_sofar pv then go (pv + 1);
          used.(tv) <- false;
          map.(pv) <- -1
        end
      done
  in
  go 0;
  !out

let sort_mappings ms = List.sort compare (List.map Array.to_list ms)

let prop_subiso_matches_brute_force =
  QCheck.Test.make ~name:"subiso equals brute force on random instances"
    ~count:60
    QCheck.(pair (int_range 2 7) (int_range 4 9))
    (fun (np, nt) ->
      let seed = (np * 100) + nt in
      let pattern = Gen_qcheck.connected ~seed ~n:np ~extra_edges:1 ~num_labels:2 in
      let target = Gen_qcheck.er ~seed:(seed + 1) ~n:nt ~avg_degree:3.0 ~num_labels:2 in
      sort_mappings (Subiso.mappings ~pattern ~target)
      = sort_mappings (brute_force_mappings ~pattern ~target))

(* --- Embeddings as subgraphs --- *)

let test_embedding_key () =
  let path = Pattern.of_path_labels [| 0; 0; 0 |] in
  (* Data path 0-1-2 has one subgraph but two mappings (both directions). *)
  let g = Pattern.of_path_labels [| 0; 0; 0 |] in
  let ms = Subiso.mappings ~pattern:path ~target:g in
  check "two mappings" 2 (List.length ms);
  let keys =
    List.map (Embedding.key_of_mapping ~data_n:(Graph.n g) ~pattern:path) ms
  in
  check "one subgraph" 1
    (List.length (List.sort_uniq Embedding.compare_key keys));
  (* The plan executor visits that subgraph exactly once, no dedup. *)
  check "plan count" 1 (Plan.count (Plan.compile path) ~target:g)

let test_key_equality () =
  let path = Pattern.of_path_labels [| 0; 0 |] in
  let k1 = Embedding.key_of_mapping ~data_n:10 ~pattern:path [| 1; 2 |] in
  let k2 = Embedding.key_of_mapping ~data_n:10 ~pattern:path [| 2; 1 |] in
  check_bool "reversed image equal" true (Embedding.equal_key k1 k2);
  check "compare agrees" 0 (Embedding.compare_key k1 k2)

(* --- Plans --- *)

let k_n n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.Builder.of_edges ~labels:(Array.make n 0) !edges

let test_plan_aut_orbits () =
  let aut p = Plan.aut_count (Plan.compile p) in
  check "labeled path" 1 (aut (Pattern.of_path_labels [| 0; 1; 2 |]));
  check "palindrome path" 2 (aut (Pattern.of_path_labels [| 0; 1; 0 |]));
  check "star K1,3" 6 (aut (Gen.star_graph ~center:5 [| 1; 1; 1 |]));
  check "triangle" 6 (aut (triangle 0 0 0));
  check "square C4" 8 (aut (Gen.cycle_graph [| 0; 0; 0; 0 |]));
  check "count shortcut" 6 (Plan.automorphism_count (triangle 0 0 0));
  (* Palindrome path: one orbit {0,2}; the chain emits exactly m(0) < m(2). *)
  Alcotest.(check (list (pair int int)))
    "palindrome constraints" [ (0, 2) ]
    (Plan.constraints (Plan.compile (Pattern.of_path_labels [| 0; 1; 0 |])));
  check_bool "asymmetric pattern has no constraints" true
    (Plan.constraints (Plan.compile (Pattern.of_path_labels [| 0; 1; 2 |])) = [])

let test_plan_exactly_once () =
  let k4 = k_n 4 in
  let tri = triangle 0 0 0 in
  let plan = Plan.compile tri in
  let keys = ref [] in
  Plan.enumerate plan ~target:k4 (fun m ->
      keys := Embedding.key_of_mapping ~data_n:4 ~pattern:tri m :: !keys);
  check "4 images" 4 (List.length !keys);
  check "no image repeated" 4
    (List.length (List.sort_uniq Embedding.compare_key !keys));
  check "count" 4 (Plan.count plan ~target:k4);
  check "count_mappings = count * |Aut|" 24 (Plan.count_mappings plan ~target:k4);
  check "all_mappings" 24 (List.length (Plan.all_mappings plan ~target:k4))

let test_plan_count_up_to_early_exit () =
  let k5 = k_n 5 in
  let tri = triangle 0 0 0 in
  let plan = Plan.compile tri in
  let full = ref 0 and early = ref 0 in
  check "K5 triangles" 10 (Plan.count ~nodes:full plan ~target:k5);
  check "early count" 1 (Plan.count_up_to ~nodes:early plan ~target:k5 1);
  check_bool
    (Printf.sprintf "early exit visits strictly fewer nodes (%d < %d)" !early
       !full)
    true (!early < !full)

let test_plan_exists_from () =
  let path = Pattern.of_path_labels [| 0; 1 |] in
  let g =
    Graph.Builder.of_edges ~labels:[| 0; 1; 0; 1 |] [ (0, 1); (2, 3); (1, 2) ]
  in
  let plan = Plan.compile path in
  check_bool "anchored hit" true (Plan.exists_from plan ~target:g ~anchor:(0, 2));
  check_bool "label mismatch" false
    (Plan.exists_from plan ~target:g ~anchor:(0, 1));
  check_bool "anchored other end" true
    (Plan.exists_from plan ~target:g ~anchor:(1, 3))

(* The executor polls [run] at vertex-extension granularity: an already
   expired deadline must cancel the very first placement attempt. *)
let test_plan_zero_deadline () =
  let st = Gen.rng 77 in
  let g = Gen.erdos_renyi st ~n:2000 ~avg_degree:3.0 ~num_labels:2 in
  let p = Pattern.of_path_labels [| 0; 1; 0 |] in
  let run = Run.create ~timeout:0.0 () in
  match Support.single_graph ~run p g with
  | _ -> Alcotest.fail "expected Run.Cancelled"
  | exception Run.Cancelled (Run.Timeout, _) -> ()

(* Legacy MNI: image sets per pattern vertex over the full mapping set. *)
let naive_mni p g =
  let np = Graph.n p in
  let images = Array.init np (fun _ -> Hashtbl.create 16) in
  Subiso.iter_mappings ~pattern:p ~target:g (fun m ->
      Array.iteri (fun pv tv -> Hashtbl.replace images.(pv) tv ()) m);
  Array.fold_left (fun acc h -> min acc (Hashtbl.length h)) max_int images
  |> fun x -> if x = max_int then 0 else x

(* Pin: the automorphism-expanded MNI equals the per-call hash-table
   implementation it replaced, on patterns actually mined from the
   differential corpus. *)
let test_mni_corpus_pin () =
  let items =
    List.filteri (fun i _ -> i < 4) (Spm_oracle.Corpus.builtin ())
  in
  let checked = ref 0 in
  List.iter
    (fun (item : Spm_oracle.Corpus.item) ->
      let g = item.graph in
      let r =
        Spm_core.Skinny_mine.mine g ~l:item.l ~delta:item.delta
          ~sigma:item.sigma
      in
      List.iteri
        (fun i (m : Spm_core.Skinny_mine.mined) ->
          if i < 6 then begin
            incr checked;
            check
              (Printf.sprintf "mni unchanged (%s #%d)" item.name i)
              (naive_mni m.pattern g) (Support.mni m.pattern g)
          end)
        r.Spm_core.Skinny_mine.patterns)
    items;
  check_bool "pinned at least one pattern" true (!checked > 0)

let prop_plan_matches_dedup_backtrack =
  QCheck.Test.make
    ~name:"plan enumeration equals deduped backtracking and brute count"
    ~count:60
    QCheck.(pair (int_range 2 7) (int_range 4 9))
    (fun (np, nt) ->
      let seed = (np * 131) + nt in
      let pattern =
        Gen_qcheck.connected ~seed ~n:np ~extra_edges:1 ~num_labels:2
      in
      let target =
        Gen_qcheck.er ~seed:(seed + 1) ~n:nt ~avg_degree:3.0 ~num_labels:2
      in
      let data_n = Graph.n target in
      let image_keys ms =
        List.sort Embedding.compare_key
          (List.map (Embedding.key_of_mapping ~data_n ~pattern) ms)
      in
      let plan =
        Plan.compile ~freq:(fun l -> Graph.label_freq target l) pattern
      in
      let plan_keys =
        let acc = ref [] in
        Plan.enumerate plan ~target (fun m -> acc := Array.copy m :: !acc);
        image_keys !acc
      in
      let legacy_keys =
        List.sort_uniq Embedding.compare_key
          (List.map
             (Embedding.key_of_mapping ~data_n ~pattern)
             (brute_force_mappings ~pattern ~target))
      in
      plan_keys = legacy_keys
      && List.length plan_keys
         = Spm_oracle.Brute.count_embeddings
             (Spm_oracle.Brute.of_pattern pattern)
             target)

(* --- Support --- *)

let test_transaction_support () =
  let p = Pattern.of_path_labels [| 0; 1 |] in
  let has = Graph.Builder.of_edges ~labels:[| 0; 1 |] [ (0, 1) ] in
  let hasnot = Graph.Builder.of_edges ~labels:[| 0; 0 |] [ (0, 1) ] in
  check "support" 2 (Support.transaction p [ has; hasnot; has ]);
  check_bool "frequent at 2" true
    (Support.is_frequent_transaction p [ has; hasnot; has ] ~sigma:2);
  check_bool "not frequent at 3" false
    (Support.is_frequent_transaction p [ has; hasnot; has ] ~sigma:3)

let test_mni_support () =
  (* Star center 0 with 3 leaves label 1: edge pattern (0)-(1) has MNI
     min(1 center, 3 leaves) = 1, embedding count 3. *)
  let star = Gen.star_graph ~center:0 [| 1; 1; 1 |] in
  let p = Pattern.singleton_edge 0 1 in
  check "embedding count" 3 (Support.single_graph p star);
  check "mni" 1 (Support.mni p star)

let test_single_graph_limit () =
  let star = Gen.star_graph ~center:0 [| 1; 1; 1; 1; 1 |] in
  let p = Pattern.singleton_edge 0 1 in
  check "limited" 2 (Support.single_graph ~limit:2 p star);
  check_bool "frequent 5" true (Support.is_frequent_single p star ~sigma:5);
  check_bool "not frequent 6" false (Support.is_frequent_single p star ~sigma:6)

(* --- DFS codes --- *)

let test_min_code_edge () =
  let p = Pattern.singleton_edge 1 0 in
  let code = Dfs_code.min_code p in
  check "one edge" 1 (Array.length code);
  let e = code.(0) in
  check "li min" 0 e.Dfs_code.li;
  check "lj" 1 e.Dfs_code.lj

let test_min_code_path_orientation () =
  (* Path labels 2-0-1: min code must start at the cheaper end orientation:
     starting vertex label 0 (the middle), the smallest starting label. *)
  let p = Pattern.of_path_labels [| 2; 0; 1 |] in
  let code = Dfs_code.min_code p in
  check "starts at label 0" 0 code.(0).Dfs_code.li

let test_min_code_invariance_small () =
  let p = triangle 0 1 2 in
  (* Same triangle, different vertex numbering. *)
  let q = Graph.Builder.of_edges ~labels:[| 2; 0; 1 |] [ (0, 1); (1, 2); (0, 2) ] in
  check_bool "codes equal" true (Dfs_code.equal (Dfs_code.min_code p) (Dfs_code.min_code q))

let test_graph_of_code_roundtrip () =
  let p = triangle 0 1 1 in
  let code = Dfs_code.min_code p in
  let p' = Dfs_code.graph_of_code code in
  check_bool "roundtrip iso" true (Canon.iso p p');
  check_bool "code is min" true (Dfs_code.is_min code)

let test_rightmost_path () =
  let p = Pattern.of_path_labels [| 0; 1; 2 |] in
  let code = Dfs_code.min_code p in
  (* Path code: 0 -> 1 -> 2; rightmost path is [2; 1; 0]. *)
  Alcotest.(check (list int)) "rm path" [ 2; 1; 0 ] (Dfs_code.rightmost_path code)

let test_slots () =
  let sq = Gen.cycle_graph [| 0; 0; 0; 0 |] in
  let code = Dfs_code.min_code sq in
  check "cycle code len" 4 (Array.length code);
  (* C4 as a code 0-1-2-3 plus backward (3,0): the one remaining backward
     slot is the chord (3,1). *)
  Alcotest.(check (list (pair int int))) "chord slot" [ (3, 1) ]
    (Dfs_code.backward_slots code);
  let path = Pattern.of_path_labels [| 0; 0; 0 |] in
  let pcode = Dfs_code.min_code path in
  check_bool "path has backward slot" true (Dfs_code.backward_slots pcode <> [])

(* Random relabeling/permutation invariance — the crux of canonicalization.
   Instances and permutations come from the shared seeded generator
   ([Gen_qcheck]), so a failing (n, extra) pair reproduces byte-identically
   across suites. *)
let prop_min_code_permutation_invariant =
  QCheck.Test.make ~name:"min code invariant under vertex permutation" ~count:80
    QCheck.(pair (int_range 2 8) (int_range 0 3))
    (fun (n, extra) ->
      let seed = (n * 37) + extra in
      let g = Gen_qcheck.connected ~seed ~n ~extra_edges:extra ~num_labels:3 in
      let g', _ = Gen_qcheck.permute_graph ~seed:(seed + 1) g in
      Dfs_code.equal (Dfs_code.min_code g) (Dfs_code.min_code g'))

let prop_min_code_distinguishes =
  QCheck.Test.make ~name:"different label multisets give different codes" ~count:40
    QCheck.(int_range 2 7)
    (fun n ->
      let g = Gen_qcheck.connected ~seed:(n * 13) ~n ~extra_edges:1 ~num_labels:2 in
      let labels = Array.copy (Graph.labels g) in
      labels.(0) <- labels.(0) + 10;
      let g' = Graph.Builder.of_edges ~labels (Graph.edges g) in
      not (Dfs_code.equal (Dfs_code.min_code g) (Dfs_code.min_code g')))

let prop_is_min_of_min =
  QCheck.Test.make ~name:"min_code is accepted by is_min" ~count:50
    QCheck.(pair (int_range 2 7) (int_range 0 4))
    (fun (n, extra) ->
      let seed = (n * 91) + extra in
      let g = Gen_qcheck.connected ~seed ~n ~extra_edges:extra ~num_labels:3 in
      Dfs_code.is_min (Dfs_code.min_code g))

(* --- Canon --- *)

let test_canon_iso_positive () =
  let p = triangle 0 1 2 in
  let q = Graph.Builder.of_edges ~labels:[| 1; 2; 0 |] [ (0, 1); (1, 2); (0, 2) ] in
  check_bool "triangles iso" true (Canon.iso p q)

let test_canon_iso_negative () =
  let tri = triangle 0 0 0 in
  let path = Pattern.of_path_labels [| 0; 0; 0 |] in
  check_bool "triangle vs path" false (Canon.iso tri path)

let test_canon_single_vertex () =
  let v0 = Graph.Builder.of_edges ~labels:[| 4 |] [] in
  let v0' = Graph.Builder.of_edges ~labels:[| 4 |] [] in
  let v1 = Graph.Builder.of_edges ~labels:[| 5 |] [] in
  check_bool "same" true (Canon.iso v0 v0');
  check_bool "diff" false (Canon.iso v0 v1)

let test_canon_disconnected () =
  let two_edges a b =
    Graph.Builder.of_edges ~labels:[| a; a; b; b |] [ (0, 1); (2, 3) ]
  in
  check_bool "disconnected iso" true (Canon.iso (two_edges 0 1) (two_edges 1 0));
  check_bool "disconnected not iso" false (Canon.iso (two_edges 0 0) (two_edges 0 1))

let test_canon_set () =
  let s = Canon.Set.create () in
  check_bool "add tri" true (Canon.Set.add s (triangle 0 1 2));
  check_bool "iso rejected" false
    (Canon.Set.add s (Graph.Builder.of_edges ~labels:[| 2; 0; 1 |] [ (0, 1); (1, 2); (0, 2) ]));
  check_bool "path added" true (Canon.Set.add s (Pattern.of_path_labels [| 0; 1; 2 |]));
  check "cardinal" 2 (Canon.Set.cardinal s);
  check "to_list" 2 (List.length (Canon.Set.to_list s))

let prop_canon_permutation_stable =
  QCheck.Test.make ~name:"canonical key invariant under permutation" ~count:60
    QCheck.(pair (int_range 2 8) (int_range 0 4))
    (fun (n, extra) ->
      let seed = (n * 53) + extra + 7 in
      let g = Gen_qcheck.connected ~seed ~n ~extra_edges:extra ~num_labels:3 in
      let g', _ = Gen_qcheck.permute_graph ~seed:(seed + 1) g in
      String.equal (Canon.key g) (Canon.key g'))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "pattern"
    [
      ( "pattern",
        [
          Alcotest.test_case "singleton edge" `Quick test_singleton_edge;
          Alcotest.test_case "extensions" `Quick test_extensions;
        ] );
      ( "subiso",
        [
          Alcotest.test_case "triangles in K4" `Quick test_subiso_triangle_in_k4;
          Alcotest.test_case "label mismatch" `Quick test_subiso_label_mismatch;
          Alcotest.test_case "non-induced" `Quick test_subiso_non_induced;
          Alcotest.test_case "anchored" `Quick test_subiso_anchored;
          Alcotest.test_case "count limit" `Quick test_count_limit;
        ] );
      ( "embedding",
        [
          Alcotest.test_case "subgraph identity" `Quick test_embedding_key;
          Alcotest.test_case "key equality" `Quick test_key_equality;
        ] );
      ( "plan",
        [
          Alcotest.test_case "automorphism orbits" `Quick test_plan_aut_orbits;
          Alcotest.test_case "exactly-once enumeration" `Quick
            test_plan_exactly_once;
          Alcotest.test_case "count_up_to early exit" `Quick
            test_plan_count_up_to_early_exit;
          Alcotest.test_case "anchored existence" `Quick test_plan_exists_from;
          Alcotest.test_case "zero deadline cancels" `Quick
            test_plan_zero_deadline;
          Alcotest.test_case "mni corpus pin" `Quick test_mni_corpus_pin;
          QCheck_alcotest.to_alcotest prop_plan_matches_dedup_backtrack;
        ] );
      ( "support",
        [
          Alcotest.test_case "transaction" `Quick test_transaction_support;
          Alcotest.test_case "mni vs embeddings" `Quick test_mni_support;
          Alcotest.test_case "limit and thresholds" `Quick test_single_graph_limit;
        ] );
      ( "dfs_code",
        [
          Alcotest.test_case "single edge" `Quick test_min_code_edge;
          Alcotest.test_case "path orientation" `Quick test_min_code_path_orientation;
          Alcotest.test_case "invariance small" `Quick test_min_code_invariance_small;
          Alcotest.test_case "graph_of_code roundtrip" `Quick test_graph_of_code_roundtrip;
          Alcotest.test_case "rightmost path" `Quick test_rightmost_path;
          Alcotest.test_case "extension slots" `Quick test_slots;
        ] );
      ( "canon",
        [
          Alcotest.test_case "iso positive" `Quick test_canon_iso_positive;
          Alcotest.test_case "iso negative" `Quick test_canon_iso_negative;
          Alcotest.test_case "single vertex" `Quick test_canon_single_vertex;
          Alcotest.test_case "disconnected" `Quick test_canon_disconnected;
          Alcotest.test_case "set" `Quick test_canon_set;
        ] );
      qsuite "props"
        [
          prop_subiso_matches_brute_force;
          prop_min_code_permutation_invariant;
          prop_min_code_distinguishes;
          prop_is_min_of_min;
          prop_canon_permutation_stable;
        ];
    ]
